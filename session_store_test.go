package wse

// Integration tests of plan persistence through the public surface: the
// export → warm deployment cycle, transparent read/write-through via
// SessionConfig.Store, and corruption handling end to end.

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// storeShapes is a small mixed workload: 1D, 2D and chunked kinds.
func storeShapes() []Shape {
	return []Shape{
		{Kind: KindReduce, Alg: Auto, P: 32, B: 16, Op: Sum},
		{Kind: KindAllReduce2D, Alg2D: Auto2D, Width: 6, Height: 4, B: 8, Op: Sum},
		{Kind: KindAllGather, P: 8, B: 24},
	}
}

func runStoreShape(t *testing.T, s *Session, sh Shape) *Report {
	t.Helper()
	ones := func(n, b int) [][]float32 {
		out := make([][]float32, n)
		for i := range out {
			out[i] = make([]float32, b)
			for j := range out[i] {
				out[i][j] = 1
			}
		}
		return out
	}
	var rep *Report
	var err error
	switch sh.Kind {
	case KindReduce:
		rep, err = s.Reduce(ones(sh.P, sh.B), sh.Alg, sh.Op)
	case KindAllReduce2D:
		rep, err = s.AllReduce2D(ones(sh.Width*sh.Height, sh.B), sh.Width, sh.Height, sh.Alg2D, sh.Op)
	case KindAllGather:
		chunks := ones(sh.P, 0)
		q, r := sh.B/sh.P, sh.B%sh.P
		for i := range chunks {
			n := q
			if i < r {
				n++
			}
			chunks[i] = make([]float32, n)
			for j := range chunks[i] {
				chunks[i][j] = 1
			}
		}
		rep, err = s.AllGather(chunks)
	default:
		t.Fatalf("unhandled shape kind %q", sh.Kind)
	}
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestWarmStartServesWithoutCompiling is the deployment cycle end to end:
// a staging session compiles a shape list into a store, a fresh "serving
// process" warms from it, and its first requests are bit-identical to the
// staging session's — with zero cache misses, i.e. no compile on the
// serving path.
func TestWarmStartServesWithoutCompiling(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenPlanStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	stage := NewSession(SessionConfig{})
	st, err := stage.Warm(store, storeShapes())
	if err != nil {
		t.Fatal(err)
	}
	if st.Compiled != len(storeShapes()) || store.Len() != len(storeShapes()) {
		t.Fatalf("staging warm: %+v, store holds %d", st, store.Len())
	}
	want := make([]*Report, len(storeShapes()))
	for i, sh := range storeShapes() {
		want[i] = runStoreShape(t, stage, sh)
	}

	// A new process: fresh store handle, fresh session.
	store2, err := OpenPlanStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	serve := NewSession(SessionConfig{})
	if st, err = serve.Warm(store2, nil); err != nil {
		t.Fatal(err)
	}
	if st.Loaded != len(storeShapes()) || st.Compiled != 0 {
		t.Fatalf("serving warm should decode everything: %+v", st)
	}
	for i, sh := range storeShapes() {
		got := runStoreShape(t, serve, sh)
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("shape %d replays differently after warm-start", i)
		}
	}
	if ps := serve.PlanStats(); ps.Misses != 0 {
		t.Fatalf("warmed session compiled on the serving path: %+v", ps)
	}
}

// TestSessionStoreWriteThrough checks SessionConfig.Store: serving
// traffic populates the store as a side effect, and the next session
// decodes instead of compiling, transparently.
func TestSessionStoreWriteThrough(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenPlanStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sh := storeShapes()[0]

	first := NewSession(SessionConfig{Store: store})
	want := runStoreShape(t, first, sh)
	if store.Len() != 1 {
		t.Fatalf("write-through stored %d plans, want 1", store.Len())
	}
	if ps := first.PlanStats(); ps.StoreErrors != 0 {
		t.Fatalf("store errors during write-through: %+v", ps)
	}

	second := NewSession(SessionConfig{Store: store})
	got := runStoreShape(t, second, sh)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("store-loaded plan replays differently")
	}
	if ps := second.PlanStats(); ps.StoreHits != 1 {
		t.Fatalf("second session did not load from the store: %+v", ps)
	}
}

// TestCorruptStoreFallsBackToCompile tampers with every stored blob and
// checks a session still serves correctly — the corrupt entries are
// quarantined (at store open, which verifies every blob's content hash
// while rebuilding the index) and recompiled, never replayed.
func TestCorruptStoreFallsBackToCompile(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenPlanStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sh := storeShapes()[0]
	stage := NewSession(SessionConfig{Store: store})
	want := runStoreShape(t, stage, sh)

	blobs, err := filepath.Glob(filepath.Join(dir, "plans", "*.plan"))
	if err != nil || len(blobs) == 0 {
		t.Fatalf("no blobs to corrupt: %v", err)
	}
	for _, path := range blobs {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0x10
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	store2, err := OpenPlanStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Opening verified every blob: the tampered one is quarantined and
	// gone from the index before a request could decode it.
	if store2.Len() != 0 {
		t.Fatalf("corrupt store still indexes %d plans", store2.Len())
	}
	q, err := filepath.Glob(filepath.Join(dir, "quarantine", "*.plan"))
	if err != nil || len(q) == 0 {
		t.Fatalf("nothing quarantined: %v", err)
	}

	serve := NewSession(SessionConfig{Store: store2})
	got := runStoreShape(t, serve, sh)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fallback compile replays differently")
	}
	if ps := serve.PlanStats(); ps.StoreHits != 0 {
		t.Fatalf("corrupt blob counted as a store hit: %+v", ps)
	}
	// The recompile wrote through: the store healed itself.
	if store2.Len() != 1 {
		t.Fatalf("store did not heal: holds %d plans", store2.Len())
	}
}
