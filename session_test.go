package wse

import (
	"sync"
	"testing"
)

func sessVectors(p, b int) [][]float32 {
	out := make([][]float32, p)
	for i := range out {
		v := make([]float32, b)
		for j := range v {
			v[j] = float32(i+1) * float32(j%5+1)
		}
		out[i] = v
	}
	return out
}

func sameFloats(t *testing.T, what string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %v, want %v", what, i, got[i], want[i])
		}
	}
}

// TestSessionMatchesOneShot replays every Session collective and compares
// bit-for-bit with the one-shot API.
func TestSessionMatchesOneShot(t *testing.T) {
	s := NewSession(SessionConfig{})
	vecs := sessVectors(16, 12)
	chunks := make([][]float32, 8)
	{
		off, sz := Chunks(8, 20)
		full := sessVectors(1, 20)[0]
		for j := range chunks {
			chunks[j] = full[off[j] : off[j]+sz[j]]
		}
	}
	grid := sessVectors(4*3, 6)
	rsVecs := sessVectors(10, 16) // the ring needs B >= P for non-empty chunks

	type run struct {
		name    string
		session func() (*Report, error)
		oneShot func() (*Report, error)
	}
	runs := []run{
		{"reduce", func() (*Report, error) { return s.Reduce(vecs, Auto, Sum) },
			func() (*Report, error) { return Reduce(vecs, Auto, Sum, Options{}) }},
		{"allreduce", func() (*Report, error) { return s.AllReduce(vecs, TwoPhase, Sum) },
			func() (*Report, error) { return AllReduce(vecs, TwoPhase, Sum, Options{}) }},
		{"allreduce-midroot", func() (*Report, error) { return s.AllReduceMidRoot(vecs, Auto, Sum) },
			func() (*Report, error) { return AllReduceMidRoot(vecs, Auto, Sum, Options{}) }},
		{"broadcast", func() (*Report, error) { return s.Broadcast(vecs[2], 16) },
			func() (*Report, error) { return Broadcast(vecs[2], 16, Options{}) }},
		{"reduce2d", func() (*Report, error) { return s.Reduce2D(grid, 4, 3, Auto2D, Sum) },
			func() (*Report, error) { return Reduce2D(grid, 4, 3, Auto2D, Sum, Options{}) }},
		{"allreduce2d", func() (*Report, error) { return s.AllReduce2D(grid, 4, 3, Snake, Sum) },
			func() (*Report, error) { return AllReduce2D(grid, 4, 3, Snake, Sum, Options{}) }},
		{"broadcast2d", func() (*Report, error) { return s.Broadcast2D(grid[0], 4, 3) },
			func() (*Report, error) { return Broadcast2D(grid[0], 4, 3, Options{}) }},
		{"scatter", func() (*Report, error) { return s.Scatter(vecs[0], 6) },
			func() (*Report, error) { return Scatter(vecs[0], 6, Options{}) }},
		{"gather", func() (*Report, error) { return s.Gather(chunks) },
			func() (*Report, error) { return Gather(chunks, Options{}) }},
		{"reducescatter", func() (*Report, error) { return s.ReduceScatter(rsVecs, Sum) },
			func() (*Report, error) { return ReduceScatter(rsVecs, Sum, Options{}) }},
		{"allgather", func() (*Report, error) { return s.AllGather(chunks) },
			func() (*Report, error) { return AllGather(chunks, Options{}) }},
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			want, err := r.oneShot()
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 2; rep++ { // second call replays the cached plan
				got, err := r.session()
				if err != nil {
					t.Fatalf("replay %d: %v", rep, err)
				}
				sameFloats(t, "Root", got.Root, want.Root)
				if got.Cycles != want.Cycles {
					t.Fatalf("replay %d: Cycles = %d, one-shot %d", rep, got.Cycles, want.Cycles)
				}
				if got.Predicted != want.Predicted {
					t.Fatalf("replay %d: Predicted = %g, one-shot %g", rep, got.Predicted, want.Predicted)
				}
			}
		})
	}
	st := s.PlanStats()
	if st.Misses != int64(len(runs)) {
		t.Fatalf("%d misses, want one per collective kind (%d): %+v", st.Misses, len(runs), st)
	}
	if st.Hits != int64(len(runs)) {
		t.Fatalf("%d hits, want one per replay (%d): %+v", st.Hits, len(runs), st)
	}
}

// TestSessionConcurrent fans a mixed workload across goroutines; run with
// -race in CI.
func TestSessionConcurrent(t *testing.T) {
	s := NewSession(SessionConfig{PlanCacheCapacity: 8, Workers: 4})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := 4 + 4*(g%3)
			vecs := make([][]float32, p)
			for i := range vecs {
				v := make([]float32, 16)
				for j := range v {
					v[j] = 1
				}
				vecs[i] = v
			}
			for r := 0; r < 4; r++ {
				rep, err := s.AllReduce(vecs, Tree, Sum)
				if err != nil {
					t.Error(err)
					return
				}
				if rep.Root[0] != float32(p) {
					t.Errorf("g%d: Root[0] = %v, want %d", g, rep.Root[0], p)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.PlanStats()
	if st.Misses != 3 { // three distinct row lengths
		t.Fatalf("%d misses, want 3: %+v", st.Misses, st)
	}
}

// TestPredictBroadcastUsesParams guards the Options resolution path: a
// negative TR means a literal zero-latency ramp, which must flow through
// core.Params exactly like every other predictor.
func TestPredictBroadcastUsesParams(t *testing.T) {
	def := PredictBroadcast(64, 256, Options{})
	zero := PredictBroadcast(64, 256, Options{TR: -1})
	if def != PredictBroadcast(64, 256, Options{TR: 2}) {
		t.Fatal("TR=0 should select the WSE-2 default of 2")
	}
	if zero >= def {
		t.Fatalf("TR<0 (zero-latency ramp) predicts %g, want < default %g", zero, def)
	}
}
