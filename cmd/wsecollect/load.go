package main

// wsecollect load: the wire-side load generator for a running wsed
// daemon. It hammers POST /v1/run over the network with a configurable
// worker count and tenant mix, measures whole-request latency at the
// client, and writes BENCH_serve.json — the serving tier's trajectory
// point: requests per second, p50/p99 wire latency, per-status counts,
// and (when BENCH_api.json is readable) the in-process single-run number
// the wire latency is paying HTTP + JSON on top of.
//
//	wsecollect load -url http://127.0.0.1:8080 -requests 256 -workers 8 \
//	    -p 64 -bytes 256 -tenants "fg:interactive:3,bulk:batch:1"
//
// The -tenants weights set the request mix (a weight-3 tenant gets 3× the
// requests); classes and queue bounds are the daemon's to enforce.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	wse "repro"
	"repro/internal/serve"
)

// wireShape spells a wse.Shape in the daemon's wire format.
func wireShape(c *config, sh wse.Shape) serve.ShapeWire {
	return serve.ShapeWire{
		Kind:   string(sh.Kind),
		Alg:    string(sh.Alg),
		Alg2D:  string(sh.Alg2D),
		P:      sh.P,
		Width:  sh.Width,
		Height: sh.Height,
		B:      sh.B,
		Op:     strings.ToLower(c.opName),
	}
}

// tenantMix expands the -tenants weights into a request-assignment ring:
// request i goes to ring[i%len(ring)].
func tenantMix(specs []tenantSpec) []string {
	var ring []string
	for _, ts := range specs {
		for i := 0; i < ts.cfg.Weight; i++ {
			ring = append(ring, ts.name)
		}
	}
	return ring
}

func loadCmd(c *config) error {
	sh, err := c.shape()
	if err != nil {
		return err
	}
	specs, err := parseTenants(c.tenants)
	if err != nil {
		return err
	}
	ring := tenantMix(specs)
	body, err := json.Marshal(map[string]any{
		"shape":  wireShape(c, sh),
		"inputs": inputsFor(sh),
	})
	if err != nil {
		return err
	}
	workers := c.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := c.requests
	if total < 1 {
		total = 1
	}
	if workers > total {
		workers = total
	}
	client := &http.Client{Timeout: 60 * time.Second}
	runURL := strings.TrimRight(c.url, "/") + "/v1/run"

	// One warm-up request compiles the plan server-side, so the measured
	// window holds replays — the serving steady state — not the compile.
	if status, err := postRun(client, runURL, "", body); err != nil {
		return fmt.Errorf("warm-up request: %w", err)
	} else if status != http.StatusOK {
		return fmt.Errorf("warm-up request: daemon answered %d", status)
	}

	var seq atomic.Int64
	latencies := make([][]time.Duration, workers)
	statuses := make([]map[int]int64, workers)
	errs := make([]int64, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			statuses[w] = make(map[int]int64)
			for {
				i := seq.Add(1) - 1
				if i >= int64(total) {
					return
				}
				tenant := ""
				if len(ring) > 0 {
					tenant = ring[i%int64(len(ring))]
				}
				t0 := time.Now()
				status, err := postRun(client, runURL, tenant, body)
				if err != nil {
					errs[w]++
					continue
				}
				latencies[w] = append(latencies[w], time.Since(t0))
				statuses[w][status]++
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	byStatus := make(map[int]int64)
	var transportErrs int64
	for w := 0; w < workers; w++ {
		all = append(all, latencies[w]...)
		for code, n := range statuses[w] {
			byStatus[code] += n
		}
		transportErrs += errs[w]
	}
	if len(all) == 0 {
		return fmt.Errorf("no request completed (%d transport errors)", transportErrs)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration { return all[int(p*float64(len(all)-1))] }
	rps := float64(len(all)) / elapsed.Seconds()

	point := map[string]any{
		"bench":            "serve-wire",
		"url":              runURL,
		"requests":         total,
		"workers":          workers,
		"tenant_mix":       c.tenants,
		"elapsed_ns":       elapsed.Nanoseconds(),
		"rps":              rps,
		"wire_p50_ns":      pct(0.50).Nanoseconds(),
		"wire_p99_ns":      pct(0.99).Nanoseconds(),
		"transport_errors": transportErrs,
		"host_cores":       runtime.NumCPU(),
		"gomaxprocs":       runtime.GOMAXPROCS(0),
	}
	if runtime.NumCPU() <= 2 {
		point["host_note"] = "few-core host: the daemon, the load generator and the fabric simulations share cores, so wire latency includes their mutual displacement; re-measure client and server on separate boxes"
	}
	for code, n := range byStatus {
		point[fmt.Sprintf("status_%d", code)] = n
	}
	// The comparison column: what the same single run costs in-process.
	// Wire latency minus this is the HTTP + JSON + scheduling toll.
	if c.compare != "" {
		if buf, err := os.ReadFile(c.compare); err == nil {
			var api map[string]any
			if json.Unmarshal(buf, &api) == nil {
				if v, ok := api["single_map_ns_per_run"].(float64); ok {
					point["inprocess_single_map_ns_per_run"] = v
					point["wire_overhead_p50_ns"] = float64(pct(0.50).Nanoseconds()) - v
				}
			}
		}
	}

	buf, err := json.MarshalIndent(point, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(c.out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("%d requests to %s in %v: %.0f req/s, wire p50 %v p99 %v (%d workers, mix %s)\n",
		len(all), runURL, elapsed.Round(time.Millisecond), rps,
		pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond), workers, c.tenants)
	codes := make([]int, 0, len(byStatus))
	for code := range byStatus {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Printf("  status %d  %6d\n", code, byStatus[code])
	}
	fmt.Printf("wrote %s\n", c.out)
	return nil
}

// postRun sends one /v1/run request under the given tenant identity and
// returns the HTTP status. The body is read fully so the connection is
// reused — wire latency should measure the protocol, not artificial
// reconnects.
func postRun(client *http.Client, url, tenant string, body []byte) (int, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-WSE-Tenant", tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}
