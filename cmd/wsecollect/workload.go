package main

import (
	"context"
	"fmt"
	"os"
	"time"

	wse "repro"
	"repro/internal/workload"
	"repro/internal/workload/tune"
)

// tuneShapes resolves what the tune subcommand sweeps: every distinct
// shape of the -file workload, or the single shape the flags spell.
func tuneShapes(c *config) ([]wse.Shape, string, error) {
	if c.file != "" {
		w, err := workload.ParseFile(c.file)
		if err != nil {
			return nil, "", err
		}
		return w.Shapes(), w.Name, nil
	}
	sh, err := c.shape()
	if err != nil {
		return nil, "", err
	}
	return []wse.Shape{sh}, "", nil
}

// tuneCmd searches each shape's plan parameters (algorithm grid, router
// queue depth, engine shards), prints the winners against the paper's
// lower bound, and persists them: -tunings writes the sidecar workloads
// apply, -store exports the compiled winning plans so cold sessions and
// the fleet replay them without compiling.
func tuneCmd(c *config) error {
	shapes, wlName, err := tuneShapes(c)
	if err != nil {
		return err
	}
	cfg := tune.Config{Options: c.options()}
	if c.shards > 0 {
		cfg.MaxShards = c.shards
	}
	start := time.Now()
	tunings, err := tune.Tune(context.Background(), shapes, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("tuned %d shapes in %v\n", len(tunings), time.Since(start).Round(time.Millisecond))
	fmt.Printf("%-20s %-12s %6s %7s %10s %10s %10s %10s\n",
		"kind", "alg", "queue", "shards", "default", "tuned", "vs bound", "speedup")
	for _, t := range tunings {
		alg := string(t.Tuned().Alg)
		if a2 := string(t.Tuned().Alg2D); a2 != "" {
			alg = a2
		}
		if alg == "" {
			alg = "-"
		}
		fmt.Printf("%-20s %-12s %6d %7d %10d %10d %9.2fx %9.2fx\n",
			t.Shape.Kind, alg, t.Options.QueueCap, t.Options.Shards,
			t.DefaultCycles, t.Cycles, t.AchievedVsBound, t.TunedVsDefault)
	}
	if c.tunings != "" {
		if err := tune.WriteSidecar(c.tunings, wlName, tunings); err != nil {
			return err
		}
		fmt.Printf("wrote %d tunings to %s\n", len(tunings), c.tunings)
	}
	if c.store != "" {
		store, err := wse.OpenPlanStore(c.store)
		if err != nil {
			return err
		}
		n, err := tune.ExportWinners(context.Background(), tunings, store)
		if err != nil {
			return err
		}
		fmt.Printf("exported %d winning plans to %s (store holds %d)\n", n, c.store, store.Len())
	}
	return nil
}

// workloadCmd dispatches the workload sub-verbs: run executes a
// workload file through a session, funcs lists the step vocabulary.
func workloadCmd(c *config, sub string) error {
	switch sub {
	case "funcs":
		for _, f := range workload.Funcs() {
			fmt.Printf("%-20s %s\n", f.Name, f.Doc)
		}
		return nil
	case "", "run":
		return workloadRunCmd(c)
	}
	return fmt.Errorf("unknown workload sub-verb %q (run, funcs)", sub)
}

func workloadRunCmd(c *config) error {
	if c.file == "" {
		return fmt.Errorf("workload run requires -file FILE.wl")
	}
	w, err := workload.ParseFile(c.file)
	if err != nil {
		return err
	}
	if c.tunings != "" {
		sc, err := tune.LoadSidecar(c.tunings)
		if err != nil {
			return err
		}
		applied := tune.Apply(w, sc.Tunings)
		fmt.Printf("applied %d of %d tunings from %s\n", applied, len(sc.Tunings), c.tunings)
	}
	cfg := wse.SessionConfig{Options: c.options(), Workers: c.workers}
	if c.store != "" {
		store, err := wse.OpenPlanStore(c.store)
		if err != nil {
			return err
		}
		cfg.Store = store
	}
	sess := wse.NewSession(cfg)
	defer sess.Close()

	ctx := context.Background()
	var res *workload.Result
	if c.sequential {
		res, err = workload.ExecSequential(ctx, sess, w)
	} else {
		res, err = workload.Exec(ctx, sess, w)
	}
	if err != nil {
		return err
	}

	fmt.Printf("workload %s: %d steps\n", w.Name, len(res.Steps))
	fmt.Printf("%-20s %-20s %-12s %10s %10s %12s\n", "step", "kind", "after", "cycles", "predicted", "wall")
	for _, sr := range res.Steps {
		after := "-"
		if len(sr.Step.After) > 0 {
			after = fmt.Sprintf("%d deps", len(sr.Step.After))
		}
		fmt.Printf("%-20s %-20s %-12s %10d %10.0f %12v\n",
			sr.Step.Name, sr.Step.Shape.Kind, after,
			sr.Report.Cycles, sr.Report.Predicted, sr.Wall.Round(time.Microsecond))
	}
	fmt.Printf("total: %d simulated cycles; wall %v, step sum %v",
		res.Cycles(), res.Wall.Round(time.Microsecond), res.StepSum.Round(time.Microsecond))
	if !c.sequential && res.StepSum > 0 {
		fmt.Printf(" (overlap saved %.0f%%)", 100*(1-float64(res.Wall)/float64(res.StepSum)))
	}
	fmt.Println()
	if c.store != "" {
		st := sess.PlanStats()
		fmt.Fprintf(os.Stdout, "plan cache: %d hits, %d misses, %d store loads\n", st.Hits, st.Misses, st.StoreHits)
	}
	return nil
}
