// Command wsecollect runs a collective on the simulated wafer-scale
// fabric and reports measured cycles, the model prediction, and the fabric
// cost metrics (energy, contention). Collectives execute through a
// wse.Session, so the fabric program is compiled once and -repeat replays
// the cached plan — pass -repeat to see the compiled-plan subsystem's
// cold/warm split, and -workers to replay concurrently.
//
// Subcommands manage the on-disk plan store, the pre-deployment warm-up
// path, and the multi-tenant serving demo:
//
//	wsecollect export -store DIR [shape flags]   compile the shape into DIR
//	wsecollect warm   -store DIR                 preload every stored plan
//	wsecollect warm   -url URL [-store DIR]      warm a remote daemon over the
//	    wire (POST /v1/warm): the daemon resolves each shape through its own
//	    chain; -store sends the local store's whole key inventory, the shape
//	    flags send one shape
//	wsecollect [run]  -store DIR [shape flags]   serve with read/write-through
//	wsecollect serve  -tenants SPEC [shape flags]
//	    replay a mixed multi-tenant workload through the QoS scheduler and
//	    print the per-tenant latency table plus a JSON SchedStats dump.
//	    SPEC is a comma list of name:class:weight[:maxqueue] entries
//	    (class: interactive, batch, background).
//	wsecollect load -url URL [-requests N] [-workers K] [shape flags]
//	    hammer a running wsed daemon's /v1/run over the network with the
//	    -tenants weights as the request mix, and write BENCH_serve.json
//	    (RPS, p50/p99 wire latency, per-status counts).
//	wsecollect chaos [-requests N] [-failpoints SPEC] [shape flags]
//	    failure drill: drive a daemon (in-process, or -url for an external
//	    one launched with WSE_FAILPOINTS) through the retrying client with
//	    faults firing, assert the failure-model invariants, and write
//	    BENCH_chaos.json (served/shed/retried counts, recovery p99).
//	wsecollect trace [-url URL | -in FILE] [-min-ms F]
//	    fetch a daemon's committed traces (GET /debug/traces) or read a
//	    -trace-file JSONL, and pretty-print each span tree with per-span
//	    self-times — the "where did the milliseconds go" view.
//	wsecollect tune [-file FILE.wl | shape flags] [-tunings OUT.json] [-store DIR]
//	    autotune the plan parameters (algorithm, queue depth, shards) of a
//	    workload's shapes — or the single flag shape — scoring every winner
//	    against the paper's lower bound; -tunings writes the winners as a
//	    sidecar, -store exports their compiled plans so a fleet inherits
//	    them with zero recompilation.
//	wsecollect workload run -file FILE.wl [-tunings IN.json] [-sequential]
//	    execute a workload file as a DAG through a session: independent
//	    steps overlap via Submit futures, dependency results flow into
//	    dependent steps' inputs, and the per-step table reports cycles and
//	    the measured overlap.
//	wsecollect workload funcs
//	    list the registered step functions a workload file can use.
//
// Examples:
//
//	wsecollect -collective reduce -alg autogen -p 512 -bytes 1024
//	wsecollect -collective allreduce -alg auto -p 64 -bytes 4096 -op max
//	wsecollect -collective reduce2d -alg2d snake -grid 32x32 -bytes 256
//	wsecollect -collective gather -p 16 -bytes 4096
//	wsecollect -collective reduce -alg chain -p 128 -bytes 512 -repeat 64 -workers 8
//	wsecollect export -store ./plans -collective reduce -alg auto -p 512 -bytes 64
//	wsecollect warm -store ./plans
//	wsecollect serve -tenants "fg:interactive:1,bulk:batch:3,scavenger:background:1" -p 64 -bytes 256 -repeat 64 -workers 2
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	wse "repro"
	"repro/client"
	"repro/internal/core"
)

func main() { os.Exit(realMain()) }

// config carries every flag; subcommands share one flag set so a shape is
// spelled identically in run, export and warm invocations.
type config struct {
	collective string
	alg        string
	alg2d      string
	p          int
	grid       string
	bytes      int
	opName     string
	tr         int
	thermal    float64
	skew       int64
	seed       uint64
	repeat     int
	batch      int
	columnar   bool
	workers    int
	shards     int
	maxCycles  int64
	store      string
	cpuprofile string
	tenants    string
	url        string
	requests   int
	out        string
	compare    string
	failpoints string
	in         string
	minMS      float64
	file       string
	tunings    string
	sequential bool
	// set records which flags were passed explicitly, for defaults that
	// differ per subcommand (serve bursts -repeat 64 unless given).
	set map[string]bool
}

func parseFlags(cmd string, args []string) (*config, error) {
	c := &config{}
	fs := flag.NewFlagSet("wsecollect "+cmd, flag.ContinueOnError)
	fs.StringVar(&c.collective, "collective", "reduce", "reduce, allreduce, broadcast, reduce2d, allreduce2d, broadcast2d, scatter, gather, reducescatter, allgather, allreduce-midroot")
	fs.StringVar(&c.alg, "alg", "auto", "1D algorithm: star, chain, tree, twophase, autogen, auto")
	fs.StringVar(&c.alg2d, "alg2d", "auto", "2D algorithm: xy-star, xy-chain, xy-tree, xy-twophase, xy-autogen, snake, auto")
	fs.IntVar(&c.p, "p", 64, "row length for 1D collectives")
	fs.StringVar(&c.grid, "grid", "16x16", "grid WxH for 2D collectives")
	fs.IntVar(&c.bytes, "bytes", 1024, "vector length in bytes (4 bytes per float32 wavelet)")
	fs.StringVar(&c.opName, "op", "sum", "reduction operator: sum, max, min")
	fs.IntVar(&c.tr, "tr", 0, "ramp latency T_R (0 = WSE-2 default of 2)")
	fs.Float64Var(&c.thermal, "thermal", 0, "thermal no-op rate (paper: wafer inserts no-ops to avoid cracking)")
	fs.Int64Var(&c.skew, "skew", 0, "max per-PE clock skew in cycles")
	fs.Uint64Var(&c.seed, "seed", 1, "deterministic seed for skew/thermal")
	fs.IntVar(&c.repeat, "repeat", 1, "run the collective this many times through the plan cache")
	fs.IntVar(&c.batch, "batch", 1, "replay the collective this many times per request via RunBatch (amortised bind/assembly)")
	fs.BoolVar(&c.columnar, "columnar", false, "skip per-PE result maps (WithColumnarResult)")
	fs.IntVar(&c.workers, "workers", 0, "concurrent replays (0 = GOMAXPROCS)")
	fs.IntVar(&c.shards, "shards", 0, "row-band shards per fabric simulation (0/1 = serial engine; results are bit-identical)")
	fs.Int64Var(&c.maxCycles, "maxcycles", 0, "per-run simulated-cycle cap (0 = session default of 2^28; raise for very large serialized runs)")
	fs.StringVar(&c.store, "store", "", "plan store directory (run: read/write-through; export/warm: required)")
	fs.StringVar(&c.cpuprofile, "cpuprofile", "", "write a CPU profile of the runs to this file")
	fs.StringVar(&c.tenants, "tenants", "fg:interactive:1,bulk:batch:3,scavenger:background:1",
		"serve: comma list of tenant name:class:weight[:maxqueue] (class: interactive, batch, background)")
	fs.StringVar(&c.url, "url", "http://127.0.0.1:8080", "load: base URL of a running wsed daemon")
	fs.IntVar(&c.requests, "requests", 256, "load: total requests to send")
	fs.StringVar(&c.out, "out", "BENCH_serve.json", "load: where to write the wire-latency trajectory point")
	fs.StringVar(&c.compare, "compare", "BENCH_api.json", "load: in-process trajectory point to diff against (\"\" to skip)")
	fs.StringVar(&c.failpoints, "failpoints", "", "chaos: failpoint schedule for the in-process daemon (site=mode[:p=F][:count=N][:delay=D], semicolon list; default: 5% error on every inner seam)")
	fs.StringVar(&c.in, "in", "", "trace: read traces from this JSONL file (a wsed -trace-file) instead of -url")
	fs.Float64Var(&c.minMS, "min-ms", 0, "trace: only show traces at least this slow")
	fs.StringVar(&c.file, "file", "", "workload/tune: workload file to run or tune (step lines, see workload funcs)")
	fs.StringVar(&c.tunings, "tunings", "", "tune: write the tunings sidecar here; workload run: apply tunings from here")
	fs.BoolVar(&c.sequential, "sequential", false, "workload run: execute steps one at a time instead of overlapping independent steps")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	c.set = make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { c.set[f.Name] = true })
	return c, nil
}

// realMain carries the exit code back to main so deferred cleanup (CPU
// profile flush) runs before the process exits.
func realMain() int {
	args := os.Args[1:]
	cmd := "run"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	// workload takes a sub-verb (run, funcs) that must be peeled before
	// flag parsing, which stops at the first non-flag argument.
	sub := ""
	if cmd == "workload" && len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		sub, args = args[0], args[1:]
	}
	c, err := parseFlags(cmd, args)
	if err == flag.ErrHelp {
		return 0
	}
	if err != nil {
		return 2
	}

	if c.cpuprofile != "" {
		f, err := os.Create(c.cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wsecollect:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "wsecollect:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	switch cmd {
	case "run":
		err = runCmd(c)
	case "export":
		err = exportCmd(c)
	case "warm":
		err = warmCmd(c)
	case "serve":
		err = serveCmd(c)
	case "load":
		err = loadCmd(c)
	case "chaos":
		err = chaosCmd(c)
	case "trace":
		err = traceCmd(c)
	case "tune":
		err = tuneCmd(c)
	case "workload":
		err = workloadCmd(c, sub)
	default:
		err = fmt.Errorf("unknown subcommand %q (run, export, warm, serve, load, chaos, trace, tune, workload)", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsecollect:", err)
		return 1
	}
	return 0
}

func (c *config) options() wse.Options {
	return wse.Options{TR: c.tr, ThermalNoopRate: c.thermal, ClockSkewMax: c.skew,
		Seed: c.seed, Shards: c.shards, MaxCycles: c.maxCycles}
}

func (c *config) reduceOp() (wse.ReduceOp, error) {
	switch c.opName {
	case "sum":
		return wse.Sum, nil
	case "max":
		return wse.Max, nil
	case "min":
		return wse.Min, nil
	}
	return wse.Sum, fmt.Errorf("unknown op %q", c.opName)
}

// shape resolves the flag spelling of a collective into a wse.Shape.
func (c *config) shape() (wse.Shape, error) {
	op, err := c.reduceOp()
	if err != nil {
		return wse.Shape{}, err
	}
	b := c.bytes / 4
	if b < 1 {
		return wse.Shape{}, fmt.Errorf("vector must be at least 4 bytes")
	}
	var w, h int
	if n, err := fmt.Sscanf(c.grid, "%dx%d", &w, &h); n != 2 || err != nil {
		return wse.Shape{}, fmt.Errorf("bad -grid %q (want WxH)", c.grid)
	}
	sh := wse.Shape{B: b, Op: op}
	switch strings.ToLower(c.collective) {
	case "reduce":
		sh.Kind, sh.Alg, sh.P = wse.KindReduce, wse.Algorithm(c.alg), c.p
	case "allreduce":
		sh.Kind, sh.Alg, sh.P = wse.KindAllReduce, wse.Algorithm(c.alg), c.p
	case "allreduce-midroot":
		sh.Kind, sh.Alg, sh.P = wse.KindAllReduceMidRoot, wse.Algorithm(c.alg), c.p
	case "broadcast":
		sh.Kind, sh.P = wse.KindBroadcast, c.p
	case "scatter":
		sh.Kind, sh.P = wse.KindScatter, c.p
	case "gather":
		sh.Kind, sh.P = wse.KindGather, c.p
	case "reducescatter":
		sh.Kind, sh.P = wse.KindReduceScatter, c.p
	case "allgather":
		sh.Kind, sh.P = wse.KindAllGather, c.p
	case "reduce2d":
		sh.Kind, sh.Alg2D, sh.Width, sh.Height = wse.KindReduce2D, wse.Algorithm2D(c.alg2d), w, h
	case "allreduce2d":
		sh.Kind, sh.Alg2D, sh.Width, sh.Height = wse.KindAllReduce2D, wse.Algorithm2D(c.alg2d), w, h
	case "broadcast2d":
		sh.Kind, sh.Width, sh.Height = wse.KindBroadcast2D, w, h
	default:
		return wse.Shape{}, fmt.Errorf("unknown collective %q", c.collective)
	}
	return sh, nil
}

// describe renders the PE geometry of a shape for the report line.
func describe(sh wse.Shape, alg, alg2d string) string {
	switch sh.Kind {
	case wse.KindReduce2D, wse.KindAllReduce2D:
		return fmt.Sprintf("%dx%d PEs, alg=%s", sh.Width, sh.Height, alg2d)
	case wse.KindBroadcast2D:
		return fmt.Sprintf("%dx%d PEs", sh.Width, sh.Height)
	case wse.KindReduce, wse.KindAllReduce, wse.KindAllReduceMidRoot:
		return fmt.Sprintf("%dx1 PEs, alg=%s", sh.P, alg)
	}
	return fmt.Sprintf("%dx1 PEs", sh.P)
}

// once builds the run closure for a shape: the inputs and the session
// call that serves it. Both run and serve mode build inputs through
// inputsFor, so a kind's arity is encoded exactly once. With -batch N
// each call replays the shape N times through RunBatch (one scheduled
// request, one held simulator instance); -columnar skips the per-PE
// result maps either way.
func once(c *config, sess *wse.Session, sh wse.Shape) func() (*wse.Report, error) {
	inputs := inputsFor(sh)
	var opts []wse.RunOption
	if c.columnar {
		opts = append(opts, wse.WithColumnarResult())
	}
	ctx := context.Background()
	if c.batch > 1 {
		batches := make([][][]float32, c.batch)
		for i := range batches {
			batches[i] = inputs
		}
		return func() (*wse.Report, error) {
			reps, err := sess.RunBatch(ctx, sh, batches, opts...)
			if err != nil {
				return nil, err
			}
			return reps[len(reps)-1], nil
		}
	}
	return func() (*wse.Report, error) { return sess.Run(ctx, sh, inputs, opts...) }
}

// exportCmd compiles the flag-specified shape into the plan store without
// running it: the staging half of the pre-deployment warm-up recipe.
func exportCmd(c *config) error {
	if c.store == "" {
		return fmt.Errorf("export requires -store DIR")
	}
	sh, err := c.shape()
	if err != nil {
		return err
	}
	store, err := wse.OpenPlanStore(c.store)
	if err != nil {
		return err
	}
	sess := wse.NewSession(wse.SessionConfig{Options: c.options()})
	start := time.Now()
	st, err := sess.Warm(store, []wse.Shape{sh})
	if err != nil {
		return err
	}
	fmt.Printf("exported %s to %s in %v (%d compiled, %d already stored); store holds %d plans\n",
		c.collective, c.store, time.Since(start).Round(time.Millisecond),
		st.Compiled, st.Loaded+st.Resident, store.Len())
	return nil
}

// warmCmd decodes every stored plan into a fresh session's cache — what a
// serving process does before taking traffic — and reports the decode
// throughput and the resulting cache population. With an explicit -url
// it instead warms a *remote* daemon over the wire (POST /v1/warm): the
// daemon resolves each shape through its own chain, so fleets are
// pre-heated without filesystem access to their stores.
func warmCmd(c *config) error {
	if c.set["url"] {
		return remoteWarmCmd(c)
	}
	if c.store == "" {
		return fmt.Errorf("warm requires -store DIR (or -url URL for remote warming)")
	}
	store, err := wse.OpenPlanStore(c.store)
	if err != nil {
		return err
	}
	sess := wse.NewSession(wse.SessionConfig{Options: c.options(), Workers: c.workers})
	start := time.Now()
	st, err := sess.Warm(store, nil)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsecollect: warm (continuing):", err)
	}
	fmt.Printf("warmed %d plans from %s in %v (%d decoded, %d compiled)\n",
		st.Loaded+st.Compiled+st.Resident, c.store, elapsed.Round(time.Millisecond), st.Loaded, st.Compiled)
	keys := store.Keys()
	names := make([]string, 0, len(keys))
	for _, k := range keys {
		names = append(names, k.String())
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Println("  ", n)
	}
	return nil
}

// remoteWarmCmd warms a running daemon's plan cache over the wire. The
// shape list is the local -store's full key inventory when -store is
// given (pre-heat a fleet member from a staging store's catalogue,
// without the daemon ever reading that store), else the single shape
// the flags spell.
func remoteWarmCmd(c *config) error {
	var shapes []client.Shape
	if c.store != "" {
		store, err := wse.OpenPlanStore(c.store)
		if err != nil {
			return err
		}
		for _, k := range store.Keys() {
			shapes = append(shapes, client.Shape{
				Kind:   string(k.Kind),
				Alg:    string(k.Alg),
				Alg2D:  string(k.Alg2D),
				P:      k.P,
				Width:  k.Width,
				Height: k.Height,
				B:      k.B,
				Op:     k.Op.String(),
			})
		}
		if len(shapes) == 0 {
			return fmt.Errorf("store %s holds no plans to warm from", c.store)
		}
	} else {
		sh, err := c.shape()
		if err != nil {
			return err
		}
		shapes = append(shapes, client.Shape{
			Kind: string(sh.Kind), Alg: string(sh.Alg), Alg2D: string(sh.Alg2D),
			P: sh.P, Width: sh.Width, Height: sh.Height, B: sh.B,
			Op: strings.ToLower(c.opName),
		})
	}
	cl := client.New(client.Config{BaseURL: c.url})
	start := time.Now()
	res, err := cl.Warm(context.Background(), shapes)
	if err != nil {
		return err
	}
	fmt.Printf("remotely warmed %s in %v: %d fetched/compiled, %d already resident, %d failed\n",
		c.url, time.Since(start).Round(time.Millisecond), res.Warmed, res.Resident, res.Failed)
	for _, e := range res.Errors {
		fmt.Fprintln(os.Stderr, "wsecollect: warm:", e)
	}
	if res.Failed > 0 {
		return fmt.Errorf("%d shapes failed to warm", res.Failed)
	}
	return nil
}

// tenantSpec is one parsed -tenants entry.
type tenantSpec struct {
	name string
	cfg  wse.TenantConfig
}

// parseTenants parses the -tenants spec: comma-separated
// name:class:weight[:maxqueue] entries.
func parseTenants(spec string) ([]tenantSpec, error) {
	var out []tenantSpec
	for _, item := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("bad tenant %q (want name:class:weight[:maxqueue])", item)
		}
		ts := tenantSpec{name: parts[0]}
		switch strings.ToLower(parts[1]) {
		case "interactive":
			ts.cfg.Priority = wse.Interactive
		case "batch":
			ts.cfg.Priority = wse.Batch
		case "background":
			ts.cfg.Priority = wse.Background
		default:
			return nil, fmt.Errorf("bad tenant class %q (interactive, batch, background)", parts[1])
		}
		var err error
		if ts.cfg.Weight, err = strconv.Atoi(parts[2]); err != nil || ts.cfg.Weight < 1 {
			return nil, fmt.Errorf("bad tenant weight %q", parts[2])
		}
		if len(parts) == 4 {
			if ts.cfg.MaxQueue, err = strconv.Atoi(parts[3]); err != nil || ts.cfg.MaxQueue < 1 {
				return nil, fmt.Errorf("bad tenant maxqueue %q", parts[3])
			}
		}
		out = append(out, ts)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-tenants spec is empty")
	}
	return out, nil
}

// inputsFor builds all-ones inputs of the right arity for a shape.
func inputsFor(sh wse.Shape) [][]float32 {
	switch sh.Kind {
	case wse.KindBroadcast, wse.KindScatter, wse.KindBroadcast2D:
		return [][]float32{constVec(sh.B, 1)}
	case wse.KindGather, wse.KindAllGather:
		return chunks(sh.P, sh.B)
	case wse.KindReduce2D, wse.KindAllReduce2D:
		return constVectors(sh.Width*sh.Height, sh.B)
	}
	return constVectors(sh.P, sh.B)
}

// serveCmd is the multi-tenant serving demo: every -tenants tenant
// bursts -repeat copies of the flag shape at the session at once, so the
// worker pool saturates and the QoS scheduler decides who runs when.
// The per-tenant table then shows the policy at work: weighted-fair
// served counts, class precedence in the queue-wait quantiles, and
// ErrOverloaded rejections for tenants with a tight maxqueue bound —
// followed by the raw SchedStats dumped as JSON for dashboards.
func serveCmd(c *config) error {
	specs, err := parseTenants(c.tenants)
	if err != nil {
		return err
	}
	sh, err := c.shape()
	if err != nil {
		return err
	}
	repeat := c.repeat
	if !c.set["repeat"] {
		repeat = 64 // one request per tenant shows no contention; default to a burst
	}
	if repeat < 1 {
		repeat = 1
	}
	cfg := wse.SessionConfig{Options: c.options(), Workers: c.workers}
	if c.store != "" { // read/write-through, exactly as run mode attaches it
		store, err := wse.OpenPlanStore(c.store)
		if err != nil {
			return err
		}
		cfg.Store = store
	}
	sess := wse.NewSession(cfg)
	defer sess.Close()
	inputs := inputsFor(sh)

	start := time.Now()
	var wg sync.WaitGroup
	var rejected, cancelled, failed atomic.Int64
	ctx := context.Background()
	for _, ts := range specs {
		tn := sess.WithTenant(ts.name, ts.cfg)
		for i := 0; i < repeat; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				switch _, err := tn.Run(ctx, sh, inputs); {
				case errors.Is(err, wse.ErrOverloaded):
					rejected.Add(1)
				case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
					cancelled.Add(1)
				case err != nil:
					failed.Add(1)
					fmt.Fprintln(os.Stderr, "wsecollect: serve:", err)
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := sess.Close(); err != nil {
		return err
	}

	st := sess.SchedStats()
	fmt.Printf("served %d requests (%s of %d bytes each) from %d tenants in %v: %d ok, %d rejected, %d cancelled\n",
		len(specs)*repeat, c.collective, c.bytes, len(specs),
		elapsed.Round(time.Millisecond), int64(len(specs)*repeat)-rejected.Load()-cancelled.Load()-failed.Load(),
		rejected.Load(), cancelled.Load())
	fmt.Printf("%-12s %-12s %6s %7s %8s %9s %12s %12s %12s %12s\n",
		"tenant", "class", "weight", "served", "rejected", "cancelled",
		"wait p50", "wait p99", "exec p50", "exec p99")
	names := make([]string, 0, len(st.Tenants))
	for name := range st.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := st.Tenants[name]
		fmt.Printf("%-12s %-12s %6d %7d %8d %9d %12v %12v %12v %12v\n",
			name, ts.Class, ts.Weight, ts.Served, ts.Rejected, ts.Cancelled,
			ts.QueueWaitP50.Round(time.Microsecond), ts.QueueWaitP99.Round(time.Microsecond),
			ts.ExecP50.Round(time.Microsecond), ts.ExecP99.Round(time.Microsecond))
	}
	fmt.Printf("pool: %d workers, max queue depth %d, saturated %v of %v (%.0f%%)\n",
		st.Pool.Workers, st.Pool.MaxDepth, st.Pool.Saturated.Round(time.Millisecond),
		elapsed.Round(time.Millisecond), 100*float64(st.Pool.Saturated)/float64(elapsed))

	buf, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(buf))
	return nil
}

func runCmd(c *config) error {
	sh, err := c.shape()
	if err != nil {
		return err
	}
	repeat := c.repeat
	if repeat < 1 {
		repeat = 1
	}
	cfg := wse.SessionConfig{Options: c.options(), Workers: c.workers}
	if c.store != "" {
		store, err := wse.OpenPlanStore(c.store)
		if err != nil {
			return err
		}
		cfg.Store = store
	}
	sess := wse.NewSession(cfg)
	run := once(c, sess, sh)

	// Cold call: compiles the plan into the session cache (or, with a
	// store attached, decodes the stored plan).
	coldStart := time.Now()
	rep, err := run()
	if err != nil {
		return err
	}
	cold := time.Since(coldStart)

	// Warm calls: replay the cached plan, concurrently when asked. A
	// fixed pool of feeder goroutines (not one per repeat) drains the
	// remaining count; the session's worker pool bounds the simulations.
	var warm time.Duration
	if repeat > 1 {
		warmStart := time.Now()
		feeders := c.workers
		if feeders <= 0 {
			feeders = runtime.GOMAXPROCS(0)
		}
		if feeders > repeat-1 {
			feeders = repeat - 1
		}
		var remaining atomic.Int64
		remaining.Store(int64(repeat - 1))
		var wg sync.WaitGroup
		errs := make(chan error, feeders)
		for i := 0; i < feeders; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for remaining.Add(-1) >= 0 {
					if _, err := run(); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return err
		}
		warm = time.Since(warmStart) / time.Duration(repeat-1)
	}

	fmt.Printf("%s of %d bytes on %s\n", c.collective, c.bytes, describe(sh, c.alg, c.alg2d))
	fmt.Printf("  measured   %10d cycles (%.2f us at 850 MHz)\n", rep.Cycles, float64(rep.Cycles)/850)
	fmt.Printf("  predicted  %10.0f cycles (%.1f%% relative error)\n", rep.Predicted,
		100*abs(float64(rep.Cycles)-rep.Predicted)/float64(rep.Cycles))
	fmt.Printf("  energy     %10d wavelet-hops\n", rep.Stats.Hops)
	fmt.Printf("  contention %10d wavelets at the busiest PE\n", rep.Stats.MaxReceived)
	if rep.Stats.Noops > 0 {
		fmt.Printf("  thermal    %10d inserted no-ops\n", rep.Stats.Noops)
	}
	if len(rep.Root) > 0 {
		fmt.Printf("  result[0]  %10.1f\n", rep.Root[0])
	}
	if repeat > 1 || c.store != "" {
		st := sess.PlanStats()
		fmt.Printf("  plan cache %10d hits, %d misses (cold %v, warm %v/op)\n",
			st.Hits, st.Misses, cold.Round(time.Microsecond), warm.Round(time.Microsecond))
		if c.store != "" {
			fmt.Printf("  plan store %10d loads, %d errors\n", st.StoreHits, st.StoreErrors)
		}
	}
	return nil
}

func constVec(n int, v float32) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func constVectors(p, b int) [][]float32 {
	out := make([][]float32, p)
	for i := range out {
		out[i] = constVec(b, 1)
	}
	return out
}

// chunks splits an all-ones b-element vector into the per-PE chunks a
// compiled gather/allgather program expects, using the canonical split
// rule the compiler itself validates inputs against.
func chunks(p, b int) [][]float32 {
	_, sz := core.Chunks(p, b)
	out := make([][]float32, p)
	for i, n := range sz {
		out[i] = constVec(n, 1)
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
