// Command wsecollect runs a single collective on the simulated wafer-scale
// fabric and reports measured cycles, the model prediction, and the fabric
// cost metrics (energy, contention).
//
// Examples:
//
//	wsecollect -collective reduce -alg autogen -p 512 -bytes 1024
//	wsecollect -collective allreduce -alg auto -p 64 -bytes 4096 -op max
//	wsecollect -collective reduce2d -alg2d snake -grid 32x32 -bytes 256
//	wsecollect -collective broadcast -p 512 -bytes 16384
//	wsecollect -collective reduce -alg chain -p 128 -bytes 512 -thermal 0.01
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	wse "repro"
)

func main() {
	collective := flag.String("collective", "reduce", "reduce, allreduce, broadcast, reduce2d, allreduce2d, broadcast2d")
	alg := flag.String("alg", "auto", "1D algorithm: star, chain, tree, twophase, autogen, auto")
	alg2d := flag.String("alg2d", "auto", "2D algorithm: xy-star, xy-chain, xy-tree, xy-twophase, xy-autogen, snake, auto")
	p := flag.Int("p", 64, "row length for 1D collectives")
	grid := flag.String("grid", "16x16", "grid WxH for 2D collectives")
	bytes := flag.Int("bytes", 1024, "vector length in bytes (4 bytes per float32 wavelet)")
	opName := flag.String("op", "sum", "reduction operator: sum, max, min")
	tr := flag.Int("tr", 0, "ramp latency T_R (0 = WSE-2 default of 2)")
	thermal := flag.Float64("thermal", 0, "thermal no-op rate (paper: wafer inserts no-ops to avoid cracking)")
	skew := flag.Int64("skew", 0, "max per-PE clock skew in cycles")
	seed := flag.Uint64("seed", 1, "deterministic seed for skew/thermal")
	flag.Parse()

	if err := run(*collective, *alg, *alg2d, *p, *grid, *bytes, *opName, *tr, *thermal, *skew, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "wsecollect:", err)
		os.Exit(1)
	}
}

func run(collective, alg, alg2d string, p int, grid string, bytes int, opName string, tr int, thermal float64, skew int64, seed uint64) error {
	b := bytes / 4
	if b < 1 {
		return fmt.Errorf("vector must be at least 4 bytes")
	}
	var op wse.ReduceOp
	switch opName {
	case "sum":
		op = wse.Sum
	case "max":
		op = wse.Max
	case "min":
		op = wse.Min
	default:
		return fmt.Errorf("unknown op %q", opName)
	}
	opt := wse.Options{TR: tr, ThermalNoopRate: thermal, ClockSkewMax: skew, Seed: seed}

	var w, h int
	if n, err := fmt.Sscanf(grid, "%dx%d", &w, &h); n != 2 || err != nil {
		return fmt.Errorf("bad -grid %q (want WxH)", grid)
	}

	vec1d := make([][]float32, p)
	for i := range vec1d {
		vec1d[i] = constVec(b, 1)
	}
	vec2d := make([][]float32, w*h)
	for i := range vec2d {
		vec2d[i] = constVec(b, 1)
	}

	var rep *wse.Report
	var err error
	var shape string
	switch strings.ToLower(collective) {
	case "reduce":
		rep, err = wse.Reduce(vec1d, wse.Algorithm(alg), op, opt)
		shape = fmt.Sprintf("%dx1 PEs, alg=%s", p, alg)
	case "allreduce":
		rep, err = wse.AllReduce(vec1d, wse.Algorithm(alg), op, opt)
		shape = fmt.Sprintf("%dx1 PEs, alg=%s", p, alg)
	case "broadcast":
		rep, err = wse.Broadcast(constVec(b, 1), p, opt)
		shape = fmt.Sprintf("%dx1 PEs", p)
	case "reduce2d":
		rep, err = wse.Reduce2D(vec2d, w, h, wse.Algorithm2D(alg2d), op, opt)
		shape = fmt.Sprintf("%dx%d PEs, alg=%s", w, h, alg2d)
	case "allreduce2d":
		rep, err = wse.AllReduce2D(vec2d, w, h, wse.Algorithm2D(alg2d), op, opt)
		shape = fmt.Sprintf("%dx%d PEs, alg=%s", w, h, alg2d)
	case "broadcast2d":
		rep, err = wse.Broadcast2D(constVec(b, 1), w, h, opt)
		shape = fmt.Sprintf("%dx%d PEs", w, h)
	default:
		return fmt.Errorf("unknown collective %q", collective)
	}
	if err != nil {
		return err
	}

	fmt.Printf("%s of %d bytes on %s\n", collective, bytes, shape)
	fmt.Printf("  measured   %10d cycles (%.2f us at 850 MHz)\n", rep.Cycles, float64(rep.Cycles)/850)
	fmt.Printf("  predicted  %10.0f cycles (%.1f%% relative error)\n", rep.Predicted,
		100*abs(float64(rep.Cycles)-rep.Predicted)/float64(rep.Cycles))
	fmt.Printf("  energy     %10d wavelet-hops\n", rep.Stats.Hops)
	fmt.Printf("  contention %10d wavelets at the busiest PE\n", rep.Stats.MaxReceived)
	if rep.Stats.Noops > 0 {
		fmt.Printf("  thermal    %10d inserted no-ops\n", rep.Stats.Noops)
	}
	if len(rep.Root) > 0 {
		fmt.Printf("  result[0]  %10.1f (expect PE count for all-ones reduce input)\n", rep.Root[0])
	}
	return nil
}

func constVec(n int, v float32) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
