// Command wsecollect runs a collective on the simulated wafer-scale
// fabric and reports measured cycles, the model prediction, and the fabric
// cost metrics (energy, contention). Collectives execute through a
// wse.Session, so the fabric program is compiled once and -repeat replays
// the cached plan — pass -repeat to see the compiled-plan subsystem's
// cold/warm split, and -workers to replay concurrently.
//
// Examples:
//
//	wsecollect -collective reduce -alg autogen -p 512 -bytes 1024
//	wsecollect -collective allreduce -alg auto -p 64 -bytes 4096 -op max
//	wsecollect -collective reduce2d -alg2d snake -grid 32x32 -bytes 256
//	wsecollect -collective broadcast -p 512 -bytes 16384
//	wsecollect -collective reduce -alg chain -p 128 -bytes 512 -repeat 64 -workers 8
//	wsecollect -collective reduce2d -grid 512x512 -bytes 16 -shards 8 -cpuprofile cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	wse "repro"
)

func main() { os.Exit(realMain()) }

// realMain carries the exit code back to main so deferred cleanup (CPU
// profile flush) runs before the process exits.
func realMain() int {
	collective := flag.String("collective", "reduce", "reduce, allreduce, broadcast, reduce2d, allreduce2d, broadcast2d")
	alg := flag.String("alg", "auto", "1D algorithm: star, chain, tree, twophase, autogen, auto")
	alg2d := flag.String("alg2d", "auto", "2D algorithm: xy-star, xy-chain, xy-tree, xy-twophase, xy-autogen, snake, auto")
	p := flag.Int("p", 64, "row length for 1D collectives")
	grid := flag.String("grid", "16x16", "grid WxH for 2D collectives")
	bytes := flag.Int("bytes", 1024, "vector length in bytes (4 bytes per float32 wavelet)")
	opName := flag.String("op", "sum", "reduction operator: sum, max, min")
	tr := flag.Int("tr", 0, "ramp latency T_R (0 = WSE-2 default of 2)")
	thermal := flag.Float64("thermal", 0, "thermal no-op rate (paper: wafer inserts no-ops to avoid cracking)")
	skew := flag.Int64("skew", 0, "max per-PE clock skew in cycles")
	seed := flag.Uint64("seed", 1, "deterministic seed for skew/thermal")
	repeat := flag.Int("repeat", 1, "run the collective this many times through the plan cache")
	workers := flag.Int("workers", 0, "concurrent replays (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "row-band shards per fabric simulation (0/1 = serial engine; results are bit-identical)")
	maxCycles := flag.Int64("maxcycles", 0, "per-run simulated-cycle cap (0 = session default of 2^28; raise for very large serialized runs)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the runs to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wsecollect:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "wsecollect:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	if err := run(*collective, *alg, *alg2d, *p, *grid, *bytes, *opName, *tr, *thermal, *skew, *seed, *repeat, *workers, *shards, *maxCycles); err != nil {
		fmt.Fprintln(os.Stderr, "wsecollect:", err)
		return 1
	}
	return 0
}

func run(collective, alg, alg2d string, p int, grid string, bytes int, opName string, tr int, thermal float64, skew int64, seed uint64, repeat, workers, shards int, maxCycles int64) error {
	b := bytes / 4
	if b < 1 {
		return fmt.Errorf("vector must be at least 4 bytes")
	}
	if repeat < 1 {
		repeat = 1
	}
	var op wse.ReduceOp
	switch opName {
	case "sum":
		op = wse.Sum
	case "max":
		op = wse.Max
	case "min":
		op = wse.Min
	default:
		return fmt.Errorf("unknown op %q", opName)
	}
	opt := wse.Options{TR: tr, ThermalNoopRate: thermal, ClockSkewMax: skew, Seed: seed, Shards: shards, MaxCycles: maxCycles}
	sess := wse.NewSession(wse.SessionConfig{Options: opt, Workers: workers})

	var w, h int
	if n, err := fmt.Sscanf(grid, "%dx%d", &w, &h); n != 2 || err != nil {
		return fmt.Errorf("bad -grid %q (want WxH)", grid)
	}

	vec1d := make([][]float32, p)
	for i := range vec1d {
		vec1d[i] = constVec(b, 1)
	}
	vec2d := make([][]float32, w*h)
	for i := range vec2d {
		vec2d[i] = constVec(b, 1)
	}

	var once func() (*wse.Report, error)
	var shape string
	switch strings.ToLower(collective) {
	case "reduce":
		once = func() (*wse.Report, error) { return sess.Reduce(vec1d, wse.Algorithm(alg), op) }
		shape = fmt.Sprintf("%dx1 PEs, alg=%s", p, alg)
	case "allreduce":
		once = func() (*wse.Report, error) { return sess.AllReduce(vec1d, wse.Algorithm(alg), op) }
		shape = fmt.Sprintf("%dx1 PEs, alg=%s", p, alg)
	case "broadcast":
		data := constVec(b, 1)
		once = func() (*wse.Report, error) { return sess.Broadcast(data, p) }
		shape = fmt.Sprintf("%dx1 PEs", p)
	case "reduce2d":
		once = func() (*wse.Report, error) { return sess.Reduce2D(vec2d, w, h, wse.Algorithm2D(alg2d), op) }
		shape = fmt.Sprintf("%dx%d PEs, alg=%s", w, h, alg2d)
	case "allreduce2d":
		once = func() (*wse.Report, error) { return sess.AllReduce2D(vec2d, w, h, wse.Algorithm2D(alg2d), op) }
		shape = fmt.Sprintf("%dx%d PEs, alg=%s", w, h, alg2d)
	case "broadcast2d":
		data := constVec(b, 1)
		once = func() (*wse.Report, error) { return sess.Broadcast2D(data, w, h) }
		shape = fmt.Sprintf("%dx%d PEs", w, h)
	default:
		return fmt.Errorf("unknown collective %q", collective)
	}

	// Cold call: compiles the plan into the session cache.
	coldStart := time.Now()
	rep, err := once()
	if err != nil {
		return err
	}
	cold := time.Since(coldStart)

	// Warm calls: replay the cached plan, concurrently when asked. A
	// fixed pool of feeder goroutines (not one per repeat) drains the
	// remaining count; the session's worker pool bounds the simulations.
	var warm time.Duration
	if repeat > 1 {
		warmStart := time.Now()
		feeders := workers
		if feeders <= 0 {
			feeders = runtime.GOMAXPROCS(0)
		}
		if feeders > repeat-1 {
			feeders = repeat - 1
		}
		var remaining atomic.Int64
		remaining.Store(int64(repeat - 1))
		var wg sync.WaitGroup
		errs := make(chan error, feeders)
		for i := 0; i < feeders; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for remaining.Add(-1) >= 0 {
					if _, err := once(); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return err
		}
		warm = time.Since(warmStart) / time.Duration(repeat-1)
	}

	fmt.Printf("%s of %d bytes on %s\n", collective, bytes, shape)
	fmt.Printf("  measured   %10d cycles (%.2f us at 850 MHz)\n", rep.Cycles, float64(rep.Cycles)/850)
	fmt.Printf("  predicted  %10.0f cycles (%.1f%% relative error)\n", rep.Predicted,
		100*abs(float64(rep.Cycles)-rep.Predicted)/float64(rep.Cycles))
	fmt.Printf("  energy     %10d wavelet-hops\n", rep.Stats.Hops)
	fmt.Printf("  contention %10d wavelets at the busiest PE\n", rep.Stats.MaxReceived)
	if rep.Stats.Noops > 0 {
		fmt.Printf("  thermal    %10d inserted no-ops\n", rep.Stats.Noops)
	}
	if len(rep.Root) > 0 {
		fmt.Printf("  result[0]  %10.1f (expect PE count for all-ones reduce input)\n", rep.Root[0])
	}
	if repeat > 1 {
		st := sess.PlanStats()
		fmt.Printf("  plan cache %10d hits, %d misses (cold %v, warm %v/op)\n",
			st.Hits, st.Misses, cold.Round(time.Microsecond), warm.Round(time.Microsecond))
	}
	return nil
}

func constVec(n int, v float32) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
