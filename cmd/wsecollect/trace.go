package main

// The trace subcommand: pretty-print committed traces as indented span
// trees with self-times. Traces come from a running daemon's GET
// /debug/traces (the default) or from a -trace-file JSONL via -in, so
// the same view works live and post-mortem.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
)

// traceCmd fetches or reads traces and prints one tree per trace.
func traceCmd(c *config) error {
	var traces []*obs.Trace
	var err error
	if c.in != "" {
		traces, err = readTraceFile(c.in)
	} else {
		traces, err = fetchTraces(c.url, c.minMS)
	}
	if err != nil {
		return err
	}
	minDur := time.Duration(c.minMS * float64(time.Millisecond))
	shown := 0
	for _, tr := range traces {
		if tr.Duration < minDur {
			continue
		}
		printTrace(tr)
		shown++
	}
	if shown == 0 {
		fmt.Println("no traces (is the daemon running with tracing enabled, and has it served sampled requests?)")
	}
	return nil
}

// readTraceFile parses a wsed -trace-file: one JSON trace per line.
func readTraceFile(path string) ([]*obs.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []*obs.Trace
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20) // traces can be wide: up to 512 spans
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var tr obs.Trace
		if err := json.Unmarshal(line, &tr); err != nil {
			return nil, fmt.Errorf("%s: bad trace line: %v", path, err)
		}
		out = append(out, &tr)
	}
	return out, sc.Err()
}

// fetchTraces pulls the committed ring from a daemon.
func fetchTraces(baseURL string, minMS float64) ([]*obs.Trace, error) {
	url := fmt.Sprintf("%s/debug/traces?min_ms=%g", baseURL, minMS)
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%s: tracing is disabled on this daemon (run wsed with -trace)", baseURL)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	var out []*obs.Trace
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decode traces: %v", err)
	}
	return out, nil
}

// printTrace renders one trace as an indented tree. Each span line
// shows its duration and its self-time (duration minus the sum of its
// children's), so the slow level of the stack is visible at a glance.
func printTrace(tr *obs.Trace) {
	status := "ok"
	if tr.Error != "" {
		status = "ERROR " + tr.Error
	}
	fmt.Printf("trace %s  %s  %s  %s", tr.TraceID, tr.Root, fmtDur(tr.Duration), status)
	if tr.Dropped > 0 {
		fmt.Printf("  (%d spans dropped)", tr.Dropped)
	}
	fmt.Println()

	// A span whose parent id is absent from the trace is a local root:
	// "" for a trace minted here, a remote span id for one joined via
	// traceparent (the parent lives in another daemon's ring).
	ids := make(map[string]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		ids[sp.ID] = true
	}
	children := make(map[string][]obs.SpanRecord)
	var roots []obs.SpanRecord
	for _, sp := range tr.Spans {
		if ids[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool { return kids[i].Offset < kids[j].Offset })
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Offset < roots[j].Offset })
	for _, root := range roots {
		printSpan(root, children, 1)
	}
	fmt.Println()
}

func printSpan(sp obs.SpanRecord, children map[string][]obs.SpanRecord, depth int) {
	kids := children[sp.ID]
	self := sp.Duration
	for _, k := range kids {
		self -= k.Duration
	}
	if self < 0 {
		self = 0 // concurrent children can overlap past the parent's span
	}
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "  "
	}
	line := fmt.Sprintf("%s%-*s %10s", indent, 32-len(indent), sp.Name, fmtDur(sp.Duration))
	if len(kids) > 0 {
		line += fmt.Sprintf("  (self %s)", fmtDur(self))
	}
	if attrs := fmtAttrs(sp.Attrs); attrs != "" {
		line += "  " + attrs
	}
	if sp.Error != "" {
		line += "  ERROR " + sp.Error
	}
	fmt.Println(line)
	for _, k := range kids {
		printSpan(k, children, depth+1)
	}
}

// fmtAttrs renders span attributes compactly, keys sorted.
func fmtAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%v", k, attrs[k])
	}
	return out
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}
