package main

// wsecollect chaos: the failure-drill driver. It stands up a daemon (in
// process by default, or an external one via -url that was launched with
// WSE_FAILPOINTS armed), hammers it through the retrying client package
// with faults firing on the hot seams, and asserts the failure-model
// invariants the README promises:
//
//   - the daemon survives: /healthz still answers 200 after the storm;
//   - every failure is typed: the client saw only taxonomy statuses
//     (429/500/503/504 and 4xx), never a torn response;
//   - accounting balances (in-process mode): per tenant,
//     submitted = served + rejected + cancelled;
//   - retries recover: calls that failed transiently and were retried
//     to success are counted, with their recovery-latency p99.
//
// The trajectory point lands in BENCH_chaos.json.
//
//	wsecollect chaos -requests 500 -p 16 -bytes 64
//	wsecollect chaos -url http://127.0.0.1:8080 -requests 500
//
// (external mode: launch the daemon first, e.g.
//	WSE_FAILPOINTS="fabric.exec=error:p=0.05" wsed -addr :8080)

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	wse "repro"
	"repro/client"
	"repro/internal/faults"
	"repro/internal/serve"
)

// defaultChaosFaults is the in-process failpoint schedule when the
// caller doesn't bring their own: 5% random failure on every inner seam.
const defaultChaosFaults = "planstore.load=error:p=0.05;planstore.save=error:p=0.05;" +
	"plan.compile=error:p=0.05;fabric.exec=error:p=0.05"

func chaosCmd(c *config) error {
	sh, err := c.shape()
	if err != nil {
		return err
	}
	sw := wireShape(c, sh)
	wsh := client.Shape{Kind: sw.Kind, Alg: sw.Alg, Alg2D: sw.Alg2D,
		P: sw.P, Width: sw.Width, Height: sw.Height, B: sw.B, Op: sw.Op}
	inputs := inputsFor(sh)

	baseURL := c.url
	var session *wse.Session
	external := c.set["url"]
	if !external {
		// Self-hosted daemon on a loopback socket, failpoints armed
		// directly (same process). -failpoints overrides the default
		// schedule; WSE_FAILPOINTS from the environment also applies.
		spec := c.failpoints
		if spec == "" {
			spec = defaultChaosFaults
		}
		faults.SetSeed(int64(c.seed))
		if err := faults.Enable(spec); err != nil {
			return fmt.Errorf("bad -failpoints: %w", err)
		}
		defer faults.Reset()
		session = wse.NewSession(wse.SessionConfig{Workers: c.workers, Options: c.options()})
		srv := serve.New(serve.Config{Session: session, RequestTimeout: 30 * time.Second})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer func() {
			hs.Close()
			srv.Drain()
		}()
		baseURL = "http://" + ln.Addr().String()
		fmt.Printf("chaos: in-process daemon at %s, failpoints %s\n", baseURL, spec)
	}

	cl := client.New(client.Config{
		BaseURL:     baseURL,
		MaxAttempts: 5,
		BaseBackoff: 20 * time.Millisecond,
		MaxBackoff:  500 * time.Millisecond,
		// The drill wants to see recovery, not fast-fails: open late.
		BreakerThreshold: 50,
	})

	total := c.requests
	if total < 1 {
		total = 1
	}
	workers := c.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	var served, failed, shed, badReq, submitted int64
	var recovered []time.Duration // latency of calls that retried to success
	var recMu sync.Mutex
	var seq atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := seq.Add(1) - 1
				if i >= int64(total) {
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				before := cl.Metrics().Retries
				t0 := time.Now()
				var err error
				if i%10 == 7 { // async slice: keyed submit + wait
					var id string
					id, err = cl.Submit(ctx, wsh, inputs, fmt.Sprintf("chaos-%d", i))
					if err == nil {
						atomic.AddInt64(&submitted, 1)
						_, err = cl.Wait(ctx, id, 20*time.Millisecond)
					}
				} else {
					_, err = cl.Run(ctx, wsh, inputs)
				}
				elapsed := time.Since(t0)
				cancel()
				switch {
				case err == nil:
					atomic.AddInt64(&served, 1)
					if cl.Metrics().Retries > before {
						recMu.Lock()
						recovered = append(recovered, elapsed)
						recMu.Unlock()
					}
				case isShed(err):
					atomic.AddInt64(&shed, 1)
				case isCallerError(err):
					atomic.AddInt64(&badReq, 1)
				default:
					atomic.AddInt64(&failed, 1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Invariant: the daemon survived the storm.
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	healthy := cl.Healthy(hctx)
	hcancel()
	if !healthy {
		return fmt.Errorf("chaos: daemon unhealthy after the drill — it did not survive")
	}
	if served == 0 {
		return fmt.Errorf("chaos: no request ever succeeded — the stack is down, not degrading")
	}
	if badReq > 0 {
		return fmt.Errorf("chaos: %d caller-error (4xx) responses to well-formed requests", badReq)
	}

	// Invariant (in-process mode): the ledger balances per tenant.
	if session != nil {
		faults.Reset() // don't inject into the stats path below
		for name, tn := range session.SchedStats().Tenants {
			if tn.Submitted != tn.Served+tn.Rejected+tn.Cancelled {
				return fmt.Errorf("chaos: tenant %q accounting leak: %+v", name, tn)
			}
		}
	}

	m := cl.Metrics()
	var recP99 time.Duration
	if len(recovered) > 0 {
		sort.Slice(recovered, func(i, j int) bool { return recovered[i] < recovered[j] })
		recP99 = recovered[int(0.99*float64(len(recovered)-1))]
	}

	point := map[string]any{
		"bench":           "chaos",
		"url":             baseURL,
		"requests":        total,
		"workers":         workers,
		"elapsed_ns":      elapsed.Nanoseconds(),
		"served":          served,
		"failed":          failed,
		"shed":            shed,
		"submitted_async": submitted,
		"attempts":        m.Attempts,
		"retried":         m.Retries,
		"breaker_opens":   m.BreakerOpens,
		"breaker_rejects": m.FastFails,
		"recovered_calls": len(recovered),
		"recovery_p99_ns": recP99.Nanoseconds(),
		"daemon_survived": healthy,
		"failpoints":      chaosSpec(c, external),
		"host_cores":      runtime.NumCPU(),
		"gomaxprocs":      runtime.GOMAXPROCS(0),
	}
	if runtime.NumCPU() <= 2 {
		point["host_note"] = "few-core host: daemon, client and fabric simulations share cores; recovery latency includes their mutual displacement"
	}
	buf, err := json.MarshalIndent(point, "", "  ")
	if err != nil {
		return err
	}
	out := c.out
	if !c.set["out"] {
		out = "BENCH_chaos.json"
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("chaos: %d requests in %v: served=%d failed=%d shed=%d | %d retries recovered %d calls (recovery p99 %v)\n",
		total, elapsed.Round(time.Millisecond), served, failed, shed,
		m.Retries, len(recovered), recP99.Round(time.Microsecond))
	fmt.Printf("wrote %s\n", out)
	return nil
}

// chaosSpec reports which failpoint schedule the drill ran under, for
// the trajectory point.
func chaosSpec(c *config, external bool) string {
	if external {
		return "external daemon (WSE_FAILPOINTS at its launch)"
	}
	if c.failpoints != "" {
		return c.failpoints
	}
	return defaultChaosFaults
}

// isShed reports a deadline/backpressure outcome: the request was shed
// (504) or still overloaded after every retry (429) — degraded service,
// not failure.
func isShed(err error) bool {
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusGatewayTimeout || ae.Status == http.StatusTooManyRequests
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// isCallerError reports a 4xx other than 429 — under chaos these are
// driver bugs, and the drill fails loudly on them.
func isCallerError(err error) bool {
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.Status >= 400 && ae.Status < 500 && ae.Status != http.StatusTooManyRequests
	}
	return false
}
