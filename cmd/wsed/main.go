// Command wsed is the network serving daemon for the Shape-first verbs:
// a wse.Session behind an HTTP surface. Clients POST JSON shapes to
// /v1/run, /v1/predict and /v1/bound (or /v1/submit + /v1/jobs/{id} for
// the async tier), tenant identity rides an auth header into the
// session's QoS scheduler, /metrics feeds Prometheus, and SIGTERM drains
// gracefully: in-flight requests finish, new ones get 503, the session
// closes, the listener stops.
//
//	wsed -addr :8080 -store /var/lib/wse/plans \
//	     -tenants "fg:interactive:4:64,bulk:batch:1" \
//	     -default-tenant batch:1:32
//
// See internal/serve for the endpoint and wire-format reference, and
// `wsecollect load` for the matching load generator.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	wse "repro"
	"repro/internal/faults"
	"repro/internal/serve"
)

func main() { os.Exit(realMain()) }

func realMain() int {
	fs := flag.NewFlagSet("wsed", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "session worker pool size (0 = GOMAXPROCS)")
	cache := fs.Int("cache", 0, "plan cache capacity (0 = default of 128)")
	storeDir := fs.String("store", "", "plan store directory (read/write-through when set)")
	warm := fs.Bool("warm", false, "preload every stored plan before listening (requires -store)")
	tenants := fs.String("tenants", "", "pre-registered tenants: comma list of name:class:weight[:maxqueue]")
	defTenant := fs.String("default-tenant", "batch:1", "QoS for unknown tenant names: class:weight[:maxqueue]")
	retryAfter := fs.Duration("retry-after", time.Second, "floor of the load-derived Retry-After hint on 429 responses")
	reqTimeout := fs.Duration("request-timeout", 0, "server-side deadline per synchronous request (0 = unbounded; clients tighten per request via X-WSE-Deadline-Ms)")
	jobTTL := fs.Duration("job-ttl", 5*time.Minute, "how long completed async jobs stay pollable")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "cap on the SIGTERM graceful drain")
	maxCycles := fs.Int64("maxcycles", 0, "per-run simulated-cycle cap (0 = session default of 2^28)")
	shards := fs.Int("shards", 0, "row-band shards per fabric simulation (0 = auto-tune from GOMAXPROCS)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	logger := log.New(os.Stderr, "wsed: ", log.LstdFlags)

	defCfg, err := parseTenantConfig(*defTenant)
	if err != nil {
		logger.Println(err)
		return 2
	}
	specs, err := serve.ParseTenants(*tenants)
	if err != nil {
		logger.Println(err)
		return 2
	}

	cfg := wse.SessionConfig{
		Options:           wse.Options{MaxCycles: *maxCycles, Shards: *shards},
		PlanCacheCapacity: *cache,
		Workers:           *workers,
		Scheduler:         wse.SchedulerConfig{DefaultTenant: defCfg},
	}
	var store *wse.PlanStore
	if *storeDir != "" {
		if store, err = wse.OpenPlanStore(*storeDir); err != nil {
			logger.Println(err)
			return 1
		}
		cfg.Store = store
	}
	sess := wse.NewSession(cfg)
	if *warm {
		if store == nil {
			logger.Println("-warm requires -store DIR")
			return 2
		}
		st, err := sess.Warm(store, nil)
		if err != nil {
			logger.Println("warm (continuing):", err)
		}
		logger.Printf("warmed %d plans from %s (%d decoded, %d compiled)", st.Loaded+st.Compiled+st.Resident, *storeDir, st.Loaded, st.Compiled)
	}

	srv := serve.New(serve.Config{
		Session:        sess,
		Store:          store,
		DefaultTenant:  defCfg,
		Tenants:        specs,
		RetryAfter:     *retryAfter,
		RequestTimeout: *reqTimeout,
		JobTTL:         *jobTTL,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigs
		logger.Printf("%v: draining (in-flight requests finish, new requests get 503)", sig)
		// Admission stops first so the drain is observable immediately;
		// Shutdown then waits for in-flight handlers, and Drain closes
		// the session's queues and worker pool behind them.
		srv.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Println("shutdown:", err)
		}
		if err := srv.Drain(); err != nil {
			logger.Println("drain:", err)
		}
		logger.Println("drained")
	}()

	// A daemon running a chaos drill should say so: failpoints armed via
	// WSE_FAILPOINTS would otherwise be indistinguishable from real faults.
	if armed := faults.Active(); len(armed) > 0 {
		logger.Printf("FAILPOINTS ARMED (chaos drill): %s", strings.Join(armed, "; "))
	}
	logger.Printf("listening on %s (%d pre-registered tenants, store=%q)", *addr, len(specs), *storeDir)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Println(err)
		return 1
	}
	<-done // ListenAndServe returns as soon as Shutdown starts; let it finish
	return 0
}

// parseTenantConfig parses class:weight[:maxqueue] — a -tenants entry
// without the leading name.
func parseTenantConfig(spec string) (wse.TenantConfig, error) {
	var cfg wse.TenantConfig
	parts := strings.Split(strings.TrimSpace(spec), ":")
	if len(parts) < 2 || len(parts) > 3 {
		return cfg, fmt.Errorf("bad -default-tenant %q (want class:weight[:maxqueue])", spec)
	}
	var err error
	if cfg.Priority, err = serve.ParseTenantClass(parts[0]); err != nil {
		return cfg, err
	}
	if cfg.Weight, err = strconv.Atoi(parts[1]); err != nil || cfg.Weight < 1 {
		return cfg, fmt.Errorf("bad -default-tenant weight %q", parts[1])
	}
	if len(parts) == 3 {
		if cfg.MaxQueue, err = strconv.Atoi(parts[2]); err != nil || cfg.MaxQueue < 1 {
			return cfg, fmt.Errorf("bad -default-tenant maxqueue %q", parts[2])
		}
	}
	return cfg, nil
}
