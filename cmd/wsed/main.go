// Command wsed is the network serving daemon for the Shape-first verbs:
// a wse.Session behind an HTTP surface. Clients POST JSON shapes to
// /v1/run, /v1/predict and /v1/bound (or /v1/submit + /v1/jobs/{id} for
// the async tier), tenant identity rides an auth header into the
// session's QoS scheduler, /metrics feeds Prometheus, and SIGTERM drains
// gracefully: in-flight requests finish, new ones get 503, the session
// closes, the listener stops.
//
//	wsed -addr :8080 -store /var/lib/wse/plans \
//	     -tenants "fg:interactive:4:64,bulk:batch:1" \
//	     -default-tenant batch:1:32
//
// Fleet mode: workers given -peers resolve plan-cache misses through a
// composed chain — shared store, then peer blob fetch (GET
// /v1/plans/{key} against each peer, raced when there are several),
// then compile with write-back — so a fleet compiles each distinct
// shape once, ever. A thin router runs with -mode front -peers ...: it
// owns no session and consistent-hashes each request's canonical plan
// key across the workers, keeping every worker's LRU hot on its own
// key slice, with ring-successor failover when a worker dies.
//
//	wsed -addr :8081 -store /srv/plans -peers http://w0:8080   # worker
//	wsed -addr :8080 -mode front -peers http://w0:8081,http://w1:8082
//
// See internal/serve for the endpoint and wire-format reference, and
// `wsecollect load` for the matching load generator.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	wse "repro"
	"repro/client"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/resolve"
	"repro/internal/serve"
)

func main() { os.Exit(realMain()) }

func realMain() int {
	fs := flag.NewFlagSet("wsed", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "session worker pool size (0 = GOMAXPROCS)")
	cache := fs.Int("cache", 0, "plan cache capacity (0 = default of 128)")
	storeDir := fs.String("store", "", "plan store directory (read/write-through when set)")
	warm := fs.Bool("warm", false, "preload every stored plan before listening (requires -store)")
	tenants := fs.String("tenants", "", "pre-registered tenants: comma list of name:class:weight[:maxqueue]")
	defTenant := fs.String("default-tenant", "batch:1", "QoS for unknown tenant names: class:weight[:maxqueue]")
	retryAfter := fs.Duration("retry-after", time.Second, "floor of the load-derived Retry-After hint on 429 responses")
	reqTimeout := fs.Duration("request-timeout", 0, "server-side deadline per synchronous request (0 = unbounded; clients tighten per request via X-WSE-Deadline-Ms)")
	jobTTL := fs.Duration("job-ttl", 5*time.Minute, "how long completed async jobs stay pollable")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "cap on the SIGTERM graceful drain")
	maxCycles := fs.Int64("maxcycles", 0, "per-run simulated-cycle cap (0 = session default of 2^28)")
	shards := fs.Int("shards", 0, "row-band shards per fabric simulation (0 = auto-tune from GOMAXPROCS)")
	mode := fs.String("mode", "serve", "serve (worker daemon) or front (consistent-hash router over -peers)")
	peers := fs.String("peers", "", "comma-separated peer wsed base URLs (worker: resolve plans from them; front: route across them)")
	verifyStore := fs.Bool("verify-store", false, "run the plan store corruption sweep at startup, quarantining bad blobs (requires -store)")
	traceOn := fs.Bool("trace", true, "enable request tracing (spans, GET /debug/traces)")
	traceSample := fs.Float64("trace-sample", 1, "head-sampling probability in [0,1]; errored and slow traces are kept regardless")
	traceSlow := fs.Duration("trace-slow", 0, "keep any trace at least this slow even when not head-sampled (0 = off)")
	traceFile := fs.String("trace-file", "", "append committed traces as JSON lines to this file")
	debugAddr := fs.String("debug-addr", "", "separate listener for net/http/pprof (never mounted on the public address)")
	slowMS := fs.Int64("slow-ms", 0, "log one structured line per request slower than this many milliseconds (rate-limited; 0 = off)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	logger := log.New(os.Stderr, "wsed: ", log.LstdFlags)
	peerList := splitPeers(*peers)

	tracer, closeTracer, err := buildTracer(*traceOn, *traceSample, *traceSlow, *traceFile)
	if err != nil {
		logger.Println(err)
		return 1
	}
	defer closeTracer()
	if *debugAddr != "" {
		startDebugServer(logger, *debugAddr)
	}

	if *mode == "front" {
		return runFront(logger, *addr, peerList, wse.Options{MaxCycles: *maxCycles, Shards: *shards}, *drainTimeout, tracer)
	}
	if *mode != "serve" {
		logger.Printf("bad -mode %q (serve, front)", *mode)
		return 2
	}

	defCfg, err := parseTenantConfig(*defTenant)
	if err != nil {
		logger.Println(err)
		return 2
	}
	specs, err := serve.ParseTenants(*tenants)
	if err != nil {
		logger.Println(err)
		return 2
	}

	cfg := wse.SessionConfig{
		Options:           wse.Options{MaxCycles: *maxCycles, Shards: *shards},
		PlanCacheCapacity: *cache,
		Workers:           *workers,
		Scheduler:         wse.SchedulerConfig{DefaultTenant: defCfg},
	}
	var store *wse.PlanStore
	if *storeDir != "" {
		if store, err = wse.OpenPlanStore(*storeDir); err != nil {
			logger.Println(err)
			return 1
		}
		cfg.Store = store
	}
	if *verifyStore {
		if store == nil {
			logger.Println("-verify-store requires -store DIR")
			return 2
		}
		ok, quarantined, err := store.Verify()
		if err != nil {
			logger.Println("verify-store (continuing):", err)
		}
		for _, q := range quarantined {
			logger.Printf("verify-store: quarantined corrupt blob %s", q)
		}
		logger.Printf("verify-store: %d plans intact, %d quarantined", ok, len(quarantined))
	}
	// A worker with a store or peers resolves misses through a composed
	// chain instead of the cache's built-in store→compile path: store
	// and peers are optional stages (their failures degrade to the next
	// stage, never a 5xx), compile is the mandatory last resort, and
	// write-back pushes fetched/compiled plans into the store so the
	// fleet converges to zero recompiles.
	var chain resolve.Resolver
	if store != nil || len(peerList) > 0 {
		var stages []resolve.Resolver
		if store != nil {
			stages = append(stages, resolve.Optional(resolve.Store(store)))
		}
		if len(peerList) > 0 {
			peerStages := make([]resolve.Resolver, len(peerList))
			for i, u := range peerList {
				peerStages[i] = resolve.Peer(u, client.Config{})
			}
			peerStage := peerStages[0]
			if len(peerStages) > 1 {
				peerStage = resolve.Parallel(peerStages...)
			}
			if store != nil {
				peerStage = resolve.WriteBack(peerStage, store)
			}
			stages = append(stages, resolve.Optional(peerStage))
		}
		comp := resolve.Compiler()
		if store != nil {
			comp = resolve.WriteBack(comp, store)
		}
		stages = append(stages, comp)
		chain = resolve.Sequential(stages...)
		cfg.Resolver = chain
	}
	sess := wse.NewSession(cfg)
	if *warm {
		if store == nil {
			logger.Println("-warm requires -store DIR")
			return 2
		}
		st, err := sess.Warm(store, nil)
		if err != nil {
			logger.Println("warm (continuing):", err)
		}
		logger.Printf("warmed %d plans from %s (%d decoded, %d compiled)", st.Loaded+st.Compiled+st.Resident, *storeDir, st.Loaded, st.Compiled)
	}

	srv := serve.New(serve.Config{
		Session:        sess,
		Store:          store,
		Resolver:       chain,
		DefaultTenant:  defCfg,
		Tenants:        specs,
		RetryAfter:     *retryAfter,
		RequestTimeout: *reqTimeout,
		JobTTL:         *jobTTL,
		Tracer:         tracer,
		SlowThreshold:  time.Duration(*slowMS) * time.Millisecond,
		SlowLogger:     logger,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigs
		logger.Printf("%v: draining (in-flight requests finish, new requests get 503)", sig)
		// Admission stops first so the drain is observable immediately;
		// Shutdown then waits for in-flight handlers, and Drain closes
		// the session's queues and worker pool behind them.
		srv.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Println("shutdown:", err)
		}
		if err := srv.Drain(); err != nil {
			logger.Println("drain:", err)
		}
		logger.Println("drained")
	}()

	// A daemon running a chaos drill should say so: failpoints armed via
	// WSE_FAILPOINTS would otherwise be indistinguishable from real faults.
	if armed := faults.Active(); len(armed) > 0 {
		logger.Printf("FAILPOINTS ARMED (chaos drill): %s", strings.Join(armed, "; "))
	}
	logger.Printf("listening on %s (%d pre-registered tenants, store=%q, peers=%d)", *addr, len(specs), *storeDir, len(peerList))
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Println(err)
		return 1
	}
	<-done // ListenAndServe returns as soon as Shutdown starts; let it finish
	return 0
}

// runFront serves -mode front: a sessionless consistent-hash router
// over the worker list. SIGTERM stops the listener after in-flight
// forwards complete; there is no session to drain.
func runFront(logger *log.Logger, addr string, workers []string, opt wse.Options, drainTimeout time.Duration, tracer *obs.Tracer) int {
	if len(workers) == 0 {
		logger.Println("-mode front requires -peers URL[,URL...]")
		return 2
	}
	front := serve.NewFront(serve.FrontConfig{Workers: workers, Options: opt, Tracer: tracer})
	httpSrv := &http.Server{Addr: addr, Handler: front.Handler()}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigs
		logger.Printf("%v: stopping front", sig)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Println("shutdown:", err)
		}
	}()
	logger.Printf("front listening on %s, routing across %d workers: %s", addr, len(workers), strings.Join(workers, ", "))
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Println(err)
		return 1
	}
	<-done
	return 0
}

// buildTracer assembles the daemon's tracer from the -trace* flags: nil
// (and zero per-request overhead) when tracing is off, otherwise head
// sampling at -trace-sample with errored and over--trace-slow traces
// kept regardless, optionally appending committed traces to -trace-file
// as JSON lines. The returned closer flushes and detaches the tracer.
func buildTracer(on bool, sample float64, slow time.Duration, file string) (*obs.Tracer, func(), error) {
	if !on {
		return nil, func() {}, nil
	}
	cfg := obs.Config{Sample: sample, SlowThreshold: slow}
	var f *os.File
	if file != "" {
		var err error
		f, err = os.OpenFile(file, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("trace-file: %w", err)
		}
		cfg.Sink = f
	}
	t := obs.NewTracer(cfg)
	return t, func() {
		t.Close()
		if f != nil {
			f.Close()
		}
	}, nil
}

// startDebugServer exposes net/http/pprof on its own listener — a fresh
// mux on a separate address, never the public one: profiling is an
// operator surface, not part of the API, and -debug-addr should bind a
// loopback or otherwise-firewalled address.
func startDebugServer(logger *log.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		logger.Printf("debug listener (pprof) on %s", addr)
		if err := http.ListenAndServe(addr, mux); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Println("debug listener:", err)
		}
	}()
}

// splitPeers parses the -peers list, trimming blanks and trailing
// slashes so ring members and client base URLs compare equal.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseTenantConfig parses class:weight[:maxqueue] — a -tenants entry
// without the leading name.
func parseTenantConfig(spec string) (wse.TenantConfig, error) {
	var cfg wse.TenantConfig
	parts := strings.Split(strings.TrimSpace(spec), ":")
	if len(parts) < 2 || len(parts) > 3 {
		return cfg, fmt.Errorf("bad -default-tenant %q (want class:weight[:maxqueue])", spec)
	}
	var err error
	if cfg.Priority, err = serve.ParseTenantClass(parts[0]); err != nil {
		return cfg, err
	}
	if cfg.Weight, err = strconv.Atoi(parts[1]); err != nil || cfg.Weight < 1 {
		return cfg, fmt.Errorf("bad -default-tenant weight %q", parts[1])
	}
	if len(parts) == 3 {
		if cfg.MaxQueue, err = strconv.Atoi(parts[2]); err != nil || cfg.MaxQueue < 1 {
			return cfg, fmt.Errorf("bad -default-tenant maxqueue %q", parts[2])
		}
	}
	return cfg, nil
}
