// Command wsefigures regenerates the tables and figures of "Near-Optimal
// Wafer-Scale Reduce" (HPDC 2024) on the fabric simulator and performance
// model.
//
// Usage:
//
//	wsefigures [-fig all|fig1|fig8|fig10|fig11a|...|headline] [-full] [-csv dir]
//
// The default -quick profile runs the 1D sweeps at the paper's full 512-PE
// scale with a thinned vector-length grid and the 2D sweeps at 16×16; -full
// uses the complete 4 B..16 KB grid and 64×64 measured 2D runs (slower).
// Model-only figures (1, 8, 10, the 512×512 projections) always run at
// paper scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (all, fig1, fig8, fig10, fig11a..fig13c, headline)")
	full := flag.Bool("full", false, "use the paper-scale sweep grid (slower)")
	csvDir := flag.String("csv", "", "also write per-figure CSV files into this directory")
	flag.Parse()

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	if err := run(cfg, strings.ToLower(*fig), *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "wsefigures:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, fig, csvDir string) error {
	if fig == "all" || fig == "headline" {
		rep, err := cfg.RunAll()
		if err != nil {
			return err
		}
		if fig == "all" {
			fmt.Print(rep.Render())
		} else {
			fmt.Print(experiments.RenderHeadline(rep.Claims))
		}
		if csvDir != "" {
			for _, f := range rep.Figures {
				if err := writeCSV(csvDir, f.ID, f.CSV()); err != nil {
					return err
				}
			}
		}
		return nil
	}

	var figures []*experiments.Figure
	var heatmaps []*experiments.Heatmap
	var err error
	switch fig {
	case "fig1":
		heatmaps = experiments.Fig1()
	case "fig8":
		heatmaps = []*experiments.Heatmap{experiments.Fig8(), experiments.Fig8AutoGen()}
	case "fig10":
		heatmaps = []*experiments.Heatmap{experiments.Fig10()}
	case "fig11a":
		figures, err = one(cfg.Fig11a())
	case "fig11b":
		figures, err = one(cfg.Fig11b())
	case "fig11c":
		figures, err = one(cfg.Fig11c())
	case "fig12a":
		figures, err = one(cfg.Fig12a())
	case "fig12b":
		figures, err = one(cfg.Fig12b())
	case "fig12c":
		figures, err = one(cfg.Fig12c())
	case "fig13a":
		figures, err = one(cfg.Fig13a())
		figures = append(figures, cfg.Fig13Model512(false))
	case "fig13b":
		figures, err = one(cfg.Fig13b())
		figures = append(figures, cfg.Fig13Model512(true))
	case "fig13c":
		figures, err = one(cfg.Fig13c())
	case "ring":
		figures, err = one(cfg.RingValidation())
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	if err != nil {
		return err
	}
	for _, h := range heatmaps {
		fmt.Println(h.Render())
	}
	for _, f := range figures {
		fmt.Println(f.Table())
		if csvDir != "" {
			if err := writeCSV(csvDir, f.ID, f.CSV()); err != nil {
				return err
			}
		}
	}
	return nil
}

func one(f *experiments.Figure, err error) ([]*experiments.Figure, error) {
	if err != nil {
		return nil, err
	}
	return []*experiments.Figure{f}, nil
}

func writeCSV(dir, id, content string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, id+".csv"), []byte(content), 0o644)
}
