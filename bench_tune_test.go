package wse_test

// Benchmark of the workload autotuner: tune the example training-step
// workload's shapes, verify the winners land in a plan store a cold
// session replays with zero compiles, and write BENCH_tune.json — per
// tuned kind, the measured-vs-lower-bound optimality ratio (the paper's
// Figure 1 question, answered with measured cycles) and the speedup
// tuning bought over the untuned request.
//
// This file is an external test package (wse_test): the tune package
// imports repro, so it cannot be imported from package wse itself.

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	wse "repro"
	"repro/internal/workload"
	"repro/internal/workload/tune"
)

// tuneBenchHostMeta mirrors benchHostMeta (package wse, unreachable
// from an external test package): the uniform host stamp every
// BENCH_*.json point carries.
func tuneBenchHostMeta(point map[string]any) {
	point["host_cores"] = runtime.NumCPU()
	point["gomaxprocs"] = runtime.GOMAXPROCS(0)
	if runtime.NumCPU() == 1 {
		point["host_note"] = "single-core host: concurrent/sharded numbers show overhead parity and queueing, not parallel speedup; re-measure on a multi-core box"
	}
}

// tuneBenchWorkload is the shape mix BENCH_tune.json scores: the
// training-step DAG of examples/workloads/trainstep.wl.
func tuneBenchWorkload(b *testing.B) *workload.Workload {
	b.Helper()
	w, err := workload.New("train-step").
		Step("halo", workload.Params{"p": "64", "b": "256"}).
		Step("gemv", workload.Params{"p": "64", "b": "256"}, "halo").
		Step("allreduce", workload.Params{"p": "64", "b": "256", "name": "grad-allreduce"}, "gemv").
		Step("allreduce", workload.Params{"p": "64", "b": "64", "op": "max", "name": "grad-norm"}, "gemv").
		Step("reducescatter", workload.Params{"p": "64", "b": "256", "name": "optim"}, "grad-allreduce", "grad-norm").
		Step("allgather", workload.Params{"p": "64", "b": "256", "name": "redistribute"}, "optim").
		Build()
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkTune(b *testing.B) {
	ctx := context.Background()
	w := tuneBenchWorkload(b)
	cfg := tune.Config{Repeat: 2}

	var tunings []tune.Tuning
	var tuneWall time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		var err error
		tunings, err = tune.Tune(ctx, w.Shapes(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		tuneWall = time.Since(start)
	}
	b.StopTimer()

	// The winners must persist and serve cold: export into a store, open
	// a fresh session on it, and replay every tuned shape — zero
	// compiles, every miss satisfied by the store, cycles unchanged.
	store, err := wse.OpenPlanStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	exported, err := tune.ExportWinners(ctx, tunings, store)
	if err != nil {
		b.Fatal(err)
	}
	cold := wse.NewSession(wse.SessionConfig{Store: store, PlanCacheCapacity: 32})
	defer cold.Close()
	for _, t := range tunings {
		sh := t.Tuned()
		rep, err := cold.Run(ctx, sh, workload.BaseInputs(sh, "tune:"+string(sh.Kind)), wse.WithOptions(t.Options))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Cycles != t.Cycles {
			b.Fatalf("%s: cold replay %d cycles, tuned %d", sh.Kind, rep.Cycles, t.Cycles)
		}
	}
	stats := cold.PlanStats()
	if stats.StoreHits != stats.Misses {
		b.Fatalf("cold session compiled: %d store hits of %d misses", stats.StoreHits, stats.Misses)
	}

	var kinds []map[string]any
	for _, t := range tunings {
		if t.TunedVsDefault < 1 {
			b.Fatalf("%s: tuning made the shape slower: %v", t.Shape.Kind, t.TunedVsDefault)
		}
		alg := string(t.Tuned().Alg)
		if a2 := string(t.Tuned().Alg2D); a2 != "" {
			alg = a2
		}
		kinds = append(kinds, map[string]any{
			"kind":              string(t.Shape.Kind),
			"p":                 t.Shape.P,
			"b":                 t.Shape.B,
			"alg":               alg,
			"queue_cap":         t.Options.QueueCap,
			"shards":            t.Options.Shards,
			"default_cycles":    t.DefaultCycles,
			"tuned_cycles":      t.Cycles,
			"bound_cycles":      t.Bound,
			"achieved_vs_bound": t.AchievedVsBound,
			"tuned_vs_default":  t.TunedVsDefault,
		})
		b.ReportMetric(t.AchievedVsBound, string(t.Shape.Kind)+"_vs_bound")
	}

	point := map[string]any{
		"bench":           "BenchmarkTune",
		"workload":        w.Name,
		"shapes_tuned":    len(tunings),
		"tune_wall_ns":    tuneWall.Nanoseconds(),
		"plans_exported":  exported,
		"cold_store_hits": stats.StoreHits,
		"cold_misses":     stats.Misses,
		"cold_compiles":   stats.Misses - stats.StoreHits,
		"per_kind":        kinds,
		"note":            "achieved_vs_bound: measured winner cycles over the paper's runtime lower bound; tuned_vs_default: untuned-request cycles over winner cycles (>=1, the default is a candidate)",
	}
	tuneBenchHostMeta(point)
	buf, err := json.MarshalIndent(point, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_tune.json", append(buf, '\n'), 0o644); err != nil {
		b.Logf("BENCH_tune.json not written: %v", err)
	}
}
