package wse

// Benchmarks of the plan-persistence subsystem: what acquiring a plan
// costs cold (full model-driven compile), from the content-addressed
// store (disk read + SHA-256 verification + decode), and on a cache hit —
// and what the first request costs on a warm-started session versus a
// steady-state cached replay. The headline numbers are written to
// BENCH_store.json as a trajectory point.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/plan"
)

// BenchmarkWarmVsCold measures the tracked reduce1d p=512 B=16 shape
// through every plan-acquisition path. The acceptance bar is the last two
// corners: first-request latency on a session warmed from a populated
// store must sit at cache-hit replay latency, i.e. no compile on the
// serving path.
func BenchmarkWarmVsCold(b *testing.B) {
	dir := b.TempDir()
	store, err := OpenPlanStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	shape := Shape{Kind: KindReduce, Alg: Auto, P: planBenchP, B: planBenchB, Op: Sum}
	stage := NewSession(SessionConfig{})
	if st, err := stage.Warm(store, []Shape{shape}); err != nil || st.Compiled != 1 {
		b.Fatalf("staging warm: %+v, %v", st, err)
	}
	key := store.Keys()[0]
	vectors := constVectors(planBenchP, planBenchB)

	point := map[string]any{
		"bench": "warm-vs-cold",
		"shape": map[string]any{
			"kind": "reduce1d", "alg": "auto",
			"p": planBenchP, "b": planBenchB,
		},
	}
	benchHostMeta(point)

	var compileNs, storeLoadNs, cacheHitNs float64
	b.Run("compile-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Compile(planBenchReq()); err != nil {
				b.Fatal(err)
			}
		}
		compileNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("store-decode-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok, err := store.Load(key); err != nil || !ok {
				b.Fatalf("load: ok=%v err=%v", ok, err)
			}
		}
		storeLoadNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	cache := plan.NewCache(8)
	if _, err := cache.Get(planBenchReq()); err != nil {
		b.Fatal(err)
	}
	b.Run("cache-hit-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cache.Get(planBenchReq()); err != nil {
				b.Fatal(err)
			}
		}
		cacheHitNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	// First-request latency on a freshly warm-started serving process.
	// Session construction and the Warm pass happen off the clock: the
	// measured region is exactly what a caller sees on request one.
	var warmFirstNs float64
	b.Run("warm-first-request", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			serve := NewSession(SessionConfig{})
			if st, err := serve.Warm(store, nil); err != nil || st.Loaded != 1 {
				b.Fatalf("warm: %+v, %v", st, err)
			}
			b.StartTimer()
			if _, err := serve.Reduce(vectors, Auto, Sum); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			serve.Close() // release the workers before the next iteration's session
			b.StartTimer()
		}
		warmFirstNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	sess := NewSession(SessionConfig{})
	if _, err := sess.Reduce(vectors, Auto, Sum); err != nil {
		b.Fatal(err)
	}
	var replayNs float64
	b.Run("cached-replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sess.Reduce(vectors, Auto, Sum); err != nil {
				b.Fatal(err)
			}
		}
		replayNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	if replayNs > 0 && storeLoadNs > 0 {
		point["compile_ns_per_op"] = compileNs
		point["store_decode_ns_per_op"] = storeLoadNs
		point["cache_hit_ns_per_op"] = cacheHitNs
		point["warm_first_request_ns_per_op"] = warmFirstNs
		point["cached_replay_ns_per_op"] = replayNs
		// The headlines: what warm-start saves per plan (compile vs
		// decode), and proof the serving path never compiles (first
		// request ≈ steady-state replay).
		point["decode_vs_compile_speedup"] = compileNs / storeLoadNs
		point["first_request_vs_replay"] = warmFirstNs / replayNs
		b.ReportMetric(compileNs/storeLoadNs, "decode-x")
		b.ReportMetric(warmFirstNs/replayNs, "first-req-vs-replay")
		buf, err := json.MarshalIndent(point, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_store.json", append(buf, '\n'), 0o644); err != nil {
			b.Logf("BENCH_store.json not written: %v", err)
		}
	}
}
