package wse

import "runtime"

// benchHostMeta stamps the uniform host fields every BENCH_*.json
// trajectory point records, so numbers from different PRs (and different
// boxes) are comparable: concurrency results from a single-core host
// show scheduling behaviour and overhead parity, not parallel speedup.
func benchHostMeta(point map[string]any) {
	point["host_cores"] = runtime.NumCPU()
	point["gomaxprocs"] = runtime.GOMAXPROCS(0)
	if runtime.NumCPU() == 1 {
		point["host_note"] = "single-core host: concurrent/sharded numbers show overhead parity and queueing, not parallel speedup; re-measure on a multi-core box"
	}
}
