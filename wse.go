// Package wse is a Go reproduction of "Near-Optimal Wafer-Scale Reduce"
// (Luczynski, Gianinazzi et al., HPDC 2024): Reduce, AllReduce and
// Broadcast collectives for 2D-mesh wafer-scale fabrics such as the
// Cerebras WSE-2, together with the paper's performance model, runtime
// lower bound, and the Auto-Gen model-driven code generator.
//
// Because physical wafer-scale hardware is not generally available, the
// collectives execute on a cycle-level fabric simulator that models the
// architectural features the paper identifies as decisive: per-color
// routing configurations, hardware multicast, one-wavelet-per-cycle link
// bandwidth with backpressure, and the ramp latency T_R between each
// processor and its router. The paper notes the real machine behaves
// deterministically enough to "be modeled with a cycle-accurate fabric
// simulator" (§1.4); this package supplies that simulator.
//
// # Quick start
//
// The API is Shape-first: a Shape names any of the 11 collective kinds,
// and three verbs consume it — Run executes on the simulator, Predict
// returns the model estimate, Bound the runtime lower bound.
//
//	sh := wse.Shape{Kind: wse.KindAllReduce, Alg: wse.Auto, P: 4, B: 2, Op: wse.Sum}
//	vectors := [][]float32{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
//	rep, err := wse.Run(context.Background(), sh, vectors)
//	// rep.Root == []float32{16, 20}; rep.Cycles is the simulated runtime,
//	// wse.Predict(sh) the model's estimate, wse.Bound(sh) the floor.
//
// The named functions (AllReduce, Reduce2D, PredictGather, ...) are thin
// wrappers over the same verbs, bit-identical to them. Algorithms: Star,
// Chain (the vendor baseline), Tree, TwoPhase and AutoGen from the
// paper's §5, or Auto to let the performance model pick — the
// model-driven deployment the paper advocates. 2D grids use the X-Y and
// Snake mappings of §7.
//
// For repeated collectives, use a Session: it compiles each distinct
// collective shape once into a cached plan and replays the plan on every
// subsequent call, with concurrent collectives bounded by a worker pool.
// The same three verbs (plus the async Submit, returning a Future, and
// the amortised RunBatch) exist on the Session and on its per-QoS Tenant
// handles.
//
//	s := wse.NewSession(wse.SessionConfig{})
//	rep, err := s.Run(ctx, sh, vectors)  // compiles, caches
//	rep, err = s.Run(ctx, sh, vectors)   // replays the plan
//	fut := s.Submit(ctx, sh, vectors)    // async: Future.Wait()
//	reps, err := s.RunBatch(ctx, sh, batches, wse.WithColumnarResult())
//
// Compiled plans also persist: a PlanStore is a content-addressed on-disk
// warehouse of encoded plans (see OpenPlanStore), Session.Export writes a
// session's plans into it, and Session.Warm — or SessionConfig.Store for
// transparent read/write-through — loads them back, so a freshly started
// process serves its first request by replaying a decoded plan instead of
// compiling.
package wse

import (
	"context"

	"repro/internal/autogen"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/mesh"
)

// Algorithm names a 1D collective pattern.
type Algorithm = core.Pattern

// The 1D algorithms of the paper's §5. Chain is the pattern the vendor's
// collectives library uses; AutoGen is the paper's automatically generated
// reduce; Auto picks the best algorithm for the given shape from the
// performance model.
const (
	Star     = core.Star
	Chain    = core.Chain
	Tree     = core.Tree
	TwoPhase = core.TwoPhase
	AutoGen  = core.AutoGen
	Auto     = core.Auto
	// Ring and RingDP (the distance-preserving mapping of Figure 7b) are
	// valid for AllReduce only; they exist to verify experimentally the
	// paper's model-only conclusion that ring rarely wins on this fabric.
	Ring   = core.Ring
	RingDP = core.RingDP
)

// Algorithm2D names a 2D collective mapping (§7): X-Y compositions of the
// 1D patterns, or the Snake chain over the whole grid.
type Algorithm2D = core.Pattern2D

// The 2D algorithms. XYChain is the vendor baseline of the paper's 2D
// comparisons; Auto2D selects by model.
const (
	XYStar     = core.XYStar
	XYChain    = core.XYChain
	XYTree     = core.XYTree
	XYTwoPhase = core.XYTwoPhase
	XYAutoGen  = core.XYAutoGen
	Snake      = core.Snake
	Auto2D     = core.Auto2D
)

// ReduceOp is the associative operation applied elementwise.
type ReduceOp = fabric.ReduceOp

// The supported reduction operators.
const (
	Sum = fabric.OpSum
	Max = fabric.OpMax
	Min = fabric.OpMin
)

// Options configure the simulated fabric; the zero value models the
// WSE-2 (T_R = 2, queue depth 4, no clock skew, no thermal throttling).
type Options = fabric.Options

// Report is the outcome of a collective run: simulated cycles, the model
// prediction for the same shape, the result vector(s) and measured fabric
// statistics (energy, contention, queue depths).
type Report = core.Report

// Coord addresses a PE on the grid.
type Coord = mesh.Coord

// ReductionTree is a pre-order reduction tree over a row of PEs; obtain
// one from AutoGenTree to inspect what the generator builds.
type ReductionTree = comm.Tree

// The named functions below are the legacy spelling of the Shape-first
// verbs in api.go: each is a one-line wrapper deriving a Shape from its
// arguments and delegating to Run, Predict or Bound. They remain
// bit-identical to the verbs (property-tested) and inherit their typed
// ErrBadShape validation.

// Reduce sums (or max/min-combines) one vector per PE along a row of
// len(vectors) PEs into the leftmost PE, running the chosen algorithm on
// the fabric simulator. The result vector is Report.Root.
func Reduce(vectors [][]float32, alg Algorithm, op ReduceOp, opt Options) (*Report, error) {
	return Run(context.Background(), reduceShape(KindReduce, vectors, alg, op), vectors, WithOptions(opt))
}

// AllReduce leaves the combined vector on every PE of the row
// (Reduce-then-Broadcast, §6.1).
func AllReduce(vectors [][]float32, alg Algorithm, op ReduceOp, opt Options) (*Report, error) {
	return Run(context.Background(), reduceShape(KindAllReduce, vectors, alg, op), vectors, WithOptions(opt))
}

// Broadcast floods data from the leftmost PE across a row of p PEs
// (§4.2); multicast makes it cost the same as one message.
func Broadcast(data []float32, p int, opt Options) (*Report, error) {
	return Run(context.Background(), Shape{Kind: KindBroadcast, P: p, B: len(data)}, [][]float32{data}, WithOptions(opt))
}

// Reduce2D reduces one vector per PE (row-major order) on a width×height
// grid into PE (0,0).
func Reduce2D(vectors [][]float32, width, height int, alg Algorithm2D, op ReduceOp, opt Options) (*Report, error) {
	return Run(context.Background(), gridShape(KindReduce2D, vectors, width, height, alg, op), vectors, WithOptions(opt))
}

// AllReduce2D leaves the combined vector on every PE of the grid
// (2D Reduce plus the 2D flooding broadcast, §7.4).
func AllReduce2D(vectors [][]float32, width, height int, alg Algorithm2D, op ReduceOp, opt Options) (*Report, error) {
	return Run(context.Background(), gridShape(KindAllReduce2D, vectors, width, height, alg, op), vectors, WithOptions(opt))
}

// Broadcast2D floods data from (0,0) across a width×height grid (§7.1).
func Broadcast2D(data []float32, width, height int, opt Options) (*Report, error) {
	return Run(context.Background(), Shape{Kind: KindBroadcast2D, Width: width, Height: height, B: len(data)}, [][]float32{data}, WithOptions(opt))
}

// trOf resolves the effective ramp latency of an Options value.
func trOf(opt Options) int { return core.Params(opt).TR }

// PredictReduce returns the performance model's cycle estimate for a 1D
// Reduce (Eq. 1 instantiated per §5's lemmas).
func PredictReduce(alg Algorithm, p, b int, opt Options) float64 {
	return Predict(Shape{Kind: KindReduce, Alg: alg, P: p, B: b}, WithOptions(opt))
}

// PredictAllReduce returns the model estimate for Reduce-then-Broadcast.
func PredictAllReduce(alg Algorithm, p, b int, opt Options) float64 {
	return Predict(Shape{Kind: KindAllReduce, Alg: alg, P: p, B: b}, WithOptions(opt))
}

// PredictBroadcast returns Lemma 4.1's estimate B + P + 2·T_R.
func PredictBroadcast(p, b int, opt Options) float64 {
	return Predict(Shape{Kind: KindBroadcast, P: p, B: b}, WithOptions(opt))
}

// PredictReduce2D and PredictAllReduce2D estimate the 2D mappings of §7.
func PredictReduce2D(alg Algorithm2D, width, height, b int, opt Options) float64 {
	return Predict(Shape{Kind: KindReduce2D, Alg2D: alg, Width: width, Height: height, B: b}, WithOptions(opt))
}

// PredictAllReduce2D estimates 2D Reduce plus 2D broadcast.
func PredictAllReduce2D(alg Algorithm2D, width, height, b int, opt Options) float64 {
	return Predict(Shape{Kind: KindAllReduce2D, Alg2D: alg, Width: width, Height: height, B: b}, WithOptions(opt))
}

// LowerBoundReduce is the paper's 1D Reduce runtime lower bound T*(P,B)
// (§5.6); Figure 1 reports every algorithm's ratio to it.
func LowerBoundReduce(p, b int, opt Options) float64 {
	return Bound(Shape{Kind: KindReduce, P: p, B: b}, WithOptions(opt))
}

// BestAlgorithm returns the 1D algorithm the model predicts fastest for a
// Reduce of p PEs and b wavelets, with its predicted cycle count.
func BestAlgorithm(p, b int, opt Options) (Algorithm, float64) {
	return core.BestReduce1D(p, b, trOf(opt))
}

// BestAlgorithm2D is the 2D counterpart of BestAlgorithm.
func BestAlgorithm2D(width, height, b int, opt Options) (Algorithm2D, float64) {
	return core.BestReduce2D(width, height, b, trOf(opt))
}

// AutoGenTree returns the reduction tree the Auto-Gen generator builds
// for p PEs and b wavelets (§5.5): the tree minimising the model estimate
// over all pre-order trees, reconstructed from the dynamic program.
func AutoGenTree(p, b int, opt Options) ReductionTree {
	return autogen.For(p).Tree(p, b, trOf(opt))
}
