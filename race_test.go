//go:build race

package wse

// raceEnabled reports that this binary was built with the race detector,
// under which sync.Pool deliberately drops entries (to shake out bugs) and
// alloc counts are meaningless — allocation guards skip themselves.
const raceEnabled = true
