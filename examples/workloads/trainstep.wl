# One data-parallel training step as a workload DAG.
#
# The forward pass ends in a GEMV whose row-wise inner reduction feeds
# two independent consumers — the gradient AllReduce across the data-
# parallel row and a max-norm AllReduce the gradient clipper reads —
# which the executor overlaps; the optimizer's ReduceScatter joins them,
# and an AllGather redistributes the updated shards. A halo broadcast
# seeds the activations.
#
# Run it:     wsecollect workload run -file examples/workloads/trainstep.wl
# Tune it:    wsecollect tune -file examples/workloads/trainstep.wl \
#                 -tunings tunings.json -store ./plans
# Run tuned:  wsecollect workload run -file examples/workloads/trainstep.wl \
#                 -tunings tunings.json -store ./plans

workload train-step
step halo p=64 b=256
step gemv p=64 b=256 after=halo
step allreduce p=64 b=256 name=grad-allreduce after=gemv
step allreduce p=64 b=64 op=max name=grad-norm after=gemv
step reducescatter p=64 b=256 name=optim after=grad-allreduce,grad-norm
step allgather p=64 b=256 name=redistribute after=optim
