// Quickstart for the Shape-first API: one Shape, three verbs — Run
// (execute on the simulated fabric), Predict (the paper's performance
// model) and Bound (the runtime lower bound) — plus the async Submit and
// the amortised RunBatch, all without touching a single legacy function.
package main

import (
	"context"
	"fmt"
	"log"

	wse "repro"
)

func main() {
	// 32 PEs in a row, each holding an 8-element vector. wse.Auto asks
	// the performance model to choose among Star, Chain (the vendor's
	// pattern), Tree, Two-Phase and the Auto-Gen generated tree.
	const p, b = 32, 8
	sh := wse.Shape{Kind: wse.KindAllReduce, Alg: wse.Auto, P: p, B: b, Op: wse.Sum}
	if err := sh.Validate(); err != nil {
		log.Fatal(err)
	}
	vectors := make([][]float32, p)
	for i := range vectors {
		v := make([]float32, b)
		for j := range v {
			v[j] = float32(i + j)
		}
		vectors[i] = v
	}
	ctx := context.Background()

	// One-shot: compile, simulate, report.
	rep, err := wse.Run(ctx, sh, vectors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AllReduce of %d wavelets across %d PEs\n", b, p)
	fmt.Printf("  simulated        %d cycles (%.3f us at 850 MHz)\n", rep.Cycles, float64(rep.Cycles)/850)
	fmt.Printf("  model predicted  %.0f cycles\n", wse.Predict(sh))
	fmt.Printf("  lower bound      %.0f cycles\n", wse.Bound(sh))
	fmt.Printf("  result           %v\n", rep.Root)
	fmt.Printf("  fabric energy    %d wavelet-hops\n", rep.Stats.Hops)

	// Every PE holds the combined vector after an AllReduce.
	for c, v := range rep.All {
		if v[0] != rep.Root[0] {
			log.Fatalf("PE %v disagrees: %v", c, v[0])
		}
	}
	fmt.Printf("  all %d PEs hold the combined vector\n", p)

	// The paper's headline: the model-picked pattern vs the vendor chain.
	vendor := sh
	vendor.Alg = wse.Chain
	fmt.Printf("  predicted speedup over vendor chain: %.2fx\n",
		wse.Predict(vendor)/wse.Predict(sh))

	// A Session compiles the shape once and replays the cached plan;
	// Submit is the async spelling of the same call.
	s := wse.NewSession(wse.SessionConfig{})
	defer s.Close()
	fut := s.Submit(ctx, sh, vectors)
	if rep2, err := fut.Wait(); err != nil {
		log.Fatal(err)
	} else if rep2.Cycles != rep.Cycles {
		log.Fatalf("replay diverged: %d vs %d cycles", rep2.Cycles, rep.Cycles)
	}
	fmt.Println("  async replay through a Session is bit-identical")

	// RunBatch replays one plan across many input sets with the fixed
	// per-run costs amortised; WithColumnarResult also skips the per-PE
	// result maps for callers that only read Report.Root.
	batches := make([][][]float32, 4)
	for i := range batches {
		batches[i] = vectors
	}
	reps, err := s.RunBatch(ctx, sh, batches, wse.WithColumnarResult())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  batch of %d replays: every root[0] = %.0f\n", len(reps), reps[0].Root[0])
}
