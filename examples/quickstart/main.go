// Quickstart: run an AllReduce across a row of simulated wafer-scale PEs
// and let the performance model pick the algorithm.
package main

import (
	"fmt"
	"log"

	wse "repro"
)

func main() {
	// 32 PEs, each holding an 8-element vector.
	const p, b = 32, 8
	vectors := make([][]float32, p)
	for i := range vectors {
		v := make([]float32, b)
		for j := range v {
			v[j] = float32(i + j)
		}
		vectors[i] = v
	}

	// wse.Auto asks the paper's performance model to choose among Star,
	// Chain (the vendor's pattern), Tree, Two-Phase and the Auto-Gen
	// generated tree for this exact shape.
	rep, err := wse.AllReduce(vectors, wse.Auto, wse.Sum, wse.Options{})
	if err != nil {
		log.Fatal(err)
	}

	alg, predicted := wse.BestAlgorithm(p, b, wse.Options{})
	fmt.Printf("AllReduce of %d wavelets across %d PEs\n", b, p)
	fmt.Printf("  model chose      %s (predicted reduce %0.f cycles)\n", alg, predicted)
	fmt.Printf("  simulated        %d cycles (%.3f us at 850 MHz)\n", rep.Cycles, float64(rep.Cycles)/850)
	fmt.Printf("  result           %v\n", rep.Root)
	fmt.Printf("  fabric energy    %d wavelet-hops\n", rep.Stats.Hops)

	// Every PE now holds the same combined vector.
	for c, v := range rep.All {
		if v[0] != rep.Root[0] {
			log.Fatalf("PE %v disagrees: %v", c, v[0])
		}
	}
	fmt.Println("  all 32 PEs hold the combined vector")

	// The paper's headline: how much faster than the vendor's chain?
	vendor := wse.PredictAllReduce(wse.Chain, p, b, wse.Options{})
	best := wse.PredictAllReduce(alg, p, b, wse.Options{})
	fmt.Printf("  predicted speedup over vendor chain: %.2fx\n", vendor/best)
}
