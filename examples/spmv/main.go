// Sparse matrix-vector products with fabric-side collectives: the
// workload of Rocki et al. [44], whose wafer-scale stencil code built its
// AllReduce from a 2D star (efficient only for small vectors, as the
// paper's analysis shows — §9.1).
//
// A conjugate-gradient-style iteration needs, per step:
//   - two scalar AllReduce operations (the dot products alpha and beta),
//   - one larger AllGather to re-assemble the distributed iterate.
//
// This example runs both on the simulated fabric and compares the
// model-chosen patterns against the fixed choices of earlier systems:
// the 2D-star-style reduction of [44] and the vendor chain.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	wse "repro"
)

const (
	peCount = 64  // one row of the wafer
	rowsPer = 128 // matrix rows owned per PE
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// Each PE owns a block of matrix rows and the matching slice of x.
	// Local SpMV partial dot products feed the collectives below.
	local := make([][]float32, peCount)
	for pe := range local {
		v := make([]float32, 1) // the dot-product contribution is scalar
		v[0] = rng.Float32()
		local[pe] = v
	}

	// Scalar AllReduce: the CG dot product. One Shape per candidate
	// mapping — the model's pick, Star (what the stencil code of [44]
	// effectively used) and the vendor chain — all served through one
	// session so each compiles once.
	ctx := context.Background()
	sess := wse.NewSession(wse.SessionConfig{})
	defer sess.Close()
	opts := wse.Options{}
	dot := wse.Shape{Kind: wse.KindAllReduce, Alg: wse.Auto, P: peCount, B: 1, Op: wse.Sum}
	runDot := func(alg wse.Algorithm) *wse.Report {
		sh := dot
		sh.Alg = alg
		rep, err := sess.Run(ctx, sh, local)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}
	auto, star, chain := runDot(wse.Auto), runDot(wse.Star), runDot(wse.Chain)
	alg, _ := wse.BestAlgorithm(peCount, 1, opts)
	fmt.Printf("scalar dot-product AllReduce on %d PEs:\n", peCount)
	fmt.Printf("  model pick (%s): %4d cycles (bound %.0f)\n", alg, auto.Cycles, wse.Bound(dot))
	fmt.Printf("  star  (as in Rocki et al.): %4d cycles\n", star.Cycles)
	fmt.Printf("  chain (vendor):             %4d cycles\n", chain.Cycles)

	// A CG step needs two dot products back to back: batch them so the
	// fixed per-run costs (bind + result assembly) are paid once.
	if reps, err := sess.RunBatch(ctx, dot, [][][]float32{local, local}, wse.WithColumnarResult()); err != nil {
		log.Fatal(err)
	} else if reps[0].Root[0] != auto.Root[0] {
		log.Fatalf("batched dot product diverged: %v vs %v", reps[0].Root[0], auto.Root[0])
	}

	// Iterate re-assembly: each PE contributes its rowsPer slice of the
	// new iterate; AllGather distributes the full vector to everyone.
	n := peCount * rowsPer
	_, sz := wse.Chunks(peCount, n)
	chunks := make([][]float32, peCount)
	for pe := range chunks {
		c := make([]float32, sz[pe])
		for i := range c {
			c[i] = rng.Float32()
		}
		chunks[pe] = c
	}
	agShape := wse.Shape{Kind: wse.KindAllGather, P: peCount, B: n}
	ag, err := sess.Run(ctx, agShape, chunks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\niterate AllGather of %d floats: %d cycles (predicted %.0f)\n",
		n, ag.Cycles, wse.Predict(agShape, wse.WithOptions(opts)))

	// Verify the assembled iterate on a sample PE.
	full := ag.All[wse.Coord{X: peCount / 2, Y: 0}]
	idx := 0
	for pe := range chunks {
		for i := range chunks[pe] {
			if full[idx] != chunks[pe][i] {
				log.Fatalf("allgather mismatch at %d", idx)
			}
			idx++
		}
	}
	fmt.Println("iterate verified identical on all PEs")

	// Per-iteration communication budget, as a CG user would see it.
	perIter := 2*auto.Cycles + ag.Cycles
	vendor := 2*chain.Cycles + ag.Cycles
	fmt.Printf("\nper-CG-iteration communication: %d cycles with model-driven picks, %d with the vendor chain (%.2fx)\n",
		perIter, vendor, float64(vendor)/float64(perIter))
}
