// One data-parallel training step declared through the workload Builder
// API — the Go-native spelling of examples/workloads/trainstep.wl.
//
// The GEMV's inner reduction fans out into two independent AllReduces
// (the gradient average and the clipper's max-norm) which the DAG
// executor overlaps through Submit futures; a ReduceScatter joins them
// and an AllGather redistributes the updated shards. The run prints the
// per-step cycle costs and how much wall-clock the overlap saved over
// executing the same steps sequentially.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	wse "repro"
	"repro/internal/workload"
)

func main() {
	w, err := workload.New("train-step").
		Step("halo", workload.Params{"p": "64", "b": "256"}).
		Step("gemv", workload.Params{"p": "64", "b": "256"}, "halo").
		Step("allreduce", workload.Params{"p": "64", "b": "256", "name": "grad-allreduce"}, "gemv").
		Step("allreduce", workload.Params{"p": "64", "b": "64", "op": "max", "name": "grad-norm"}, "gemv").
		Step("reducescatter", workload.Params{"p": "64", "b": "256", "name": "optim"}, "grad-allreduce", "grad-norm").
		Step("allgather", workload.Params{"p": "64", "b": "256", "name": "redistribute"}, "optim").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	sess := wse.NewSession(wse.SessionConfig{PlanCacheCapacity: 16})
	defer sess.Close()
	ctx := context.Background()

	// Warm the plan cache once so the overlapped/sequential comparison
	// below times replays, not compiles.
	if _, err := workload.Exec(ctx, sess, w); err != nil {
		log.Fatal(err)
	}
	seq, err := workload.ExecSequential(ctx, sess, w)
	if err != nil {
		log.Fatal(err)
	}
	res, err := workload.Exec(ctx, sess, w)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s: %d steps\n\n", w.Name, len(res.Steps))
	fmt.Printf("%-16s %-16s %10s %12s\n", "step", "kind", "cycles", "us@850MHz")
	for _, sr := range res.Steps {
		fmt.Printf("%-16s %-16s %10d %12.2f\n",
			sr.Step.Name, sr.Step.Shape.Kind, sr.Report.Cycles, float64(sr.Report.Cycles)/850)
	}
	fmt.Printf("\nfabric cost: %d cycles (identical overlapped or sequential: %v)\n",
		res.Cycles(), res.Cycles() == seq.Cycles())
	fmt.Printf("host cost:   overlapped %v vs sequential %v for the same DAG\n",
		res.Wall.Round(time.Millisecond), seq.Wall.Round(time.Millisecond))
}
