// Iterative stencil solve with fabric-side convergence checks: the HPC
// workload of Rocki et al. [44] and Jacquelin et al. [25] that the paper
// uses as a running example of small-vector (All)Reduce.
//
// Each PE of a row owns a block of a 1D Jacobi heat equation. After every
// local sweep the solver needs the global residual — a scalar Max
// AllReduce across all PEs. Scalar reductions are exactly where the
// vendor's chain is weakest (depth P-1 for one wavelet) and where the
// paper's low-depth patterns shine; the example reports the per-iteration
// communication cost under both.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	wse "repro"
)

const (
	peCount   = 128
	cellsPer  = 32
	tolerance = 1e-3
)

func main() {
	// Global temperature array, block-partitioned: PE i owns cells
	// [i*cellsPer, (i+1)*cellsPer). Boundary cells are held at 0 and 1.
	n := peCount * cellsPer
	u := make([]float64, n)
	u[n-1] = 1
	next := make([]float64, n)

	ctx := context.Background()
	sess := wse.NewSession(wse.SessionConfig{})
	defer sess.Close()
	resShape := wse.Shape{Kind: wse.KindAllReduce, Alg: wse.Auto, P: peCount, B: 1, Op: wse.Max}
	vendorShape := resShape
	vendorShape.Alg = wse.Chain

	var commCycles, vendorCycles int64
	iter := 0
	for {
		iter++
		// Local Jacobi sweep (this would run on the PEs themselves).
		residuals := make([][]float32, peCount)
		for pe := 0; pe < peCount; pe++ {
			var local float64
			lo, hi := pe*cellsPer, (pe+1)*cellsPer
			for c := lo; c < hi; c++ {
				if c == 0 || c == n-1 {
					next[c] = u[c]
					continue
				}
				next[c] = 0.5 * (u[c-1] + u[c+1])
				if d := math.Abs(next[c] - u[c]); d > local {
					local = d
				}
			}
			residuals[pe] = []float32{float32(local)}
		}
		u, next = next, u

		// Fabric-side scalar Max AllReduce: every PE learns the global
		// residual and decides locally whether to stop. The session
		// compiles each shape once and replays it every iteration, and
		// the columnar option skips the per-PE result maps the solver
		// never reads — it only needs Root.
		rep, err := sess.Run(ctx, resShape, residuals, wse.WithColumnarResult())
		if err != nil {
			log.Fatal(err)
		}
		commCycles += rep.Cycles
		vendor, err := sess.Run(ctx, vendorShape, residuals, wse.WithColumnarResult())
		if err != nil {
			log.Fatal(err)
		}
		vendorCycles += vendor.Cycles

		if rep.Root[0] < tolerance || iter >= 200 {
			alg, _ := wse.BestAlgorithm(peCount, 1, wse.Options{})
			fmt.Printf("converged after %d iterations (residual %.2e)\n", iter, rep.Root[0])
			fmt.Printf("scalar AllReduce per iteration: %s %d cycles vs vendor chain %d cycles (%.2fx)\n",
				alg, rep.Cycles, vendor.Cycles, float64(vendor.Cycles)/float64(rep.Cycles))
			fmt.Printf("total communication: %d cycles; vendor would have spent %d (%.2fx)\n",
				commCycles, vendorCycles, float64(vendorCycles)/float64(commCycles))
			return
		}
	}
}
