// Data-parallel gradient AllReduce on a 2D PE grid: the deep-learning
// workload that motivates the paper (§1.1: Reduce/AllReduce are "critical
// in GEMV and GEMM kernels for fields like deep learning").
//
// A 16×16 grid of simulated PEs each computes a local gradient; one
// training step AllReduces the gradients so every worker holds the global
// average. Gradient sizes span scalars (a learning-rate signal) to large
// layer shards, and the example shows how the model-driven selection
// switches 2D mappings across that range — and what it buys over the
// vendor's X-Y chain.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	wse "repro"
)

const side = 16

func main() {
	rng := rand.New(rand.NewSource(7))
	sess := wse.NewSession(wse.SessionConfig{})
	defer sess.Close()
	fmt.Printf("data-parallel AllReduce on a %dx%d PE grid (one gradient shard per PE)\n\n", side, side)
	fmt.Printf("%10s %12s %12s %10s %10s %8s\n", "grad size", "algorithm", "cycles", "us@850MHz", "vendor", "speedup")

	for _, b := range []int{1, 16, 256, 2048} {
		grads := make([][]float32, side*side)
		for i := range grads {
			g := make([]float32, b)
			for j := range g {
				g[j] = rng.Float32() - 0.5
			}
			grads[i] = g
		}

		// One Shape describes the step's collective; the vendor baseline
		// is the same Shape with the mapping pinned to the X-Y chain.
		sh := wse.Shape{Kind: wse.KindAllReduce2D, Alg2D: wse.Auto2D,
			Width: side, Height: side, B: b, Op: wse.Sum}
		vendorShape := sh
		vendorShape.Alg2D = wse.XYChain

		// Submit both runs asynchronously and overlap them — the async
		// tier of the Shape-first API.
		ctx := context.Background()
		repFut := sess.Submit(ctx, sh, grads)
		vendorFut := sess.Submit(ctx, vendorShape, grads)
		rep, err := repFut.Wait()
		if err != nil {
			log.Fatal(err)
		}
		vendor, err := vendorFut.Wait()
		if err != nil {
			log.Fatal(err)
		}
		alg, _ := wse.BestAlgorithm2D(side, side, b, wse.Options{})

		// Every worker applies the averaged gradient; verify agreement
		// against a serial sum on a few sampled coordinates.
		var want float32
		for i := range grads {
			want += grads[i][0]
		}
		for c, v := range rep.All {
			if d := v[0] - want; d > 1e-2 || d < -1e-2 {
				log.Fatalf("b=%d: PE %v got %v, want %v", b, c, v[0], want)
			}
		}

		fmt.Printf("%9dB %12s %12d %10.2f %10d %7.2fx\n",
			4*b, alg, rep.Cycles, float64(rep.Cycles)/850, vendor.Cycles,
			float64(vendor.Cycles)/float64(rep.Cycles))
	}

	fmt.Println("\nThe winning mapping changes with gradient size, exactly the effect")
	fmt.Println("Figure 10 of the paper maps out; a fixed vendor pattern leaves that")
	fmt.Println("speedup on the table for every step of training.")
}
