// GEMV on a row of wafer-scale PEs: the motivating 1D workload of the
// paper (§3: reductions over "a part of a row or column of the device...
// important in its own right for applications such as GEMV").
//
// The matrix A (m×n) is partitioned column-wise across P PEs. Each PE
// multiplies its column block with its slice of x locally, producing a
// partial result vector of length m; the partial vectors are then summed
// with a 1D Reduce to the leftmost PE. The reduce vector length is m — as
// m varies from a few elements to thousands, the best reduction pattern
// changes, which is exactly the regime the paper's model-driven selection
// targets.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	wse "repro"
)

const peCount = 64

func main() {
	rng := rand.New(rand.NewSource(42))
	for _, m := range []int{4, 64, 1024, 8192} {
		n := peCount * 4 // four columns of A per PE
		a := randomMatrix(rng, m, n)
		x := randomVector(rng, n)

		// Local compute: PE i owns columns [i*4, i*4+4).
		partials := make([][]float32, peCount)
		cols := n / peCount
		for pe := 0; pe < peCount; pe++ {
			part := make([]float32, m)
			for c := pe * cols; c < (pe+1)*cols; c++ {
				for r := 0; r < m; r++ {
					part[r] += a[r][c] * x[c]
				}
			}
			partials[pe] = part
		}

		// Communication: sum the partial vectors on the fabric. The reduce
		// shape varies with m, which is exactly what the Shape-first API
		// names: one Shape value drives the run and both model queries.
		sh := wse.Shape{Kind: wse.KindReduce, Alg: wse.Auto, P: peCount, B: m, Op: wse.Sum}
		rep, err := wse.Run(context.Background(), sh, partials)
		if err != nil {
			log.Fatal(err)
		}
		alg, _ := wse.BestAlgorithm(peCount, m, wse.Options{})

		// Verify against a serial GEMV.
		want := serialGEMV(a, x)
		for r := 0; r < m; r++ {
			if diff := rep.Root[r] - want[r]; diff > 1e-2 || diff < -1e-2 {
				log.Fatalf("m=%d row %d: fabric %v, serial %v", m, r, rep.Root[r], want[r])
			}
		}

		vendorShape := sh
		vendorShape.Alg = wse.Chain
		vendor := wse.Predict(vendorShape)
		fmt.Printf("GEMV %5dx%d on %d PEs: reduce alg=%-8s %7d cycles (vendor chain would predict %7.0f, %4.2fx; bound %6.0f)\n",
			m, n, peCount, alg, rep.Cycles, vendor, vendor/float64(rep.Cycles), wse.Bound(sh))
	}
}

func randomMatrix(rng *rand.Rand, m, n int) [][]float32 {
	a := make([][]float32, m)
	for i := range a {
		a[i] = randomVector(rng, n)
	}
	return a
}

func randomVector(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = rng.Float32() - 0.5
	}
	return v
}

func serialGEMV(a [][]float32, x []float32) []float32 {
	y := make([]float32, len(a))
	for r := range a {
		var s float32
		for c := range x {
			s += a[r][c] * x[c]
		}
		y[r] = s
	}
	return y
}
