package wse

// Tests of the multi-tenant serving layer as a consumer sees it: tenant
// handles share one plan cache but are scheduled under their own QoS,
// overload surfaces as ErrOverloaded, cancellation as ctx.Err(), and the
// accounting balances.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestTenantServingBitIdentical: the same collective served through two
// tenant handles and the session's own methods produces bit-identical
// reports, shares one cached plan, and is accounted per tenant.
func TestTenantServingBitIdentical(t *testing.T) {
	s := NewSession(SessionConfig{})
	defer s.Close()
	fg := s.WithTenant("fg", TenantConfig{Weight: 3, Priority: Interactive})
	bg := s.WithTenant("bg", TenantConfig{Weight: 1, Priority: Background})

	vectors := constVectors(16, 8)
	want, err := s.Reduce(vectors, Chain, Sum)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, tn := range []*Tenant{fg, bg} {
		got, err := tn.Reduce(ctx, vectors, Chain, Sum)
		if err != nil {
			t.Fatalf("%s: %v", tn.Name(), err)
		}
		if got.Cycles != want.Cycles || got.Root[0] != want.Root[0] {
			t.Fatalf("%s: cycles=%d root=%v, want cycles=%d root=%v",
				tn.Name(), got.Cycles, got.Root[0], want.Cycles, want.Root[0])
		}
	}

	if ps := s.PlanStats(); ps.Misses != 1 || ps.Hits != 2 {
		t.Fatalf("plan stats %+v: three calls to one shape must compile once", ps)
	}
	st := s.SchedStats()
	if st.Tenants["fg"].Served != 1 || st.Tenants["bg"].Served != 1 || st.Tenants["default"].Served != 1 {
		t.Fatalf("sched stats %+v: each identity served once", st.Tenants)
	}
	if st.Tenants["fg"].Class != "interactive" || st.Tenants["bg"].Class != "background" {
		t.Fatalf("tenant classes not echoed: %+v", st.Tenants)
	}
}

// TestTenantShapeRun: the dynamic Shape entry point serves every kind
// the typed methods do.
func TestTenantShapeRun(t *testing.T) {
	s := NewSession(SessionConfig{})
	defer s.Close()
	tn := s.WithTenant("router", TenantConfig{})
	ctx := context.Background()

	rep, err := tn.Run(ctx, Shape{Kind: KindAllReduce, Alg: Tree, P: 8, B: 4, Op: Sum}, constVectors(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Root[0] != 8 {
		t.Fatalf("allreduce of ones over 8 PEs: root %v, want 8", rep.Root[0])
	}
	if _, err := tn.Run(ctx, Shape{Kind: KindBroadcast, P: 6, B: 5}, constVectors(1, 5)); err != nil {
		t.Fatal(err)
	}
}

// TestTenantOverloadSurfaces: a tenant at its queue bound gets
// ErrOverloaded through the public API, immediately, and the rejection
// is visible in SchedStats.
func TestTenantOverloadSurfaces(t *testing.T) {
	s := NewSession(SessionConfig{Workers: 1})
	defer s.Close()
	// Interactive blockers occupy the worker and make dispatch order
	// deterministic; the bounded tenant's queue can then only drain after
	// every blocker finishes.
	blocker := s.WithTenant("blocker", TenantConfig{Priority: Interactive})
	bounded := s.WithTenant("bounded", TenantConfig{MaxQueue: 1})
	ctx := context.Background()

	big := constVectors(48*48, 64)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := blocker.Reduce2D(ctx, big, 48, 48, Auto2D, Sum); err != nil {
				t.Errorf("blocker: %v", err)
			}
		}()
	}
	waitFor(t, func() bool { return s.SchedStats().Pool.Running == 1 })

	queued := make(chan error, 1)
	go func() {
		_, err := bounded.Reduce(ctx, constVectors(8, 4), Chain, Sum)
		queued <- err
	}()
	waitFor(t, func() bool { return s.SchedStats().Tenants["bounded"].Depth == 1 })

	start := time.Now()
	_, err := bounded.Reduce(ctx, constVectors(8, 4), Chain, Sum)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit over the bound: %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("overload rejection took %v", d)
	}

	wg.Wait()
	if err := <-queued; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}
	st := s.SchedStats().Tenants["bounded"]
	if st.Rejected != 1 || st.Served != 1 || st.Submitted != 2 {
		t.Fatalf("bounded stats %+v: want 1 served, 1 rejected", st)
	}
}

// TestSessionCloseRejects: requests after Close return ErrSessionClosed.
func TestSessionCloseRejects(t *testing.T) {
	s := NewSession(SessionConfig{})
	tn := s.WithTenant("t", TenantConfig{})
	if _, err := tn.Reduce(context.Background(), constVectors(8, 4), Chain, Sum); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reduce(constVectors(8, 4), Chain, Sum); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("session method after close: %v, want ErrSessionClosed", err)
	}
	if _, err := tn.Reduce(context.Background(), constVectors(8, 4), Chain, Sum); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("tenant method after close: %v, want ErrSessionClosed", err)
	}
}

// TestTenantCancellation: a context deadline on a queued tenant request
// surfaces ctx.Err() and counts cancelled; accounting stays balanced.
func TestTenantCancellation(t *testing.T) {
	s := NewSession(SessionConfig{Workers: 1})
	defer s.Close()
	blocker := s.WithTenant("blocker", TenantConfig{Priority: Interactive})
	victim := s.WithTenant("victim", TenantConfig{})
	ctx := context.Background()

	big := constVectors(48*48, 64)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := blocker.Reduce2D(ctx, big, 48, 48, Auto2D, Sum); err != nil {
				t.Errorf("blocker: %v", err)
			}
		}()
	}
	waitFor(t, func() bool { return s.SchedStats().Pool.Running == 1 })

	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := victim.Reduce(cctx, constVectors(8, 4), Chain, Sum); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request: %v, want context.Canceled", err)
	}
	wg.Wait()

	for name, ts := range s.SchedStats().Tenants {
		if ts.Submitted != ts.Served+ts.Rejected+ts.Cancelled {
			t.Errorf("tenant %s unbalanced: %+v", name, ts)
		}
	}
	if st := s.SchedStats().Tenants["victim"]; st.Cancelled != 1 {
		t.Fatalf("victim stats %+v: want cancelled=1", st)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for condition")
		}
		time.Sleep(time.Millisecond)
	}
}
