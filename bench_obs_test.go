package wse_test

// Benchmarks of the tracing subsystem: what a span-per-seam trace costs
// on the hot replay path (disabled tracer, enabled tracer), and whether
// a traced fleet request's spans actually account for its wire latency
// — the root span should track the wire clock and its children should
// explain ≥90% of the root. The headline numbers are written to
// BENCH_obs.json as a trajectory point.
//
// This file is an external test package (wse_test): it drives the real
// serve.Server and serve.Front, which import wse and so cannot be
// imported from package wse itself.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	wse "repro"
	"repro/client"
	"repro/internal/obs"
	"repro/internal/serve"
)

const (
	obsBenchP = 64
	obsBenchB = 16
)

func obsBenchShape() wse.Shape {
	return wse.Shape{Kind: wse.KindReduce, Alg: wse.Auto, P: obsBenchP, B: obsBenchB, Op: wse.Sum}
}

func obsBenchInputs() [][]float32 {
	out := make([][]float32, obsBenchP)
	for i := range out {
		out[i] = make([]float32, obsBenchB)
		for j := range out[i] {
			out[i][j] = 1
		}
	}
	return out
}

// obsBenchHostMeta mirrors benchHostMeta (package wse, unreachable from
// an external test package): the uniform host stamp every BENCH_*.json
// point carries.
func obsBenchHostMeta(point map[string]any) {
	point["host_cores"] = runtime.NumCPU()
	point["gomaxprocs"] = runtime.GOMAXPROCS(0)
	if runtime.NumCPU() == 1 {
		point["host_note"] = "single-core host: concurrent/sharded numbers show overhead parity and queueing, not parallel speedup; re-measure on a multi-core box"
	}
}

func medianDur(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func medianFloat(fs []float64) float64 {
	if len(fs) == 0 {
		return 0
	}
	s := append([]float64(nil), fs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// BenchmarkTracedServing measures the tracing subsystem's two promises
// and writes BENCH_obs.json:
//
//   - overhead: the replay path with no tracer alive (one atomic load per
//     seam) versus a 100%-sampled root span per request — replay-traced
//     minus replay-untraced is what full tracing costs per request;
//   - attribution: a traced request through a front+worker fleet yields
//     one trace whose root duration tracks the measured wire latency and
//     whose child spans cover ≥90% of the root, with per-phase medians
//     (queue, exec, resolve, fabric, forward) as the latency breakdown.
func BenchmarkTracedServing(b *testing.B) {
	point := map[string]any{
		"bench": "obs-tracing",
		"shape": map[string]any{"kind": "reduce1d", "alg": "auto", "p": obsBenchP, "b": obsBenchB},
	}
	obsBenchHostMeta(point)
	ctx := context.Background()
	sh := obsBenchShape()
	inputs := obsBenchInputs()

	// -- overhead: untraced first, while no tracer exists anywhere --
	sess := wse.NewSession(wse.SessionConfig{})
	defer sess.Close()
	if _, err := sess.Run(ctx, sh, inputs); err != nil {
		b.Fatal(err)
	}
	var untracedNs, tracedNs float64
	b.Run("replay-untraced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sess.Run(ctx, sh, inputs); err != nil {
				b.Fatal(err)
			}
		}
		untracedNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	overheadTracer := obs.NewTracer(obs.Config{Sample: 1})
	b.Run("replay-traced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rctx, root := overheadTracer.Root(ctx, "bench run", "")
			if _, err := sess.Run(rctx, sh, inputs); err != nil {
				b.Fatal(err)
			}
			root.End()
		}
		tracedNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	// The replay delta above is dominated by simulation noise (the
	// fabric run is ~500µs ± far more than the tracer costs), so the
	// headline overhead number comes from the span machinery in
	// isolation: one root + the six child spans a served request opens,
	// with attrs, committed to the ring.
	var spanNs float64
	b.Run("span-machinery", func(b *testing.B) {
		names := []string{"serve.decode", "plan.resolve", "sched.queue", "sched.exec", "fabric.exec", "serve.encode"}
		for i := 0; i < b.N; i++ {
			rctx, root := overheadTracer.Root(ctx, "bench request", "")
			for _, name := range names {
				_, sp := obs.Start(rctx, name)
				sp.SetAttr("i", i)
				sp.End()
			}
			root.End()
		}
		spanNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	overheadTracer.Close()
	if untracedNs > 0 && tracedNs > 0 {
		point["replay_untraced_ns_per_op"] = untracedNs
		point["replay_traced_ns_per_op"] = tracedNs
		point["replay_traced_delta_ns_per_op"] = tracedNs - untracedNs
		point["replay_delta_note"] = "delta is simulation noise; span-machinery is the real per-request tracer cost"
		point["tracer_overhead_ns_per_op"] = spanNs
		point["tracer_overhead_pct_of_replay"] = 100 * spanNs / untracedNs
	}

	// -- attribution: a real fleet hop, 100% sampled --
	wtr := obs.NewTracer(obs.Config{Sample: 1, RingSize: 8192})
	defer wtr.Close()
	ftr := obs.NewTracer(obs.Config{Sample: 1, RingSize: 8192})
	defer ftr.Close()
	wsess := wse.NewSession(wse.SessionConfig{})
	defer wsess.Close()
	worker := serve.New(serve.Config{Session: wsess, Tracer: wtr})
	wts := httptest.NewServer(worker.Handler())
	defer wts.Close()
	front := serve.NewFront(serve.FrontConfig{Workers: []string{wts.URL}, Tracer: ftr})
	fts := httptest.NewServer(front.Handler())
	defer fts.Close()
	ctr := obs.NewTracer(obs.Config{Sample: 1, RingSize: 8192})
	defer ctr.Close()
	cl := client.New(client.Config{BaseURL: fts.URL})
	clShape := client.Shape{Kind: "reduce1d", Alg: "auto", P: obsBenchP, B: obsBenchB, Op: "sum"}
	wctx, wroot := ctr.Root(ctx, "bench client", "") // warm-up rides a root span too, so every worker trace has a client match
	_, err := cl.Run(wctx, clShape, inputs)
	wroot.End()
	if err != nil {
		b.Fatal(err)
	}

	// Each request runs under a client-side root span, so the client's
	// per-attempt "client run" span (request write → response read — the
	// true wire window, excluding client-side JSON marshal) exists and
	// carries the same trace id the front and worker commit under.
	var e2e []time.Duration
	b.Run("fleet-traced-request", func(b *testing.B) {
		e2e = e2e[:0]
		for i := 0; i < b.N; i++ {
			start := time.Now()
			cctx, croot := ctr.Root(ctx, "bench client", "")
			_, err := cl.Run(cctx, clShape, inputs)
			croot.End()
			if err != nil {
				b.Fatal(err)
			}
			e2e = append(e2e, time.Since(start))
		}
	})

	// The ring holds the newest traces; with RingSize above any sane
	// -benchtime the measured requests are all present (plus the warm-up,
	// which a median shrugs off).
	ftraces := ftr.Traces(0, 0)
	wtraces := wtr.Traces(0, 0)
	ctraces := ctr.Traces(0, 0)
	if len(ftraces) == 0 || len(wtraces) == 0 || len(ctraces) == 0 {
		b.Fatal("fleet run committed no traces")
	}
	// One id spans all three tiers: the client minted it, the front and
	// worker joined it.
	sharedIDs := make(map[string]bool, len(ctraces))
	for _, tr := range ctraces {
		sharedIDs[tr.TraceID] = true
	}
	for _, tr := range wtraces {
		if !sharedIDs[tr.TraceID] {
			b.Fatalf("worker trace %s has no matching client trace", tr.TraceID)
		}
	}
	var wire []time.Duration
	for _, tr := range ctraces {
		for _, sp := range tr.Spans {
			if strings.HasPrefix(sp.Name, "client ") { // "client POST": one span per wire attempt
				wire = append(wire, sp.Duration)
			}
		}
	}
	var frontRoots []time.Duration
	var frontCoverage []float64
	for _, tr := range ftraces {
		frontRoots = append(frontRoots, tr.Duration)
		var forward time.Duration
		for _, sp := range tr.Spans {
			if sp.Name == "front.forward" {
				forward += sp.Duration
			}
		}
		if tr.Duration > 0 {
			frontCoverage = append(frontCoverage, float64(forward)/float64(tr.Duration))
		}
	}
	phases := map[string][]time.Duration{}
	var workerCoverage []float64
	for _, tr := range wtraces {
		// The worker root's Parent is the front's forward-span id — a
		// remote span, absent from this ring. The local root is the span
		// whose parent is not in the trace.
		ids := make(map[string]bool, len(tr.Spans))
		for _, sp := range tr.Spans {
			ids[sp.ID] = true
		}
		var rootID string
		for _, sp := range tr.Spans {
			if !ids[sp.Parent] {
				rootID = sp.ID
				break
			}
		}
		var direct time.Duration
		for _, sp := range tr.Spans {
			phases[sp.Name] = append(phases[sp.Name], sp.Duration)
			if sp.Parent == rootID {
				direct += sp.Duration
			}
		}
		if tr.Duration > 0 {
			workerCoverage = append(workerCoverage, float64(direct)/float64(tr.Duration))
		}
	}

	wireMed := medianDur(wire)
	rootMed := medianDur(frontRoots)
	point["requests_traced"] = len(ftraces)
	point["e2e_p50_ns"] = float64(medianDur(e2e).Nanoseconds())
	point["wire_p50_ns"] = float64(wireMed.Nanoseconds())
	point["front_root_p50_ns"] = float64(rootMed.Nanoseconds())
	if wireMed > 0 {
		point["root_vs_wire_ratio"] = float64(rootMed) / float64(wireMed)
	}
	point["front_child_coverage_p50"] = medianFloat(frontCoverage)
	point["worker_child_coverage_p50"] = medianFloat(workerCoverage)
	phaseMed := map[string]float64{}
	for name, ds := range phases {
		phaseMed[name] = float64(medianDur(ds).Nanoseconds())
	}
	point["phase_p50_ns"] = phaseMed

	// The attribution contract, asserted not just recorded: children
	// explain at least 90% of the root they hang from. A median over a
	// handful of requests is one GC pause away from a false alarm, so the
	// assertion arms itself only at meaningful sample counts (the 1x CI
	// smoke records the numbers without judging them).
	if len(workerCoverage) >= 10 {
		if cov := medianFloat(workerCoverage); cov < 0.9 {
			b.Errorf("worker child spans cover only %.0f%% of the root span, want >= 90%%", 100*cov)
		}
		if cov := medianFloat(frontCoverage); cov < 0.9 {
			b.Errorf("front child spans cover only %.0f%% of the root span, want >= 90%%", 100*cov)
		}
	}
	b.ReportMetric(medianFloat(workerCoverage), "worker-coverage")
	b.ReportMetric(medianFloat(frontCoverage), "front-coverage")

	buf, err := json.MarshalIndent(point, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(buf, '\n'), 0o644); err != nil {
		b.Logf("BENCH_obs.json not written: %v", err)
	}
}
