package wse

// Benchmark of the batch-replay tier: what one replay of the tracked
// reduce1d p=512 B=16 shape costs as a single Session.Run versus as one
// entry of a RunBatch, in both result layouts. The per-run fixed cost of
// a single replay is input binding plus result-map assembly (~100µs at
// p=512); batching amortises the pool checkout and scheduling, and the
// columnar layout removes the maps entirely. The headline numbers are
// written to BENCH_api.json as a trajectory point.

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"sort"
	"testing"
	"time"
)

// minChunkNs runs fn b.N times in chunks and returns the fastest per-call
// average across chunks. Replays are deterministic, so the minimum chunk
// estimates the uncontended per-run cost; the JSON trajectory numbers use
// it because a plain mean smears neighbour and scheduler interference
// into the sub-millisecond differences the file exists to track. The
// framework's own ns/op stays the mean.
func minChunkNs(b *testing.B, chunk int, fn func()) float64 {
	best := math.Inf(1)
	for done := 0; done < b.N; {
		n := min(chunk, b.N-done)
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		if el := float64(time.Since(start).Nanoseconds()) / float64(n); el < best {
			best = el
		}
		done += n
	}
	return best
}

// BenchmarkBatchReplay measures per-run replay cost in four modes:
// {single, batch} × {map, columnar}. The acceptance bar is the batch
// columns sitting below their single-run counterparts — batch replay
// must cut the per-run fixed overhead.
func BenchmarkBatchReplay(b *testing.B) {
	const batchN = 16
	sh := Shape{Kind: KindReduce, Alg: Auto, P: planBenchP, B: planBenchB, Op: Sum}
	vectors := constVectors(planBenchP, planBenchB)
	batches := make([][][]float32, batchN)
	for i := range batches {
		batches[i] = vectors
	}
	ctx := context.Background()
	sess := NewSession(SessionConfig{})
	defer sess.Close()
	if _, err := sess.Run(ctx, sh, vectors); err != nil { // compile + warm the pool
		b.Fatal(err)
	}

	point := map[string]any{
		"bench":      "batch-replay",
		"batch_size": batchN,
		"shape": map[string]any{
			"kind": "reduce1d", "alg": "auto",
			"p": planBenchP, "b": planBenchB,
		},
	}
	benchHostMeta(point)

	perRun := map[string]float64{}
	modes := []struct {
		name string
		opts []RunOption
	}{
		{"map", nil},
		{"columnar", []RunOption{WithColumnarResult()}},
	}
	for _, mode := range modes {
		b.Run("single-"+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			perRun["single_"+mode.name+"_ns_per_run"] = minChunkNs(b, 8, func() {
				if _, err := sess.Run(ctx, sh, vectors, mode.opts...); err != nil {
					b.Fatal(err)
				}
			})
		})
		b.Run("batch-"+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			// Per replayed run, not per RunBatch call: the comparison
			// against the single column is what the batch tier is for.
			perRun["batch_"+mode.name+"_ns_per_run"] = minChunkNs(b, 8, func() {
				if _, err := sess.RunBatch(ctx, sh, batches, mode.opts...); err != nil {
					b.Fatal(err)
				}
			}) / batchN
		})
		b.Run("saving-"+mode.name, func(b *testing.B) {
			// The headline saving is a paired difference: each iteration
			// times batchN single replays against one RunBatch of the same
			// batchN runs, back to back, and the median per-run difference
			// is reported. Subtracting two separately-timed benchmarks
			// inherits both benchmarks' noise — more than the ~100µs fixed
			// cost the batch tier removes — where interference during a
			// pair inflates both halves and largely cancels.
			diffs := make([]float64, 0, b.N)
			for i := 0; i < b.N; i++ {
				start := time.Now()
				for j := 0; j < batchN; j++ {
					if _, err := sess.Run(ctx, sh, vectors, mode.opts...); err != nil {
						b.Fatal(err)
					}
				}
				singles := time.Since(start)
				start = time.Now()
				if _, err := sess.RunBatch(ctx, sh, batches, mode.opts...); err != nil {
					b.Fatal(err)
				}
				batched := time.Since(start)
				diffs = append(diffs, float64((singles-batched).Nanoseconds())/batchN)
			}
			sort.Float64s(diffs)
			med := diffs[len(diffs)/2]
			perRun["batch_saving_"+mode.name+"_ns_per_run"] = med
			b.ReportMetric(med, "saved-ns/run")
		})
	}

	single, batchCol := perRun["single_map_ns_per_run"], perRun["batch_columnar_ns_per_run"]
	if single > 0 && batchCol > 0 {
		for k, v := range perRun {
			point[k] = v
		}
		// The headline savings come from the paired-difference
		// sub-benchmarks above, already in perRun; the ratio still
		// compares the absolute best-of-chunk columns.
		point["single_map_vs_batch_columnar"] = single / batchCol
		b.ReportMetric(single/batchCol, "overhead-cut-x")
		buf, err := json.MarshalIndent(point, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_api.json", append(buf, '\n'), 0o644); err != nil {
			b.Logf("BENCH_api.json not written: %v", err)
		}
	}
}
