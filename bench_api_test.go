package wse

// Benchmark of the batch-replay tier: what one replay of the tracked
// reduce1d p=512 B=16 shape costs as a single Session.Run versus as one
// entry of a RunBatch, in both result layouts. The per-run fixed cost of
// a single replay is input binding plus result-map assembly (~100µs at
// p=512); batching amortises the pool checkout and scheduling, and the
// columnar layout removes the maps entirely. The headline numbers are
// written to BENCH_api.json as a trajectory point.

import (
	"context"
	"encoding/json"
	"os"
	"testing"
)

// BenchmarkBatchReplay measures per-run replay cost in four modes:
// {single, batch} × {map, columnar}. The acceptance bar is the batch
// columns sitting below their single-run counterparts — batch replay
// must cut the per-run fixed overhead.
func BenchmarkBatchReplay(b *testing.B) {
	const batchN = 16
	sh := Shape{Kind: KindReduce, Alg: Auto, P: planBenchP, B: planBenchB, Op: Sum}
	vectors := constVectors(planBenchP, planBenchB)
	batches := make([][][]float32, batchN)
	for i := range batches {
		batches[i] = vectors
	}
	ctx := context.Background()
	sess := NewSession(SessionConfig{})
	defer sess.Close()
	if _, err := sess.Run(ctx, sh, vectors); err != nil { // compile + warm the pool
		b.Fatal(err)
	}

	point := map[string]any{
		"bench":      "batch-replay",
		"batch_size": batchN,
		"shape": map[string]any{
			"kind": "reduce1d", "alg": "auto",
			"p": planBenchP, "b": planBenchB,
		},
	}
	benchHostMeta(point)

	perRun := map[string]float64{}
	modes := []struct {
		name string
		opts []RunOption
	}{
		{"map", nil},
		{"columnar", []RunOption{WithColumnarResult()}},
	}
	for _, mode := range modes {
		b.Run("single-"+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Run(ctx, sh, vectors, mode.opts...); err != nil {
					b.Fatal(err)
				}
			}
			perRun["single_"+mode.name+"_ns_per_run"] =
				float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
		b.Run("batch-"+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sess.RunBatch(ctx, sh, batches, mode.opts...); err != nil {
					b.Fatal(err)
				}
			}
			// Per replayed run, not per RunBatch call: the comparison
			// against the single column is what the batch tier is for.
			perRun["batch_"+mode.name+"_ns_per_run"] =
				float64(b.Elapsed().Nanoseconds()) / float64(b.N) / batchN
		})
	}

	single, batchCol := perRun["single_map_ns_per_run"], perRun["batch_columnar_ns_per_run"]
	if single > 0 && batchCol > 0 {
		for k, v := range perRun {
			point[k] = v
		}
		// The headlines: what batching saves per run in like-for-like
		// layout, and the full single-map → batch-columnar overhead cut.
		point["batch_saving_map_ns_per_run"] = perRun["single_map_ns_per_run"] - perRun["batch_map_ns_per_run"]
		point["batch_saving_columnar_ns_per_run"] = perRun["single_columnar_ns_per_run"] - perRun["batch_columnar_ns_per_run"]
		point["single_map_vs_batch_columnar"] = single / batchCol
		b.ReportMetric(single/batchCol, "overhead-cut-x")
		buf, err := json.MarshalIndent(point, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_api.json", append(buf, '\n'), 0o644); err != nil {
			b.Logf("BENCH_api.json not written: %v", err)
		}
	}
}
