package wse

// Tests of the async tier under -race (CI runs this package with the
// race detector): double-Wait, wait-after-close, and abandoned futures.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestFutureDoubleWait: Wait is idempotent and safe to call from many
// goroutines — every caller sees the same report and error.
func TestFutureDoubleWait(t *testing.T) {
	s := NewSession(SessionConfig{})
	defer s.Close()
	sh := Shape{Kind: KindReduce, Alg: Chain, P: 8, B: 4, Op: Sum}
	vecs := constVectors(8, 4)
	want, err := s.Run(context.Background(), sh, vecs)
	if err != nil {
		t.Fatal(err)
	}
	fut := s.Submit(context.Background(), sh, vecs)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := fut.Wait()
			if err != nil {
				t.Errorf("Wait: %v", err)
				return
			}
			if rep.Cycles != want.Cycles || rep.Root[0] != want.Root[0] {
				t.Errorf("Wait: cycles=%d root=%v, want cycles=%d root=%v",
					rep.Cycles, rep.Root[0], want.Cycles, want.Root[0])
			}
		}()
	}
	wg.Wait()
	// A Wait after everyone else finished still answers, as does Err.
	if _, err := fut.Wait(); err != nil {
		t.Fatalf("late Wait: %v", err)
	}
	if err := fut.Err(); err != nil {
		t.Fatalf("Err after Wait: %v", err)
	}
	select {
	case <-fut.Done():
	default:
		t.Fatal("Done channel not closed after resolution")
	}
}

// TestFutureWaitAfterClose: submissions after Close resolve — not hang —
// with ErrSessionClosed, and a future obtained before Close still
// resolves after it.
func TestFutureWaitAfterClose(t *testing.T) {
	s := NewSession(SessionConfig{})
	sh := Shape{Kind: KindReduce, Alg: Chain, P: 8, B: 4, Op: Sum}
	vecs := constVectors(8, 4)
	before := s.Submit(context.Background(), sh, vecs)
	if _, err := before.Wait(); err != nil {
		t.Fatalf("future submitted before Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The resolved future keeps answering after Close.
	if _, err := before.Wait(); err != nil {
		t.Fatalf("resolved future after Close: %v", err)
	}
	after := s.Submit(context.Background(), sh, vecs)
	select {
	case <-after.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("future submitted after Close never resolved")
	}
	if _, err := after.Wait(); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("wait after close: %v, want ErrSessionClosed", err)
	}
}

// TestFutureAbandon: cancelling a submitted request's context and never
// waiting on the future must not wedge the session — the scheduler
// accounts the cancellation and keeps serving — and a later Wait on the
// abandoned future still answers with the context error.
func TestFutureAbandon(t *testing.T) {
	s := NewSession(SessionConfig{Workers: 1})
	defer s.Close()
	sh := Shape{Kind: KindReduce, Alg: Chain, P: 8, B: 4, Op: Sum}
	vecs := constVectors(8, 4)

	// Occupy the only worker so cancelled submissions are still queued.
	blockCtx := context.Background()
	big := constVectors(32*32, 64)
	blocker := s.Submit(blockCtx, Shape{Kind: KindReduce2D, Alg2D: Auto2D, Width: 32, Height: 32, B: 64, Op: Sum}, big)

	ctx, cancel := context.WithCancel(context.Background())
	abandoned := make([]*Future, 4)
	for i := range abandoned {
		abandoned[i] = s.Submit(ctx, sh, vecs)
	}
	cancel()
	// Deliberately do not Wait on most of them; one late Wait must see
	// the cancellation (or, if its replay won the race, a real report).
	if _, err := abandoned[0].Wait(); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned future: %v, want ctx error or success", err)
	}
	if _, err := blocker.Wait(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	// The session still serves fresh work after the abandonment.
	if _, err := s.Run(context.Background(), sh, vecs); err != nil {
		t.Fatalf("run after abandoned futures: %v", err)
	}
}

// TestPackageSubmit: the one-shot async verb compiles and runs off the
// caller's goroutine and resolves validation failures synchronously.
func TestPackageSubmit(t *testing.T) {
	sh := Shape{Kind: KindAllReduce, Alg: Tree, P: 6, B: 3, Op: Sum}
	vecs := constVectors(6, 3)
	rep, err := Submit(context.Background(), sh, vecs).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Root[0] != 6 {
		t.Fatalf("allreduce of ones over 6 PEs: root %v, want 6", rep.Root[0])
	}
	bad := Submit(context.Background(), Shape{Kind: "nope", B: 1}, nil)
	select {
	case <-bad.Done():
	default:
		t.Fatal("invalid-shape future must resolve synchronously")
	}
	if err := bad.Err(); !errors.Is(err, ErrBadShape) {
		t.Fatalf("invalid shape: %v, want ErrBadShape", err)
	}
}
