package wse

// Session is the compiled-plan executor: the paper's model-driven
// deployment (§5.5) turned into a serving engine. The one-shot functions
// (Reduce, AllReduce2D, ...) re-derive the reduction tree, re-lower it to
// a fabric program and re-validate it on every call; a Session does that
// work once per distinct collective shape, keeps the lowered plan in a
// content-keyed LRU cache, and replays it for every subsequent call —
// cold-path compile once, hot-path replay many. Sessions are safe for
// concurrent use: independent collectives run in parallel on a bounded
// worker pool.

import (
	"repro/internal/plan"
)

// SessionConfig tunes a Session; the zero value is usable.
type SessionConfig struct {
	// Options parameterise the simulated fabric for every collective the
	// session runs; the zero value models the WSE-2. Options.Shards
	// selects the sharded engine for every replay; Options.MaxCycles left
	// at zero selects DefaultSessionMaxCycles rather than the simulator's
	// near-unbounded default, so a stuck replay fails fast with a stall
	// diagnostic instead of spinning for hours.
	Options Options
	// PlanCacheCapacity bounds the number of compiled plans kept resident
	// (<= 0 selects the default of 128). Distinct shapes beyond the
	// capacity evict the least recently used plan.
	PlanCacheCapacity int
	// Workers bounds the number of concurrently executing fabric
	// simulations (<= 0 selects GOMAXPROCS).
	Workers int
	// Store, when non-nil, attaches a plan store in write-through mode:
	// cache misses first try to decode the stored plan (no compile), and
	// plans the session does compile are persisted back, so a fleet of
	// sessions over one store compiles each distinct shape once ever, not
	// once per process. Store failures never fail a request — the session
	// falls back to compiling — and are counted in PlanStats.StoreErrors.
	Store *PlanStore
}

// DefaultSessionMaxCycles is the per-run cycle cap a Session applies when
// its Options leave MaxCycles at zero. The bare simulator defaults to
// 2^34 cycles — days of wall-clock for a large sharded run gone wrong —
// which is the right generosity for one-shot experiments but not for a
// serving loop. 2^28 cycles is ~100× the largest legitimate run of the
// experiment suite (a full-wafer Star at 16 KB) yet fails a wedged replay
// within seconds, with the engine's blocked-PE diagnostic attached.
const DefaultSessionMaxCycles = 1 << 28

// PlanStats is the plan cache accounting: hits, misses, evictions and
// resident plan count.
type PlanStats = plan.CacheStats

// Session executes collectives against cached compiled plans.
type Session struct {
	opt Options
	s   *plan.Session
}

// NewSession creates a session. The zero SessionConfig models the WSE-2
// with the default cache capacity and one worker per CPU.
func NewSession(cfg SessionConfig) *Session {
	if cfg.Options.MaxCycles == 0 {
		cfg.Options.MaxCycles = DefaultSessionMaxCycles
	}
	s := &Session{
		opt: cfg.Options,
		s:   plan.NewSession(cfg.PlanCacheCapacity, cfg.Workers),
	}
	if cfg.Store != nil {
		s.s.SetStore(cfg.Store)
	}
	return s
}

// PlanStats snapshots the session's plan-cache accounting.
func (s *Session) PlanStats() PlanStats { return s.s.Stats() }

func (s *Session) run(req plan.Request, inputs [][]float32) (*Report, error) {
	req.Opt = s.opt
	return s.s.Run(req, inputs)
}

func dims(vectors [][]float32) (p, b int) {
	p = len(vectors)
	if p > 0 {
		b = len(vectors[0])
	}
	return p, b
}

// Reduce is the session counterpart of wse.Reduce: identical semantics
// and bit-identical results, but the compiled plan is cached and replayed.
func (s *Session) Reduce(vectors [][]float32, alg Algorithm, op ReduceOp) (*Report, error) {
	p, b := dims(vectors)
	return s.run(plan.Request{Kind: plan.Reduce1D, Alg: alg, P: p, B: b, Op: op}, vectors)
}

// AllReduce is the session counterpart of wse.AllReduce.
func (s *Session) AllReduce(vectors [][]float32, alg Algorithm, op ReduceOp) (*Report, error) {
	p, b := dims(vectors)
	return s.run(plan.Request{Kind: plan.AllReduce1D, Alg: alg, P: p, B: b, Op: op}, vectors)
}

// AllReduceMidRoot is the session counterpart of wse.AllReduceMidRoot.
func (s *Session) AllReduceMidRoot(vectors [][]float32, alg Algorithm, op ReduceOp) (*Report, error) {
	p, b := dims(vectors)
	return s.run(plan.Request{Kind: plan.AllReduceMidRoot, Alg: alg, P: p, B: b, Op: op}, vectors)
}

// Broadcast is the session counterpart of wse.Broadcast.
func (s *Session) Broadcast(data []float32, p int) (*Report, error) {
	return s.run(plan.Request{Kind: plan.Broadcast1D, P: p, B: len(data)}, [][]float32{data})
}

// Reduce2D is the session counterpart of wse.Reduce2D.
func (s *Session) Reduce2D(vectors [][]float32, width, height int, alg Algorithm2D, op ReduceOp) (*Report, error) {
	_, b := dims(vectors)
	return s.run(plan.Request{Kind: plan.Reduce2D, Alg2D: alg, Width: width, Height: height, B: b, Op: op}, vectors)
}

// AllReduce2D is the session counterpart of wse.AllReduce2D.
func (s *Session) AllReduce2D(vectors [][]float32, width, height int, alg Algorithm2D, op ReduceOp) (*Report, error) {
	_, b := dims(vectors)
	return s.run(plan.Request{Kind: plan.AllReduce2D, Alg2D: alg, Width: width, Height: height, B: b, Op: op}, vectors)
}

// Broadcast2D is the session counterpart of wse.Broadcast2D.
func (s *Session) Broadcast2D(data []float32, width, height int) (*Report, error) {
	return s.run(plan.Request{Kind: plan.Broadcast2D, Width: width, Height: height, B: len(data)}, [][]float32{data})
}

// Scatter is the session counterpart of wse.Scatter.
func (s *Session) Scatter(data []float32, p int) (*Report, error) {
	return s.run(plan.Request{Kind: plan.Scatter, P: p, B: len(data)}, [][]float32{data})
}

// Gather is the session counterpart of wse.Gather.
func (s *Session) Gather(chunks [][]float32) (*Report, error) {
	b := 0
	for _, c := range chunks {
		b += len(c)
	}
	return s.run(plan.Request{Kind: plan.Gather, P: len(chunks), B: b}, chunks)
}

// ReduceScatter is the session counterpart of wse.ReduceScatter.
func (s *Session) ReduceScatter(vectors [][]float32, op ReduceOp) (*Report, error) {
	p, b := dims(vectors)
	return s.run(plan.Request{Kind: plan.ReduceScatter, P: p, B: b, Op: op}, vectors)
}

// AllGather is the session counterpart of wse.AllGather.
func (s *Session) AllGather(chunks [][]float32) (*Report, error) {
	b := 0
	for _, c := range chunks {
		b += len(c)
	}
	return s.run(plan.Request{Kind: plan.AllGather, P: len(chunks), B: b}, chunks)
}
