package wse

// Session is the compiled-plan executor: the paper's model-driven
// deployment (§5.5) turned into a serving engine. The one-shot functions
// (Reduce, AllReduce2D, ...) re-derive the reduction tree, re-lower it to
// a fabric program and re-validate it on every call; a Session does that
// work once per distinct collective shape, keeps the lowered plan in a
// content-keyed LRU cache, and replays it for every subsequent call —
// cold-path compile once, hot-path replay many. Sessions are safe for
// concurrent use: independent collectives run in parallel on a bounded
// worker pool, fronted by a multi-tenant QoS scheduler — WithTenant
// serves callers under weighted-fair shares and strict priority classes,
// with per-tenant admission control and accounting (SchedStats).

import (
	"context"
	"fmt"

	"repro/internal/plan"
	"repro/internal/sched"
)

// SessionConfig tunes a Session; the zero value is usable.
type SessionConfig struct {
	// Options parameterise the simulated fabric for every collective the
	// session runs; the zero value models the WSE-2. Options.Shards
	// selects the sharded engine for every replay (left at zero it
	// auto-tunes from GOMAXPROCS per fabric size, bit-identically);
	// Options.MaxCycles left at zero selects DefaultSessionMaxCycles
	// rather than the simulator's near-unbounded default, so a stuck
	// replay fails fast with a stall diagnostic instead of spinning for
	// hours.
	Options Options
	// PlanCacheCapacity bounds the number of compiled plans kept resident
	// (<= 0 selects the default of 128). Distinct shapes beyond the
	// capacity evict the least recently used plan.
	PlanCacheCapacity int
	// Workers bounds the number of concurrently executing fabric
	// simulations (<= 0 selects GOMAXPROCS).
	Workers int
	// Store, when non-nil, attaches a plan store in write-through mode:
	// cache misses first try to decode the stored plan (no compile), and
	// plans the session does compile are persisted back, so a fleet of
	// sessions over one store compiles each distinct shape once ever, not
	// once per process. Store failures never fail a request — the session
	// falls back to compiling — and are counted in PlanStats.StoreErrors.
	Store *PlanStore
	// Resolver, when non-nil, replaces the cache's built-in store→compile
	// miss path with a composed resolver chain (internal/resolve via the
	// wse.Resolver alias): local store, remote fleet peers, compile as
	// last resort, in whatever composition the caller built. Store may
	// still be set alongside it — the session then serves its plan-blob
	// surface from the store even though the chain owns the fill path.
	Resolver Resolver
	// Scheduler tunes the multi-tenant QoS layer in front of the worker
	// pool; the zero value serves everything as one weight-1 Batch tenant
	// with the default queue bound.
	Scheduler SchedulerConfig
}

// SchedulerConfig tunes the session's multi-tenant request scheduler.
type SchedulerConfig struct {
	// DefaultTenant is the TenantConfig applied to the default tenant and
	// to any tenant name first seen on a request rather than registered
	// via WithTenant.
	DefaultTenant TenantConfig
}

// TenantConfig sets a tenant's share of the session's worker pool: its
// weighted-fair Weight, its strict Priority class, and its admission
// bound MaxQueue (queued requests beyond it are rejected with
// ErrOverloaded instead of waiting without bound).
type TenantConfig = sched.TenantConfig

// Priority is a strict dispatch class: every queued Interactive request
// runs before any Batch request, and Batch before Background. The zero
// value is Batch.
type Priority = sched.Priority

// The priority classes, in dispatch order.
const (
	Interactive = sched.Interactive
	Batch       = sched.Batch
	Background  = sched.Background
)

// SchedStats is the scheduler's accounting: per-tenant served/rejected/
// cancelled counts and queue-wait/execution latency quantiles, plus the
// worker pool's backpressure metrics (queue depth, saturation time).
// Per-tenant counters balance: Submitted = Served + Rejected + Cancelled.
type SchedStats = sched.Stats

// TenantStats is one tenant's slice of SchedStats.
type TenantStats = sched.TenantStats

// PoolStats is the worker-pool backpressure slice of SchedStats.
type PoolStats = sched.PoolStats

// ErrOverloaded is returned — immediately, never after queueing — when a
// request arrives while its tenant's queue is at the MaxQueue bound.
var ErrOverloaded = sched.ErrOverloaded

// ErrSessionClosed is returned by requests submitted after Close.
var ErrSessionClosed = sched.ErrClosed

// ErrTenantRemoved is returned by requests that were still queued when
// Session.RemoveTenant deleted their tenant.
var ErrTenantRemoved = sched.ErrTenantRemoved

// ErrInternal is returned when a request panicked inside a worker. The
// panic is recovered — the session, its worker pool and every other
// in-flight request are unaffected — and the error (a *sched.PanicError
// under errors.As) carries a sanitized stack of the panic site.
var ErrInternal = sched.ErrPanic

// ErrDeadline is returned when a request's context deadline expires —
// while queued (the request is shed before ever executing) or mid-replay
// (the fabric watchdog aborts the simulation). It matches both this
// sentinel and context.DeadlineExceeded under errors.Is.
var ErrDeadline = sched.ErrDeadline

// DefaultSessionMaxCycles is the per-run cycle cap a Session applies when
// its Options leave MaxCycles at zero. The bare simulator defaults to
// 2^34 cycles — days of wall-clock for a large sharded run gone wrong —
// which is the right generosity for one-shot experiments but not for a
// serving loop. 2^28 cycles is ~100× the largest legitimate run of the
// experiment suite (a full-wafer Star at 16 KB) yet fails a wedged replay
// within seconds, with the engine's blocked-PE diagnostic attached.
const DefaultSessionMaxCycles = 1 << 28

// PlanStats is the plan cache accounting: hits, misses, evictions and
// resident plan count.
type PlanStats = plan.CacheStats

// Session executes collectives against cached compiled plans.
type Session struct {
	opt   Options
	s     *plan.Session
	store *PlanStore // retained from SessionConfig.Store; may be nil
	def   Tenant     // the default-tenant handle the Session's own methods serve under
}

// NewSession creates a session. The zero SessionConfig models the WSE-2
// with the default cache capacity and one worker per CPU. A session that
// has served requests owns that many worker goroutines until Close; a
// session that never serves (e.g. a staging session used only to Warm a
// store) starts none and needs no Close.
func NewSession(cfg SessionConfig) *Session {
	if cfg.Options.MaxCycles == 0 {
		cfg.Options.MaxCycles = DefaultSessionMaxCycles
	}
	s := &Session{
		opt: cfg.Options,
		s: plan.NewSessionSched(cfg.PlanCacheCapacity, sched.Config{
			Workers:       cfg.Workers,
			DefaultTenant: cfg.Scheduler.DefaultTenant,
		}),
	}
	if cfg.Store != nil {
		s.store = cfg.Store
		s.s.SetStore(cfg.Store)
	}
	if cfg.Resolver != nil {
		s.s.SetResolver(cfg.Resolver)
	}
	s.def = Tenant{s: s} // empty name: the scheduler's default tenant
	return s
}

// PlanStats snapshots the session's plan-cache accounting.
func (s *Session) PlanStats() PlanStats { return s.s.Stats() }

// SchedStats snapshots the session's scheduler accounting: per-tenant
// counts and latency quantiles, and pool backpressure.
func (s *Session) SchedStats() SchedStats { return s.s.SchedStats() }

// Close stops admission, drains queued requests, waits for running ones
// and releases the worker pool. Requests after Close are rejected with
// ErrSessionClosed. Sessions that live for the whole process need not be
// closed.
func (s *Session) Close() error { return s.s.Close() }

// WithTenant registers (or live-reconfigures) a tenant and returns a
// handle that serves collectives under that tenant's QoS: weighted-fair
// dispatch against the other tenants of its priority class, strict
// precedence over lower classes, and per-tenant admission control and
// accounting. Handles are safe for concurrent use and share the
// session's plan cache — tenancy is a scheduling identity, not a cache
// partition.
//
// Each distinct name holds its queue, latency sketches and accounting
// (a few KB) until RemoveTenant releases them; dispatch scans the
// tenant set, so very large dynamic tenant populations should recycle
// names they are done with.
func (s *Session) WithTenant(name string, cfg TenantConfig) *Tenant {
	s.s.SetTenant(name, cfg)
	return &Tenant{s: s, name: name}
}

// RemoveTenant deletes a tenant and releases everything its name held:
// queue, latency sketches, accounting. Requests still queued under it
// fail immediately with ErrTenantRemoved; running ones complete. The
// name is free for reuse afterwards — existing handles still work but
// resubmit under a fresh default-config tenant. It reports whether the
// tenant existed. This is the lifecycle half of per-user tenancy: serve
// a user under their own name, remove the name when they go idle.
func (s *Session) RemoveTenant(name string) bool { return s.s.RemoveTenant(name) }

// Tenant serves collectives on its Session under one tenant's QoS. Its
// methods mirror the Session's, plus a context: cancelling it unqueues a
// request still waiting for a worker (returning ctx.Err() immediately) or
// abandons a running one, which the accounting then counts as cancelled
// rather than served.
type Tenant struct {
	s    *Session
	name string
}

// Name returns the tenant name the handle submits under.
func (t *Tenant) Name() string { return t.name }

// call resolves per-call options against the session's configuration:
// absent a WithOptions the session's Options apply; an explicit
// WithOptions replaces them for this call (compiling and caching a plan
// under the overridden options) with the session's MaxCycles default
// still applied.
func (s *Session) call(opts []Option) callOpts {
	c := resolveOpts(opts)
	if !c.optSet {
		c.opt = s.opt
	} else if c.opt.MaxCycles == 0 {
		c.opt.MaxCycles = DefaultSessionMaxCycles
	}
	return c
}

// Run serves any collective named by a Shape under the tenant's QoS —
// the Shape-first entry point the typed methods below wrap. The plan is
// compiled on the first call for a shape and replayed from the session's
// cache afterwards. Cancelling ctx unqueues a request still waiting for
// a worker (returning ctx.Err() immediately) or abandons a running one,
// which the accounting counts as cancelled rather than served.
func (t *Tenant) Run(ctx context.Context, sh Shape, inputs [][]float32, opts ...RunOption) (*Report, error) {
	c := t.s.call(opts)
	if err := sh.checkRun(inputs); err != nil {
		return nil, err
	}
	return t.s.s.SubmitOpts(ctx, t.name, sh.request(c.opt), inputs, c.execOpts())
}

// Submit is Run returning immediately with a Future. Admission control
// runs synchronously — an overloaded tenant or closed session comes back
// as an already-resolved Future — and the replay is then scheduled under
// the tenant's QoS like any blocking Run.
func (t *Tenant) Submit(ctx context.Context, sh Shape, inputs [][]float32, opts ...RunOption) *Future {
	c := t.s.call(opts)
	if err := sh.checkRun(inputs); err != nil {
		return plan.Fail(err)
	}
	return t.s.s.SubmitAsync(ctx, t.name, sh.request(c.opt), inputs, c.execOpts())
}

// RunBatch replays one Shape across every entry of batches (batches[i]
// is one Run's worth of inputs) as a single scheduled request: one queue
// slot, one plan acquisition, one pooled simulator instance held across
// the batch — so the per-run fixed cost of binding inputs and
// assembling results is amortised batch-wide. Reports come back in
// batch order. Combine with WithColumnarResult to skip the per-run
// result maps as well.
func (t *Tenant) RunBatch(ctx context.Context, sh Shape, batches [][][]float32, opts ...RunOption) ([]*Report, error) {
	c := t.s.call(opts)
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	for i, inputs := range batches {
		if err := sh.checkInputs(inputs); err != nil {
			return nil, fmt.Errorf("batch entry %d: %w", i, err)
		}
	}
	return t.s.s.SubmitBatch(ctx, t.name, sh.request(c.opt), batches, c.execOpts())
}

// Predict returns the model estimate for sh under the session's Options
// (or an explicit WithOptions).
func (t *Tenant) Predict(sh Shape, opts ...Option) float64 { return t.s.Predict(sh, opts...) }

// Bound returns the runtime lower bound for sh under the session's
// Options (or an explicit WithOptions).
func (t *Tenant) Bound(sh Shape, opts ...Option) float64 { return t.s.Bound(sh, opts...) }

// Run is the session-level counterpart of Tenant.Run: it serves any
// collective named by a Shape under the default tenant.
func (s *Session) Run(ctx context.Context, sh Shape, inputs [][]float32, opts ...RunOption) (*Report, error) {
	return s.def.Run(ctx, sh, inputs, opts...)
}

// Submit is the session-level counterpart of Tenant.Submit.
func (s *Session) Submit(ctx context.Context, sh Shape, inputs [][]float32, opts ...RunOption) *Future {
	return s.def.Submit(ctx, sh, inputs, opts...)
}

// RunBatch is the session-level counterpart of Tenant.RunBatch.
func (s *Session) RunBatch(ctx context.Context, sh Shape, batches [][][]float32, opts ...RunOption) ([]*Report, error) {
	return s.def.RunBatch(ctx, sh, batches, opts...)
}

// Predict returns the model estimate for sh under the session's Options
// (or an explicit WithOptions).
func (s *Session) Predict(sh Shape, opts ...Option) float64 {
	return Predict(sh, WithOptions(s.call(opts).opt))
}

// Bound returns the runtime lower bound for sh under the session's
// Options (or an explicit WithOptions).
func (s *Session) Bound(sh Shape, opts ...Option) float64 {
	return Bound(sh, WithOptions(s.call(opts).opt))
}

// Reduce is the tenant counterpart of Session.Reduce.
func (t *Tenant) Reduce(ctx context.Context, vectors [][]float32, alg Algorithm, op ReduceOp) (*Report, error) {
	return t.Run(ctx, reduceShape(KindReduce, vectors, alg, op), vectors)
}

// AllReduce is the tenant counterpart of Session.AllReduce.
func (t *Tenant) AllReduce(ctx context.Context, vectors [][]float32, alg Algorithm, op ReduceOp) (*Report, error) {
	return t.Run(ctx, reduceShape(KindAllReduce, vectors, alg, op), vectors)
}

// AllReduceMidRoot is the tenant counterpart of Session.AllReduceMidRoot.
func (t *Tenant) AllReduceMidRoot(ctx context.Context, vectors [][]float32, alg Algorithm, op ReduceOp) (*Report, error) {
	return t.Run(ctx, reduceShape(KindAllReduceMidRoot, vectors, alg, op), vectors)
}

// Broadcast is the tenant counterpart of Session.Broadcast.
func (t *Tenant) Broadcast(ctx context.Context, data []float32, p int) (*Report, error) {
	return t.Run(ctx, Shape{Kind: KindBroadcast, P: p, B: len(data)}, [][]float32{data})
}

// Reduce2D is the tenant counterpart of Session.Reduce2D.
func (t *Tenant) Reduce2D(ctx context.Context, vectors [][]float32, width, height int, alg Algorithm2D, op ReduceOp) (*Report, error) {
	return t.Run(ctx, gridShape(KindReduce2D, vectors, width, height, alg, op), vectors)
}

// AllReduce2D is the tenant counterpart of Session.AllReduce2D.
func (t *Tenant) AllReduce2D(ctx context.Context, vectors [][]float32, width, height int, alg Algorithm2D, op ReduceOp) (*Report, error) {
	return t.Run(ctx, gridShape(KindAllReduce2D, vectors, width, height, alg, op), vectors)
}

// Broadcast2D is the tenant counterpart of Session.Broadcast2D.
func (t *Tenant) Broadcast2D(ctx context.Context, data []float32, width, height int) (*Report, error) {
	return t.Run(ctx, Shape{Kind: KindBroadcast2D, Width: width, Height: height, B: len(data)}, [][]float32{data})
}

// Scatter is the tenant counterpart of Session.Scatter.
func (t *Tenant) Scatter(ctx context.Context, data []float32, p int) (*Report, error) {
	return t.Run(ctx, Shape{Kind: KindScatter, P: p, B: len(data)}, [][]float32{data})
}

// Gather is the tenant counterpart of Session.Gather.
func (t *Tenant) Gather(ctx context.Context, chunks [][]float32) (*Report, error) {
	return t.Run(ctx, chunkShape(KindGather, chunks), chunks)
}

// ReduceScatter is the tenant counterpart of Session.ReduceScatter.
func (t *Tenant) ReduceScatter(ctx context.Context, vectors [][]float32, op ReduceOp) (*Report, error) {
	return t.Run(ctx, reduceShape(KindReduceScatter, vectors, "", op), vectors)
}

// AllGather is the tenant counterpart of Session.AllGather.
func (t *Tenant) AllGather(ctx context.Context, chunks [][]float32) (*Report, error) {
	return t.Run(ctx, chunkShape(KindAllGather, chunks), chunks)
}

func dims(vectors [][]float32) (p, b int) {
	p = len(vectors)
	if p > 0 {
		b = len(vectors[0])
	}
	return p, b
}

// reduceShape, gridShape and chunkShape derive a Shape from legacy
// argument spellings; the verb layer re-validates whatever they produce.
func reduceShape(kind Collective, vectors [][]float32, alg Algorithm, op ReduceOp) Shape {
	p, b := dims(vectors)
	return Shape{Kind: kind, Alg: alg, P: p, B: b, Op: op}
}

func gridShape(kind Collective, vectors [][]float32, width, height int, alg Algorithm2D, op ReduceOp) Shape {
	_, b := dims(vectors)
	return Shape{Kind: kind, Alg2D: alg, Width: width, Height: height, B: b, Op: op}
}

func chunkShape(kind Collective, chunks [][]float32) Shape {
	b := 0
	for _, c := range chunks {
		b += len(c)
	}
	return Shape{Kind: kind, P: len(chunks), B: b}
}

// Reduce is the session counterpart of wse.Reduce: identical semantics
// and bit-identical results, but the compiled plan is cached and
// replayed. The Session-level collective methods serve under the default
// tenant with no cancellation; use WithTenant for per-caller QoS and
// context support.
func (s *Session) Reduce(vectors [][]float32, alg Algorithm, op ReduceOp) (*Report, error) {
	return s.def.Reduce(context.Background(), vectors, alg, op)
}

// AllReduce is the session counterpart of wse.AllReduce.
func (s *Session) AllReduce(vectors [][]float32, alg Algorithm, op ReduceOp) (*Report, error) {
	return s.def.AllReduce(context.Background(), vectors, alg, op)
}

// AllReduceMidRoot is the session counterpart of wse.AllReduceMidRoot.
func (s *Session) AllReduceMidRoot(vectors [][]float32, alg Algorithm, op ReduceOp) (*Report, error) {
	return s.def.AllReduceMidRoot(context.Background(), vectors, alg, op)
}

// Broadcast is the session counterpart of wse.Broadcast.
func (s *Session) Broadcast(data []float32, p int) (*Report, error) {
	return s.def.Broadcast(context.Background(), data, p)
}

// Reduce2D is the session counterpart of wse.Reduce2D.
func (s *Session) Reduce2D(vectors [][]float32, width, height int, alg Algorithm2D, op ReduceOp) (*Report, error) {
	return s.def.Reduce2D(context.Background(), vectors, width, height, alg, op)
}

// AllReduce2D is the session counterpart of wse.AllReduce2D.
func (s *Session) AllReduce2D(vectors [][]float32, width, height int, alg Algorithm2D, op ReduceOp) (*Report, error) {
	return s.def.AllReduce2D(context.Background(), vectors, width, height, alg, op)
}

// Broadcast2D is the session counterpart of wse.Broadcast2D.
func (s *Session) Broadcast2D(data []float32, width, height int) (*Report, error) {
	return s.def.Broadcast2D(context.Background(), data, width, height)
}

// Scatter is the session counterpart of wse.Scatter.
func (s *Session) Scatter(data []float32, p int) (*Report, error) {
	return s.def.Scatter(context.Background(), data, p)
}

// Gather is the session counterpart of wse.Gather.
func (s *Session) Gather(chunks [][]float32) (*Report, error) {
	return s.def.Gather(context.Background(), chunks)
}

// ReduceScatter is the session counterpart of wse.ReduceScatter.
func (s *Session) ReduceScatter(vectors [][]float32, op ReduceOp) (*Report, error) {
	return s.def.ReduceScatter(context.Background(), vectors, op)
}

// AllGather is the session counterpart of wse.AllGather.
func (s *Session) AllGather(chunks [][]float32) (*Report, error) {
	return s.def.AllGather(context.Background(), chunks)
}
