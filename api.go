package wse

// The Shape-first API: three verbs over one value. A Shape names any of
// the 11 collective kinds; Run executes it on the fabric simulator,
// Predict returns the performance model's cycle estimate, and Bound the
// runtime lower bound — the paper's measure/model/bound triad (§5, §8)
// as one uniform surface. The same three verbs exist on the package
// (one-shot: compile, run, discard), on a Session (compile once, replay
// from the plan cache) and on a Tenant (replay under that tenant's QoS),
// so code written against a Shape moves between deployment styles
// without rewriting call sites. Submit is Run's asynchronous twin,
// returning a Future; RunBatch replays one Shape over many input sets
// with the fixed per-run costs amortised across the batch.
//
// The legacy named functions (Reduce, AllReduce2D, PredictGather, ...)
// are thin wrappers over these verbs and remain bit-identical.

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/plan"
)

// ErrBadShape is wrapped by every shape- and input-validation failure:
// unknown kinds, non-positive geometry, algorithms a kind does not
// accept, and input slices whose arity does not match the Shape (ragged
// vectors, wrong PE count, mis-sized chunks). Test with
// errors.Is(err, wse.ErrBadShape).
var ErrBadShape = errors.New("wse: bad shape")

// Option configures a single Run, Predict, Bound, Submit or RunBatch
// call.
type Option func(*callOpts)

// RunOption is Option under the name the execution verbs use.
type RunOption = Option

type callOpts struct {
	opt      Options
	optSet   bool
	columnar bool
}

// WithOptions sets the fabric options of one call. On the package-level
// verbs the zero Options (the WSE-2 defaults) apply when absent; on
// Session and Tenant verbs the session's configured Options apply when
// absent, and an explicit WithOptions compiles (and caches) a plan for
// the overridden options instead.
func WithOptions(opt Options) Option {
	return func(c *callOpts) { c.opt = opt; c.optSet = true }
}

// WithColumnarResult makes Run (and Submit, RunBatch) skip the per-PE
// result maps: Report.All stays nil and the accumulators land flat in
// Report.Columnar, with Report.Root served from the same buffer. For
// small shapes map construction dominates the per-replay fixed cost, so
// callers that do not read per-PE maps replay measurably faster —
// especially across a batch, where the result buffers' offset table is
// shared. Predict and Bound ignore it.
func WithColumnarResult() Option {
	return func(c *callOpts) { c.columnar = true }
}

func resolveOpts(opts []Option) callOpts {
	var c callOpts
	for _, o := range opts {
		o(&c)
	}
	return c
}

// execOpts projects the per-call options onto the plan layer.
func (c callOpts) execOpts() plan.ExecOptions {
	return plan.ExecOptions{Columnar: c.columnar}
}

// Columnar is the map-free per-PE result layout of a columnar replay;
// see Report.Columnar and WithColumnarResult.
type Columnar = fabric.ColumnarResult

// Future is an asynchronously submitted collective's pending Report.
// Wait blocks for and returns the result (idempotent — concurrent and
// repeated Waits all see the same values); Err blocks and returns just
// the error; Done is the select-able completion signal. Abandoning a
// Future leaks nothing.
type Future = plan.Async

func badShape(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadShape, fmt.Sprintf(format, args...))
}

// algs1D lists what each 1D reduce-family kind accepts: the tree-family
// patterns everywhere, the ring mappings only where a ring program
// exists (AllReduce, §6.2).
func valid1DAlg(kind Collective, alg Algorithm) bool {
	switch alg {
	case Star, Chain, Tree, TwoPhase, AutoGen, Auto:
		return true
	case Ring, RingDP:
		return kind == KindAllReduce
	}
	return false
}

func valid2DAlg(alg Algorithm2D) bool {
	switch alg {
	case XYStar, XYChain, XYTree, XYTwoPhase, XYAutoGen, Snake, Auto2D:
		return true
	}
	return false
}

func validOp(op ReduceOp) bool {
	switch op {
	case Sum, Max, Min:
		return true
	}
	return false
}

// Validate reports whether the Shape names a runnable collective: a
// known kind, positive geometry and vector length, an algorithm the kind
// accepts, and a known reduction operator where one applies. Fields a
// kind never consults (the 2D algorithm of a 1D reduce, say) are ignored,
// mirroring how plan keys canonicalise them. All failures wrap
// ErrBadShape.
func (sh Shape) Validate() error {
	if sh.B < 1 {
		return badShape("%s: vector length B = %d, want >= 1", sh.Kind, sh.B)
	}
	switch sh.Kind {
	case KindReduce, KindAllReduce, KindAllReduceMidRoot:
		if sh.P < 1 {
			return badShape("%s: P = %d PEs, want >= 1", sh.Kind, sh.P)
		}
		if !valid1DAlg(sh.Kind, sh.Alg) {
			return badShape("%s: algorithm %q", sh.Kind, sh.Alg)
		}
		if !validOp(sh.Op) {
			return badShape("%s: reduction op %v", sh.Kind, sh.Op)
		}
	case KindReduceScatter:
		// The chunked kinds need a real split: the core builders reject a
		// single PE, so Validate does too (typed, instead of the untyped
		// compile error).
		if sh.P < 2 {
			return badShape("%s: P = %d PEs, want >= 2", sh.Kind, sh.P)
		}
		if !validOp(sh.Op) {
			return badShape("%s: reduction op %v", sh.Kind, sh.Op)
		}
	case KindScatter, KindGather, KindAllGather:
		if sh.P < 2 {
			return badShape("%s: P = %d PEs, want >= 2", sh.Kind, sh.P)
		}
	case KindBroadcast:
		if sh.P < 1 {
			return badShape("%s: P = %d PEs, want >= 1", sh.Kind, sh.P)
		}
	case KindReduce2D, KindAllReduce2D:
		if sh.Width < 1 || sh.Height < 1 {
			return badShape("%s: %dx%d grid, want >= 1x1", sh.Kind, sh.Width, sh.Height)
		}
		if !valid2DAlg(sh.Alg2D) {
			return badShape("%s: 2D algorithm %q", sh.Kind, sh.Alg2D)
		}
		if !validOp(sh.Op) {
			return badShape("%s: reduction op %v", sh.Kind, sh.Op)
		}
	case KindBroadcast2D:
		if sh.Width < 1 || sh.Height < 1 {
			return badShape("%s: %dx%d grid, want >= 1x1", sh.Kind, sh.Width, sh.Height)
		}
	default:
		return badShape("unknown kind %q", sh.Kind)
	}
	return nil
}

// checkInputs validates that inputs matches the Shape's arity — the
// check that used to happen piecemeal (or not at all: ragged vectors
// once reached the core layers unvalidated) and now guards every
// execution verb with a typed error.
func (sh Shape) checkInputs(inputs [][]float32) error {
	switch sh.Kind {
	case KindBroadcast, KindBroadcast2D, KindScatter:
		if len(inputs) != 1 || len(inputs[0]) != sh.B {
			return badShape("%s wants one %d-element vector, got %d vector(s)", sh.Kind, sh.B, len(inputs))
		}
	case KindGather, KindAllGather:
		if len(inputs) != sh.P {
			return badShape("%s wants %d chunks, got %d", sh.Kind, sh.P, len(inputs))
		}
		// core.CheckChunks is the one source of the canonical chunk-split
		// rule; this layer only adds the typed wrap.
		if b, err := core.CheckChunks(inputs); err != nil {
			return badShape("%s: %v", sh.Kind, err)
		} else if b != sh.B {
			return badShape("%s: chunks total %d elements, want %d", sh.Kind, b, sh.B)
		}
	case KindReduce2D, KindAllReduce2D:
		return sh.checkVectors(inputs, sh.Width*sh.Height)
	default:
		return sh.checkVectors(inputs, sh.P)
	}
	return nil
}

func (sh Shape) checkVectors(inputs [][]float32, n int) error {
	if len(inputs) != n {
		return badShape("%s wants %d input vectors, got %d", sh.Kind, n, len(inputs))
	}
	for i, v := range inputs {
		if len(v) != sh.B {
			return badShape("%s: vector %d has length %d, want %d", sh.Kind, i, len(v), sh.B)
		}
	}
	return nil
}

// checkRun bundles the validation every execution verb performs before
// touching the compiler.
func (sh Shape) checkRun(inputs [][]float32) error {
	if err := sh.Validate(); err != nil {
		return err
	}
	return sh.checkInputs(inputs)
}

// Run executes the collective named by sh on the fabric simulator: the
// one-shot entry point, compiling the program for this call alone. For
// broadcast and scatter kinds inputs is the root vector wrapped in a
// one-element slice; for gather kinds the per-PE chunks (sized per
// Chunks); otherwise one length-B vector per PE. ctx is observed before
// the compile and before the simulation — a simulation already running
// is never abandoned on this one-shot path (Session and Tenant verbs
// have full cancellation). Use a Session (or Tenant) Run to compile
// once and replay.
func Run(ctx context.Context, sh Shape, inputs [][]float32, opts ...RunOption) (*Report, error) {
	c := resolveOpts(opts)
	if err := sh.checkRun(inputs); err != nil {
		return nil, err
	}
	return runValidated(ctx, sh, inputs, c)
}

// runValidated is the tail of Run after validation — shared with Submit
// so the async path validates exactly once (synchronously).
func runValidated(ctx context.Context, sh Shape, inputs [][]float32, c callOpts) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := plan.Compile(sh.request(c.opt))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil { // the compile can be the slow part
		return nil, err
	}
	return p.ExecuteOpts(inputs, c.execOpts())
}

// Submit is Run returning immediately with a Future. Validation happens
// synchronously (a malformed shape comes back already resolved); the
// one-shot compile and simulation then run on their own goroutine. ctx
// has the same one-shot semantics as Run: it short-circuits before the
// compile and before the simulation, but cannot abandon a simulation
// mid-flight — use Session.Submit or Tenant.Submit for that.
func Submit(ctx context.Context, sh Shape, inputs [][]float32, opts ...RunOption) *Future {
	c := resolveOpts(opts)
	if err := sh.checkRun(inputs); err != nil {
		return plan.Fail(err)
	}
	return plan.Go(func() (*Report, error) {
		return runValidated(ctx, sh, inputs, c)
	})
}

// RunBatch executes the collective named by sh once per entry of
// batches — batches[i] is one Run's worth of inputs — compiling the
// program once and holding one simulator instance across the whole
// batch, so the per-run fixed cost (input binding, result assembly) is
// amortised. Combine with WithColumnarResult to also skip every per-run
// result map. Reports come back in batch order.
func RunBatch(ctx context.Context, sh Shape, batches [][][]float32, opts ...RunOption) ([]*Report, error) {
	c := resolveOpts(opts)
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	for i, inputs := range batches {
		if err := sh.checkInputs(inputs); err != nil {
			return nil, fmt.Errorf("batch entry %d: %w", i, err)
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := plan.Compile(sh.request(c.opt))
	if err != nil {
		return nil, err
	}
	// ExecuteBatch re-checks ctx between entries, so a cancelled caller
	// pays for at most the replay in flight, not the whole batch.
	return p.ExecuteBatch(ctx, batches, c.execOpts())
}

// Predict returns the performance model's cycle estimate for sh (Eq. 1
// instantiated per kind: §5's lemmas in 1D, §7's compositions in 2D, the
// extension estimates for the chunked kinds). Like the model itself it
// is total: shapes naming unknown kinds or algorithms estimate to NaN or
// 0 rather than erroring — Validate is the place to vet a Shape.
func Predict(sh Shape, opts ...Option) float64 {
	c := resolveOpts(opts)
	pr := params(c.opt)
	tr := pr.TR
	switch sh.Kind {
	case KindReduce:
		return core.PredictReduce1D(sh.Alg, sh.P, sh.B, tr)
	case KindAllReduce:
		return core.PredictAllReduce1D(sh.Alg, sh.P, sh.B, tr)
	case KindBroadcast:
		return pr.Broadcast1D(sh.P, sh.B)
	case KindReduce2D:
		return core.PredictReduce2D(sh.Alg2D, sh.Width, sh.Height, sh.B, tr)
	case KindAllReduce2D:
		return core.PredictAllReduce2D(sh.Alg2D, sh.Width, sh.Height, sh.B, tr)
	case KindBroadcast2D:
		return pr.Broadcast2D(sh.Height, sh.Width, sh.B)
	case KindScatter:
		return pr.Scatter(sh.P, sh.B)
	case KindGather:
		return pr.Gather(sh.P, sh.B)
	case KindReduceScatter:
		return pr.ReduceScatter(sh.P, sh.B)
	case KindAllGather:
		return pr.AllGather(sh.P, sh.B)
	case KindAllReduceMidRoot:
		return pr.MidRootAllReduce(string(sh.Alg), sh.P, sh.B)
	}
	return math.NaN()
}

// Bound returns a runtime lower bound for sh in cycles — the floor every
// algorithm's measured cycles sits above, and the denominator of the
// paper's optimality ratios (Figure 1). Per kind:
//
//   - the 1D reduce family (Reduce, AllReduce, AllReduceMidRoot) uses
//     the paper's T*(P,B) bound (§5.6); an AllReduce contains a reduce,
//     so T* bounds it too;
//   - the 2D reduce family uses Lemma 7.2;
//   - broadcasts use Lemma 4.1 / 7.1, which the flooding broadcast
//     achieves exactly — for them Bound equals Predict;
//   - the chunked kinds use the root-serialisation bound: B·(P-1)/P
//     wavelets must cross one ramp, plus the 2·T_R+1 latency floor.
//
// Unknown kinds bound to NaN.
func Bound(sh Shape, opts ...Option) float64 {
	c := resolveOpts(opts)
	pr := params(c.opt)
	tr := pr.TR
	switch sh.Kind {
	case KindReduce, KindAllReduce, KindAllReduceMidRoot:
		return core.LowerBound1D(sh.P, sh.B, tr)
	case KindReduce2D, KindAllReduce2D:
		return pr.LowerBound2D(sh.Height, sh.Width, sh.B)
	case KindBroadcast:
		return pr.Broadcast1D(sh.P, sh.B)
	case KindBroadcast2D:
		return pr.Broadcast2D(sh.Height, sh.Width, sh.B)
	case KindScatter, KindGather, KindReduceScatter, KindAllGather:
		if sh.P <= 1 {
			return 0
		}
		return float64(sh.B)*float64(sh.P-1)/float64(sh.P) + float64(2*tr) + 1
	}
	return math.NaN()
}
