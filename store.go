package wse

// Plan persistence: the compile-once promise made durable. A PlanStore is
// a content-addressed directory of encoded plans (versioned binary codec,
// SHA-256 addresses, atomic writes, integrity verification with corrupt-
// entry quarantine). A staging process compiles its workload and exports
// it; serving processes warm their plan caches from the store before
// taking traffic, so no request ever pays a compile on the serving path:
//
//	store, _ := wse.OpenPlanStore("/var/lib/wse/plans")
//	s := wse.NewSession(wse.SessionConfig{Store: store}) // read/write-through
//	s.Warm(store, nil)                                   // preload everything
//
// Decoded plans replay bit-identically to freshly compiled ones — same
// per-PE results, same cycle counts, same RNG chain.

import (
	"repro/internal/plan"
	"repro/internal/planstore"
)

// PlanStore is a durable content-addressed collection of compiled plans
// rooted at a directory. It is safe for concurrent use and may be shared
// by several Sessions (or processes, on a shared filesystem).
type PlanStore = planstore.Store

// OpenPlanStore opens (creating if needed) a plan store rooted at dir.
func OpenPlanStore(dir string) (*PlanStore, error) {
	return planstore.Open(dir)
}

// PlanStoreStats is the store's operation accounting — successful loads,
// misses, load errors (with the quarantined subset), saves and save
// errors, plus the indexed plan count — snapshotted by PlanStore.Stats.
// Together with Session.PlanStats (cache hits/misses/evictions and the
// session-side StoreHits/StoreErrors) it is the complete observability
// surface of plan persistence; the serving daemon's /metrics endpoint is
// fed from these two snapshots alone.
type PlanStoreStats = planstore.Stats

// Collective names a collective kind in a Shape.
type Collective = plan.Kind

// The collective kinds a Session serves, as Shape.Kind values.
const (
	KindReduce           = plan.Reduce1D
	KindAllReduce        = plan.AllReduce1D
	KindBroadcast        = plan.Broadcast1D
	KindReduce2D         = plan.Reduce2D
	KindAllReduce2D      = plan.AllReduce2D
	KindBroadcast2D      = plan.Broadcast2D
	KindScatter          = plan.Scatter
	KindGather           = plan.Gather
	KindReduceScatter    = plan.ReduceScatter
	KindAllGather        = plan.AllGather
	KindAllReduceMidRoot = plan.AllReduceMidRoot
)

// Shape names a collective for pre-deployment warm-up: the kind, the
// algorithm (Alg for 1D kinds, Alg2D for 2D kinds; leave zero for the
// algorithm-free kinds), the PE geometry (P for 1D, Width×Height for 2D),
// the vector length B in wavelets, and the reduction operator. The
// session's own Options complete the plan identity.
type Shape struct {
	Kind          Collective
	Alg           Algorithm
	Alg2D         Algorithm2D
	P             int
	Width, Height int
	B             int
	Op            ReduceOp
}

// WarmStats reports what a Warm pass did: plans decoded from the store,
// plans compiled (and saved back), and shapes already resident.
type WarmStats = plan.WarmStats

func (sh Shape) request(opt Options) plan.Request {
	return plan.Request{
		Kind:   sh.Kind,
		Alg:    sh.Alg,
		Alg2D:  sh.Alg2D,
		P:      sh.P,
		Width:  sh.Width,
		Height: sh.Height,
		B:      sh.B,
		Op:     sh.Op,
		Opt:    opt,
	}
}

// Warm pre-populates the session's plan cache so its first requests
// replay instead of compiling. Shapes found in store are decoded (no
// compilation); missing shapes are compiled under the session's Options
// and saved back to the store, which is also how a deployment compiles
// its shape list into a store ahead of rollout. A nil shapes warms every
// plan the store holds. Warm is safe to run concurrently with live
// traffic on the same session.
func (s *Session) Warm(store *PlanStore, shapes []Shape) (WarmStats, error) {
	var reqs []plan.Request
	if shapes != nil {
		reqs = make([]plan.Request, len(shapes))
		for i, sh := range shapes {
			reqs[i] = sh.request(s.opt)
		}
	}
	var ps plan.PlanStore
	if store != nil { // keep a nil *PlanStore out of the interface
		ps = store
	}
	return s.s.Warm(ps, reqs)
}

// Export saves every plan resident in the session's cache to the store,
// returning how many were written. The dual of Warm: compile a workload
// once (by serving it, or via Warm with a shape list), Export, and every
// later process skips those compiles.
func (s *Session) Export(store *PlanStore) (int, error) {
	return s.s.Export(store)
}
