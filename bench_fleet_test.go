package wse

// Benchmarks of distributed plan resolution: what the tracked shape
// costs to resolve from a warm fleet peer over the wire (HTTP fetch +
// codec decode + hash verification) versus recompiling it locally, and
// what a cold worker joining a warm fleet pays on its first request.
// The headline numbers are written to BENCH_fleet.json as a trajectory
// point; compare compile_ns_per_op against BENCH_store.json's — they
// measure the same compile.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/client"
	"repro/internal/plan"
	"repro/internal/resolve"
)

// benchBlobServer serves the store's plans over the fleet blob route —
// the slice of a warm wsed worker a resolver's peer stage talks to.
func benchBlobServer(b *testing.B, store *PlanStore) *httptest.Server {
	b.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/plans/{key}", func(w http.ResponseWriter, r *http.Request) {
		key, err := ParseKey(r.PathValue("key"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		blob, ok, err := store.LoadBlob(key)
		if err != nil || !ok {
			http.Error(w, `{"error":"not found"}`, http.StatusNotFound)
			return
		}
		w.Write(blob)
	})
	srv := httptest.NewServer(mux)
	b.Cleanup(srv.Close)
	return srv
}

// BenchmarkFleetResolve measures the tracked reduce1d p=512 B=16 shape
// through the fleet's resolution paths. The acceptance bar: a cold
// worker joining a fleet with a warm peer serves its first request via
// remote fetch — the chain's compile stage records zero lookups. The
// remote_vs_compile_speedup headline contextualises that: a remote fetch
// pays wire + hash verification + decode, so it beats compile only when
// compilation dominates decode (large shapes); for cheap shapes the win
// is the serving worker's compile CPU and fleet-wide compile-once
// convergence, not request latency.
func BenchmarkFleetResolve(b *testing.B) {
	dir := b.TempDir()
	store, err := OpenPlanStore(dir)
	if err != nil {
		b.Fatal(err)
	}
	shape := Shape{Kind: KindReduce, Alg: Auto, P: planBenchP, B: planBenchB, Op: Sum}
	stage := NewSession(SessionConfig{})
	if st, err := stage.Warm(store, []Shape{shape}); err != nil || st.Compiled != 1 {
		b.Fatalf("staging warm: %+v, %v", st, err)
	}
	stage.Close()
	key := store.Keys()[0]
	peer := benchBlobServer(b, store)
	vectors := constVectors(planBenchP, planBenchB)

	point := map[string]any{
		"bench": "fleet-resolve",
		"shape": map[string]any{
			"kind": "reduce1d", "alg": "auto",
			"p": planBenchP, "b": planBenchB,
		},
	}
	benchHostMeta(point)

	var compileNs, remoteNs float64
	b.Run("compile-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Compile(planBenchReq()); err != nil {
				b.Fatal(err)
			}
		}
		compileNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("remote-resolve", func(b *testing.B) {
		st := resolve.Peer(peer.URL, client.Config{})
		for i := 0; i < b.N; i++ {
			if _, err := st.Resolve(context.Background(), key); err != nil {
				b.Fatal(err)
			}
		}
		remoteNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	// Cold join: a fresh worker whose only resolution paths are the warm
	// peer and the compiler. Session construction is off the clock; the
	// measured region is exactly the first request a client sees.
	var coldJoinNs float64
	var lastChain resolve.Resolver
	b.Run("cold-join-first-request", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			chain := resolve.Sequential(
				resolve.Optional(resolve.Peer(peer.URL, client.Config{})),
				resolve.Compiler(),
			)
			sess := NewSession(SessionConfig{Resolver: chain})
			b.StartTimer()
			if _, err := sess.Reduce(vectors, Auto, Sum); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			lastChain = chain
			sess.Close()
			b.StartTimer()
		}
		coldJoinNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	if remoteNs > 0 && lastChain != nil {
		// The chain's own accounting proves the cold join never compiled.
		stages := map[string]resolve.Stats{}
		for _, st := range lastChain.Stats() {
			stages[st.Stage] = st
			if st.Stage == "compile" && st.Lookups != 0 {
				b.Fatalf("cold join compiled despite the warm peer: %+v", st)
			}
		}
		point["compile_ns_per_op"] = compileNs
		point["remote_resolve_ns_per_op"] = remoteNs
		point["cold_join_first_request_ns_per_op"] = coldJoinNs
		point["remote_vs_compile_speedup"] = compileNs / remoteNs
		point["cold_join_compile_lookups"] = stages["compile"].Lookups
		for _, st := range lastChain.Stats() {
			// Peer stage names carry the httptest URL; strip it so the
			// trajectory point's keys are stable across runs.
			name, _, _ := strings.Cut(st.Stage, " ")
			if st.Lookups > 0 {
				point["hit_ratio_"+name] = float64(st.Hits) / float64(st.Lookups)
			}
		}
		b.ReportMetric(compileNs/remoteNs, "remote-x")
		buf, err := json.MarshalIndent(point, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_fleet.json", append(buf, '\n'), 0o644); err != nil {
			b.Logf("BENCH_fleet.json not written: %v", err)
		}
	}
}
