package wse

// Benchmark of the multi-tenant scheduler: two tenants with a 3:1 weight
// ratio saturate a two-worker session with small collectives; the served
// split must converge to the weight ratio within 20%, and the headline
// numbers (split, per-tenant queue-wait/exec quantiles, pool saturation)
// are written to BENCH_sched.json as a trajectory point. CI runs one
// pass as the fairness smoke: a single -benchtime 1x iteration both
// exercises the scheduler under saturation and asserts the split.

import (
	"context"
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"
)

const (
	fairnessWeightA = 3
	fairnessWeightB = 1
	// fairnessBacklog requests are queued per tenant before the window
	// opens; the split is judged between fairnessSkip and fairnessSkip+
	// fairnessWindow served requests, where both backlogs are provably
	// still non-empty (even all-A dispatch cannot exhaust A's backlog
	// before the window closes).
	fairnessBacklog = 800
	fairnessSkip    = 120
	fairnessWindow  = 240
)

func BenchmarkFairness(b *testing.B) {
	var point map[string]any
	for i := 0; i < b.N; i++ {
		point = fairnessTrial(b)
	}
	b.ReportMetric(point["served_ratio"].(float64), "A:B-ratio")
	buf, err := json.MarshalIndent(point, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sched.json", append(buf, '\n'), 0o644); err != nil {
		b.Logf("BENCH_sched.json not written: %v", err)
	}
}

// fairnessTrial runs one saturated 2-tenant serving window and returns
// the trajectory point, b.Fatal-ing when the split leaves the ±20% band.
func fairnessTrial(b *testing.B) map[string]any {
	sess := NewSession(SessionConfig{Workers: 2})
	defer sess.Close()
	a := sess.WithTenant("A", TenantConfig{Weight: fairnessWeightA})
	bb := sess.WithTenant("B", TenantConfig{Weight: fairnessWeightB})

	// Deep pre-loaded backlogs (one blocked submitter goroutine per
	// request — callers of a saturated pool) make the served split the
	// scheduler's decision alone. A closed feeder loop would not work:
	// with each feeder re-submitting only after its own completion,
	// throughput is capped by feeder counts, not weights. The shape is
	// small: the point is dispatch behaviour, not simulation.
	vectors := constVectors(64, 16)
	if _, err := sess.Reduce(vectors, Chain, Sum); err != nil { // compile outside the window
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	ctx := context.Background()

	// Occupy every worker with a long 2D collective under a separate
	// warm-up tenant while the backlog accumulates. Without this the
	// bench never saturates: with instant-start small requests, each
	// arrival is dispatched before the next arrives (queue depth ≤ 1)
	// and the split just echoes arrival order instead of the weights.
	warm := sess.WithTenant("warmup", TenantConfig{})
	big := constVectors(48*48, 64)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := warm.Reduce2D(ctx, big, 48, 48, Auto2D, Sum); err != nil {
				b.Errorf("warmup blocker: %v", err)
			}
		}()
	}
	for deadline := time.Now().Add(time.Minute); sess.SchedStats().Pool.Running < 2; {
		if time.Now().After(deadline) {
			b.Fatal("warm-up blockers never occupied the pool")
		}
		time.Sleep(time.Millisecond)
	}

	for i := 0; i < fairnessBacklog; i++ {
		for _, t := range []*Tenant{a, bb} {
			wg.Add(1)
			go func(t *Tenant) {
				defer wg.Done()
				if _, err := t.Reduce(ctx, vectors, Chain, Sum); err != nil {
					b.Errorf("submit %s: %v", t.Name(), err)
				}
			}(t)
		}
	}

	// The split is judged over the [skip, skip+window) slice of served
	// requests: past the ramp-up (queues deep on both sides) and closed
	// before either backlog can run dry.
	snapAt := func(total int64) SchedStats {
		deadline := time.Now().Add(5 * time.Minute)
		for {
			snap := sess.SchedStats()
			if snap.Tenants["A"].Served+snap.Tenants["B"].Served >= total {
				return snap
			}
			if time.Now().After(deadline) {
				b.Fatalf("served count never reached %d: %+v", total, snap.Tenants)
			}
			time.Sleep(time.Millisecond)
		}
	}
	snap1 := snapAt(fairnessSkip)
	snap2 := snapAt(fairnessSkip + fairnessWindow)
	wg.Wait()
	sess.Close()

	servedA := snap2.Tenants["A"].Served - snap1.Tenants["A"].Served
	servedB := snap2.Tenants["B"].Served - snap1.Tenants["B"].Served
	ratio := float64(servedA) / float64(servedB)
	want := float64(fairnessWeightA) / float64(fairnessWeightB)
	if ratio < want*0.8 || ratio > want*1.2 {
		b.Fatalf("served split A:B = %d:%d = %.2f, want %.1f within 20%%", servedA, servedB, ratio, want)
	}

	final := sess.SchedStats()
	for name, ts := range final.Tenants {
		if ts.Submitted != ts.Served+ts.Rejected+ts.Cancelled {
			b.Fatalf("tenant %s accounting unbalanced: %+v", name, ts)
		}
	}
	point := map[string]any{
		"bench":        "sched-fairness",
		"shape":        map[string]any{"kind": "reduce1d", "alg": "chain", "p": 64, "b": 16},
		"workers":      2,
		"weight_a":     fairnessWeightA,
		"weight_b":     fairnessWeightB,
		"served_a":     servedA,
		"served_b":     servedB,
		"served_ratio": ratio,
		"want_ratio":   want,
	}
	benchHostMeta(point)
	for name, ts := range final.Tenants {
		if name != "A" && name != "B" {
			continue
		}
		point["tenant_"+name] = map[string]any{
			"served": ts.Served, "rejected": ts.Rejected, "cancelled": ts.Cancelled,
			"queue_wait_p50_us": float64(ts.QueueWaitP50.Nanoseconds()) / 1e3,
			"queue_wait_p99_us": float64(ts.QueueWaitP99.Nanoseconds()) / 1e3,
			"exec_p50_us":       float64(ts.ExecP50.Nanoseconds()) / 1e3,
			"exec_p99_us":       float64(ts.ExecP99.Nanoseconds()) / 1e3,
		}
	}
	point["pool_saturated_ms"] = float64(final.Pool.Saturated.Nanoseconds()) / 1e6
	point["pool_max_depth"] = final.Pool.MaxDepth
	return point
}
