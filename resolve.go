package wse

// Distributed plan resolution: the fleet-facing slice of the Session
// surface. A resolver chain (internal/resolve, plugged in through
// SessionConfig.Resolver) generalises the cache's miss path —
// local store, remote peers, compile as last resort — and the methods
// here are what the serving layer builds fleet features from: PlanBlob
// serves a session's plans to peers by canonical key, Prefetch warms a
// plan over the wire, KeyString is the consistent-hash routing key.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/plan"
	"repro/internal/planstore"
)

// Resolver materialises the plan for a key: the pluggable miss path of
// the session's plan cache. Build one from internal/resolve's stages
// and combinators; its richer interface (per-stage stats) satisfies
// this minimal one.
type Resolver = plan.Resolver

// Key is a plan's canonical content identity — the cache key, the plan
// store address preimage, and the fleet routing key.
type Key = plan.Key

// ErrPlanNotFound is returned by PlanBlob when neither the session's
// cache nor its store holds the requested plan. The blob endpoint maps
// it to 404 — a peer's miss, not a failure.
var ErrPlanNotFound = errors.New("wse: plan not found")

// ParseKey parses the canonical textual key form (Key.String) back into
// a Key — how a daemon's blob endpoint turns a wire path element into a
// cache lookup.
func ParseKey(s string) (Key, error) { return plan.ParseKey(s) }

// KeyString returns the canonical key string for sh under opt, applying
// the session MaxCycles default exactly as NewSession does — so a front
// process that never builds a Session routes with the same keys its
// workers cache under.
func KeyString(sh Shape, opt Options) string {
	if opt.MaxCycles == 0 {
		opt.MaxCycles = DefaultSessionMaxCycles
	}
	return plan.KeyOf(sh.request(opt)).String()
}

// Keys returns the canonical keys of every plan resident in the
// session's cache, most recently used first.
func (s *Session) Keys() []Key {
	plans := s.s.Plans()
	out := make([]Key, len(plans))
	for i, p := range plans {
		out[i] = p.Key
	}
	return out
}

// PlanBlob returns the encoded blob (planstore codec frame) for the
// plan named by the canonical key string: the store's raw frame when one
// is attached (a verified file read — no decode, no re-encode), else
// encoded from the cache when resident. It never compiles — a peer
// asking for a plan it could compile itself must not be able to spend
// this session's CPU — and returns ErrPlanNotFound on a clean miss, or
// an ErrBadShape-wrapped error for an unparseable key.
func (s *Session) PlanBlob(keyStr string) ([]byte, error) {
	key, err := plan.ParseKey(keyStr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadShape, err)
	}
	if s.store != nil {
		switch blob, ok, err := s.store.LoadBlob(key); {
		case err != nil:
			return nil, err
		case ok:
			return blob, nil
		}
	}
	// Resident but not stored (no store attached, or its save failed):
	// re-encode from the cache. Determinism makes this exact — the
	// encoding equals what a store would have persisted.
	if p, ok := s.s.Resident(key); ok {
		blob, _, err := planstore.Encode(p)
		return blob, err
	}
	return nil, ErrPlanNotFound
}

// Prefetch materialises the plan for sh into the session's cache —
// through the resolver chain when one is attached — and pre-builds a
// pooled fabric instance, so the shape's first real request replays at
// steady state. It reports whether a fetch actually ran (false: already
// resident or coalesced onto an in-flight fill). This is what the
// daemon's /v1/warm endpoint calls per shape: remote warming without
// filesystem access.
func (s *Session) Prefetch(ctx context.Context, sh Shape) (bool, error) {
	if err := sh.Validate(); err != nil {
		return false, err
	}
	return s.s.Prefetch(ctx, sh.request(s.opt))
}
