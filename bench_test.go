package wse

// One benchmark per table/figure of the paper's evaluation, plus ablation
// benches for the design choices DESIGN.md calls out and micro-benchmarks
// of the substrate. Each figure bench regenerates the corresponding
// artifact with the quick profile (full 1D scale, thinned B grid, 16×16
// measured 2D grids); run cmd/wsefigures -full for the complete sweep.
//
// The interesting output of a figure bench is the artifact itself (tables
// are logged with -v) and the custom metrics: model relative error and
// headline speedups, reported via b.ReportMetric.

import (
	"math"
	"testing"

	"repro/internal/autogen"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/lowerbound"
	"repro/internal/model"
)

func benchCfg() experiments.Config {
	cfg := experiments.Quick()
	// Keep the per-iteration cost bounded for -benchtime defaults.
	cfg.Bs = []int{1, 16, 256, 1024}
	cfg.StarBCap = 64
	return cfg
}

func reportErr(b *testing.B, fig *experiments.Figure) {
	b.Helper()
	worst := 0.0
	for _, s := range fig.Series {
		if e := s.MeanRelError(); !math.IsNaN(e) && e > worst {
			worst = e
		}
	}
	b.ReportMetric(100*worst, "worst-rel-err-%")
	if b.N == 1 {
		b.Log("\n" + fig.Table())
	}
}

func BenchmarkFig1OptimalityHeatmaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		maps := experiments.Fig1()
		sum := experiments.Fig1Summary(maps)
		b.ReportMetric(sum["autogen"], "autogen-worst-ratio")
		b.ReportMetric(sum["twophase"], "twophase-worst-ratio")
	}
}

func BenchmarkFig8AllReduceRegions1D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.Fig8()
		b.ReportMetric(h.Max(), "max-speedup-vs-vendor")
	}
}

func BenchmarkFig10AllReduceRegions2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.Fig10()
		b.ReportMetric(h.Max(), "max-speedup-vs-vendor")
	}
}

func BenchmarkFig11aBroadcast1D(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.Fig11a()
		if err != nil {
			b.Fatal(err)
		}
		reportErr(b, fig)
	}
}

func BenchmarkFig11bReduce1D(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.Fig11b()
		if err != nil {
			b.Fatal(err)
		}
		reportErr(b, fig)
	}
}

func BenchmarkFig11cAllReduce1D(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.Fig11c()
		if err != nil {
			b.Fatal(err)
		}
		reportErr(b, fig)
	}
}

func BenchmarkFig12aBroadcastScalePE(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.Fig12a()
		if err != nil {
			b.Fatal(err)
		}
		reportErr(b, fig)
	}
}

func BenchmarkFig12bReduceScalePE(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.Fig12b()
		if err != nil {
			b.Fatal(err)
		}
		reportErr(b, fig)
	}
}

func BenchmarkFig12cAllReduceScalePE(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.Fig12c()
		if err != nil {
			b.Fatal(err)
		}
		reportErr(b, fig)
	}
}

func BenchmarkFig13aReduce2D(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.Fig13a()
		if err != nil {
			b.Fatal(err)
		}
		reportErr(b, fig)
	}
}

func BenchmarkFig13bAllReduce2D(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.Fig13b()
		if err != nil {
			b.Fatal(err)
		}
		reportErr(b, fig)
	}
}

func BenchmarkFig13cReduce2DScalePE(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.Fig13c()
		if err != nil {
			b.Fatal(err)
		}
		reportErr(b, fig)
	}
}

func BenchmarkHeadlineSpeedups(b *testing.B) {
	cfg := benchCfg()
	cfg.Bs = []int{64, 256, 1024, 4096}
	for i := 0; i < b.N; i++ {
		fb, err := cfg.Fig11b()
		if err != nil {
			b.Fatal(err)
		}
		fc, err := cfg.Fig11c()
		if err != nil {
			b.Fatal(err)
		}
		claims := experiments.Headline(fb, fc, cfg.Fig13Model512(false), cfg.Fig13Model512(true))
		for _, c := range claims {
			if b.N == 1 {
				b.Logf("%s: paper %.2fx ours %.2fx", c.Name, c.Paper, c.Ours)
			}
		}
		b.ReportMetric(claims[0].Ours, "1d-reduce-speedup")
		b.ReportMetric(claims[2].Ours, "2d-reduce-speedup")
	}
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationTR sweeps the ramp latency. The paper pins T_R=2 by
// observing any other value degrades prediction accuracy (§8.7); here the
// simulated chain runtime shifts by exactly 2(P-1) cycles per unit of T_R,
// matching Lemma 5.2's (2T_R+2)(P-1) term.
func BenchmarkAblationTR(b *testing.B) {
	vectors := constVectors(128, 256)
	for _, tr := range []int{-1, 1, 2, 4} {
		name := "TR=0"
		if tr > 0 {
			name = "TR=" + string(rune('0'+tr))
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := Reduce(vectors, Chain, Sum, Options{TR: tr})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Cycles), "sim-cycles")
			}
		})
	}
}

// BenchmarkAblationQueueCap sweeps router queue depth: depth 1 cannot
// sustain the one-wavelet-per-cycle pipeline, deeper queues change
// nothing — the collectives are backpressure-synchronised, not
// buffer-synchronised.
func BenchmarkAblationQueueCap(b *testing.B) {
	vectors := constVectors(128, 256)
	for _, qc := range []int{1, 2, 4, 16} {
		b.Run("cap="+string(rune('0'+min(qc, 9)))+"", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := Reduce(vectors, Chain, Sum, Options{QueueCap: qc})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Cycles), "sim-cycles")
			}
		})
	}
}

// BenchmarkAblationTwoPhaseGroupSize sweeps the Two-Phase group size S
// around the paper's choice √P (Lemma 5.4 motivates S=√P as the
// depth/energy balance point).
func BenchmarkAblationTwoPhaseGroupSize(b *testing.B) {
	pr := model.Default()
	p, vec := 256, 256
	for _, s := range []int{4, 8, 16, 32, 64} {
		b.Run("S="+itoa(s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(pr.TwoPhaseReduceS(p, vec, s), "model-cycles")
			}
		})
	}
}

// BenchmarkAblationThermalNoise measures how thermally inserted no-ops
// (§8.1) inflate a measured reduce, the effect the §8.3 calibration
// methodology absorbs.
func BenchmarkAblationThermalNoise(b *testing.B) {
	vectors := constVectors(64, 256)
	for _, rate := range []float64{0, 0.01, 0.05} {
		b.Run("rate="+ftoa(rate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := Reduce(vectors, TwoPhase, Sum, Options{ThermalNoopRate: rate, Seed: uint64(i) + 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Cycles), "sim-cycles")
			}
		})
	}
}

// BenchmarkAblationTaskActivation sweeps the per-transfer task wake-up
// cost (§2.2: tasks are activated by arriving wavelets; §8.5 blames this
// overhead for Star's measured slowdown). The sweep shows the charge
// lands on the critical path once per dependent transfer, so it punishes
// depth: the vendor chain (depth P-1) degrades fastest and the
// chain/AutoGen ratio grows with the activation cost — model-driven
// generation matters even more on a fabric with expensive task wake-ups.
func BenchmarkAblationTaskActivation(b *testing.B) {
	p, vec := 256, 64
	vectors := constVectors(p, vec)
	for _, act := range []int{0, 25, 50, 100} {
		b.Run("act="+itoa(act), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := Options{TaskActivation: act}
				chain, err := Reduce(vectors, Chain, Sum, opt)
				if err != nil {
					b.Fatal(err)
				}
				auto, err := Reduce(vectors, AutoGen, Sum, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(chain.Cycles)/float64(auto.Cycles), "chain/autogen")
			}
		})
	}
}

// BenchmarkAblationRingMapping compares the two ring mappings of Figure
// 7 on the simulator; the paper's model assigns them identical cost.
func BenchmarkAblationRingMapping(b *testing.B) {
	p, vec := 64, 1024
	vectors := constVectors(p, vec)
	for _, alg := range []Algorithm{Ring, RingDP} {
		b.Run(string(alg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := AllReduce(vectors, alg, Sum, Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Cycles), "sim-cycles")
			}
		})
	}
}

// BenchmarkAblationRootPlacement compares end-rooted and middle-rooted
// AllReduce (§6.1's root-placement optimisation).
func BenchmarkAblationRootPlacement(b *testing.B) {
	p, vec := 257, 64
	vectors := constVectors(p, vec)
	for _, mid := range []bool{false, true} {
		name := "end-root"
		if mid {
			name = "mid-root"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var rep *Report
				var err error
				if mid {
					rep, err = AllReduceMidRoot(vectors, TwoPhase, Sum, Options{})
				} else {
					rep, err = AllReduce(vectors, TwoPhase, Sum, Options{})
				}
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Cycles), "sim-cycles")
			}
		})
	}
}

// BenchmarkRingValidation regenerates the ring-validation extension
// experiment (the algorithm the paper modelled but never built).
func BenchmarkRingValidation(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		fig, err := cfg.RingValidation()
		if err != nil {
			b.Fatal(err)
		}
		reportErr(b, fig)
	}
}

// --- Micro-benchmarks of the substrate ----------------------------------

// BenchmarkFabricChainThroughput measures simulator speed in
// wavelet-hops per second on a pipelined chain (the dominant cost of
// every measured figure).
func BenchmarkFabricChainThroughput(b *testing.B) {
	vectors := constVectors(256, 1024)
	b.ResetTimer()
	hops := int64(0)
	for i := 0; i < b.N; i++ {
		rep, err := Reduce(vectors, Chain, Sum, Options{})
		if err != nil {
			b.Fatal(err)
		}
		hops += rep.Stats.Hops
	}
	b.ReportMetric(float64(hops)/b.Elapsed().Seconds(), "hops/s")
}

// BenchmarkAutoGenTableBuild measures the Auto-Gen DP (the paper's
// offline code-generation cost; §5.5 gives O(P^4) for the tree search).
func BenchmarkAutoGenTableBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := autogen.Build(256, autogen.DefaultCaps())
		if t.Energy(256, 30, 3) <= 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkLowerBoundTableBuild measures the O(P^3) lower-bound DP.
func BenchmarkLowerBoundTableBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := lowerbound.For(512)
		if t.Time(512, 256, 2) <= 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkAutoGenTreeGeneration measures per-shape tree reconstruction,
// the online part of code generation.
func BenchmarkAutoGenTreeGeneration(b *testing.B) {
	tb := autogen.For(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := tb.Tree(512, 256, 2)
		if tr.Len() != 512 {
			b.Fatal("bad tree")
		}
	}
}

// BenchmarkModelSelection measures the cost of a model-driven algorithm
// choice (what wse.Auto pays per call).
func BenchmarkModelSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.BestReduce1D(512, 256, fabric.DefaultTR)
	}
}

// --- helpers -------------------------------------------------------------

func constVectors(p, b int) [][]float32 {
	out := make([][]float32, p)
	for i := range out {
		v := make([]float32, b)
		for j := range v {
			v[j] = 1
		}
		out[i] = v
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func ftoa(f float64) string {
	switch {
	case f == 0:
		return "0"
	case f < 0.02:
		return "0.01"
	default:
		return "0.05"
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
