package wse

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func vectorsFor(p, b int, seed int64) ([][]float32, []float32) {
	vecs := make([][]float32, p)
	sum := make([]float32, b)
	s := uint64(seed)*0x9e3779b9 + 1
	for i := range vecs {
		v := make([]float32, b)
		for j := range v {
			s = s*6364136223846793005 + 1442695040888963407
			v[j] = float32(int64(s>>40)%997) / 16
			sum[j] += v[j]
		}
		vecs[i] = v
	}
	return vecs, sum
}

func requireClose(t *testing.T, got, want []float32, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", ctx, len(got), len(want))
	}
	for i := range got {
		if d := math.Abs(float64(got[i] - want[i])); d > 1e-2*(1+math.Abs(float64(want[i]))) {
			t.Fatalf("%s: element %d: got %v want %v", ctx, i, got[i], want[i])
		}
	}
}

func TestReduceAllAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{Star, Chain, Tree, TwoPhase, AutoGen, Auto} {
		for _, p := range []int{1, 2, 9, 32} {
			for _, b := range []int{1, 5, 128} {
				vecs, want := vectorsFor(p, b, int64(p*b))
				rep, err := Reduce(vecs, alg, Sum, Options{})
				if err != nil {
					t.Fatalf("%s p=%d b=%d: %v", alg, p, b, err)
				}
				requireClose(t, rep.Root, want, fmt.Sprintf("%s p=%d b=%d", alg, p, b))
				if p > 1 && rep.Predicted <= 0 {
					t.Errorf("%s p=%d b=%d: prediction %v", alg, p, b, rep.Predicted)
				}
			}
		}
	}
}

func TestAllReduceLeavesResultEverywhere(t *testing.T) {
	vecs, want := vectorsFor(17, 33, 5)
	rep, err := AllReduce(vecs, Auto, Sum, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.All) != 17 {
		t.Fatalf("%d PEs in result", len(rep.All))
	}
	for c, v := range rep.All {
		requireClose(t, v, want, c.String())
	}
}

func TestMaxAndMinOps(t *testing.T) {
	vecs := [][]float32{{3, -8, 2}, {1, 5, 2}, {-4, 0, 9}}
	repMax, err := Reduce(vecs, Tree, Max, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireClose(t, repMax.Root, []float32{3, 5, 9}, "max")
	repMin, err := Reduce(vecs, Tree, Min, Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireClose(t, repMin.Root, []float32{-4, -8, 2}, "min")
}

func TestReduce2DAllAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm2D{XYStar, XYChain, XYTree, XYTwoPhase, XYAutoGen, Snake, Auto2D} {
		w, h, b := 5, 4, 16
		vecs, want := vectorsFor(w*h, b, 99)
		rep, err := Reduce2D(vecs, w, h, alg, Sum, Options{})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		requireClose(t, rep.Root, want, string(alg))
	}
}

func TestAllReduce2D(t *testing.T) {
	w, h, b := 8, 8, 32
	vecs, want := vectorsFor(w*h, b, 123)
	rep, err := AllReduce2D(vecs, w, h, Auto2D, Sum, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range rep.All {
		requireClose(t, v, want, c.String())
	}
}

func TestBroadcasts(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5}
	rep, err := Broadcast(data, 12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range rep.All {
		requireClose(t, v, data, c.String())
	}
	rep2, err := Broadcast2D(data, 6, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.All) != 18 {
		t.Fatalf("%d PEs", len(rep2.All))
	}
	for c, v := range rep2.All {
		requireClose(t, v, data, c.String())
	}
}

// TestReducePropertySum is a property-based test: for random shapes and
// payloads, every algorithm agrees with the reference elementwise sum.
func TestReducePropertySum(t *testing.T) {
	f := func(pRaw, bRaw uint8, seed int64) bool {
		p := int(pRaw%24) + 1
		b := int(bRaw%48) + 1
		vecs, want := vectorsFor(p, b, seed)
		for _, alg := range []Algorithm{Star, Chain, Tree, TwoPhase, AutoGen} {
			rep, err := Reduce(vecs, alg, Sum, Options{})
			if err != nil {
				t.Logf("%s p=%d b=%d: %v", alg, p, b, err)
				return false
			}
			for i := range want {
				if math.Abs(float64(rep.Root[i]-want[i])) > 1e-2*(1+math.Abs(float64(want[i]))) {
					t.Logf("%s p=%d b=%d elem %d: %v vs %v", alg, p, b, i, rep.Root[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPredictionConsistency: Auto never predicts worse than any concrete
// algorithm, and the lower bound never exceeds any prediction.
func TestPredictionConsistency(t *testing.T) {
	f := func(pRaw, bRaw uint16) bool {
		p := int(pRaw%511) + 2
		b := int(bRaw%4096) + 1
		_, bestT := BestAlgorithm(p, b, Options{})
		lb := LowerBoundReduce(p, b, Options{})
		for _, alg := range []Algorithm{Star, Chain, Tree, TwoPhase, AutoGen} {
			pred := PredictReduce(alg, p, b, Options{})
			if bestT > pred+1e-6 {
				t.Logf("best %v worse than %s %v (p=%d b=%d)", bestT, alg, pred, p, b)
				return false
			}
			if alg != Star && pred < lb-1e-6 {
				// The refined star estimate may dip below the energy-based
				// bound at B=1 (see model.StarReduceUpper).
				t.Logf("%s prediction %v below bound %v (p=%d b=%d)", alg, pred, lb, p, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoGenTreeShape(t *testing.T) {
	tree := AutoGenTree(64, 1<<20, Options{})
	// Huge vectors force the chain.
	for v := 1; v < tree.Len(); v++ {
		if tree.Parent[v] != v-1 {
			t.Fatalf("expected chain, got parent[%d]=%d", v, tree.Parent[v])
		}
	}
	if err := AutoGenTree(100, 64, Options{}).Validate(); err != nil {
		t.Fatal(err)
	}
}
