package client

// The verb surface and its wire types. The types mirror the daemon's
// JSON exactly (internal/serve's ShapeWire/ReportWire), restated here so
// the client package stands alone — importing it pulls in nothing but
// the standard library (internal/obs, the one internal import, is
// itself stdlib-only), which is what makes it embeddable in tools that
// never link the simulator.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Shape is a collective shape as the daemon's wire format spells it:
// kind and algorithm names are the same strings the CLI flags take, and
// zero-valued fields mean auto-selection or not-applicable.
type Shape struct {
	Kind   string `json:"kind"`
	Alg    string `json:"alg,omitempty"`
	Alg2D  string `json:"alg2d,omitempty"`
	P      int    `json:"p,omitempty"`
	Width  int    `json:"width,omitempty"`
	Height int    `json:"height,omitempty"`
	B      int    `json:"b"`
	Op     string `json:"op,omitempty"`
}

// FabricStats is the cost-metrics slice of a run report.
type FabricStats struct {
	Hops        int64 `json:"hops"`
	RampMoves   int64 `json:"ramp_moves"`
	MaxReceived int64 `json:"max_received"`
	MaxQueueLen int   `json:"max_queue_len"`
	Noops       int64 `json:"noops,omitempty"`
	Steps       int64 `json:"steps,omitempty"`
}

// Report is the result of a run: measured cycles, the model estimate,
// the root vector and the fabric cost metrics.
type Report struct {
	Cycles    int64       `json:"cycles"`
	Predicted float64     `json:"predicted"`
	Root      []float32   `json:"root,omitempty"`
	Stats     FabricStats `json:"stats"`
}

// Job is one poll of an async submit: pending, done (Result set) or
// failed (Error set).
type Job struct {
	ID     string  `json:"id"`
	State  string  `json:"state"`
	Result *Report `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

const (
	tenantHeader      = "X-WSE-Tenant"
	deadlineHeader    = "X-WSE-Deadline-Ms"
	idempotencyHeader = "X-WSE-Idempotency-Key"
)

type runRequest struct {
	Shape  Shape       `json:"shape"`
	Inputs [][]float32 `json:"inputs,omitempty"`
}

type submitResponse struct {
	ID  string `json:"id"`
	URL string `json:"status_url"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Run executes a collective synchronously and returns its report.
// Retryable: run is a pure function of the shape and inputs.
func (c *Client) Run(ctx context.Context, sh Shape, inputs [][]float32) (*Report, error) {
	var rep Report
	err := c.do(ctx, "POST", "/v1/run", runRequest{Shape: sh, Inputs: inputs}, nil, true, &rep)
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

// Predict returns the daemon's analytical cycle estimate for a shape.
func (c *Client) Predict(ctx context.Context, sh Shape) (float64, error) {
	return c.estimate(ctx, "/v1/predict", "predicted_cycles", sh)
}

// Bound returns the daemon's runtime lower bound for a shape.
func (c *Client) Bound(ctx context.Context, sh Shape) (float64, error) {
	return c.estimate(ctx, "/v1/bound", "bound_cycles", sh)
}

func (c *Client) estimate(ctx context.Context, path, field string, sh Shape) (float64, error) {
	var out map[string]float64
	if err := c.do(ctx, "POST", path, runRequest{Shape: sh}, nil, true, &out); err != nil {
		return 0, err
	}
	return out[field], nil
}

// Submit enqueues an async run and returns the job id to poll. A
// non-empty key makes the call idempotent — the daemon dedupes
// resubmissions carrying the same key per tenant — and therefore
// retryable; with an empty key the client sends exactly one attempt,
// because retrying an unkeyed submit could enqueue the work twice.
func (c *Client) Submit(ctx context.Context, sh Shape, inputs [][]float32, key string) (string, error) {
	var hdr map[string]string
	if key != "" {
		hdr = map[string]string{idempotencyHeader: key}
	}
	var resp submitResponse
	err := c.do(ctx, "POST", "/v1/submit", runRequest{Shape: sh, Inputs: inputs}, hdr, key != "", &resp)
	if err != nil {
		return "", err
	}
	return resp.ID, nil
}

// Job polls an async job once. Retryable: polling is a read.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.do(ctx, "GET", "/v1/jobs/"+id, nil, nil, true, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Wait polls a job until it resolves (or ctx expires), sleeping
// interval between polls (default 50ms). A failed job's server-side
// error comes back as an error with the job's message.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (*Report, error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch j.State {
		case "done":
			return j.Result, nil
		case "failed":
			return nil, fmt.Errorf("client: job %s failed: %s", id, j.Error)
		}
		if err := c.sleep(ctx, interval); err != nil {
			return nil, err
		}
	}
}

// PlanBlob fetches the encoded plan blob for a canonical key string
// from the daemon's GET /v1/plans/{key} endpoint. A daemon that does
// not hold the plan answers 404, which comes back as ok=false with no
// error — a miss, not a failure — so resolver chains can distinguish
// "peer is healthy but cold" from "peer is down". Retryable: a blob
// read is a pure lookup.
func (c *Client) PlanBlob(ctx context.Context, key string) ([]byte, bool, error) {
	var blob []byte
	err := c.do(ctx, "GET", "/v1/plans/"+url.PathEscape(key), nil, nil, true, &blob)
	if err != nil {
		var ae *APIError
		if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
			return nil, false, nil
		}
		return nil, false, err
	}
	return blob, true, nil
}

// WarmResult reports what a remote warm did: how many shapes were
// freshly materialised into the daemon's cache, how many were already
// resident, and per-shape errors for the ones that failed.
type WarmResult struct {
	Warmed   int      `json:"warmed"`
	Resident int      `json:"resident"`
	Failed   int      `json:"failed"`
	Errors   []string `json:"errors,omitempty"`
}

type warmRequest struct {
	Shapes []Shape `json:"shapes"`
}

// Warm asks the daemon to pre-materialise plans for the given shapes
// through its resolver chain (POST /v1/warm), so a fleet can be
// pre-heated over the wire without filesystem access to its plan store.
// Retryable: warming is idempotent — an already-resident plan is a
// no-op.
func (c *Client) Warm(ctx context.Context, shapes []Shape) (*WarmResult, error) {
	var res WarmResult
	if err := c.do(ctx, "POST", "/v1/warm", warmRequest{Shapes: shapes}, nil, true, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Healthy reports whether the daemon answers /healthz with 200. One
// attempt, no retries — health checks are themselves the probe.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, "GET", c.cfg.BaseURL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// do is the retry core every verb funnels through: breaker gate, one
// HTTP attempt, outcome classification, backoff, repeat. body is
// marshalled once and replayed per attempt; out receives the decoded
// 2xx JSON.
func (c *Client) do(ctx context.Context, method, path string, body any, hdr map[string]string, idempotent bool, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	attempts := 1
	if idempotent {
		attempts = c.cfg.MaxAttempts
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			wait := c.backoff(attempt - 1)
			if ra := retryAfter(lastErr); ra > 0 {
				wait = ra // the server named its price; pay exactly that
			}
			if err := c.sleep(ctx, wait); err != nil {
				return fmt.Errorf("client: giving up after %d attempts: %w (last error: %v)", attempt, err, lastErr)
			}
			c.retries.Add(1)
		}
		if err := c.breakerAllow(); err != nil {
			c.fastFails.Add(1)
			lastErr = err
			continue // cooldown may elapse during the next backoff
		}
		err := c.attempt(ctx, method, path, payload, hdr, out)
		if err == nil {
			c.breakerReport(true)
			return nil
		}
		if ctx.Err() != nil {
			// The caller's deadline, not the service, killed the attempt:
			// don't charge the breaker, don't keep trying.
			return fmt.Errorf("client: %w (last error: %v)", ctx.Err(), err)
		}
		c.breakerReport(!breakerFailure(err))
		lastErr = err
		if !retryable(err) {
			return err
		}
	}
	return fmt.Errorf("client: giving up after %d attempts: %w", attempts, lastErr)
}

// attempt sends one HTTP request and classifies the response. A non-2xx
// status becomes an *APIError carrying the server's JSON error message
// and any Retry-After hint.
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte, hdr map[string]string, out any) error {
	c.attempts.Add(1)
	actx := ctx
	if c.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		defer cancel()
	}
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(actx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("client: build request: %w", err)
	}
	// One span per wire attempt (retries each get their own), and the
	// traceparent header carries the caller's trace onto the server so
	// its root span joins this trace instead of opening a new one.
	sctx, span := obs.Start(ctx, "client "+method)
	span.SetAttr("path", path)
	obs.InjectHeader(sctx, req.Header)
	defer span.End()
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.cfg.Tenant != "" {
		req.Header.Set(tenantHeader, c.cfg.Tenant)
	}
	// Forward the effective deadline so the server sheds work this
	// client will have abandoned by the time it finishes.
	if dl, ok := actx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set(deadlineHeader, strconv.FormatInt(ms, 10))
		}
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		err = fmt.Errorf("client: %s %s: %w", method, path, err)
		span.SetError(err)
		return err
	}
	defer resp.Body.Close()
	span.SetAttr("status", resp.StatusCode)
	if resp.StatusCode >= 500 {
		span.SetError(fmt.Errorf("http %d", resp.StatusCode))
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: read response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		ae := &APIError{Status: resp.StatusCode}
		var er errorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			ae.Msg = er.Error
		} else {
			ae.Msg = string(data)
		}
		if secs, err := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
		return ae
	}
	if out != nil {
		// A *[]byte sink takes the body verbatim — the plan-blob endpoint
		// serves a binary codec frame, not JSON.
		if raw, ok := out.(*[]byte); ok {
			*raw = data
			return nil
		}
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: decode response: %w", err)
		}
	}
	return nil
}
