// Package client is the Go client for a wsed daemon: the Shape-first
// verbs (Run, Predict, Bound, Submit/Job) over HTTP with a production
// retry discipline baked in, so callers get resilience without
// re-deriving it per call site:
//
//   - Exponential backoff with equal jitter between attempts, honoring
//     the server's Retry-After hint on 429 when it sends one.
//   - Per-attempt timeouts and the caller's overall context deadline,
//     which is also forwarded to the server as X-WSE-Deadline-Ms so the
//     daemon sheds work the client has already given up on.
//   - A consecutive-failure circuit breaker: after Threshold straight
//     service failures the client fails fast (ErrBreakerOpen) without
//     touching the network, then lets a single half-open probe through
//     after Cooldown; the probe's outcome closes or re-opens it.
//   - Idempotent-verb-only retries: run, predict, bound and job polls
//     retry freely; submit retries only when the caller supplies an
//     idempotency key (the daemon dedupes resubmissions on it), because
//     blind submit retries would enqueue duplicate work.
//
// Retry classification follows the daemon's error taxonomy: transport
// errors, 5xx and 429 are retryable; every other 4xx is the caller's
// bug and is returned immediately. The breaker counts transport errors
// and 5xx only — a 429 means the server is alive and explicitly asking
// for patience, which is backoff's job, not the breaker's.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBreakerOpen is returned (wrapped) when the circuit breaker is open
// and the call was failed fast without a network attempt.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// APIError is a non-2xx response from the daemon, carrying the HTTP
// status and the server's JSON error message.
type APIError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration // parsed Retry-After hint (zero when absent)
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server status %d: %s", e.Status, e.Msg)
}

// Config assembles a Client. BaseURL is required; every knob has a
// serving-grade default.
type Config struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:8080".
	BaseURL string
	// Tenant, when non-empty, is sent as X-WSE-Tenant on every request.
	Tenant string
	// HTTPClient overrides the transport (default: a plain http.Client;
	// per-attempt timeouts come from AttemptTimeout, not the transport).
	HTTPClient *http.Client

	// MaxAttempts bounds total tries per idempotent call, first attempt
	// included (default 4). Non-idempotent calls always get exactly one.
	MaxAttempts int
	// BaseBackoff is the first retry delay before jitter (default 100ms);
	// each further retry doubles it up to MaxBackoff (default 5s). A
	// server Retry-After hint overrides the computed delay.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout bounds each individual attempt (default 0: only the
	// caller's context bounds the call).
	AttemptTimeout time.Duration

	// BreakerThreshold is the consecutive service-failure count that
	// opens the breaker (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before allowing
	// a half-open probe (default 5s).
	BreakerCooldown time.Duration
}

// Metrics is a snapshot of the client's retry machinery, for load tools
// and tests.
type Metrics struct {
	Attempts     int64 // HTTP attempts actually sent
	Retries      int64 // attempts beyond the first, per call
	FastFails    int64 // calls (or attempts) refused by an open breaker
	BreakerOpens int64 // closed/half-open -> open transitions
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// Client is a wsed client. Safe for concurrent use; the circuit breaker
// is shared across all calls, which is the point — it models the health
// of the one daemon behind BaseURL.
type Client struct {
	cfg Config
	hc  *http.Client

	attempts  atomic.Int64
	retries   atomic.Int64
	fastFails atomic.Int64
	opens     atomic.Int64

	// Test seams. now/sleep/rng default to the real clock and a
	// time-seeded PRNG; white-box tests inject deterministic versions.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error

	mu       sync.Mutex // guards breaker state and rng
	rng      *rand.Rand
	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// New builds a Client over a daemon base URL.
func New(cfg Config) *Client {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{
		cfg:   cfg,
		hc:    hc,
		now:   time.Now,
		sleep: sleepCtx,
		rng:   rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Metrics snapshots the retry counters.
func (c *Client) Metrics() Metrics {
	return Metrics{
		Attempts:     c.attempts.Load(),
		Retries:      c.retries.Load(),
		FastFails:    c.fastFails.Load(),
		BreakerOpens: c.opens.Load(),
	}
}

// sleepCtx is the production sleep: a timer raced against the context.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryable reports whether an attempt's failure may be retried on an
// idempotent call: transport errors, 5xx and 429. Any other APIError is
// a caller bug (4xx) that no retry will fix.
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status >= 500 || ae.Status == http.StatusTooManyRequests
	}
	return true // transport-level failure
}

// breakerFailure reports whether a failure should count against the
// breaker: transport errors and 5xx. 429 is live-and-shedding, and
// other 4xx prove the server is healthy.
func breakerFailure(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status >= 500
	}
	return true
}

// breakerAllow asks the breaker for permission to attempt. An open
// breaker whose cooldown has elapsed transitions to half-open and
// admits exactly one probe.
func (c *Client) breakerAllow() error {
	if c.cfg.BreakerThreshold < 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if c.now().Sub(c.openedAt) >= c.cfg.BreakerCooldown {
			c.state = breakerHalfOpen
			c.probing = true
			return nil
		}
		return ErrBreakerOpen
	default: // half-open
		if c.probing {
			return ErrBreakerOpen
		}
		c.probing = true
		return nil
	}
}

// breakerReport feeds an attempt's outcome back. Success closes the
// breaker and zeroes the streak; a counted failure extends the streak
// (opening at the threshold) or re-opens a half-open breaker outright.
func (c *Client) breakerReport(ok bool) {
	if c.cfg.BreakerThreshold < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == breakerHalfOpen {
		c.probing = false
	}
	if ok {
		c.fails = 0
		c.state = breakerClosed
		return
	}
	c.fails++
	if c.state == breakerHalfOpen || c.fails >= c.cfg.BreakerThreshold {
		if c.state != breakerOpen {
			c.opens.Add(1)
		}
		c.state = breakerOpen
		c.openedAt = c.now()
		c.fails = 0
	}
}

// backoff computes the delay before retry n (0-based): exponential
// doubling from BaseBackoff capped at MaxBackoff, with equal jitter
// (half fixed, half uniform random) so a herd of clients desynchronizes.
func (c *Client) backoff(n int) time.Duration {
	d := c.cfg.BaseBackoff
	for i := 0; i < n && d < c.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	half := d / 2
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(half) + 1))
	c.mu.Unlock()
	return half + j
}

// retryAfter extracts the server's Retry-After hint in seconds.
func retryAfter(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.RetryAfter
	}
	return 0
}
