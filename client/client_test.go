package client

// White-box tests of the retry discipline: a scripted httptest server
// plays status sequences, an injected clock makes sleeps and breaker
// cooldowns instantaneous and observable, and a seeded PRNG makes the
// jittered backoff sequence exactly reproducible.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives now/sleep deterministically: sleeps record their
// duration and advance the clock instead of blocking.
type fakeClock struct {
	mu     sync.Mutex
	t      time.Time
	sleeps []time.Duration
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.mu.Lock()
	f.sleeps = append(f.sleeps, d)
	f.t = f.t.Add(d)
	f.mu.Unlock()
	return nil
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// scriptServer answers each request with the next scripted status (the
// last status repeats forever). 2xx responses carry body; failures carry
// a JSON error, and 429s a Retry-After header.
type scriptServer struct {
	ts         *httptest.Server
	hits       atomic.Int64
	retryAfter string
	body       string

	mu     sync.Mutex
	script []int
}

func newScriptServer(t *testing.T, script ...int) *scriptServer {
	t.Helper()
	s := &scriptServer{script: script, body: `{"cycles":42,"predicted":40.5,"stats":{"hops":1}}`}
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := s.hits.Add(1)
		s.mu.Lock()
		code := s.script[len(s.script)-1]
		if int(n) <= len(s.script) {
			code = s.script[n-1]
		}
		s.mu.Unlock()
		if code >= 200 && code <= 299 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			w.Write([]byte(s.body))
			return
		}
		if code == http.StatusTooManyRequests && s.retryAfter != "" {
			w.Header().Set("Retry-After", s.retryAfter)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf("scripted %d", code)})
	}))
	t.Cleanup(s.ts.Close)
	return s
}

// newTestClient wires a Client to the script server with the fake clock
// and a seeded PRNG.
func newTestClient(s *scriptServer, cfg Config) (*Client, *fakeClock) {
	cfg.BaseURL = s.ts.URL
	c := New(cfg)
	fc := &fakeClock{t: time.Unix(1000, 0)}
	c.now = fc.now
	c.sleep = fc.sleep
	c.rng = rand.New(rand.NewSource(1))
	return c, fc
}

func TestRunSuccess(t *testing.T) {
	s := newScriptServer(t, 200)
	c, _ := newTestClient(s, Config{})
	rep, err := c.Run(context.Background(), Shape{Kind: "reduce1d", P: 8, B: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != 42 || rep.Stats.Hops != 1 {
		t.Fatalf("bad report: %+v", rep)
	}
	if got := s.hits.Load(); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
}

func TestRetriesTransientThenSucceeds(t *testing.T) {
	s := newScriptServer(t, 500, 503, 200)
	c, fc := newTestClient(s, Config{MaxAttempts: 4})
	if _, err := c.Run(context.Background(), Shape{Kind: "reduce1d", P: 8, B: 4}, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.hits.Load(); got != 3 {
		t.Fatalf("hits = %d, want 3", got)
	}
	if len(fc.sleeps) != 2 {
		t.Fatalf("sleeps = %v, want 2 backoffs", fc.sleeps)
	}
	// Equal jitter keeps each delay within [base/2, base] of its tier.
	for i, d := range fc.sleeps {
		base := 100 * time.Millisecond << i
		if d < base/2 || d > base {
			t.Errorf("backoff %d = %v, want in [%v, %v]", i, d, base/2, base)
		}
	}
	m := c.Metrics()
	if m.Attempts != 3 || m.Retries != 2 {
		t.Fatalf("metrics %+v, want 3 attempts / 2 retries", m)
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	c := New(Config{BaseURL: "http://x", BaseBackoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond})
	c.rng = rand.New(rand.NewSource(1))
	want := rand.New(rand.NewSource(1))
	for n, base := range []time.Duration{
		100 * time.Millisecond, // retry 0
		200 * time.Millisecond, // retry 1
		400 * time.Millisecond, // retry 2: at cap
		400 * time.Millisecond, // retry 3: stays at cap
	} {
		exp := base/2 + time.Duration(want.Int63n(int64(base/2)+1))
		if got := c.backoff(n); got != exp {
			t.Fatalf("backoff(%d) = %v, want %v", n, got, exp)
		}
	}
}

func TestRetryAfterHonored(t *testing.T) {
	s := newScriptServer(t, 429, 200)
	s.retryAfter = "7"
	c, fc := newTestClient(s, Config{})
	if _, err := c.Run(context.Background(), Shape{Kind: "reduce1d", P: 8, B: 4}, nil); err != nil {
		t.Fatal(err)
	}
	if len(fc.sleeps) != 1 || fc.sleeps[0] != 7*time.Second {
		t.Fatalf("sleeps = %v, want exactly [7s] from Retry-After", fc.sleeps)
	}
}

func Test400NeverRetried(t *testing.T) {
	s := newScriptServer(t, 400)
	c, fc := newTestClient(s, Config{MaxAttempts: 5})
	_, err := c.Run(context.Background(), Shape{Kind: "bogus"}, nil)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if got := s.hits.Load(); got != 1 {
		t.Fatalf("hits = %d — a 400 must never be retried", got)
	}
	if len(fc.sleeps) != 0 {
		t.Fatalf("slept %v before a non-retryable failure", fc.sleeps)
	}
	// A 4xx proves the server healthy: the breaker streak resets.
	if c.fails != 0 {
		t.Fatalf("breaker streak = %d after 400, want 0", c.fails)
	}
}

func TestBreakerOpensAndFailsFast(t *testing.T) {
	s := newScriptServer(t, 500)
	c, _ := newTestClient(s, Config{MaxAttempts: 1, BreakerThreshold: 3, BreakerCooldown: 10 * time.Second})
	ctx := context.Background()
	sh := Shape{Kind: "reduce1d", P: 8, B: 4}
	for i := 0; i < 3; i++ {
		if _, err := c.Run(ctx, sh, nil); err == nil {
			t.Fatal("scripted 500 succeeded")
		}
	}
	if got := s.hits.Load(); got != 3 {
		t.Fatalf("hits = %d, want 3 before the breaker opens", got)
	}
	// Threshold reached: the next call must fail fast, no network.
	_, err := c.Run(ctx, sh, nil)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if got := s.hits.Load(); got != 3 {
		t.Fatalf("hits = %d — an open breaker must not touch the network", got)
	}
	m := c.Metrics()
	if m.BreakerOpens != 1 || m.FastFails == 0 {
		t.Fatalf("metrics %+v, want 1 open and >0 fast-fails", m)
	}
}

func TestBreakerHalfOpenRecovers(t *testing.T) {
	s := newScriptServer(t, 500, 500, 500, 200)
	c, fc := newTestClient(s, Config{MaxAttempts: 1, BreakerThreshold: 3, BreakerCooldown: 10 * time.Second})
	ctx := context.Background()
	sh := Shape{Kind: "reduce1d", P: 8, B: 4}
	for i := 0; i < 3; i++ {
		c.Run(ctx, sh, nil)
	}
	if _, err := c.Run(ctx, sh, nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("breaker should be open, got %v", err)
	}
	// Cooldown elapses: the half-open probe goes through, succeeds
	// (script position 4 is a 200) and closes the breaker for good.
	fc.advance(11 * time.Second)
	if _, err := c.Run(ctx, sh, nil); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if _, err := c.Run(ctx, sh, nil); err != nil {
		t.Fatalf("post-recovery call failed: %v", err)
	}
	if got := s.hits.Load(); got != 5 {
		t.Fatalf("hits = %d, want 5 (3 failures + probe + 1 closed)", got)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	s := newScriptServer(t, 500)
	c, fc := newTestClient(s, Config{MaxAttempts: 1, BreakerThreshold: 2, BreakerCooldown: 10 * time.Second})
	ctx := context.Background()
	sh := Shape{Kind: "reduce1d", P: 8, B: 4}
	c.Run(ctx, sh, nil)
	c.Run(ctx, sh, nil) // opens
	fc.advance(11 * time.Second)
	c.Run(ctx, sh, nil) // probe: still 500 -> re-opens immediately
	if _, err := c.Run(ctx, sh, nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("failed probe must re-open the breaker, got %v", err)
	}
	if got := s.hits.Load(); got != 3 {
		t.Fatalf("hits = %d, want 3 (2 + 1 probe)", got)
	}
	if c.Metrics().BreakerOpens != 2 {
		t.Fatalf("opens = %d, want 2", c.Metrics().BreakerOpens)
	}
}

func TestSubmitUnkeyedNeverRetried(t *testing.T) {
	s := newScriptServer(t, 500)
	c, fc := newTestClient(s, Config{MaxAttempts: 4})
	if _, err := c.Submit(context.Background(), Shape{Kind: "reduce1d", P: 8, B: 4}, nil, ""); err == nil {
		t.Fatal("scripted 500 succeeded")
	}
	if got := s.hits.Load(); got != 1 {
		t.Fatalf("hits = %d — an unkeyed submit must not be retried", got)
	}
	if len(fc.sleeps) != 0 {
		t.Fatalf("slept %v on a single-attempt call", fc.sleeps)
	}
}

func TestSubmitKeyedRetries(t *testing.T) {
	var keys []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys = append(keys, r.Header.Get(idempotencyHeader))
		if len(keys) == 1 {
			w.WriteHeader(500)
			json.NewEncoder(w).Encode(map[string]string{"error": "injected"})
			return
		}
		w.WriteHeader(202)
		json.NewEncoder(w).Encode(map[string]string{"id": "j7", "status_url": "/v1/jobs/j7"})
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL, MaxAttempts: 3})
	fc := &fakeClock{t: time.Unix(1000, 0)}
	c.now, c.sleep = fc.now, fc.sleep
	c.rng = rand.New(rand.NewSource(1))
	id, err := c.Submit(context.Background(), Shape{Kind: "reduce1d", P: 8, B: 4}, nil, "k1")
	if err != nil {
		t.Fatal(err)
	}
	if id != "j7" {
		t.Fatalf("id = %q", id)
	}
	if len(keys) != 2 || keys[0] != "k1" || keys[1] != "k1" {
		t.Fatalf("keys = %v, want the same key on every attempt", keys)
	}
}

func TestOverallDeadlineStopsRetries(t *testing.T) {
	s := newScriptServer(t, 500)
	c, _ := newTestClient(s, Config{MaxAttempts: 10})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Run(ctx, Shape{Kind: "reduce1d", P: 8, B: 4}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// At most the one in-flight attempt; the sleep loop must bail.
	if got := s.hits.Load(); got > 1 {
		t.Fatalf("hits = %d after cancel", got)
	}
}

func TestDeadlineHeaderForwarded(t *testing.T) {
	var hdr atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hdr.Store(r.Header.Get(deadlineHeader))
		w.Write([]byte(`{"cycles":1,"predicted":1,"stats":{}}`))
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL, Tenant: "acme"})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := c.Run(ctx, Shape{Kind: "reduce1d", P: 8, B: 4}, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := hdr.Load().(string)
	if got == "" {
		t.Fatal("deadline header not forwarded")
	}
}

func TestWaitPollsToDone(t *testing.T) {
	var polls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if polls.Add(1) < 3 {
			json.NewEncoder(w).Encode(Job{ID: "j1", State: "pending"})
			return
		}
		json.NewEncoder(w).Encode(Job{ID: "j1", State: "done", Result: &Report{Cycles: 99}})
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})
	fc := &fakeClock{t: time.Unix(1000, 0)}
	c.now, c.sleep = fc.now, fc.sleep
	rep, err := c.Wait(context.Background(), "j1", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != 99 {
		t.Fatalf("cycles = %d", rep.Cycles)
	}
	if polls.Load() != 3 {
		t.Fatalf("polls = %d, want 3", polls.Load())
	}
}
