package client

// Tests of the fleet-facing API surface: raw plan-blob fetches (the
// resolver chain's peer stage) and remote cache warming.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"
)

func newMuxClient(t *testing.T, mux *http.ServeMux, cfg Config) *Client {
	t.Helper()
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	cfg.BaseURL = srv.URL
	c := New(cfg)
	fc := &fakeClock{t: time.Unix(1000, 0)}
	c.now = fc.now
	c.sleep = fc.sleep
	c.rng = rand.New(rand.NewSource(1))
	return c
}

func TestPlanBlobRawBytes(t *testing.T) {
	blob := []byte{0x00, 0x01, 0xff, 0xfe, '{', 'n', 'o', 't', 'j', 's', 'o', 'n'}
	const key = "k1;reduce1d;alg=auto;p=8"
	var gotPath string
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/plans/{key}", func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.PathValue("key")
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(blob)
	})
	c := newMuxClient(t, mux, Config{})

	got, ok, err := c.PlanBlob(context.Background(), key)
	if err != nil || !ok {
		t.Fatalf("PlanBlob = ok=%v, %v", ok, err)
	}
	// The blob must arrive byte-exact — no JSON decode attempt — and the
	// key must survive path escaping (it contains ';' and '=').
	if !bytes.Equal(got, blob) {
		t.Fatalf("blob mangled: got %x want %x", got, blob)
	}
	if gotPath != key {
		t.Fatalf("server saw key %q, want %q", gotPath, key)
	}
}

func TestPlanBlobNotFoundIsCleanMiss(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/plans/{key}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		io.WriteString(w, `{"error":{"code":"not_found","message":"no such plan"}}`)
	})
	c := newMuxClient(t, mux, Config{})
	blob, ok, err := c.PlanBlob(context.Background(), "k1;whatever")
	if err != nil {
		t.Fatalf("404 should be a miss, not an error: %v", err)
	}
	if ok || blob != nil {
		t.Fatalf("PlanBlob on 404 = %v, ok=%v; want nil, false", blob, ok)
	}
}

func TestPlanBlobRetriesTransient(t *testing.T) {
	var hits int
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/plans/{key}", func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte("blob"))
	})
	c := newMuxClient(t, mux, Config{MaxAttempts: 3})
	got, ok, err := c.PlanBlob(context.Background(), "k1;x")
	if err != nil || !ok || string(got) != "blob" {
		t.Fatalf("PlanBlob after transient 500 = %q, ok=%v, %v", got, ok, err)
	}
	if hits != 2 {
		t.Fatalf("hits = %d, want the blob fetch retried as idempotent", hits)
	}
}

func TestWarm(t *testing.T) {
	var gotBody warmRequest
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/warm", func(w http.ResponseWriter, r *http.Request) {
		if err := json.NewDecoder(r.Body).Decode(&gotBody); err != nil {
			t.Errorf("bad warm body: %v", err)
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"warmed":2,"resident":1,"failed":1,"errors":["shape 3: bad shape"]}`)
	})
	c := newMuxClient(t, mux, Config{})

	shapes := []Shape{
		{Kind: "reduce1d", Alg: "chain", P: 8, B: 4},
		{Kind: "allreduce2d", Alg2D: "xy-tree", Width: 4, Height: 2, B: 8, Op: "max"},
	}
	res, err := c.Warm(context.Background(), shapes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Warmed != 2 || res.Resident != 1 || res.Failed != 1 || len(res.Errors) != 1 {
		t.Fatalf("WarmResult = %+v", res)
	}
	if len(gotBody.Shapes) != 2 || gotBody.Shapes[0].Kind != "reduce1d" || gotBody.Shapes[1].Op != "max" {
		t.Fatalf("server saw shapes %+v", gotBody.Shapes)
	}
}

func TestPlanBlobKeyEscaping(t *testing.T) {
	// A key containing a path-hostile character must round-trip. Go's
	// mux unescapes PathValue, so the raw request path carries the
	// escaped form and the handler still sees the original.
	const key = "k1;odd/slash key"
	var rawPath, pathVal string
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/plans/{key}", func(w http.ResponseWriter, r *http.Request) {
		rawPath = r.URL.EscapedPath()
		pathVal = r.PathValue("key")
		w.Write([]byte("ok"))
	})
	c := newMuxClient(t, mux, Config{})
	if _, ok, err := c.PlanBlob(context.Background(), key); err != nil || !ok {
		t.Fatalf("PlanBlob = ok=%v, %v", ok, err)
	}
	if pathVal != key {
		t.Fatalf("handler saw %q, want %q", pathVal, key)
	}
	if want := "/v1/plans/" + url.PathEscape(key); rawPath != want {
		t.Fatalf("wire path %q, want %q", rawPath, want)
	}
}
