package wse

// Tests of the Shape-first surface: the property that every legacy named
// function is bit-identical to its Shape-first equivalent (same Report,
// same RNG chain) across all 11 kinds and all three serving levels,
// typed ErrBadShape validation, columnar results, and batch replay.

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mesh"
)

// apiVectors builds deterministic pseudo-random input vectors.
func apiVectors(p, b int, seed float32) [][]float32 {
	out := make([][]float32, p)
	x := seed
	for i := range out {
		v := make([]float32, b)
		for j := range v {
			x = x*1.3 + 0.7
			if x > 100 {
				x -= 200
			}
			v[j] = x
		}
		out[i] = v
	}
	return out
}

// apiChunks splits a deterministic vector into the canonical per-PE
// chunks for the gather kinds.
func apiChunks(p, b int) [][]float32 {
	full := apiVectors(1, b, 3)[0]
	off, sz := Chunks(p, b)
	out := make([][]float32, p)
	for j := range out {
		out[j] = full[off[j] : off[j]+sz[j]]
	}
	return out
}

// apiCase is one collective kind spelled three ways: the Shape + inputs
// of the new surface, the legacy one-shot call, and the internal core
// path that predates the Shape-first redesign (the ground truth the
// wrappers must still match bit for bit).
type apiCase struct {
	name   string
	shape  Shape
	inputs [][]float32
	legacy func(opt Options) (*Report, error)
	ground func(opt Options) (*Report, error)
}

func apiCases() []apiCase {
	vecs := apiVectors(12, 9, 1)
	rsVecs := apiVectors(6, 13, 2) // ring wants B >= P
	grid := apiVectors(4*3, 5, 4)
	data := apiVectors(1, 17, 5)[0]
	chunks := apiChunks(7, 23)
	return []apiCase{
		{"reduce", Shape{Kind: KindReduce, Alg: TwoPhase, P: 12, B: 9, Op: Sum}, vecs,
			func(o Options) (*Report, error) { return Reduce(vecs, TwoPhase, Sum, o) },
			func(o Options) (*Report, error) { return core.RunReduce1D(TwoPhase, vecs, Sum, o) }},
		{"allreduce", Shape{Kind: KindAllReduce, Alg: Tree, P: 12, B: 9, Op: Max}, vecs,
			func(o Options) (*Report, error) { return AllReduce(vecs, Tree, Max, o) },
			func(o Options) (*Report, error) { return core.RunAllReduce1D(Tree, vecs, Max, o) }},
		{"allreduce-ring", Shape{Kind: KindAllReduce, Alg: Ring, P: 6, B: 13, Op: Sum}, rsVecs,
			func(o Options) (*Report, error) { return AllReduce(rsVecs, Ring, Sum, o) },
			func(o Options) (*Report, error) { return core.RunAllReduce1D(Ring, rsVecs, Sum, o) }},
		{"allreduce-midroot", Shape{Kind: KindAllReduceMidRoot, Alg: Auto, P: 12, B: 9, Op: Sum}, vecs,
			func(o Options) (*Report, error) { return AllReduceMidRoot(vecs, Auto, Sum, o) },
			func(o Options) (*Report, error) { return core.RunAllReduceMidRoot(Auto, vecs, Sum, o) }},
		{"broadcast", Shape{Kind: KindBroadcast, P: 9, B: 17}, [][]float32{data},
			func(o Options) (*Report, error) { return Broadcast(data, 9, o) },
			func(o Options) (*Report, error) { return core.RunBroadcast1D(data, 9, o) }},
		{"reduce2d", Shape{Kind: KindReduce2D, Alg2D: XYTree, Width: 4, Height: 3, B: 5, Op: Sum}, grid,
			func(o Options) (*Report, error) { return Reduce2D(grid, 4, 3, XYTree, Sum, o) },
			func(o Options) (*Report, error) { return core.RunReduce2D(XYTree, 4, 3, grid, Sum, o) }},
		{"allreduce2d", Shape{Kind: KindAllReduce2D, Alg2D: Snake, Width: 4, Height: 3, B: 5, Op: Min}, grid,
			func(o Options) (*Report, error) { return AllReduce2D(grid, 4, 3, Snake, Min, o) },
			func(o Options) (*Report, error) { return core.RunAllReduce2D(Snake, 4, 3, grid, Min, o) }},
		{"broadcast2d", Shape{Kind: KindBroadcast2D, Width: 4, Height: 3, B: 17}, [][]float32{data},
			func(o Options) (*Report, error) { return Broadcast2D(data, 4, 3, o) },
			func(o Options) (*Report, error) { return core.RunBroadcast2D(data, 4, 3, o) }},
		{"scatter", Shape{Kind: KindScatter, P: 7, B: 17}, [][]float32{data},
			func(o Options) (*Report, error) { return Scatter(data, 7, o) },
			func(o Options) (*Report, error) { return core.RunScatter(data, 7, o) }},
		{"gather", Shape{Kind: KindGather, P: 7, B: 23}, chunks,
			func(o Options) (*Report, error) { return Gather(chunks, o) },
			func(o Options) (*Report, error) { return core.RunGather(chunks, o) }},
		{"reducescatter", Shape{Kind: KindReduceScatter, P: 6, B: 13, Op: Sum}, rsVecs,
			func(o Options) (*Report, error) { return ReduceScatter(rsVecs, Sum, o) },
			func(o Options) (*Report, error) { return core.RunReduceScatter(rsVecs, Sum, o) }},
		{"allgather", Shape{Kind: KindAllGather, P: 7, B: 23}, chunks,
			func(o Options) (*Report, error) { return AllGather(chunks, o) },
			func(o Options) (*Report, error) { return core.RunAllGather(chunks, o) }},
	}
}

func sameReport(t *testing.T, label string, got, want *Report) {
	t.Helper()
	if got.Cycles != want.Cycles {
		t.Fatalf("%s: cycles %d, want %d", label, got.Cycles, want.Cycles)
	}
	if got.Predicted != want.Predicted {
		t.Fatalf("%s: predicted %g, want %g", label, got.Predicted, want.Predicted)
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats %+v, want %+v", label, got.Stats, want.Stats)
	}
	sameFloats(t, label+" root", got.Root, want.Root)
	for c, w := range want.All {
		g := got.All[c]
		if g == nil && got.Columnar != nil {
			g = got.Columnar.At(c)
		}
		sameFloats(t, label+" PE acc", g, w)
	}
}

// TestLegacyBitIdenticalToShapeFirst is the redesign's conservation law:
// for every collective kind, the legacy named function, the package
// Run(ctx, Shape), Session.Run and Tenant.Run all produce bit-identical
// reports — and all of them match the pre-redesign internal core path.
// The options turn on clock skew and thermal no-ops, so equality of
// Cycles and Stats.Noops also proves the deterministic RNG chain
// survived every path.
func TestLegacyBitIdenticalToShapeFirst(t *testing.T) {
	opt := Options{ClockSkewMax: 24, ThermalNoopRate: 0.03, Seed: 11}
	s := NewSession(SessionConfig{Options: opt})
	defer s.Close()
	tn := s.WithTenant("prop", TenantConfig{Weight: 2})
	ctx := context.Background()

	for _, tc := range apiCases() {
		t.Run(tc.name, func(t *testing.T) {
			want, err := tc.ground(opt)
			if err != nil {
				t.Fatalf("core ground truth: %v", err)
			}
			legacy, err := tc.legacy(opt)
			if err != nil {
				t.Fatalf("legacy: %v", err)
			}
			sameReport(t, "legacy vs core", legacy, want)

			shaped, err := Run(ctx, tc.shape, tc.inputs, WithOptions(opt))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			sameReport(t, "Run vs core", shaped, want)

			sess, err := s.Run(ctx, tc.shape, tc.inputs)
			if err != nil {
				t.Fatalf("Session.Run: %v", err)
			}
			sameReport(t, "Session.Run vs core", sess, want)

			ten, err := tn.Run(ctx, tc.shape, tc.inputs)
			if err != nil {
				t.Fatalf("Tenant.Run: %v", err)
			}
			sameReport(t, "Tenant.Run vs core", ten, want)

			// The async verb resolves to the same report.
			fut, err := s.Submit(ctx, tc.shape, tc.inputs).Wait()
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			sameReport(t, "Submit vs core", fut, want)

			// The columnar layout carries the same values.
			col, err := s.Run(ctx, tc.shape, tc.inputs, WithColumnarResult())
			if err != nil {
				t.Fatalf("columnar Run: %v", err)
			}
			if col.All != nil || col.Columnar == nil {
				t.Fatalf("columnar Run: All=%v Columnar=%v, want nil map + columnar buffer", col.All, col.Columnar)
			}
			sameReport(t, "columnar vs core", col, want)
		})
	}
}

// TestPredictBoundMatchLegacy: the Predict and Bound verbs agree with
// the legacy estimate functions, and the bound is never above the
// estimate for the kinds where both are defined.
func TestPredictBoundMatchLegacy(t *testing.T) {
	opt := Options{TR: 3}
	type pair struct {
		name         string
		verb, legacy float64
	}
	p, b := 64, 48
	pairs := []pair{
		{"reduce", Predict(Shape{Kind: KindReduce, Alg: Chain, P: p, B: b}, WithOptions(opt)), PredictReduce(Chain, p, b, opt)},
		{"allreduce", Predict(Shape{Kind: KindAllReduce, Alg: AutoGen, P: p, B: b}, WithOptions(opt)), PredictAllReduce(AutoGen, p, b, opt)},
		{"broadcast", Predict(Shape{Kind: KindBroadcast, P: p, B: b}, WithOptions(opt)), PredictBroadcast(p, b, opt)},
		{"reduce2d", Predict(Shape{Kind: KindReduce2D, Alg2D: XYChain, Width: 8, Height: 8, B: b}, WithOptions(opt)), PredictReduce2D(XYChain, 8, 8, b, opt)},
		{"allreduce2d", Predict(Shape{Kind: KindAllReduce2D, Alg2D: Auto2D, Width: 8, Height: 8, B: b}, WithOptions(opt)), PredictAllReduce2D(Auto2D, 8, 8, b, opt)},
		{"scatter", Predict(Shape{Kind: KindScatter, P: p, B: b}, WithOptions(opt)), PredictScatter(p, b, opt)},
		{"gather", Predict(Shape{Kind: KindGather, P: p, B: b}, WithOptions(opt)), PredictGather(p, b, opt)},
		{"reducescatter", Predict(Shape{Kind: KindReduceScatter, P: p, B: b}, WithOptions(opt)), PredictReduceScatter(p, b, opt)},
		{"allgather", Predict(Shape{Kind: KindAllGather, P: p, B: b}, WithOptions(opt)), PredictAllGather(p, b, opt)},
		{"midroot", Predict(Shape{Kind: KindAllReduceMidRoot, Alg: Tree, P: p, B: b}, WithOptions(opt)), PredictAllReduceMidRoot(Tree, p, b, opt)},
		{"bound-reduce", Bound(Shape{Kind: KindReduce, P: p, B: b}, WithOptions(opt)), LowerBoundReduce(p, b, opt)},
	}
	for _, pr := range pairs {
		if pr.verb != pr.legacy {
			t.Errorf("%s: verb %g, legacy %g", pr.name, pr.verb, pr.legacy)
		}
	}
	if math.IsNaN(Predict(Shape{Kind: "nope", B: 1})) != true {
		t.Error("Predict of an unknown kind must be NaN")
	}
	if !math.IsNaN(Bound(Shape{Kind: "nope", B: 1})) {
		t.Error("Bound of an unknown kind must be NaN")
	}
	for _, tc := range apiCases() {
		bd, pd := Bound(tc.shape), Predict(tc.shape)
		if math.IsNaN(bd) || bd <= 0 || bd > pd+1e-9 {
			t.Errorf("%s: bound %g vs predict %g — bound must be positive and <= estimate", tc.name, bd, pd)
		}
	}
	// A session Predict/Bound defaults to the session's options.
	s := NewSession(SessionConfig{Options: opt})
	sh := Shape{Kind: KindReduce, Alg: Chain, P: p, B: b}
	if got, want := s.Predict(sh), PredictReduce(Chain, p, b, opt); got != want {
		t.Errorf("Session.Predict %g, want %g", got, want)
	}
	if got, want := s.Bound(sh), LowerBoundReduce(p, b, opt); got != want {
		t.Errorf("Session.Bound %g, want %g", got, want)
	}
}

// TestShapeValidateTyped: Validate rejects malformed shapes with errors
// wrapping ErrBadShape and accepts every runnable case shape.
func TestShapeValidateTyped(t *testing.T) {
	bad := []Shape{
		{}, // no kind, no B
		{Kind: KindReduce, P: 4, B: 0, Alg: Auto, Op: Sum},                      // empty vector
		{Kind: KindReduce, P: 0, B: 4, Alg: Auto, Op: Sum},                      // no PEs
		{Kind: KindReduce, P: 4, B: 4, Alg: "warp", Op: Sum},                    // unknown algorithm
		{Kind: KindReduce, P: 4, B: 4, Alg: Ring, Op: Sum},                      // ring is AllReduce-only
		{Kind: KindReduce, P: 4, B: 4, Alg: Auto, Op: 99},                       // unknown op
		{Kind: KindReduce2D, Width: 0, Height: 3, B: 4, Alg2D: Auto2D, Op: Sum}, // degenerate grid
		{Kind: KindReduce2D, Width: 3, Height: 3, B: 4, Alg2D: "diag", Op: Sum}, // unknown 2D mapping
		{Kind: KindBroadcast, P: 0, B: 4},                                       // no PEs
		{Kind: KindGather, P: 1, B: 4},                                          // chunked kinds need a real split
		{Kind: KindScatter, P: 1, B: 4},                                         // (the core builders reject one PE)
		{Kind: KindReduceScatter, P: 1, B: 4, Op: Sum},
		{Kind: KindAllGather, P: 1, B: 4},
		{Kind: "transpose", P: 4, B: 4}, // unknown kind
	}
	for _, sh := range bad {
		if err := sh.Validate(); !errors.Is(err, ErrBadShape) {
			t.Errorf("Validate(%+v) = %v, want ErrBadShape", sh, err)
		}
	}
	for _, tc := range apiCases() {
		if err := tc.shape.Validate(); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", tc.name, err)
		}
	}
	// Irrelevant fields are ignored, mirroring plan-key canonicalisation.
	if err := (Shape{Kind: KindBroadcast, P: 4, B: 4, Alg: "junk", Alg2D: "junk", Op: 99}).Validate(); err != nil {
		t.Errorf("broadcast with stray algorithm fields: %v, want nil", err)
	}
}

// TestBadInputsTyped: ragged, empty or mis-sized inputs — which once
// reached the dims/core paths unvalidated — surface as ErrBadShape from
// the verbs and from every legacy wrapper.
func TestBadInputsTyped(t *testing.T) {
	s := NewSession(SessionConfig{})
	defer s.Close()
	tn := s.WithTenant("edge", TenantConfig{})
	ctx := context.Background()
	ragged := [][]float32{{1, 2}, {3}, {4, 5}}
	cases := map[string]func() error{
		"one-shot ragged":          func() error { _, err := Reduce(ragged, Auto, Sum, Options{}); return err },
		"one-shot empty":           func() error { _, err := AllReduce(nil, Auto, Sum, Options{}); return err },
		"one-shot empty broadcast": func() error { _, err := Broadcast(nil, 4, Options{}); return err },
		"one-shot bad chunks": func() error {
			_, err := Gather([][]float32{{1}, {2, 3, 4, 5, 6}}, Options{})
			return err
		},
		"session ragged": func() error { _, err := s.Reduce(ragged, Auto, Sum); return err },
		"tenant ragged":  func() error { _, err := tn.Reduce(ctx, ragged, Auto, Sum); return err },
		"run arity": func() error {
			_, err := Run(ctx, Shape{Kind: KindReduce, Alg: Auto, P: 4, B: 2, Op: Sum}, ragged)
			return err
		},
		"batch entry": func() error {
			_, err := s.RunBatch(ctx, Shape{Kind: KindReduce, Alg: Auto, P: 3, B: 2, Op: Sum},
				[][][]float32{constVectors(3, 2), ragged})
			return err
		},
		"submit future": func() error {
			return Submit(ctx, Shape{Kind: KindReduce, Alg: Auto, P: 3, B: 2, Op: Sum}, ragged).Err()
		},
	}
	for name, f := range cases {
		if err := f(); !errors.Is(err, ErrBadShape) {
			t.Errorf("%s: %v, want ErrBadShape", name, err)
		}
	}
}

// TestRunBatchMatchesSingleRuns: a batch replay is bit-identical, entry
// by entry, to the same inputs run one at a time — in both result
// layouts — and batch reports never alias each other's data.
func TestRunBatchMatchesSingleRuns(t *testing.T) {
	sh := Shape{Kind: KindAllReduce, Alg: TwoPhase, P: 8, B: 6, Op: Sum}
	batches := make([][][]float32, 5)
	for i := range batches {
		batches[i] = apiVectors(8, 6, float32(i+1))
	}
	ctx := context.Background()
	s := NewSession(SessionConfig{})
	defer s.Close()

	singles := make([]*Report, len(batches))
	for i, inputs := range batches {
		rep, err := s.Run(ctx, sh, inputs)
		if err != nil {
			t.Fatal(err)
		}
		singles[i] = rep
	}

	for _, mode := range []struct {
		name string
		opts []RunOption
	}{{"map", nil}, {"columnar", []RunOption{WithColumnarResult()}}} {
		t.Run(mode.name, func(t *testing.T) {
			for _, runner := range []struct {
				name string
				run  func() ([]*Report, error)
			}{
				{"package", func() ([]*Report, error) { return RunBatch(ctx, sh, batches, mode.opts...) }},
				{"session", func() ([]*Report, error) { return s.RunBatch(ctx, sh, batches, mode.opts...) }},
			} {
				reps, err := runner.run()
				if err != nil {
					t.Fatalf("%s: %v", runner.name, err)
				}
				if len(reps) != len(batches) {
					t.Fatalf("%s: %d reports, want %d", runner.name, len(reps), len(batches))
				}
				for i, rep := range reps {
					sameReport(t, runner.name, rep, singles[i])
				}
				// Entries hold distinct data, so reports sharing a buffer
				// would have collided; verify entry 0 kept its own root.
				sameFloats(t, runner.name+" entry 0 retained", reps[0].Root, singles[0].Root)
			}
		})
	}

	// Empty batch: no reports, no error.
	if reps, err := s.RunBatch(ctx, sh, nil); err != nil || len(reps) != 0 {
		t.Fatalf("empty batch: %v, %v", reps, err)
	}
}

// TestSessionRemoveTenant: the lifecycle half of per-user tenancy at the
// public surface — removal drops the tenant's accounting, frees its
// name, and the session keeps serving.
func TestSessionRemoveTenant(t *testing.T) {
	s := NewSession(SessionConfig{})
	defer s.Close()
	ctx := context.Background()
	vecs := constVectors(8, 4)
	user := s.WithTenant("user-17", TenantConfig{Weight: 4, Priority: Interactive})
	if _, err := user.Reduce(ctx, vecs, Chain, Sum); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.SchedStats().Tenants["user-17"]; !ok {
		t.Fatal("tenant missing from stats before removal")
	}
	if !s.RemoveTenant("user-17") {
		t.Fatal("RemoveTenant reported the tenant absent")
	}
	if _, ok := s.SchedStats().Tenants["user-17"]; ok {
		t.Fatal("removed tenant still in stats")
	}
	if s.RemoveTenant("user-17") {
		t.Fatal("double removal reported true")
	}
	// The stale handle still works; it resubmits under a fresh
	// default-config tenant of the same name.
	if _, err := user.Reduce(ctx, vecs, Chain, Sum); err != nil {
		t.Fatalf("stale handle after removal: %v", err)
	}
	if ts := s.SchedStats().Tenants["user-17"]; ts.Served != 1 || ts.Weight != 1 {
		t.Fatalf("recreated tenant ledger %+v, want fresh weight-1 tenant with one served", ts)
	}
	if !errors.Is(ErrTenantRemoved, ErrTenantRemoved) {
		t.Fatal("ErrTenantRemoved identity")
	}
}

// TestColumnarRoot2D: the columnar root and At lookups agree with the
// map layout on a grid shape (exercising the row-major binary search).
func TestColumnarRoot2D(t *testing.T) {
	sh := Shape{Kind: KindAllReduce2D, Alg2D: XYStar, Width: 5, Height: 4, B: 3, Op: Sum}
	grid := apiVectors(20, 3, 8)
	ctx := context.Background()
	want, err := Run(ctx, sh, grid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(ctx, sh, grid, WithColumnarResult())
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 4; y++ {
		for x := 0; x < 5; x++ {
			c := mesh.Coord{X: x, Y: y}
			sameFloats(t, "grid PE", got.Columnar.At(c), want.All[c])
		}
	}
	sameFloats(t, "grid root", got.Root, want.Root)
}
