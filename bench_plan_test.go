package wse

// Benchmarks of the compiled-plan subsystem: what a collective costs when
// every call re-compiles (the one-shot API) versus replaying a cached
// plan (the Session API), and the plan-acquisition cost in isolation
// (full compile versus cache lookup). The headline numbers are written to
// BENCH_plan.json as a trajectory point.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/plan"
)

const (
	planBenchP = 512
	planBenchB = 16
)

func planBenchReq() plan.Request {
	return plan.Request{
		Kind: plan.Reduce1D,
		Alg:  core.Auto,
		P:    planBenchP,
		B:    planBenchB,
		Op:   fabric.OpSum,
	}
}

// BenchmarkPlanColdVsReplay measures the four corners of the plan
// subsystem on a model-driven (Auto) 1D Reduce: end-to-end one-shot
// (compile every call) vs Session replay (cached plan), and plan
// acquisition alone, compile vs cache hit. It writes BENCH_plan.json.
func BenchmarkPlanColdVsReplay(b *testing.B) {
	vectors := constVectors(planBenchP, planBenchB)
	point := map[string]any{
		"bench": "plan-cold-vs-replay",
		"shape": map[string]any{
			"kind": "reduce1d", "alg": "auto",
			"p": planBenchP, "b": planBenchB,
		},
	}

	var coldNs, replayNs float64
	b.Run("cold-compile-and-run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Reduce(vectors, Auto, Sum, Options{}); err != nil {
				b.Fatal(err)
			}
		}
		coldNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	sess := NewSession(SessionConfig{})
	if _, err := sess.Reduce(vectors, Auto, Sum); err != nil {
		b.Fatal(err)
	}
	b.Run("cached-replay-and-run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sess.Reduce(vectors, Auto, Sum); err != nil {
				b.Fatal(err)
			}
		}
		replayNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	var compileNs, lookupNs float64
	b.Run("compile-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Compile(planBenchReq()); err != nil {
				b.Fatal(err)
			}
		}
		compileNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	cache := plan.NewCache(8)
	if _, err := cache.Get(planBenchReq()); err != nil {
		b.Fatal(err)
	}
	b.Run("cache-lookup-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cache.Get(planBenchReq()); err != nil {
				b.Fatal(err)
			}
		}
		lookupNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	if replayNs > 0 && lookupNs > 0 {
		point["cold_ns_per_op"] = coldNs
		point["replay_ns_per_op"] = replayNs
		point["end_to_end_speedup"] = coldNs / replayNs
		point["compile_ns_per_op"] = compileNs
		point["lookup_ns_per_op"] = lookupNs
		// The headline: what a plan costs cold (full model-driven
		// compile) vs on a cache hit. End-to-end gains are bounded by
		// the cycle-level simulation, which both paths must pay.
		point["speedup"] = compileNs / lookupNs
		b.ReportMetric(coldNs/replayNs, "end-to-end-x")
		b.ReportMetric(compileNs/lookupNs, "acquisition-x")
		buf, err := json.MarshalIndent(point, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_plan.json", append(buf, '\n'), 0o644); err != nil {
			b.Logf("BENCH_plan.json not written: %v", err)
		}
	}
}

// BenchmarkSessionConcurrentReplay drives one cached plan from many
// goroutines to measure worker-pool throughput in collectives/second.
func BenchmarkSessionConcurrentReplay(b *testing.B) {
	vectors := constVectors(planBenchP, planBenchB)
	sess := NewSession(SessionConfig{})
	if _, err := sess.Reduce(vectors, Auto, Sum); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := sess.Reduce(vectors, Auto, Sum); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "collectives/s")
}
