package wse

// Benchmarks of the compiled-plan subsystem: what a collective costs when
// every call re-compiles (the one-shot API) versus replaying a cached
// plan (the Session API), and the plan-acquisition cost in isolation
// (full compile versus cache lookup). The headline numbers are written to
// BENCH_plan.json as a trajectory point.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/plan"
)

const (
	planBenchP = 512
	planBenchB = 16
)

func planBenchReq() plan.Request {
	return plan.Request{
		Kind: plan.Reduce1D,
		Alg:  core.Auto,
		P:    planBenchP,
		B:    planBenchB,
		Op:   fabric.OpSum,
	}
}

// BenchmarkPlanColdVsReplay measures the four corners of the plan
// subsystem on a model-driven (Auto) 1D Reduce: end-to-end one-shot
// (compile every call) vs Session replay (cached plan), and plan
// acquisition alone, compile vs cache hit. It writes BENCH_plan.json.
func BenchmarkPlanColdVsReplay(b *testing.B) {
	vectors := constVectors(planBenchP, planBenchB)
	point := map[string]any{
		"bench": "plan-cold-vs-replay",
		"shape": map[string]any{
			"kind": "reduce1d", "alg": "auto",
			"p": planBenchP, "b": planBenchB,
		},
	}
	benchHostMeta(point)

	var coldNs, replayNs float64
	b.Run("cold-compile-and-run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Reduce(vectors, Auto, Sum, Options{}); err != nil {
				b.Fatal(err)
			}
		}
		coldNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	sess := NewSession(SessionConfig{})
	if _, err := sess.Reduce(vectors, Auto, Sum); err != nil {
		b.Fatal(err)
	}
	b.Run("cached-replay-and-run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sess.Reduce(vectors, Auto, Sum); err != nil {
				b.Fatal(err)
			}
		}
		replayNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	var compileNs, lookupNs float64
	b.Run("compile-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Compile(planBenchReq()); err != nil {
				b.Fatal(err)
			}
		}
		compileNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	cache := plan.NewCache(8)
	if _, err := cache.Get(planBenchReq()); err != nil {
		b.Fatal(err)
	}
	b.Run("cache-lookup-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cache.Get(planBenchReq()); err != nil {
				b.Fatal(err)
			}
		}
		lookupNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	if replayNs > 0 && lookupNs > 0 {
		point["cold_ns_per_op"] = coldNs
		point["replay_ns_per_op"] = replayNs
		point["end_to_end_speedup"] = coldNs / replayNs
		point["compile_ns_per_op"] = compileNs
		point["lookup_ns_per_op"] = lookupNs
		// The headline: what a plan costs cold (full model-driven
		// compile) vs on a cache hit. End-to-end gains are bounded by
		// the cycle-level simulation, which both paths must pay.
		point["speedup"] = compileNs / lookupNs
		b.ReportMetric(coldNs/replayNs, "end-to-end-x")
		b.ReportMetric(compileNs/lookupNs, "acquisition-x")
		buf, err := json.MarshalIndent(point, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_plan.json", append(buf, '\n'), 0o644); err != nil {
			b.Logf("BENCH_plan.json not written: %v", err)
		}
	}
}

// replayMode is one execution strategy of the replay-path benchmark.
type replayMode struct {
	name   string
	shards int
	run    func(p *plan.Plan, inputs [][]float32) error
}

func replayModes() []replayMode {
	// At least 4 bands so single-core hosts still exercise the sharded
	// code path (showing its overhead parity; wall-clock wins need cores).
	shards := runtime.GOMAXPROCS(0)
	if shards < 4 {
		shards = 4
	}
	if shards > 8 {
		shards = 8
	}
	return []replayMode{
		{"serial-fresh", 0, func(p *plan.Plan, in [][]float32) error { _, err := p.ExecuteUnpooled(in); return err }},
		{"serial-pooled", 0, func(p *plan.Plan, in [][]float32) error { _, err := p.Execute(in); return err }},
		{"sharded-pooled", shards, func(p *plan.Plan, in [][]float32) error { _, err := p.Execute(in); return err }},
	}
}

// BenchmarkFabricReplayModes measures what one cache-hit replay costs
// under the three engine execution modes — fresh fabric per run (PR 1's
// replay path), pooled reset-able fabric, and pooled + sharded — on the
// tracked 1D shape and a 2D shape. It writes the ns/op and allocs/op of
// every (shape, mode) pair to BENCH_fabric.json so the replay-path
// trajectory is comparable across PRs. Sharding is expected to lose on
// the 1D shape (its per-cycle wavefront is a handful of PEs, below the
// barrier cost) and pay on wide 2D wavefronts.
func BenchmarkFabricReplayModes(b *testing.B) {
	shapes := []struct {
		name string
		req  plan.Request
	}{
		{"reduce1d-p512-b16", planBenchReq()},
		{"reduce2d-64x64-b64", plan.Request{
			Kind: plan.Reduce2D, Alg2D: core.Auto2D,
			Width: 64, Height: 64, B: 64, Op: fabric.OpSum,
		}},
	}
	point := map[string]any{"bench": "fabric-replay-modes"}
	// Sharded wall-clock wins need cores: the host stamp keeps a parity
	// result on a single-core box from being misread as "sharding is free
	// but useless".
	benchHostMeta(point)
	for _, shape := range shapes {
		for _, mode := range replayModes() {
			req := shape.req
			req.Opt.Shards = mode.shards
			pl, err := plan.Compile(req)
			if err != nil {
				b.Fatal(err)
			}
			inputs := replayInputs(req)
			if err := mode.run(pl, inputs); err != nil { // warm the pool
				b.Fatal(err)
			}
			b.Run(shape.name+"/"+mode.name, func(b *testing.B) {
				b.ReportAllocs()
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := mode.run(pl, inputs); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				runtime.ReadMemStats(&after)
				point[shape.name+"/"+mode.name+"/ns_per_op"] = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				point[shape.name+"/"+mode.name+"/allocs_per_op"] = float64(after.Mallocs-before.Mallocs) / float64(b.N)
			})
		}
	}
	buf, err := json.MarshalIndent(point, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_fabric.json", append(buf, '\n'), 0o644); err != nil {
		b.Logf("BENCH_fabric.json not written: %v", err)
	}
}

// replayInputs builds all-ones inputs of the right arity for a request.
func replayInputs(req plan.Request) [][]float32 {
	n := req.P
	if req.Kind == plan.Reduce2D || req.Kind == plan.AllReduce2D {
		n = req.Width * req.Height
	}
	out := make([][]float32, n)
	for i := range out {
		out[i] = make([]float32, req.B)
		for j := range out[i] {
			out[i][j] = 1
		}
	}
	return out
}

// TestPooledReplayAllocGuard is the allocs/op regression guard run by CI:
// a cache-hit pooled replay must not construct a fabric (fabric.New for
// the benchmark shape costs thousands of allocations; a pooled replay
// pays only input binding and result assembly). The guard is relative so
// it tracks the shape rather than a brittle absolute count.
func TestPooledReplayAllocGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomises sync.Pool and inflates alloc counts")
	}
	pl, err := plan.Compile(planBenchReq())
	if err != nil {
		t.Fatal(err)
	}
	inputs := replayInputs(planBenchReq())
	if _, err := pl.Execute(inputs); err != nil { // warm the pool
		t.Fatal(err)
	}
	fresh := testing.AllocsPerRun(20, func() {
		if _, err := pl.ExecuteUnpooled(inputs); err != nil {
			t.Fatal(err)
		}
	})
	pooled := testing.AllocsPerRun(20, func() {
		if _, err := pl.Execute(inputs); err != nil {
			t.Fatal(err)
		}
	})
	if pooled > fresh/4 {
		t.Fatalf("pooled replay allocates %.0f allocs/op vs %.0f fresh — the pool is not eliding fabric construction", pooled, fresh)
	}
}

// BenchmarkSessionConcurrentReplay drives one cached plan from many
// goroutines to measure worker-pool throughput in collectives/second.
func BenchmarkSessionConcurrentReplay(b *testing.B) {
	vectors := constVectors(planBenchP, planBenchB)
	sess := NewSession(SessionConfig{})
	if _, err := sess.Reduce(vectors, Auto, Sum); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := sess.Reduce(vectors, Auto, Sum); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "collectives/s")
}
