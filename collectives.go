package wse

// Extension collectives beyond the paper's Reduce/AllReduce/Broadcast:
// the remaining MPI-style operations (§2.1 frames the work in MPI
// collective terms), built on the same fabric substrate. Scatter, Gather,
// ReduceScatter and AllGather use balanced per-PE chunks (chunk j belongs
// to PE j; Chunks reports the layout), and AllReduceMidRoot is the
// root-placement optimisation §6.1 attributes to optimized stencil codes.

import (
	"context"

	"repro/internal/core"
	"repro/internal/model"
)

// Chunks returns the balanced chunk offsets and sizes the chunked
// collectives use for b elements over p PEs: chunk j spans
// [off[j], off[j]+sz[j]) and belongs to PE j.
func Chunks(p, b int) (off, sz []int) { return core.Chunks(p, b) }

// Scatter delivers chunk j of data to PE j along a row of p PEs (chunk 0
// stays at the root). Report.All[pe] holds each PE's chunk.
func Scatter(data []float32, p int, opt Options) (*Report, error) {
	return Run(context.Background(), Shape{Kind: KindScatter, P: p, B: len(data)}, [][]float32{data}, WithOptions(opt))
}

// Gather assembles per-PE chunks into the full vector at the leftmost PE
// (Report.Root). chunks[j] is PE j's contribution, sized per Chunks.
func Gather(chunks [][]float32, opt Options) (*Report, error) {
	return Run(context.Background(), chunkShape(KindGather, chunks), chunks, WithOptions(opt))
}

// ReduceScatter combines one vector per PE elementwise and leaves chunk j
// of the combination on PE j, at its chunk offset within Report.All[pe].
// It is the first phase of the ring AllReduce (§6.2).
func ReduceScatter(vectors [][]float32, op ReduceOp, opt Options) (*Report, error) {
	return Run(context.Background(), reduceShape(KindReduceScatter, vectors, "", op), vectors, WithOptions(opt))
}

// AllGather distributes per-PE chunks so every PE ends with the full
// vector; the second phase of the ring AllReduce.
func AllGather(chunks [][]float32, opt Options) (*Report, error) {
	return Run(context.Background(), chunkShape(KindAllGather, chunks), chunks, WithOptions(opt))
}

// AllReduceMidRoot is AllReduce with the reduction rooted at the middle
// PE and a bidirectional flood outwards, roughly halving the distance and
// depth terms of the naive end-rooted composition (§6.1).
func AllReduceMidRoot(vectors [][]float32, alg Algorithm, op ReduceOp, opt Options) (*Report, error) {
	return Run(context.Background(), reduceShape(KindAllReduceMidRoot, vectors, alg, op), vectors, WithOptions(opt))
}

// PredictScatter, PredictGather, PredictReduceScatter, PredictAllGather
// and PredictAllReduceMidRoot expose the model estimates for the
// extension collectives.
func PredictScatter(p, b int, opt Options) float64 {
	return Predict(Shape{Kind: KindScatter, P: p, B: b}, WithOptions(opt))
}

// PredictGather estimates the chunked gather.
func PredictGather(p, b int, opt Options) float64 {
	return Predict(Shape{Kind: KindGather, P: p, B: b}, WithOptions(opt))
}

// PredictReduceScatter estimates the ring reduce-scatter phase.
func PredictReduceScatter(p, b int, opt Options) float64 {
	return Predict(Shape{Kind: KindReduceScatter, P: p, B: b}, WithOptions(opt))
}

// PredictAllGather estimates the ring allgather phase.
func PredictAllGather(p, b int, opt Options) float64 {
	return Predict(Shape{Kind: KindAllGather, P: p, B: b}, WithOptions(opt))
}

// PredictAllReduceMidRoot estimates the middle-root AllReduce.
func PredictAllReduceMidRoot(alg Algorithm, p, b int, opt Options) float64 {
	return Predict(Shape{Kind: KindAllReduceMidRoot, Alg: alg, P: p, B: b}, WithOptions(opt))
}

func params(opt Options) model.Params { return core.Params(opt) }
