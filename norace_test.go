//go:build !race

package wse

// raceEnabled reports whether this binary was built with the race detector.
const raceEnabled = false
