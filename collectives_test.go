package wse

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestScatterGatherRoundTrip(t *testing.T) {
	for _, p := range []int{2, 5, 16} {
		for _, b := range []int{p, 3*p + 1, 16 * p} {
			data := make([]float32, b)
			for i := range data {
				data[i] = float32(i) * 0.5
			}
			rep, err := Scatter(data, p, Options{})
			if err != nil {
				t.Fatalf("scatter p=%d b=%d: %v", p, b, err)
			}
			off, sz := Chunks(p, b)
			chunks := make([][]float32, p)
			for j := 0; j < p; j++ {
				got := rep.All[Coord{X: j, Y: 0}]
				chunk := got[:sz[j]]
				for e := 0; e < sz[j]; e++ {
					if chunk[e] != data[off[j]+e] {
						t.Fatalf("p=%d b=%d chunk %d elem %d: %v want %v", p, b, j, e, chunk[e], data[off[j]+e])
					}
				}
				chunks[j] = append([]float32(nil), chunk...)
			}
			// Gather the scattered chunks back: identity round trip.
			rep2, err := Gather(chunks, Options{})
			if err != nil {
				t.Fatalf("gather p=%d b=%d: %v", p, b, err)
			}
			for i := range data {
				if rep2.Root[i] != data[i] {
					t.Fatalf("p=%d b=%d roundtrip elem %d: %v want %v", p, b, i, rep2.Root[i], data[i])
				}
			}
		}
	}
}

func TestReduceScatterThenAllGatherEqualsAllReduce(t *testing.T) {
	// The MPI identity: ReduceScatter ∘ AllGather == AllReduce.
	for _, p := range []int{4, 8, 13} {
		b := 4*p + 3
		vecs, want := vectorsFor(p, b, int64(p))
		rs, err := ReduceScatter(vecs, Sum, Options{})
		if err != nil {
			t.Fatalf("reduce-scatter p=%d: %v", p, err)
		}
		off, sz := Chunks(p, b)
		chunks := make([][]float32, p)
		for j := 0; j < p; j++ {
			acc := rs.All[Coord{X: j, Y: 0}]
			chunks[j] = append([]float32(nil), acc[off[j]:off[j]+sz[j]]...)
			// Verify the reduce-scatter chunk itself.
			for e := 0; e < sz[j]; e++ {
				if d := math.Abs(float64(chunks[j][e] - want[off[j]+e])); d > 1e-2 {
					t.Fatalf("p=%d chunk %d elem %d: %v want %v", p, j, e, chunks[j][e], want[off[j]+e])
				}
			}
		}
		ag, err := AllGather(chunks, Options{})
		if err != nil {
			t.Fatalf("allgather p=%d: %v", p, err)
		}
		for c, v := range ag.All {
			requireClose(t, v, want, fmt.Sprintf("p=%d %v", p, c))
		}
	}
}

func TestAllReduceMidRoot(t *testing.T) {
	for _, alg := range []Algorithm{Chain, Tree, TwoPhase, AutoGen, Auto} {
		for _, p := range []int{2, 3, 9, 32} {
			b := 24
			vecs, want := vectorsFor(p, b, int64(p*7))
			rep, err := AllReduceMidRoot(vecs, alg, Sum, Options{})
			if err != nil {
				t.Fatalf("%s p=%d: %v", alg, p, err)
			}
			for c, v := range rep.All {
				requireClose(t, v, want, fmt.Sprintf("%s p=%d %v", alg, p, c))
			}
		}
	}
}

func TestMidRootBeatsEndRootForWideRows(t *testing.T) {
	// The point of the optimisation: halved distance/depth terms. For a
	// wide row and intermediate vectors the middle-root AllReduce should
	// beat the end-rooted one with the same base pattern.
	p, b := 129, 64
	vecs, _ := vectorsFor(p, b, 3)
	end, err := AllReduce(vecs, TwoPhase, Sum, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := AllReduceMidRoot(vecs, TwoPhase, Sum, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mid.Cycles >= end.Cycles {
		t.Errorf("mid-root %d cycles, end-root %d: optimisation did not pay", mid.Cycles, end.Cycles)
	}
}

func TestRingAllReducePublicAPI(t *testing.T) {
	for _, alg := range []Algorithm{Ring, RingDP} {
		p, b := 8, 64
		vecs, want := vectorsFor(p, b, 11)
		rep, err := AllReduce(vecs, alg, Sum, Options{})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		for c, v := range rep.All {
			requireClose(t, v, want, fmt.Sprintf("%s %v", alg, c))
		}
		if rep.Predicted <= 0 {
			t.Errorf("%s: prediction %v", alg, rep.Predicted)
		}
	}
	// Ring is AllReduce-only.
	if _, err := Reduce([][]float32{{1}, {2}}, Ring, Sum, Options{}); err == nil {
		t.Error("Reduce accepted the ring pattern")
	}
}

func TestChunksProperty(t *testing.T) {
	f := func(pRaw, bRaw uint16) bool {
		p := int(pRaw%64) + 1
		b := int(bRaw%2048) + p
		off, sz := Chunks(p, b)
		total := 0
		for j := 0; j < p; j++ {
			if sz[j] < b/p || sz[j] > b/p+1 {
				return false
			}
			if off[j] != total {
				return false
			}
			total += sz[j]
		}
		return total == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtensionPredictions(t *testing.T) {
	for _, fn := range []func() float64{
		func() float64 { return PredictScatter(64, 512, Options{}) },
		func() float64 { return PredictGather(64, 512, Options{}) },
		func() float64 { return PredictReduceScatter(64, 512, Options{}) },
		func() float64 { return PredictAllGather(64, 512, Options{}) },
		func() float64 { return PredictAllReduceMidRoot(TwoPhase, 64, 512, Options{}) },
	} {
		if v := fn(); v <= 0 || math.IsNaN(v) {
			t.Errorf("prediction %v", v)
		}
	}
	// Mid-root should predict better than end-root for wide rows.
	if PredictAllReduceMidRoot(TwoPhase, 257, 64, Options{}) >= PredictAllReduce(TwoPhase, 257, 64, Options{}) {
		t.Error("mid-root prediction not better for wide rows")
	}
}
