package serve

// The fleet surface end to end over httptest: the plan-blob endpoint's
// hit/miss/reject taxonomy, remote warming, resolver metrics export, and
// the consistent-hash front — sticky routing, worker-death failover with
// zero client-visible 5xx, and async jobs polled through the front.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	wse "repro"
	"repro/internal/planstore"
	"repro/internal/resolve"
)

func TestPlanBlobEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Make one plan resident the way a peer's would be: by serving.
	resp, _ := post(t, ts.URL+"/v1/run", runBody("reduce1d", 4, 4), nil)
	if resp.StatusCode != 200 {
		t.Fatalf("run: %d", resp.StatusCode)
	}
	key := wse.KeyString(wse.Shape{Kind: wse.KindReduce, Alg: wse.Auto, P: 4, B: 4, Op: wse.Sum}, wse.Options{})

	resp, body := get(t, ts.URL+"/v1/plans/"+url.PathEscape(key))
	if resp.StatusCode != 200 {
		t.Fatalf("blob fetch: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	p, _, err := planstore.Decode(body)
	if err != nil {
		t.Fatalf("served blob does not decode: %v", err)
	}
	if p.Key.String() != key {
		t.Errorf("blob holds plan for %s, asked %s", p.Key, key)
	}

	// A well-formed key the daemon does not hold: 404, and crucially no
	// compile on the peer's behalf — the plan must still be non-resident.
	cold := wse.KeyString(wse.Shape{Kind: wse.KindReduce, Alg: wse.Auto, P: 16, B: 4, Op: wse.Sum}, wse.Options{})
	if resp, _ := get(t, ts.URL+"/v1/plans/"+url.PathEscape(cold)); resp.StatusCode != 404 {
		t.Errorf("cold key = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/v1/plans/"+url.PathEscape(cold)); resp.StatusCode != 404 {
		t.Errorf("cold key second fetch = %d, want 404 still (no compile-by-proxy)", resp.StatusCode)
	}

	if resp, _ := get(t, ts.URL+"/v1/plans/not-a-key"); resp.StatusCode != 400 {
		t.Errorf("malformed key = %d, want 400", resp.StatusCode)
	}
}

func TestWarmEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"shapes":[{"kind":"reduce1d","p":4,"b":4,"op":"sum"},{"kind":"allgather","p":8,"b":16},{"kind":"bogus","p":4,"b":4}]}`
	resp, out := post(t, ts.URL+"/v1/warm", body, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("warm: %d %s", resp.StatusCode, out)
	}
	var wr warmResponse
	if err := json.Unmarshal(out, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Warmed != 2 || wr.Resident != 0 || wr.Failed != 1 || len(wr.Errors) != 1 {
		t.Fatalf("first warm = %+v, want 2 warmed, 1 failed", wr)
	}
	// Idempotent: the same list again is all resident.
	_, out = post(t, ts.URL+"/v1/warm", body, nil)
	if err := json.Unmarshal(out, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Warmed != 0 || wr.Resident != 2 || wr.Failed != 1 {
		t.Fatalf("second warm = %+v, want 2 resident", wr)
	}
}

// TestResolverMetrics wires a real chain into the session and checks the
// per-stage counters surface in /metrics after traffic.
func TestResolverMetrics(t *testing.T) {
	chain := resolve.Sequential(resolve.Compiler())
	sess := wse.NewSession(wse.SessionConfig{Resolver: chain})
	_, ts := newTestServer(t, Config{Session: sess, Resolver: chain})

	if resp, _ := post(t, ts.URL+"/v1/run", runBody("reduce1d", 4, 4), nil); resp.StatusCode != 200 {
		t.Fatalf("run: %d", resp.StatusCode)
	}
	_, body := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		`wse_resolve_lookups_total{stage="sequential"} 1`,
		`wse_resolve_hits_total{stage="sequential"} 1`,
		`wse_resolve_lookups_total{stage="compile"} 1`,
		`wse_resolve_latency_seconds_total{stage="compile"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// countingHandler fronts a worker's handler, counting verb requests so
// routing tests can see where traffic landed.
type countingHandler struct {
	h    http.Handler
	hits atomic.Int64
}

func (c *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		c.hits.Add(1)
	}
	c.h.ServeHTTP(w, r)
}

func newWorker(t *testing.T) (*countingHandler, *httptest.Server) {
	t.Helper()
	sess := wse.NewSession(wse.SessionConfig{})
	s := New(Config{Session: sess})
	ch := &countingHandler{h: s.Handler()}
	ts := httptest.NewServer(ch)
	t.Cleanup(func() {
		ts.Close()
		s.stopSweeper()
		sess.Close()
	})
	return ch, ts
}

func newTestFront(t *testing.T, workers ...string) *httptest.Server {
	t.Helper()
	f := NewFront(FrontConfig{Workers: workers, Cooldown: time.Minute})
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestFrontStickyRouting: the same shape must land on the same worker
// every time, and across enough distinct shapes both workers see work.
func TestFrontStickyRouting(t *testing.T) {
	c0, w0 := newWorker(t)
	c1, w1 := newWorker(t)
	front := newTestFront(t, w0.URL, w1.URL)

	counters := []*atomic.Int64{&c0.hits, &c1.hits}
	touched := map[int]bool{}
	for p := 2; p <= 16; p += 2 {
		body := runBody("reduce1d", p, 4)
		var owner int
		for rep := 0; rep < 2; rep++ {
			before := []int64{counters[0].Load(), counters[1].Load()}
			resp, out := post(t, front.URL+"/v1/run", body, nil)
			if resp.StatusCode != 200 {
				t.Fatalf("p=%d rep=%d: %d %s", p, rep, resp.StatusCode, out)
			}
			landed := -1
			for i, c := range counters {
				if c.Load() > before[i] {
					landed = i
				}
			}
			if rep == 0 {
				owner = landed
				touched[landed] = true
			} else if landed != owner {
				t.Errorf("p=%d bounced between workers %d and %d", p, owner, landed)
			}
		}
	}
	if len(touched) != 2 {
		t.Errorf("8 distinct shapes all routed to one worker: %v", touched)
	}
}

// TestFrontFailover kills the worker that owns a shape and asserts the
// front sheds to the survivor with no client-visible failure.
func TestFrontFailover(t *testing.T) {
	_, w0 := newWorker(t)
	_, w1 := newWorker(t)
	workers := []string{w0.URL, w1.URL}
	front := newTestFront(t, workers...)
	ring := resolve.NewRing(workers, 0)

	// Find a shape owned by each worker so the kill is guaranteed to
	// matter for at least one request.
	shapeFor := map[string]string{}
	for p := 2; p <= 32 && len(shapeFor) < 2; p += 2 {
		sh := wse.Shape{Kind: wse.KindReduce, Alg: wse.Auto, P: p, B: 4, Op: wse.Sum}
		owner := ring.Owner(wse.KeyString(sh, wse.Options{}))
		if _, ok := shapeFor[owner]; !ok {
			shapeFor[owner] = runBody("reduce1d", p, 4)
		}
	}
	if len(shapeFor) != 2 {
		t.Fatalf("could not find shapes for both workers")
	}

	w0.Close() // SIGKILL stand-in: connections now refused
	for owner, body := range shapeFor {
		resp, out := post(t, front.URL+"/v1/run", body, nil)
		if resp.StatusCode != 200 {
			t.Errorf("shape owned by %s after kill: %d %s", owner, resp.StatusCode, out)
		}
	}
	// And again: the dead worker is cooled down now, so the re-route is
	// direct (no per-request probe of the corpse).
	for _, body := range shapeFor {
		if resp, _ := post(t, front.URL+"/v1/run", body, nil); resp.StatusCode != 200 {
			t.Errorf("post-cooldown request failed: %d", resp.StatusCode)
		}
	}

	_, metrics := get(t, front.URL+"/metrics")
	if !strings.Contains(string(metrics), "wse_front_workers_down 1") {
		t.Errorf("metrics do not show the downed worker:\n%s", metrics)
	}
}

// TestFrontSubmitPoll drives the async tier through the front: the job
// id comes back worker-prefixed and polls route to the owning worker.
func TestFrontSubmitPoll(t *testing.T) {
	_, w0 := newWorker(t)
	_, w1 := newWorker(t)
	front := newTestFront(t, w0.URL, w1.URL)

	resp, out := post(t, front.URL+"/v1/submit", runBody("reduce1d", 4, 4), nil)
	if resp.StatusCode != 202 {
		t.Fatalf("submit: %d %s", resp.StatusCode, out)
	}
	var sub submitResponse
	if err := json.Unmarshal(out, &sub); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sub.ID, "w0.") && !strings.HasPrefix(sub.ID, "w1.") {
		t.Fatalf("job id %q lacks the worker prefix", sub.ID)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body := get(t, front.URL+"/v1/jobs/"+sub.ID)
		if resp.StatusCode != 200 {
			t.Fatalf("poll: %d %s", resp.StatusCode, body)
		}
		var job struct {
			State  string          `json:"state"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
		if job.State == "done" {
			if len(job.Result) == 0 {
				t.Fatal("done job carries no result")
			}
			break
		}
		if job.State == "failed" {
			t.Fatalf("job failed: %s", body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if resp, _ := get(t, front.URL+"/v1/jobs/no-such-prefix"); resp.StatusCode != 404 {
		t.Errorf("unprefixed job id = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get(t, front.URL+"/v1/jobs/w9.whatever"); resp.StatusCode != 404 {
		t.Errorf("out-of-range worker prefix = %d, want 404", resp.StatusCode)
	}
}

func TestFrontBadBody400(t *testing.T) {
	_, w0 := newWorker(t)
	front := newTestFront(t, w0.URL)
	if resp, _ := post(t, front.URL+"/v1/run", "{not json", nil); resp.StatusCode != 400 {
		t.Errorf("garbage body = %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(t, front.URL+"/v1/run", `{"shape":{"kind":"bogus","p":4,"b":4}}`, nil); resp.StatusCode != 400 {
		t.Errorf("bad shape = %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(t, front.URL+"/v1/warm", `{"shapes":[]}`, nil); resp.StatusCode != 400 {
		t.Errorf("empty warm = %d, want 400", resp.StatusCode)
	}
}

// TestFrontWorkerOwn4xxStreamsThrough: a worker's own rejection is the
// answer — the front must not mistake a 429/400 for worker death and
// retry it elsewhere.
func TestFrontWorkerOwn4xxStreamsThrough(t *testing.T) {
	var hits atomic.Int64
	reject := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"overloaded"}`)
	}))
	defer reject.Close()
	front := newTestFront(t, reject.URL)
	resp, _ := post(t, front.URL+"/v1/run", runBody("reduce1d", 4, 4), nil)
	if resp.StatusCode != 429 {
		t.Fatalf("front answered %d, want the worker's own 429", resp.StatusCode)
	}
	if hits.Load() != 1 {
		t.Errorf("worker hit %d times, want no retry of a non-transport answer", hits.Load())
	}
}
