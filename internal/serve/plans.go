package serve

// The fleet surface: the plan-blob endpoint that lets peers resolve
// plans from this daemon by canonical key, and the remote-warm endpoint
// that pre-heats the daemon's cache over the wire.
//
//	GET  /v1/plans/{key}  -> encoded plan blob (planstore codec frame)
//	POST /v1/warm         {"shapes": [{...}, ...]} -> per-shape outcome
//
// The blob endpoint serves only what the daemon already holds (cache or
// attached store) — it never compiles, so a peer cannot spend this
// daemon's CPU by asking; 404 is the miss a resolver chain's peer stage
// treats as "healthy but cold". Warm goes the other way: each shape is
// materialised through the daemon's own resolver chain, so fleets are
// pre-heated without filesystem access to the plan store.

import (
	"errors"
	"net/http"

	wse "repro"
)

func (s *Server) handlePlanBlob(w http.ResponseWriter, r *http.Request) {
	blob, err := s.cfg.Session.PlanBlob(r.PathValue("key"))
	switch {
	case errors.Is(err, wse.ErrPlanNotFound):
		s.writeError(w, http.StatusNotFound, err.Error())
	case err != nil:
		s.writeVerbError(w, err)
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(blob)
	}
}

type warmRequest struct {
	Shapes []ShapeWire `json:"shapes"`
}

type warmResponse struct {
	Warmed   int      `json:"warmed"`   // fetched or compiled into the cache
	Resident int      `json:"resident"` // already cached (or coalesced)
	Failed   int      `json:"failed"`
	Errors   []string `json:"errors,omitempty"`
}

// handleWarm materialises each listed shape through the session's
// resolver chain. Partial failure is the normal case for a long list,
// so the response is always 200 with per-shape accounting; a shape that
// fails to warm is reported and skipped, never aborting the rest.
func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	var req warmRequest
	if !s.decode(w, r, &req) {
		return
	}
	var resp warmResponse
	for _, sw := range req.Shapes {
		sh, err := sw.Shape()
		if err == nil {
			var fetched bool
			if fetched, err = s.cfg.Session.Prefetch(r.Context(), sh); err == nil {
				if fetched {
					resp.Warmed++
				} else {
					resp.Resident++
				}
				continue
			}
		}
		resp.Failed++
		resp.Errors = append(resp.Errors, err.Error())
	}
	writeJSON(w, http.StatusOK, resp)
}
