package serve

// The -race chaos soak (satellite of PR 7): a thousand mixed requests
// against the full httptest stack while 5% of store loads, saves, plan
// compiles and fabric execs fail at random. The invariants under fire:
// every response is typed (an expected status, a JSON error body on
// failures), scheduler accounting balances to the wavelet, and the
// stack tears down without leaking a single goroutine.
//
// Run it alone with: go test -run Chaos -race ./internal/serve/

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	wse "repro"

	"repro/client"
	"repro/internal/faults"
	"repro/internal/resolve"
)

// waitGoroutines polls until the live goroutine count drops back to at
// most base (plus slack for runtime background goroutines), the
// goleak-style final check.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d live, started with %d\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	defer faults.Reset()
	baseGoroutines := runtime.NumGoroutine()

	storeDir := t.TempDir()
	store, err := wse.OpenPlanStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	session := wse.NewSession(wse.SessionConfig{Workers: 4, Store: store})
	srv := New(Config{Session: session, Store: store, JobTTL: 50 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())

	// 5% random faults across the three inner seams, deterministic seed.
	faults.SetSeed(7)
	faults.Set("planstore.load", faults.Point{P: 0.05})
	faults.Set("planstore.save", faults.Point{P: 0.05})
	faults.Set("plan.compile", faults.Point{P: 0.05})
	faults.Set("fabric.exec", faults.Point{P: 0.05})

	client := &http.Client{Timeout: 30 * time.Second}
	do := func(method, url, body string, hdr map[string]string) (*http.Response, []byte, error) {
		req, err := http.NewRequest(method, url, strings.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, nil, err
		}
		return resp, data, nil
	}

	const total = 1000
	var ok200, failed5xx, shed504, rejected429, accepted202 int64
	var wg sync.WaitGroup
	sem := make(chan struct{}, 32)
	for i := 0; i < total; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			tenant := fmt.Sprintf("t%d", i%5)
			hdr := map[string]string{"X-WSE-Tenant": tenant}
			var resp *http.Response
			var body []byte
			var err error
			switch i % 10 {
			case 7: // async submit with idempotency key
				hdr[idempotencyHeader] = fmt.Sprintf("chaos-%d", i)
				resp, body, err = do("POST", ts.URL+"/v1/submit",
					runBody("reduce1d", 4+i%3, 4), hdr)
			case 8: // predict
				resp, body, err = do("POST", ts.URL+"/v1/predict",
					`{"shape":{"kind":"reduce1d","p":8,"b":4,"op":"sum"}}`, hdr)
			case 9: // tight deadline
				hdr[deadlineHeader] = "1"
				resp, body, err = do("POST", ts.URL+"/v1/run",
					runBody("allreduce1d", 4+i%3, 4), hdr)
			default: // sync run across a few shapes
				kind := []string{"reduce1d", "allreduce1d", "broadcast1d"}[i%3]
				p := 4 + i%4
				reqBody := runBody(kind, p, 4)
				if kind == "broadcast1d" { // broadcast takes the root vector only
					reqBody = fmt.Sprintf(`{"shape":{"kind":"broadcast1d","p":%d,"b":4},"inputs":%s}`,
						p, vectorsJSON(1, 4))
				}
				resp, body, err = do("POST", ts.URL+"/v1/run", reqBody, hdr)
			}
			if err != nil {
				t.Errorf("request %d transport error: %v", i, err)
				return
			}
			switch resp.StatusCode {
			case http.StatusOK:
				atomic.AddInt64(&ok200, 1)
			case http.StatusAccepted:
				atomic.AddInt64(&accepted202, 1)
			case http.StatusInternalServerError:
				atomic.AddInt64(&failed5xx, 1)
			case http.StatusGatewayTimeout:
				atomic.AddInt64(&shed504, 1)
			case http.StatusTooManyRequests:
				atomic.AddInt64(&rejected429, 1)
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("request %d: 429 without Retry-After", i)
				}
			default:
				t.Errorf("request %d: unexpected status %d: %s", i, resp.StatusCode, body)
				return
			}
			// Every non-2xx response must be a typed JSON error.
			if resp.StatusCode >= 400 {
				var e errorResponse
				if jerr := json.Unmarshal(body, &e); jerr != nil || e.Error == "" {
					t.Errorf("request %d: status %d body %q not a JSON error", i, resp.StatusCode, body)
				}
			}
		}(i)
	}
	wg.Wait()

	if ok200 == 0 {
		t.Fatal("no request succeeded under 5% chaos — the stack is not degrading, it is down")
	}
	if failed5xx == 0 {
		t.Fatal("no request failed under 5% chaos — the failpoints never fired")
	}
	t.Logf("chaos soak: 200=%d 202=%d 500=%d 504=%d 429=%d (store errors=%d)",
		ok200, accepted202, failed5xx, shed504, rejected429, session.PlanStats().StoreErrors)

	// Accounting balances per tenant, under the ledger invariant
	// submitted = served + rejected + cancelled (failures ran: ⊂ served).
	faults.Reset() // stop injecting before the drain path runs
	st := session.SchedStats()
	for name, tn := range st.Tenants {
		if tn.Submitted != tn.Served+tn.Rejected+tn.Cancelled {
			t.Errorf("tenant %q accounting leak: %+v", name, tn)
		}
	}

	// Async jobs all resolve; then the full stack tears down without
	// leaking a goroutine.
	deadline := time.Now().Add(30 * time.Second)
	for srv.jobs.len() > 0 {
		srv.jobs.sweep()
		if time.Now().After(deadline) {
			t.Fatalf("%d jobs never reclaimed", srv.jobs.len())
		}
		time.Sleep(20 * time.Millisecond)
	}
	ts.Close()
	client.CloseIdleConnections()
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain after chaos: %v", err)
	}
	waitGoroutines(t, baseGoroutines)
}

// TestChaosPeerDegradesToCompile is the fleet-mode chaos posture: a
// worker whose resolver chain fetches from a peer, with the resolve.peer
// failpoint failing a third of fetches. Because the peer stage is
// Optional and compile terminates the chain, every single request must
// still answer 200 — peer chaos is invisible to clients, visible only in
// the per-stage error counters.
func TestChaosPeerDegradesToCompile(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	defer faults.Reset()

	// The warm peer: a plain worker pre-heated over every shape the soak
	// will request, so un-faulted fetches genuinely hit.
	peerSess := wse.NewSession(wse.SessionConfig{})
	peerSrv := New(Config{Session: peerSess})
	peerTS := httptest.NewServer(peerSrv.Handler())
	defer func() {
		peerTS.Close()
		peerSrv.stopSweeper()
		peerSess.Close()
	}()
	var shapes []string
	for p := 2; p <= 20; p += 2 {
		shapes = append(shapes, fmt.Sprintf(`{"kind":"reduce1d","p":%d,"b":4,"op":"sum"}`, p))
	}
	warmBody := fmt.Sprintf(`{"shapes":[%s]}`, strings.Join(shapes, ","))
	req, _ := http.NewRequest("POST", peerTS.URL+"/v1/warm", strings.NewReader(warmBody))
	req.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != 200 {
		t.Fatalf("warming the peer: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	// The worker under test: cold cache, chain = optional peer → compile.
	chain := resolve.Sequential(
		resolve.Optional(resolve.Peer(peerTS.URL, client.Config{MaxAttempts: 1, BreakerThreshold: 1 << 30})),
		resolve.Compiler(),
	)
	sess := wse.NewSession(wse.SessionConfig{Resolver: chain})
	srv := New(Config{Session: sess, Resolver: chain})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.stopSweeper()
		sess.Close()
	}()

	faults.SetSeed(11)
	faults.Set("resolve.peer", faults.Point{P: 0.33})

	var non200 int64
	var wg sync.WaitGroup
	sem := make(chan struct{}, 16)
	for i := 0; i < 200; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			p := 2 + 2*(i%10)
			resp, body := post(t, ts.URL+"/v1/run", runBody("reduce1d", p, 4), nil)
			if resp.StatusCode != http.StatusOK {
				atomic.AddInt64(&non200, 1)
				t.Errorf("request %d: %d %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	faults.Reset()

	if non200 != 0 {
		t.Fatalf("%d requests surfaced peer chaos to the client", non200)
	}
	var peerErrors, peerHits, compileHits int64
	for _, st := range chain.Stats() {
		if strings.HasPrefix(st.Stage, "peer") {
			peerErrors, peerHits = st.Errors, st.Hits
		}
		if st.Stage == "compile" {
			compileHits = st.Hits
		}
		if st.Hits+st.Misses+st.Errors != st.Lookups {
			t.Errorf("stage %s accounting leak under chaos: %+v", st.Stage, st)
		}
	}
	if peerErrors == 0 {
		t.Error("the resolve.peer failpoint never fired — the soak proved nothing")
	}
	if compileHits == 0 {
		t.Error("no lookup degraded to compile — either chaos never hit or it 5xx'd")
	}
	t.Logf("peer chaos: peer hits=%d errors=%d, compiles=%d (all 200)", peerHits, peerErrors, compileHits)
}
