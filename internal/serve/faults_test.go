package serve

// Fault-tolerance coverage of the HTTP layer: the PR-7 acceptance test
// (a panic inside fabric execution indicts one request, not the
// daemon), deadline shedding over the wire, handler panic recovery,
// idempotent submit retry, the derived Retry-After hint, and the job
// sweeper under a fake clock.

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	wse "repro"

	"repro/internal/faults"
)

// TestPanicDuringRunIsolated is the tentpole acceptance check: a panic
// injected inside fabric execution of a served request leaves the
// daemon up, answers that request — and only it — with a typed 500,
// keeps scheduler accounting balanced, and a subsequent identical
// request replays bit-identical to an unfaulted baseline.
func TestPanicDuringRunIsolated(t *testing.T) {
	defer faults.Reset()
	s, ts := newTestServer(t, Config{})

	// Unfaulted baseline for the bit-identity check.
	resp, baseline := post(t, ts.URL+"/v1/run", runBody("reduce1d", 8, 4), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline status %d: %s", resp.StatusCode, baseline)
	}

	faults.Set("fabric.exec", faults.Point{Mode: faults.ModePanic, Count: 1})
	resp, body := post(t, ts.URL+"/v1/run", runBody("reduce1d", 8, 4), nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted request status %d, want 500: %s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "panicked") {
		t.Fatalf("500 body %q not the typed panic error", body)
	}

	// The daemon survives: the identical request is served bit-identical
	// to the unfaulted baseline.
	resp, after := post(t, ts.URL+"/v1/run", runBody("reduce1d", 8, 4), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic status %d: %s", resp.StatusCode, after)
	}
	if string(after) != string(baseline) {
		t.Fatalf("post-panic response diverged:\nbefore %s\nafter  %s", baseline, after)
	}

	st := s.cfg.Session.SchedStats()
	if st.Panics != 1 {
		t.Fatalf("SchedStats.Panics = %d, want 1", st.Panics)
	}
	for name, tn := range st.Tenants {
		if tn.Submitted != tn.Served+tn.Rejected+tn.Cancelled {
			t.Fatalf("tenant %q accounting leak: %+v", name, tn)
		}
	}

	// The recovered panic is on /metrics.
	_, metrics := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "wse_panics_total 1") {
		t.Fatalf("metrics missing wse_panics_total 1")
	}
}

// TestHandlerPanicRecovered: a panic at the HTTP layer itself (injected
// serve.run failpoint) is recovered into a 500 and counted, and the
// daemon keeps serving.
func TestHandlerPanicRecovered(t *testing.T) {
	defer faults.Reset()
	_, ts := newTestServer(t, Config{})
	faults.Set("serve.run", faults.Point{Mode: faults.ModePanic, Count: 1})

	resp, body := post(t, ts.URL+"/v1/run", runBody("reduce1d", 8, 4), nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "panicked") {
		t.Fatalf("500 body %q not the typed panic error", body)
	}
	if resp, _ := post(t, ts.URL+"/v1/run", runBody("reduce1d", 8, 4), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("daemon did not survive handler panic: %d", resp.StatusCode)
	}
	_, metrics := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "wse_http_panics_total 1") {
		t.Fatal("metrics missing wse_http_panics_total 1")
	}
}

// TestInjectedErrorIs500: an error-mode serve failpoint surfaces as a
// plain 500 through the standard error path.
func TestInjectedErrorIs500(t *testing.T) {
	defer faults.Reset()
	_, ts := newTestServer(t, Config{})
	faults.Set("serve.predict", faults.Point{Count: 1})
	resp, body := post(t, ts.URL+"/v1/predict", `{"shape":{"kind":"reduce1d","p":8,"b":4,"op":"sum"}}`, nil)
	if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(string(body), "injected") {
		t.Fatalf("status %d body %s, want injected 500", resp.StatusCode, body)
	}
}

// TestDeadlineShedIs504: a request whose client deadline expires while
// it waits behind a busy worker is shed before execution and answered
// 504, with the shed counted as cancelled.
func TestDeadlineShedIs504(t *testing.T) {
	defer faults.Reset()
	session := wse.NewSession(wse.SessionConfig{Workers: 1})
	s, ts := newTestServer(t, Config{Session: session})

	// Occupy the single worker: latency failpoint holds the first
	// request in fabric exec for 300ms.
	faults.Set("fabric.exec", faults.Point{Mode: faults.ModeLatency, Delay: 300 * time.Millisecond, Count: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(t, ts.URL+"/v1/run", runBody("reduce1d", 8, 4), nil)
	}()
	// Wait until the worker is actually occupied.
	deadline := time.Now().Add(5 * time.Second)
	for session.SchedStats().Pool.Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("gate request never started")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := post(t, ts.URL+"/v1/run", runBody("reduce1d", 8, 4),
		map[string]string{deadlineHeader: "50"})
	wg.Wait()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	st := s.cfg.Session.SchedStats()
	var cancelled int64
	for _, tn := range st.Tenants {
		cancelled += tn.Cancelled
	}
	if cancelled != 1 {
		t.Fatalf("shed request not counted cancelled: %+v", st.Tenants)
	}
}

// TestServerRequestTimeout: the -request-timeout config bounds requests
// that carry no client deadline header.
func TestServerRequestTimeout(t *testing.T) {
	defer faults.Reset()
	session := wse.NewSession(wse.SessionConfig{Workers: 1})
	_, ts := newTestServer(t, Config{Session: session, RequestTimeout: 50 * time.Millisecond})

	faults.Set("fabric.exec", faults.Point{Mode: faults.ModeLatency, Delay: 300 * time.Millisecond, Count: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(t, ts.URL+"/v1/run", runBody("reduce1d", 8, 4), nil)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for session.SchedStats().Pool.Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("gate request never started")
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := post(t, ts.URL+"/v1/run", runBody("reduce1d", 8, 4), nil)
	wg.Wait()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
}

// TestSubmitIdempotencyKey: resubmitting with the same key returns the
// same job id without enqueuing duplicate work; a different key mints a
// fresh job.
func TestSubmitIdempotencyKey(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	hdr := map[string]string{idempotencyHeader: "retry-1"}

	var ids [2]string
	for i := range ids {
		resp, body := post(t, ts.URL+"/v1/submit", runBody("reduce1d", 8, 4), hdr)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status %d: %s", i, resp.StatusCode, body)
		}
		var sub submitResponse
		if err := json.Unmarshal(body, &sub); err != nil {
			t.Fatal(err)
		}
		ids[i] = sub.ID
	}
	if ids[0] != ids[1] {
		t.Fatalf("same key minted distinct jobs %q, %q", ids[0], ids[1])
	}
	if n := s.jobs.len(); n != 1 {
		t.Fatalf("%d jobs resident, want 1", n)
	}

	resp, body := post(t, ts.URL+"/v1/submit", runBody("reduce1d", 8, 4),
		map[string]string{idempotencyHeader: "retry-2"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID == ids[0] {
		t.Fatal("distinct key returned the old job id")
	}

	// Keys are tenant-scoped: another tenant reusing "retry-1" gets its
	// own job.
	resp, body = post(t, ts.URL+"/v1/submit", runBody("reduce1d", 8, 4),
		map[string]string{idempotencyHeader: "retry-1", "X-WSE-Tenant": "other"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID == ids[0] {
		t.Fatal("idempotency key leaked across tenants")
	}
}

// TestDeriveRetryAfter pins the 429 hint derivation: backlog/workers
// rounds of the recent p50, clamped to [1s, 30s], fallback when the
// pool has no latency signal yet.
func TestDeriveRetryAfter(t *testing.T) {
	sec := time.Second
	cases := []struct {
		depth, workers int
		p50, floor     time.Duration
		want           time.Duration
	}{
		{0, 4, 0, sec, sec},                                          // no signal → floor
		{100, 4, 0, 5 * sec, 5 * sec},                                // no signal → configured floor
		{0, 4, 100 * time.Millisecond, sec, sec},                     // clamp low
		{40, 4, 2 * sec, sec, 22 * sec},                              // (40/4+1)*2s
		{1000, 2, 10 * sec, sec, 30 * sec},                           // clamp high
		{8, 0, 500 * time.Millisecond, sec, 4500 * time.Millisecond}, // workers floor 1
	}
	for i, c := range cases {
		if got := deriveRetryAfter(c.depth, c.workers, c.p50, c.floor); got != c.want {
			t.Errorf("case %d: deriveRetryAfter(%d, %d, %v, %v) = %v, want %v",
				i, c.depth, c.workers, c.p50, c.floor, got, c.want)
		}
	}
}

// TestSweeperFakeClock drives the registry's sweep directly under a
// fake clock: a completed, never-again-polled job is stamped by one
// sweep and reclaimed — with its idempotency key — by a sweep past the
// TTL.
func TestSweeperFakeClock(t *testing.T) {
	reg := newJobRegistry(time.Minute)
	clock := time.Unix(1000, 0)
	reg.now = func() time.Time { return clock }

	fut := wse.NewSession(wse.SessionConfig{}).Submit(nil, wse.Shape{
		Kind: wse.KindReduce, Alg: wse.Auto, P: 4, B: 4, Op: wse.Sum,
	}, [][]float32{{1, 1, 1, 1}, {1, 1, 1, 1}, {1, 1, 1, 1}, {1, 1, 1, 1}})
	if _, err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	id := reg.add(fut, "tn", "key-1")

	reg.sweep() // stamps doneAt
	if _, ok := reg.get(id); !ok {
		t.Fatal("job reclaimed before TTL")
	}

	clock = clock.Add(30 * time.Second)
	reg.sweep()
	if _, ok := reg.get(id); !ok {
		t.Fatal("job reclaimed at half TTL")
	}

	clock = clock.Add(31 * time.Second) // past TTL since stamp
	reg.sweep()
	if _, ok := reg.get(id); ok {
		t.Fatal("job survived a sweep past its TTL")
	}
	if _, ok := reg.byKey("tn", "key-1"); ok {
		t.Fatal("idempotency key survived its job")
	}

	// The TTL clock starts at the first sweep that observes completion,
	// not at submission: a long-completed job added now still gets its
	// full TTL of pollability.
	id2 := reg.add(fut, "tn", "")
	clock = clock.Add(time.Hour)
	reg.sweep() // first observation only stamps, even after an hour
	if _, ok := reg.get(id2); !ok {
		t.Fatal("job reclaimed on the sweep that first observed completion")
	}
}
