package serve

// httptest-driven coverage of the daemon's handler layer: happy paths
// for the three verbs, the typed-error transport contract (400 on a bad
// shape, 429 + Retry-After under a saturated bounded tenant, 503 while
// draining), the async submit/poll lifecycle with job GC, tenant
// identity mapping, and wire-vs-in-process bit identity.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	wse "repro"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Session == nil {
		cfg.Session = wse.NewSession(wse.SessionConfig{})
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.stopSweeper()
		cfg.Session.Close()
	})
	return s, ts
}

func post(t *testing.T, url string, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// vectorsJSON renders p length-b all-ones vectors as a JSON array.
func vectorsJSON(p, b int) string {
	one := make([]string, b)
	for i := range one {
		one[i] = "1"
	}
	vec := "[" + strings.Join(one, ",") + "]"
	vecs := make([]string, p)
	for i := range vecs {
		vecs[i] = vec
	}
	return "[" + strings.Join(vecs, ",") + "]"
}

func runBody(kind string, p, b int) string {
	return fmt.Sprintf(`{"shape":{"kind":%q,"p":%d,"b":%d,"op":"sum"},"inputs":%s}`,
		kind, p, b, vectorsJSON(p, b))
}

// TestRunBitIdentical: a /v1/run served over the wire must reproduce the
// in-process wse.Run bit for bit — float32 survives JSON's float64
// numbers exactly, so the wire layer owes zero numerical drift.
func TestRunBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const p, b = 8, 4
	resp, body := post(t, ts.URL+"/v1/run", runBody("reduce1d", p, b), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got ReportWire
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}

	inputs := make([][]float32, p)
	for i := range inputs {
		inputs[i] = []float32{1, 1, 1, 1}
	}
	want, err := wse.Run(context.Background(), wse.Shape{
		Kind: wse.KindReduce, Alg: wse.Auto, P: p, B: b, Op: wse.Sum,
	}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles {
		t.Errorf("wire cycles %d, in-process %d", got.Cycles, want.Cycles)
	}
	if got.Predicted != want.Predicted {
		t.Errorf("wire predicted %v, in-process %v", got.Predicted, want.Predicted)
	}
	if len(got.Root) != len(want.Root) {
		t.Fatalf("wire root length %d, in-process %d", len(got.Root), len(want.Root))
	}
	for i := range got.Root {
		if got.Root[i] != want.Root[i] {
			t.Errorf("root[%d]: wire %v, in-process %v", i, got.Root[i], want.Root[i])
		}
	}
	if got.Stats.Hops != want.Stats.Hops {
		t.Errorf("wire hops %d, in-process %d", got.Stats.Hops, want.Stats.Hops)
	}
}

// TestPredictBound: the model verbs answer with the exact in-process
// estimates.
func TestPredictBound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sh := `{"shape":{"kind":"reduce1d","p":64,"b":16,"op":"sum"}}`
	wantShape := wse.Shape{Kind: wse.KindReduce, Alg: wse.Auto, Alg2D: wse.Auto2D, P: 64, B: 16, Op: wse.Sum}

	resp, body := post(t, ts.URL+"/v1/predict", sh, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d: %s", resp.StatusCode, body)
	}
	var pr map[string]float64
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if want := wse.Predict(wantShape); pr["predicted_cycles"] != want {
		t.Errorf("predict %v, want %v", pr["predicted_cycles"], want)
	}

	resp, body = post(t, ts.URL+"/v1/bound", sh, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bound status %d: %s", resp.StatusCode, body)
	}
	var bd map[string]float64
	if err := json.Unmarshal(body, &bd); err != nil {
		t.Fatal(err)
	}
	if want := wse.Bound(wantShape); bd["bound_cycles"] != want {
		t.Errorf("bound %v, want %v", bd["bound_cycles"], want)
	}
}

// TestBadShape400: malformed shapes and ragged inputs come back 400 with
// a JSON error body — never a 500, never a hang.
func TestBadShape400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"ragged inputs", `{"shape":{"kind":"reduce1d","p":4,"b":4,"op":"sum"},"inputs":[[1,1,1,1],[1,1,1,1],[1,1],[1,1,1,1]]}`},
		{"wrong vector count", `{"shape":{"kind":"reduce1d","p":4,"b":2,"op":"sum"},"inputs":[[1,1]]}`},
		{"unknown kind", `{"shape":{"kind":"transmogrify","p":4,"b":2},"inputs":[[1,1]]}`},
		{"unknown op", `{"shape":{"kind":"reduce1d","p":4,"b":2,"op":"xor"},"inputs":[[1,1]]}`},
		{"malformed json", `{"shape":`},
	}
	for _, tc := range cases {
		resp, body := post(t, ts.URL+"/v1/run", tc.body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not a JSON error", tc.name, body)
		}
	}
}

// TestOverloaded429: a bounded tenant pushed past its queue depth gets
// 429 with a Retry-After hint, synchronously — admission control never
// queues the rejection. A backlog of Interactive in-process blockers
// pins the single worker, so the Batch-class tenant's queued request is
// never dispatched while they are pending. Async submits enqueue after
// compiling (admission is a snapshot, not a reservation — see
// sched.Admit), so the test waits for the scheduler to actually see the
// blocker backlog and then the queued first submit before asserting:
// without those barriers the asserts race the submit goroutines.
func TestOverloaded429(t *testing.T) {
	sess := wse.NewSession(wse.SessionConfig{Workers: 1})
	_, ts := newTestServer(t, Config{
		Session:    sess,
		Tenants:    []TenantSpec{{Name: "tight", Cfg: wse.TenantConfig{Weight: 1, MaxQueue: 1}}},
		RetryAfter: 2 * time.Second,
	})
	blocker := sess.WithTenant("blocker", wse.TenantConfig{Priority: wse.Interactive})
	blockShape := wse.Shape{Kind: wse.KindReduce, Alg: wse.Chain, P: 512, B: 16, Op: wse.Sum}
	blockInputs := make([][]float32, blockShape.P)
	for i := range blockInputs {
		blockInputs[i] = make([]float32, blockShape.B)
	}
	for i := 0; i < 64; i++ {
		blocker.Submit(context.Background(), blockShape, blockInputs)
	}
	waitTenant := func(name string, queued func(wse.TenantStats) bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !queued(sess.SchedStats().Tenants[name]) {
			if time.Now().After(deadline) {
				t.Fatalf("tenant %q never reached the expected queue state: %+v",
					name, sess.SchedStats().Tenants[name])
			}
			time.Sleep(time.Millisecond)
		}
	}
	// All 64 blockers enqueued: the worker is pinned on one, 63 pending
	// Interactive outrank anything the Batch-class tenant queues.
	waitTenant("blocker", func(st wse.TenantStats) bool { return st.Submitted == 64 })

	body := runBody("reduce1d", 8, 4)
	hdr := map[string]string{"X-WSE-Tenant": "tight"}
	resp, rbody := post(t, ts.URL+"/v1/submit", body, hdr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, rbody)
	}
	// The accepted job enqueues from its own goroutine after compiling;
	// the second submit must observe it queued to hit the MaxQueue=1 bound.
	waitTenant("tight", func(st wse.TenantStats) bool { return st.Depth == 1 })
	resp, rbody = post(t, ts.URL+"/v1/submit", body, hdr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: status %d, want 429 (%s)", resp.StatusCode, rbody)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	var e errorResponse
	if err := json.Unmarshal(rbody, &e); err != nil || e.Error == "" {
		t.Errorf("429 body %q not a JSON error", rbody)
	}
}

// TestSubmitPollLifecycle: submit returns an id whose status moves to
// done with the full result, and the completed job is GCed after its
// TTL (observed as 404 on a later poll).
func TestSubmitPollLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{JobTTL: time.Millisecond})
	resp, body := post(t, ts.URL+"/v1/submit", runBody("reduce1d", 8, 4), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body %q", body)
	}

	var jr jobResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, b := get(t, ts.URL+sub.URL)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", r.StatusCode, b)
		}
		if err := json.Unmarshal(b, &jr); err != nil {
			t.Fatal(err)
		}
		if jr.State != "pending" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job still pending after 10s")
		}
		time.Sleep(time.Millisecond)
	}
	if jr.State != "done" || jr.Result == nil {
		t.Fatalf("job state %q (error %q), want done with result", jr.State, jr.Error)
	}
	if want := float32(8); jr.Result.Root[0] != want {
		t.Errorf("root[0] = %v, want %v", jr.Result.Root[0], want)
	}

	// The background sweeper stamps the completed job and reaps it after
	// the TTL — no poll needed to trigger the GC, only to observe it.
	gcDeadline := time.Now().Add(10 * time.Second)
	for {
		if r, _ := get(t, ts.URL+sub.URL); r.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(gcDeadline) {
			t.Fatal("job not reaped by sweeper after 10s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubmitBadShape: validation resolves synchronously, so a bad shape
// fails the submit itself — no job id is ever minted for it.
func TestSubmitBadShape(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, _ := post(t, ts.URL+"/v1/submit", `{"shape":{"kind":"reduce1d","p":0,"b":4},"inputs":[]}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if n := s.jobs.len(); n != 0 {
		t.Errorf("%d jobs resident after rejected submit, want 0", n)
	}
}

// TestDrain503: once draining, API requests and the health check get 503
// while /metrics stays up; Drain then closes the session cleanly.
func TestDrain503(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if r, _ := get(t, ts.URL+"/healthz"); r.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d before drain", r.StatusCode)
	}
	s.StartDrain()
	resp, body := post(t, ts.URL+"/v1/run", runBody("reduce1d", 4, 2), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("run while draining: status %d, want 503 (%s)", resp.StatusCode, body)
	}
	if r, _ := get(t, ts.URL+"/healthz"); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", r.StatusCode)
	}
	if r, _ := get(t, ts.URL+"/metrics"); r.StatusCode != http.StatusOK {
		t.Errorf("metrics while draining: status %d, want 200", r.StatusCode)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestTenantMapping: identity headers land in the scheduler's accounting
// — pre-registered names keep their class, unknown names are admitted
// under the default config, bearer tokens work as names.
func TestTenantMapping(t *testing.T) {
	sess := wse.NewSession(wse.SessionConfig{})
	_, ts := newTestServer(t, Config{
		Session:       sess,
		Tenants:       []TenantSpec{{Name: "vip", Cfg: wse.TenantConfig{Priority: wse.Interactive, Weight: 4}}},
		DefaultTenant: wse.TenantConfig{Priority: wse.Background, Weight: 1},
	})
	body := runBody("reduce1d", 4, 2)
	for _, hdr := range []map[string]string{
		{"X-WSE-Tenant": "vip"},
		{"X-WSE-Tenant": "walkin"},
		{"Authorization": "Bearer bearer-bob"},
	} {
		if resp, b := post(t, ts.URL+"/v1/run", body, hdr); resp.StatusCode != http.StatusOK {
			t.Fatalf("run under %v: status %d: %s", hdr, resp.StatusCode, b)
		}
	}
	st := sess.SchedStats()
	if got := st.Tenants["vip"]; got.Class != "interactive" || got.Served != 1 {
		t.Errorf("vip: class %q served %d, want interactive/1", got.Class, got.Served)
	}
	if got := st.Tenants["walkin"]; got.Class != "background" || got.Served != 1 {
		t.Errorf("walkin: class %q served %d, want background/1 (default config)", got.Class, got.Served)
	}
	if got := st.Tenants["bearer-bob"]; got.Served != 1 {
		t.Errorf("bearer-bob: served %d, want 1", got.Served)
	}
}

// TestMetrics: the exposition carries the cache, scheduler, pool, job
// and HTTP series, with tenant labels.
func TestMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, b := post(t, ts.URL+"/v1/run", runBody("reduce1d", 4, 2), map[string]string{"X-WSE-Tenant": "m"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, b)
	}
	r, body := get(t, ts.URL+"/metrics")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type %q, want Prometheus text 0.0.4", ct)
	}
	text := string(body)
	for _, line := range []string{
		"wse_plan_cache_misses_total 1",
		`wse_tenant_served_total{tenant="m",class="batch"} 1`,
		"wse_pool_workers",
		"wse_jobs_resident 0",
		`wse_http_requests_total{endpoint="run",code="200"} 1`,
		"wse_up 1",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("metrics output missing %q", line)
		}
	}
}
