package serve

// Front is the fleet's thin routing tier: a daemon that owns no session
// and simulates nothing, it consistent-hashes each request's canonical
// plan key across the worker fleet and forwards the raw request. Every
// shape therefore lands on the same worker every time, so each worker's
// plan-cache LRU stays hot on its own key slice instead of all workers
// caching all keys — the fleet's aggregate cache capacity becomes the
// sum of the workers', not the max.
//
// Failover is the ring's successor order: a worker that refuses a
// connection (or answers 502/503) is marked down for a cooldown and the
// request is re-forwarded to the next candidate, so killing a worker
// mid-load sheds its key slice onto deterministic survivors — the same
// survivor per key, keeping even the shed traffic cache-friendly — with
// no client-visible failure. Async jobs stay pollable through the
// front: submit responses get the worker's index prefixed onto the job
// id (w0.<id>), and /v1/jobs routes the poll back by that prefix.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	wse "repro"
	"repro/internal/obs"
	"repro/internal/resolve"
)

// FrontConfig assembles a Front. Workers is required.
type FrontConfig struct {
	// Workers are the fleet members' base URLs, e.g.
	// ["http://10.0.0.1:8080", "http://10.0.0.2:8080"].
	Workers []string
	// Options must match the workers' session options (fabric geometry
	// knobs change plan identity): the front hashes the same canonical
	// keys the workers cache under. The zero value matches workers run
	// with default options.
	Options wse.Options
	// Replicas is the ring's virtual-node count per worker (<= 0 selects
	// resolve.DefaultRingReplicas).
	Replicas int
	// Cooldown is how long a failed worker stays marked down before
	// traffic is hashed back to it (default 3s).
	Cooldown time.Duration
	// MaxBody caps request body size in bytes (default 64 MiB).
	MaxBody int64
	// Client overrides the forwarding transport (default: plain
	// http.Client). Per-request deadlines ride the incoming request's
	// context, which the outgoing request inherits.
	Client *http.Client
	// Tracer, when set, opens a root span per routed request and injects
	// the traceparent into forwarded requests, so a worker's root span
	// joins the front's trace. Nil disables tracing (zero overhead).
	Tracer *obs.Tracer
}

// Front routes Shape traffic across a worker fleet by consistent hash.
// Create with NewFront, mount via Handler.
type Front struct {
	cfg  FrontConfig
	ring *resolve.Ring
	hc   *http.Client
	mux  *http.ServeMux
	http httpStats

	forwards  atomic.Int64 // requests forwarded (first candidate)
	failovers atomic.Int64 // re-forwards after a candidate failed
	exhausted atomic.Int64 // requests that ran out of candidates (502)

	mu   sync.Mutex
	down map[string]time.Time // worker -> downed-at
}

// NewFront assembles a Front over the worker list.
func NewFront(cfg FrontConfig) *Front {
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 3 * time.Second
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 64 << 20
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{}
	}
	f := &Front{
		cfg:  cfg,
		ring: resolve.NewRing(cfg.Workers, cfg.Replicas),
		hc:   hc,
		mux:  http.NewServeMux(),
		down: make(map[string]time.Time),
	}
	for _, ep := range []string{"run", "predict", "bound", "submit", "warm"} {
		f.mux.HandleFunc("POST /v1/"+ep, f.route(ep))
	}
	f.mux.HandleFunc("GET /v1/jobs/{id}", f.handleJob)
	f.mux.HandleFunc("GET /healthz", f.handleHealthz)
	f.mux.HandleFunc("GET /metrics", f.handleMetrics)
	f.mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		serveTraces(f.cfg.Tracer, w, r)
	})
	return f
}

// Handler returns the front's HTTP handler.
func (f *Front) Handler() http.Handler { return f.mux }

// shapeProbe is the slice of every verb body the front needs: just the
// shape, to derive the routing key. Inputs pass through untouched.
type shapeProbe struct {
	Shape ShapeWire `json:"shape"`
}

// route builds the handler for one forwarded verb endpoint.
func (f *Front) route(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		ctx, span := f.cfg.Tracer.Root(r.Context(), "front "+endpoint, r.Header.Get(obs.Header))
		if span != nil {
			span.SetAttr("tenant", tenantName(r))
			r = r.WithContext(ctx)
		}
		defer func() {
			code := sw.code()
			f.http.record(endpoint, code)
			if code >= 500 {
				span.SetError(fmt.Errorf("http %d", code))
			}
			span.SetAttr("code", code)
			span.End()
		}()
		r.Body = http.MaxBytesReader(sw, r.Body, f.cfg.MaxBody)
		body, err := io.ReadAll(r.Body)
		if err != nil {
			f.writeError(sw, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
			return
		}
		key, err := f.routingKey(endpoint, body)
		if err != nil {
			f.writeError(sw, http.StatusBadRequest, err.Error())
			return
		}
		f.forward(sw, r, endpoint, key, body)
	}
}

// routingKey derives the consistent-hash key for a request body. Verb
// bodies carry one shape; warm bodies carry a list — the first shape
// routes the whole batch (callers warming a fleet hit every worker
// directly or send one shape per request for exact placement).
func (f *Front) routingKey(endpoint string, body []byte) (string, error) {
	if endpoint == "warm" {
		var wr warmRequest
		if err := json.Unmarshal(body, &wr); err != nil || len(wr.Shapes) == 0 {
			return "", fmt.Errorf("bad warm body: want {\"shapes\": [...]}")
		}
		sh, err := wr.Shapes[0].Shape()
		if err != nil {
			return "", err
		}
		return wse.KeyString(sh, f.cfg.Options), nil
	}
	var probe shapeProbe
	if err := json.Unmarshal(body, &probe); err != nil {
		return "", fmt.Errorf("bad request body: %v", err)
	}
	sh, err := probe.Shape.Shape()
	if err != nil {
		return "", err
	}
	return wse.KeyString(sh, f.cfg.Options), nil
}

// forward sends the request down the key's candidate list until a
// worker answers. A transport failure or a 502/503 marks the worker
// down (cooldown) and moves on; any other response — including the
// request's own 4xx/5xx — is the worker's answer and streams through.
func (f *Front) forward(w *statusWriter, r *http.Request, endpoint, key string, body []byte) {
	candidates := f.candidates(key)
	if len(candidates) == 0 {
		f.exhausted.Add(1)
		f.writeError(w, http.StatusBadGateway, "no workers configured")
		return
	}
	f.forwards.Add(1)
	var lastErr string
	for i, worker := range candidates {
		if i > 0 {
			f.failovers.Add(1)
		}
		fctx, fspan := obs.Start(r.Context(), "front.forward")
		fspan.SetAttr("worker", worker)
		req, err := http.NewRequestWithContext(fctx, r.Method, worker+r.URL.Path, bytes.NewReader(body))
		if err != nil {
			fspan.SetError(err)
			fspan.End()
			f.writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		copyForwardHeaders(req.Header, r.Header)
		obs.InjectHeader(fctx, req.Header)
		resp, err := f.hc.Do(req)
		if err != nil {
			fspan.SetError(err)
			fspan.End()
			f.markDown(worker)
			lastErr = err.Error()
			continue
		}
		if resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable {
			// The worker is up but refusing (draining, dying): shed its
			// keys to the ring successor like a dead worker's.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			f.markDown(worker)
			lastErr = fmt.Sprintf("worker %s: status %d", worker, resp.StatusCode)
			fspan.SetError(fmt.Errorf("worker %s: status %d", worker, resp.StatusCode))
			fspan.End()
			continue
		}
		fspan.SetAttr("status", resp.StatusCode)
		f.relay(w, resp, endpoint, indexOf(f.cfg.Workers, worker))
		fspan.End()
		return
	}
	f.exhausted.Add(1)
	f.writeError(w, http.StatusBadGateway, "all workers failed: "+lastErr)
}

// relay streams a worker's response to the client. Submit 202 bodies
// are rewritten to prefix the worker index onto the job id, so the
// front can route the poll back to the owning worker.
func (f *Front) relay(w *statusWriter, resp *http.Response, endpoint string, workerIdx int) {
	defer resp.Body.Close()
	if endpoint == "submit" && resp.StatusCode == http.StatusAccepted && workerIdx >= 0 {
		var sr submitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err == nil {
			id := fmt.Sprintf("w%d.%s", workerIdx, sr.ID)
			writeJSON(w, http.StatusAccepted, submitResponse{ID: id, URL: "/v1/jobs/" + id})
			return
		}
		f.writeError(w, http.StatusBadGateway, "worker sent unparseable submit response")
		return
	}
	copyResponseHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handleJob routes a poll back to the worker that owns the job, by the
// index prefix relay stamped onto the id at submit time.
func (f *Front) handleJob(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w}
	defer func() { f.http.record("jobs", sw.code()) }()
	id := r.PathValue("id")
	rest, idx := "", -1
	if n, r2, ok := splitJobID(id); ok && n < len(f.cfg.Workers) {
		idx, rest = n, r2
	}
	if idx < 0 {
		f.writeError(sw, http.StatusNotFound, "unknown job "+id)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), "GET", f.cfg.Workers[idx]+"/v1/jobs/"+rest, nil)
	if err != nil {
		f.writeError(sw, http.StatusInternalServerError, err.Error())
		return
	}
	copyForwardHeaders(req.Header, r.Header)
	resp, err := f.hc.Do(req)
	if err != nil {
		f.writeError(sw, http.StatusBadGateway, fmt.Sprintf("worker %s: %v", f.cfg.Workers[idx], err))
		return
	}
	defer resp.Body.Close()
	// Job ids inside the response body keep the worker's spelling; the
	// client polls by the prefixed id it was given, so only the id field
	// needs re-prefixing — but the body is small and the state machine
	// matters more than the echo, so stream it through unchanged.
	copyResponseHeaders(sw.Header(), resp.Header)
	sw.WriteHeader(resp.StatusCode)
	io.Copy(sw, resp.Body)
}

// splitJobID parses "w<idx>.<rest>".
func splitJobID(id string) (idx int, rest string, ok bool) {
	if !strings.HasPrefix(id, "w") {
		return 0, "", false
	}
	head, rest, found := strings.Cut(id[1:], ".")
	if !found || rest == "" {
		return 0, "", false
	}
	n, err := strconv.Atoi(head)
	if err != nil || n < 0 {
		return 0, "", false
	}
	return n, rest, true
}

// candidates returns the key's workers in preference order with
// cooled-down members moved to the back (not dropped: when every worker
// is marked down the front still tries them all rather than failing
// without a network attempt).
func (f *Front) candidates(key string) []string {
	picks := f.ring.Pick(key)
	now := time.Now()
	up := picks[:0:0]
	var cooled []string
	f.mu.Lock()
	for _, w := range picks {
		if t, bad := f.down[w]; bad {
			if now.Sub(t) < f.cfg.Cooldown {
				cooled = append(cooled, w)
				continue
			}
			delete(f.down, w) // cooldown elapsed: eligible again
		}
		up = append(up, w)
	}
	f.mu.Unlock()
	return append(up, cooled...)
}

func (f *Front) markDown(worker string) {
	f.mu.Lock()
	f.down[worker] = time.Now()
	f.mu.Unlock()
}

func (f *Front) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// The front is healthy while at least one worker is not marked down;
	// a fully-downed fleet answers 503 so the front's own health check
	// trips.
	f.mu.Lock()
	downed := len(f.down)
	f.mu.Unlock()
	if downed >= len(f.cfg.Workers) {
		http.Error(w, "all workers down", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

func (f *Front) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE wse_front_forwards_total counter\nwse_front_forwards_total %d\n", f.forwards.Load())
	fmt.Fprintf(&b, "# TYPE wse_front_failovers_total counter\nwse_front_failovers_total %d\n", f.failovers.Load())
	fmt.Fprintf(&b, "# TYPE wse_front_exhausted_total counter\nwse_front_exhausted_total %d\n", f.exhausted.Load())
	f.mu.Lock()
	downed := len(f.down)
	f.mu.Unlock()
	fmt.Fprintf(&b, "# TYPE wse_front_workers gauge\nwse_front_workers %d\n", len(f.cfg.Workers))
	fmt.Fprintf(&b, "# TYPE wse_front_workers_down gauge\nwse_front_workers_down %d\n", downed)
	counts := f.http.snapshot()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("# TYPE wse_front_http_requests_total counter\n")
	for _, k := range keys {
		ep, code, _ := strings.Cut(k, "|")
		fmt.Fprintf(&b, "wse_front_http_requests_total{endpoint=%q,code=%q} %d\n", ep, code, counts[k])
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

func (f *Front) writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

// copyForwardHeaders forwards the identity and control headers the
// workers act on; hop-by-hop and transport headers stay behind.
func copyForwardHeaders(dst, src http.Header) {
	for _, h := range []string{"X-WSE-Tenant", "Authorization", "X-WSE-Deadline-Ms", "X-WSE-Idempotency-Key", "Content-Type"} {
		if v := src.Get(h); v != "" {
			dst.Set(h, v)
		}
	}
}

func copyResponseHeaders(dst, src http.Header) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := src.Get(h); v != "" {
			dst.Set(h, v)
		}
	}
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}
