package serve

// The trace-serving surface: GET /debug/traces exports the tracer's
// committed ring as JSON, and the slow-request log turns an
// over-threshold request into one structured line with the trace id and
// per-phase breakdown — the "why was THAT request slow" answer without
// scraping the ring.

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// handleTraces serves the committed-trace ring, newest first.
//
//	GET /debug/traces?min_ms=50&limit=20
//
// min_ms filters to traces at least that slow; limit caps the count.
// With tracing disabled the endpoint answers 404, so probes can tell
// "off" from "no traces yet" (200 with an empty list).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	serveTraces(s.cfg.Tracer, w, r)
}

func serveTraces(t *obs.Tracer, w http.ResponseWriter, r *http.Request) {
	if t == nil {
		http.Error(w, `{"error": "tracing disabled"}`, http.StatusNotFound)
		return
	}
	var minDur time.Duration
	if v := r.URL.Query().Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			http.Error(w, `{"error": "bad min_ms"}`, http.StatusBadRequest)
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, `{"error": "bad limit"}`, http.StatusBadRequest)
			return
		}
		limit = n
	}
	traces := t.Traces(minDur, limit)
	if traces == nil {
		traces = []*obs.Trace{}
	}
	writeJSON(w, http.StatusOK, traces)
}

// httpLabel renders one request's histogram label body.
func httpLabel(route string, code int) string {
	return `route="` + route + `",code="` + strconv.Itoa(code) + `"`
}

// slowLimiter is a token bucket bounding slow-request log lines: burst
// of 5, refilling one per second — under overload, when everything is
// slow, the log records a sample instead of a storm.
type slowLimiter struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func (l *slowLimiter) allow(now time.Time) bool {
	const burst, perSecond = 5, 1
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.last.IsZero() {
		l.tokens = burst
	} else {
		l.tokens += now.Sub(l.last).Seconds() * perSecond
		if l.tokens > burst {
			l.tokens = burst
		}
	}
	l.last = now
	if l.tokens < 1 {
		return false
	}
	l.tokens--
	return true
}

// maybeLogSlow emits the slow-request line when the request cleared the
// threshold and the rate limiter admits it. The phase breakdown comes
// from the trace's finished child spans; without tracing the line still
// carries route/tenant/code/duration.
func (s *Server) maybeLogSlow(endpoint string, r *http.Request, span *obs.Span, code int, dur time.Duration) {
	if s.cfg.SlowThreshold <= 0 || dur < s.cfg.SlowThreshold || !s.slowLim.allow(time.Now()) {
		return
	}
	s.cfg.SlowLogger.Printf("slow-request trace_id=%s route=%s tenant=%q code=%d dur_ms=%.1f phases=[%s]",
		span.TraceID(), endpoint, tenantName(r), code,
		float64(dur)/float64(time.Millisecond), formatPhases(span.Phases()))
}

// formatPhases renders a phase map as "name=ms name=ms", slowest first,
// so the log line reads as the latency attribution at a glance.
func formatPhases(ph map[string]time.Duration) string {
	if len(ph) == 0 {
		return ""
	}
	names := make([]string, 0, len(ph))
	for name := range ph {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if ph[names[i]] != ph[names[j]] {
			return ph[names[i]] > ph[names[j]]
		}
		return names[i] < names[j]
	})
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.1fms", name, float64(ph[name])/float64(time.Millisecond))
	}
	return b.String()
}
