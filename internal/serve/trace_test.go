package serve

// End-to-end tracing tests: one request produces one committed trace
// whose span tree crosses the serve → sched → resolve → fabric seams
// (and, in fleet mode, the front → worker network hop) under a single
// trace id; failures mark the failing span and ride up to the root.

import (
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	wse "repro"
	"repro/internal/faults"
	"repro/internal/obs"
)

// syncLogBuffer is a mutex-guarded log sink: the slow-request line is
// written from the handler goroutine while the test reads it.
type syncLogBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncLogBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncLogBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func newBufLogger(w *syncLogBuffer) *log.Logger { return log.New(w, "", 0) }

// waitTraces polls a tracer's ring until n traces are committed. The
// root span commits in the handler's defer, which can run a beat after
// the client has the response, so assertions poll instead of racing.
func waitTraces(t *testing.T, tr *obs.Tracer, n int) []*obs.Trace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		traces := tr.Traces(0, 0)
		if len(traces) >= n {
			return traces
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d committed traces, have %d", n, len(traces))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// spanByName finds the first span with the given name, or fails.
func spanByName(t *testing.T, tr *obs.Trace, name string) obs.SpanRecord {
	t.Helper()
	for _, sp := range tr.Spans {
		if sp.Name == name {
			return sp
		}
	}
	t.Fatalf("trace %s has no span %q (spans: %v)", tr.TraceID, name, spanNames(tr))
	return obs.SpanRecord{}
}

func spanNames(tr *obs.Trace) []string {
	names := make([]string, 0, len(tr.Spans))
	for _, sp := range tr.Spans {
		names = append(names, sp.Name)
	}
	return names
}

// TestTraceEndToEnd: one /v1/run at 100% sampling commits one trace
// whose tree crosses every instrumented seam: the http root span parents
// the scheduler's queue and exec spans and the resolve span, and the
// fabric execution nests under exec (it runs on the scheduler's worker
// with the exec span's context).
func TestTraceEndToEnd(t *testing.T) {
	tracer := obs.NewTracer(obs.Config{Sample: 1})
	defer tracer.Close()
	_, ts := newTestServer(t, Config{Tracer: tracer})

	resp, body := post(t, ts.URL+"/v1/run", runBody("reduce1d", 8, 4), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}

	tr := waitTraces(t, tracer, 1)[0]
	if tr.Root != "http run" {
		t.Fatalf("root span = %q, want \"http run\"", tr.Root)
	}
	if tr.Error != "" {
		t.Fatalf("trace unexpectedly errored: %s", tr.Error)
	}

	root := spanByName(t, tr, "http run")
	if root.Parent != "" {
		t.Fatalf("root span has parent %q", root.Parent)
	}
	if got := root.Attrs["code"]; got != 200 {
		t.Fatalf("root code attr = %v, want 200", got)
	}

	queue := spanByName(t, tr, "sched.queue")
	exec := spanByName(t, tr, "sched.exec")
	resolve := spanByName(t, tr, "plan.resolve")
	fabric := spanByName(t, tr, "fabric.exec")
	for name, sp := range map[string]obs.SpanRecord{"sched.queue": queue, "sched.exec": exec, "plan.resolve": resolve} {
		if sp.Parent != root.ID {
			t.Errorf("%s parent = %q, want root %q", name, sp.Parent, root.ID)
		}
	}
	if fabric.Parent != exec.ID {
		t.Errorf("fabric.exec parent = %q, want sched.exec %q", fabric.Parent, exec.ID)
	}
	if fabric.Attrs["cycles"] == nil || fabric.Attrs["steps"] == nil {
		t.Errorf("fabric.exec span missing cycles/steps attrs: %v", fabric.Attrs)
	}
	if exec.Attrs["tenant"] == nil {
		t.Errorf("sched.exec span missing tenant attr: %v", exec.Attrs)
	}
}

// TestTraceFleetSingleID: a request through the front produces traces
// on both tiers under ONE trace id — the front's root span mints it, the
// forward injects the traceparent, and the worker's root span joins it.
func TestTraceFleetSingleID(t *testing.T) {
	wtr := obs.NewTracer(obs.Config{Sample: 1})
	defer wtr.Close()
	ftr := obs.NewTracer(obs.Config{Sample: 1})
	defer ftr.Close()

	sess := wse.NewSession(wse.SessionConfig{})
	s := New(Config{Session: sess, Tracer: wtr})
	wts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		wts.Close()
		s.stopSweeper()
		sess.Close()
	})
	f := NewFront(FrontConfig{Workers: []string{wts.URL}, Cooldown: time.Minute, Tracer: ftr})
	fts := httptest.NewServer(f.Handler())
	t.Cleanup(fts.Close)

	resp, body := post(t, fts.URL+"/v1/run", runBody("reduce1d", 8, 4), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run via front: status %d: %s", resp.StatusCode, body)
	}

	ftrace := waitTraces(t, ftr, 1)[0]
	wtrace := waitTraces(t, wtr, 1)[0]
	if ftrace.TraceID != wtrace.TraceID {
		t.Fatalf("trace id split across tiers: front %s, worker %s", ftrace.TraceID, wtrace.TraceID)
	}
	if ftrace.Root != "front run" {
		t.Errorf("front root = %q, want \"front run\"", ftrace.Root)
	}
	if wtrace.Root != "http run" {
		t.Errorf("worker root = %q, want \"http run\"", wtrace.Root)
	}
	fwd := spanByName(t, ftrace, "front.forward")
	if fwd.Attrs["worker"] != wts.URL {
		t.Errorf("front.forward worker attr = %v, want %s", fwd.Attrs["worker"], wts.URL)
	}
	// The worker's spans carry the shared trace id too — the whole
	// request is reconstructible by joining the two rings on trace id.
	spanByName(t, wtrace, "fabric.exec")
}

// TestTraceExecFailpointError: an injected fabric.exec fault must mark
// the failing span AND the root: the exec span records the error where
// it happened, and the root span records the resulting 500 — the trace
// answers "which request failed" and "where" in one artifact.
func TestTraceExecFailpointError(t *testing.T) {
	defer faults.Reset()
	faults.Set("fabric.exec", faults.Point{Count: 1})

	tracer := obs.NewTracer(obs.Config{Sample: 1})
	defer tracer.Close()
	_, ts := newTestServer(t, Config{Tracer: tracer})

	resp, body := post(t, ts.URL+"/v1/run", runBody("reduce1d", 8, 4), nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("run with armed fabric.exec failpoint: status %d, want 500: %s", resp.StatusCode, body)
	}

	tr := waitTraces(t, tracer, 1)[0]
	if tr.Error == "" {
		t.Fatal("trace of a failed request carries no error")
	}
	fabric := spanByName(t, tr, "fabric.exec")
	if fabric.Error == "" {
		t.Error("fabric.exec span did not record the injected fault")
	}
	exec := spanByName(t, tr, "sched.exec")
	if exec.Error == "" {
		t.Error("sched.exec span did not record the propagated fault")
	}
	root := spanByName(t, tr, "http run")
	if root.Error == "" {
		t.Error("root span did not record the 500")
	}
	if got := root.Attrs["code"]; got != 500 {
		t.Errorf("root code attr = %v, want 500", got)
	}
}

// TestDebugTracesEndpoint: 404 while tracing is off (probes can tell
// "off" from "empty"), 200 with a JSON list when on, 400 on bad params.
func TestDebugTracesEndpoint(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, _ := get(t, off.URL+"/debug/traces")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("traces with tracing off: status %d, want 404", resp.StatusCode)
	}

	tracer := obs.NewTracer(obs.Config{Sample: 1})
	defer tracer.Close()
	_, on := newTestServer(t, Config{Tracer: tracer})
	resp, body := get(t, on.URL+"/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traces with tracing on: status %d", resp.StatusCode)
	}
	if strings.TrimSpace(string(body)) != "[]" {
		t.Fatalf("empty ring should serve [], got %s", body)
	}
	resp, _ = get(t, on.URL+"/debug/traces?min_ms=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad min_ms: status %d, want 400", resp.StatusCode)
	}

	post(t, on.URL+"/v1/run", runBody("reduce1d", 8, 4), nil)
	waitTraces(t, tracer, 1)
	resp, body = get(t, on.URL+"/debug/traces?min_ms=0&limit=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traces after traffic: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), `"trace_id"`) || !strings.Contains(string(body), "http run") {
		t.Fatalf("trace listing missing expected fields: %s", body)
	}
}

// TestMetricsObservability: the new /metrics families exist and move —
// latency histograms for http and queue wait, and the runtime health
// gauges — after one served request.
func TestMetricsObservability(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/v1/run", runBody("reduce1d", 8, 4), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	_, metrics := get(t, ts.URL+"/metrics")
	text := string(metrics)
	for _, want := range []string{
		`wse_http_request_duration_seconds_bucket{route="run",code="200",le="`,
		`wse_http_request_duration_seconds_count{route="run",code="200"}`,
		`wse_sched_queue_wait_seconds_bucket{class="`,
		`wse_sched_queue_wait_seconds_count{class="`,
		"\nwse_goroutines ",
		"\nwse_heap_alloc_bytes ",
		"\nwse_gc_pause_seconds_total ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The histogram buckets are cumulative and end at +Inf == _count.
	if !strings.Contains(text, `wse_http_request_duration_seconds_bucket{route="run",code="200",le="+Inf"} `) {
		t.Error("/metrics missing +Inf bucket for http duration histogram")
	}
}

// TestSlowRequestLog: a request slower than the threshold emits exactly
// one structured line carrying the trace id and a phase breakdown.
func TestSlowRequestLog(t *testing.T) {
	tracer := obs.NewTracer(obs.Config{Sample: 1})
	defer tracer.Close()
	var buf syncLogBuffer
	logger := newBufLogger(&buf)
	_, ts := newTestServer(t, Config{Tracer: tracer, SlowThreshold: time.Nanosecond, SlowLogger: logger})

	resp, body := post(t, ts.URL+"/v1/run", runBody("reduce1d", 8, 4), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	tr := waitTraces(t, tracer, 1)[0]

	deadline := time.Now().Add(2 * time.Second)
	for buf.String() == "" && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	line := buf.String()
	for _, want := range []string{"slow-request", "trace_id=" + tr.TraceID, "route=run", "code=200", "phases=["} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log line missing %q: %s", want, line)
		}
	}
	if !strings.Contains(line, "sched.exec=") {
		t.Errorf("slow log phases missing sched.exec self-time: %s", line)
	}
}
