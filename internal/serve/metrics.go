package serve

// /metrics in Prometheus text exposition format, hand-rolled — the
// counters all exist already on the public wse surface (PlanStats,
// SchedStats, PlanStore.Stats), so the daemon only formats snapshots;
// it never reaches into internals and needs no client library.

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	wse "repro"

	"repro/internal/obs"
	"repro/internal/resolve"
)

// httpStats counts requests per endpoint and status code.
type httpStats struct {
	mu     sync.Mutex
	counts map[string]int64 // `endpoint|code` -> count
}

func (h *httpStats) record(endpoint string, code int) {
	h.mu.Lock()
	if h.counts == nil {
		h.counts = make(map[string]int64)
	}
	h.counts[fmt.Sprintf("%s|%d", endpoint, code)]++
	h.mu.Unlock()
}

func (h *httpStats) snapshot() map[string]int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]int64, len(h.counts))
	for k, v := range h.counts {
		out[k] = v
	}
	return out
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	emit := func(name, typ string, lines ...string) {
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	c := func(name string, v int64) string { return fmt.Sprintf("%s %d", name, v) }
	g := func(name string, v float64) string { return fmt.Sprintf("%s %g", name, v) }

	ps := s.cfg.Session.PlanStats()
	emit("wse_plan_cache_hits_total", "counter", c("wse_plan_cache_hits_total", ps.Hits))
	emit("wse_plan_cache_misses_total", "counter", c("wse_plan_cache_misses_total", ps.Misses))
	emit("wse_plan_cache_evictions_total", "counter", c("wse_plan_cache_evictions_total", ps.Evictions))
	emit("wse_plan_cache_store_hits_total", "counter", c("wse_plan_cache_store_hits_total", ps.StoreHits))
	emit("wse_plan_cache_store_errors_total", "counter", c("wse_plan_cache_store_errors_total", ps.StoreErrors))
	emit("wse_plan_cache_resident", "gauge", c("wse_plan_cache_resident", int64(ps.Size)))

	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		emit("wse_plan_store_loads_total", "counter", c("wse_plan_store_loads_total", st.Loads))
		emit("wse_plan_store_misses_total", "counter", c("wse_plan_store_misses_total", st.Misses))
		emit("wse_plan_store_load_errors_total", "counter", c("wse_plan_store_load_errors_total", st.LoadErrors))
		emit("wse_plan_store_saves_total", "counter", c("wse_plan_store_saves_total", st.Saves))
		emit("wse_plan_store_save_errors_total", "counter", c("wse_plan_store_save_errors_total", st.SaveErrors))
		emit("wse_plan_store_quarantined_total", "counter", c("wse_plan_store_quarantined_total", st.Quarantined))
		emit("wse_plan_store_plans", "gauge", c("wse_plan_store_plans", int64(st.Plans)))
		emit("wse_plan_store_load_seconds_total", "counter", g("wse_plan_store_load_seconds_total", st.LoadLatency.Seconds()))
		emit("wse_plan_store_save_seconds_total", "counter", g("wse_plan_store_save_seconds_total", st.SaveLatency.Seconds()))
	}

	if s.cfg.Resolver != nil {
		stages := s.cfg.Resolver.Stats()
		stageCounter := func(field string, pick func(st resolve.Stats) int64) {
			lines := make([]string, 0, len(stages))
			for _, st := range stages {
				lines = append(lines, fmt.Sprintf("wse_resolve_%s_total{stage=%q} %d", field, st.Stage, pick(st)))
			}
			emit("wse_resolve_"+field+"_total", "counter", lines...)
		}
		stageCounter("lookups", func(st resolve.Stats) int64 { return st.Lookups })
		stageCounter("hits", func(st resolve.Stats) int64 { return st.Hits })
		stageCounter("misses", func(st resolve.Stats) int64 { return st.Misses })
		stageCounter("errors", func(st resolve.Stats) int64 { return st.Errors })
		stageCounter("save_errors", func(st resolve.Stats) int64 { return st.SaveErrors })
		lat := make([]string, 0, len(stages))
		for _, st := range stages {
			lat = append(lat, fmt.Sprintf("wse_resolve_latency_seconds_total{stage=%q} %g", st.Stage, st.Latency.Seconds()))
		}
		emit("wse_resolve_latency_seconds_total", "counter", lat...)
	}

	sched := s.cfg.Session.SchedStats()
	names := make([]string, 0, len(sched.Tenants))
	for name := range sched.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	tenantCounter := func(field string, pick func(t wse.TenantStats) int64) {
		lines := make([]string, 0, len(names))
		for _, name := range names {
			t := sched.Tenants[name]
			lines = append(lines, fmt.Sprintf("wse_tenant_%s_total{tenant=%q,class=%q} %d", field, name, t.Class, pick(t)))
		}
		emit("wse_tenant_"+field+"_total", "counter", lines...)
	}
	tenantCounter("submitted", func(t wse.TenantStats) int64 { return t.Submitted })
	tenantCounter("served", func(t wse.TenantStats) int64 { return t.Served })
	tenantCounter("rejected", func(t wse.TenantStats) int64 { return t.Rejected })
	tenantCounter("cancelled", func(t wse.TenantStats) int64 { return t.Cancelled })
	tenantCounter("failed", func(t wse.TenantStats) int64 { return t.Failed })
	waits := make([]string, 0, 2*len(names))
	for _, name := range names {
		t := sched.Tenants[name]
		waits = append(waits,
			fmt.Sprintf("wse_tenant_queue_wait_seconds{tenant=%q,quantile=\"0.5\"} %g", name, t.QueueWaitP50.Seconds()),
			fmt.Sprintf("wse_tenant_queue_wait_seconds{tenant=%q,quantile=\"0.99\"} %g", name, t.QueueWaitP99.Seconds()))
	}
	emit("wse_tenant_queue_wait_seconds", "gauge", waits...)

	emit("wse_panics_total", "counter", c("wse_panics_total", sched.Panics))
	emit("wse_http_panics_total", "counter", c("wse_http_panics_total", s.httpPanics.Load()))

	emit("wse_pool_workers", "gauge", c("wse_pool_workers", int64(sched.Pool.Workers)))
	emit("wse_pool_running", "gauge", c("wse_pool_running", int64(sched.Pool.Running)))
	emit("wse_pool_queue_depth", "gauge", c("wse_pool_queue_depth", int64(sched.Pool.Depth)))
	emit("wse_pool_queue_depth_max", "gauge", c("wse_pool_queue_depth_max", int64(sched.Pool.MaxDepth)))
	emit("wse_pool_saturated_seconds_total", "counter", g("wse_pool_saturated_seconds_total", sched.Pool.Saturated.Seconds()))

	emit("wse_jobs_resident", "gauge", c("wse_jobs_resident", int64(s.jobs.len())))

	httpCounts := s.http.snapshot()
	keys := make([]string, 0, len(httpCounts))
	for k := range httpCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	reqs := make([]string, 0, len(keys))
	for _, k := range keys {
		ep, code, _ := strings.Cut(k, "|")
		reqs = append(reqs, fmt.Sprintf("wse_http_requests_total{endpoint=%q,code=%q} %d", ep, code, httpCounts[k]))
	}
	emit("wse_http_requests_total", "counter", reqs...)

	writeHistogramVec(&b, "wse_http_request_duration_seconds", s.httpDur.Snapshot())
	writeHistogramVec(&b, "wse_sched_queue_wait_seconds", sched.QueueWaitHist)

	goroutines, heap, gcPause := s.rt.snapshot(time.Now())
	emit("wse_goroutines", "gauge", c("wse_goroutines", goroutines))
	emit("wse_heap_alloc_bytes", "gauge", c("wse_heap_alloc_bytes", heap))
	emit("wse_gc_pause_seconds_total", "counter", g("wse_gc_pause_seconds_total", gcPause))

	emit("wse_up", "gauge", c("wse_up", boolGauge(!s.draining.Load())))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// writeHistogramVec renders one histogram family in Prometheus text
// form: cumulative _bucket{...,le="..."} series per label set (keys are
// pre-rendered label bodies), then _sum and _count.
func writeHistogramVec(b *strings.Builder, name string, snaps map[string]obs.HistogramSnapshot) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	labels := make([]string, 0, len(snaps))
	for l := range snaps {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		snap := snaps[l]
		var cum int64
		for i, bound := range snap.Bounds {
			cum += snap.Counts[i]
			fmt.Fprintf(b, "%s_bucket{%s,le=\"%g\"} %d\n", name, l, bound, cum)
		}
		fmt.Fprintf(b, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, l, snap.Count)
		fmt.Fprintf(b, "%s_sum{%s} %g\n", name, l, snap.Sum)
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, l, snap.Count)
	}
}

// runtimeStatsCache caches runtime.ReadMemStats (a stop-the-world-ish
// call) for about a second, so an aggressive scraper cannot stall the
// daemon by hammering /metrics.
type runtimeStatsCache struct {
	mu         sync.Mutex
	at         time.Time
	goroutines int64
	heap       int64
	gcPause    float64
}

func (rc *runtimeStatsCache) snapshot(now time.Time) (goroutines, heapAlloc int64, gcPauseSeconds float64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.at.IsZero() || now.Sub(rc.at) >= time.Second {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		rc.at = now
		rc.goroutines = int64(runtime.NumGoroutine())
		rc.heap = int64(ms.HeapAlloc)
		rc.gcPause = float64(ms.PauseTotalNs) / 1e9
	}
	return rc.goroutines, rc.heap, rc.gcPause
}
