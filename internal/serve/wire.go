package serve

// The daemon's JSON wire format. Shapes travel as the same strings the
// CLI flags use (kind names are the plan-key kind strings, so a wire
// shape round-trips through the plan cache and store unchanged), vectors
// as JSON arrays of numbers. float32 values round-trip exactly through
// JSON's float64 numbers, which is what lets the acceptance check
// compare wire results bit for bit against in-process runs.

import (
	"fmt"
	"strconv"
	"strings"

	wse "repro"
)

// ShapeWire is a wse.Shape as it appears on the wire. Zero-valued fields
// may be omitted; an empty algorithm selects auto-selection exactly as
// the CLI flag defaults do.
type ShapeWire struct {
	Kind   string `json:"kind"`
	Alg    string `json:"alg,omitempty"`
	Alg2D  string `json:"alg2d,omitempty"`
	P      int    `json:"p,omitempty"`
	Width  int    `json:"width,omitempty"`
	Height int    `json:"height,omitempty"`
	B      int    `json:"b"`
	Op     string `json:"op,omitempty"`
}

// Shape resolves the wire spelling into a wse.Shape. Failures wrap
// wse.ErrBadShape so the transport maps them to 400 like any other
// validation error; the full Shape.Validate still runs inside the verbs.
func (sw ShapeWire) Shape() (wse.Shape, error) {
	sh := wse.Shape{
		Kind:   wse.Collective(sw.Kind),
		Alg:    wse.Algorithm(sw.Alg),
		Alg2D:  wse.Algorithm2D(sw.Alg2D),
		P:      sw.P,
		Width:  sw.Width,
		Height: sw.Height,
		B:      sw.B,
	}
	if sw.Alg == "" {
		sh.Alg = wse.Auto
	}
	if sw.Alg2D == "" {
		sh.Alg2D = wse.Auto2D
	}
	switch strings.ToLower(sw.Op) {
	case "", "sum":
		sh.Op = wse.Sum
	case "max":
		sh.Op = wse.Max
	case "min":
		sh.Op = wse.Min
	default:
		return wse.Shape{}, fmt.Errorf("%w: unknown op %q (sum, max, min)", wse.ErrBadShape, sw.Op)
	}
	return sh, nil
}

// StatsWire is the fabric cost metrics slice of a report.
type StatsWire struct {
	Hops        int64 `json:"hops"`
	RampMoves   int64 `json:"ramp_moves"`
	MaxReceived int64 `json:"max_received"`
	MaxQueueLen int   `json:"max_queue_len"`
	Noops       int64 `json:"noops,omitempty"`
	Steps       int64 `json:"steps,omitempty"`
}

// ReportWire is the result of a run as it appears on the wire: measured
// cycles, the model estimate, the root vector and the cost metrics. The
// per-PE maps stay server-side — they are a debugging surface, and
// shipping W×H vectors per request would drown the result that matters.
type ReportWire struct {
	Cycles    int64     `json:"cycles"`
	Predicted float64   `json:"predicted"`
	Root      []float32 `json:"root,omitempty"`
	Stats     StatsWire `json:"stats"`
}

func reportWire(rep *wse.Report) ReportWire {
	return ReportWire{
		Cycles:    rep.Cycles,
		Predicted: rep.Predicted,
		Root:      rep.Root,
		Stats: StatsWire{
			Hops:        rep.Stats.Hops,
			RampMoves:   rep.Stats.RampMoves,
			MaxReceived: rep.Stats.MaxReceived,
			MaxQueueLen: rep.Stats.MaxQueueLen,
			Noops:       rep.Stats.Noops,
			Steps:       rep.Stats.Steps,
		},
	}
}

// TenantSpec is one parsed tenant of a -tenants flag.
type TenantSpec struct {
	Name string
	Cfg  wse.TenantConfig
}

// ParseTenantClass resolves a priority-class name.
func ParseTenantClass(class string) (wse.Priority, error) {
	switch strings.ToLower(class) {
	case "interactive":
		return wse.Interactive, nil
	case "batch":
		return wse.Batch, nil
	case "background":
		return wse.Background, nil
	}
	return wse.Batch, fmt.Errorf("bad tenant class %q (interactive, batch, background)", class)
}

// ParseTenants parses a comma list of name:class:weight[:maxqueue]
// entries — the same spelling wsecollect serve uses — into the tenant
// set a daemon pre-registers at startup.
func ParseTenants(spec string) ([]TenantSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []TenantSpec
	for _, item := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("bad tenant %q (want name:class:weight[:maxqueue])", item)
		}
		ts := TenantSpec{Name: parts[0]}
		var err error
		if ts.Cfg.Priority, err = ParseTenantClass(parts[1]); err != nil {
			return nil, err
		}
		if ts.Cfg.Weight, err = strconv.Atoi(parts[2]); err != nil || ts.Cfg.Weight < 1 {
			return nil, fmt.Errorf("bad tenant weight %q", parts[2])
		}
		if len(parts) == 4 {
			if ts.Cfg.MaxQueue, err = strconv.Atoi(parts[3]); err != nil || ts.Cfg.MaxQueue < 1 {
				return nil, fmt.Errorf("bad tenant maxqueue %q", parts[3])
			}
		}
		out = append(out, ts)
	}
	return out, nil
}
