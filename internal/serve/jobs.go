package serve

// The async tier: POST /v1/submit parks a Future in the job registry and
// returns an id; GET /v1/jobs/{id} polls it. Jobs are detached from the
// submitting connection (the whole point of the tier — fire, disconnect,
// poll later), so they run under context.Background and survive the
// client going away. Completed jobs linger for JobTTL so a poller gets
// at least one look at the result; the Server's background sweeper then
// reaps them on a timer, so jobs abandoned without ever being polled are
// reclaimed too (the old lazy on-access GC leaked exactly those).

import (
	"fmt"
	"sync"
	"time"

	wse "repro"
)

type job struct {
	fut    *wse.Future
	tenant string
	key    string    // idempotency key ("" when the submit carried none)
	doneAt time.Time // zero until a sweep or poll first observes completion
}

type jobRegistry struct {
	mu   sync.Mutex
	jobs map[string]*job
	keys map[string]string // keyScope(tenant, key) → job id
	seq  int64
	ttl  time.Duration
	now  func() time.Time // test hook
}

func newJobRegistry(ttl time.Duration) *jobRegistry {
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	return &jobRegistry{
		jobs: make(map[string]*job),
		keys: make(map[string]string),
		ttl:  ttl,
		now:  time.Now,
	}
}

// keyScope namespaces idempotency keys per tenant, so two tenants using
// the same key never collide.
func keyScope(tenant, key string) string { return tenant + "\x00" + key }

// add registers a future and returns its job id. A non-empty key
// registers the job for idempotent resubmission lookup (byKey). If the
// key is already taken — a retry raced another retry past byKey — the
// existing job wins and its id is returned; the freshly submitted
// duplicate future is left to complete unobserved, which is safe
// (replays are deterministic) if mildly wasteful on a rare race.
func (r *jobRegistry) add(fut *wse.Future, tenant, key string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if key != "" {
		if id, ok := r.keys[keyScope(tenant, key)]; ok {
			return id
		}
	}
	r.seq++
	id := fmt.Sprintf("j%d", r.seq)
	r.jobs[id] = &job{fut: fut, tenant: tenant, key: key}
	if key != "" {
		r.keys[keyScope(tenant, key)] = id
	}
	return id
}

// byKey returns the registered job id for a tenant's idempotency key.
func (r *jobRegistry) byKey(tenant, key string) (string, bool) {
	if key == "" {
		return "", false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.keys[keyScope(tenant, key)]
	return id, ok
}

// get returns the job for id.
func (r *jobRegistry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// len reports the resident job count (for /metrics).
func (r *jobRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}

// sweep stamps newly completed jobs and deletes the ones whose stamp has
// aged past the TTL, along with their idempotency keys. The Server's
// sweeper goroutine drives it; tests drive it directly with a fake
// clock.
func (r *jobRegistry) sweep() {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	for id, j := range r.jobs {
		select {
		case <-j.fut.Done():
			if j.doneAt.IsZero() {
				j.doneAt = now
			} else if now.Sub(j.doneAt) > r.ttl {
				delete(r.jobs, id)
				if j.key != "" {
					delete(r.keys, keyScope(j.tenant, j.key))
				}
			}
		default:
		}
	}
}
