package serve

// The async tier: POST /v1/submit parks a Future in the job registry and
// returns an id; GET /v1/jobs/{id} polls it. Jobs are detached from the
// submitting connection (the whole point of the tier — fire, disconnect,
// poll later), so they run under context.Background and survive the
// client going away. Completed jobs linger for JobTTL so a poller gets
// at least one look at the result, then lazy GC — run on every submit
// and poll — reaps them; there is no background goroutine to leak.

import (
	"fmt"
	"sync"
	"time"

	wse "repro"
)

type job struct {
	fut    *wse.Future
	tenant string
	doneAt time.Time // zero until a GC or poll first observes completion
}

type jobRegistry struct {
	mu   sync.Mutex
	jobs map[string]*job
	seq  int64
	ttl  time.Duration
	now  func() time.Time // test hook
}

func newJobRegistry(ttl time.Duration) *jobRegistry {
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	return &jobRegistry{jobs: make(map[string]*job), ttl: ttl, now: time.Now}
}

// add registers a future and returns its job id.
func (r *jobRegistry) add(fut *wse.Future, tenant string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gcLocked()
	r.seq++
	id := fmt.Sprintf("j%d", r.seq)
	r.jobs[id] = &job{fut: fut, tenant: tenant}
	return id
}

// get returns the job for id, running a GC pass first — so a job polled
// after its post-completion TTL is already gone.
func (r *jobRegistry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gcLocked()
	j, ok := r.jobs[id]
	return j, ok
}

// len reports the resident job count (for /metrics).
func (r *jobRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}

// gcLocked stamps newly completed jobs and deletes the ones whose stamp
// has aged past the TTL. Caller holds r.mu.
func (r *jobRegistry) gcLocked() {
	now := r.now()
	for id, j := range r.jobs {
		select {
		case <-j.fut.Done():
			if j.doneAt.IsZero() {
				j.doneAt = now
			} else if now.Sub(j.doneAt) > r.ttl {
				delete(r.jobs, id)
			}
		default:
		}
	}
}
