// Package serve is the HTTP layer of the wsed daemon: the Shape-first
// verbs (Run, Predict, Bound, Submit) over JSON, in front of a
// wse.Session. The package holds everything testable without a socket —
// handlers, tenant mapping, error translation, drain sequencing, the job
// registry, /metrics rendering — so cmd/wsed is only flag parsing, a
// net/http listener and signal wiring.
//
// Endpoints:
//
//	POST /v1/run      {"shape": {...}, "inputs": [[...], ...]} -> result
//	POST /v1/predict  {"shape": {...}}                         -> model estimate
//	POST /v1/bound    {"shape": {...}}                         -> runtime lower bound
//	POST /v1/submit   run's async twin                         -> {"id": "..."} (202)
//	GET  /v1/jobs/{id}                                         -> pending | done | failed
//	GET  /healthz                                              -> 200, or 503 when draining
//	GET  /metrics                                              -> Prometheus text format
//
// Tenancy is an identity header (X-WSE-Tenant, or Authorization: Bearer
// <name>) mapped to Session.WithTenant: names registered at startup keep
// their configured QoS class, unknown names are admitted under the
// configured default TenantConfig, and no header serves under the
// session's default tenant. The scheduler's typed failures translate to
// transport-level contracts: ErrOverloaded becomes 429 with a
// Retry-After hint, ErrBadShape 400, a draining or closed daemon 503.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	wse "repro"
)

// Config assembles a Server. Session is required; everything else has a
// serving-grade default.
type Config struct {
	// Session executes every request. The Server owns its shutdown:
	// Drain closes it.
	Session *wse.Session
	// Store, when non-nil, is the session's attached plan store; /metrics
	// then exposes its counters alongside the cache's.
	Store *wse.PlanStore
	// DefaultTenant is the QoS config under which unknown tenant names
	// are admitted. The zero value is a weight-1 Batch tenant with the
	// default queue bound.
	DefaultTenant wse.TenantConfig
	// Tenants pre-registers named tenants with explicit QoS configs.
	Tenants []TenantSpec
	// RetryAfter is the hint attached to 429 responses (default 1s).
	RetryAfter time.Duration
	// JobTTL bounds how long a completed async job stays pollable
	// (default 5m).
	JobTTL time.Duration
	// MaxBody caps request body size in bytes (default 64 MiB — a full
	// 750×994 wafer of B=16 float32 vectors fits with headroom).
	MaxBody int64
}

// Server is the daemon's handler set. Create with New, mount via
// Handler, stop via Drain.
type Server struct {
	cfg  Config
	mux  *http.ServeMux
	jobs *jobRegistry
	http httpStats

	draining atomic.Bool
	drainMu  sync.RWMutex // held shared by in-flight requests, exclusively by Drain

	mu      sync.Mutex
	tenants map[string]*wse.Tenant
}

// New assembles a Server over the session. It does not listen; mount
// Handler on any net/http server (or httptest).
func New(cfg Config) *Server {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 64 << 20
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		jobs:    newJobRegistry(cfg.JobTTL),
		tenants: make(map[string]*wse.Tenant),
	}
	for _, ts := range cfg.Tenants {
		s.tenants[ts.Name] = cfg.Session.WithTenant(ts.Name, ts.Cfg)
	}
	s.mux.HandleFunc("POST /v1/run", s.api("run", s.handleRun))
	s.mux.HandleFunc("POST /v1/predict", s.api("predict", s.handlePredict))
	s.mux.HandleFunc("POST /v1/bound", s.api("bound", s.handleBound))
	s.mux.HandleFunc("POST /v1/submit", s.api("submit", s.handleSubmit))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.api("jobs", s.handleJob))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// StartDrain stops admission: API requests arriving after it return 503
// and /healthz flips unhealthy, while requests already in flight keep
// running. Idempotent.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Drain is the full graceful stop: stop admission, wait for every
// in-flight request, then close the session (draining its queues and
// worker pool). After Drain the Server only answers /healthz (503) and
// /metrics.
func (s *Server) Drain() error {
	s.StartDrain()
	s.drainMu.Lock() // barrier: every in-flight request holds an RLock
	s.drainMu.Unlock()
	return s.cfg.Session.Close()
}

// api wraps an endpoint handler with the serving middleware: drain
// gating, in-flight accounting and per-endpoint status metrics.
func (s *Server) api(endpoint string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer func() { s.http.record(endpoint, sw.code()) }()
		if s.draining.Load() {
			s.writeError(sw, http.StatusServiceUnavailable, "draining")
			return
		}
		s.drainMu.RLock()
		defer s.drainMu.RUnlock()
		if s.draining.Load() { // drain began between the check and the lock
			s.writeError(sw, http.StatusServiceUnavailable, "draining")
			return
		}
		r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBody)
		h(sw, r)
	}
}

// statusWriter captures the response code for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	wrote int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.wrote == 0 {
		w.wrote = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.wrote == 0 {
		w.wrote = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) code() int {
	if w.wrote == 0 {
		return http.StatusOK
	}
	return w.wrote
}

// verbs is the slice of the Session/Tenant surface the daemon serves;
// both *wse.Session (the default tenant) and *wse.Tenant satisfy it.
type verbs interface {
	Run(ctx context.Context, sh wse.Shape, inputs [][]float32, opts ...wse.RunOption) (*wse.Report, error)
	Submit(ctx context.Context, sh wse.Shape, inputs [][]float32, opts ...wse.RunOption) *wse.Future
}

// tenantName extracts the caller's tenant identity: the X-WSE-Tenant
// header, else a bearer token (the token IS the tenant name — wsed
// deployments front real credential checking with their ingress, and the
// mapping layer here is where a verifier would slot in).
func tenantName(r *http.Request) string {
	if name := r.Header.Get("X-WSE-Tenant"); name != "" {
		return name
	}
	if auth := r.Header.Get("Authorization"); len(auth) > 7 && auth[:7] == "Bearer " {
		return auth[7:]
	}
	return ""
}

// verbsFor maps the request's tenant identity to a serving handle: a
// pre-registered tenant keeps its configured QoS, an unknown name is
// registered under the default TenantConfig on first sight, no identity
// serves as the session's default tenant.
func (s *Server) verbsFor(r *http.Request) verbs {
	name := tenantName(r)
	if name == "" {
		return s.cfg.Session
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		t = s.cfg.Session.WithTenant(name, s.cfg.DefaultTenant)
		s.tenants[name] = t
	}
	return t
}

type runRequest struct {
	Shape  ShapeWire   `json:"shape"`
	Inputs [][]float32 `json:"inputs"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests {
		secs := int64(math.Ceil(s.cfg.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

// errorCode maps the wse error taxonomy onto HTTP statuses. The typed
// errors carry the contract: overload is the backpressure signal a
// client should retry after a delay, a bad shape will never succeed, a
// closed session means the process is going away.
func errorCode(err error) int {
	switch {
	case errors.Is(err, wse.ErrBadShape):
		return http.StatusBadRequest
	case errors.Is(err, wse.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, wse.ErrSessionClosed), errors.Is(err, wse.ErrTenantRemoved):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

func (s *Server) writeVerbError(w http.ResponseWriter, err error) {
	s.writeError(w, errorCode(err), err.Error())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// decode parses a JSON request body, mapping malformed JSON to 400.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if !s.decode(w, r, &req) {
		return
	}
	sh, err := req.Shape.Shape()
	if err != nil {
		s.writeVerbError(w, err)
		return
	}
	rep, err := s.verbsFor(r).Run(r.Context(), sh, req.Inputs)
	if err != nil {
		s.writeVerbError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, reportWire(rep))
}

type estimateRequest struct {
	Shape ShapeWire `json:"shape"`
}

// handleEstimate is the shared shape->number tail of /v1/predict and
// /v1/bound. Both model verbs are total (unknown shapes estimate to
// NaN), so the daemon validates first to keep the 400 contract.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request, field string, f func(wse.Shape) float64) {
	var req estimateRequest
	if !s.decode(w, r, &req) {
		return
	}
	sh, err := req.Shape.Shape()
	if err == nil {
		err = sh.Validate()
	}
	if err != nil {
		s.writeVerbError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{field: f(sh)})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.handleEstimate(w, r, "predicted_cycles", func(sh wse.Shape) float64 { return s.cfg.Session.Predict(sh) })
}

func (s *Server) handleBound(w http.ResponseWriter, r *http.Request) {
	s.handleEstimate(w, r, "bound_cycles", func(sh wse.Shape) float64 { return s.cfg.Session.Bound(sh) })
}

type submitResponse struct {
	ID  string `json:"id"`
	URL string `json:"status_url"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if !s.decode(w, r, &req) {
		return
	}
	sh, err := req.Shape.Shape()
	if err != nil {
		s.writeVerbError(w, err)
		return
	}
	name := tenantName(r)
	// Jobs are detached from the submitting connection: Background, not
	// r.Context(), or closing the HTTP client would cancel the work the
	// async tier exists to decouple.
	fut := s.verbsFor(r).Submit(context.Background(), sh, req.Inputs)
	// Admission control and validation resolve synchronously; surface
	// those failures on the submit itself so a rejected job never gets
	// an id (and the 429 Retry-After contract holds on this path too).
	select {
	case <-fut.Done():
		if err := fut.Err(); err != nil {
			s.writeVerbError(w, err)
			return
		}
	default:
	}
	id := s.jobs.add(fut, name)
	writeJSON(w, http.StatusAccepted, submitResponse{ID: id, URL: "/v1/jobs/" + id})
}

type jobResponse struct {
	ID     string      `json:"id"`
	State  string      `json:"state"` // pending | done | failed
	Result *ReportWire `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	select {
	case <-j.fut.Done():
		rep, err := j.fut.Wait()
		if err != nil {
			writeJSON(w, http.StatusOK, jobResponse{ID: id, State: "failed", Error: err.Error()})
			return
		}
		wire := reportWire(rep)
		writeJSON(w, http.StatusOK, jobResponse{ID: id, State: "done", Result: &wire})
	default:
		writeJSON(w, http.StatusOK, jobResponse{ID: id, State: "pending"})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}
