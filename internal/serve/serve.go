// Package serve is the HTTP layer of the wsed daemon: the Shape-first
// verbs (Run, Predict, Bound, Submit) over JSON, in front of a
// wse.Session. The package holds everything testable without a socket —
// handlers, tenant mapping, error translation, drain sequencing, the job
// registry, /metrics rendering — so cmd/wsed is only flag parsing, a
// net/http listener and signal wiring.
//
// Endpoints:
//
//	POST /v1/run      {"shape": {...}, "inputs": [[...], ...]} -> result
//	POST /v1/predict  {"shape": {...}}                         -> model estimate
//	POST /v1/bound    {"shape": {...}}                         -> runtime lower bound
//	POST /v1/submit   run's async twin                         -> {"id": "..."} (202)
//	GET  /v1/jobs/{id}                                         -> pending | done | failed
//	GET  /healthz                                              -> 200, or 503 when draining
//	GET  /metrics                                              -> Prometheus text format
//
// Tenancy is an identity header (X-WSE-Tenant, or Authorization: Bearer
// <name>) mapped to Session.WithTenant: names registered at startup keep
// their configured QoS class, unknown names are admitted under the
// configured default TenantConfig, and no header serves under the
// session's default tenant. The scheduler's typed failures translate to
// transport-level contracts: ErrOverloaded becomes 429 with a
// Retry-After hint, ErrBadShape 400, a draining or closed daemon 503.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	wse "repro"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/resolve"
)

// Config assembles a Server. Session is required; everything else has a
// serving-grade default.
type Config struct {
	// Session executes every request. The Server owns its shutdown:
	// Drain closes it.
	Session *wse.Session
	// Store, when non-nil, is the session's attached plan store; /metrics
	// then exposes its counters alongside the cache's.
	Store *wse.PlanStore
	// Resolver, when non-nil, is the resolver chain attached to the
	// session (wired separately via wse.SessionConfig.Resolver); /metrics
	// then exposes its per-stage hit/miss/latency/error breakdown.
	Resolver resolve.Resolver
	// DefaultTenant is the QoS config under which unknown tenant names
	// are admitted. The zero value is a weight-1 Batch tenant with the
	// default queue bound.
	DefaultTenant wse.TenantConfig
	// Tenants pre-registers named tenants with explicit QoS configs.
	Tenants []TenantSpec
	// RetryAfter is the floor (and no-signal fallback) of the 429
	// Retry-After hint (default 1s). The hint itself is derived per
	// response from live scheduler load; see retryAfter.
	RetryAfter time.Duration
	// RequestTimeout bounds every synchronous API request server-side
	// (0 = unbounded): the request's context carries the deadline, so an
	// expired request is shed from the scheduler queue — or aborted
	// mid-simulation by the fabric watchdog — and answered 504. Clients
	// can only tighten it, per request, with an X-WSE-Deadline-Ms header.
	RequestTimeout time.Duration
	// JobTTL bounds how long a completed async job stays pollable
	// (default 5m).
	JobTTL time.Duration
	// MaxBody caps request body size in bytes (default 64 MiB — a full
	// 750×994 wafer of B=16 float32 vectors fits with headroom).
	MaxBody int64
	// Tracer, when non-nil, opens one root span per API request (joining
	// the caller's trace via the traceparent header) and serves the
	// committed-trace ring at GET /debug/traces. Nil disables tracing;
	// the cost then is one atomic load per instrumented seam.
	Tracer *obs.Tracer
	// SlowThreshold, when > 0, logs one structured line (trace id,
	// tenant, route, phase breakdown) per request at least this slow,
	// rate-limited to avoid log storms under overload.
	SlowThreshold time.Duration
	// SlowLogger receives the slow-request lines (default log.Default()).
	SlowLogger *log.Logger
}

// Server is the daemon's handler set. Create with New, mount via
// Handler, stop via Drain.
type Server struct {
	cfg  Config
	mux  *http.ServeMux
	jobs *jobRegistry
	http httpStats

	// httpDur is the wse_http_request_duration_seconds histogram, one
	// child per route+code, observed by the api middleware for every
	// request whether or not tracing is enabled.
	httpDur *obs.HistogramVec
	slowLim slowLimiter
	rt      runtimeStatsCache

	// httpPanics counts panics recovered in the HTTP middleware (handler
	// bugs, injected serve.* panic failpoints) — the layer above the
	// scheduler's own Stats().Panics.
	httpPanics atomic.Int64

	draining atomic.Bool
	drainMu  sync.RWMutex // held shared by in-flight requests, exclusively by Drain

	stopSweep chan struct{}
	sweepDone chan struct{}
	sweepOnce sync.Once

	mu      sync.Mutex
	tenants map[string]*wse.Tenant
}

// New assembles a Server over the session. It does not listen; mount
// Handler on any net/http server (or httptest).
func New(cfg Config) *Server {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 64 << 20
	}
	if cfg.SlowLogger == nil {
		cfg.SlowLogger = log.Default()
	}
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		jobs:      newJobRegistry(cfg.JobTTL),
		httpDur:   obs.NewHistogramVec(nil),
		tenants:   make(map[string]*wse.Tenant),
		stopSweep: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	for _, ts := range cfg.Tenants {
		s.tenants[ts.Name] = cfg.Session.WithTenant(ts.Name, ts.Cfg)
	}
	go s.sweeper()
	s.mux.HandleFunc("POST /v1/run", s.api("run", s.handleRun))
	s.mux.HandleFunc("POST /v1/predict", s.api("predict", s.handlePredict))
	s.mux.HandleFunc("POST /v1/bound", s.api("bound", s.handleBound))
	s.mux.HandleFunc("POST /v1/submit", s.api("submit", s.handleSubmit))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.api("jobs", s.handleJob))
	s.mux.HandleFunc("GET /v1/plans/{key}", s.api("plans", s.handlePlanBlob))
	s.mux.HandleFunc("POST /v1/warm", s.api("warm", s.handleWarm))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// StartDrain stops admission: API requests arriving after it return 503
// and /healthz flips unhealthy, while requests already in flight keep
// running. Idempotent.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Drain is the full graceful stop: stop admission and the job sweeper,
// wait for every in-flight request, then close the session (draining its
// queues and worker pool). After Drain the Server only answers /healthz
// (503) and /metrics.
func (s *Server) Drain() error {
	s.StartDrain()
	s.stopSweeper()
	s.drainMu.Lock() // barrier: every in-flight request holds an RLock
	s.drainMu.Unlock()
	return s.cfg.Session.Close()
}

// sweeper is the job registry's background GC: abandoned submit jobs
// are reclaimed on a timer even if /v1/jobs is never polled again. It
// runs from New until Drain (or stopSweeper).
func (s *Server) sweeper() {
	defer close(s.sweepDone)
	t := time.NewTicker(sweepInterval(s.jobs.ttl))
	defer t.Stop()
	for {
		select {
		case <-s.stopSweep:
			return
		case <-t.C:
			s.jobs.sweep()
		}
	}
}

// sweepInterval picks the sweeper period: a quarter TTL bounds a job's
// post-TTL overstay at ~25%, clamped so tiny test TTLs don't spin and
// huge TTLs still sweep often enough to see a drain promptly.
func sweepInterval(ttl time.Duration) time.Duration {
	iv := ttl / 4
	if iv < 50*time.Millisecond {
		iv = 50 * time.Millisecond
	}
	if iv > 30*time.Second {
		iv = 30 * time.Second
	}
	return iv
}

// stopSweeper halts the background job GC and waits for it to exit.
// Idempotent; Drain calls it.
func (s *Server) stopSweeper() {
	s.sweepOnce.Do(func() { close(s.stopSweep) })
	<-s.sweepDone
}

// deadlineHeader is the client's per-request deadline budget in
// milliseconds. It can only tighten the server's RequestTimeout, never
// extend it.
const deadlineHeader = "X-WSE-Deadline-Ms"

// requestTimeout resolves one request's effective deadline budget:
// the tighter of the server-wide RequestTimeout and the client's
// X-WSE-Deadline-Ms header (malformed or non-positive headers are
// ignored). Zero means unbounded.
func (s *Server) requestTimeout(r *http.Request) time.Duration {
	d := s.cfg.RequestTimeout
	if h := r.Header.Get(deadlineHeader); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			if hd := time.Duration(ms) * time.Millisecond; d <= 0 || hd < d {
				d = hd
			}
		}
	}
	return d
}

// api wraps an endpoint handler with the serving middleware: drain
// gating, in-flight accounting, per-endpoint status metrics and the
// request-duration histogram, the per-request root trace span (joining
// the caller's trace via traceparent), failpoints, the per-request
// deadline, the slow-request log, and panic isolation — a handler
// panic (or an injected serve.<endpoint> panic) is recovered into a
// typed 500 instead of crashing the daemon's connection goroutine.
func (s *Server) api(endpoint string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		ctx, span := s.cfg.Tracer.Root(r.Context(), "http "+endpoint, r.Header.Get(obs.Header))
		if span != nil {
			span.SetAttr("tenant", tenantName(r))
			r = r.WithContext(ctx)
		}
		defer func() {
			code := sw.code()
			s.http.record(endpoint, code)
			dur := time.Since(start)
			s.httpDur.Observe(httpLabel(endpoint, code), dur.Seconds())
			if code >= 500 {
				span.SetError(fmt.Errorf("http %d", code))
			}
			span.SetAttr("code", code)
			span.End()
			s.maybeLogSlow(endpoint, r, span, code, dur)
		}()
		defer func() {
			if rec := recover(); rec != nil {
				s.httpPanics.Add(1)
				// Only answer if the handler hadn't already written: a
				// panic after a partial response can't be un-sent, and a
				// second WriteHeader would just add log noise.
				if sw.wrote == 0 {
					s.writeError(sw, http.StatusInternalServerError,
						fmt.Sprintf("%v: handler panicked: %v", wse.ErrInternal, rec))
				}
			}
		}()
		if s.draining.Load() {
			s.writeError(sw, http.StatusServiceUnavailable, "draining")
			return
		}
		s.drainMu.RLock()
		defer s.drainMu.RUnlock()
		if s.draining.Load() { // drain began between the check and the lock
			s.writeError(sw, http.StatusServiceUnavailable, "draining")
			return
		}
		if err := faults.Inject("serve." + endpoint); err != nil {
			s.writeError(sw, http.StatusInternalServerError, err.Error())
			return
		}
		if d := s.requestTimeout(r); d > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			r = r.WithContext(ctx)
		}
		r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBody)
		h(sw, r)
	}
}

// statusWriter captures the response code for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	wrote int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.wrote == 0 {
		w.wrote = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.wrote == 0 {
		w.wrote = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) code() int {
	if w.wrote == 0 {
		return http.StatusOK
	}
	return w.wrote
}

// verbs is the slice of the Session/Tenant surface the daemon serves;
// both *wse.Session (the default tenant) and *wse.Tenant satisfy it.
type verbs interface {
	Run(ctx context.Context, sh wse.Shape, inputs [][]float32, opts ...wse.RunOption) (*wse.Report, error)
	Submit(ctx context.Context, sh wse.Shape, inputs [][]float32, opts ...wse.RunOption) *wse.Future
}

// tenantName extracts the caller's tenant identity: the X-WSE-Tenant
// header, else a bearer token (the token IS the tenant name — wsed
// deployments front real credential checking with their ingress, and the
// mapping layer here is where a verifier would slot in).
func tenantName(r *http.Request) string {
	if name := r.Header.Get("X-WSE-Tenant"); name != "" {
		return name
	}
	if auth := r.Header.Get("Authorization"); len(auth) > 7 && auth[:7] == "Bearer " {
		return auth[7:]
	}
	return ""
}

// verbsFor maps the request's tenant identity to a serving handle: a
// pre-registered tenant keeps its configured QoS, an unknown name is
// registered under the default TenantConfig on first sight, no identity
// serves as the session's default tenant.
func (s *Server) verbsFor(r *http.Request) verbs {
	name := tenantName(r)
	if name == "" {
		return s.cfg.Session
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		t = s.cfg.Session.WithTenant(name, s.cfg.DefaultTenant)
		s.tenants[name] = t
	}
	return t
}

type runRequest struct {
	Shape  ShapeWire   `json:"shape"`
	Inputs [][]float32 `json:"inputs"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.FormatInt(s.retryAfterSecs(), 10))
	}
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

// retryAfterSecs derives the 429 Retry-After hint from live load: the
// queue's expected drain time under current depth and recent execution
// p50. With no latency signal yet it falls back to cfg.RetryAfter.
func (s *Server) retryAfterSecs() int64 {
	st := s.cfg.Session.SchedStats()
	var p50 time.Duration
	for _, t := range st.Tenants {
		if t.ExecP50 > p50 {
			p50 = t.ExecP50
		}
	}
	d := deriveRetryAfter(st.Pool.Depth, st.Pool.Workers, p50, s.cfg.RetryAfter)
	return int64(math.Ceil(d.Seconds()))
}

// deriveRetryAfter estimates when an overloaded tenant should come back:
// the current backlog takes ~depth/workers serial rounds of the recent
// p50 to drain, plus one round for the retry itself. The estimate is
// clamped to [max(1s, floor), 30s] — a hint, not a promise, so it errs
// toward the polite side on both ends. With no p50 signal (an idle or
// freshly started pool) it returns the clamped floor.
func deriveRetryAfter(depth, workers int, p50, floor time.Duration) time.Duration {
	lo := floor
	if lo < time.Second {
		lo = time.Second
	}
	const hi = 30 * time.Second
	if p50 <= 0 {
		return lo
	}
	if workers < 1 {
		workers = 1
	}
	d := time.Duration(depth/workers+1) * p50
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// errorCode maps the wse error taxonomy onto HTTP statuses. The typed
// errors carry the contract: overload is the backpressure signal a
// client should retry after a delay, a bad shape will never succeed, a
// closed session means the process is going away, a blown deadline is
// the gateway-timeout the client itself asked for, and a recovered
// panic (ErrInternal) — like any unclassified failure — is a 500 that
// indicts only its own request.
func errorCode(err error) int {
	switch {
	case errors.Is(err, wse.ErrBadShape):
		return http.StatusBadRequest
	case errors.Is(err, wse.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, wse.ErrSessionClosed), errors.Is(err, wse.ErrTenantRemoved):
		return http.StatusServiceUnavailable
	case errors.Is(err, wse.ErrDeadline),
		errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, wse.ErrInternal):
		return http.StatusInternalServerError
	}
	return http.StatusInternalServerError
}

func (s *Server) writeVerbError(w http.ResponseWriter, err error) {
	s.writeError(w, errorCode(err), err.Error())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// decode parses a JSON request body, mapping malformed JSON to 400.
// The span makes wire-side work visible in traces: on big inputs the
// JSON decode is a real phase of the request, not tracer dark matter.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	_, sp := obs.Start(r.Context(), "serve.decode")
	err := json.NewDecoder(r.Body).Decode(v)
	sp.SetError(err)
	sp.End()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

// writeJSONCtx is writeJSON under a "serve.encode" span — used on the
// result-bearing paths where response assembly and serialization are a
// measurable phase of the request.
func writeJSONCtx(ctx context.Context, w http.ResponseWriter, code int, v any) {
	_, sp := obs.Start(ctx, "serve.encode")
	writeJSON(w, code, v)
	sp.End()
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if !s.decode(w, r, &req) {
		return
	}
	sh, err := req.Shape.Shape()
	if err != nil {
		s.writeVerbError(w, err)
		return
	}
	rep, err := s.verbsFor(r).Run(r.Context(), sh, req.Inputs)
	if err != nil {
		s.writeVerbError(w, err)
		return
	}
	writeJSONCtx(r.Context(), w, http.StatusOK, reportWire(rep))
}

type estimateRequest struct {
	Shape ShapeWire `json:"shape"`
}

// handleEstimate is the shared shape->number tail of /v1/predict and
// /v1/bound. Both model verbs are total (unknown shapes estimate to
// NaN), so the daemon validates first to keep the 400 contract.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request, field string, f func(wse.Shape) float64) {
	var req estimateRequest
	if !s.decode(w, r, &req) {
		return
	}
	sh, err := req.Shape.Shape()
	if err == nil {
		err = sh.Validate()
	}
	if err != nil {
		s.writeVerbError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{field: f(sh)})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.handleEstimate(w, r, "predicted_cycles", func(sh wse.Shape) float64 { return s.cfg.Session.Predict(sh) })
}

func (s *Server) handleBound(w http.ResponseWriter, r *http.Request) {
	s.handleEstimate(w, r, "bound_cycles", func(sh wse.Shape) float64 { return s.cfg.Session.Bound(sh) })
}

type submitResponse struct {
	ID  string `json:"id"`
	URL string `json:"status_url"`
}

// idempotencyHeader carries a client-generated key that makes submit
// safe to retry: a resubmission bearing the key of a still-registered
// job gets that job's id back instead of enqueuing duplicate work. Keys
// are scoped per tenant and live exactly as long as their job (TTL after
// completion), which is the retry window the async tier promises.
const idempotencyHeader = "X-WSE-Idempotency-Key"

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if !s.decode(w, r, &req) {
		return
	}
	sh, err := req.Shape.Shape()
	if err != nil {
		s.writeVerbError(w, err)
		return
	}
	name := tenantName(r)
	key := r.Header.Get(idempotencyHeader)
	if id, ok := s.jobs.byKey(name, key); ok {
		writeJSON(w, http.StatusAccepted, submitResponse{ID: id, URL: "/v1/jobs/" + id})
		return
	}
	// Jobs are detached from the submitting connection: Background, not
	// r.Context(), or closing the HTTP client would cancel the work the
	// async tier exists to decouple.
	fut := s.verbsFor(r).Submit(context.Background(), sh, req.Inputs)
	// Admission control and validation resolve synchronously; surface
	// those failures on the submit itself so a rejected job never gets
	// an id (and the 429 Retry-After contract holds on this path too).
	select {
	case <-fut.Done():
		if err := fut.Err(); err != nil {
			s.writeVerbError(w, err)
			return
		}
	default:
	}
	id := s.jobs.add(fut, name, key)
	writeJSON(w, http.StatusAccepted, submitResponse{ID: id, URL: "/v1/jobs/" + id})
}

type jobResponse struct {
	ID     string      `json:"id"`
	State  string      `json:"state"` // pending | done | failed
	Result *ReportWire `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	select {
	case <-j.fut.Done():
		rep, err := j.fut.Wait()
		if err != nil {
			writeJSON(w, http.StatusOK, jobResponse{ID: id, State: "failed", Error: err.Error()})
			return
		}
		wire := reportWire(rep)
		writeJSONCtx(r.Context(), w, http.StatusOK, jobResponse{ID: id, State: "done", Result: &wire})
	default:
		writeJSON(w, http.StatusOK, jobResponse{ID: id, State: "pending"})
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}
