// Package measure implements the paper's time-measurement methodology for
// collectives (§8.3). PEs on the wafer have independent clocks and cannot
// be started simultaneously, so the paper: (1) broadcasts a trigger from
// PE (0,0), on whose arrival each PE samples its local reference clock
// T_R(i,j); (2) has PE (i,j) perform α·(M+N−i−j) memory writes so that
// PEs the trigger reached early wait proportionally longer; (3) samples a
// start clock, runs the collective, and samples an end clock; (4)
// calibrates every sample by subtracting T_R(i,j) + (i+j+2), the per-PE
// trigger arrival offset; and (5) adjusts the wait parameter α until the
// calibrated start spread max T_S' − min T_S' is small enough. The final
// measurement is max T_E' − min T_S'.
//
// The simulator reproduces the two effects the methodology exists to
// defeat — per-PE clock skew and thermally inserted no-ops — so the
// calibration loop here is exercised on realistic inputs, not just on an
// idealised machine.
package measure

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/fabric"
	"repro/internal/mesh"
)

// Clock sample slots used by the instrumented programs.
const (
	slotRef   = 0
	slotStart = 1
	slotEnd   = 2
	numSlots  = 3
)

// Collective describes a measurable fabric program: a PE region and a
// builder that adds the collective's ops, configs and initial vectors to
// a fresh spec.
type Collective struct {
	Width, Height int
	Build         func(spec *fabric.Spec) error
}

// Config tunes the calibration loop.
type Config struct {
	// MaxStartSpread is the calibrated start-time spread the loop aims
	// for. The paper reports achieving <57 cycles in 1D and <129 in 2D;
	// 0 selects 57 for single-row regions and 129 otherwise.
	MaxStartSpread int64
	// MaxIters bounds the α search (default 8).
	MaxIters int
}

func (c Config) withDefaults(height int) Config {
	if c.MaxStartSpread <= 0 {
		if height <= 1 {
			c.MaxStartSpread = 57
		} else {
			c.MaxStartSpread = 129
		}
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 8
	}
	return c
}

// Result is one calibrated measurement.
type Result struct {
	// Cycles is the calibrated collective runtime max T_E' − min T_S'.
	Cycles int64
	// StartSpread is the calibrated start-time spread max T_S' − min T_S'.
	StartSpread int64
	// Alpha is the wait parameter the calibration settled on.
	Alpha int
	// Iterations is the number of calibration runs performed.
	Iterations int
	// Raw is the fabric result of the accepted run.
	Raw *fabric.Result
}

// Measure instruments, calibrates and measures a collective on the fabric
// simulator.
func Measure(c Collective, opt fabric.Options, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(c.Height)
	best := (*Result)(nil)
	alpha := 1
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		res, err := runOnce(c, opt, alpha)
		if err != nil {
			return nil, err
		}
		res.Iterations = iter
		if best == nil || res.StartSpread < best.StartSpread {
			best = res
		}
		if best.StartSpread <= cfg.MaxStartSpread {
			return best, nil
		}
		// The calibrated start of PE (i,j) is (1−α)(i+j) + α·noise; when
		// thermal no-ops stretch the waits, increasing α overshoots more,
		// so walk α upward slowly exactly as the paper describes
		// ("initially α = 1 ... adjust the wait parameter and repeat").
		alpha++
	}
	return best, nil
}

// runOnce builds the instrumented spec for one α and executes it.
func runOnce(c Collective, opt fabric.Options, alpha int) (*Result, error) {
	spec := fabric.NewSpec(c.Width, c.Height)
	if err := c.Build(spec); err != nil {
		return nil, err
	}
	if err := Instrument(spec, c.Width, c.Height, alpha); err != nil {
		return nil, err
	}
	f, err := fabric.New(spec, opt)
	if err != nil {
		return nil, err
	}
	raw, err := f.Run()
	if err != nil {
		return nil, err
	}
	return Calibrate(raw, alpha)
}

// Instrument rewrites every PE program in the width×height region with
// the measurement prologue (trigger receive, reference sample, α-scaled
// busy wait, start sample) and epilogue (end sample), and overlays the 2D
// trigger flood on comm.TriggerColor.
func Instrument(spec *fabric.Spec, width, height, alpha int) error {
	if alpha < 1 {
		return fmt.Errorf("measure: alpha %d", alpha)
	}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			pe := spec.PE(mesh.Coord{X: x, Y: y})
			var prologue []fabric.Op
			if x == 0 && y == 0 {
				prologue = append(prologue, fabric.Op{Kind: fabric.OpSendTrigger, Color: comm.TriggerColor})
			} else {
				prologue = append(prologue, fabric.Op{Kind: fabric.OpRecvTrigger, Color: comm.TriggerColor})
			}
			prologue = append(prologue,
				fabric.Op{Kind: fabric.OpSampleClock, Slot: slotRef},
				fabric.Op{Kind: fabric.OpBusyWrite, N: alpha * (width + height - x - y)},
				fabric.Op{Kind: fabric.OpSampleClock, Slot: slotStart},
			)
			pe.Ops = append(prologue, append(pe.Ops, fabric.Op{Kind: fabric.OpSampleClock, Slot: slotEnd})...)
			pe.ClockSlots = numSlots

			// Trigger flood routing (same shape as the 2D broadcast).
			var accept mesh.Direction
			var fwd mesh.DirSet
			switch {
			case x == 0 && y == 0:
				accept = mesh.Ramp
				if width > 1 {
					fwd = fwd.Set(mesh.East)
				}
				if height > 1 {
					fwd = fwd.Set(mesh.South)
				}
			case y == 0:
				accept = mesh.West
				fwd = mesh.Dirs(mesh.Ramp)
				if x < width-1 {
					fwd = fwd.Set(mesh.East)
				}
				if height > 1 {
					fwd = fwd.Set(mesh.South)
				}
			default:
				accept = mesh.North
				fwd = mesh.Dirs(mesh.Ramp)
				if y < height-1 {
					fwd = fwd.Set(mesh.South)
				}
			}
			if fwd != 0 {
				pe.AddConfig(comm.TriggerColor, fabric.RouterConfig{Accept: accept, Forward: fwd})
			}
		}
	}
	return nil
}

// Calibrate applies the paper's clock calibration to a run's samples,
// rebasing every PE onto the trigger root's timebase:
// T'(i,j) = T(i,j) − T_ref(i,j) + (i+j+2). Subtracting the reference
// sample cancels the PE's private clock offset and the i+j+2 term adds
// back the trigger's propagation delay to (i,j), so samples of the same
// global instant calibrate to the same value (the paper states the same
// correction in §8.3).
func Calibrate(raw *fabric.Result, alpha int) (*Result, error) {
	minStart, maxStart := int64(math.MaxInt64), int64(math.MinInt64)
	maxEnd := int64(math.MinInt64)
	for c, clocks := range raw.Clocks {
		if len(clocks) < numSlots {
			return nil, fmt.Errorf("measure: PE %v has %d clock slots", c, len(clocks))
		}
		off := clocks[slotRef] - int64(c.X+c.Y+2)
		start := clocks[slotStart] - off
		end := clocks[slotEnd] - off
		if start < minStart {
			minStart = start
		}
		if start > maxStart {
			maxStart = start
		}
		if end > maxEnd {
			maxEnd = end
		}
	}
	if minStart == int64(math.MaxInt64) {
		return nil, fmt.Errorf("measure: no clock samples in result")
	}
	return &Result{
		Cycles:      maxEnd - minStart,
		StartSpread: maxStart - minStart,
		Alpha:       alpha,
		Raw:         raw,
	}, nil
}
