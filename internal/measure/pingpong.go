package measure

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/mesh"
)

// Ping-pong broadcast measurement (§8.3): "we execute a broadcast from
// the leftmost PE, then from the rightmost PE. We repeat this procedure k
// times and report the end clock time - start clock time at the leftmost
// PE divided by 2k." Broadcast needs no start calibration because the
// single root serialises everything; the ping-pong cancels the drain
// asymmetry and amortises the clock-sample cost.

// Colors of the two flood directions; chosen away from the collective
// colors so the harness composes with instrumented programs.
const (
	pingColor mesh.Color = 21
	pongColor mesh.Color = 22
)

// PingPongResult reports one ping-pong measurement.
type PingPongResult struct {
	// CyclesPerBroadcast is (end-start)/(2k) at the leftmost PE.
	CyclesPerBroadcast float64
	// Iterations is k.
	Iterations int
	// Raw is the underlying fabric run.
	Raw *fabric.Result
}

// PingPongBroadcast measures a 1D broadcast of b wavelets across p PEs by
// bouncing it k times between the row ends.
func PingPongBroadcast(p, b, k int, opt fabric.Options) (*PingPongResult, error) {
	if p < 2 {
		return nil, fmt.Errorf("measure: ping-pong needs at least 2 PEs")
	}
	if b < 1 || k < 1 {
		return nil, fmt.Errorf("measure: b=%d k=%d", b, k)
	}
	spec := fabric.NewSpec(p, 1)
	path := mesh.Row(0, 0, p)

	for v, c := range path {
		pe := spec.PE(c)
		pe.Init = make([]float32, b)
		// Eastward flood on pingColor.
		switch {
		case v == 0:
			pe.AddConfig(pingColor, fabric.RouterConfig{Accept: mesh.Ramp, Forward: mesh.Dirs(mesh.East)})
		case v == p-1:
			pe.AddConfig(pingColor, fabric.RouterConfig{Accept: mesh.West, Forward: mesh.Dirs(mesh.Ramp)})
		default:
			pe.AddConfig(pingColor, fabric.RouterConfig{Accept: mesh.West, Forward: mesh.Dirs(mesh.East, mesh.Ramp)})
		}
		// Westward flood on pongColor.
		switch {
		case v == p-1:
			pe.AddConfig(pongColor, fabric.RouterConfig{Accept: mesh.Ramp, Forward: mesh.Dirs(mesh.West)})
		case v == 0:
			pe.AddConfig(pongColor, fabric.RouterConfig{Accept: mesh.East, Forward: mesh.Dirs(mesh.Ramp)})
		default:
			pe.AddConfig(pongColor, fabric.RouterConfig{Accept: mesh.East, Forward: mesh.Dirs(mesh.West, mesh.Ramp)})
		}
	}

	left := spec.PE(path[0])
	right := spec.PE(path[p-1])
	left.ClockSlots = 2
	left.Ops = append(left.Ops, fabric.Op{Kind: fabric.OpSampleClock, Slot: 0})
	for it := 0; it < k; it++ {
		for v, c := range path {
			pe := spec.PE(c)
			switch v {
			case 0:
				pe.Ops = append(pe.Ops,
					fabric.Op{Kind: fabric.OpSend, Color: pingColor, N: b},
					fabric.Op{Kind: fabric.OpRecvStore, Color: pongColor, N: b})
			case p - 1:
				pe.Ops = append(pe.Ops,
					fabric.Op{Kind: fabric.OpRecvStore, Color: pingColor, N: b},
					fabric.Op{Kind: fabric.OpSend, Color: pongColor, N: b})
			default:
				pe.Ops = append(pe.Ops,
					fabric.Op{Kind: fabric.OpRecvStore, Color: pingColor, N: b},
					fabric.Op{Kind: fabric.OpRecvStore, Color: pongColor, N: b})
			}
		}
	}
	left.Ops = append(left.Ops, fabric.Op{Kind: fabric.OpSampleClock, Slot: 1})
	_ = right

	f, err := fabric.New(spec, opt)
	if err != nil {
		return nil, err
	}
	raw, err := f.Run()
	if err != nil {
		return nil, err
	}
	clocks := raw.Clocks[path[0]]
	return &PingPongResult{
		CyclesPerBroadcast: float64(clocks[1]-clocks[0]) / float64(2*k),
		Iterations:         k,
		Raw:                raw,
	}, nil
}
