package measure

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/mesh"
)

func reduceCollective(p, b int) Collective {
	return Collective{
		Width:  p,
		Height: 1,
		Build: func(spec *fabric.Spec) error {
			if err := core.BuildReduce1DInto(spec, core.TwoPhase, p, b, fabric.DefaultTR, fabric.OpSum); err != nil {
				return err
			}
			for _, pe := range spec.PEs {
				pe.Init = make([]float32, b)
				for i := range pe.Init {
					pe.Init[i] = 1
				}
			}
			return nil
		},
	}
}

func reduce2DCollective(side, b int) Collective {
	return Collective{
		Width:  side,
		Height: side,
		Build: func(spec *fabric.Spec) error {
			if err := core.BuildReduce2DInto(spec, core.XYTwoPhase, side, side, b, fabric.DefaultTR, fabric.OpSum); err != nil {
				return err
			}
			for _, pe := range spec.PEs {
				pe.Init = make([]float32, b)
			}
			return nil
		},
	}
}

// TestCalibrationSpread1D mirrors the paper's §8.3 claim: despite per-PE
// clock skew, the calibrated start spread stays below 57 cycles in 1D.
func TestCalibrationSpread1D(t *testing.T) {
	res, err := Measure(reduceCollective(128, 64), fabric.Options{ClockSkewMax: 4096, Seed: 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.StartSpread > 57 {
		t.Errorf("calibrated 1D start spread %d cycles, paper achieves <57", res.StartSpread)
	}
	if res.Cycles <= 0 {
		t.Errorf("calibrated runtime %d", res.Cycles)
	}
}

// TestCalibrationSpread2D: the 2D analogue, threshold 129 cycles.
func TestCalibrationSpread2D(t *testing.T) {
	res, err := Measure(reduce2DCollective(8, 32), fabric.Options{ClockSkewMax: 4096, Seed: 9}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.StartSpread > 129 {
		t.Errorf("calibrated 2D start spread %d cycles, paper achieves <129", res.StartSpread)
	}
}

// TestCalibratedMatchesRaw: with no skew and no thermal noise, the
// calibrated measurement should be close to the raw synchronous-start
// cycle count of the collective alone.
func TestCalibratedMatchesRaw(t *testing.T) {
	p, b := 64, 128
	res, err := Measure(reduceCollective(p, b), fabric.Options{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	spec := fabric.NewSpec(p, 1)
	if err := reduceCollective(p, b).Build(spec); err != nil {
		t.Fatal(err)
	}
	f, err := fabric.New(spec, fabric.Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	diff := res.Cycles - raw.Cycles
	if diff < -diff {
		diff = -diff
	}
	if diff > raw.Cycles/5+20 {
		t.Errorf("calibrated %d vs raw %d cycles", res.Cycles, raw.Cycles)
	}
}

// TestCalibrationUnderThermalNoise: with thermal no-ops the calibration
// loop may need larger α but must still terminate and produce a sane
// measurement.
func TestCalibrationUnderThermalNoise(t *testing.T) {
	res, err := Measure(reduceCollective(32, 64), fabric.Options{
		ClockSkewMax:    1024,
		ThermalNoopRate: 0.02,
		Seed:            11,
	}, Config{MaxIters: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Errorf("cycles %d", res.Cycles)
	}
	if res.Iterations < 1 || res.Iterations > 4 {
		t.Errorf("iterations %d", res.Iterations)
	}
}

// TestInstrumentPreservesResult: the measurement prologue must not change
// what the collective computes.
func TestInstrumentPreservesResult(t *testing.T) {
	p, b := 16, 8
	spec := fabric.NewSpec(p, 1)
	if err := reduceCollective(p, b).Build(spec); err != nil {
		t.Fatal(err)
	}
	if err := Instrument(spec, p, 1, 1); err != nil {
		t.Fatal(err)
	}
	f, err := fabric.New(spec, fabric.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	root := res.Acc[mesh.Coord{}]
	for i := range root {
		if root[i] != float32(p) {
			t.Fatalf("element %d: %v, want %v", i, root[i], float32(p))
		}
	}
	// Trigger color stays within the documented budget.
	if comm.TriggerColor >= mesh.NumColors {
		t.Fatal("trigger color out of range")
	}
}
