package measure

import (
	"math"
	"testing"

	"repro/internal/fabric"
	"repro/internal/model"
)

// TestPingPongMatchesLemma41: the per-broadcast time extracted by the
// ping-pong procedure must track Lemma 4.1's B + P + 2T_R.
func TestPingPongMatchesLemma41(t *testing.T) {
	pr := model.Default()
	for _, p := range []int{4, 32, 256} {
		for _, b := range []int{1, 64, 1024} {
			res, err := PingPongBroadcast(p, b, 4, fabric.Options{})
			if err != nil {
				t.Fatalf("p=%d b=%d: %v", p, b, err)
			}
			want := pr.Broadcast1D(p, b)
			rel := math.Abs(res.CyclesPerBroadcast-want) / want
			if rel > 0.15 {
				t.Errorf("p=%d b=%d: ping-pong %.1f cycles/bcast, model %.0f (%.0f%% off)",
					p, b, res.CyclesPerBroadcast, want, 100*rel)
			}
		}
	}
}

// TestPingPongAmortisation: more iterations should not change the
// per-broadcast estimate materially (the procedure exists to amortise
// constant overheads).
func TestPingPongAmortisation(t *testing.T) {
	a, err := PingPongBroadcast(64, 128, 1, fabric.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := PingPongBroadcast(64, 128, 8, fabric.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(a.CyclesPerBroadcast - c.CyclesPerBroadcast); d > 0.1*a.CyclesPerBroadcast {
		t.Errorf("k=1: %.1f vs k=8: %.1f cycles/bcast", a.CyclesPerBroadcast, c.CyclesPerBroadcast)
	}
}

// TestPingPongSurvivesSkew: the ping-pong measures a duration on a single
// PE's clock, so clock skew must not affect it.
func TestPingPongSurvivesSkew(t *testing.T) {
	base, err := PingPongBroadcast(32, 64, 4, fabric.Options{})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := PingPongBroadcast(32, 64, 4, fabric.Options{ClockSkewMax: 1 << 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if base.CyclesPerBroadcast != skewed.CyclesPerBroadcast {
		t.Errorf("skew changed the measurement: %.1f vs %.1f", base.CyclesPerBroadcast, skewed.CyclesPerBroadcast)
	}
}

func TestPingPongValidation(t *testing.T) {
	if _, err := PingPongBroadcast(1, 8, 2, fabric.Options{}); err == nil {
		t.Error("accepted single PE")
	}
	if _, err := PingPongBroadcast(8, 0, 2, fabric.Options{}); err == nil {
		t.Error("accepted empty vector")
	}
	if _, err := PingPongBroadcast(8, 8, 0, fabric.Options{}); err == nil {
		t.Error("accepted zero iterations")
	}
}
