package sched

import (
	"testing"
	"time"
)

// TestSketchQuantiles checks the bounded-relative-error contract on a
// known distribution: 1..1000 µs uniform.
func TestSketchQuantiles(t *testing.T) {
	var s sketch
	for us := 1; us <= 1000; us++ {
		s.observe(time.Duration(us) * time.Microsecond)
	}
	check := func(q float64, want time.Duration) {
		t.Helper()
		got := s.quantile(q)
		lo := want - want/8
		hi := want + want/8
		if got < lo || got > hi {
			t.Errorf("p%.0f = %v, want %v ± 12.5%%", 100*q, got, want)
		}
	}
	check(0.50, 500*time.Microsecond)
	check(0.99, 990*time.Microsecond)
	check(1.0, 1000*time.Microsecond)
}

// TestSketchBucketsRoundTrip: every bucket's representative value maps
// back to that bucket, and the mapping is monotone.
func TestSketchBucketsRoundTrip(t *testing.T) {
	values := []int64{0, 1, 7, 8, 9, 15, 16, 100, 1023, 1024, 1 << 20, 1 << 40, 1<<62 + 12345}
	prev := -1
	for _, v := range values {
		b := sketchBucket(v)
		if b < prev {
			t.Fatalf("bucket(%d) = %d < previous %d: not monotone", v, b, prev)
		}
		prev = b
		rep := sketchValue(b)
		if got := sketchBucket(rep); got != b {
			t.Errorf("value %d: bucket %d has representative %d mapping to bucket %d", v, b, rep, got)
		}
	}
	if s := (&sketch{}); s.quantile(0.5) != 0 {
		t.Error("empty sketch quantile must be 0")
	}
}

// TestSketchNegativeClamped: negative durations (clock weirdness) clamp
// to bucket zero instead of indexing out of bounds.
func TestSketchNegativeClamped(t *testing.T) {
	var s sketch
	s.observe(-time.Second)
	if got := s.quantile(0.5); got != 0 {
		t.Fatalf("negative observation landed at %v, want clamp to 0", got)
	}
}
