package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// gate occupies every worker of s with blocked tasks submitted under
// tenant name, returning the release func. It lets tests stage queue
// contents deterministically: while the gate holds, nothing dequeues.
func gate(t *testing.T, s *Scheduler, name string, workers int) (release func(), wait func()) {
	t.Helper()
	ch := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Submit(context.Background(), name, func(context.Context) error {
				<-ch
				return nil
			}); err != nil {
				t.Errorf("gate task: %v", err)
			}
		}()
	}
	waitRunning(t, s, workers)
	return func() { close(ch) }, wg.Wait
}

// waitRunning polls until exactly n tasks are running.
func waitRunning(t *testing.T, s *Scheduler, n int) {
	t.Helper()
	waitCond(t, func() bool { return s.Stats().Pool.Running == n },
		fmt.Sprintf("%d running tasks", n))
}

// waitDepth polls until the pool-wide queue depth reaches n.
func waitDepth(t *testing.T, s *Scheduler, n int) {
	t.Helper()
	waitCond(t, func() bool { return s.Stats().Pool.Depth == n },
		fmt.Sprintf("queue depth %d", n))
}

func waitCond(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// recorder appends dispatch labels in execution order.
type recorder struct {
	mu    sync.Mutex
	order []string
}

func (r *recorder) task(label string) func(context.Context) error {
	return func(context.Context) error {
		r.mu.Lock()
		r.order = append(r.order, label)
		r.mu.Unlock()
		return nil
	}
}

func (r *recorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// enqueue submits n recorded tasks for tenant from background goroutines
// and returns a wait func for their completion.
func enqueue(t *testing.T, s *Scheduler, tenant string, n int, rec *recorder) func() {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Submit(context.Background(), tenant, rec.task(tenant)); err != nil {
				t.Errorf("submit %s: %v", tenant, err)
			}
		}()
	}
	return wg.Wait
}

// TestWeightedFairness is the 3:1 acceptance check: tenants A (weight 3)
// and B (weight 1) with full queues split a single worker's dispatches
// in their weight ratio, within 20%.
func TestWeightedFairness(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	s.SetTenant("A", TenantConfig{Weight: 3})
	s.SetTenant("B", TenantConfig{Weight: 1})

	release, gateDone := gate(t, s, "A", 1)
	rec := &recorder{}
	const each = 60
	waitA := enqueue(t, s, "A", each, rec)
	waitB := enqueue(t, s, "B", each, rec)
	waitDepth(t, s, 2*each)

	release()
	gateDone()
	waitA()
	waitB()

	// Both tenants stay backlogged until A's queue runs dry at dispatch
	// ~4/3·each; judge the ratio over the window where fairness, not
	// queue exhaustion, decides.
	order := rec.snapshot()
	window := order[:each+each/3]
	a, b := 0, 0
	for _, l := range window {
		if l == "A" {
			a++
		} else {
			b++
		}
	}
	ratio := float64(a) / float64(b)
	if ratio < 2.4 || ratio > 3.6 {
		t.Fatalf("dispatch ratio A:B = %d:%d = %.2f, want 3.0 within 20%%", a, b, ratio)
	}
}

// TestInteractivePreemptsBatchQueue is the starvation acceptance check:
// an Interactive request arriving behind a deep saturating Batch backlog
// is dispatched before any further Batch request.
func TestInteractivePreemptsBatchQueue(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	s.SetTenant("bulk", TenantConfig{Weight: 8, Priority: Batch})
	s.SetTenant("fg", TenantConfig{Weight: 1, Priority: Interactive})

	release, gateDone := gate(t, s, "bulk", 1)
	rec := &recorder{}
	waitBulk := enqueue(t, s, "bulk", 40, rec)
	waitDepth(t, s, 40)
	waitFg := enqueue(t, s, "fg", 1, rec)
	waitDepth(t, s, 41)

	release()
	gateDone()
	waitBulk()
	waitFg()

	if order := rec.snapshot(); order[0] != "fg" {
		t.Fatalf("first dispatch after release was %q, want the queued interactive request (order %v)", order[0], order[:5])
	}
}

// TestBackgroundYields: Background work runs only when no other class is
// queued, even with an enormous weight.
func TestBackgroundYields(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	s.SetTenant("scv", TenantConfig{Weight: 100, Priority: Background})
	s.SetTenant("b", TenantConfig{Weight: 1, Priority: Batch})

	release, gateDone := gate(t, s, "b", 1)
	rec := &recorder{}
	waitS := enqueue(t, s, "scv", 10, rec)
	waitDepth(t, s, 10)
	waitB := enqueue(t, s, "b", 10, rec)
	waitDepth(t, s, 20)

	release()
	gateDone()
	waitS()
	waitB()

	for i, l := range rec.snapshot()[:10] {
		if l != "b" {
			t.Fatalf("dispatch %d was %q; all batch work must precede background", i, l)
		}
	}
}

// TestOverload: a full tenant queue rejects immediately with
// ErrOverloaded; other tenants are unaffected; the rejection is counted.
func TestOverload(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	s.SetTenant("small", TenantConfig{MaxQueue: 4})

	release, gateDone := gate(t, s, "small", 1)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Submit(context.Background(), "small", func(context.Context) error { return nil }); err != nil {
				t.Errorf("queued submit: %v", err)
			}
		}()
	}
	waitDepth(t, s, 4)

	start := time.Now()
	err := s.Submit(context.Background(), "small", func(context.Context) error { return nil })
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit to full queue: %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("overload rejection took %v; admission control must not block", d)
	}
	if st := s.Stats().Tenants["small"]; st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}

	release()
	gateDone()
	wg.Wait()
	// Admission is per-tenant: the other tenants were never affected by
	// small's full queue.
	if err := s.Submit(context.Background(), "other", func(context.Context) error { return nil }); err != nil {
		t.Fatalf("other tenant rejected alongside the overloaded one: %v", err)
	}
}

// TestCancelQueued: a context firing while the request is queued returns
// ctx.Err() promptly, the request never runs, and it counts cancelled.
func TestCancelQueued(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	release, gateDone := gate(t, s, "t", 1)

	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	errc := make(chan error, 1)
	go func() {
		errc <- s.Submit(ctx, "t", func(context.Context) error { ran = true; return nil })
	}()
	waitDepth(t, s, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued submit: %v, want context.Canceled", err)
	}

	release()
	gateDone()
	s.Close() // drain: the cancelled entry must be discarded, not run
	if ran {
		t.Fatal("cancelled request was executed")
	}
	st := s.Stats().Tenants["t"]
	if st.Cancelled != 1 || st.Served != 1 || st.Submitted != 2 {
		t.Fatalf("stats %+v: want 1 cancelled (the unqueued request), 1 served (the gate)", st)
	}
}

// TestCancelRunning: a context firing mid-run returns immediately while
// the work completes in the background, accounted cancelled not served.
func TestCancelRunning(t *testing.T) {
	s := New(Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	blocked := make(chan struct{})
	done := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- s.Submit(ctx, "t", func(context.Context) error {
			close(blocked)
			<-done
			return nil
		})
	}()
	<-blocked
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning a running submit: %v, want context.Canceled", err)
	}
	close(done)
	s.Close()
	st := s.Stats().Tenants["t"]
	if st.Cancelled != 1 || st.Served != 0 {
		t.Fatalf("stats %+v: want the abandoned run counted cancelled, not served", st)
	}
}

// TestPreCancelledContext never queues the request at all.
func TestPreCancelledContext(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Submit(ctx, "t", func(context.Context) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled submit: %v", err)
	}
	if st := s.Stats().Tenants["t"]; st.Cancelled != 1 || st.Depth != 0 {
		t.Fatalf("stats %+v: want cancelled=1, depth=0", st)
	}
}

// TestCloseDrains: Close runs everything already queued, then rejects
// new work with ErrClosed.
func TestCloseDrains(t *testing.T) {
	s := New(Config{Workers: 2})
	release, gateDone := gate(t, s, "t", 2)
	rec := &recorder{}
	wait := enqueue(t, s, "t", 20, rec)
	waitDepth(t, s, 20)

	release()
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	gateDone()
	wait()
	<-closed

	if got := len(rec.snapshot()); got != 20 {
		t.Fatalf("drained %d of 20 queued requests", got)
	}
	if err := s.Submit(context.Background(), "t", func(context.Context) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	st := s.Stats()
	if st.Pool.Depth != 0 || st.Pool.Running != 0 {
		t.Fatalf("pool not drained: %+v", st.Pool)
	}
}

// TestFailedWorkIsServed: an erroring request surfaces its error and is
// accounted served + failed.
func TestFailedWorkIsServed(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	boom := errors.New("boom")
	if err := s.Submit(context.Background(), "t", func(context.Context) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("submit returned %v, want the work's own error", err)
	}
	if st := s.Stats().Tenants["t"]; st.Served != 1 || st.Failed != 1 {
		t.Fatalf("stats %+v: want served=1 failed=1", st)
	}
}

// TestAccountingBalance hammers the scheduler from many goroutines with
// a mix of normal, rejected and cancelled submissions and checks the
// invariant submitted = served + rejected + cancelled for every tenant.
// Run under -race in CI, it doubles as the concurrency soak.
func TestAccountingBalance(t *testing.T) {
	s := New(Config{Workers: 2, DefaultTenant: TenantConfig{MaxQueue: 8}})
	tenants := []string{"a", "b", "c", "d"}
	s.SetTenant("a", TenantConfig{Weight: 3, Priority: Interactive, MaxQueue: 4})
	s.SetTenant("b", TenantConfig{Weight: 1, Priority: Background, MaxQueue: 4})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				tn := tenants[(g+i)%len(tenants)]
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%5 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%3)*50*time.Microsecond)
				}
				err := s.Submit(ctx, tn, func(context.Context) error {
					time.Sleep(10 * time.Microsecond)
					return nil
				})
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil,
					errors.Is(err, ErrOverloaded),
					errors.Is(err, context.Canceled),
					errors.Is(err, context.DeadlineExceeded):
				default:
					t.Errorf("unexpected submit error: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	s.Close()

	st := s.Stats()
	var submitted int64
	for name, ts := range st.Tenants {
		if got := ts.Served + ts.Rejected + ts.Cancelled; got != ts.Submitted {
			t.Errorf("tenant %s: submitted %d != served %d + rejected %d + cancelled %d",
				name, ts.Submitted, ts.Served, ts.Rejected, ts.Cancelled)
		}
		submitted += ts.Submitted
	}
	if want := int64(8 * 60); submitted != want {
		t.Errorf("total submitted %d, want %d", submitted, want)
	}
	if st.Pool.Depth != 0 || st.Pool.Running != 0 {
		t.Errorf("pool not quiescent after close: %+v", st.Pool)
	}
	if st.Pool.Saturated < 0 {
		t.Errorf("negative cumulative saturation %v: a completion timestamp predated a dispatch", st.Pool.Saturated)
	}
}

// TestIdleTenantBanksNoCredit: a tenant idle through many dispatches is
// lifted to the class floor when it wakes, rather than monopolising the
// worker while it pays back virtual-time debt it never owed.
func TestIdleTenantBanksNoCredit(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	s.SetTenant("A", TenantConfig{Weight: 1})
	s.SetTenant("late", TenantConfig{Weight: 1})

	// Let A accumulate 30 dispatches alone (vtime 30) while late idles.
	for i := 0; i < 30; i++ {
		if err := s.Submit(context.Background(), "A", func(context.Context) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	release, gateDone := gate(t, s, "A", 1)
	rec := &recorder{}
	waitA := enqueue(t, s, "A", 10, rec)
	waitL := enqueue(t, s, "late", 10, rec)
	waitDepth(t, s, 20)
	release()
	gateDone()
	waitA()
	waitL()

	// Equal weights from the wake-up point: the first 10 dispatches must
	// interleave rather than run all of late's backlog first.
	a := 0
	for _, l := range rec.snapshot()[:10] {
		if l == "A" {
			a++
		}
	}
	if a < 3 || a > 7 {
		t.Fatalf("A got %d of the first 10 dispatches; waking tenant must not repay phantom debt (order %v)", a, rec.snapshot()[:10])
	}
}

// TestClassChangeJoinsAtFloor: a tenant reconfigured into a different
// priority class joins at that class's virtual-time floor — its history
// in the old class must not starve it against established peers.
func TestClassChangeJoinsAtFloor(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	s.SetTenant("peer", TenantConfig{Priority: Interactive})
	s.SetTenant("promoted", TenantConfig{Priority: Batch})

	// promoted accumulates a large Batch virtual time...
	for i := 0; i < 40; i++ {
		if err := s.Submit(context.Background(), "promoted", func(context.Context) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	// ...then moves to Interactive, where the peer's vtime is tiny.
	s.SetTenant("promoted", TenantConfig{Priority: Interactive})

	release, gateDone := gate(t, s, "peer", 1)
	rec := &recorder{}
	waitPeer := enqueue(t, s, "peer", 10, rec)
	waitProm := enqueue(t, s, "promoted", 10, rec)
	waitDepth(t, s, 20)
	release()
	gateDone()
	waitPeer()
	waitProm()

	// Equal weights from the promotion point: the first 10 dispatches
	// interleave instead of serving all of peer's backlog first.
	prom := 0
	for _, l := range rec.snapshot()[:10] {
		if l == "promoted" {
			prom++
		}
	}
	if prom < 3 || prom > 7 {
		t.Fatalf("promoted tenant got %d of the first 10 dispatches; class change must not carry old-class virtual time (order %v)", prom, rec.snapshot()[:10])
	}
}

// TestAdmitPrecheck: Admit mirrors Submit's admission outcome and
// accounting without queueing work, and never double-counts when the
// Submit follows.
func TestAdmitPrecheck(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	s.SetTenant("small", TenantConfig{MaxQueue: 1})

	if err := s.Admit(context.Background(), "small"); err != nil {
		t.Fatalf("admit with empty queue: %v", err)
	}
	if err := s.Submit(context.Background(), "small", func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Admit(ctx, "small"); !errors.Is(err, context.Canceled) {
		t.Fatalf("admit with dead context: %v", err)
	}
	st := s.Stats().Tenants["small"]
	if st.Submitted != 2 || st.Served != 1 || st.Cancelled != 1 {
		t.Fatalf("stats %+v: want submitted=2 (admit successes not counted twice), served=1, cancelled=1", st)
	}

	release, gateDone := gate(t, s, "small", 1)
	errc := make(chan error, 1)
	go func() {
		errc <- s.Submit(context.Background(), "small", func(context.Context) error { return nil })
	}()
	waitDepth(t, s, 1)
	if err := s.Admit(context.Background(), "small"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("admit over the bound: %v, want ErrOverloaded", err)
	}
	release()
	gateDone()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	st = s.Stats().Tenants["small"]
	if got := st.Served + st.Rejected + st.Cancelled; got != st.Submitted {
		t.Fatalf("accounting unbalanced after prechecks: %+v", st)
	}
}

// TestCloseWithoutUse: a scheduler that never served needs no workers
// and Close returns immediately.
func TestCloseWithoutUse(t *testing.T) {
	s := New(Config{Workers: 4})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(context.Background(), "t", func(context.Context) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after unused close: %v, want ErrClosed", err)
	}
}

// TestStatsQuantiles sanity-checks that latency sketches populate.
func TestStatsQuantiles(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	for i := 0; i < 20; i++ {
		if err := s.Submit(context.Background(), "t", func(context.Context) error {
			time.Sleep(200 * time.Microsecond)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	ts := s.Stats().Tenants["t"]
	if ts.ExecP50 < 100*time.Microsecond {
		t.Fatalf("exec p50 %v for 200µs tasks", ts.ExecP50)
	}
	if ts.ExecP99 < ts.ExecP50 {
		t.Fatalf("p99 %v < p50 %v", ts.ExecP99, ts.ExecP50)
	}
}

// TestRemoveTenant: removing a tenant fails its queued requests with
// ErrTenantRemoved immediately, drops the tenant from the stats (its
// sketches and queue are released), leaves other tenants untouched, and
// un-reserves the name — the next submission under it starts a fresh
// default-config tenant.
func TestRemoveTenant(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	release, wait := gate(t, s, "blocker", 1)

	s.SetTenant("victim", TenantConfig{Weight: 7, Priority: Background})
	queued := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			queued <- s.Submit(context.Background(), "victim", func(context.Context) error { return nil })
		}()
	}
	waitCond(t, func() bool { return s.Stats().Tenants["victim"].Depth == 3 }, "victim backlog")

	if !s.RemoveTenant("victim") {
		t.Fatal("RemoveTenant on a live tenant reported false")
	}
	for i := 0; i < 3; i++ {
		select {
		case err := <-queued:
			if !errors.Is(err, ErrTenantRemoved) {
				t.Fatalf("queued request: %v, want ErrTenantRemoved", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued request not failed by RemoveTenant")
		}
	}
	if _, ok := s.Stats().Tenants["victim"]; ok {
		t.Fatal("removed tenant still present in Stats")
	}
	if s.RemoveTenant("victim") {
		t.Fatal("second RemoveTenant reported true")
	}
	if s.RemoveTenant("never-existed") {
		t.Fatal("RemoveTenant of an unknown name reported true")
	}

	release()
	wait()

	// The name is free again: a fresh submission recreates the tenant at
	// the default config with a zeroed ledger.
	if err := s.Submit(context.Background(), "victim", func(context.Context) error { return nil }); err != nil {
		t.Fatalf("submit after removal: %v", err)
	}
	ts := s.Stats().Tenants["victim"]
	if ts.Submitted != 1 || ts.Served != 1 || ts.Weight != 1 || ts.Class != "batch" {
		t.Fatalf("recreated tenant ledger %+v, want fresh default-config tenant", ts)
	}
	// The blocker's ledger was never disturbed.
	if bs := s.Stats().Tenants["blocker"]; bs.Served != 1 {
		t.Fatalf("blocker stats disturbed: %+v", bs)
	}
}

// TestRemoveTenantWhileRunning: removing a tenant whose request is
// mid-run neither cancels the run nor corrupts the pool accounting.
func TestRemoveTenantWhileRunning(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	started := make(chan struct{})
	releaseRun := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- s.Submit(context.Background(), "ephemeral", func(context.Context) error {
			close(started)
			<-releaseRun
			return nil
		})
	}()
	<-started
	if !s.RemoveTenant("ephemeral") {
		t.Fatal("RemoveTenant on a tenant with a running request reported false")
	}
	close(releaseRun)
	if err := <-done; err != nil {
		t.Fatalf("running request failed after tenant removal: %v", err)
	}
	if st := s.Stats(); st.Pool.Running != 0 || st.Pool.Depth != 0 {
		t.Fatalf("pool accounting off after removal: %+v", st.Pool)
	}
}
