// Package sched is the multi-tenant serving layer between callers and
// the bounded simulation worker pool: per-tenant submission queues
// dispatched by weighted-fair scheduling within strict priority classes,
// admission control that rejects instead of blocking when a tenant's
// queue is full, context-aware cancellation for queued and running
// requests, and per-tenant accounting (served/rejected/cancelled counts,
// queue-wait and execution latency quantiles) plus pool-level
// backpressure metrics.
//
// The scheduler is work-agnostic: a request is any func(ctx) error. The
// plan subsystem submits fabric replays through it; nothing here knows
// about plans, which keeps the QoS layer reusable and separately
// testable.
//
// Dispatch policy, in order:
//
//  1. Strict priority between classes: any queued Interactive request is
//     dispatched before any Batch request, and Batch before Background.
//     Within a saturating workload, higher classes can starve lower ones
//     by design — Background exists to be starved.
//  2. Weighted fair within a class: each tenant carries a virtual time
//     advanced by 1/Weight per dispatched request; the backlogged tenant
//     with the smallest virtual time runs next, so two saturating tenants
//     with weights 3 and 1 complete work in a 3:1 ratio. A tenant waking
//     from idle is lifted to the class's virtual-time floor, so idling
//     banks no credit and returning tenants neither starve others nor
//     wait out their accumulated lag.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// Priority is a strict dispatch class. The zero value is Batch; the
// numeric order is the dispatch order (higher runs first).
type Priority int

const (
	// Background requests run only when no other class has queued work.
	Background Priority = -1
	// Batch is the default class.
	Batch Priority = 0
	// Interactive requests are dispatched before any queued Batch or
	// Background request, regardless of tenant weights.
	Interactive Priority = 1
)

// String names the class for stats tables and JSON dumps.
func (p Priority) String() string {
	switch p {
	case Interactive:
		return "interactive"
	case Background:
		return "background"
	default:
		return "batch"
	}
}

// classLabel renders a class's Prometheus label body once, so the
// dispatch path's histogram observe never formats a string.
func classLabel(p Priority) string {
	switch p {
	case Interactive:
		return `class="interactive"`
	case Background:
		return `class="background"`
	default:
		return `class="batch"`
	}
}

// DefaultMaxQueue bounds a tenant's queue when its config leaves MaxQueue
// at zero.
const DefaultMaxQueue = 1024

// DefaultTenantName is the tenant that requests submitted with an empty
// tenant name are queued under and accounted to.
const DefaultTenantName = "default"

// ErrOverloaded is returned by Submit, without blocking, when the
// tenant's queue is at its MaxQueue bound. It is the admission-control
// signal: the caller sheds load (or retries with backoff) instead of
// stacking up behind a saturated pool forever.
var ErrOverloaded = errors.New("sched: tenant queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("sched: scheduler closed")

// ErrTenantRemoved is returned by requests that were still queued when
// their tenant was removed out from under them.
var ErrTenantRemoved = errors.New("sched: tenant removed")

// ErrPanic marks requests whose work panicked inside a worker. The
// worker recovers the panic into a PanicError (which wraps this
// sentinel), so one poisoned request fails typed instead of killing the
// process; test with errors.Is(err, ErrPanic).
var ErrPanic = errors.New("sched: request panicked")

// ErrDeadline marks requests cut short by a context deadline — while
// queued (shed before dispatch), at dispatch (expired entries never
// execute), or mid-run (the watchdog aborts the work). Errors wrapping
// it also wrap context.DeadlineExceeded, so both errors.Is checks hold.
var ErrDeadline = errors.New("sched: deadline exceeded")

// CtxError translates a context's error into the scheduler's taxonomy:
// deadline expiry gains the typed ErrDeadline mark (still matching
// context.DeadlineExceeded), plain cancellation passes through. It is
// exported for layers (the plan executor's watchdog) that surface
// context expiry from inside the work itself.
func CtxError(ctx context.Context) error {
	err := ctx.Err()
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDeadline, err)
	}
	return err
}

// PanicError is a recovered worker panic: the panic value plus a
// sanitized stack (the panicking request's frames, with the recovery
// plumbing trimmed). Error() deliberately excludes the stack — it is
// operator material for logs and metrics, not something a serving layer
// should echo to clients.
type PanicError struct {
	Value any
	Stack string
}

func (e *PanicError) Error() string { return fmt.Sprintf("sched: request panicked: %v", e.Value) }

// Is makes errors.Is(err, ErrPanic) match.
func (e *PanicError) Is(target error) bool { return target == ErrPanic }

// sanitizeStack trims a debug.Stack dump to the frames below the
// scheduler's recovery point: the goroutine header and the panic/recover
// plumbing are dropped, leaving the frames of the work that panicked.
func sanitizeStack(stack []byte) string {
	lines := strings.Split(string(stack), "\n")
	// Drop the "goroutine N [running]:" header and the contiguous prefix
	// of recovery machinery (debug.Stack, the recover closure, the
	// runtime's panic plumbing) so the first surviving frame is the code
	// that actually panicked. Stop at the first real frame — runIsolated
	// also appears *below* the user's code as its caller and must stay.
	start := 1
	for start+1 < len(lines) {
		f := lines[start]
		if strings.HasPrefix(f, "runtime/debug.Stack") ||
			strings.HasPrefix(f, "panic(") ||
			strings.HasPrefix(f, "runtime.gopanic") ||
			strings.HasPrefix(f, "runtime.panic") ||
			strings.Contains(f, ").runIsolated.func") {
			start += 2
			continue
		}
		break
	}
	if start >= len(lines) {
		start = 1
	}
	return strings.TrimRight(strings.Join(lines[start:], "\n"), "\n")
}

// TenantConfig sets a tenant's share of the pool. The zero value is a
// weight-1 Batch tenant with the default queue bound.
type TenantConfig struct {
	// Weight is the tenant's relative share within its priority class
	// (<= 0 selects 1). A weight-3 tenant saturating the pool alongside a
	// weight-1 tenant completes three requests for every one of theirs.
	Weight int
	// Priority is the strict dispatch class.
	Priority Priority
	// MaxQueue bounds the tenant's queued (not yet running) requests
	// (<= 0 selects DefaultMaxQueue). Submissions beyond the bound return
	// ErrOverloaded immediately.
	MaxQueue int
}

func (c TenantConfig) normalized() TenantConfig {
	if c.Weight <= 0 {
		c.Weight = 1
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	return c
}

// Config tunes a Scheduler; the zero value is usable.
type Config struct {
	// Workers bounds the number of concurrently running requests
	// (<= 0 selects GOMAXPROCS).
	Workers int
	// DefaultTenant is the config applied to tenants first seen by Submit
	// rather than registered with SetTenant — including the default
	// tenant itself.
	DefaultTenant TenantConfig
}

// taskState is the lifecycle of one submitted request. Transitions are
// made under the scheduler mutex; every terminal transition is counted
// exactly once, so per-tenant accounting always balances:
// submitted = served + rejected + cancelled.
type taskState int8

const (
	taskQueued    taskState = iota
	taskCancelled           // terminal: caller's ctx fired while queued
	taskRunning
	taskAbandoned // terminal: caller's ctx fired mid-run; counted cancelled
	taskDone      // terminal: executed (counted served, Failed if it errored)
	taskShed      // terminal: ctx already expired at dispatch; counted cancelled, never ran
)

type task struct {
	tn        *tenant
	ctx       context.Context
	run       func(context.Context) error
	state     taskState
	err       error // valid after done is closed and state == taskDone
	submitted time.Time
	started   time.Time
	done      chan struct{}
	// qspan is the "sched.queue" trace span, open from Submit until the
	// task leaves the queue (dispatch, shed or cancel). Nil unless the
	// submitting request carries a live trace.
	qspan *obs.Span
}

type tenant struct {
	name string
	cfg  TenantConfig
	// q is the FIFO of queued tasks. Cancelled entries stay in place (a
	// cancel must not be O(queue)) and are discarded when they reach the
	// head; depth counts only live entries.
	q     []*task
	depth int
	// vtime is the weighted-fair virtual time within the priority class.
	vtime     float64
	stats     TenantStats
	queueWait sketch
	exec      sketch
}

// Scheduler dispatches submitted requests onto a bounded worker pool
// under the QoS policy above. All methods are safe for concurrent use.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond // workers wait here for runnable tasks
	workers int
	defcfg  TenantConfig
	tenants map[string]*tenant
	// floors holds, per class, the largest virtual time a dispatch has
	// observed; tenants waking from idle are lifted to it.
	floors    map[Priority]float64
	depth     int // queued live tasks across tenants
	maxDepth  int
	running   int
	started   bool // workers spawned (lazily, on first Submit)
	closed    bool
	satSince  time.Time     // nonzero while every worker is busy
	saturated time.Duration // cumulative all-workers-busy time
	wg        sync.WaitGroup

	// queueWaitHist is the class-labelled queue-wait distribution behind
	// /metrics' wse_sched_queue_wait_seconds histogram — unlike the
	// per-tenant sketches it has fixed Prometheus buckets, so fleet-wide
	// aggregation across scrapes is exact.
	queueWaitHist *obs.HistogramVec

	// panics counts worker panics recovered into PanicErrors — the
	// poisoned-request signal /metrics watches. Atomic: bumped on the
	// recovery path, read by Stats without the mutex.
	panics atomic.Int64
}

// New creates a scheduler. The worker goroutines are spawned lazily on
// the first Submit, so a scheduler that never serves (a staging session
// used only to compile and export plans, say) costs nothing to create
// and needs no Close.
func New(cfg Config) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{
		workers:       cfg.Workers,
		defcfg:        cfg.DefaultTenant.normalized(),
		tenants:       make(map[string]*tenant),
		floors:        make(map[Priority]float64),
		queueWaitHist: obs.NewHistogramVec(nil),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// startLocked spawns the worker pool on first use.
func (s *Scheduler) startLocked() {
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Workers returns the worker-pool size.
func (s *Scheduler) Workers() int { return s.workers }

// SetTenant registers (or reconfigures) a tenant. Reconfiguring is live:
// already-queued requests are dispatched under the new weight, class and
// queue bound. A tenant changing class joins at the new class's
// virtual-time floor — its history in the old class neither starves it
// (a heavily-served tenant promoted to Interactive would otherwise wait
// out its accumulated virtual time against fresher peers) nor entitles
// it to a catch-up burst.
func (s *Scheduler) SetTenant(name string, cfg TenantConfig) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tn := s.tenantLocked(name)
	cfg = cfg.normalized()
	if cfg.Priority != tn.cfg.Priority {
		tn.vtime = s.floors[cfg.Priority]
	}
	tn.cfg = cfg
}

// RemoveTenant deletes a tenant and releases everything its name pinned:
// the queue slice, both latency sketches and the accounting (together a
// few KB per name — what makes per-user tenancy viable). It reports
// whether the tenant existed. Requests still queued under the tenant fail
// immediately with ErrTenantRemoved and are accounted as rejected (the
// per-tenant balance holds up to the moment the stats vanish with the
// tenant); requests already running complete normally, but their terminal
// accounting goes down with the removed tenant. A name removed while in
// use is not reserved: the next Submit or SetTenant under it starts a
// fresh tenant at the default config and a zeroed ledger.
func (s *Scheduler) RemoveTenant(name string) bool {
	if name == "" {
		name = DefaultTenantName
	}
	s.mu.Lock()
	tn, ok := s.tenants[name]
	if !ok {
		s.mu.Unlock()
		return false
	}
	delete(s.tenants, name)
	var dropped []*task
	for _, t := range tn.q {
		if t.state != taskQueued {
			continue
		}
		t.state = taskDone
		t.err = ErrTenantRemoved
		t.run = nil
		t.ctx = nil
		tn.stats.Rejected++
		tn.depth--
		s.depth--
		dropped = append(dropped, t)
	}
	tn.q = nil
	s.mu.Unlock()
	// Wake the dropped submitters outside the lock; their Submit returns
	// the task error, exactly as a served-but-failed request would.
	for _, t := range dropped {
		close(t.done)
	}
	return true
}

func (s *Scheduler) tenantLocked(name string) *tenant {
	if name == "" {
		name = DefaultTenantName
	}
	tn, ok := s.tenants[name]
	if !ok {
		tn = &tenant{name: name, cfg: s.defcfg}
		s.tenants[name] = tn
	}
	return tn
}

// Submit queues run under the named tenant ("" selects the default
// tenant) and blocks until it has executed, returning its error — or
// until admission or cancellation cuts it short: ErrOverloaded when the
// tenant's queue is full (immediately, never blocking on a saturated
// pool), ErrClosed after Close, and ctx.Err() when the context is
// cancelled or times out. A context firing while the request is queued
// unqueues it without running it; firing mid-run, Submit returns at once
// while the work (which the fabric engine cannot abandon mid-simulation)
// completes in the background and is accounted as cancelled, not served.
func (s *Scheduler) Submit(ctx context.Context, tenant string, run func(context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	tn, err := s.admitLocked(ctx, tenant)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	tn.stats.Submitted++
	s.startLocked()
	_, qspan := obs.Start(ctx, "sched.queue")
	qspan.SetAttr("tenant", tn.name)
	qspan.SetAttr("class", tn.cfg.Priority.String())
	t := &task{tn: tn, ctx: ctx, run: run, submitted: time.Now(), done: make(chan struct{}), qspan: qspan}
	if tn.depth == 0 && tn.vtime < s.floors[tn.cfg.Priority] {
		tn.vtime = s.floors[tn.cfg.Priority]
	}
	tn.q = append(tn.q, t)
	tn.depth++
	s.depth++
	if s.depth > s.maxDepth {
		s.maxDepth = s.depth
	}
	s.mu.Unlock()
	s.cond.Signal()

	select {
	case <-t.done:
		return t.err
	case <-ctx.Done():
	}

	s.mu.Lock()
	switch t.state {
	case taskShed:
		// The worker shed the expired entry at dispatch and accounted it;
		// its error (the typed deadline/cancellation) is already set.
		s.mu.Unlock()
		<-t.done
		return t.err
	case taskQueued:
		// Unqueue: the entry stays in the FIFO slice (dropped when it
		// reaches the head) but leaves the live accounting now. Its work
		// closure and context are released immediately — a quiet tenant
		// must not pin cancelled requests' captured inputs until its next
		// dispatch — and any cancelled prefix is trimmed so an all-
		// cancelled queue frees its entries without waiting for one.
		t.state = taskCancelled
		t.run = nil
		t.ctx = nil
		tn.stats.Cancelled++
		tn.depth--
		s.depth--
		t.qspan.SetError(CtxError(ctx))
		t.qspan.End()
		for len(tn.q) > 0 && tn.q[0].state == taskCancelled {
			tn.q[0] = nil
			tn.q = tn.q[1:]
		}
		s.mu.Unlock()
		return CtxError(ctx)
	case taskRunning:
		// Abandon: the worker finishes the simulation but its result is
		// discarded and the request counts as cancelled.
		t.state = taskAbandoned
		tn.stats.Cancelled++
		s.mu.Unlock()
		return CtxError(ctx)
	default:
		// Completion raced the cancellation; the request was served.
		s.mu.Unlock()
		<-t.done
		return t.err
	}
}

// admitLocked runs the admission checks and, on failure only, the
// terminal accounting: a request turned away here was submitted and
// rejected (or cancelled). On success it counts nothing — Submit
// accounts the accepted request when it actually queues it, so an Admit
// pre-check followed by the Submit never double-counts.
func (s *Scheduler) admitLocked(ctx context.Context, tenant string) (*tenant, error) {
	tn := s.tenantLocked(tenant)
	switch {
	case s.closed:
		tn.stats.Submitted++
		tn.stats.Rejected++
		return nil, ErrClosed
	case ctx.Err() != nil:
		tn.stats.Submitted++
		tn.stats.Cancelled++
		return nil, CtxError(ctx)
	case tn.depth >= tn.cfg.MaxQueue:
		tn.stats.Submitted++
		tn.stats.Rejected++
		return nil, ErrOverloaded
	}
	return tn, nil
}

// Admit runs the admission checks a Submit for tenant would run right
// now — closed scheduler, dead context, full queue — without queueing
// anything, and accounts a failure exactly as Submit would (submitted +
// rejected/cancelled). It exists for callers whose requests need
// expensive preparation (the plan session compiles before it submits):
// checking admission first keeps an overloaded tenant from burning
// compile cycles and churning shared caches on requests that would only
// be turned away. A nil error is a snapshot, not a reservation — the
// later Submit re-checks and can still reject.
func (s *Scheduler) Admit(ctx context.Context, tenant string) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.admitLocked(ctx, tenant)
	return err
}

// pickLocked selects the next runnable task under the dispatch policy,
// or nil when no tenant has queued work.
func (s *Scheduler) pickLocked() *task {
	var best *tenant
	for _, tn := range s.tenants {
		if tn.depth == 0 {
			continue
		}
		if best == nil || dispatchBefore(tn, best) {
			best = tn
		}
	}
	if best == nil {
		return nil
	}
	for {
		t := best.q[0]
		best.q[0] = nil
		best.q = best.q[1:]
		if t.state == taskCancelled {
			continue // unqueued by its submitter; already accounted
		}
		best.depth--
		s.depth--
		return t
	}
}

// dispatchBefore orders backlogged tenants: strict class first, then
// smallest virtual time, then name (a deterministic tiebreak so tests
// and replays of the same arrival order dispatch identically).
func dispatchBefore(a, b *tenant) bool {
	if a.cfg.Priority != b.cfg.Priority {
		return a.cfg.Priority > b.cfg.Priority
	}
	if a.vtime != b.vtime {
		return a.vtime < b.vtime
	}
	return a.name < b.name
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		t := s.pickLocked()
		if t == nil {
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
			continue
		}
		tn := t.tn
		// Deadline shedding: an entry whose context expired while it
		// queued is turned away here, before any work runs — under
		// saturation this is what keeps the pool from burning its cycles
		// on requests whose callers have already given up. The terminal
		// transition happens under the same lock hold as the pick, so the
		// submitter (which may be racing its own ctx.Done) observes
		// exactly one accounting.
		if t.ctx != nil && t.ctx.Err() != nil {
			t.state = taskShed
			t.err = CtxError(t.ctx)
			t.run = nil
			t.ctx = nil
			tn.stats.Cancelled++
			t.qspan.SetError(t.err)
			t.qspan.End()
			close(t.done)
			continue
		}
		now := time.Now()
		t.state = taskRunning
		t.started = now
		t.qspan.End()
		tn.queueWait.observe(now.Sub(t.submitted))
		s.queueWaitHist.Observe(classLabel(tn.cfg.Priority), now.Sub(t.submitted).Seconds())
		if tn.vtime > s.floors[tn.cfg.Priority] {
			s.floors[tn.cfg.Priority] = tn.vtime
		}
		tn.vtime += 1 / float64(tn.cfg.Weight)
		s.running++
		s.noteSaturationLocked(now)
		s.mu.Unlock()

		// The exec span is opened on the task's own context so the work
		// closure's spans (plan resolve, fabric exec) nest under it.
		ectx, espan := obs.Start(t.ctx, "sched.exec")
		espan.SetAttr("tenant", tn.name)
		err := s.runIsolated(t, ectx)
		espan.SetError(err)
		espan.End()

		// end is captured before the lock wait so exec latency measures
		// the work alone; saturation accounting gets a fresh timestamp
		// under the lock, where all its transitions are serialised — a
		// stale end here could predate another worker's lock-held
		// dispatch time and subtract from the saturation total.
		end := time.Now()
		s.mu.Lock()
		s.running--
		s.noteSaturationLocked(time.Now())
		tn.exec.observe(end.Sub(t.started))
		if t.state == taskRunning {
			t.state = taskDone
			t.err = err
			tn.stats.Served++
			if err != nil {
				tn.stats.Failed++
			}
		}
		close(t.done)
	}
}

// runIsolated executes one task with panic isolation: a panicking
// request resolves to a typed PanicError (carrying a sanitized stack)
// instead of unwinding the worker goroutine and killing the process.
// The worker itself, the pool it belongs to and every other in-flight
// request are untouched — the failure blast radius is exactly one
// request. The sched.dispatch failpoint lives inside the isolation
// boundary, so injected dispatch panics exercise the same recovery.
func (s *Scheduler) runIsolated(t *task, ctx context.Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			err = &PanicError{Value: r, Stack: sanitizeStack(debug.Stack())}
		}
	}()
	if err := faults.Inject("sched.dispatch"); err != nil {
		return err
	}
	return t.run(ctx)
}

// noteSaturationLocked accumulates the time during which every worker
// was busy — the pool's backpressure signal. Called on every running
// count transition with the transition time.
func (s *Scheduler) noteSaturationLocked(now time.Time) {
	if s.running == s.workers {
		if s.satSince.IsZero() {
			s.satSince = now
		}
	} else if !s.satSince.IsZero() {
		s.saturated += now.Sub(s.satSince)
		s.satSince = time.Time{}
	}
}

// Close stops admission (further Submits return ErrClosed), drains every
// already-queued request, waits for running work to finish, and releases
// the workers. Close is idempotent and safe to call concurrently with
// in-flight Submits.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
	return nil
}

// TenantStats is one tenant's accounting. Counters balance exactly:
// Submitted = Served + Rejected + Cancelled, where Cancelled covers both
// requests unqueued by their context and running requests their caller
// abandoned, and Failed is the subset of Served whose work returned an
// error. Latency quantiles come from a bounded log-bucketed histogram
// (see sketch) with ≤ 6.25% relative error.
type TenantStats struct {
	Weight    int      `json:"weight"`
	Priority  Priority `json:"-"`
	Class     string   `json:"class"`
	Submitted int64    `json:"submitted"`
	Served    int64    `json:"served"`
	Rejected  int64    `json:"rejected"`
	Cancelled int64    `json:"cancelled"`
	Failed    int64    `json:"failed"`
	// Depth is the tenant's queued (not running) request count right now.
	Depth int `json:"depth"`
	// QueueWait quantiles measure submission to dispatch; Exec quantiles
	// measure dispatch to completion (in nanoseconds when marshalled).
	QueueWaitP50 time.Duration `json:"queue_wait_p50_ns"`
	QueueWaitP99 time.Duration `json:"queue_wait_p99_ns"`
	ExecP50      time.Duration `json:"exec_p50_ns"`
	ExecP99      time.Duration `json:"exec_p99_ns"`
}

// PoolStats is the worker pool's backpressure accounting.
type PoolStats struct {
	Workers int `json:"workers"`
	// Running and Depth are the instantaneous busy-worker and queued
	// request counts; MaxDepth is the high-water queue depth.
	Running  int `json:"running"`
	Depth    int `json:"depth"`
	MaxDepth int `json:"max_depth"`
	// Saturated is the cumulative time every worker was busy — while it
	// grows, arriving work necessarily queues. SaturatedNow reports
	// whether the pool is saturated at snapshot time.
	Saturated    time.Duration `json:"saturated_ns"`
	SaturatedNow bool          `json:"saturated_now"`
}

// Stats is a consistent snapshot of every tenant's accounting and the
// pool's backpressure metrics.
type Stats struct {
	Tenants map[string]TenantStats `json:"tenants"`
	Pool    PoolStats              `json:"pool"`
	// Panics counts worker panics recovered into typed PanicErrors.
	// Panicked requests are Served+Failed in their tenant's ledger (they
	// ran); this counter is the cross-tenant poison signal.
	Panics int64 `json:"panics"`
	// QueueWaitHist is the class-labelled queue-wait histogram (label
	// body → snapshot), consumed by the /metrics exporter. Excluded from
	// JSON dumps — the sketch quantiles above remain the wire form.
	QueueWaitHist map[string]obs.HistogramSnapshot `json:"-"`
}

// Stats snapshots the scheduler's accounting.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Tenants: make(map[string]TenantStats, len(s.tenants))}
	for name, tn := range s.tenants {
		ts := tn.stats
		ts.Weight = tn.cfg.Weight
		ts.Priority = tn.cfg.Priority
		ts.Class = tn.cfg.Priority.String()
		ts.Depth = tn.depth
		ts.QueueWaitP50 = tn.queueWait.quantile(0.50)
		ts.QueueWaitP99 = tn.queueWait.quantile(0.99)
		ts.ExecP50 = tn.exec.quantile(0.50)
		ts.ExecP99 = tn.exec.quantile(0.99)
		st.Tenants[name] = ts
	}
	st.Pool = PoolStats{
		Workers:   s.workers,
		Running:   s.running,
		Depth:     s.depth,
		MaxDepth:  s.maxDepth,
		Saturated: s.saturated,
	}
	if !s.satSince.IsZero() {
		st.Pool.Saturated += time.Since(s.satSince)
		st.Pool.SaturatedNow = true
	}
	st.Panics = s.panics.Load()
	st.QueueWaitHist = s.queueWaitHist.Snapshot()
	return st
}
