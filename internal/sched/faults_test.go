package sched

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// balanced asserts the ledger invariant submitted = served + rejected +
// cancelled for one tenant (Failed ⊂ Served: failed requests ran).
func balanced(t *testing.T, ts TenantStats) {
	t.Helper()
	if ts.Submitted != ts.Served+ts.Rejected+ts.Cancelled {
		t.Fatalf("accounting leak: submitted=%d served=%d rejected=%d cancelled=%d",
			ts.Submitted, ts.Served, ts.Rejected, ts.Cancelled)
	}
}

// TestPanicIsolation is the blast-radius check: a panicking request
// resolves to a typed PanicError, the pool keeps serving, and the
// ledger stays balanced with the panic counted Served+Failed.
func TestPanicIsolation(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	s.SetTenant("A", TenantConfig{})

	err := s.Submit(context.Background(), "A", func(context.Context) error {
		panic("poisoned shape")
	})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("want ErrPanic, got %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T", err)
	}
	if pe.Value != "poisoned shape" {
		t.Fatalf("PanicError.Value = %v", pe.Value)
	}
	if strings.Contains(err.Error(), "goroutine") {
		t.Fatalf("Error() leaks raw stack: %q", err.Error())
	}
	if pe.Stack == "" || !strings.Contains(pe.Stack, "faults_test.go") {
		t.Fatalf("sanitized stack lost the panic frame:\n%s", pe.Stack)
	}
	// The top frame must be the panicking code, not recovery machinery.
	if strings.Contains(pe.Stack, "debug.Stack") || strings.Contains(pe.Stack, "gopanic") {
		t.Fatalf("stack not sanitized of recovery machinery:\n%s", pe.Stack)
	}
	if top := strings.SplitN(pe.Stack, "\n", 2)[0]; !strings.Contains(top, "TestPanicIsolation") {
		t.Fatalf("top frame %q is not the panic site:\n%s", top, pe.Stack)
	}

	// The pool survives: later requests on the same workers succeed.
	for i := 0; i < 4; i++ {
		if err := s.Submit(context.Background(), "A", func(context.Context) error { return nil }); err != nil {
			t.Fatalf("request %d after panic: %v", i, err)
		}
	}

	st := s.Stats()
	if st.Panics != 1 {
		t.Fatalf("Stats.Panics = %d, want 1", st.Panics)
	}
	ts := st.Tenants["A"]
	if ts.Submitted != 5 || ts.Served != 5 || ts.Failed != 1 {
		t.Fatalf("ledger after panic: %+v", ts)
	}
	balanced(t, ts)
}

// TestPanicsConcurrently hammers the recovery path under -race: many
// panicking and healthy requests interleave and every panic is isolated.
func TestPanicsConcurrently(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	s.SetTenant("A", TenantConfig{})

	const n = 64
	var wg sync.WaitGroup
	var panics, oks int64
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := s.Submit(context.Background(), "A", func(context.Context) error {
				if i%3 == 0 {
					panic(i)
				}
				return nil
			})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case errors.Is(err, ErrPanic):
				panics++
			case err == nil:
				oks++
			default:
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	wantPanics := int64((n + 2) / 3)
	if panics != wantPanics || oks != n-wantPanics {
		t.Fatalf("panics=%d oks=%d, want %d/%d", panics, oks, wantPanics, n-wantPanics)
	}
	st := s.Stats()
	if st.Panics != wantPanics {
		t.Fatalf("Stats.Panics = %d, want %d", st.Panics, wantPanics)
	}
	balanced(t, st.Tenants["A"])
}

// TestDispatchShed proves queue-wait deadline shedding: a request whose
// ctx expires while queued is never executed — the worker sheds it at
// dispatch, it's counted cancelled, and the caller gets a typed
// ErrDeadline.
func TestDispatchShed(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	s.SetTenant("A", TenantConfig{})

	release, gateDone := gate(t, s, "A", 1)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	ran := false
	errCh := make(chan error, 1)
	go func() {
		errCh <- s.Submit(ctx, "A", func(context.Context) error {
			ran = true
			return nil
		})
	}()
	waitDepth(t, s, 1)
	<-ctx.Done() // expire while queued, worker still gated

	release()
	gateDone()
	err := <-errCh
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ErrDeadline must still match context.DeadlineExceeded: %v", err)
	}
	if ran {
		t.Fatal("expired request was executed")
	}

	ts := s.Stats().Tenants["A"]
	if ts.Cancelled != 1 {
		t.Fatalf("shed request not counted cancelled: %+v", ts)
	}
	balanced(t, ts)
}

// TestCtxErrorPlainCancel: cancellation without a deadline is not
// dressed up as ErrDeadline.
func TestCtxErrorPlainCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := CtxError(ctx); !errors.Is(err, context.Canceled) || errors.Is(err, ErrDeadline) {
		t.Fatalf("CtxError(cancelled) = %v", err)
	}
}

// TestDispatchFailpoint: the sched.dispatch site fails a request inside
// the isolation boundary; the task counts Served+Failed and the error
// surfaces typed.
func TestDispatchFailpoint(t *testing.T) {
	defer faults.Reset()
	s := New(Config{Workers: 1})
	defer s.Close()
	s.SetTenant("A", TenantConfig{})

	faults.Set("sched.dispatch", faults.Point{Count: 1})
	ran := false
	err := s.Submit(context.Background(), "A", func(context.Context) error {
		ran = true
		return nil
	})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if ran {
		t.Fatal("failpoint did not preempt the run closure")
	}
	if err := s.Submit(context.Background(), "A", func(context.Context) error { return nil }); err != nil {
		t.Fatalf("after failpoint exhausted: %v", err)
	}
	ts := s.Stats().Tenants["A"]
	if ts.Served != 2 || ts.Failed != 1 {
		t.Fatalf("ledger after injected dispatch failure: %+v", ts)
	}
	balanced(t, ts)
}

// TestDispatchPanicFailpoint: an injected dispatch panic takes the same
// recovery path as an organic one.
func TestDispatchPanicFailpoint(t *testing.T) {
	defer faults.Reset()
	s := New(Config{Workers: 1})
	defer s.Close()
	s.SetTenant("A", TenantConfig{})

	faults.Set("sched.dispatch", faults.Point{Mode: faults.ModePanic, Count: 1})
	err := s.Submit(context.Background(), "A", func(context.Context) error { return nil })
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("want ErrPanic, got %v", err)
	}
	if got := s.Stats().Panics; got != 1 {
		t.Fatalf("Stats.Panics = %d, want 1", got)
	}
}
