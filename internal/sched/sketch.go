package sched

import (
	"math/bits"
	"time"
)

// sketch is a small streaming quantile estimator for latencies: a
// log-bucketed histogram over nanoseconds with 8 linear sub-buckets per
// power of two (HDR-histogram style, 496 counters ≈ 4 KB). Relative
// error of any quantile is bounded by the sub-bucket width, ≤ 1/16 =
// 6.25%, which is ample for a p50/p99 serving table; unlike a reservoir
// it never forgets the tail and has no per-observation allocation. The
// zero value is ready to use. Not self-locking: the scheduler serialises
// access under its mutex.
type sketch struct {
	count   uint64
	buckets [sketchLen]uint64
}

const (
	sketchSubBits  = 3
	sketchSubCount = 1 << sketchSubBits
	// Bucket layout: values < 8 ns map to their own bucket; every later
	// power of two [2^e, 2^(e+1)) splits into 8 equal sub-buckets. The
	// top exponent (63) ends the array at (63-3)*8 + 7 + 8 = 495.
	sketchLen = (63-sketchSubBits)*sketchSubCount + sketchSubCount + sketchSubCount
)

func sketchBucket(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < sketchSubCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1
	sub := int((u >> (uint(exp) - sketchSubBits)) & (sketchSubCount - 1))
	return (exp-sketchSubBits)*sketchSubCount + sub + sketchSubCount
}

// sketchValue is the representative (midpoint) value of bucket b — the
// inverse of sketchBucket up to the sub-bucket width.
func sketchValue(b int) int64 {
	if b < sketchSubCount {
		return int64(b)
	}
	m := uint((b - sketchSubCount) / sketchSubCount)
	sub := int64((b - sketchSubCount) % sketchSubCount)
	low := (sketchSubCount + sub) << m
	return low + (int64(1)<<m)/2
}

func (s *sketch) observe(d time.Duration) {
	s.buckets[sketchBucket(d.Nanoseconds())]++
	s.count++
}

// quantile returns the q-th quantile (0 < q <= 1) of everything observed,
// or 0 when nothing has been.
func (s *sketch) quantile(q float64) time.Duration {
	if s.count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.count))
	if rank >= s.count {
		rank = s.count - 1
	}
	var cum uint64
	for b, n := range s.buckets {
		cum += n
		if cum > rank {
			return time.Duration(sketchValue(b))
		}
	}
	return 0 // unreachable: cum reaches count
}
