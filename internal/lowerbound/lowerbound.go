// Package lowerbound implements the paper's Reduce runtime lower bound
// (§5.6): a dynamic program over Lemma 5.5's energy recursion
//
//	E*(P,1,D) ≥ min_{0<i<P} E*(i,1,D) + E*(P−i,1,D−1) + min(i, P−i+1)
//
// combined into
//
//	T*(P,B) ≥ min_D  B·E*(P,1,D)/(P−1) + P−1 + D·(2·T_R+1).
//
// Contention is deliberately omitted (it only strengthens algorithms'
// costs, not the bound), and vector energy is at least B times scalar
// energy. The optimality-ratio heatmaps of Figure 1 divide each
// algorithm's predicted runtime by this bound.
package lowerbound

import (
	"math"
	"sync"
)

const inf = int64(1) << 60

// Table memoises the scalar energy DP E*(P,1,D) for all P up to a maximum
// and all depths up to P−1. Solving the DP takes O(P³) as stated in §5.6;
// the table is built once and shared.
type Table struct {
	maxP int
	// e[d][p] = E*(p, 1, min(d, p-1)); d ranges 0..maxP-1, p ranges 0..maxP.
	e [][]int64
}

var (
	tableMu sync.Mutex
	cached  *Table
)

// For returns a table covering at least maxP PEs, reusing a previously
// built one when possible.
func For(maxP int) *Table {
	tableMu.Lock()
	defer tableMu.Unlock()
	if cached != nil && cached.maxP >= maxP {
		return cached
	}
	cached = build(maxP)
	return cached
}

func build(maxP int) *Table {
	if maxP < 1 {
		maxP = 1
	}
	maxD := maxP - 1
	if maxD < 1 {
		maxD = 1
	}
	e := make([][]int64, maxD+1)
	for d := range e {
		e[d] = make([]int64, maxP+1)
	}
	// Depth 0: only a single PE can "reduce" without any message.
	for p := 2; p <= maxP; p++ {
		e[0][p] = inf
	}
	for d := 1; d <= maxD; d++ {
		row := e[d]
		prev := e[d-1]
		row[1] = 0
		for p := 2; p <= maxP; p++ {
			best := inf
			for i := 1; i < p; i++ {
				left := row[i] // E*(i,1,D): the root's earlier sub-reduce keeps depth D
				if left >= inf {
					continue
				}
				right := prev[p-i] // E*(P−i,1,D−1): the final sender's subtree
				if right >= inf {
					continue
				}
				extra := int64(i)
				if r := int64(p - i + 1); r < extra {
					extra = r
				}
				if v := left + right + extra; v < best {
					best = v
				}
			}
			row[p] = best
		}
	}
	return &Table{maxP: maxP, e: e}
}

// Energy returns E*(p,1,d), the minimum energy to reduce a scalar over p
// consecutive PEs with depth at most d. Depths beyond p−1 cannot help and
// are clamped.
func (t *Table) Energy(p, d int) int64 {
	if p <= 1 {
		return 0
	}
	if d < 0 {
		return inf
	}
	if d > p-1 {
		d = p - 1
	}
	if d >= len(t.e) {
		d = len(t.e) - 1
	}
	return t.e[d][p]
}

// Time returns the lower bound T*(p,b) in cycles for ramp latency tr,
// minimising over all depths.
func (t *Table) Time(p, b, tr int) float64 {
	if p <= 1 {
		return 0
	}
	ramp := float64(2*tr + 1)
	best := math.Inf(1)
	for d := 1; d <= p-1; d++ {
		en := t.Energy(p, d)
		if en >= inf {
			continue
		}
		v := float64(b)*float64(en)/float64(p-1) + float64(p-1) + float64(d)*ramp
		if v < best {
			best = v
		}
	}
	return best
}
