package lowerbound

import (
	"testing"

	"repro/internal/model"
)

func TestEnergySmallCases(t *testing.T) {
	tb := For(16)
	if got := tb.Energy(1, 5); got != 0 {
		t.Errorf("E*(1)=%d, want 0", got)
	}
	// Two neighbouring PEs: one message over one link.
	if got := tb.Energy(2, 1); got != 1 {
		t.Errorf("E*(2,1)=%d, want 1", got)
	}
	// Depth 0 cannot reduce more than one PE.
	if got := tb.Energy(3, 0); got < 1<<50 {
		t.Errorf("E*(3,0)=%d, want inf", got)
	}
}

func TestEnergyMonotoneInDepth(t *testing.T) {
	tb := For(128)
	for p := 2; p <= 128; p *= 2 {
		prev := tb.Energy(p, 1)
		for d := 2; d < p; d++ {
			cur := tb.Energy(p, d)
			if cur > prev {
				t.Fatalf("E*(%d,%d)=%d > E*(%d,%d)=%d", p, d, cur, p, d-1, prev)
			}
			prev = cur
		}
	}
}

func TestChainEnergyAchievesUnconstrainedBound(t *testing.T) {
	// With unconstrained depth the bound degenerates to one hop per link.
	tb := For(64)
	for _, p := range []int{2, 3, 8, 33, 64} {
		if got := tb.Energy(p, p-1); got != int64(p-1) {
			t.Errorf("E*(%d,%d)=%d, want %d", p, p-1, got, p-1)
		}
	}
}

func TestBoundBelowAlgorithms(t *testing.T) {
	tb := For(512)
	pr := model.Default()
	for _, p := range []int{4, 16, 64, 512} {
		for _, b := range []int{1, 16, 256, 4096} {
			lb := tb.Time(p, b, pr.TR)
			if lb <= 0 {
				t.Fatalf("T*(%d,%d)=%v", p, b, lb)
			}
			for _, name := range model.ReduceNames {
				alg := pr.Reduce1D(name, p, b)
				if name == "star" {
					// The refined star estimate drops the energy term
					// (perfect pipelining) and may dip below the
					// energy-based bound at B=1; Figure 1 uses the Lemma
					// 5.1 form, which must respect the bound.
					alg = pr.StarReduceUpper(p, b)
				}
				if alg < lb-1e-9 {
					t.Errorf("%s(%d,%d)=%v below bound %v", name, p, b, alg, lb)
				}
			}
		}
	}
}

func TestBoundApproachesChainForLargeB(t *testing.T) {
	tb := For(512)
	pr := model.Default()
	p, b := 512, 1<<20
	lb := tb.Time(p, b, pr.TR)
	chain := pr.ChainReduce(p, b)
	if ratio := chain / lb; ratio > 1.01 {
		t.Errorf("chain/LB = %v at huge B, want →1 (chain is optimal there)", ratio)
	}
}
