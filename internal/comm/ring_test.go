package comm

import (
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/mesh"
	"repro/internal/model"
)

func runRing(t *testing.T, mapping RingMapping, p, b int) *fabric.Result {
	t.Helper()
	spec := fabric.NewSpec(p, 1)
	path := mesh.Row(0, 0, p)
	if err := BuildRingAllReduce(spec, path, b, mapping, fabric.OpSum); err != nil {
		t.Fatalf("build ring %v p=%d b=%d: %v", mapping, p, b, err)
	}
	vecs, _ := inputs(p, b, int64(3*p+b))
	for i, c := range path {
		spec.PE(c).Init = vecs[i]
	}
	f, err := fabric.New(spec, fabric.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatalf("run ring %v p=%d b=%d: %v", mapping, p, b, err)
	}
	return res
}

func TestRingAllReduceCorrectness(t *testing.T) {
	for _, mapping := range []RingMapping{RingSimple, RingDistancePreserving} {
		for _, p := range []int{2, 4, 8, 16, 32} {
			for _, b := range []int{p, 2*p + 3, 16 * p} {
				t.Run(fmt.Sprintf("%v/p%d/b%d", mapping, p, b), func(t *testing.T) {
					path := mesh.Row(0, 0, p)
					vecs, want := inputs(p, b, int64(3*p+b))
					res := runRing(t, mapping, p, b)
					_ = vecs
					for _, c := range path {
						if err := almostEqual(res.Acc[c], want); err != nil {
							t.Fatalf("PE %v: %v", c, err)
						}
					}
				})
			}
		}
	}
}

func TestRingSimpleOddPECount(t *testing.T) {
	// The simple mapping supports odd rings; distance-preserving does not.
	res := runRing(t, RingSimple, 5, 25)
	if res.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	spec := fabric.NewSpec(5, 1)
	if err := BuildRingAllReduce(spec, mesh.Row(0, 0, 5), 25, RingDistancePreserving, fabric.OpSum); err == nil {
		t.Error("distance-preserving ring accepted odd PE count")
	}
}

func TestRingRejectsTinyVectors(t *testing.T) {
	spec := fabric.NewSpec(8, 1)
	if err := BuildRingAllReduce(spec, mesh.Row(0, 0, 8), 4, RingSimple, fabric.OpSum); err == nil {
		t.Error("ring accepted B < P")
	}
}

func TestRingMappingsAgreeOnRuntimeScale(t *testing.T) {
	// The paper's model assigns both mappings the same cost (§6.2); the
	// simulated runtimes should be within a small factor of each other.
	for _, p := range []int{8, 32} {
		b := 32 * p
		simple := runRing(t, RingSimple, p, b)
		dp := runRing(t, RingDistancePreserving, p, b)
		lo, hi := simple.Cycles, dp.Cycles
		if lo > hi {
			lo, hi = hi, lo
		}
		if float64(hi) > 1.5*float64(lo) {
			t.Errorf("p=%d b=%d: simple %d vs distance-preserving %d cycles", p, b, simple.Cycles, dp.Cycles)
		}
	}
}

// TestRingModelPredictsWinner validates experimentally the paper's
// central methodological claim (§8.5: "our model is able to very
// accurately predict which of the two performs best"), applied to the one
// algorithm the paper deliberately left unimplemented. The paper modelled
// ring, saw it win only for tiny PE counts with huge vectors (Figure 8's
// bottom-right region) and never at scale (§8.6), and skipped the
// engineering. We build it anyway: at every probed point the simulator
// must crown the same winner as the model — including the points where
// ring genuinely wins.
func TestRingModelPredictsWinner(t *testing.T) {
	pr := model.Default()
	for _, tc := range []struct{ p, b int }{
		{4, 512}, {8, 1024}, {8, 64}, {16, 64}, {32, 2048}, {32, 256}, {64, 1024},
	} {
		ring := runRing(t, RingSimple, tc.p, tc.b)

		spec := fabric.NewSpec(tc.p, 1)
		path := mesh.Row(0, 0, tc.p)
		if err := BuildAllReduce1D(spec, path, Chain(tc.p), tc.b, fabric.OpSum); err != nil {
			t.Fatal(err)
		}
		vecs, _ := inputs(tc.p, tc.b, 1)
		for i, c := range path {
			spec.PE(c).Init = vecs[i]
		}
		f, err := fabric.New(spec, fabric.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cb, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}

		predRing := pr.RingAllReduce(tc.p, tc.b)
		predCB := pr.AllReduce1D("chain", tc.p, tc.b)
		modelSaysRing := predRing < predCB
		simSaysRing := ring.Cycles < cb.Cycles
		// Allow disagreement only when the two are within a few percent
		// (§8.5: mispredictions cost at most ~114 cycles there).
		close := func(a, b int64) bool {
			d := a - b
			if d < 0 {
				d = -d
			}
			return float64(d) < 0.05*float64(a+b)/2+64
		}
		if modelSaysRing != simSaysRing && !close(ring.Cycles, cb.Cycles) {
			t.Errorf("p=%d b=%d: model picks ring=%v (%.0f vs %.0f) but simulator measured ring=%d chain+bcast=%d",
				tc.p, tc.b, modelSaysRing, predRing, predCB, ring.Cycles, cb.Cycles)
		}
		// The ring prediction itself must be in the right ballpark.
		rel := (float64(ring.Cycles) - predRing) / float64(ring.Cycles)
		if rel < -0.5 || rel > 0.5 {
			t.Errorf("p=%d b=%d: ring measured %d vs predicted %.0f", tc.p, tc.b, ring.Cycles, predRing)
		}
	}
}

func TestRingEnergyMatchesModel(t *testing.T) {
	// Lemma 6.1's energy: 2(P-1) rounds of 2(P-1) links × B/P wavelets.
	p, b := 8, 64
	res := runRing(t, RingSimple, p, b)
	// Simple mapping: per reduce-scatter+allgather round set, each of the
	// P logical edges carries its chunk; edge lengths sum to 2(P-1) hops
	// per lap. 2(P-1) rounds of B/P wavelets (+controls).
	perLap := 2 * (p - 1)
	want := int64(2 * (p - 1) * (b/p + 1) * perLap / p * p / perLap) // loose sanity only
	if res.Stats.Hops < want/2 {
		t.Errorf("ring energy %d hops, implausibly low (sanity %d)", res.Stats.Hops, want)
	}
}
