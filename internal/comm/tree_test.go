package comm

import (
	"testing"
	"testing/quick"
)

func TestFixedTreesValid(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 16, 33, 100, 512} {
		for name, tr := range map[string]Tree{
			"star":     Star(p),
			"chain":    Chain(p),
			"binomial": Binomial(p),
			"twophase": TwoPhase(p, 0),
		} {
			if p == 1 {
				tr = Single()
			}
			if err := tr.Validate(); err != nil {
				t.Errorf("%s(%d): %v", name, p, err)
			}
			if tr.Len() != p {
				t.Errorf("%s(%d): %d vertices", name, p, tr.Len())
			}
		}
	}
}

func TestTreeDepths(t *testing.T) {
	if d := Star(64).Depth(); d != 1 {
		t.Errorf("star depth %d", d)
	}
	if d := Chain(64).Depth(); d != 63 {
		t.Errorf("chain depth %d", d)
	}
	if d := Binomial(64).Depth(); d != 6 {
		t.Errorf("binomial depth %d", d)
	}
	// Lemma 5.4: two-phase depth is (S-1) + ceil(P/S) - 1 with S=ceil(√P).
	if d := TwoPhase(64, 8).Depth(); d != 7+7 {
		t.Errorf("twophase depth %d, want 14", d)
	}
}

func TestTwoPhaseGroupsFromEnd(t *testing.T) {
	// P=10, S=3: groups assigned from p9 backwards are {7,8,9}, {4,5,6},
	// {1,2,3}, and the residual group {0} at the root.
	tr := TwoPhase(10, 3)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	wantParents := []int{-1, 0, 1, 2, 1, 4, 5, 4, 7, 8}
	for v, want := range wantParents {
		if tr.Parent[v] != want {
			t.Errorf("parent[%d]=%d, want %d (full: %v)", v, tr.Parent[v], want, tr.Parent)
			break
		}
	}
}

func TestBinomialMatchesRounds(t *testing.T) {
	// Children of the root of an 8-PE binomial tree are 1, 2, 4 (the
	// paper's round-by-round halving), received in that order.
	ch := Binomial(8).Children()
	want := []int{1, 2, 4}
	if len(ch[0]) != len(want) {
		t.Fatalf("root children %v", ch[0])
	}
	for i := range want {
		if ch[0][i] != want[i] {
			t.Fatalf("root children %v, want %v", ch[0], want)
		}
	}
}

// TestPreorderProperty is the property-based check of the pre-order
// invariant all compiled trees rely on: every generator yields trees whose
// subtrees are contiguous and whose children are received left to right.
func TestPreorderProperty(t *testing.T) {
	f := func(pRaw uint16, sRaw uint8, kind uint8) bool {
		p := int(pRaw%1000) + 1
		var tr Tree
		switch kind % 4 {
		case 0:
			tr = Star(p)
		case 1:
			tr = Chain(p)
		case 2:
			tr = Binomial(p)
		default:
			tr = TwoPhase(p, int(sRaw%40))
		}
		if p == 1 {
			tr = Single()
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadTrees(t *testing.T) {
	bad := []Tree{
		{Parent: []int{}},
		{Parent: []int{0}},           // root must be -1
		{Parent: []int{-1, 2, 1}},    // parent after child
		{Parent: []int{-1, 0, 0, 1}}, // child 3 of 1 breaks contiguity
		{Parent: []int{-1, 0, 3, 0}}, // forward parent
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d accepted: %v", i, tr.Parent)
		}
	}
}

func TestTreeOfUnknownPattern(t *testing.T) {
	if _, err := TreeOf("ring", 8); err == nil {
		t.Error("ring is model-only and must not have a tree")
	}
	if _, err := TreeOf("chain", 0); err == nil {
		t.Error("zero PEs accepted")
	}
}
