package comm

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/mesh"
)

// Standard color assignments. 1D collectives use colors 0-1 for the tree
// and 2 for the broadcast; 2D X-Y collectives use 0-1 for rows, 2-3 for
// the column phase and 4 for the 2D broadcast, matching the paper's budget
// of ≤3 colors in 1D and ≤5 in 2D (§8.2). The measurement harness uses
// TriggerColor on top.
const (
	ColorTreeA  mesh.Color = 0
	ColorTreeB  mesh.Color = 1
	ColorBcast  mesh.Color = 2
	ColorColA   mesh.Color = 2
	ColorColB   mesh.Color = 3
	ColorBcast2 mesh.Color = 4
	// TriggerColor carries the start trigger of the §8.3 measurement
	// methodology.
	TriggerColor mesh.Color = 23
)

// TreeOf builds the reduction tree of a named 1D pattern. Auto-Gen trees
// come from the autogen package instead and are passed to BuildTreeReduce
// directly.
func TreeOf(pattern string, p int) (Tree, error) {
	if p < 1 {
		return Tree{}, fmt.Errorf("comm: %d PEs", p)
	}
	if p == 1 {
		return Single(), nil
	}
	switch pattern {
	case "star":
		return Star(p), nil
	case "chain":
		return Chain(p), nil
	case "tree":
		return Binomial(p), nil
	case "twophase":
		return TwoPhase(p, 0), nil
	}
	return Tree{}, fmt.Errorf("comm: unknown pattern %q", pattern)
}

// BuildReduce1D compiles a tree Reduce along a path, rooted at path index
// 0, using the standard 1D colors.
func BuildReduce1D(spec *fabric.Spec, path mesh.Path, tree Tree, b int, op fabric.ReduceOp) error {
	return BuildTreeReduce(spec, path, tree, b, ColorPair{ColorTreeA, ColorTreeB}, op)
}

// BuildAllReduce1D compiles the paper's Reduce-then-Broadcast AllReduce
// (§6.1) along a path: a tree Reduce to path index 0 followed by a
// flooding broadcast of the result.
func BuildAllReduce1D(spec *fabric.Spec, path mesh.Path, tree Tree, b int, op fabric.ReduceOp) error {
	if err := BuildReduce1D(spec, path, tree, b, op); err != nil {
		return err
	}
	return BuildBroadcast(spec, path, b, ColorBcast)
}

// BuildReduceXY compiles the 2D X-Y Reduce of §7.2 on a width×height
// grid: rowTree reduces every row to column 0 (all rows share colors 0-1;
// rows are link-disjoint), then colTree reduces column 0 to (0,0) on
// colors 2-3.
//
// rowTree must have width vertices and colTree height vertices.
func BuildReduceXY(spec *fabric.Spec, width, height int, rowTree, colTree Tree, b int, op fabric.ReduceOp) error {
	if rowTree.Len() != width {
		return fmt.Errorf("comm: row tree has %d vertices, grid width %d", rowTree.Len(), width)
	}
	if colTree.Len() != height {
		return fmt.Errorf("comm: column tree has %d vertices, grid height %d", colTree.Len(), height)
	}
	for y := 0; y < height; y++ {
		if err := BuildTreeReduce(spec, mesh.Row(y, 0, width), rowTree, b, ColorPair{ColorTreeA, ColorTreeB}, op); err != nil {
			return fmt.Errorf("comm: row %d: %w", y, err)
		}
	}
	if height > 1 {
		if err := BuildTreeReduce(spec, mesh.Column(0, 0, height), colTree, b, ColorPair{ColorColA, ColorColB}, op); err != nil {
			return fmt.Errorf("comm: column phase: %w", err)
		}
	}
	return nil
}

// BuildReduceSnake compiles the Snake Reduce of §7.3: a fully pipelined
// chain over the boustrophedon path covering the whole grid, optimal for
// B >> P where contention dominates.
func BuildReduceSnake(spec *fabric.Spec, width, height, b int, op fabric.ReduceOp) error {
	path := mesh.Snake(height, width)
	return BuildTreeReduce(spec, path, Chain(len(path)), b, ColorPair{ColorTreeA, ColorTreeB}, op)
}

// BuildAllReduceXY compiles the 2D AllReduce of §7.4 in its efficient
// form: 2D X-Y Reduce to (0,0) followed by the 2D flooding broadcast.
func BuildAllReduceXY(spec *fabric.Spec, width, height int, rowTree, colTree Tree, b int, op fabric.ReduceOp) error {
	if err := BuildReduceXY(spec, width, height, rowTree, colTree, b, op); err != nil {
		return err
	}
	return BuildBroadcast2D(spec, width, height, b, ColorBcast2)
}

// BuildAllReduceSnake compiles Snake Reduce followed by the 2D broadcast.
func BuildAllReduceSnake(spec *fabric.Spec, width, height, b int, op fabric.ReduceOp) error {
	if err := BuildReduceSnake(spec, width, height, b, op); err != nil {
		return err
	}
	return BuildBroadcast2D(spec, width, height, b, ColorBcast2)
}
