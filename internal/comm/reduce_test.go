package comm

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/fabric"
	"repro/internal/mesh"
)

// inputs generates deterministic per-PE vectors and their elementwise sum.
func inputs(p, b int, seed int64) ([][]float32, []float32) {
	vecs := make([][]float32, p)
	sum := make([]float32, b)
	s := uint64(seed)*2654435761 + 1
	for i := range vecs {
		v := make([]float32, b)
		for j := range v {
			s = s*6364136223846793005 + 1442695040888963407
			v[j] = float32(int64(s>>40)%1000) / 8
			sum[j] += v[j]
		}
		vecs[i] = v
	}
	return vecs, sum
}

func almostEqual(a, b []float32) error {
	if len(a) != len(b) {
		return fmt.Errorf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		diff := math.Abs(float64(a[i] - b[i]))
		tol := 1e-3 * (1 + math.Abs(float64(b[i])))
		if diff > tol {
			return fmt.Errorf("element %d: got %v want %v", i, a[i], b[i])
		}
	}
	return nil
}

// runReduce1D builds and runs a 1D reduce on a row and returns the result.
func runReduce1D(t *testing.T, pattern string, p, b int) (*fabric.Result, [][]float32, []float32) {
	t.Helper()
	tree, err := TreeOf(pattern, p)
	if err != nil {
		t.Fatalf("TreeOf: %v", err)
	}
	spec := fabric.NewSpec(p, 1)
	path := mesh.Row(0, 0, p)
	if err := BuildReduce1D(spec, path, tree, b, fabric.OpSum); err != nil {
		t.Fatalf("build: %v", err)
	}
	vecs, want := inputs(p, b, int64(p*1000+b))
	for i, c := range path {
		spec.PE(c).Init = vecs[i]
	}
	f, err := fabric.New(spec, fabric.Options{})
	if err != nil {
		t.Fatalf("fabric.New: %v", err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatalf("run %s p=%d b=%d: %v", pattern, p, b, err)
	}
	return res, vecs, want
}

func TestReduce1DCorrectness(t *testing.T) {
	for _, pattern := range []string{"star", "chain", "tree", "twophase"} {
		for _, p := range []int{1, 2, 3, 4, 5, 8, 16, 33} {
			for _, b := range []int{1, 2, 7, 32} {
				t.Run(fmt.Sprintf("%s/p%d/b%d", pattern, p, b), func(t *testing.T) {
					res, _, want := runReduce1D(t, pattern, p, b)
					if err := almostEqual(res.Acc[mesh.Coord{X: 0, Y: 0}], want); err != nil {
						t.Fatalf("root result: %v", err)
					}
				})
			}
		}
	}
}

func TestChainReduceMatchesLemma52(t *testing.T) {
	// Lemma 5.2: T_chain = B + (2T_R+2)(P-1). Our implementation adds a
	// trailing control wavelet per transfer and a few constant cycles of
	// ramp/drain overhead, so allow a small additive slack.
	for _, p := range []int{2, 8, 64, 256} {
		for _, b := range []int{1, 64, 1024} {
			res, _, _ := runReduce1D(t, "chain", p, b)
			model := int64(b + (2*fabric.DefaultTR+2)*(p-1))
			slack := int64(2*fabric.DefaultTR + 6)
			if res.Cycles < model || res.Cycles > model+slack+int64(p) {
				t.Errorf("p=%d b=%d: measured %d, model %d (+slack %d)", p, b, res.Cycles, model, slack+int64(p))
			}
		}
	}
}

func TestStarReduceContention(t *testing.T) {
	// Star reduce's runtime is dominated by root contention B(P-1).
	res, _, _ := runReduce1D(t, "star", 16, 64)
	if res.Stats.MaxReceived != 64*15 {
		t.Errorf("root received %d data wavelets, want %d", res.Stats.MaxReceived, 64*15)
	}
	model := int64(64*15 + 2*fabric.DefaultTR + 1)
	if res.Cycles < model || res.Cycles > model+64 {
		t.Errorf("measured %d, model %d", res.Cycles, model)
	}
}

func TestBroadcast1D(t *testing.T) {
	for _, p := range []int{2, 4, 32, 512} {
		for _, b := range []int{1, 8, 256} {
			spec := fabric.NewSpec(p, 1)
			path := mesh.Row(0, 0, p)
			if err := BuildBroadcast(spec, path, b, ColorBcast); err != nil {
				t.Fatalf("build: %v", err)
			}
			vecs, _ := inputs(1, b, 7)
			spec.PE(path[0]).Init = vecs[0]
			f, err := fabric.New(spec, fabric.Options{})
			if err != nil {
				t.Fatalf("fabric.New: %v", err)
			}
			res, err := f.Run()
			if err != nil {
				t.Fatalf("run p=%d b=%d: %v", p, b, err)
			}
			for _, c := range path {
				if err := almostEqual(res.Acc[c], vecs[0]); err != nil {
					t.Fatalf("p=%d b=%d PE %v: %v", p, b, c, err)
				}
			}
			// Lemma 4.1: T = B + P + 2T_R (plus control+drain slack).
			model := int64(b + p + 2*fabric.DefaultTR)
			if res.Cycles < model-1 || res.Cycles > model+int64(2*fabric.DefaultTR+6) {
				t.Errorf("p=%d b=%d: measured %d, model %d", p, b, res.Cycles, model)
			}
		}
	}
}

func TestAllReduce1DCorrectness(t *testing.T) {
	for _, pattern := range []string{"star", "chain", "tree", "twophase"} {
		for _, p := range []int{2, 5, 16, 33} {
			for _, b := range []int{1, 9, 64} {
				tree, err := TreeOf(pattern, p)
				if err != nil {
					t.Fatal(err)
				}
				spec := fabric.NewSpec(p, 1)
				path := mesh.Row(0, 0, p)
				if err := BuildAllReduce1D(spec, path, tree, b, fabric.OpSum); err != nil {
					t.Fatalf("build: %v", err)
				}
				vecs, want := inputs(p, b, int64(p+b))
				for i, c := range path {
					spec.PE(c).Init = vecs[i]
				}
				f, err := fabric.New(spec, fabric.Options{})
				if err != nil {
					t.Fatal(err)
				}
				res, err := f.Run()
				if err != nil {
					t.Fatalf("run %s p=%d b=%d: %v", pattern, p, b, err)
				}
				for _, c := range path {
					if err := almostEqual(res.Acc[c], want); err != nil {
						t.Fatalf("%s p=%d b=%d PE %v: %v", pattern, p, b, c, err)
					}
				}
			}
		}
	}
}

func TestReduce2DCorrectness(t *testing.T) {
	grids := [][2]int{{2, 2}, {4, 3}, {8, 8}, {5, 7}}
	for _, g := range grids {
		w, h := g[0], g[1]
		for _, b := range []int{1, 16} {
			for _, mode := range []string{"xy-chain", "xy-tree", "snake"} {
				spec := fabric.NewSpec(w, h)
				var err error
				switch mode {
				case "xy-chain":
					err = BuildReduceXY(spec, w, h, Chain(w), Chain(h), b, fabric.OpSum)
				case "xy-tree":
					err = BuildReduceXY(spec, w, h, Binomial(w), Binomial(h), b, fabric.OpSum)
				case "snake":
					err = BuildReduceSnake(spec, w, h, b, fabric.OpSum)
				}
				if err != nil {
					t.Fatalf("%s %dx%d: %v", mode, w, h, err)
				}
				vecs, want := inputs(w*h, b, int64(w*100+h))
				i := 0
				for y := 0; y < h; y++ {
					for x := 0; x < w; x++ {
						spec.PE(mesh.Coord{X: x, Y: y}).Init = vecs[i]
						i++
					}
				}
				f, err := fabric.New(spec, fabric.Options{})
				if err != nil {
					t.Fatal(err)
				}
				res, err := f.Run()
				if err != nil {
					t.Fatalf("run %s %dx%d b=%d: %v", mode, w, h, b, err)
				}
				if err := almostEqual(res.Acc[mesh.Coord{X: 0, Y: 0}], want); err != nil {
					t.Fatalf("%s %dx%d b=%d: %v", mode, w, h, b, err)
				}
			}
		}
	}
}

func TestAllReduce2DCorrectness(t *testing.T) {
	w, h, b := 6, 4, 8
	spec := fabric.NewSpec(w, h)
	if err := BuildAllReduceXY(spec, w, h, TwoPhase(w, 0), TwoPhase(h, 0), b, fabric.OpSum); err != nil {
		t.Fatal(err)
	}
	vecs, want := inputs(w*h, b, 42)
	i := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			spec.PE(mesh.Coord{X: x, Y: y}).Init = vecs[i]
			i++
		}
	}
	f, err := fabric.New(spec, fabric.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if err := almostEqual(res.Acc[mesh.Coord{X: x, Y: y}], want); err != nil {
				t.Fatalf("PE (%d,%d): %v", x, y, err)
			}
		}
	}
}
