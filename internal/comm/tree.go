// Package comm compiles collective communication patterns into fabric
// programs (per-PE processor ops and router configuration lists).
//
// Its centrepiece is a single compiler from pre-order labelled reduction
// trees to fabric programs. The paper observes (§5.5) that the pre-order
// tree formulation "generalizes every algorithm we have presented so far":
// Star is a star graph, Chain a path, Tree a binomial tree, Two-Phase a
// two-level chain-of-chains, and Auto-Gen an arbitrary optimised tree. All
// five therefore share one code path here, and broadcast, AllReduce and the
// 2D mappings (X-Y, Snake) are built on top of it.
package comm

import (
	"fmt"
	"sort"
)

// Tree is a reduction tree over path indices 0..P-1 in pre-order layout:
// the root is index 0 and every subtree occupies a contiguous index range.
// Parent[0] must be -1. A vertex receives from its children in increasing
// index order; edges never cross (nesting is allowed). These are exactly
// the constraints of the paper's Auto-Gen execution model (§5.5, Figure 6).
type Tree struct {
	Parent []int
}

// Len returns the number of vertices.
func (t Tree) Len() int { return len(t.Parent) }

// Children returns, for each vertex, its children in increasing order.
func (t Tree) Children() [][]int {
	ch := make([][]int, len(t.Parent))
	for v := 1; v < len(t.Parent); v++ {
		p := t.Parent[v]
		ch[p] = append(ch[p], v)
	}
	for _, c := range ch {
		sort.Ints(c)
	}
	return ch
}

// Depths returns the depth of each vertex (root = 0).
func (t Tree) Depths() []int {
	d := make([]int, len(t.Parent))
	for v := 1; v < len(t.Parent); v++ {
		d[v] = d[t.Parent[v]] + 1
	}
	return d
}

// Depth returns the tree height: the maximum vertex depth.
func (t Tree) Depth() int {
	max := 0
	for _, d := range t.Depths() {
		if d > max {
			max = d
		}
	}
	return max
}

// subtreeSizes computes the size of each subtree.
func (t Tree) subtreeSizes() []int {
	size := make([]int, len(t.Parent))
	for v := len(t.Parent) - 1; v >= 0; v-- {
		size[v]++
		if p := t.Parent[v]; p >= 0 {
			size[p] += size[v]
		}
	}
	return size
}

// Validate checks the pre-order property: for every vertex, the children
// partition the vertex's subtree interval contiguously, i.e. child k+1
// starts exactly where child k's subtree ends. Parents must precede
// children (Parent[v] < v) and Parent[0] must be -1.
func (t Tree) Validate() error {
	if len(t.Parent) == 0 {
		return fmt.Errorf("comm: empty tree")
	}
	if t.Parent[0] != -1 {
		return fmt.Errorf("comm: root parent is %d, want -1", t.Parent[0])
	}
	for v := 1; v < len(t.Parent); v++ {
		if t.Parent[v] < 0 || t.Parent[v] >= v {
			return fmt.Errorf("comm: vertex %d has parent %d (want 0..%d)", v, t.Parent[v], v-1)
		}
	}
	size := t.subtreeSizes()
	for v, ch := range t.Children() {
		next := v + 1
		for _, c := range ch {
			if c != next {
				return fmt.Errorf("comm: vertex %d: child %d breaks pre-order (expected %d)", v, c, next)
			}
			next += size[c]
		}
		if next != v+size[v] {
			return fmt.Errorf("comm: vertex %d: children cover %d vertices, subtree has %d", v, next-v-1, size[v]-1)
		}
	}
	return nil
}

// Star returns the tree in which every PE sends directly to the root
// (§5.1; used by Rocki et al. for CS-1 stencils).
func Star(p int) Tree {
	parent := make([]int, p)
	parent[0] = -1
	return Tree{Parent: parent}
}

// Chain returns the path tree: every PE sends to its left neighbour,
// fully pipelined (§5.2; the pattern used by the vendor's collectives
// library and matrix-multiply kernel).
func Chain(p int) Tree {
	parent := make([]int, p)
	parent[0] = -1
	for v := 1; v < p; v++ {
		parent[v] = v - 1
	}
	return Tree{Parent: parent}
}

// Binomial returns the binomial tree of the paper's Tree Reduce (§5.3):
// in round r, every PE whose index has lowest set bit 2^(r-1) sends to the
// PE 2^(r-1) to its left. Works for any P, not just powers of two.
func Binomial(p int) Tree {
	parent := make([]int, p)
	parent[0] = -1
	for v := 1; v < p; v++ {
		parent[v] = v - (v & -v)
	}
	return Tree{Parent: parent}
}

// TwoPhase returns the paper's Two-Phase tree (§5.4) with group size s:
// chain reduction inside groups of s consecutive PEs, groups assigned
// from the right end (so a partial group, if any, sits at the root), and a
// chain of the group leaders. Pass s <= 0 to use the paper's choice
// s = ceil(sqrt(P)).
func TwoPhase(p, s int) Tree {
	if s <= 0 {
		s = isqrtCeil(p)
	}
	if s < 1 {
		s = 1
	}
	parent := make([]int, p)
	parent[0] = -1
	// Groups from the end: leader positions are P-kS for k = 1.. and the
	// residual group starts at 0.
	leaders := []int{0}
	first := p % s
	if first == 0 {
		first = s
	}
	for l := first; l < p; l += s {
		leaders = append(leaders, l)
	}
	isLeader := make(map[int]bool, len(leaders))
	for _, l := range leaders {
		isLeader[l] = true
	}
	for k, l := range leaders {
		if k > 0 {
			parent[l] = leaders[k-1]
		}
	}
	for v := 1; v < p; v++ {
		if !isLeader[v] {
			parent[v] = v - 1
		}
	}
	return Tree{Parent: parent}
}

// isqrtCeil returns ceil(sqrt(n)) for n >= 0.
func isqrtCeil(n int) int {
	if n <= 1 {
		return n
	}
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// Single returns the trivial one-vertex tree (P = 1).
func Single() Tree { return Tree{Parent: []int{-1}} }
