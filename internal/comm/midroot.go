package comm

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/mesh"
)

// Middle-root AllReduce: §6.1 notes the naive Reduce-then-Broadcast "could
// be further optimized by choosing an optimal root to reduce to... This is
// done in optimized stencil implementations [25], in which they first
// reduce to the middle PE and broadcast from there". This file implements
// that optimisation: the row is split at the middle PE, both halves reduce
// into it concurrently on disjoint color pairs, and the result floods out
// in both directions on a single color (the router multicasts Ramp→{E,W}).
// Distance and depth terms are roughly halved at the cost of 2B root
// contention.

// reversePath returns the path walked from its far end back to the start.
func reversePath(p mesh.Path) mesh.Path {
	out := make(mesh.Path, len(p))
	for i := range p {
		out[i] = p[len(p)-1-i]
	}
	return out
}

// BuildAllReduceMidRoot compiles a middle-root AllReduce along a path:
// treeFor builds the per-half reduction tree given the half's PE count
// (so any of the §5 patterns, or Auto-Gen, can run on each half).
// Colors 0-4 are used: {0,1} for the west half, {2,3} for the east half,
// 4 for the bidirectional flood.
func BuildAllReduceMidRoot(spec *fabric.Spec, path mesh.Path, b int, treeFor func(p int) (Tree, error), op fabric.ReduceOp) error {
	p := len(path)
	if p < 1 {
		return fmt.Errorf("comm: empty path")
	}
	if err := path.Validate(); err != nil {
		return err
	}
	if p == 1 {
		return nil
	}
	mid := p / 2

	// West half: path indices mid..0, reduced to mid.
	if mid > 0 {
		west := reversePath(path[:mid+1])
		tree, err := treeFor(len(west))
		if err != nil {
			return err
		}
		if err := BuildTreeReduce(spec, west, tree, b, ColorPair{0, 1}, op); err != nil {
			return fmt.Errorf("comm: west half: %w", err)
		}
	}
	// East half: path indices mid..P-1, reduced to mid. The middle PE's
	// accumulator is shared, so its own contribution is counted exactly
	// once even though it roots both trees.
	if mid < p-1 {
		east := path[mid:]
		tree, err := treeFor(len(east))
		if err != nil {
			return err
		}
		if err := BuildTreeReduce(spec, east, tree, b, ColorPair{2, 3}, op); err != nil {
			return fmt.Errorf("comm: east half: %w", err)
		}
	}

	// Bidirectional flood from the middle on one color: the middle
	// router multicasts the ramp stream towards both row ends.
	const bc mesh.Color = 4
	for v := 0; v < p; v++ {
		pe := spec.PE(path[v])
		if v == mid {
			pe.Ops = append(pe.Ops, fabric.Op{Kind: fabric.OpSend, Color: bc, N: b})
			var fwd mesh.DirSet
			if mid > 0 {
				fwd = fwd.Set(path.TowardStart(mid))
			}
			if mid < p-1 {
				fwd = fwd.Set(path.TowardEnd(mid))
			}
			pe.AddConfig(bc, fabric.RouterConfig{Accept: mesh.Ramp, Forward: fwd})
			continue
		}
		pe.Ops = append(pe.Ops, fabric.Op{Kind: fabric.OpRecvStore, Color: bc, N: b})
		fwd := mesh.Dirs(mesh.Ramp)
		var accept mesh.Direction
		if v < mid {
			accept = path.TowardEnd(v) // stream arrives from the middle side
			if v > 0 {
				fwd = fwd.Set(path.TowardStart(v))
			}
		} else {
			accept = path.TowardStart(v)
			if v < p-1 {
				fwd = fwd.Set(path.TowardEnd(v))
			}
		}
		pe.AddConfig(bc, fabric.RouterConfig{Accept: accept, Forward: fwd})
	}
	return nil
}
