package comm

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/mesh"
)

// Scatter and Gather complete the MPI-style collective suite (§2.1 frames
// the work in MPI collective terms). Both move per-PE chunks between the
// path root and the other PEs; the chunking convention matches the ring:
// chunk j belongs to path index j, with balanced sizes when B is not
// divisible by P.

// Chunks returns the balanced chunk offsets and sizes for b elements over
// p PEs (chunk j gets b/p elements, the first b%p chunks one extra).
func Chunks(p, b int) (off, sz []int) {
	off = make([]int, p)
	sz = make([]int, p)
	for j := 0; j < p; j++ {
		sz[j] = b / p
		if j < b%p {
			sz[j]++
		}
		if j > 0 {
			off[j] = off[j-1] + sz[j-1]
		}
	}
	return off, sz
}

// BuildScatter compiles a Scatter: path index 0 holds a full B-element
// vector and delivers chunk j to path index j. The root streams the
// chunks farthest-first; each router passes the transfers destined beyond
// it (counting their trailing controls) and then delivers its own up the
// ramp — the same counted-configuration idiom the reduce compiler uses,
// run in reverse.
func BuildScatter(spec *fabric.Spec, path mesh.Path, b int, color mesh.Color) error {
	p := len(path)
	if p < 2 {
		return fmt.Errorf("comm: scatter needs at least 2 PEs")
	}
	if b < p {
		return fmt.Errorf("comm: scatter needs B >= P for non-empty chunks (B=%d, P=%d)", b, p)
	}
	if err := path.Validate(); err != nil {
		return err
	}
	off, sz := Chunks(p, b)

	root := spec.PE(path[0])
	// Root sends chunks for PEs P-1 down to 1; chunk 0 stays local.
	for v := p - 1; v >= 1; v-- {
		root.Ops = append(root.Ops, fabric.Op{Kind: fabric.OpSend, Color: color, Off: off[v], N: sz[v]})
	}
	root.AddConfig(color, fabric.RouterConfig{Accept: mesh.Ramp, Forward: mesh.Dirs(path.TowardEnd(0))})

	for v := 1; v < p; v++ {
		pe := spec.PE(path[v])
		pe.Ops = append(pe.Ops, fabric.Op{Kind: fabric.OpRecvStore, Color: color, N: sz[v]})
		// Pass the p-1-v transfers headed beyond v, then take ours.
		if v < p-1 {
			pe.AddConfig(color, fabric.RouterConfig{
				Accept:  path.TowardStart(v),
				Forward: mesh.Dirs(path.TowardEnd(v)),
				Times:   p - 1 - v,
			})
		}
		pe.AddConfig(color, fabric.RouterConfig{
			Accept:  path.TowardStart(v),
			Forward: mesh.Dirs(mesh.Ramp),
			Times:   1,
		})
	}
	return nil
}

// BuildGather compiles a Gather: each path index j sends its sz[j]-element
// chunk to path index 0, which assembles the full vector in chunk order.
// The pattern is the star tree with per-chunk payloads: senders inject
// after their own router turns to pass-through, so the root receives
// chunks 1, 2, ... in order.
func BuildGather(spec *fabric.Spec, path mesh.Path, b int, color mesh.Color) error {
	p := len(path)
	if p < 2 {
		return fmt.Errorf("comm: gather needs at least 2 PEs")
	}
	if b < p {
		return fmt.Errorf("comm: gather needs B >= P for non-empty chunks (B=%d, P=%d)", b, p)
	}
	if err := path.Validate(); err != nil {
		return err
	}
	off, sz := Chunks(p, b)

	root := spec.PE(path[0])
	for v := 1; v < p; v++ {
		root.Ops = append(root.Ops, fabric.Op{Kind: fabric.OpRecvStore, Color: color, Off: off[v], N: sz[v]})
	}
	root.AddConfig(color, fabric.RouterConfig{Accept: path.TowardEnd(0), Forward: mesh.Dirs(mesh.Ramp)})

	for v := 1; v < p; v++ {
		pe := spec.PE(path[v])
		// Each PE's chunk sits at the start of its local buffer.
		pe.Ops = append(pe.Ops, fabric.Op{Kind: fabric.OpSend, Color: color, N: sz[v]})
		pe.AddConfig(color, fabric.RouterConfig{
			Accept:  mesh.Ramp,
			Forward: mesh.Dirs(path.TowardStart(v)),
			Times:   1,
		})
		if v < p-1 {
			pe.AddConfig(color, fabric.RouterConfig{
				Accept:  path.TowardEnd(v),
				Forward: mesh.Dirs(path.TowardStart(v)),
			})
		}
	}
	return nil
}

// BuildReduceScatter compiles a ReduceScatter along a path: afterwards
// path index j holds chunk j of the elementwise combination. It is the
// first phase of the ring AllReduce (§6.2), so it reuses the ring's
// mapping, coloring and full-duplex rounds.
func BuildReduceScatter(spec *fabric.Spec, path mesh.Path, b int, mapping RingMapping, op fabric.ReduceOp) error {
	return buildRingPhases(spec, path, b, mapping, op, true, false)
}

// BuildAllGather compiles an AllGather along a path: beforehand path
// index j holds chunk j (at its chunk offset); afterwards every PE holds
// the full vector. It is the second phase of the ring AllReduce.
func BuildAllGather(spec *fabric.Spec, path mesh.Path, b int, mapping RingMapping) error {
	return buildRingPhases(spec, path, b, mapping, fabric.OpSum, false, true)
}
