package comm

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/mesh"
)

// BuildBroadcast compiles the paper's flooding broadcast (§4.2) along a
// path: the PE at path index 0 streams its accumulator; every router
// duplicates the stream towards the far end of the path and up its own
// ramp (hardware multicast at no cost), so the whole broadcast costs the
// same as sending a single message (Lemma 4.1: T = B + P + 2T_R).
//
// Ops are appended to whatever program the PEs already have, which is how
// AllReduce composes Reduce-then-Broadcast.
func BuildBroadcast(spec *fabric.Spec, path mesh.Path, b int, color mesh.Color) error {
	if err := path.Validate(); err != nil {
		return err
	}
	if b <= 0 {
		return fmt.Errorf("comm: vector length %d", b)
	}
	p := len(path)
	if p == 1 {
		return nil // nothing to broadcast to
	}
	for v := 0; v < p; v++ {
		pe := spec.PE(path[v])
		if v == 0 {
			pe.Ops = append(pe.Ops, fabric.Op{Kind: fabric.OpSend, Color: color, N: b})
			pe.AddConfig(color, fabric.RouterConfig{
				Accept:  mesh.Ramp,
				Forward: mesh.Dirs(path.TowardEnd(v)),
			})
			continue
		}
		pe.Ops = append(pe.Ops, fabric.Op{Kind: fabric.OpRecvStore, Color: color, N: b})
		fwd := mesh.Dirs(mesh.Ramp)
		if v < p-1 {
			fwd = fwd.Set(path.TowardEnd(v))
		}
		pe.AddConfig(color, fabric.RouterConfig{
			Accept:  path.TowardStart(v),
			Forward: fwd,
		})
	}
	return nil
}

// BuildBroadcast2D compiles the 2D flooding broadcast of §7.1: the root at
// (0,0) streams east along row 0 while every row-0 router multicasts the
// stream south down its column, reaching all M×N PEs with depth 1 and
// distance M+N-2 (Lemma 7.1).
func BuildBroadcast2D(spec *fabric.Spec, width, height, b int, color mesh.Color) error {
	if b <= 0 {
		return fmt.Errorf("comm: vector length %d", b)
	}
	if width < 1 || height < 1 {
		return fmt.Errorf("comm: broadcast2d on %dx%d grid", width, height)
	}
	if width*height == 1 {
		return nil
	}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			pe := spec.PE(mesh.Coord{X: x, Y: y})
			var accept mesh.Direction
			var fwd mesh.DirSet
			switch {
			case x == 0 && y == 0:
				pe.Ops = append(pe.Ops, fabric.Op{Kind: fabric.OpSend, Color: color, N: b})
				accept = mesh.Ramp
				if width > 1 {
					fwd = fwd.Set(mesh.East)
				}
				if height > 1 {
					fwd = fwd.Set(mesh.South)
				}
			case y == 0: // row 0: flood east and fan south
				pe.Ops = append(pe.Ops, fabric.Op{Kind: fabric.OpRecvStore, Color: color, N: b})
				accept = mesh.West
				fwd = mesh.Dirs(mesh.Ramp)
				if x < width-1 {
					fwd = fwd.Set(mesh.East)
				}
				if height > 1 {
					fwd = fwd.Set(mesh.South)
				}
			default: // interior columns: flood south
				pe.Ops = append(pe.Ops, fabric.Op{Kind: fabric.OpRecvStore, Color: color, N: b})
				accept = mesh.North
				fwd = mesh.Dirs(mesh.Ramp)
				if y < height-1 {
					fwd = fwd.Set(mesh.South)
				}
			}
			pe.AddConfig(color, fabric.RouterConfig{Accept: accept, Forward: fwd})
		}
	}
	return nil
}
