package comm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/mesh"
)

// randomPreorderTree generates a uniformly-random-ish pre-order tree of n
// vertices: the root's children partition the remaining vertices into
// contiguous blocks, recursively. This is exactly the space of executions
// the Auto-Gen generator searches (§5.5), so the compiler must handle
// every such tree, not just the named patterns.
func randomPreorderTree(rng *rand.Rand, n int) Tree {
	parent := make([]int, n)
	parent[0] = -1
	var fill func(base, size int)
	fill = func(base, size int) {
		rest := size - 1
		next := base + 1
		for rest > 0 {
			child := next
			parent[child] = base
			cs := 1 + rng.Intn(rest)
			fill(child, cs)
			next += cs
			rest -= cs
		}
	}
	fill(0, n)
	return Tree{Parent: parent}
}

// TestRandomTreeCompileAndRun is the compiler's core property test: any
// valid pre-order tree must compile to a deadlock-free fabric program
// that computes the exact elementwise sum.
func TestRandomTreeCompileAndRun(t *testing.T) {
	f := func(seed int64, pRaw, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := int(pRaw%40) + 1
		b := int(bRaw%24) + 1
		tree := randomPreorderTree(rng, p)
		if err := tree.Validate(); err != nil {
			t.Logf("generator produced invalid tree: %v", err)
			return false
		}
		spec := fabric.NewSpec(p, 1)
		path := mesh.Row(0, 0, p)
		if err := BuildTreeReduce(spec, path, tree, b, ColorPair{0, 1}, fabric.OpSum); err != nil {
			t.Logf("compile p=%d b=%d: %v", p, b, err)
			return false
		}
		vecs, want := inputs(p, b, seed)
		for i, c := range path {
			spec.PE(c).Init = vecs[i]
		}
		fab, err := fabric.New(spec, fabric.Options{})
		if err != nil {
			t.Logf("new: %v", err)
			return false
		}
		res, err := fab.Run()
		if err != nil {
			t.Logf("run p=%d b=%d tree=%v: %v", p, b, tree.Parent, err)
			return false
		}
		if err := almostEqual(res.Acc[mesh.Coord{}], want); err != nil {
			t.Logf("result p=%d b=%d tree=%v: %v", p, b, tree.Parent, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomTreeOnSnakePaths repeats the property on boustrophedon paths,
// exercising direction changes at row turns (the Snake substrate of §7.3).
func TestRandomTreeOnSnakePaths(t *testing.T) {
	f := func(seed int64, wRaw, hRaw, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		w := int(wRaw%5) + 2
		h := int(hRaw%5) + 2
		b := int(bRaw%16) + 1
		path := mesh.Snake(h, w)
		p := len(path)
		tree := randomPreorderTree(rng, p)
		spec := fabric.NewSpec(w, h)
		if err := BuildTreeReduce(spec, path, tree, b, ColorPair{0, 1}, fabric.OpSum); err != nil {
			t.Logf("compile %dx%d: %v", w, h, err)
			return false
		}
		vecs, want := inputs(p, b, seed)
		for i, c := range path {
			spec.PE(c).Init = vecs[i]
		}
		fab, err := fabric.New(spec, fabric.Options{})
		if err != nil {
			return false
		}
		res, err := fab.Run()
		if err != nil {
			t.Logf("run %dx%d tree=%v: %v", w, h, tree.Parent, err)
			return false
		}
		return almostEqual(res.Acc[path[0]], want) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomTreeMeasuredEnergyMatchesTree checks the fabric's energy
// accounting against the tree's analytic energy: each edge (v→parent)
// carries b data wavelets (+1 control) over the path distance between
// them.
func TestRandomTreeMeasuredEnergyMatchesTree(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		p := 2 + rng.Intn(30)
		b := 1 + rng.Intn(16)
		tree := randomPreorderTree(rng, p)
		want := int64(0)
		for v := 1; v < p; v++ {
			want += int64((b + 1) * (v - tree.Parent[v]))
		}
		spec := fabric.NewSpec(p, 1)
		path := mesh.Row(0, 0, p)
		if err := BuildTreeReduce(spec, path, tree, b, ColorPair{0, 1}, fabric.OpSum); err != nil {
			t.Fatal(err)
		}
		vecs, _ := inputs(p, b, int64(trial))
		for i, c := range path {
			spec.PE(c).Init = vecs[i]
		}
		fab, err := fabric.New(spec, fabric.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := fab.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Hops != want {
			t.Errorf("p=%d b=%d tree=%v: energy %d hops, analytic %d", p, b, tree.Parent, res.Stats.Hops, want)
		}
	}
}
