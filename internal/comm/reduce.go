package comm

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/mesh"
)

// ColorPair is the pair of colors a 1D tree reduction alternates between.
// A vertex at depth d receives its children's transfers on colors[d%2] and
// sends to its parent on colors[(d+1)%2], so the pipelined
// receive-reduce-send of inner vertices never receives and sends on the
// same color. Two colors per 1D collective matches the paper's budget
// (§8.2: 1D implementations use up to 3 colors, the third being the start
// trigger of the measurement harness).
type ColorPair [2]mesh.Color

// BuildTreeReduce compiles a pre-order tree reduction over the PEs of path
// into spec. Path index 0 is the reduction root. Each participating PE
// must already carry its Init vector of length b (set by the caller).
//
// Synchronisation follows the hardware discipline of the paper's Figure 3
// and §8.2: every transfer is b data wavelets plus one trailing control
// wavelet; a router that routes the control advances its configuration for
// that color, so routers move from "deliver my children's data up the
// ramp" through "inject my own send" to "pass through later transfers"
// without any global coordination. Stalled wavelets wait in bounded queues
// (loose synchronisation); the pre-order layout guarantees the stall graph
// is acyclic.
func BuildTreeReduce(spec *fabric.Spec, path mesh.Path, tree Tree, b int, colors ColorPair, op fabric.ReduceOp) error {
	if len(path) != tree.Len() {
		return fmt.Errorf("comm: path has %d PEs, tree has %d vertices", len(path), tree.Len())
	}
	if err := tree.Validate(); err != nil {
		return err
	}
	if err := path.Validate(); err != nil {
		return err
	}
	if b <= 0 {
		return fmt.Errorf("comm: vector length %d", b)
	}
	if colors[0] == colors[1] {
		return fmt.Errorf("comm: tree reduce needs two distinct colors, got %v twice", colors[0])
	}
	children := tree.Children()
	depth := tree.Depths()
	p := tree.Len()
	for v := 0; v < p; v++ {
		pe := spec.PE(path[v])
		colorIn := colors[depth[v]%2]
		colorOut := colors[(depth[v]+1)%2]
		ch := children[v]

		// Processor program: receive children in order, streaming the last
		// one through to the parent (the pipelining that gives Chain its
		// B + (2T_R+2)(P-1) runtime); leaves just send.
		switch {
		case v == 0: // root: receive everything, keep the result
			for range ch {
				pe.Ops = append(pe.Ops, fabric.Op{Kind: fabric.OpRecvReduce, Color: colorIn, N: b, Reduce: op})
			}
		case len(ch) == 0: // leaf
			pe.Ops = append(pe.Ops, fabric.Op{Kind: fabric.OpSend, Color: colorOut, N: b})
		default: // inner vertex
			for range ch[:len(ch)-1] {
				pe.Ops = append(pe.Ops, fabric.Op{Kind: fabric.OpRecvReduce, Color: colorIn, N: b, Reduce: op})
			}
			pe.Ops = append(pe.Ops, fabric.Op{Kind: fabric.OpRecvReduceSend, Color: colorIn, OutColor: colorOut, N: b, Reduce: op})
		}

		// Router configuration lists. "West" is towards path index 0.
		if len(ch) > 0 {
			pe.AddConfig(colorIn, fabric.RouterConfig{
				Accept:  path.TowardEnd(v), // children are east of v
				Forward: mesh.Dirs(mesh.Ramp),
				Times:   len(ch),
			})
			if v > 0 && v < p-1 {
				pe.AddConfig(colorIn, fabric.RouterConfig{
					Accept:  path.TowardEnd(v),
					Forward: mesh.Dirs(path.TowardStart(v)),
				})
			}
		}
		if v > 0 {
			pe.AddConfig(colorOut, fabric.RouterConfig{
				Accept:  mesh.Ramp,
				Forward: mesh.Dirs(path.TowardStart(v)),
				Times:   1,
			})
			if v < p-1 {
				pe.AddConfig(colorOut, fabric.RouterConfig{
					Accept:  path.TowardEnd(v),
					Forward: mesh.Dirs(path.TowardStart(v)),
				})
			}
		}
		// Pure pass-through on the inbound color a leaf never uses itself:
		// transfers of the same parity cross it on that color.
		if len(ch) == 0 && v > 0 && v < p-1 {
			pe.AddConfig(colorIn, fabric.RouterConfig{
				Accept:  path.TowardEnd(v),
				Forward: mesh.Dirs(path.TowardStart(v)),
			})
		}
	}
	return nil
}
