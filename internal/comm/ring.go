package comm

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/mesh"
)

// RingMapping selects how the logical ring is laid onto the physical row
// (§6.2, Figure 7).
type RingMapping uint8

const (
	// RingSimple maps ring neighbours to row neighbours; the closing edge
	// from the rightmost PE back to the leftmost travels the whole row on
	// a dedicated color (Figure 7a).
	RingSimple RingMapping = iota
	// RingDistancePreserving zig-zags the ring (0,1,3,5,…,P-1,P-2,…,2) so
	// every logical edge spans at most two physical hops (Figure 7b).
	// Requires an even PE count.
	RingDistancePreserving
)

// String names the mapping.
func (m RingMapping) String() string {
	if m == RingDistancePreserving {
		return "distance-preserving"
	}
	return "simple"
}

// ringOrder returns the logical ring as a sequence of path indices.
func ringOrder(p int, mapping RingMapping) ([]int, error) {
	if mapping == RingSimple || p == 2 {
		order := make([]int, p)
		for i := range order {
			order[i] = i
		}
		return order, nil
	}
	if p%2 != 0 {
		return nil, fmt.Errorf("comm: distance-preserving ring needs an even PE count, got %d", p)
	}
	order := make([]int, 0, p)
	order = append(order, 0)
	for i := 1; i < p; i += 2 {
		order = append(order, i)
	}
	for i := p - 2; i >= 2; i -= 2 {
		order = append(order, i)
	}
	return order, nil
}

// ringEdgeColor assigns a color to logical edge k (from ring position k
// to k+1). Consecutive edges must differ (a PE receives and sends
// simultaneously); the simple mapping's closing edge gets a dedicated
// color because it crosses every router. Four colors suffice for either
// mapping, within the paper's budget.
func ringEdgeColor(k, p int, mapping RingMapping) mesh.Color {
	if mapping == RingSimple || p == 2 {
		if k == p-1 {
			return 2 // the long wrap-around edge
		}
		return mesh.Color(k % 2)
	}
	// Distance-preserving: eastbound half (including 0→1) on {0,1},
	// westbound half (including the 2→0 wrap) on {2,3}.
	if k < p/2 {
		return mesh.Color(k % 2)
	}
	return mesh.Color(2 + k%2)
}

// addRingEdge installs the static routing for one logical edge between
// path indices a and b on the given color: ramp out at a, pass-through at
// the routers between, ramp in at b.
func addRingEdge(spec *fabric.Spec, path mesh.Path, a, b int, color mesh.Color) error {
	step := 1
	if b < a {
		step = -1
	}
	toward := func(i int) mesh.Direction {
		if step > 0 {
			return path.TowardEnd(i)
		}
		return path.TowardStart(i)
	}
	backward := func(i int) mesh.Direction {
		if step > 0 {
			return path.TowardStart(i)
		}
		return path.TowardEnd(i)
	}
	add := func(i int, cfg fabric.RouterConfig) error {
		pe := spec.PE(path[i])
		if _, exists := pe.Configs[color]; exists {
			return fmt.Errorf("comm: ring color %d collides at path index %d", color, i)
		}
		pe.AddConfig(color, cfg)
		return nil
	}
	if err := add(a, fabric.RouterConfig{Accept: mesh.Ramp, Forward: mesh.Dirs(toward(a))}); err != nil {
		return err
	}
	for i := a + step; i != b; i += step {
		if err := add(i, fabric.RouterConfig{Accept: backward(i), Forward: mesh.Dirs(toward(i))}); err != nil {
			return err
		}
	}
	return add(b, fabric.RouterConfig{Accept: backward(b), Forward: mesh.Dirs(mesh.Ramp)})
}

// BuildRingAllReduce compiles the ring AllReduce of §6.2 along a path:
// P-1 rounds of reduce-scatter followed by P-1 rounds of allgather, with
// every PE sending one B/P-element chunk and receiving another each round
// over the bidirectional ramp. Requires b >= len(path) so every chunk is
// non-empty.
//
// The paper analyses this algorithm and shows the model predicts it never
// to be the best choice on the WSE (§8.6), so — unlike us — it skips the
// implementation. Building it anyway lets the reproduction verify that
// verdict experimentally; see TestRingNeverWins.
func BuildRingAllReduce(spec *fabric.Spec, path mesh.Path, b int, mapping RingMapping, op fabric.ReduceOp) error {
	return buildRingPhases(spec, path, b, mapping, op, true, true)
}

// buildRingPhases compiles the reduce-scatter (rs) and/or allgather (ag)
// phases of the ring. Chunk ownership follows path indices: afterwards a
// reduce-scatter leaves the combined chunk j on path index j, and a
// standalone allgather expects path index j to start with chunk j in
// place (at its chunk offset).
func buildRingPhases(spec *fabric.Spec, path mesh.Path, b int, mapping RingMapping, op fabric.ReduceOp, rs, ag bool) error {
	p := len(path)
	if p < 2 {
		return fmt.Errorf("comm: ring needs at least 2 PEs")
	}
	if b < p {
		return fmt.Errorf("comm: ring needs B >= P for non-empty chunks (B=%d, P=%d)", b, p)
	}
	if err := path.Validate(); err != nil {
		return err
	}
	order, err := ringOrder(p, mapping)
	if err != nil {
		return err
	}
	off, sz := Chunks(p, b)
	// The round schedule works in ring-position space; chunkOf maps a
	// ring-space chunk index to the absolute chunk it denotes, chosen so
	// that ring position k finishes the reduce-scatter holding the chunk
	// of its own path index order[k].
	chunkOf := func(q int) int { return order[((q-1)%p+p)%p] }

	// Static routing per logical edge.
	for k := 0; k < p; k++ {
		a, bIdx := order[k], order[(k+1)%p]
		if err := addRingEdge(spec, path, a, bIdx, ringEdgeColor(k, p, mapping)); err != nil {
			return err
		}
	}

	// Per-PE programs: P-1 full-duplex rounds per phase.
	for k := 0; k < p; k++ {
		pe := spec.PE(path[order[k]])
		out := ringEdgeColor(k, p, mapping)
		in := ringEdgeColor((k-1+p)%p, p, mapping)
		if rs {
			for r := 0; r < p-1; r++ {
				s := chunkOf(k - r)
				rc := chunkOf(k - r - 1)
				pe.Ops = append(pe.Ops, fabric.Op{
					Kind: fabric.OpSendRecvReduce, OutColor: out, Color: in,
					Off: off[s], N: sz[s], Off2: off[rc], N2: sz[rc],
					Reduce: op,
				})
			}
		}
		if ag {
			for r := 0; r < p-1; r++ {
				s := chunkOf(k + 1 - r)
				rc := chunkOf(k - r)
				pe.Ops = append(pe.Ops, fabric.Op{
					Kind: fabric.OpSendRecvStore, OutColor: out, Color: in,
					Off: off[s], N: sz[s], Off2: off[rc], N2: sz[rc],
				})
			}
		}
	}
	return nil
}
