package workload

import (
	"errors"
	"fmt"

	wse "repro"
)

// ErrBadWorkload is wrapped by every workload-validation failure —
// unknown step functions, duplicate or dangling step names, dependency
// cycles, malformed files. Test with errors.Is(err, ErrBadWorkload); the
// message names the offending step or line.
var ErrBadWorkload = errors.New("workload: bad workload")

func badWorkload(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadWorkload, fmt.Sprintf(format, args...))
}

// Step is one node of a workload DAG: a named collective Shape plus the
// steps whose results it consumes.
type Step struct {
	// Name is the step's unique name within the workload — the target of
	// other steps' After lists.
	Name string
	// Func is the registered step-function name the step was declared
	// through ("" when the Shape was supplied directly via the Builder).
	Func string
	// Shape is the collective the step runs.
	Shape wse.Shape
	// After lists the steps whose completion (and results) this step
	// depends on, in declaration order — the order parent results fold
	// into this step's inputs.
	After []string
	// Opt, when non-nil, overrides the executing session's fabric options
	// for this step (a per-step WithOptions) — how autotuner winners are
	// applied without retuning the whole session.
	Opt *wse.Options
}

// Workload is a validated-on-demand DAG of steps. Build one with the
// Builder or Parse; the zero value is empty and valid.
type Workload struct {
	// Name labels the workload in results and spans.
	Name  string
	steps []*Step
	index map[string]int
}

// Steps returns the workload's steps in declaration order. The slice is
// shared — treat it as read-only.
func (w *Workload) Steps() []*Step { return w.steps }

// Step returns the named step, or nil.
func (w *Workload) Step(name string) *Step {
	if i, ok := w.index[name]; ok {
		return w.steps[i]
	}
	return nil
}

// add appends a step, rejecting duplicate names.
func (w *Workload) add(st *Step) error {
	if st.Name == "" {
		return badWorkload("step with empty name")
	}
	if _, dup := w.index[st.Name]; dup {
		return badWorkload("duplicate step name %q (use name= to disambiguate repeated step functions)", st.Name)
	}
	if w.index == nil {
		w.index = map[string]int{}
	}
	w.index[st.Name] = len(w.steps)
	w.steps = append(w.steps, st)
	return nil
}

// Validate vets the workload: every step declared through a function
// names a registered one, every After reference resolves, every Shape is
// runnable, and the dependency graph is acyclic. All failures wrap
// ErrBadWorkload (Shape failures also wrap wse.ErrBadShape).
func (w *Workload) Validate() error {
	for _, st := range w.steps {
		if st.Func != "" {
			if _, ok := LookupFunc(st.Func); !ok {
				return badWorkload("step %q: unknown step function %q", st.Name, st.Func)
			}
		}
		if err := st.Shape.Validate(); err != nil {
			return fmt.Errorf("%w: step %q: %w", ErrBadWorkload, st.Name, err)
		}
		for _, dep := range st.After {
			if _, ok := w.index[dep]; !ok {
				return badWorkload("step %q: after=%s references no step", st.Name, dep)
			}
		}
	}
	if _, err := w.topo(); err != nil {
		return err
	}
	return nil
}

// topo returns the steps in a dependency-respecting order: Kahn's
// algorithm with declaration order breaking ties, so the order is
// deterministic and sequential execution visits steps the way the file
// declares them whenever dependencies allow. A cycle returns an
// ErrBadWorkload naming its members.
func (w *Workload) topo() ([]*Step, error) {
	n := len(w.steps)
	indeg := make([]int, n)
	out := make([][]int, n) // dependents of each step
	for i, st := range w.steps {
		for _, dep := range st.After {
			j, ok := w.index[dep]
			if !ok {
				return nil, badWorkload("step %q: after=%s references no step", st.Name, dep)
			}
			indeg[i]++
			out[j] = append(out[j], i)
		}
	}
	order := make([]*Step, 0, n)
	done := make([]bool, n)
	for len(order) < n {
		next := -1
		for i := 0; i < n; i++ {
			if !done[i] && indeg[i] == 0 {
				next = i
				break
			}
		}
		if next < 0 {
			var cyc []string
			for i, st := range w.steps {
				if !done[i] {
					cyc = append(cyc, st.Name)
				}
			}
			return nil, badWorkload("dependency cycle among steps %v", cyc)
		}
		done[next] = true
		order = append(order, w.steps[next])
		for _, j := range out[next] {
			indeg[j]--
		}
	}
	return order, nil
}

// Shapes returns the workload's distinct shapes in first-use order,
// deduplicated by canonical plan key under default options — the shape
// list an autotuner sweeps.
func (w *Workload) Shapes() []wse.Shape {
	seen := map[string]bool{}
	var out []wse.Shape
	for _, st := range w.steps {
		k := wse.KeyString(st.Shape, wse.Options{})
		if !seen[k] {
			seen[k] = true
			out = append(out, st.Shape)
		}
	}
	return out
}

// Builder accumulates steps into a Workload. Errors are deferred to
// Build so declarations chain fluently.
type Builder struct {
	w   *Workload
	err error
}

// New starts a workload named name.
func New(name string) *Builder {
	return &Builder{w: &Workload{Name: name}}
}

// Step declares a step through a registered step function: the function
// name resolves the Shape from params, and after lists the steps whose
// results feed this one. The step's own name defaults to fn; pass a
// "name" key in params to disambiguate repeated functions.
func (b *Builder) Step(fn string, params Params, after ...string) *Builder {
	if b.err != nil {
		return b
	}
	name := fn
	if params != nil {
		if n, ok := params["name"]; ok {
			name = n
			params = cloneParams(params)
			delete(params, "name")
		}
	}
	f, ok := LookupFunc(fn)
	if !ok {
		b.err = badWorkload("step %q: unknown step function %q", name, fn)
		return b
	}
	sh, err := f.Fn(params)
	if err != nil {
		b.err = badWorkload("step %q: %v", name, err)
		return b
	}
	b.err = b.w.add(&Step{Name: name, Func: fn, Shape: sh, After: after})
	return b
}

// StepShape declares a step from an explicit Shape, bypassing the
// registry — the Go-native spelling for shapes no registered function
// produces.
func (b *Builder) StepShape(name string, sh wse.Shape, after ...string) *Builder {
	if b.err != nil {
		return b
	}
	b.err = b.w.add(&Step{Name: name, Shape: sh, After: after})
	return b
}

// Build validates and returns the workload.
func (b *Builder) Build() (*Workload, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.w.Validate(); err != nil {
		return nil, err
	}
	return b.w, nil
}

func cloneParams(p Params) Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}
