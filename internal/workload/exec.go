package workload

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	wse "repro"
	"repro/internal/obs"
)

// Runner is the execution surface a workload runs on. wse.Session and
// wse.Tenant both satisfy it, so a workload runs under the default
// tenant or any QoS tenant without the executor knowing; OneShot adapts
// the package-level verbs for sessionless reference runs.
type Runner interface {
	Run(ctx context.Context, sh wse.Shape, inputs [][]float32, opts ...wse.RunOption) (*wse.Report, error)
	Submit(ctx context.Context, sh wse.Shape, inputs [][]float32, opts ...wse.RunOption) *wse.Future
}

// OneShot is a Runner over the package-level verbs: every step compiles
// its own plan and runs outside any session — the reference execution
// the DAG path is property-tested bit-identical against. opt plays the
// role of the session options a Session-backed Runner would supply.
func OneShot(opt wse.Options) Runner { return oneShot{opt: opt} }

type oneShot struct{ opt wse.Options }

func (o oneShot) Run(ctx context.Context, sh wse.Shape, inputs [][]float32, opts ...wse.RunOption) (*wse.Report, error) {
	return wse.Run(ctx, sh, inputs, append([]wse.RunOption{wse.WithOptions(o.opt)}, opts...)...)
}

func (o oneShot) Submit(ctx context.Context, sh wse.Shape, inputs [][]float32, opts ...wse.RunOption) *wse.Future {
	return wse.Submit(ctx, sh, inputs, append([]wse.RunOption{wse.WithOptions(o.opt)}, opts...)...)
}

// StepResult is one executed step: its Report plus the wall-clock the
// step occupied from submission to completion (queue wait included).
type StepResult struct {
	Step   *Step
	Report *wse.Report
	Wall   time.Duration
}

// Result is a completed workload run. Wall is the whole run's
// wall-clock; StepSum the sum of per-step wall-clocks — with
// dependency-aware overlap Wall sits below StepSum whenever independent
// steps actually ran concurrently.
type Result struct {
	Workload string
	Steps    []StepResult // in declaration order
	Wall     time.Duration
	StepSum  time.Duration
}

// Cycles sums the simulated cycle counts of every step — the workload's
// fabric cost, as opposed to Wall, its host cost.
func (r *Result) Cycles() int64 {
	var total int64
	for _, sr := range r.Steps {
		if sr.Report != nil {
			total += sr.Report.Cycles
		}
	}
	return total
}

// Exec runs the workload's DAG on r with dependency-aware overlap:
// every step is submitted as soon as its dependencies complete, so
// independent steps hold Submit futures concurrently; joins Wait before
// dependents fire; each parent's result folds into its dependents'
// inputs (deterministically, in After order). Each step runs inside a
// workload.step span (step + kind attrs) when the context carries a
// live trace, so a traced run renders as one tree.
//
// Results are bit-identical to ExecSequential on the same Runner — the
// DAG changes when steps run, never what they compute.
func Exec(ctx context.Context, r Runner, w *Workload) (*Result, error) {
	return exec(ctx, r, w, false)
}

// ExecSequential runs the workload one step at a time in topological
// (declaration-biased) order through Runner.Run — the reference
// semantics Exec's overlapped schedule is property-tested against.
func ExecSequential(ctx context.Context, r Runner, w *Workload) (*Result, error) {
	return exec(ctx, r, w, true)
}

func exec(ctx context.Context, r Runner, w *Workload, sequential bool) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	order, err := w.topo()
	if err != nil {
		return nil, err
	}
	n := len(w.steps)
	results := make([]StepResult, n) // by declaration index
	errs := make([]error, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	start := time.Now()

	runStep := func(st *Step) {
		idx := w.index[st.Name]
		defer close(done[idx])
		// Join: wait for every dependency, in After order, and collect the
		// parent reports the step's inputs fold in.
		parents := make([]*wse.Report, 0, len(st.After))
		for _, dep := range st.After {
			di := w.index[dep]
			select {
			case <-done[di]:
			case <-ctx.Done():
				errs[idx] = ctx.Err()
				return
			}
			if errs[di] != nil {
				errs[idx] = fmt.Errorf("dependency %q failed: %w", dep, errs[di])
				return
			}
			parents = append(parents, results[di].Report)
		}
		sctx, span := obs.Start(ctx, "workload.step")
		span.SetAttr("step", st.Name)
		span.SetAttr("kind", string(st.Shape.Kind))
		if st.Func != "" {
			span.SetAttr("func", st.Func)
		}
		inputs := stepInputs(st, parents)
		var opts []wse.RunOption
		if st.Opt != nil {
			opts = append(opts, wse.WithOptions(*st.Opt))
		}
		stepStart := time.Now()
		var rep *wse.Report
		var err error
		if sequential {
			rep, err = r.Run(sctx, st.Shape, inputs, opts...)
		} else {
			rep, err = r.Submit(sctx, st.Shape, inputs, opts...).Wait()
		}
		span.SetError(err)
		span.End()
		if err != nil {
			errs[idx] = err
			return
		}
		results[idx] = StepResult{Step: st, Report: rep, Wall: time.Since(stepStart)}
	}

	if sequential {
		for _, st := range order {
			runStep(st)
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(n)
		for _, st := range order {
			st := st
			go func() {
				defer wg.Done()
				runStep(st)
			}()
		}
		wg.Wait()
	}

	res := &Result{Workload: w.Name, Steps: results, Wall: time.Since(start)}
	for i, st := range w.steps {
		if errs[i] != nil {
			// Report the first failure in declaration order; dependency-
			// propagated failures name the root cause through wrapping.
			return nil, fmt.Errorf("workload %s: step %q: %w", w.Name, st.Name, errs[i])
		}
		res.StepSum += results[i].Wall
	}
	return res, nil
}

// stepInputs derives a step's input vectors: a deterministic
// pseudo-random base seeded by the step's name, with each parent
// report's result vector folded in (After order) so data genuinely
// flows along the DAG's edges. Both executors call exactly this, which
// is what makes overlapped and sequential runs bit-identical.
func stepInputs(st *Step, parents []*wse.Report) [][]float32 {
	inputs := BaseInputs(st.Shape, st.Name)
	for _, rep := range parents {
		if rep == nil || len(rep.Root) == 0 {
			continue
		}
		f := rep.Root
		inv := 1 / float32(len(f))
		for off, v := range inputs {
			for j := range v {
				v[j] += f[(off+j)%len(f)] * inv
			}
		}
	}
	return inputs
}

// BaseInputs builds the deterministic input set for sh seeded by seed:
// the right arity per kind (one root vector, per-PE vectors, or the
// canonical balanced chunks), filled from a seeded PRNG. The autotuner
// uses it too, so tuning measures the same data workloads run.
func BaseInputs(sh wse.Shape, seed string) [][]float32 {
	h := fnv.New64a()
	h.Write([]byte(seed))
	x := h.Sum64()
	next := func() float32 {
		x = x*6364136223846793005 + 1442695040888963407
		return float32(int32(uint32(x>>32))) / (1 << 31)
	}
	fill := func(n int) []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = next()
		}
		return v
	}
	switch sh.Kind {
	case wse.KindBroadcast, wse.KindBroadcast2D, wse.KindScatter:
		return [][]float32{fill(sh.B)}
	case wse.KindGather, wse.KindAllGather:
		full := fill(sh.B)
		off, sz := wse.Chunks(sh.P, sh.B)
		out := make([][]float32, sh.P)
		for j := range out {
			out[j] = full[off[j] : off[j]+sz[j]]
		}
		return out
	case wse.KindReduce2D, wse.KindAllReduce2D:
		out := make([][]float32, sh.Width*sh.Height)
		for i := range out {
			out[i] = fill(sh.B)
		}
		return out
	default:
		out := make([][]float32, sh.P)
		for i := range out {
			out[i] = fill(sh.B)
		}
		return out
	}
}
