package workload

import (
	"errors"
	"strings"
	"testing"

	wse "repro"
)

// Every Validate failure mode must wrap the ErrBadWorkload sentinel and
// name the offender, one sub-test per mode.
func TestValidateFailureModes(t *testing.T) {
	sh := wse.Shape{Kind: wse.KindBroadcast, P: 4, B: 8}

	t.Run("unknown step function", func(t *testing.T) {
		w := &Workload{Name: "bad"}
		if err := w.add(&Step{Name: "a", Func: "no-such-func", Shape: sh}); err != nil {
			t.Fatal(err)
		}
		err := w.Validate()
		if !errors.Is(err, ErrBadWorkload) {
			t.Fatalf("want ErrBadWorkload, got %v", err)
		}
		if !strings.Contains(err.Error(), "no-such-func") {
			t.Fatalf("error does not name the function: %v", err)
		}
	})

	t.Run("bad shape", func(t *testing.T) {
		_, err := New("bad").StepShape("a", wse.Shape{Kind: wse.KindReduce, P: 0, B: 8}).Build()
		if !errors.Is(err, ErrBadWorkload) {
			t.Fatalf("want ErrBadWorkload, got %v", err)
		}
		if !errors.Is(err, wse.ErrBadShape) {
			t.Fatalf("shape failure should also wrap ErrBadShape: %v", err)
		}
	})

	t.Run("dangling after", func(t *testing.T) {
		_, err := New("bad").StepShape("a", sh, "ghost").Build()
		if !errors.Is(err, ErrBadWorkload) {
			t.Fatalf("want ErrBadWorkload, got %v", err)
		}
		if !strings.Contains(err.Error(), "ghost") {
			t.Fatalf("error does not name the dangling reference: %v", err)
		}
	})

	t.Run("duplicate step name", func(t *testing.T) {
		_, err := New("bad").StepShape("a", sh).StepShape("a", sh).Build()
		if !errors.Is(err, ErrBadWorkload) {
			t.Fatalf("want ErrBadWorkload, got %v", err)
		}
		if !strings.Contains(err.Error(), "duplicate") {
			t.Fatalf("error does not say duplicate: %v", err)
		}
	})

	t.Run("cycle", func(t *testing.T) {
		_, err := New("bad").
			StepShape("a", sh, "c").
			StepShape("b", sh, "a").
			StepShape("c", sh, "b").
			Build()
		if !errors.Is(err, ErrBadWorkload) {
			t.Fatalf("want ErrBadWorkload, got %v", err)
		}
		for _, name := range []string{"a", "b", "c"} {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("cycle error does not name member %q: %v", name, err)
			}
		}
	})

	t.Run("self cycle", func(t *testing.T) {
		_, err := New("bad").StepShape("a", sh, "a").Build()
		if !errors.Is(err, ErrBadWorkload) {
			t.Fatalf("want ErrBadWorkload, got %v", err)
		}
	})

	t.Run("unknown builder function", func(t *testing.T) {
		_, err := New("bad").Step("definitely-not-registered", nil).Build()
		if !errors.Is(err, ErrBadWorkload) {
			t.Fatalf("want ErrBadWorkload, got %v", err)
		}
	})

	t.Run("unknown param key", func(t *testing.T) {
		_, err := New("bad").Step("reduce", Params{"algo": "tree"}).Build()
		if !errors.Is(err, ErrBadWorkload) {
			t.Fatalf("want ErrBadWorkload, got %v", err)
		}
		if !strings.Contains(err.Error(), "algo") {
			t.Fatalf("error does not name the bad key: %v", err)
		}
	})
}

func TestBuilderNameParamAndTopo(t *testing.T) {
	w, err := New("two-gemv").
		Step("gemv", Params{"p": "4", "b": "8"}).
		Step("gemv", Params{"p": "4", "b": "8", "name": "gemv2"}, "gemv").
		Step("allreduce", Params{"p": "4", "b": "8"}, "gemv2", "gemv").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if w.Step("gemv2") == nil || w.Step("gemv2").Func != "gemv" {
		t.Fatalf("name= rename lost: %+v", w.Steps())
	}
	order, err := w.topo()
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(order))
	for i, st := range order {
		got[i] = st.Name
	}
	want := []string{"gemv", "gemv2", "allreduce"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topo order %v, want %v", got, want)
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("empty name", func() { Register("", func(Params) (wse.Shape, error) { return wse.Shape{}, nil }, "") })
	mustPanic("nil func", func() { Register("x-nil", nil, "") })
	mustPanic("duplicate", func() { Register("reduce", func(Params) (wse.Shape, error) { return wse.Shape{}, nil }, "") })
}

func TestFuncsSortedAndDocumented(t *testing.T) {
	fns := Funcs()
	if len(fns) < 11 {
		t.Fatalf("want at least one step function per collective kind, got %d", len(fns))
	}
	for i, f := range fns {
		if f.Doc == "" {
			t.Errorf("func %s has no doc", f.Name)
		}
		if i > 0 && fns[i-1].Name >= f.Name {
			t.Fatalf("Funcs not sorted: %s >= %s", fns[i-1].Name, f.Name)
		}
	}
}

func TestParseGrammar(t *testing.T) {
	src := `
# a training step
workload train-step
step gemv p=6 B=12 alg=tree          # keys are case-insensitive
step allreduce p=6 b=12 op=max after=gemv
step gemv p=6 b=12 name=gemv2 after=gemv,allreduce
`
	w, err := Parse(strings.NewReader(src), "fallback")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "train-step" {
		t.Fatalf("workload name %q", w.Name)
	}
	if len(w.Steps()) != 3 {
		t.Fatalf("want 3 steps, got %d", len(w.Steps()))
	}
	g := w.Step("gemv")
	if g.Shape.Kind != wse.KindReduce || g.Shape.P != 6 || g.Shape.B != 12 || g.Shape.Alg != wse.Tree {
		t.Fatalf("gemv shape %+v", g.Shape)
	}
	ar := w.Step("allreduce")
	if ar.Shape.Op != wse.Max || len(ar.After) != 1 || ar.After[0] != "gemv" {
		t.Fatalf("allreduce step %+v", ar)
	}
	g2 := w.Step("gemv2")
	if len(g2.After) != 2 || g2.After[0] != "gemv" || g2.After[1] != "allreduce" {
		t.Fatalf("after list %v", g2.After)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive":  "run gemv p=4\n",
		"unknown function":   "step warp p=4\n",
		"not key=value":      "step gemv p4\n",
		"duplicate param":    "step gemv p=4 p=8\n",
		"workload twice":     "workload a\nworkload b\n",
		"missing step name":  "step\n",
		"dangling after":     "step gemv p=4 after=ghost\n",
		"bad integer":        "step gemv p=four\n",
		"duplicate step":     "step gemv p=4\nstep gemv p=4\n",
		"workload two names": "workload a b\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src), "t"); !errors.Is(err, ErrBadWorkload) {
			t.Errorf("%s: want ErrBadWorkload, got %v", name, err)
		}
	}
}

func TestShapesDedup(t *testing.T) {
	w, err := New("dup").
		Step("gemv", Params{"p": "4", "b": "8"}).
		Step("gemv", Params{"p": "4", "b": "8", "name": "again"}).
		Step("broadcast", Params{"p": "4", "b": "8"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Shapes()); got != 2 {
		t.Fatalf("want 2 distinct shapes, got %d", got)
	}
}
