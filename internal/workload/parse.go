package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Parse reads the line-oriented workload file format:
//
//	# comment
//	workload train-step
//	step gemv p=256 b=64
//	step allreduce p=256 b=64 after=gemv
//	step allreduce p=256 b=64 name=second after=allreduce
//
// Each step line names a registered step function followed by key=value
// parameters. Keys are case-insensitive (B=16 and b=16 agree). Two keys
// are reserved for the workload layer: name= renames the step (required
// when one function appears twice) and after= lists comma-separated
// dependencies. The parsed workload is validated before being returned;
// every failure wraps ErrBadWorkload and names the offending line.
func Parse(r io.Reader, defaultName string) (*Workload, error) {
	w := &Workload{Name: defaultName}
	sc := bufio.NewScanner(r)
	named := false
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "workload":
			if len(fields) != 2 {
				return nil, badWorkload("line %d: workload wants exactly one name", lineNo)
			}
			if named {
				return nil, badWorkload("line %d: workload named twice", lineNo)
			}
			w.Name, named = fields[1], true
		case "step":
			if len(fields) < 2 {
				return nil, badWorkload("line %d: step wants a step-function name", lineNo)
			}
			st, err := parseStep(fields[1], fields[2:])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %w", ErrBadWorkload, lineNo, err)
			}
			if err := w.add(st); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		default:
			return nil, badWorkload("line %d: unknown directive %q (want workload or step)", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// parseStep resolves one step line's function name and key=value fields.
func parseStep(fn string, kvs []string) (*Step, error) {
	params := Params{}
	name := fn
	var after []string
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("step %s: %q is not key=value", fn, kv)
		}
		switch k = strings.ToLower(k); k {
		case "name":
			name = v
		case "after":
			for _, dep := range strings.Split(v, ",") {
				if dep = strings.TrimSpace(dep); dep != "" {
					after = append(after, dep)
				}
			}
		default:
			if _, dup := params[k]; dup {
				return nil, fmt.Errorf("step %s: param %q given twice", fn, k)
			}
			params[k] = v
		}
	}
	f, ok := LookupFunc(fn)
	if !ok {
		return nil, fmt.Errorf("step %q: unknown step function %q", name, fn)
	}
	sh, err := f.Fn(params)
	if err != nil {
		return nil, fmt.Errorf("step %q: %w", name, err)
	}
	return &Step{Name: name, Func: fn, Shape: sh, After: after}, nil
}

// ParseFile parses the workload file at path; the workload's default
// name is the file's base name.
func ParseFile(path string) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	base = strings.TrimSuffix(base, ".wl")
	return Parse(f, base)
}
