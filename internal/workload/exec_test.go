package workload

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	wse "repro"
	"repro/internal/obs"
)

// propWorkload is a fan-out/fan-in DAG touching every one of the 11
// collective kinds: a broadcast feeds a scatter, a gemv (reduce) and a
// 2D reduce; the gemv fans out into two allreduce flavours that fan
// back into a reducescatter; the 2D chain runs reduce2d → allreduce2d →
// broadcast2d; scatter/gather and the reducescatter meet in a final
// allgather.
func propWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := New("prop").
		Step("broadcast", Params{"p": "6", "b": "12"}).
		Step("scatter", Params{"p": "4", "b": "12"}, "broadcast").
		Step("gemv", Params{"p": "6", "b": "12", "alg": "tree"}, "broadcast").
		Step("reduce2d", Params{"grid": "3x2", "b": "12", "alg": "xy-tree"}, "broadcast").
		Step("allreduce", Params{"p": "6", "b": "12", "alg": "twophase", "op": "max"}, "gemv").
		Step("allreduce-midroot", Params{"p": "6", "b": "12"}, "gemv").
		Step("allreduce2d", Params{"grid": "3x2", "b": "12", "alg": "snake", "op": "min"}, "reduce2d").
		Step("broadcast2d", Params{"grid": "3x2", "b": "12"}, "allreduce2d").
		Step("gather", Params{"p": "4", "b": "12"}, "scatter").
		Step("reducescatter", Params{"p": "4", "b": "12"}, "allreduce", "allreduce-midroot").
		Step("allgather", Params{"p": "4", "b": "12"}, "reducescatter", "gather").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func sameReport(t *testing.T, step string, a, b *wse.Report) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("step %s: nil report (%v, %v)", step, a, b)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("step %s: cycles %d != %d", step, a.Cycles, b.Cycles)
	}
	if a.Predicted != b.Predicted {
		t.Errorf("step %s: predicted %v != %v", step, a.Predicted, b.Predicted)
	}
	if a.Stats != b.Stats { // includes Noops: the RNG chain must match
		t.Errorf("step %s: stats %+v != %+v", step, a.Stats, b.Stats)
	}
	if !reflect.DeepEqual(a.Root, b.Root) {
		t.Errorf("step %s: root vectors differ", step)
	}
	if !reflect.DeepEqual(a.All, b.All) {
		t.Errorf("step %s: per-PE results differ", step)
	}
}

// The DAG executor must be bit-identical to sequential execution through
// the verbs — same results AND the same skew/thermal RNG chain — for
// every collective kind, with clock skew and thermal no-ops switched on
// so any divergence in the random streams shows up in Cycles and
// Stats.Noops.
func TestExecBitIdenticalToSequential(t *testing.T) {
	w := propWorkload(t)
	opt := wse.Options{ClockSkewMax: 16, ThermalNoopRate: 0.02, Seed: 9}
	ctx := context.Background()

	seq, err := ExecSequential(ctx, OneShot(opt), w)
	if err != nil {
		t.Fatal(err)
	}

	s := wse.NewSession(wse.SessionConfig{Options: opt, PlanCacheCapacity: 64})
	defer s.Close()
	dag, err := Exec(ctx, s, w)
	if err != nil {
		t.Fatal(err)
	}

	if len(seq.Steps) != len(dag.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(seq.Steps), len(dag.Steps))
	}
	for i := range seq.Steps {
		sameReport(t, seq.Steps[i].Step.Name, seq.Steps[i].Report, dag.Steps[i].Report)
	}
	if seq.Cycles() != dag.Cycles() {
		t.Fatalf("total cycles %d != %d", seq.Cycles(), dag.Cycles())
	}

	// A second overlapped run (warm plans) must reproduce itself too.
	again, err := Exec(ctx, s, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dag.Steps {
		sameReport(t, dag.Steps[i].Step.Name, dag.Steps[i].Report, again.Steps[i].Report)
	}
}

// Independent steps must genuinely overlap: with more than one core the
// whole-run wall-clock sits below the sum of per-step wall-clocks; on
// one core the DAG path must still be within shouting distance of
// sequential (no pathological serialisation overhead).
func TestExecOverlap(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	w, err := New("overlap").
		Step("broadcast", Params{"p": "64", "b": "32"}).
		Step("reduce", Params{"p": "512", "b": "48", "name": "left"}, "broadcast").
		Step("reduce", Params{"p": "512", "b": "64", "name": "right"}, "broadcast").
		Step("allreduce", Params{"p": "64", "b": "32"}, "left", "right").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	multicore := runtime.GOMAXPROCS(0) > 1

	var last *Result
	for attempt := 0; attempt < 4; attempt++ {
		s := wse.NewSession(wse.SessionConfig{PlanCacheCapacity: 16, Workers: 4})
		res, err := Exec(ctx, s, w)
		s.Close()
		if err != nil {
			t.Fatal(err)
		}
		last = res
		if !multicore || res.Wall < res.StepSum {
			break
		}
	}
	if multicore {
		if last.Wall >= last.StepSum {
			t.Fatalf("no overlap: wall %v >= step sum %v on %d procs",
				last.Wall, last.StepSum, runtime.GOMAXPROCS(0))
		}
	} else if last.Wall > last.StepSum*2+100*time.Millisecond {
		t.Fatalf("DAG path far off sequential parity on one core: wall %v, step sum %v",
			last.Wall, last.StepSum)
	}
}

// A traced workload run must land as ONE trace: every step's
// workload.step span carries the root's trace id and its step name.
func TestExecOneTraceAcrossSteps(t *testing.T) {
	w := propWorkload(t)
	tracer := obs.NewTracer(obs.Config{Sample: 1})
	ctx, root := tracer.Root(context.Background(), "workload", "")

	s := wse.NewSession(wse.SessionConfig{PlanCacheCapacity: 64})
	defer s.Close()
	if _, err := Exec(ctx, s, w); err != nil {
		t.Fatal(err)
	}
	rootID := root.TraceID()
	root.End()

	traces := tracer.Traces(0, 0)
	if len(traces) != 1 {
		t.Fatalf("want exactly 1 committed trace, got %d", len(traces))
	}
	tr := traces[0]
	if tr.TraceID != rootID {
		t.Fatalf("trace id %s != root's %s", tr.TraceID, rootID)
	}
	steps := map[string]bool{}
	for _, sp := range tr.Spans {
		if sp.Name != "workload.step" {
			continue
		}
		name, _ := sp.Attrs["step"].(string)
		if name == "" {
			t.Fatalf("workload.step span without step attr: %+v", sp)
		}
		if kind, _ := sp.Attrs["kind"].(string); kind == "" {
			t.Fatalf("workload.step span without kind attr: %+v", sp)
		}
		steps[name] = true
	}
	if len(steps) != len(w.Steps()) {
		t.Fatalf("trace has %d workload.step spans, want %d", len(steps), len(w.Steps()))
	}
}

// Inputs are a pure function of step name and parent results: the base
// PRNG is name-seeded and parent roots fold in declared order.
func TestStepInputsDeterministic(t *testing.T) {
	sh := wse.Shape{Kind: wse.KindReduce, P: 4, B: 8}
	a := BaseInputs(sh, "x")
	b := BaseInputs(sh, "x")
	if !reflect.DeepEqual(a, b) {
		t.Fatal("BaseInputs not deterministic")
	}
	if c := BaseInputs(sh, "y"); reflect.DeepEqual(a, c) {
		t.Fatal("BaseInputs ignores the seed")
	}

	parent := &wse.Report{Root: []float32{1, 2, 3}}
	st := &Step{Name: "x", Shape: sh}
	with := stepInputs(st, []*wse.Report{parent})
	without := stepInputs(st, nil)
	if reflect.DeepEqual(with, without) {
		t.Fatal("parent result does not flow into child inputs")
	}
	again := stepInputs(st, []*wse.Report{parent})
	if !reflect.DeepEqual(with, again) {
		t.Fatal("stepInputs not deterministic")
	}
}

// An erroring step fails the run and names the step; dependents report
// the root cause through wrapping rather than hanging.
func TestExecPropagatesStepError(t *testing.T) {
	// Ring wants B >= P: P=8 B=4 compiles nowhere, so the step errors.
	w, err := New("boom").
		StepShape("bad", wse.Shape{Kind: wse.KindAllReduce, Alg: wse.Ring, P: 8, B: 4}).
		StepShape("child", wse.Shape{Kind: wse.KindBroadcast, P: 4, B: 8}, "bad").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	s := wse.NewSession(wse.SessionConfig{PlanCacheCapacity: 8})
	defer s.Close()
	if _, err := Exec(context.Background(), s, w); err == nil {
		t.Fatal("want step failure, got nil")
	}
}
