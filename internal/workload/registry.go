// Package workload is the declarative scenario layer over the Shape-first
// verbs: real uses of the fabric are compositions — a training step is an
// allreduce after a gemv, a stencil sweep interleaves halo broadcasts —
// and this package turns such compositions into a DAG of Shapes executed
// through a Session with dependency-aware overlap.
//
// The front door is a registry of named step functions in the DeclFunc
// idiom (mumax3's engine registers its script surface the same way): each
// registered name maps step parameters (p=512 B=16 alg=tree ...) to a
// wse.Shape, and carries a doc string the CLI can print. A workload is
// declared either through the Builder API or a small line-oriented text
// file:
//
//	workload train-step
//	step gemv p=256 B=64
//	step allreduce p=256 B=64 after=gemv
//
// Validate rejects malformed workloads (unknown step functions, dangling
// after= references, dependency cycles) with errors wrapping the
// ErrBadWorkload sentinel; Exec runs a valid workload through Submit
// futures so independent steps overlap, joins Wait before dependents
// fire, and parent results flow into child inputs deterministically.
package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	wse "repro"
)

// Params carries one step's key=value parameters, keys lowercased. The
// reserved keys (name, after) are consumed by the workload layer and
// never reach a StepFunc.
type Params map[string]string

// Int returns the integer parameter key, or def when absent.
func (p Params) Int(key string, def int) (int, error) {
	s, ok := p[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("param %s=%q: want an integer", key, s)
	}
	return v, nil
}

// Str returns the string parameter key, or def when absent.
func (p Params) Str(key, def string) string {
	if s, ok := p[key]; ok {
		return s
	}
	return def
}

// Grid parses the WxH grid parameter key, or returns the defaults.
func (p Params) Grid(key string, defW, defH int) (w, h int, err error) {
	s, ok := p[key]
	if !ok {
		return defW, defH, nil
	}
	if n, err := fmt.Sscanf(s, "%dx%d", &w, &h); n != 2 || err != nil {
		return 0, 0, fmt.Errorf("param %s=%q: want WxH", key, s)
	}
	return w, h, nil
}

// StepFunc compiles one step's parameters into the Shape the step runs.
type StepFunc func(Params) (wse.Shape, error)

// Func is one registry entry: a named step function and its doc line.
type Func struct {
	Name string
	Fn   StepFunc
	Doc  string
}

var (
	regMu    sync.RWMutex
	registry = map[string]Func{}
)

// Register declares a named step function, in the DeclFunc idiom: the
// name becomes a verb of the workload file format and the Builder, doc
// its one-line help. Empty names, nil functions and duplicate
// registrations panic — registration is init-time wiring, not input.
func Register(name string, fn StepFunc, doc string) {
	if name == "" || fn == nil {
		panic("workload: Register with empty name or nil func")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("workload: Register called twice for " + name)
	}
	registry[name] = Func{Name: name, Fn: fn, Doc: doc}
}

// LookupFunc returns the registered step function for name.
func LookupFunc(name string) (Func, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// Funcs lists every registered step function, sorted by name — the
// CLI's `workload funcs` help surface.
func Funcs() []Func {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Func, 0, len(registry))
	for _, f := range registry {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// paramOp resolves the op= parameter.
func paramOp(p Params) (wse.ReduceOp, error) {
	switch strings.ToLower(p.Str("op", "sum")) {
	case "sum":
		return wse.Sum, nil
	case "max":
		return wse.Max, nil
	case "min":
		return wse.Min, nil
	}
	return wse.Sum, fmt.Errorf("param op=%q: want sum, max or min", p["op"])
}

// checkKeys rejects parameter keys a step function does not consume, so
// a typo (algo= for alg=) fails the build instead of silently running
// the default.
func checkKeys(p Params, allowed ...string) error {
	for k := range p {
		found := false
		for _, a := range allowed {
			if k == a {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown param %q (allowed: %s)", k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// rowFunc builds the StepFunc of a 1D kind: p= PEs, b= vector length,
// alg= where the kind takes one, op= where one applies.
func rowFunc(kind wse.Collective, hasAlg, hasOp bool) StepFunc {
	return func(pr Params) (wse.Shape, error) {
		allowed := []string{"p", "b"}
		if hasAlg {
			allowed = append(allowed, "alg")
		}
		if hasOp {
			allowed = append(allowed, "op")
		}
		if err := checkKeys(pr, allowed...); err != nil {
			return wse.Shape{}, err
		}
		p, err := pr.Int("p", 64)
		if err != nil {
			return wse.Shape{}, err
		}
		b, err := pr.Int("b", 64)
		if err != nil {
			return wse.Shape{}, err
		}
		sh := wse.Shape{Kind: kind, P: p, B: b}
		if hasAlg {
			sh.Alg = wse.Algorithm(pr.Str("alg", string(wse.Auto)))
		}
		if hasOp {
			if sh.Op, err = paramOp(pr); err != nil {
				return wse.Shape{}, err
			}
		}
		return sh, nil
	}
}

// gridFunc builds the StepFunc of a 2D kind: grid=WxH, b=, alg= and op=
// where they apply.
func gridFunc(kind wse.Collective, hasAlg, hasOp bool) StepFunc {
	return func(pr Params) (wse.Shape, error) {
		allowed := []string{"grid", "b"}
		if hasAlg {
			allowed = append(allowed, "alg")
		}
		if hasOp {
			allowed = append(allowed, "op")
		}
		if err := checkKeys(pr, allowed...); err != nil {
			return wse.Shape{}, err
		}
		w, h, err := pr.Grid("grid", 16, 16)
		if err != nil {
			return wse.Shape{}, err
		}
		b, err := pr.Int("b", 64)
		if err != nil {
			return wse.Shape{}, err
		}
		sh := wse.Shape{Kind: kind, Width: w, Height: h, B: b}
		if hasAlg {
			sh.Alg2D = wse.Algorithm2D(pr.Str("alg", string(wse.Auto2D)))
		}
		if hasOp {
			if sh.Op, err = paramOp(pr); err != nil {
				return wse.Shape{}, err
			}
		}
		return sh, nil
	}
}

// The built-in step vocabulary: one function per collective kind, plus
// domain-named aliases (gemv's inner reduction, the halo broadcast of a
// stencil sweep) so workload files read as the scenario they model.
func init() {
	Register("reduce", rowFunc(wse.KindReduce, true, true),
		"1D Reduce of p vectors of b wavelets into the leftmost PE (alg=, op=)")
	Register("allreduce", rowFunc(wse.KindAllReduce, true, true),
		"1D AllReduce: every PE ends with the combined vector (alg=, op=)")
	Register("allreduce-midroot", rowFunc(wse.KindAllReduceMidRoot, true, true),
		"AllReduce rooted at the middle PE with a bidirectional flood (alg=, op=)")
	Register("broadcast", rowFunc(wse.KindBroadcast, false, false),
		"1D flooding broadcast of b wavelets across p PEs")
	Register("scatter", rowFunc(wse.KindScatter, false, false),
		"deliver balanced chunks of a b-element vector to p PEs")
	Register("gather", rowFunc(wse.KindGather, false, false),
		"assemble per-PE chunks into the full vector at the leftmost PE")
	Register("reducescatter", rowFunc(wse.KindReduceScatter, false, true),
		"combine p vectors and leave chunk j on PE j (op=)")
	Register("allgather", rowFunc(wse.KindAllGather, false, false),
		"distribute per-PE chunks so every PE ends with the full vector")
	Register("reduce2d", gridFunc(wse.KindReduce2D, true, true),
		"2D Reduce on a grid=WxH mesh into PE (0,0) (alg=, op=)")
	Register("allreduce2d", gridFunc(wse.KindAllReduce2D, true, true),
		"2D AllReduce on a grid=WxH mesh (alg=, op=)")
	Register("broadcast2d", gridFunc(wse.KindBroadcast2D, false, false),
		"2D flooding broadcast across a grid=WxH mesh")
	Register("gemv", rowFunc(wse.KindReduce, true, true),
		"matrix-vector product: the row-wise inner reduction of a GEMV (alias of reduce)")
	Register("halo", rowFunc(wse.KindBroadcast, false, false),
		"stencil halo exchange: flood the boundary vector across the row (alias of broadcast)")
}
