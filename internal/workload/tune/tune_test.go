package tune

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	wse "repro"
	"repro/internal/workload"
)

// fastCfg keeps the search grid small so the tests stay quick; the axes
// themselves are still exercised.
func fastCfg() Config {
	return Config{Repeat: 1, QueueCaps: []int{2, 4}, MaxShards: 1}
}

func TestTuneScoresAndWinner(t *testing.T) {
	shapes := []wse.Shape{
		{Kind: wse.KindAllReduce, P: 16, B: 32},
		{Kind: wse.KindGather, P: 8, B: 64},
		{Kind: wse.KindAllReduce2D, Width: 4, Height: 3, B: 8},
		{Kind: wse.KindAllReduce, P: 16, B: 32}, // duplicate: must dedup
	}
	tunings, err := Tune(context.Background(), shapes, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tunings) != 3 {
		t.Fatalf("want 3 tunings (duplicate deduped), got %d", len(tunings))
	}
	for _, tn := range tunings {
		if tn.Cycles <= 0 || tn.DefaultCycles <= 0 {
			t.Fatalf("%s: non-positive cycles %+v", tn.Shape.Kind, tn)
		}
		if tn.Cycles > tn.DefaultCycles {
			t.Fatalf("%s: winner slower than the default it had as a candidate: %d > %d",
				tn.Shape.Kind, tn.Cycles, tn.DefaultCycles)
		}
		if tn.TunedVsDefault < 1 {
			t.Fatalf("%s: tuned_vs_default %v < 1", tn.Shape.Kind, tn.TunedVsDefault)
		}
		if tn.Bound <= 0 || tn.AchievedVsBound <= 0 {
			t.Fatalf("%s: missing bound scores: %+v", tn.Shape.Kind, tn)
		}
		// Bound is a lower bound: the measured run cannot beat it.
		if tn.AchievedVsBound < 0.999 {
			t.Fatalf("%s: measured cycles %d beat the lower bound %v",
				tn.Shape.Kind, tn.Cycles, tn.Bound)
		}
	}
	// The reduce-family tunings keep the open (Auto) request spelling and
	// a concrete winner in Tuned().
	ar := tunings[0]
	if ar.Shape.Alg != wse.Auto {
		t.Fatalf("allreduce tuning shape not normalized to Auto: %+v", ar.Shape)
	}
	if got := ar.Tuned(); got.Alg == wse.Auto && ar.Alg != "" {
		t.Fatalf("Tuned() did not apply the winning algorithm: %+v", got)
	}
}

func TestSidecarRoundTrip(t *testing.T) {
	tunings, err := Tune(context.Background(), []wse.Shape{
		{Kind: wse.KindReduce, P: 12, B: 24},
		{Kind: wse.KindBroadcast, P: 8, B: 16},
	}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tunings.json")
	if err := WriteSidecar(path, "round-trip", tunings); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadSidecar(path)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Version != SidecarVersion || sc.Workload != "round-trip" {
		t.Fatalf("sidecar header %+v", sc)
	}
	if !reflect.DeepEqual(sc.Tunings, tunings) {
		t.Fatalf("tunings did not round-trip:\n got %+v\nwant %+v", sc.Tunings, tunings)
	}

	// A sidecar from the future is rejected, not misread.
	future := filepath.Join(t.TempDir(), "future.json")
	buf, err := json.Marshal(Sidecar{Version: SidecarVersion + 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(future, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSidecar(future); err == nil {
		t.Fatal("want version rejection")
	}
}

func TestApplyRewritesOnlyOpenSteps(t *testing.T) {
	w, err := workload.New("train").
		Step("allreduce", workload.Params{"p": "12", "b": "24"}).                                // open: alg defaults to auto
		Step("allreduce", workload.Params{"p": "12", "b": "24", "alg": "chain", "name": "pin"}). // pinned by the user
		Step("broadcast", workload.Params{"p": "8", "b": "16"}).                                 // algorithm-free: always open
		Build()
	if err != nil {
		t.Fatal(err)
	}
	tunings, err := Tune(context.Background(), w.Shapes(), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	applied := Apply(w, tunings)
	if applied != 2 {
		t.Fatalf("want 2 steps rewritten (open allreduce + broadcast), got %d", applied)
	}
	if pin := w.Step("pin"); pin.Opt != nil || pin.Shape.Alg != wse.Chain {
		t.Fatalf("pinned step was rewritten: %+v", pin)
	}
	open := w.Step("allreduce")
	if open.Opt == nil {
		t.Fatal("open step did not adopt tuned options")
	}
	if open.Shape.Alg == "" || open.Shape.Alg == wse.Auto {
		// Tuned() falls back to Auto only when no concrete candidate won;
		// either way the step must now run under the tuned options.
		t.Logf("open step kept Auto (model choice already optimal): %+v", open.Shape)
	}
	// Applied steps still validate and run.
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}

// The satellite-6 contract: ExportWinners lands the tuned plans in a
// plan store, and a cold session opening that store replays them with
// ZERO compiles — every cache miss is satisfied by the store.
func TestExportWinnersColdSessionZeroCompiles(t *testing.T) {
	ctx := context.Background()
	tunings, err := Tune(ctx, []wse.Shape{
		{Kind: wse.KindAllReduce, P: 12, B: 24},
		{Kind: wse.KindBroadcast, P: 8, B: 16},
		{Kind: wse.KindReduce2D, Width: 3, Height: 2, B: 12},
	}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}

	store, err := wse.OpenPlanStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	n, err := ExportWinners(ctx, tunings, store)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(tunings) {
		t.Fatalf("exported %d plans, want %d", n, len(tunings))
	}

	cold := wse.NewSession(wse.SessionConfig{Store: store, PlanCacheCapacity: 16})
	defer cold.Close()
	for _, tn := range tunings {
		sh := tn.Tuned()
		rep, err := cold.Run(ctx, sh, workload.BaseInputs(sh, "tune:"+string(sh.Kind)), wse.WithOptions(tn.Options))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cycles != tn.Cycles {
			t.Fatalf("%s: cold replay %d cycles, tuned %d — store served a different plan",
				sh.Kind, rep.Cycles, tn.Cycles)
		}
	}
	stats := cold.PlanStats()
	if stats.Misses != int64(len(tunings)) {
		t.Fatalf("cold session misses %d, want %d", stats.Misses, len(tunings))
	}
	if stats.StoreHits != stats.Misses {
		t.Fatalf("cold session compiled: store hits %d of %d misses (errors: %d %q)",
			stats.StoreHits, stats.Misses, stats.StoreErrors, stats.LastStoreError)
	}
}
