// Package tune is the plan autotuner: for each Shape of a workload it
// searches the plan parameters a deployment can actually choose — the
// algorithm (grid over every pattern the kind accepts), the router
// queue depth (neighborhood around the hardware default) and the engine
// shard count (wall-clock, cycles are shard-invariant) — and scores
// every candidate's measured cost against the performance model's
// Predict and the paper's Bound lower bound. The winners close the loop
// the paper opens: how close does the fabric actually get to its own
// lower bounds, per kind, and which parameter choices get it there.
//
// Winners persist two ways: ExportWinners replays them through a fresh
// session and Session.Exports the compiled plans into a plan store, so
// every fleet member inherits the tuned plans through the existing
// resolve chain (store → peer → compile) with zero recompilation; and a
// tunings sidecar (JSON) records the winning shape + options so
// workloads and clients can ask for exactly the tuned spelling.
package tune

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	wse "repro"
	"repro/internal/workload"
)

// Config tunes the tuner; the zero value searches the default grid
// under WSE-2 fabric options.
type Config struct {
	// Options is the baseline fabric configuration every candidate
	// starts from (the zero value models the WSE-2). QueueCap and Shards
	// are overwritten by the search; the other fields (TR, skew, seed,
	// ...) are held fixed.
	Options wse.Options
	// QueueCaps is the router queue depth neighborhood to explore around
	// the winning algorithm (default 2, 4, 8).
	QueueCaps []int
	// MaxShards bounds the shard-count candidates (default GOMAXPROCS,
	// capped at 8). Shards never change cycles — they are picked by
	// measured wall-clock alone.
	MaxShards int
	// Repeat is how many replays each shard candidate is timed over; the
	// minimum is kept (default 3).
	Repeat int
	// Session, when non-nil, is the session candidates run through;
	// otherwise Tune builds (and closes) its own. A supplied session
	// needs a plan cache large enough for the whole candidate grid.
	Session *wse.Session
}

func (c Config) queueCaps() []int {
	if len(c.QueueCaps) > 0 {
		return c.QueueCaps
	}
	return []int{2, 4, 8}
}

func (c Config) maxShards() int {
	if c.MaxShards > 0 {
		return c.MaxShards
	}
	return min(runtime.GOMAXPROCS(0), 8)
}

func (c Config) repeat() int {
	if c.Repeat > 0 {
		return c.Repeat
	}
	return 3
}

// Tuning is one shape's search outcome: the winning parameters and the
// achieved-vs-model scores. Shape keeps the open (Auto) spelling the
// workload asked with; Tuned() is the concrete winner.
type Tuning struct {
	// Shape is the request as tuned: the algorithm left open (Auto).
	Shape wse.Shape `json:"shape"`
	// Alg / Alg2D is the winning concrete algorithm, where the kind has
	// a choice.
	Alg   wse.Algorithm   `json:"alg,omitempty"`
	Alg2D wse.Algorithm2D `json:"alg2d,omitempty"`
	// Options are the fabric options the winner replays under — the
	// baseline with the tuned QueueCap and Shards applied.
	Options wse.Options `json:"options"`
	// Cycles is the winner's measured simulated runtime; DefaultCycles
	// what the untuned request (model-picked algorithm, default queue
	// depth) measures.
	Cycles        int64 `json:"cycles"`
	DefaultCycles int64 `json:"default_cycles"`
	// Bound is the paper's runtime lower bound for the shape, Predicted
	// the model estimate for the winning algorithm.
	Bound     float64 `json:"bound"`
	Predicted float64 `json:"predicted"`
	// AchievedVsBound is Cycles/Bound — the optimality ratio of the
	// paper's Figure 1, measured instead of modelled. TunedVsDefault is
	// DefaultCycles/Cycles, the speedup tuning bought (>= 1: the default
	// is itself a candidate).
	AchievedVsBound float64 `json:"achieved_vs_bound"`
	TunedVsDefault  float64 `json:"tuned_vs_default"`
	// ReplayNs is the winner's fastest measured wall-clock per replay,
	// the score that picked Shards.
	ReplayNs float64 `json:"replay_ns"`
}

// Tuned returns the winner as a runnable Shape: the open algorithm
// replaced by the winning concrete one.
func (t Tuning) Tuned() wse.Shape {
	sh := t.Shape
	if t.Alg != "" {
		sh.Alg = t.Alg
	}
	if t.Alg2D != "" {
		sh.Alg2D = t.Alg2D
	}
	return sh
}

// Normalize returns sh with its algorithm choice left open: the Auto
// spelling workloads default to, and the identity tunings are matched
// under.
func Normalize(sh wse.Shape) wse.Shape {
	switch sh.Kind {
	case wse.KindReduce, wse.KindAllReduce, wse.KindAllReduceMidRoot:
		if sh.Alg == "" {
			sh.Alg = wse.Auto
		}
	case wse.KindReduce2D, wse.KindAllReduce2D:
		if sh.Alg2D == "" {
			sh.Alg2D = wse.Auto2D
		}
	}
	return sh
}

// algCandidates enumerates the concrete algorithm grid a kind accepts.
// Kinds without an algorithm choice search only the queue/shard axes.
func algCandidates(sh wse.Shape) []wse.Shape {
	var out []wse.Shape
	switch sh.Kind {
	case wse.KindReduce, wse.KindAllReduce, wse.KindAllReduceMidRoot:
		algs := []wse.Algorithm{wse.Star, wse.Chain, wse.Tree, wse.TwoPhase, wse.AutoGen}
		if sh.Kind == wse.KindAllReduce {
			algs = append(algs, wse.Ring, wse.RingDP)
		}
		for _, a := range algs {
			c := sh
			c.Alg = a
			out = append(out, c)
		}
	case wse.KindReduce2D, wse.KindAllReduce2D:
		for _, a := range []wse.Algorithm2D{wse.XYStar, wse.XYChain, wse.XYTree, wse.XYTwoPhase, wse.XYAutoGen, wse.Snake} {
			c := sh
			c.Alg2D = a
			out = append(out, c)
		}
	}
	return out
}

// Tune searches the parameter space of every shape and returns one
// Tuning per shape, in input order. Shapes are deduplicated by
// canonical plan key. The measured cycles are deterministic (the
// simulator is); only the Shards axis, scored by wall-clock, can differ
// between hosts — which is the point of tuning on the deployment box.
func Tune(ctx context.Context, shapes []wse.Shape, cfg Config) ([]Tuning, error) {
	s := cfg.Session
	if s == nil {
		s = wse.NewSession(wse.SessionConfig{Options: cfg.Options, PlanCacheCapacity: 1024})
		defer s.Close()
	}
	seen := map[string]bool{}
	var out []Tuning
	for _, raw := range shapes {
		sh := Normalize(raw)
		key := wse.KeyString(sh, wse.Options{})
		if seen[key] {
			continue
		}
		seen[key] = true
		t, err := tuneShape(ctx, s, sh, cfg)
		if err != nil {
			return out, fmt.Errorf("tune %s: %w", sh.Kind, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// tuneShape runs the search for one shape: algorithm grid, then queue
// depth neighborhood around the winner, then shard count by wall-clock.
func tuneShape(ctx context.Context, s *wse.Session, sh wse.Shape, cfg Config) (Tuning, error) {
	inputs := workload.BaseInputs(sh, "tune:"+string(sh.Kind))
	baseOpt := cfg.Options

	// The default the tuner must beat: the request as a workload would
	// issue it — algorithm left to the model, hardware queue depth.
	defRep, err := s.Run(ctx, sh, inputs, wse.WithOptions(baseOpt))
	if err != nil {
		return Tuning{}, err
	}
	bestShape, bestOpt, bestCycles := sh, baseOpt, defRep.Cycles

	// Grid over the algorithms the kind accepts. Candidates that do not
	// compile for this geometry (ring with B < P) are skipped, not fatal.
	for _, cand := range algCandidates(sh) {
		rep, err := s.Run(ctx, cand, inputs, wse.WithOptions(baseOpt))
		if err != nil {
			continue
		}
		if rep.Cycles < bestCycles {
			bestShape, bestCycles = cand, rep.Cycles
		}
	}

	// Neighborhood over the router queue depth, holding the winning
	// algorithm: deeper queues relax backpressure, shallower ones model
	// stricter hardware — adopted only on a strict cycle win.
	for _, q := range cfg.queueCaps() {
		opt := bestOpt
		opt.QueueCap = q
		rep, err := s.Run(ctx, bestShape, inputs, wse.WithOptions(opt))
		if err != nil {
			continue
		}
		if rep.Cycles < bestCycles {
			bestOpt, bestCycles = opt, rep.Cycles
		}
	}

	// Shards never change cycles (the sharded engine is bit-identical),
	// so the axis is scored by measured wall-clock per replay: serial,
	// auto, and powers of two up to MaxShards.
	shardCands := []int{1, 0}
	for n := 2; n <= cfg.maxShards(); n *= 2 {
		shardCands = append(shardCands, n)
	}
	bestNs := 0.0
	for _, n := range shardCands {
		opt := bestOpt
		opt.Shards = n
		if _, err := s.Run(ctx, bestShape, inputs, wse.WithOptions(opt)); err != nil {
			continue // warm the plan; skip candidates that fail outright
		}
		ns := 0.0
		for r := 0; r < cfg.repeat(); r++ {
			start := time.Now()
			if _, err := s.Run(ctx, bestShape, inputs, wse.WithOptions(opt)); err != nil {
				ns = 0
				break
			}
			if el := float64(time.Since(start).Nanoseconds()); ns == 0 || el < ns {
				ns = el
			}
		}
		if ns > 0 && (bestNs == 0 || ns < bestNs) {
			bestOpt.Shards, bestNs = n, ns
		}
	}

	t := Tuning{
		Shape:         sh,
		Options:       bestOpt,
		Cycles:        bestCycles,
		DefaultCycles: defRep.Cycles,
		Bound:         s.Bound(sh, wse.WithOptions(bestOpt)),
		Predicted:     s.Predict(bestShape, wse.WithOptions(bestOpt)),
		ReplayNs:      bestNs,
	}
	if bestShape.Alg != sh.Alg {
		t.Alg = bestShape.Alg
	}
	if bestShape.Alg2D != sh.Alg2D {
		t.Alg2D = bestShape.Alg2D
	}
	if t.Bound > 0 {
		t.AchievedVsBound = float64(t.Cycles) / t.Bound
	}
	if t.Cycles > 0 {
		t.TunedVsDefault = float64(t.DefaultCycles) / float64(t.Cycles)
	}
	return t, nil
}

// ExportWinners compiles every tuning's winner — the concrete algorithm
// under the tuned options — through a fresh session and exports the
// compiled plans into store with Session.Export. A cold session (or a
// whole fleet, through the resolve chain) opening that store then
// serves the tuned workload by decoding plans, never compiling; the
// tuned spelling to ask with is the sidecar's Tuned() + Options.
func ExportWinners(ctx context.Context, tunings []Tuning, store *wse.PlanStore) (int, error) {
	capacity := len(tunings)
	if capacity < 16 {
		capacity = 16
	}
	s := wse.NewSession(wse.SessionConfig{PlanCacheCapacity: capacity})
	defer s.Close()
	for _, t := range tunings {
		sh := t.Tuned()
		inputs := workload.BaseInputs(sh, "tune:"+string(sh.Kind))
		if _, err := s.Run(ctx, sh, inputs, wse.WithOptions(t.Options)); err != nil {
			return 0, fmt.Errorf("export %s: %w", sh.Kind, err)
		}
	}
	return s.Export(store)
}

// Sidecar is the durable form of a tuning pass: version-stamped JSON
// listing every winner, written next to the plan store (or wherever the
// deployment keeps configuration).
type Sidecar struct {
	Version  int      `json:"version"`
	Workload string   `json:"workload,omitempty"`
	Tunings  []Tuning `json:"tunings"`
}

// SidecarVersion stamps sidecar files; readers reject newer majors.
const SidecarVersion = 1

// WriteSidecar writes the tunings to path as a Sidecar.
func WriteSidecar(path, workloadName string, tunings []Tuning) error {
	buf, err := json.MarshalIndent(Sidecar{Version: SidecarVersion, Workload: workloadName, Tunings: tunings}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// LoadSidecar reads a Sidecar back.
func LoadSidecar(path string) (Sidecar, error) {
	var sc Sidecar
	buf, err := os.ReadFile(path)
	if err != nil {
		return sc, err
	}
	if err := json.Unmarshal(buf, &sc); err != nil {
		return sc, fmt.Errorf("tunings sidecar %s: %w", path, err)
	}
	if sc.Version > SidecarVersion {
		return sc, fmt.Errorf("tunings sidecar %s: version %d newer than supported %d", path, sc.Version, SidecarVersion)
	}
	return sc, nil
}

// Apply rewrites w's steps with the tunings' winners: a step whose
// algorithm choice is open (Auto or unset) and whose shape matches a
// tuning adopts the winning algorithm and the tuned fabric options;
// steps that pinned a concrete algorithm are the user's choice and are
// left alone. It returns how many steps were rewritten.
func Apply(w *workload.Workload, tunings []Tuning) int {
	byKey := make(map[string]Tuning, len(tunings))
	for _, t := range tunings {
		byKey[wse.KeyString(Normalize(t.Shape), wse.Options{})] = t
	}
	applied := 0
	for _, st := range w.Steps() {
		if !choiceOpen(st.Shape) {
			continue
		}
		t, ok := byKey[wse.KeyString(Normalize(st.Shape), wse.Options{})]
		if !ok {
			continue
		}
		st.Shape = t.Tuned()
		opt := t.Options
		st.Opt = &opt
		applied++
	}
	return applied
}

// choiceOpen reports whether a step left its algorithm to the model —
// the only steps a tuning may rewrite. Algorithm-free kinds are always
// open (their tunings carry queue/shard options only).
func choiceOpen(sh wse.Shape) bool {
	switch sh.Kind {
	case wse.KindReduce, wse.KindAllReduce, wse.KindAllReduceMidRoot:
		return sh.Alg == "" || sh.Alg == wse.Auto
	case wse.KindReduce2D, wse.KindAllReduce2D:
		return sh.Alg2D == "" || sh.Alg2D == wse.Auto2D
	}
	return true
}
