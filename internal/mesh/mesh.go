// Package mesh defines the geometric vocabulary of the wafer-scale engine:
// coordinates on the 2D grid, the five router directions, wavelet colors,
// and the PE paths (rows, columns, snakes) on which 1D collectives run.
package mesh

import "fmt"

// Direction identifies one of the five bidirectional links of a router:
// the four mesh neighbours plus the ramp to the local processor.
type Direction uint8

const (
	East Direction = iota
	West
	North
	South
	Ramp
	// NumDirections is the number of router links.
	NumDirections
)

// String returns the conventional single-word name of the direction.
func (d Direction) String() string {
	switch d {
	case East:
		return "east"
	case West:
		return "west"
	case North:
		return "north"
	case South:
		return "south"
	case Ramp:
		return "ramp"
	}
	return fmt.Sprintf("direction(%d)", uint8(d))
}

// Opposite returns the direction a wavelet sent towards d arrives from at
// the receiving router. Opposite(Ramp) is Ramp: the processor and router
// share the ramp link.
func (d Direction) Opposite() Direction {
	switch d {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	case South:
		return North
	}
	return Ramp
}

// DirSet is a bit set of directions, used for multicast forward sets.
type DirSet uint8

// Set returns s with d added.
func (s DirSet) Set(d Direction) DirSet { return s | 1<<d }

// Has reports whether d is in the set.
func (s DirSet) Has(d Direction) bool { return s&(1<<d) != 0 }

// Count returns the number of directions in the set.
func (s DirSet) Count() int {
	n := 0
	for d := Direction(0); d < NumDirections; d++ {
		if s.Has(d) {
			n++
		}
	}
	return n
}

// String lists the directions in the set, e.g. "{west,ramp}".
func (s DirSet) String() string {
	out := "{"
	first := true
	for d := Direction(0); d < NumDirections; d++ {
		if s.Has(d) {
			if !first {
				out += ","
			}
			out += d.String()
			first = false
		}
	}
	return out + "}"
}

// Dirs builds a DirSet from a list of directions.
func Dirs(ds ...Direction) DirSet {
	var s DirSet
	for _, d := range ds {
		s = s.Set(d)
	}
	return s
}

// NumColors is the number of wavelet colors available on the WSE-2.
const NumColors = 24

// Color tags a wavelet and selects the routing configuration used for it.
type Color uint8

// Coord addresses a PE on the grid. X grows eastwards, Y grows southwards,
// matching the paper's (i, j) with the root of 2D collectives at (0, 0).
type Coord struct {
	X, Y int
}

// Add returns the coordinate one step in direction d. Stepping onto the
// ramp returns the same coordinate.
func (c Coord) Add(d Direction) Coord {
	switch d {
	case East:
		return Coord{c.X + 1, c.Y}
	case West:
		return Coord{c.X - 1, c.Y}
	case North:
		return Coord{c.X, c.Y - 1}
	case South:
		return Coord{c.X, c.Y + 1}
	}
	return c
}

// DirTo returns the direction of the single-step move from c to n.
// It panics if n is not a mesh neighbour of c; path construction is
// programmer-controlled and a bad step is a bug, not an input error.
func (c Coord) DirTo(n Coord) Direction {
	switch {
	case n.X == c.X+1 && n.Y == c.Y:
		return East
	case n.X == c.X-1 && n.Y == c.Y:
		return West
	case n.X == c.X && n.Y == c.Y-1:
		return North
	case n.X == c.X && n.Y == c.Y+1:
		return South
	}
	panic(fmt.Sprintf("mesh: %v is not adjacent to %v", n, c))
}

// String formats the coordinate as "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Manhattan returns the L1 distance between two coordinates, the number of
// hops a wavelet needs between the two routers.
func (c Coord) Manhattan(o Coord) int {
	dx := c.X - o.X
	if dx < 0 {
		dx = -dx
	}
	dy := c.Y - o.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}
