package mesh

import "fmt"

// Path is an ordered sequence of pairwise-adjacent PE coordinates. All 1D
// collectives operate on a path; index 0 is the "west end" (towards the
// root of a reduction) regardless of the path's physical shape.
type Path []Coord

// Validate checks that consecutive path entries are mesh neighbours and
// that no coordinate repeats.
func (p Path) Validate() error {
	seen := make(map[Coord]struct{}, len(p))
	for i, c := range p {
		if _, dup := seen[c]; dup {
			return fmt.Errorf("mesh: path visits %v twice", c)
		}
		seen[c] = struct{}{}
		if i > 0 {
			if p[i-1].Manhattan(c) != 1 {
				return fmt.Errorf("mesh: path step %d: %v not adjacent to %v", i, c, p[i-1])
			}
		}
	}
	return nil
}

// TowardStart returns the direction from p[i] to p[i-1], i.e. the
// "logical west" of the path at index i.
func (p Path) TowardStart(i int) Direction { return p[i].DirTo(p[i-1]) }

// TowardEnd returns the direction from p[i] to p[i+1], the "logical east".
func (p Path) TowardEnd(i int) Direction { return p[i].DirTo(p[i+1]) }

// Row returns the path of n PEs in row y starting at x0 and extending east.
// Index 0 (the reduce root end) is the westmost PE.
func Row(y, x0, n int) Path {
	p := make(Path, n)
	for i := range p {
		p[i] = Coord{x0 + i, y}
	}
	return p
}

// Column returns the path of n PEs in column x starting at y0, extending
// south. Index 0 is the northmost PE.
func Column(x, y0, n int) Path {
	p := make(Path, n)
	for i := range p {
		p[i] = Coord{x, y0 + i}
	}
	return p
}

// Snake returns the boustrophedon path covering an m×n grid (width n PEs,
// height m PEs) starting at (0,0): row 0 eastwards, row 1 westwards, and so
// on, so consecutive path entries are always mesh neighbours. This is the
// mapping of the paper's Snake Reduce (§7.3, Figure 9b).
func Snake(m, n int) Path {
	p := make(Path, 0, m*n)
	for y := 0; y < m; y++ {
		if y%2 == 0 {
			for x := 0; x < n; x++ {
				p = append(p, Coord{x, y})
			}
		} else {
			for x := n - 1; x >= 0; x-- {
				p = append(p, Coord{x, y})
			}
		}
	}
	return p
}
