package mesh

import (
	"testing"
	"testing/quick"
)

func TestDirectionOpposite(t *testing.T) {
	cases := map[Direction]Direction{
		East: West, West: East, North: South, South: North, Ramp: Ramp,
	}
	for d, want := range cases {
		if got := d.Opposite(); got != want {
			t.Errorf("Opposite(%v)=%v, want %v", d, got, want)
		}
	}
}

func TestDirSet(t *testing.T) {
	s := Dirs(West, Ramp)
	if !s.Has(West) || !s.Has(Ramp) || s.Has(East) {
		t.Errorf("bad set %v", s)
	}
	if s.Count() != 2 {
		t.Errorf("count %d", s.Count())
	}
	if s.String() != "{west,ramp}" {
		t.Errorf("string %q", s.String())
	}
}

func TestCoordAddDirToInverse(t *testing.T) {
	f := func(x, y int16, dRaw uint8) bool {
		c := Coord{int(x), int(y)}
		d := Direction(dRaw % 4)
		n := c.Add(d)
		return c.DirTo(n) == d && n.Manhattan(c) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirToPanicsOnNonNeighbour(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Coord{0, 0}.DirTo(Coord{2, 0})
}

func TestPathsValid(t *testing.T) {
	for _, p := range []Path{
		Row(3, 2, 10),
		Column(1, 0, 7),
		Snake(5, 8),
		Snake(1, 16),
		Snake(16, 1),
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%v", err)
		}
	}
}

func TestSnakeCoversGrid(t *testing.T) {
	m, n := 6, 9
	p := Snake(m, n)
	if len(p) != m*n {
		t.Fatalf("len %d", len(p))
	}
	seen := make(map[Coord]bool, len(p))
	for _, c := range p {
		if c.X < 0 || c.X >= n || c.Y < 0 || c.Y >= m {
			t.Fatalf("out of grid: %v", c)
		}
		if seen[c] {
			t.Fatalf("repeat: %v", c)
		}
		seen[c] = true
	}
	if p[0] != (Coord{0, 0}) {
		t.Errorf("snake starts at %v", p[0])
	}
}

func TestPathValidateRejectsBadPaths(t *testing.T) {
	if err := (Path{{0, 0}, {2, 0}}).Validate(); err == nil {
		t.Error("gap accepted")
	}
	if err := (Path{{0, 0}, {1, 0}, {0, 0}}).Validate(); err == nil {
		t.Error("repeat accepted")
	}
}

func TestPathDirections(t *testing.T) {
	p := Snake(2, 3) // (0,0)(1,0)(2,0)(2,1)(1,1)(0,1)
	if d := p.TowardEnd(0); d != East {
		t.Errorf("TowardEnd(0)=%v", d)
	}
	if d := p.TowardEnd(2); d != South {
		t.Errorf("TowardEnd(2)=%v", d)
	}
	if d := p.TowardStart(3); d != North {
		t.Errorf("TowardStart(3)=%v", d)
	}
	if d := p.TowardStart(4); d != East {
		t.Errorf("TowardStart(4)=%v", d)
	}
}
