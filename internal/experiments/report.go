package experiments

import (
	"fmt"
	"strings"
)

// Tiny returns a scaled-down configuration for unit tests: shapes small
// enough to run the whole figure set in seconds while still exercising
// every code path.
func Tiny() Config {
	cfg := Quick()
	cfg.P1D = 128
	cfg.Bs = []int{1, 16, 128}
	cfg.FixedB = 64
	cfg.Ps = []int{4, 16, 64, 128}
	cfg.Side2D = 8
	cfg.Sides2D = []int{4, 8}
	cfg.StarBCap = 128
	return cfg
}

// Report is the full regenerated evaluation.
type Report struct {
	Heatmaps []*Heatmap
	Figures  []*Figure
	Claims   []HeadlineClaim
}

// RunAll regenerates every figure of the paper's evaluation with the
// given configuration. Model-only figures always run at the paper's full
// scale; measured figures follow cfg.
func (cfg Config) RunAll() (*Report, error) {
	rep := &Report{}
	rep.Heatmaps = append(rep.Heatmaps, Fig1()...)
	rep.Heatmaps = append(rep.Heatmaps, Fig8(), Fig8AutoGen(), Fig10())

	f11a, err := cfg.Fig11a()
	if err != nil {
		return nil, fmt.Errorf("fig11a: %w", err)
	}
	f11b, err := cfg.Fig11b()
	if err != nil {
		return nil, fmt.Errorf("fig11b: %w", err)
	}
	f11c, err := cfg.Fig11c()
	if err != nil {
		return nil, fmt.Errorf("fig11c: %w", err)
	}
	f12a, err := cfg.Fig12a()
	if err != nil {
		return nil, fmt.Errorf("fig12a: %w", err)
	}
	f12b, err := cfg.Fig12b()
	if err != nil {
		return nil, fmt.Errorf("fig12b: %w", err)
	}
	f12c, err := cfg.Fig12c()
	if err != nil {
		return nil, fmt.Errorf("fig12c: %w", err)
	}
	f13a, err := cfg.Fig13a()
	if err != nil {
		return nil, fmt.Errorf("fig13a: %w", err)
	}
	f13b, err := cfg.Fig13b()
	if err != nil {
		return nil, fmt.Errorf("fig13b: %w", err)
	}
	f13c, err := cfg.Fig13c()
	if err != nil {
		return nil, fmt.Errorf("fig13c: %w", err)
	}
	f13am := cfg.Fig13Model512(false)
	f13bm := cfg.Fig13Model512(true)
	ringFig, err := cfg.RingValidation()
	if err != nil {
		return nil, fmt.Errorf("ring validation: %w", err)
	}
	rep.Figures = append(rep.Figures,
		f11a, f11b, f11c, f12a, f12b, f12c, f13a, f13b, f13c, f13am, f13bm, ringFig)
	rep.Claims = Headline(f11b, f11c, f13am, f13bm)
	return rep, nil
}

// Render formats the whole report as text.
func (r *Report) Render() string {
	var b strings.Builder
	for _, h := range r.Heatmaps {
		b.WriteString(h.Render())
		b.WriteString("\n")
	}
	for _, f := range r.Figures {
		b.WriteString(f.Table())
		b.WriteString("\n")
	}
	b.WriteString(RenderHeadline(r.Claims))
	return b.String()
}
