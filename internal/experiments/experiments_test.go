package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestFig1ReproducesPaperRatios(t *testing.T) {
	maps := Fig1()
	if len(maps) != 5 {
		t.Fatalf("%d heatmaps", len(maps))
	}
	sum := Fig1Summary(maps)
	// §5.7 / Figure 1: Auto-Gen ≤ 1.4×, Two-Phase ≤ 2.4×, fixed patterns
	// up to ~5.9× (and star's worst cell, B=32 KB at 512 PEs, is 371.8).
	if sum["autogen"] > 1.45 || sum["autogen"] < 1.0 {
		t.Errorf("autogen worst ratio %.3f, paper 1.4", sum["autogen"])
	}
	if sum["twophase"] > 2.45 {
		t.Errorf("twophase worst ratio %.3f, paper 2.4", sum["twophase"])
	}
	if sum["star"] < 300 || sum["star"] > 450 {
		t.Errorf("star worst ratio %.1f, paper's Figure 1a shows 371.8", sum["star"])
	}
	if sum["chain"] < 5.0 || sum["chain"] > 7.0 {
		t.Errorf("chain worst ratio %.2f, paper's Figure 1b shows 5.9", sum["chain"])
	}
	// Spot-check individual cells against the published heatmap.
	star := maps[0]
	got := star.Cells[len(star.Rows)-1][len(star.Cols)-1] // 512 PEs, 32 KB
	if got < 360 || got > 385 {
		t.Errorf("star(512, 32KB) ratio %.1f, paper shows 371.8", got)
	}
	chain := maps[1]
	got = chain.Cells[len(chain.Rows)-1][0] // 512 PEs, 4 B
	if got < 5.5 || got > 6.3 {
		t.Errorf("chain(512, 4B) ratio %.1f, paper shows 5.9", got)
	}
}

func TestFig8Regions(t *testing.T) {
	h := Fig8()
	// Small vectors, many PEs: star-family wins (Figure 8's left band).
	topLeft := h.Regions[len(h.Rows)-1][0]
	if !strings.HasPrefix(topLeft, "star") {
		t.Errorf("512 PEs / 4 B region is %q, want star*", topLeft)
	}
	// Huge vectors on few PEs: ring (Figure 8's bottom-right region).
	bottomRight := h.Regions[0][len(h.Cols)-1]
	if bottomRight != "ring" {
		t.Errorf("4 PEs / 1 MB region is %q, want ring", bottomRight)
	}
	// The vendor never beats the best choice.
	for i := range h.Rows {
		for j := range h.Cols {
			if h.Cells[i][j] < 1.0-1e-9 {
				t.Fatalf("speedup %.3f < 1 at P=%d B=%d", h.Cells[i][j], h.Rows[i], h.Cols[j])
			}
		}
	}
}

func TestFig10Regions(t *testing.T) {
	h := Fig10()
	// Bandwidth-limited corner (few PEs, huge vectors): Snake replaces
	// ring in 2D (§7.6).
	if got := h.Regions[0][len(h.Cols)-1]; got != "snake" {
		t.Errorf("4x4 / 1 MB region is %q, want snake", got)
	}
	// Full wafer with small vectors: a low-depth X-Y pattern wins.
	topLeft := h.Regions[len(h.Rows)-1][0]
	if topLeft == "snake" || topLeft == "xy-chain" {
		t.Errorf("512x512 / 4 B region is %q, want a low-depth X-Y pattern", topLeft)
	}
	if h.Max() < 2.0 {
		t.Errorf("max 2D speedup %.2f, paper reports up to ~3.3x", h.Max())
	}
}

func TestFig11SweepTiny(t *testing.T) {
	cfg := Tiny()
	fa, err := cfg.Fig11a()
	if err != nil {
		t.Fatal(err)
	}
	if e := fa.Series[0].MeanRelError(); e > 0.25 {
		t.Errorf("broadcast mean relative error %.1f%%, paper reports ≤21%%", 100*e)
	}
	fb, err := cfg.Fig11b()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fb.Series {
		if e := s.MeanRelError(); math.IsNaN(e) || e > 0.40 {
			t.Errorf("reduce %s mean relative error %.1f%%, paper reports 12-35%%", s.Name, 100*e)
		}
	}
	fc, err := cfg.Fig11c()
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Series) != len(seriesPatterns)+2 {
		t.Fatalf("%d series in fig11c", len(fc.Series))
	}
}

func TestFig12SweepTiny(t *testing.T) {
	cfg := Tiny()
	fb, err := cfg.Fig12b()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fb.Series {
		if e := s.MeanRelError(); math.IsNaN(e) || e > 0.40 {
			t.Errorf("reduce %s mean relative error %.1f%%, paper reports 13-28%%", s.Name, 100*e)
		}
	}
	// The model must predict the right winner transitions: chain best at
	// few PEs, two-phase / autogen at many (§8.5).
	chain := seriesByName(fb, "chain")
	two := seriesByName(fb, "twophase")
	if chain.Points[0].Measured > two.Points[0].Measured {
		t.Errorf("at %d PEs chain (%.0f) should beat twophase (%.0f)",
			chain.Points[0].X, chain.Points[0].Measured, two.Points[0].Measured)
	}
	last := len(chain.Points) - 1
	if chain.Points[last].Measured < two.Points[last].Measured {
		t.Errorf("at %d PEs twophase (%.0f) should beat chain (%.0f)",
			chain.Points[last].X, two.Points[last].Measured, chain.Points[last].Measured)
	}
}

func TestFig13SweepTiny(t *testing.T) {
	cfg := Tiny()
	fa, err := cfg.Fig13a()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fa.Series {
		if e := s.MeanRelError(); math.IsNaN(e) || e > 0.45 {
			t.Errorf("2D reduce %s mean relative error %.1f%%", s.Name, 100*e)
		}
	}
	fcFig, err := cfg.Fig13c()
	if err != nil {
		t.Fatal(err)
	}
	// Snake wins on tiny grids with 1 KB vectors, loses badly at scale
	// (its predicted 512x512 value is the paper's ~2 ms outlier).
	snake := seriesByName(fcFig, "snake")
	chain := seriesByName(fcFig, "xy-chain")
	if snake.Points[0].Predicted > chain.Points[0].Predicted {
		t.Errorf("4x4: snake %.0f should beat xy-chain %.0f",
			snake.Points[0].Predicted, chain.Points[0].Predicted)
	}
	last := len(snake.Points) - 1
	if snake.Points[last].Predicted < 10*chain.Points[last].Predicted {
		t.Errorf("512x512: snake %.0f should be far above xy-chain %.0f",
			snake.Points[last].Predicted, chain.Points[last].Predicted)
	}
}

func TestHeadlineClaims(t *testing.T) {
	cfg := Tiny()
	cfg.Bs = []int{64, 256, 1024, 4096} // span the crossover region
	fb, err := cfg.Fig11b()
	if err != nil {
		t.Fatal(err)
	}
	fc, err := cfg.Fig11c()
	if err != nil {
		t.Fatal(err)
	}
	claims := Headline(fb, fc, cfg.Fig13Model512(false), cfg.Fig13Model512(true))
	for _, c := range claims {
		if math.IsNaN(c.Ours) {
			t.Errorf("%s: no value", c.Name)
			continue
		}
		// Shape reproduction: the winner and rough factor must hold. Our
		// substrate is a simulator at partially reduced scale, so allow a
		// generous band around the paper's number.
		if c.Ours < 0.55*c.Paper || c.Ours > 1.8*c.Paper {
			t.Errorf("%s: ours %.2fx vs paper %.2fx (outside [0.55x, 1.8x] band)", c.Name, c.Ours, c.Paper)
		}
		if c.Ours < 1.0 {
			t.Errorf("%s: ours %.2fx — improvement direction not reproduced", c.Name, c.Ours)
		}
	}
	t.Log("\n" + RenderHeadline(claims))
}

func TestRenderers(t *testing.T) {
	maps := Fig1()
	if s := maps[0].Render(); !strings.Contains(s, "fig1-star") {
		t.Error("heatmap render missing ID")
	}
	cfg := Tiny()
	cfg.Bs = []int{1, 16}
	cfg.Ps = []int{4, 16}
	fa, err := cfg.Fig12a()
	if err != nil {
		t.Fatal(err)
	}
	if s := fa.Table(); !strings.Contains(s, "fig12a") {
		t.Error("table render missing ID")
	}
	if s := fa.CSV(); !strings.Contains(s, "broadcast_measured") {
		t.Error("csv render missing header")
	}
}
