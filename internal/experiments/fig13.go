package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// patterns2D are the measured 2D patterns in the paper's legend order;
// X-Y Chain is the vendor baseline.
var patterns2D = []core.Pattern2D{core.XYStar, core.XYChain, core.XYTree, core.XYTwoPhase, core.XYAutoGen, core.Snake}

// Fig13a regenerates Figure 13a: 2D Reduce with increasing vector length.
// Measured runs use a Side2D×Side2D grid (the paper's 512×512 hardware
// region is infeasible to simulate cycle-by-cycle); predictions are
// reported at the same side so relative error is meaningful, and
// Fig13Model512 covers the paper's full scale analytically.
func (cfg Config) Fig13a() (*Figure, error) {
	fig := &Figure{
		ID:     "fig13a",
		Title:  fmt.Sprintf("2D Reduce, %dx%d PEs, increasing vector length (measured/predicted cycles)", cfg.Side2D, cfg.Side2D),
		XLabel: "bytes",
		Notes: []string{
			fmt.Sprintf("paper measures 512x512 on hardware; measured runs here use %dx%d, model covers 512x512 (fig13a-model)", cfg.Side2D, cfg.Side2D),
		},
	}
	for _, pat := range patterns2D {
		s := Series{Name: string(pat)}
		for _, b := range cfg.Bs {
			pt := Point{
				X:         4 * b,
				Measured:  math.NaN(),
				Predicted: core.PredictReduce2D(pat, cfg.Side2D, cfg.Side2D, b, cfg.tr()),
			}
			if pat != core.XYStar || b <= cfg.StarBCap {
				m, err := cfg.measureReduce2D(pat, cfg.Side2D, b)
				if err != nil {
					return nil, err
				}
				pt.Measured = m
			}
			s.Points = append(s.Points, pt)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig13b regenerates Figure 13b: 2D AllReduce, vector-length sweep.
func (cfg Config) Fig13b() (*Figure, error) {
	fig := &Figure{
		ID:     "fig13b",
		Title:  fmt.Sprintf("2D AllReduce, %dx%d PEs, increasing vector length (measured/predicted cycles)", cfg.Side2D, cfg.Side2D),
		XLabel: "bytes",
		Notes: []string{
			fmt.Sprintf("measured at %dx%d; the paper's 512x512 shape is covered by the model (fig13b-model)", cfg.Side2D, cfg.Side2D),
		},
	}
	for _, pat := range patterns2D {
		s := Series{Name: string(pat)}
		for _, b := range cfg.Bs {
			pt := Point{
				X:         4 * b,
				Measured:  math.NaN(),
				Predicted: core.PredictAllReduce2D(pat, cfg.Side2D, cfg.Side2D, b, cfg.tr()),
			}
			if pat != core.XYStar || b <= cfg.StarBCap {
				m, err := cfg.measureAllReduce2D(pat, cfg.Side2D, b)
				if err != nil {
					return nil, err
				}
				pt.Measured = m
			}
			s.Points = append(s.Points, pt)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig13c regenerates Figure 13c: 2D Reduce of a fixed 1 KB vector on
// growing square grids. Measured points cover Sides2D; predictions extend
// to the paper's 512×512.
func (cfg Config) Fig13c() (*Figure, error) {
	sides := PowersOfTwo(4, 512)
	measured := make(map[int]bool, len(cfg.Sides2D))
	for _, s := range cfg.Sides2D {
		measured[s] = true
	}
	fig := &Figure{
		ID:     "fig13c",
		Title:  "2D Reduce, 1 KB vector, increasing grid side (measured/predicted cycles)",
		XLabel: "side",
		Notes: []string{
			fmt.Sprintf("measured grids: %v; larger sides are model-only", cfg.Sides2D),
		},
	}
	for _, pat := range patterns2D {
		s := Series{Name: string(pat)}
		for _, side := range sides {
			pt := Point{
				X:         side,
				Measured:  math.NaN(),
				Predicted: core.PredictReduce2D(pat, side, side, cfg.FixedB, cfg.tr()),
			}
			// Snake on big grids is Θ(B·P) simulation work and dominated
			// by its linear depth anyway; measure it on the smaller grids.
			if measured[side] && (pat != core.Snake || side <= 32) {
				m, err := cfg.measureReduce2D(pat, side, cfg.FixedB)
				if err != nil {
					return nil, err
				}
				pt.Measured = m
			}
			s.Points = append(s.Points, pt)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig13Model512 reports the model-only version of Figures 13a/13b at the
// paper's full 512×512 scale, the scale at which the paper quotes its
// 3.27× (Reduce) and 2.54× (AllReduce) improvements over X-Y Chain.
func (cfg Config) Fig13Model512(allreduce bool) *Figure {
	id, title := "fig13a-model", "2D Reduce, 512x512 PEs (model only), increasing vector length"
	if allreduce {
		id, title = "fig13b-model", "2D AllReduce, 512x512 PEs (model only), increasing vector length"
	}
	fig := &Figure{ID: id, Title: title, XLabel: "bytes"}
	for _, pat := range patterns2D {
		s := Series{Name: string(pat)}
		for _, b := range cfg.Bs {
			var t float64
			if allreduce {
				t = core.PredictAllReduce2D(pat, 512, 512, b, cfg.tr())
			} else {
				t = core.PredictReduce2D(pat, 512, 512, b, cfg.tr())
			}
			s.Points = append(s.Points, Point{X: 4 * b, Measured: math.NaN(), Predicted: t})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}
