package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/model"
)

// Fig12a regenerates Figure 12a: 1D Broadcast of a fixed 1 KB vector
// across an increasing number of PEs.
func (cfg Config) Fig12a() (*Figure, error) {
	pr := model.Params{TR: cfg.tr()}
	s := Series{Name: "broadcast"}
	for _, p := range cfg.Ps {
		m, err := cfg.measureBroadcast1D(p, cfg.FixedB)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{X: p, Measured: m, Predicted: pr.Broadcast1D(p, cfg.FixedB)})
	}
	return &Figure{
		ID:     "fig12a",
		Title:  "1D Broadcast, 1 KB vector, increasing number of PEs",
		XLabel: "PEs",
		Series: []Series{s},
	}, nil
}

// Fig12b regenerates Figure 12b: 1D Reduce of a 1 KB vector, PE sweep.
func (cfg Config) Fig12b() (*Figure, error) {
	fig := &Figure{
		ID:     "fig12b",
		Title:  "1D Reduce, 1 KB vector, increasing number of PEs (measured/predicted cycles)",
		XLabel: "PEs",
	}
	for _, pat := range seriesPatterns {
		s := Series{Name: string(pat)}
		for _, p := range cfg.Ps {
			pt := Point{
				X:         p,
				Measured:  math.NaN(),
				Predicted: core.PredictReduce1D(pat, p, cfg.FixedB, cfg.tr()),
			}
			if pat != core.Star || p*cfg.FixedB <= 512*cfg.StarBCap {
				m, err := cfg.measureReduce1D(pat, p, cfg.FixedB)
				if err != nil {
					return nil, err
				}
				pt.Measured = m
			}
			s.Points = append(s.Points, pt)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig12c regenerates Figure 12c: 1D AllReduce of a 1 KB vector, PE sweep,
// with the predicted-only ring (the paper notes ring is mildly better
// only at 4 PEs and loses everywhere else).
func (cfg Config) Fig12c() (*Figure, error) {
	fig := &Figure{
		ID:     "fig12c",
		Title:  "1D AllReduce, 1 KB vector, increasing number of PEs (measured/predicted cycles)",
		XLabel: "PEs",
	}
	pr := model.Params{TR: cfg.tr()}
	for _, pat := range seriesPatterns {
		s := Series{Name: string(pat) + "+bcast"}
		for _, p := range cfg.Ps {
			pt := Point{
				X:         p,
				Measured:  math.NaN(),
				Predicted: core.PredictAllReduce1D(pat, p, cfg.FixedB, cfg.tr()),
			}
			if pat != core.Star || p*cfg.FixedB <= 512*cfg.StarBCap {
				m, err := cfg.measureAllReduce1D(pat, p, cfg.FixedB)
				if err != nil {
					return nil, err
				}
				pt.Measured = m
			}
			s.Points = append(s.Points, pt)
		}
		fig.Series = append(fig.Series, s)
	}
	ring := Series{Name: "ring(model)"}
	for _, p := range cfg.Ps {
		ring.Points = append(ring.Points, Point{X: p, Measured: math.NaN(), Predicted: pr.RingAllReduce(p, cfg.FixedB)})
	}
	fig.Series = append(fig.Series, ring)
	return fig, nil
}
