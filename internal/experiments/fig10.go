package experiments

import (
	"repro/internal/core"
	"repro/internal/model"
)

// Fig10 computes the 2D AllReduce region map of Figure 10 on square
// grids: for every (P, B), the best 2D algorithm (X-Y compositions and
// Snake, each followed by the 2D broadcast) and its speedup over X-Y
// Chain, the vendor baseline. Rows are total PE counts of √P×√P grids
// from 4×4 up to 512×512.
func Fig10() *Heatmap {
	var sides []int
	for s := 4; s <= 512; s *= 2 {
		sides = append(sides, s)
	}
	bytesCols := PowersOfTwo(4, 1<<20)
	pr := model.Default()
	h := &Heatmap{
		ID:       "fig10",
		Title:    "2D AllReduce: speedup of best algorithm over X-Y Chain (vendor)",
		RowLabel: "side",
		ColLabel: "bytes",
		Rows:     sides,
		Cols:     bytesCols,
		Cells:    make([][]float64, len(sides)),
		Regions:  make([][]string, len(sides)),
		Notes: []string{
			"rows are square grids: side 512 means 512x512 = 262144 PEs",
			"as in the paper's Figure 10, the bandwidth-limited region is held by Snake instead of the 1D ring",
		},
	}
	for i, side := range sides {
		h.Cells[i] = make([]float64, len(bytesCols))
		h.Regions[i] = make([]string, len(bytesCols))
		for j, bytes := range bytesCols {
			b := bytes / 4
			vendor := core.PredictAllReduce2D(core.XYChain, side, side, b, pr.TR)
			bestName, bestT := "", 0.0
			for _, pat := range []core.Pattern2D{core.XYStar, core.XYChain, core.XYTree, core.XYTwoPhase, core.Snake} {
				if t := core.PredictAllReduce2D(pat, side, side, b, pr.TR); bestName == "" || t < bestT {
					bestName, bestT = string(pat), t
				}
			}
			h.Cells[i][j] = vendor / bestT
			h.Regions[i][j] = bestName
		}
	}
	return h
}
