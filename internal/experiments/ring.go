package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/model"
)

// RingValidation is an extension beyond the paper: the paper analyses the
// ring AllReduce with the model, concludes it is (almost) never the best
// choice on the WSE, and deliberately skips the implementation (§8.6).
// This experiment implements the ring anyway — in both mappings of
// Figure 7 — and measures it on the fabric simulator against the
// chain+broadcast the vendor would use, across the PE range with 4·P
// wavelet vectors (so ring chunks stay non-empty). The outcome documented
// in EXPERIMENTS.md: the model's predicted ordering matches the
// simulator's at every point, which is precisely why skipping the
// implementation was safe.
func (cfg Config) RingValidation() (*Figure, error) {
	fig := &Figure{
		ID:     "ring-validation",
		Title:  "ring AllReduce (implemented as an extension) vs chain+bcast, B = 4P wavelets",
		XLabel: "PEs",
		Notes: []string{
			"the paper keeps ring model-only; this reproduction implements it to validate that decision",
		},
	}
	ring := Series{Name: "ring-simple"}
	ringDP := Series{Name: "ring-distpres"}
	cb := Series{Name: "chain+bcast"}
	pr := model.Params{TR: cfg.tr()}
	for _, p := range cfg.Ps {
		if p > 128 {
			break // ring's 2(P-1) rounds make large-P runs slow and pointless
		}
		b := 4 * p
		m, err := cfg.measureAllReduce1D(core.Ring, p, b)
		if err != nil {
			return nil, err
		}
		ring.Points = append(ring.Points, Point{X: p, Measured: m, Predicted: pr.RingAllReduce(p, b)})
		if p%2 == 0 {
			mdp, err := cfg.measureAllReduce1D(core.RingDP, p, b)
			if err != nil {
				return nil, err
			}
			ringDP.Points = append(ringDP.Points, Point{X: p, Measured: mdp, Predicted: pr.RingAllReduce(p, b)})
		} else {
			ringDP.Points = append(ringDP.Points, Point{X: p, Measured: math.NaN(), Predicted: pr.RingAllReduce(p, b)})
		}
		mcb, err := cfg.measureAllReduce1D(core.Chain, p, b)
		if err != nil {
			return nil, err
		}
		cb.Points = append(cb.Points, Point{X: p, Measured: mcb, Predicted: pr.AllReduce1D("chain", p, b)})
	}
	fig.Series = []Series{ring, ringDP, cb}
	return fig, nil
}
