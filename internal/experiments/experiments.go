// Package experiments regenerates every table and figure of the paper's
// evaluation (§5.7, §6.3, §7.6, §8): the optimality-ratio heatmaps of
// Figure 1, the algorithm-selection region maps of Figures 8 and 10, the
// measured-versus-predicted sweeps of Figures 11-13, and the headline
// speedup numbers. Model-only figures are computed at the paper's full
// scale; simulated ("measured") figures run on the fabric simulator, at
// full scale in 1D and at a documented reduced scale in 2D (simulating
// 512×512 = 262k PEs cycle-by-cycle is not feasible on a workstation; the
// model, which the paper validates the same way, covers the full scale).
package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Point is one x-position of a series with the simulator measurement and
// the model prediction (either may be NaN when not applicable).
type Point struct {
	X         int
	Measured  float64
	Predicted float64
}

// Series is one algorithm's curve in a figure.
type Series struct {
	Name   string
	Points []Point
}

// MeanRelError returns mean |measured−predicted|/measured over points
// that have both values, mirroring the paper's reported relative errors.
func (s Series) MeanRelError() float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if math.IsNaN(p.Measured) || math.IsNaN(p.Predicted) || p.Measured == 0 {
			continue
		}
		sum += math.Abs(p.Measured-p.Predicted) / p.Measured
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Figure is a line-plot figure: several series over a shared x-axis.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Series []Series
	Notes  []string
}

// Table renders the figure as an aligned text table (cycles).
func (f *Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " | %22s", s.Name)
	}
	b.WriteString("\n")
	if len(f.Series) > 0 {
		for i := range f.Series[0].Points {
			fmt.Fprintf(&b, "%12d", f.Series[0].Points[i].X)
			for _, s := range f.Series {
				p := s.Points[i]
				b.WriteString(" | ")
				if math.IsNaN(p.Measured) {
					fmt.Fprintf(&b, "%10s", "-")
				} else {
					fmt.Fprintf(&b, "%10.0f", p.Measured)
				}
				if math.IsNaN(p.Predicted) {
					fmt.Fprintf(&b, "/%10s", "-")
				} else {
					fmt.Fprintf(&b, "/%10.0f", p.Predicted)
				}
			}
			b.WriteString("\n")
		}
	}
	for _, s := range f.Series {
		if e := s.MeanRelError(); !math.IsNaN(e) {
			fmt.Fprintf(&b, "  mean relative error %-22s %5.1f%%\n", s.Name, 100*e)
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with one measured and
// one predicted column per series.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, ",%s_measured,%s_predicted", s.Name, s.Name)
	}
	b.WriteString("\n")
	if len(f.Series) > 0 {
		for i := range f.Series[0].Points {
			fmt.Fprintf(&b, "%d", f.Series[0].Points[i].X)
			for _, s := range f.Series {
				fmt.Fprintf(&b, ",%s,%s", csvFloat(s.Points[i].Measured), csvFloat(s.Points[i].Predicted))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

func csvFloat(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return fmt.Sprintf("%.1f", v)
}

// Heatmap is a (P × B)-gridded figure such as Figure 1's optimality
// ratios or the best-algorithm region maps of Figures 8 and 10.
type Heatmap struct {
	ID       string
	Title    string
	RowLabel string // e.g. "PEs"
	ColLabel string // e.g. "vector bytes"
	Rows     []int
	Cols     []int
	Cells    [][]float64
	// Regions optionally labels each cell with the winning algorithm.
	Regions [][]string
	Notes   []string
}

// Render draws the heatmap as an aligned text grid, largest row first to
// match the paper's orientation.
func (h *Heatmap) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", h.ID, h.Title)
	fmt.Fprintf(&b, "%10s", h.RowLabel+"\\"+h.ColLabel)
	for _, c := range h.Cols {
		fmt.Fprintf(&b, " %8d", c)
	}
	b.WriteString("\n")
	for i := len(h.Rows) - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "%10d", h.Rows[i])
		for j := range h.Cols {
			fmt.Fprintf(&b, " %8.1f", h.Cells[i][j])
		}
		b.WriteString("\n")
		if h.Regions != nil {
			fmt.Fprintf(&b, "%10s", "")
			for j := range h.Cols {
				fmt.Fprintf(&b, " %8s", shorten(h.Regions[i][j], 8))
			}
			b.WriteString("\n")
		}
	}
	for _, n := range h.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Max returns the maximum cell value.
func (h *Heatmap) Max() float64 {
	max := math.Inf(-1)
	for _, row := range h.Cells {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	return max
}

func shorten(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// PowersOfTwo returns lo, 2lo, ..., up to hi inclusive.
func PowersOfTwo(lo, hi int) []int {
	var out []int
	for v := lo; v <= hi; v *= 2 {
		out = append(out, v)
	}
	return out
}
