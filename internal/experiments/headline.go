package experiments

import (
	"fmt"
	"math"
	"strings"
)

// HeadlineClaim compares one of the paper's headline speedups with the
// value this reproduction obtains.
type HeadlineClaim struct {
	Name  string
	Paper float64
	Ours  float64
	Basis string
}

// seriesByName finds a series in a figure.
func seriesByName(f *Figure, name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// maxRatio returns the maximum over x of base(x)/target(x), using
// measured values when both exist at a point and falling back to
// predictions otherwise.
func maxRatio(f *Figure, baseName, targetName string) float64 {
	base := seriesByName(f, baseName)
	target := seriesByName(f, targetName)
	if base == nil || target == nil {
		return math.NaN()
	}
	best := math.NaN()
	for i := range base.Points {
		b, t := base.Points[i].Measured, target.Points[i].Measured
		if math.IsNaN(b) || math.IsNaN(t) {
			b, t = base.Points[i].Predicted, target.Points[i].Predicted
		}
		if math.IsNaN(b) || math.IsNaN(t) || t == 0 {
			continue
		}
		if r := b / t; math.IsNaN(best) || r > best {
			best = r
		}
	}
	return best
}

// Headline extracts the paper's headline improvement factors from the
// regenerated figures:
//
//   - 1D Reduce: Auto-Gen vs the vendor chain, up to 3.16× (§8.5)
//   - 1D AllReduce: Auto-Gen vs chain+broadcast, up to 2.47× (§8.6)
//   - 2D Reduce at 512×512: X-Y Auto-Gen vs X-Y Chain, up to 3.27× (§8.7)
//   - 2D AllReduce at 512×512: up to 2.54× (§8.7)
//   - Two-Phase at 512×512: 3.32× Reduce / 2.56× AllReduce (§1.3)
//
// The 1D numbers come from measured sweeps; the 512×512 numbers are
// model-based (the paper's own region claims at that scale rest on the
// validated model as well; our simulator validates the model at 64×64).
func Headline(fig11b, fig11c, fig13aModel, fig13bModel *Figure) []HeadlineClaim {
	return []HeadlineClaim{
		{
			Name:  "1D Reduce: AutoGen vs vendor chain (512 PEs)",
			Paper: 3.16,
			Ours:  maxRatio(fig11b, "chain", "autogen"),
			Basis: "measured, Figure 11b sweep",
		},
		{
			Name:  "1D AllReduce: AutoGen vs chain+bcast (512 PEs)",
			Paper: 2.47,
			Ours:  maxRatio(fig11c, "chain+bcast", "autogen+bcast"),
			Basis: "measured, Figure 11c sweep",
		},
		{
			Name:  "2D Reduce: X-Y AutoGen vs X-Y Chain (512x512)",
			Paper: 3.27,
			Ours:  maxRatio(fig13aModel, "xy-chain", "xy-autogen"),
			Basis: "model at paper scale, Figure 13a",
		},
		{
			Name:  "2D AllReduce: X-Y AutoGen vs X-Y Chain (512x512)",
			Paper: 2.54,
			Ours:  maxRatio(fig13bModel, "xy-chain", "xy-autogen"),
			Basis: "model at paper scale, Figure 13b",
		},
		{
			Name:  "2D Reduce: X-Y TwoPhase vs X-Y Chain (512x512)",
			Paper: 3.32,
			Ours:  maxRatio(fig13aModel, "xy-chain", "xy-twophase"),
			Basis: "model at paper scale, §1.3 claim",
		},
		{
			Name:  "2D AllReduce: X-Y TwoPhase vs X-Y Chain (512x512)",
			Paper: 2.56,
			Ours:  maxRatio(fig13bModel, "xy-chain", "xy-twophase"),
			Basis: "model at paper scale, §1.3 claim",
		},
	}
}

// RenderHeadline formats the claims as an aligned table.
func RenderHeadline(claims []HeadlineClaim) string {
	var b strings.Builder
	b.WriteString("headline speedups (paper vs this reproduction)\n")
	for _, c := range claims {
		fmt.Fprintf(&b, "  %-52s paper %.2fx  ours %.2fx  (%s)\n", c.Name, c.Paper, c.Ours, c.Basis)
	}
	return b.String()
}
