package experiments

import (
	"math"
	"testing"
)

// TestFig1MatchesPublishedCells compares our regenerated Figure 1 against
// the cell values printed in the paper's Figure 1 heatmaps (512×1 row and
// 4×1 row of each sub-figure). The reproduction matches the published
// numbers to within rounding of the displayed single decimal — the model,
// the Auto-Gen DP and the lower-bound DP together reproduce the paper's
// analytical artifact exactly.
func TestFig1MatchesPublishedCells(t *testing.T) {
	maps := Fig1()
	byName := map[string]*Heatmap{}
	for _, h := range maps {
		byName[h.ID[len("fig1-"):]] = h
	}
	// Published rows, vector length 4 B .. 32 KB.
	published := map[string]map[int][]float64{
		"star": {
			512: {1.5, 2.0, 3.9, 7.7, 14.9, 28.2, 50.8, 84.8, 127.3, 170.0, 204.2, 227.1, 292.2, 371.8},
			4:   {1.0, 1.1, 1.2, 1.4, 1.6, 2.0, 2.4, 2.7, 2.8, 2.9, 3.0, 3.0, 3.0, 3.0},
		},
		"chain": {
			512: {5.9, 5.9, 5.9, 5.8, 5.6, 5.3, 4.9, 4.1, 3.2, 2.3, 1.6, 1.1, 1.0, 1.0},
			4:   {2.0, 1.8, 1.5, 1.2, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0},
		},
		"tree": {
			512: {1.1, 1.1, 1.1, 1.1, 1.1, 1.2, 1.3, 1.6, 2.3, 3.0, 3.6, 4.0, 5.2, 6.6},
			4:   {1.5, 1.4, 1.2, 1.2, 1.2, 1.5, 1.7, 1.8, 1.9, 2.0, 2.0, 2.0, 2.0, 2.0},
		},
		"twophase": {
			512: {1.4, 1.4, 1.4, 1.4, 1.4, 1.4, 1.3, 1.3, 1.2, 1.1, 1.1, 1.0, 1.2, 1.5},
		},
		"autogen": {
			512: {1.0, 1.0, 1.1, 1.1, 1.1, 1.1, 1.2, 1.2, 1.1, 1.1, 1.0, 1.0, 1.0, 1.0},
		},
	}
	rowIndex := map[int]int{}
	for i, p := range byName["star"].Rows {
		rowIndex[p] = i
	}
	for name, rows := range published {
		h := byName[name]
		if h == nil {
			t.Fatalf("missing heatmap %q", name)
		}
		for p, want := range rows {
			row := h.Cells[rowIndex[p]]
			for j := range want {
				// The paper prints one decimal; allow rounding slack plus
				// a small margin for ceil/float differences.
				if d := math.Abs(row[j] - want[j]); d > 0.06+0.01*want[j] {
					t.Errorf("%s row %d col %d: got %.2f, paper shows %.1f", name, p, j, row[j], want[j])
				}
			}
		}
	}
}
