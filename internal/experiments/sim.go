package experiments

import (
	"math"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/measure"
	"repro/internal/mesh"
)

// Config governs the simulated ("measured") experiments.
type Config struct {
	// Opt parameterises the fabric. The default enables per-PE clock skew
	// so the §8.3 calibration has real work to do.
	Opt fabric.Options
	// Calibrate selects the §8.3 measurement harness (trigger broadcast,
	// α-calibrated staggered starts, calibrated clocks). When false the
	// raw synchronous-start cycle count of the simulator is used.
	Calibrate bool
	// P1D is the row length of the Figure 11 sweeps (the paper uses 512,
	// the largest power-of-two row).
	P1D int
	// Bs are the vector lengths (in wavelets) of the B sweeps.
	Bs []int
	// FixedB is the vector length of the PE-count sweeps (Figure 12 and
	// 13c use 1 KB = 256 wavelets).
	FixedB int
	// Ps are the PE counts of the Figure 12 sweeps.
	Ps []int
	// Side2D is the square grid side for the measured Figure 13 a/b runs.
	// The paper measures 512×512 on hardware; simulating 262k PEs
	// cycle-by-cycle is infeasible, so measured runs use this side and
	// the model covers 512 (see EXPERIMENTS.md).
	Side2D int
	// Sides2D are the measured grid sides of the Figure 13c sweep.
	Sides2D []int
	// StarBCap caps the vector length of measured Star runs: Star's
	// simulation work is its energy Θ(B·P²), which dominates everything
	// else in the sweep. Predictions still cover all B.
	StarBCap int
}

// Quick returns the configuration used by tests and the default bench
// harness: full 1D scale with a thinned B grid, 2D at 16×16.
func Quick() Config {
	return Config{
		Opt:       fabric.Options{ClockSkewMax: 1024, Seed: 7},
		Calibrate: true,
		P1D:       512,
		Bs:        []int{1, 4, 16, 64, 256, 1024},
		FixedB:    256,
		Ps:        PowersOfTwo(4, 512),
		Side2D:    16,
		Sides2D:   []int{4, 8, 16},
		StarBCap:  256,
	}
}

// Full returns the paper-scale configuration (used by cmd/wsefigures
// -full): the complete B grid 4 B..16 KB and 2D measurements at 64×64.
func Full() Config {
	return Config{
		Opt:       fabric.Options{ClockSkewMax: 1024, Seed: 7},
		Calibrate: true,
		P1D:       512,
		Bs:        PowersOfTwo(1, 4096),
		FixedB:    256,
		Ps:        PowersOfTwo(4, 512),
		Side2D:    64,
		Sides2D:   []int{4, 8, 16, 32, 64},
		StarBCap:  4096,
	}
}

// onesInit fills every programmed PE with a constant vector so measured
// runs also validate the reduction result.
func onesInit(spec *fabric.Spec, b int) {
	for _, pe := range spec.PEs {
		if pe.Init == nil {
			pe.Init = make([]float32, b)
			for i := range pe.Init {
				pe.Init[i] = 1
			}
		}
	}
}

// runMeasured executes one collective and returns its measured cycles.
func (cfg Config) runMeasured(width, height int, build func(*fabric.Spec) error) (float64, error) {
	col := measure.Collective{Width: width, Height: height, Build: build}
	if cfg.Calibrate {
		res, err := measure.Measure(col, cfg.Opt, measure.Config{})
		if err != nil {
			return math.NaN(), err
		}
		return float64(res.Cycles), nil
	}
	spec := fabric.NewSpec(width, height)
	if err := build(spec); err != nil {
		return math.NaN(), err
	}
	f, err := fabric.New(spec, cfg.Opt)
	if err != nil {
		return math.NaN(), err
	}
	res, err := f.Run()
	if err != nil {
		return math.NaN(), err
	}
	return float64(res.Cycles), nil
}

func (cfg Config) tr() int { return core.Params(cfg.Opt).TR }

// measureReduce1D runs one measured 1D Reduce point.
func (cfg Config) measureReduce1D(pattern core.Pattern, p, b int) (float64, error) {
	return cfg.runMeasured(p, 1, func(spec *fabric.Spec) error {
		if err := core.BuildReduce1DInto(spec, pattern, p, b, cfg.tr(), fabric.OpSum); err != nil {
			return err
		}
		onesInit(spec, b)
		return nil
	})
}

// measureAllReduce1D runs one measured 1D AllReduce point.
func (cfg Config) measureAllReduce1D(pattern core.Pattern, p, b int) (float64, error) {
	return cfg.runMeasured(p, 1, func(spec *fabric.Spec) error {
		if err := core.BuildAllReduce1DInto(spec, pattern, p, b, cfg.tr(), fabric.OpSum); err != nil {
			return err
		}
		onesInit(spec, b)
		return nil
	})
}

// measureBroadcast1D runs one measured 1D Broadcast point.
func (cfg Config) measureBroadcast1D(p, b int) (float64, error) {
	return cfg.runMeasured(p, 1, func(spec *fabric.Spec) error {
		path := mesh.Row(0, 0, p)
		if err := buildBroadcastInto(spec, path, b); err != nil {
			return err
		}
		onesInit(spec, b)
		return nil
	})
}

// buildBroadcastInto compiles a flooding broadcast along a path.
func buildBroadcastInto(spec *fabric.Spec, path mesh.Path, b int) error {
	for _, c := range path {
		spec.PE(c)
	}
	return comm.BuildBroadcast(spec, path, b, comm.ColorBcast)
}

// measureReduce2D runs one measured 2D Reduce point on a side×side grid.
func (cfg Config) measureReduce2D(pattern core.Pattern2D, side, b int) (float64, error) {
	return cfg.runMeasured(side, side, func(spec *fabric.Spec) error {
		if err := core.BuildReduce2DInto(spec, pattern, side, side, b, cfg.tr(), fabric.OpSum); err != nil {
			return err
		}
		onesInit(spec, b)
		return nil
	})
}

// measureAllReduce2D runs one measured 2D AllReduce point.
func (cfg Config) measureAllReduce2D(pattern core.Pattern2D, side, b int) (float64, error) {
	return cfg.runMeasured(side, side, func(spec *fabric.Spec) error {
		if err := core.BuildAllReduce2DInto(spec, pattern, side, side, b, cfg.tr(), fabric.OpSum); err != nil {
			return err
		}
		onesInit(spec, b)
		return nil
	})
}
