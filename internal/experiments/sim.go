package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/measure"
	"repro/internal/plan"
)

// Config governs the simulated ("measured") experiments.
type Config struct {
	// Opt parameterises the fabric. The default enables per-PE clock skew
	// so the §8.3 calibration has real work to do.
	Opt fabric.Options
	// Calibrate selects the §8.3 measurement harness (trigger broadcast,
	// α-calibrated staggered starts, calibrated clocks). When false the
	// raw synchronous-start cycle count of the simulator is used.
	Calibrate bool
	// P1D is the row length of the Figure 11 sweeps (the paper uses 512,
	// the largest power-of-two row).
	P1D int
	// Bs are the vector lengths (in wavelets) of the B sweeps.
	Bs []int
	// FixedB is the vector length of the PE-count sweeps (Figure 12 and
	// 13c use 1 KB = 256 wavelets).
	FixedB int
	// Ps are the PE counts of the Figure 12 sweeps.
	Ps []int
	// Side2D is the square grid side for the measured Figure 13 a/b runs.
	// The paper measures 512×512 on hardware; simulating 262k PEs
	// cycle-by-cycle is infeasible, so measured runs use this side and
	// the model covers 512 (see EXPERIMENTS.md).
	Side2D int
	// Sides2D are the measured grid sides of the Figure 13c sweep.
	Sides2D []int
	// StarBCap caps the vector length of measured Star runs: Star's
	// simulation work is its energy Θ(B·P²), which dominates everything
	// else in the sweep. Predictions still cover all B.
	StarBCap int
	// Shards, when > 1, runs every measured fabric simulation on the
	// sharded engine with that many row bands. Results are bit-identical
	// to serial runs (the engine guarantees it); sharding exists to make
	// wide 2D grids — up to the paper's 512×512 — wall-clock feasible.
	Shards int
}

// opt returns the fabric options of a measured run with the sharding
// knob applied.
func (cfg Config) opt() fabric.Options {
	o := cfg.Opt
	if cfg.Shards > 1 {
		o.Shards = cfg.Shards
	}
	return o
}

// Quick returns the configuration used by tests and the default bench
// harness: full 1D scale with a thinned B grid, 2D at 16×16.
func Quick() Config {
	return Config{
		Opt:       fabric.Options{ClockSkewMax: 1024, Seed: 7},
		Calibrate: true,
		P1D:       512,
		Bs:        []int{1, 4, 16, 64, 256, 1024},
		FixedB:    256,
		Ps:        PowersOfTwo(4, 512),
		Side2D:    16,
		Sides2D:   []int{4, 8, 16},
		StarBCap:  256,
	}
}

// Full returns the paper-scale configuration (used by cmd/wsefigures
// -full): the complete B grid 4 B..16 KB and 2D measurements at 64×64.
func Full() Config {
	return Config{
		Opt:       fabric.Options{ClockSkewMax: 1024, Seed: 7},
		Calibrate: true,
		P1D:       512,
		Bs:        PowersOfTwo(1, 4096),
		FixedB:    256,
		Ps:        PowersOfTwo(4, 512),
		Side2D:    64,
		Sides2D:   []int{4, 8, 16, 32, 64},
		StarBCap:  4096,
	}
}

// onesInit fills every programmed PE with a constant vector so measured
// runs also validate the reduction result.
func onesInit(spec *fabric.Spec, b int) {
	for _, pe := range spec.PEs {
		if pe.Init == nil {
			pe.Init = make([]float32, b)
			for i := range pe.Init {
				pe.Init[i] = 1
			}
		}
	}
}

// planSess is the shared compiled-plan session of the harness. The
// figure sweeps revisit shapes (and the §8.3 calibration loop re-runs
// each point for up to 8 values of α), so compiling each point once and
// replaying the cached plan removes the per-run lowering cost.
var planSess = plan.NewSession(512, 0)

// runPlanned executes one collective point through the plan cache and
// returns its measured cycles. Calibrated runs stamp the cached program
// into a fresh spec for the measurement instrumenter to rewrite;
// uncalibrated runs replay the plan directly.
func (cfg Config) runPlanned(req plan.Request) (float64, error) {
	req.Opt = cfg.opt()
	pl, err := planSess.Plan(req)
	if err != nil {
		return math.NaN(), err
	}
	if cfg.Calibrate {
		col := measure.Collective{
			Width:  pl.Spec.Width,
			Height: pl.Spec.Height,
			Build: func(spec *fabric.Spec) error {
				if err := pl.Stamp(spec); err != nil {
					return err
				}
				onesInit(spec, req.B)
				return nil
			},
		}
		res, err := measure.Measure(col, cfg.opt(), measure.Config{})
		if err != nil {
			return math.NaN(), err
		}
		return float64(res.Cycles), nil
	}
	rep, err := planSess.Run(req, onesInputs(req))
	if err != nil {
		return math.NaN(), err
	}
	return float64(rep.Cycles), nil
}

// onesInputs builds the all-ones input vectors of a request.
func onesInputs(req plan.Request) [][]float32 {
	n := req.P
	switch req.Kind {
	case plan.Broadcast1D, plan.Broadcast2D:
		n = 1
	case plan.Reduce2D, plan.AllReduce2D:
		n = req.Width * req.Height
	}
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, req.B)
		for j := range v {
			v[j] = 1
		}
		out[i] = v
	}
	return out
}

func (cfg Config) tr() int { return core.Params(cfg.Opt).TR }

// measureReduce1D runs one measured 1D Reduce point.
func (cfg Config) measureReduce1D(pattern core.Pattern, p, b int) (float64, error) {
	return cfg.runPlanned(plan.Request{Kind: plan.Reduce1D, Alg: pattern, P: p, B: b, Op: fabric.OpSum})
}

// measureAllReduce1D runs one measured 1D AllReduce point.
func (cfg Config) measureAllReduce1D(pattern core.Pattern, p, b int) (float64, error) {
	return cfg.runPlanned(plan.Request{Kind: plan.AllReduce1D, Alg: pattern, P: p, B: b, Op: fabric.OpSum})
}

// measureBroadcast1D runs one measured 1D Broadcast point.
func (cfg Config) measureBroadcast1D(p, b int) (float64, error) {
	return cfg.runPlanned(plan.Request{Kind: plan.Broadcast1D, P: p, B: b})
}

// measureReduce2D runs one measured 2D Reduce point on a side×side grid.
func (cfg Config) measureReduce2D(pattern core.Pattern2D, side, b int) (float64, error) {
	return cfg.runPlanned(plan.Request{Kind: plan.Reduce2D, Alg2D: pattern, Width: side, Height: side, B: b, Op: fabric.OpSum})
}

// measureAllReduce2D runs one measured 2D AllReduce point.
func (cfg Config) measureAllReduce2D(pattern core.Pattern2D, side, b int) (float64, error) {
	return cfg.runPlanned(plan.Request{Kind: plan.AllReduce2D, Alg2D: pattern, Width: side, Height: side, B: b, Op: fabric.OpSum})
}
