package experiments

import (
	"math"

	"repro/internal/core"
	"repro/internal/model"
)

// seriesPatterns are the measured 1D patterns in the paper's legend
// order; chain is the vendor baseline.
var seriesPatterns = []core.Pattern{core.Star, core.Chain, core.Tree, core.TwoPhase, core.AutoGen}

// Fig11a regenerates Figure 11a: 1D Broadcast on a row of P1D PEs with
// increasing vector length, measured (simulator, §8.3 harness) against
// the model prediction of Lemma 4.1.
func (cfg Config) Fig11a() (*Figure, error) {
	pr := model.Params{TR: cfg.tr()}
	s := Series{Name: "broadcast"}
	for _, b := range cfg.Bs {
		m, err := cfg.measureBroadcast1D(cfg.P1D, b)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{X: 4 * b, Measured: m, Predicted: pr.Broadcast1D(cfg.P1D, b)})
	}
	return &Figure{
		ID:     "fig11a",
		Title:  "1D Broadcast, 512x1 PEs, increasing vector length",
		XLabel: "bytes",
		Series: []Series{s},
	}, nil
}

// Fig11b regenerates Figure 11b: 1D Reduce for every pattern on P1D PEs
// with increasing vector length. Star measurements above StarBCap are
// skipped (prediction only); Star's simulation cost is its energy
// Θ(B·P²).
func (cfg Config) Fig11b() (*Figure, error) {
	fig := &Figure{
		ID:     "fig11b",
		Title:  "1D Reduce, 512x1 PEs, increasing vector length (measured/predicted cycles)",
		XLabel: "bytes",
	}
	for _, pat := range seriesPatterns {
		s := Series{Name: string(pat)}
		for _, b := range cfg.Bs {
			pt := Point{
				X:         4 * b,
				Measured:  math.NaN(),
				Predicted: core.PredictReduce1D(pat, cfg.P1D, b, cfg.tr()),
			}
			if pat != core.Star || b <= cfg.StarBCap {
				m, err := cfg.measureReduce1D(pat, cfg.P1D, b)
				if err != nil {
					return nil, err
				}
				pt.Measured = m
			}
			s.Points = append(s.Points, pt)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig11c regenerates Figure 11c: 1D AllReduce for every pattern
// (reduce-then-broadcast) plus the predicted-only Ring and Butterfly
// curves; exactly as in the paper, ring and butterfly are modelled but
// not implemented because the model shows they never win (§8.6).
func (cfg Config) Fig11c() (*Figure, error) {
	fig := &Figure{
		ID:     "fig11c",
		Title:  "1D AllReduce, 512x1 PEs, increasing vector length (measured/predicted cycles)",
		XLabel: "bytes",
		Notes: []string{
			"ring and butterfly are model-only, as in the paper (§8.6: the model shows they never win, saving the engineering effort)",
		},
	}
	pr := model.Params{TR: cfg.tr()}
	for _, pat := range seriesPatterns {
		s := Series{Name: string(pat) + "+bcast"}
		for _, b := range cfg.Bs {
			pt := Point{
				X:         4 * b,
				Measured:  math.NaN(),
				Predicted: core.PredictAllReduce1D(pat, cfg.P1D, b, cfg.tr()),
			}
			if pat != core.Star || b <= cfg.StarBCap {
				m, err := cfg.measureAllReduce1D(pat, cfg.P1D, b)
				if err != nil {
					return nil, err
				}
				pt.Measured = m
			}
			s.Points = append(s.Points, pt)
		}
		fig.Series = append(fig.Series, s)
	}
	ring := Series{Name: "ring(model)"}
	butterfly := Series{Name: "butterfly(model)"}
	for _, b := range cfg.Bs {
		ring.Points = append(ring.Points, Point{X: 4 * b, Measured: math.NaN(), Predicted: pr.RingAllReduce(cfg.P1D, b)})
		butterfly.Points = append(butterfly.Points, Point{X: 4 * b, Measured: math.NaN(), Predicted: pr.ButterflyAllReduce(cfg.P1D, b)})
	}
	fig.Series = append(fig.Series, ring, butterfly)
	return fig, nil
}
