package experiments

import (
	"repro/internal/autogen"
	"repro/internal/core"
	"repro/internal/model"
)

// Fig8 computes the 1D AllReduce region map of Figure 8: for every (P, B)
// combination, the best fixed algorithm (each Reduce pattern followed by
// the flooding broadcast, plus the ring) and its speedup over Chain+Bcast,
// the vendor's choice.
func Fig8() *Heatmap {
	ps := PowersOfTwo(4, 512)
	bytesCols := PowersOfTwo(4, 1<<20) // up to 1 MB to expose the ring region
	pr := model.Default()
	h := &Heatmap{
		ID:       "fig8",
		Title:    "1D AllReduce: speedup of best fixed algorithm over Chain+Bcast (vendor)",
		RowLabel: "PEs",
		ColLabel: "bytes",
		Rows:     ps,
		Cols:     bytesCols,
		Cells:    make([][]float64, len(ps)),
		Regions:  make([][]string, len(ps)),
		Notes: []string{
			"regions: reduce-then-broadcast per pattern, plus the analytic ring model (Lemma 6.1)",
			"the ring is modelled but, as in the paper (§8.6), never implemented: it only wins for tiny PE counts with huge vectors",
		},
	}
	for i, p := range ps {
		h.Cells[i] = make([]float64, len(bytesCols))
		h.Regions[i] = make([]string, len(bytesCols))
		for j, bytes := range bytesCols {
			b := bytes / 4
			vendor := pr.AllReduce1D("chain", p, b)
			bestName, bestT := "", 0.0
			for _, name := range model.ReduceNames {
				if t := pr.AllReduce1D(name, p, b); bestName == "" || t < bestT {
					bestName, bestT = name+"+bcast", t
				}
			}
			if t := pr.RingAllReduce(p, b); t < bestT {
				bestName, bestT = "ring", t
			}
			h.Cells[i][j] = vendor / bestT
			h.Regions[i][j] = bestName
		}
	}
	return h
}

// Fig8AutoGen computes the same map with Auto-Gen included, showing the
// speedup the paper's generated collectives achieve over the vendor
// baseline across the whole plane.
func Fig8AutoGen() *Heatmap {
	ps := PowersOfTwo(4, 512)
	bytesCols := PowersOfTwo(4, 1<<20)
	pr := model.Default()
	ag := autogen.For(512)
	h := &Heatmap{
		ID:       "fig8-autogen",
		Title:    "1D AllReduce: speedup of AutoGen+Bcast over Chain+Bcast (vendor)",
		RowLabel: "PEs",
		ColLabel: "bytes",
		Rows:     ps,
		Cols:     bytesCols,
		Cells:    make([][]float64, len(ps)),
	}
	for i, p := range ps {
		h.Cells[i] = make([]float64, len(bytesCols))
		for j, bytes := range bytesCols {
			b := bytes / 4
			vendor := pr.AllReduce1D("chain", p, b)
			auto := ag.Time(p, b, pr.TR) + pr.Broadcast1D(p, b)
			h.Cells[i][j] = vendor / auto
		}
	}
	return h
}

// BestAllReduce1D returns the model's pick among the fixed patterns and
// ring for one shape (the decision procedure behind Figure 8).
func BestAllReduce1D(p, b int) (string, float64) {
	pr := model.Default()
	bestName, bestT := "", 0.0
	for _, name := range model.ReduceNames {
		if t := pr.AllReduce1D(name, p, b); bestName == "" || t < bestT {
			bestName, bestT = name+"+bcast", t
		}
	}
	if t := pr.RingAllReduce(p, b); t < bestT {
		bestName, bestT = "ring", t
	}
	if t := core.PredictAllReduce1D(core.AutoGen, p, b, pr.TR); t < bestT {
		bestName, bestT = "autogen+bcast", t
	}
	return bestName, bestT
}
