package experiments

import (
	"fmt"

	"repro/internal/autogen"
	"repro/internal/lowerbound"
	"repro/internal/model"
)

// Fig1Patterns are the five sub-figures of Figure 1, in the paper's order.
var Fig1Patterns = []string{"star", "chain", "tree", "twophase", "autogen"}

// Fig1 computes the optimality-ratio heatmaps of Figure 1: each 1D Reduce
// algorithm's model-predicted runtime divided by the lower bound T*(P,B),
// over P ∈ {4..512} PEs and vector lengths 4 B..32 KB (1..8192 wavelets).
// Star uses the Lemma 5.1 form (see model.StarReduceUpper), matching the
// paper's figure.
func Fig1() []*Heatmap {
	ps := PowersOfTwo(4, 512)
	bytesCols := PowersOfTwo(4, 32768)
	pr := model.Default()
	lb := lowerbound.For(512)
	ag := autogen.For(512)
	var maps []*Heatmap
	for _, pattern := range Fig1Patterns {
		h := &Heatmap{
			ID:       "fig1-" + pattern,
			Title:    fmt.Sprintf("optimality ratio of %s 1D Reduce (1.0 = matches lower bound)", pattern),
			RowLabel: "PEs",
			ColLabel: "bytes",
			Rows:     ps,
			Cols:     bytesCols,
			Cells:    make([][]float64, len(ps)),
		}
		for i, p := range ps {
			h.Cells[i] = make([]float64, len(bytesCols))
			for j, bytes := range bytesCols {
				b := bytes / 4 // 32-bit wavelets
				bound := lb.Time(p, b, pr.TR)
				var t float64
				switch pattern {
				case "star":
					t = pr.StarReduceUpper(p, b)
				case "autogen":
					t = ag.Time(p, b, pr.TR)
				default:
					t = pr.Reduce1D(pattern, p, b)
				}
				h.Cells[i][j] = t / bound
			}
		}
		maps = append(maps, h)
	}
	return maps
}

// Fig1Summary extracts the §5.7 claims from the computed heatmaps: the
// worst ratio per algorithm.
func Fig1Summary(maps []*Heatmap) map[string]float64 {
	out := make(map[string]float64, len(maps))
	for _, h := range maps {
		name := h.ID[len("fig1-"):]
		out[name] = h.Max()
	}
	return out
}
