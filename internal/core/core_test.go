package core

import (
	"math"
	"testing"

	"repro/internal/fabric"
	"repro/internal/model"
)

func TestTreeForAllPatterns(t *testing.T) {
	for _, pat := range Patterns1D {
		for _, p := range []int{1, 2, 7, 64} {
			tr, err := TreeFor(pat, p, 32, fabric.DefaultTR)
			if err != nil {
				t.Fatalf("%s p=%d: %v", pat, p, err)
			}
			if tr.Len() != p {
				t.Errorf("%s p=%d: %d vertices", pat, p, tr.Len())
			}
			if err := tr.Validate(); err != nil {
				t.Errorf("%s p=%d: %v", pat, p, err)
			}
		}
	}
	if _, err := TreeFor("nonsense", 8, 1, 2); err == nil {
		t.Error("unknown pattern accepted")
	}
	if _, err := TreeFor(Ring, 8, 32, 2); err == nil {
		t.Error("ring must not have a reduction tree")
	}
}

func TestAutoSelectsModelWinner(t *testing.T) {
	for _, tc := range []struct {
		p, b int
	}{{512, 1}, {512, 4096}, {16, 16}, {64, 256}} {
		best, bestT := BestReduce1D(tc.p, tc.b, fabric.DefaultTR)
		for _, pat := range Patterns1D {
			if v := PredictReduce1D(pat, tc.p, tc.b, fabric.DefaultTR); v < bestT-1e-9 {
				t.Errorf("p=%d b=%d: %s (%v) beats selected %s (%v)", tc.p, tc.b, pat, v, best, bestT)
			}
		}
	}
}

func TestAutoSelectionRegimes(t *testing.T) {
	// §5.7: star-like at scalars, chain at huge vectors.
	tr := fabric.DefaultTR
	if best, _ := BestReduce1D(512, 1<<20, tr); best != Chain && best != AutoGen {
		t.Errorf("huge-B winner %s", best)
	}
	// AutoGen never loses by construction; a concrete named pattern must
	// be within its own region prediction.
	if v := PredictReduce1D(AutoGen, 512, 256, tr); v > PredictReduce1D(TwoPhase, 512, 256, tr) {
		t.Error("autogen worse than twophase at its home shape")
	}
}

func TestParamsResolution(t *testing.T) {
	if Params(fabric.Options{}).TR != fabric.DefaultTR {
		t.Error("zero options should give the WSE-2 ramp latency")
	}
	if Params(fabric.Options{TR: -1}).TR != 0 {
		t.Error("negative TR should resolve to zero")
	}
	if Params(fabric.Options{TR: 5}).TR != 5 {
		t.Error("explicit TR ignored")
	}
}

func TestPredict2DConsistency(t *testing.T) {
	pr := model.Default()
	// X-Y composition equals two 1D reduces.
	got := PredictReduce2D(XYTwoPhase, 32, 16, 64, pr.TR)
	want := PredictReduce1D(TwoPhase, 32, 64, pr.TR) + PredictReduce1D(TwoPhase, 16, 64, pr.TR)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("xy composition %v != %v", got, want)
	}
	// Snake equals chain over the whole grid.
	if PredictReduce2D(Snake, 8, 4, 64, pr.TR) != pr.ChainReduce(32, 64) {
		t.Error("snake prediction mismatch")
	}
	// Best2D never worse than any candidate.
	_, bestT := BestReduce2D(64, 64, 256, pr.TR)
	for _, pat := range Patterns2D {
		if v := PredictReduce2D(pat, 64, 64, 256, pr.TR); v < bestT-1e-9 {
			t.Errorf("%s (%v) beats selected (%v)", pat, v, bestT)
		}
	}
}

func TestRunInputValidation(t *testing.T) {
	if _, err := RunReduce1D(Chain, nil, fabric.OpSum, fabric.Options{}); err == nil {
		t.Error("nil vectors accepted")
	}
	if _, err := RunReduce1D(Chain, [][]float32{{1, 2}, {3}}, fabric.OpSum, fabric.Options{}); err == nil {
		t.Error("ragged vectors accepted")
	}
	if _, err := RunReduce1D(Chain, [][]float32{{}}, fabric.OpSum, fabric.Options{}); err == nil {
		t.Error("empty vectors accepted")
	}
	if _, err := RunReduce2D(XYChain, 2, 2, [][]float32{{1}}, fabric.OpSum, fabric.Options{}); err == nil {
		t.Error("wrong grid vector count accepted")
	}
	if _, err := RunScatter([]float32{1, 2}, 1, fabric.Options{}); err == nil {
		t.Error("1-PE scatter accepted")
	}
	if _, err := RunGather([][]float32{{1}, {2, 3}}, fabric.Options{}); err == nil {
		t.Error("misshapen gather chunks accepted")
	}
}

func TestSinglePECollectives(t *testing.T) {
	rep, err := RunReduce1D(Auto, [][]float32{{4, 5}}, fabric.OpSum, fabric.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Root[0] != 4 || rep.Root[1] != 5 {
		t.Errorf("1-PE reduce result %v", rep.Root)
	}
	if rep.Cycles != 0 {
		t.Errorf("1-PE reduce took %d cycles", rep.Cycles)
	}
	rb, err := RunBroadcast1D([]float32{7}, 1, fabric.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Root[0] != 7 {
		t.Errorf("1-PE broadcast result %v", rb.Root)
	}
}

func TestReportStats(t *testing.T) {
	vecs := make([][]float32, 16)
	for i := range vecs {
		vecs[i] = []float32{1, 1, 1, 1}
	}
	rep, err := RunReduce1D(Star, vecs, fabric.OpSum, fabric.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Star energy: (b+1 wavelets) × Σ distance i = 5 × 120.
	if rep.Stats.Hops != 5*120 {
		t.Errorf("energy %d, want %d", rep.Stats.Hops, 5*120)
	}
	if rep.Stats.MaxReceived != 4*15 {
		t.Errorf("contention %d, want %d", rep.Stats.MaxReceived, 60)
	}
	if rep.Predicted <= 0 || rep.Cycles <= 0 {
		t.Error("missing prediction or cycles")
	}
}
