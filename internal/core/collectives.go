package core

// Extension collectives beyond the paper's Reduce/AllReduce/Broadcast
// set: Scatter, Gather, ReduceScatter, AllGather (chunked, ring-based)
// and the middle-root AllReduce of §6.1's root-placement remark. They
// complete the MPI-style collective suite on the same fabric substrate.
//
// Each collective is split into a Build*Into compile half (program and
// routing tables only, no initial data) and a Run* convenience that
// compiles, binds inputs and executes. The plan subsystem caches the
// output of the compile half and replays it.

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/fabric"
	"repro/internal/mesh"
)

// ScatterColor is the dedicated color of the scatter/gather streams.
const scatterColor mesh.Color = 5

// Chunks returns the balanced chunk offsets and sizes used by Scatter,
// Gather, ReduceScatter and AllGather: chunk j belongs to PE j.
func Chunks(p, b int) (off, sz []int) { return comm.Chunks(p, b) }

// BuildScatterInto compiles a chunked scatter of b elements over a row of
// p PEs into spec; the caller sets Init on the root afterwards.
func BuildScatterInto(spec *fabric.Spec, p, b int) error {
	if p < 2 {
		return fmt.Errorf("core: scatter needs at least 2 PEs")
	}
	return comm.BuildScatter(spec, mesh.Row(0, 0, p), b, scatterColor)
}

// RunScatter delivers chunk j of data to PE j along a row of p PEs
// (chunk 0 stays at the root). Report.All[pe] holds each PE's chunk.
func RunScatter(data []float32, p int, opt fabric.Options) (*Report, error) {
	spec := fabric.NewSpec(p, 1)
	if err := BuildScatterInto(spec, p, len(data)); err != nil {
		return nil, err
	}
	spec.PE(mesh.Coord{}).Init = data
	return ExecSpec(spec, opt, Params(opt).Scatter(p, len(data)))
}

// BuildGatherInto compiles a chunked gather of b total elements over a
// row of p PEs into spec.
func BuildGatherInto(spec *fabric.Spec, p, b int) error {
	if p < 2 {
		return fmt.Errorf("core: gather needs at least 2 PEs")
	}
	return comm.BuildGather(spec, mesh.Row(0, 0, p), b, scatterColor)
}

// CheckChunks validates per-PE chunk lengths against the balanced layout
// of Chunks and returns the total element count.
func CheckChunks(chunks [][]float32) (int, error) {
	p := len(chunks)
	b := 0
	for _, c := range chunks {
		b += len(c)
	}
	_, sz := comm.Chunks(p, b)
	for j, c := range chunks {
		if len(c) != sz[j] {
			return 0, fmt.Errorf("core: chunk %d has %d elements, want %d", j, len(c), sz[j])
		}
	}
	return b, nil
}

// RunGather assembles per-PE chunks into the full vector at the root.
// chunks[j] is PE j's contribution; sizes must follow Chunks.
func RunGather(chunks [][]float32, opt fabric.Options) (*Report, error) {
	p := len(chunks)
	if p < 2 {
		return nil, fmt.Errorf("core: gather needs at least 2 PEs")
	}
	b, err := CheckChunks(chunks)
	if err != nil {
		return nil, err
	}
	spec := fabric.NewSpec(p, 1)
	if err := BuildGatherInto(spec, p, b); err != nil {
		return nil, err
	}
	for j, c := range mesh.Row(0, 0, p) {
		spec.PE(c).Init = chunks[j]
	}
	return ExecSpec(spec, opt, Params(opt).Gather(p, b))
}

// BuildReduceScatterInto compiles a ring reduce-scatter of b elements
// over a row of p PEs into spec.
func BuildReduceScatterInto(spec *fabric.Spec, p, b int, op fabric.ReduceOp) error {
	if p < 2 {
		return fmt.Errorf("core: reduce-scatter needs at least 2 PEs")
	}
	return comm.BuildReduceScatter(spec, mesh.Row(0, 0, p), b, comm.RingSimple, op)
}

// RunReduceScatter combines one vector per PE elementwise and leaves
// chunk j of the combination on PE j (at its chunk offset within
// Report.All[pe]).
func RunReduceScatter(vectors [][]float32, op fabric.ReduceOp, opt fabric.Options) (*Report, error) {
	b, err := vecLen(vectors)
	if err != nil {
		return nil, err
	}
	p := len(vectors)
	spec := fabric.NewSpec(p, 1)
	if err := BuildReduceScatterInto(spec, p, b, op); err != nil {
		return nil, err
	}
	for i, c := range mesh.Row(0, 0, p) {
		spec.PE(c).Init = vectors[i]
	}
	return ExecSpec(spec, opt, Params(opt).ReduceScatter(p, b))
}

// BuildAllGatherInto compiles a ring allgather of b total elements over a
// row of p PEs into spec.
func BuildAllGatherInto(spec *fabric.Spec, p, b int) error {
	if p < 2 {
		return fmt.Errorf("core: allgather needs at least 2 PEs")
	}
	return comm.BuildAllGather(spec, mesh.Row(0, 0, p), b, comm.RingSimple)
}

// AllGatherInit returns the b-length initial accumulator of a PE for an
// allgather: its chunk placed at its Chunks offset, zeros elsewhere.
func AllGatherInit(chunk []float32, off, b int) []float32 {
	init := make([]float32, b)
	copy(init[off:], chunk)
	return init
}

// RunAllGather distributes per-PE chunks so every PE ends with the full
// vector. chunks[j] is PE j's contribution; sizes must follow Chunks.
func RunAllGather(chunks [][]float32, opt fabric.Options) (*Report, error) {
	p := len(chunks)
	if p < 2 {
		return nil, fmt.Errorf("core: allgather needs at least 2 PEs")
	}
	b, err := CheckChunks(chunks)
	if err != nil {
		return nil, err
	}
	spec := fabric.NewSpec(p, 1)
	if err := BuildAllGatherInto(spec, p, b); err != nil {
		return nil, err
	}
	off, _ := comm.Chunks(p, b)
	for j, c := range mesh.Row(0, 0, p) {
		spec.PE(c).Init = AllGatherInit(chunks[j], off[j], b)
	}
	return ExecSpec(spec, opt, Params(opt).AllGather(p, b))
}

// BuildAllReduceMidRootInto compiles the middle-root AllReduce for a
// concrete pattern (resolve Auto with BestReduce1D(p/2+1, b, tr) first).
func BuildAllReduceMidRootInto(spec *fabric.Spec, pattern Pattern, p, b, tr int, op fabric.ReduceOp) error {
	path := mesh.Row(0, 0, p)
	treeFor := func(n int) (comm.Tree, error) { return TreeFor(pattern, n, b, tr) }
	return comm.BuildAllReduceMidRoot(spec, path, b, treeFor, op)
}

// RunAllReduceMidRoot runs the middle-root AllReduce: both row halves
// reduce into the middle PE concurrently and the result floods out in
// both directions — the root-placement optimisation of §6.1.
func RunAllReduceMidRoot(pattern Pattern, vectors [][]float32, op fabric.ReduceOp, opt fabric.Options) (*Report, error) {
	b, err := vecLen(vectors)
	if err != nil {
		return nil, err
	}
	p := len(vectors)
	tr := Params(opt).TR
	if pattern == Auto {
		pattern, _ = BestReduce1D(p/2+1, b, tr)
	}
	spec := fabric.NewSpec(p, 1)
	if err := BuildAllReduceMidRootInto(spec, pattern, p, b, tr, op); err != nil {
		return nil, err
	}
	for i, c := range mesh.Row(0, 0, p) {
		spec.PE(c).Init = vectors[i]
	}
	return ExecSpec(spec, opt, Params(opt).MidRootAllReduce(string(pattern), p, b))
}
