package core

// Extension collectives beyond the paper's Reduce/AllReduce/Broadcast
// set: Scatter, Gather, ReduceScatter, AllGather (chunked, ring-based)
// and the middle-root AllReduce of §6.1's root-placement remark. They
// complete the MPI-style collective suite on the same fabric substrate.

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/fabric"
	"repro/internal/mesh"
)

// ScatterColor is the dedicated color of the scatter/gather streams.
const scatterColor mesh.Color = 5

// Chunks returns the balanced chunk offsets and sizes used by Scatter,
// Gather, ReduceScatter and AllGather: chunk j belongs to PE j.
func Chunks(p, b int) (off, sz []int) { return comm.Chunks(p, b) }

// RunScatter delivers chunk j of data to PE j along a row of p PEs
// (chunk 0 stays at the root). Report.All[pe] holds each PE's chunk.
func RunScatter(data []float32, p int, opt fabric.Options) (*Report, error) {
	if p < 2 {
		return nil, fmt.Errorf("core: scatter needs at least 2 PEs")
	}
	spec := fabric.NewSpec(p, 1)
	path := mesh.Row(0, 0, p)
	if err := comm.BuildScatter(spec, path, len(data), scatterColor); err != nil {
		return nil, err
	}
	spec.PE(path[0]).Init = data
	res, err := runSpec(spec, opt)
	if err != nil {
		return nil, err
	}
	return report(res, Params(opt).Scatter(p, len(data))), nil
}

// RunGather assembles per-PE chunks into the full vector at the root.
// chunks[j] is PE j's contribution; sizes must follow Chunks.
func RunGather(chunks [][]float32, opt fabric.Options) (*Report, error) {
	p := len(chunks)
	if p < 2 {
		return nil, fmt.Errorf("core: gather needs at least 2 PEs")
	}
	b := 0
	for _, c := range chunks {
		b += len(c)
	}
	_, sz := comm.Chunks(p, b)
	for j, c := range chunks {
		if len(c) != sz[j] {
			return nil, fmt.Errorf("core: chunk %d has %d elements, want %d", j, len(c), sz[j])
		}
	}
	spec := fabric.NewSpec(p, 1)
	path := mesh.Row(0, 0, p)
	if err := comm.BuildGather(spec, path, b, scatterColor); err != nil {
		return nil, err
	}
	for j, c := range path {
		spec.PE(c).Init = chunks[j]
	}
	res, err := runSpec(spec, opt)
	if err != nil {
		return nil, err
	}
	return report(res, Params(opt).Gather(p, b)), nil
}

// RunReduceScatter combines one vector per PE elementwise and leaves
// chunk j of the combination on PE j (at its chunk offset within
// Report.All[pe]).
func RunReduceScatter(vectors [][]float32, op fabric.ReduceOp, opt fabric.Options) (*Report, error) {
	b, err := vecLen(vectors)
	if err != nil {
		return nil, err
	}
	p := len(vectors)
	spec := fabric.NewSpec(p, 1)
	path := mesh.Row(0, 0, p)
	if err := comm.BuildReduceScatter(spec, path, b, comm.RingSimple, op); err != nil {
		return nil, err
	}
	for i, c := range path {
		spec.PE(c).Init = vectors[i]
	}
	res, err := runSpec(spec, opt)
	if err != nil {
		return nil, err
	}
	return report(res, Params(opt).ReduceScatter(p, b)), nil
}

// RunAllGather distributes per-PE chunks so every PE ends with the full
// vector. chunks[j] is PE j's contribution; sizes must follow Chunks.
func RunAllGather(chunks [][]float32, opt fabric.Options) (*Report, error) {
	p := len(chunks)
	if p < 2 {
		return nil, fmt.Errorf("core: allgather needs at least 2 PEs")
	}
	b := 0
	for _, c := range chunks {
		b += len(c)
	}
	off, sz := comm.Chunks(p, b)
	for j, c := range chunks {
		if len(c) != sz[j] {
			return nil, fmt.Errorf("core: chunk %d has %d elements, want %d", j, len(c), sz[j])
		}
	}
	spec := fabric.NewSpec(p, 1)
	path := mesh.Row(0, 0, p)
	if err := comm.BuildAllGather(spec, path, b, comm.RingSimple); err != nil {
		return nil, err
	}
	for j, c := range path {
		init := make([]float32, b)
		copy(init[off[j]:], chunks[j])
		spec.PE(c).Init = init
	}
	res, err := runSpec(spec, opt)
	if err != nil {
		return nil, err
	}
	return report(res, Params(opt).AllGather(p, b)), nil
}

// RunAllReduceMidRoot runs the middle-root AllReduce: both row halves
// reduce into the middle PE concurrently and the result floods out in
// both directions — the root-placement optimisation of §6.1.
func RunAllReduceMidRoot(pattern Pattern, vectors [][]float32, op fabric.ReduceOp, opt fabric.Options) (*Report, error) {
	b, err := vecLen(vectors)
	if err != nil {
		return nil, err
	}
	p := len(vectors)
	tr := Params(opt).TR
	if pattern == Auto {
		pattern, _ = BestReduce1D(p/2+1, b, tr)
	}
	spec := fabric.NewSpec(p, 1)
	path := mesh.Row(0, 0, p)
	treeFor := func(n int) (comm.Tree, error) { return TreeFor(pattern, n, b, tr) }
	if err := comm.BuildAllReduceMidRoot(spec, path, b, treeFor, op); err != nil {
		return nil, err
	}
	for i, c := range path {
		spec.PE(c).Init = vectors[i]
	}
	res, err := runSpec(spec, opt)
	if err != nil {
		return nil, err
	}
	return report(res, Params(opt).MidRootAllReduce(string(pattern), p, b)), nil
}
