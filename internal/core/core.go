// Package core orchestrates the paper's collectives: it maps algorithm
// names to reduction trees, compiles them to fabric programs via comm,
// predicts their runtime with the performance model, and runs them on the
// fabric simulator. The public wse package and the experiment harness are
// thin layers over this package.
package core

import (
	"fmt"

	"repro/internal/autogen"
	"repro/internal/comm"
	"repro/internal/fabric"
	"repro/internal/lowerbound"
	"repro/internal/mesh"
	"repro/internal/model"
)

// Pattern names a 1D Reduce/AllReduce algorithm.
type Pattern string

// The 1D patterns of §5. Auto selects the best pattern (including
// Auto-Gen) for the given P and B using the performance model, which is
// the paper's model-driven deployment mode.
const (
	Star     Pattern = "star"
	Chain    Pattern = "chain" // the vendor's pattern
	Tree     Pattern = "tree"
	TwoPhase Pattern = "twophase"
	AutoGen  Pattern = "autogen"
	Auto     Pattern = "auto"
	// Ring and RingDP are AllReduce-only: the classic ring algorithm
	// (§6.2) in its simple and distance-preserving mappings (Figure 7).
	// The paper models ring and shows it only wins for tiny PE counts
	// with huge vectors, so it skips the implementation; this
	// reproduction implements it to verify that verdict experimentally.
	Ring   Pattern = "ring"
	RingDP Pattern = "ring-dp"
)

// Patterns1D lists the concrete (runnable) 1D patterns.
var Patterns1D = []Pattern{Star, Chain, Tree, TwoPhase, AutoGen}

// Params bundles the model parameterisation used for predictions.
func Params(opt fabric.Options) model.Params {
	tr := opt.TR
	switch {
	case tr == 0:
		tr = fabric.DefaultTR
	case tr < 0:
		tr = 0
	}
	return model.Params{TR: tr}
}

// TreeFor returns the reduction tree of a concrete pattern for p PEs and
// vector length b (b matters only for AutoGen, whose tree is optimised
// per input size, and Auto).
func TreeFor(pattern Pattern, p, b, tr int) (comm.Tree, error) {
	if p < 1 {
		return comm.Tree{}, fmt.Errorf("core: %d PEs", p)
	}
	if p == 1 {
		return comm.Single(), nil
	}
	switch pattern {
	case Star, Chain, Tree, TwoPhase:
		return comm.TreeOf(string(pattern), p)
	case AutoGen:
		return autogen.For(p).Tree(p, b, tr), nil
	case Auto:
		best, _ := BestReduce1D(p, b, tr)
		return TreeFor(best, p, b, tr)
	}
	return comm.Tree{}, fmt.Errorf("core: unknown pattern %q", pattern)
}

// PredictReduce1D returns the model's runtime estimate in cycles.
func PredictReduce1D(pattern Pattern, p, b, tr int) float64 {
	pr := model.Params{TR: tr}
	switch pattern {
	case Star, Chain, Tree, TwoPhase:
		return pr.Reduce1D(string(pattern), p, b)
	case AutoGen:
		return autogen.For(p).Time(p, b, tr)
	case Auto:
		_, t := BestReduce1D(p, b, tr)
		return t
	}
	return 0
}

// PredictAllReduce1D is the Reduce-then-Broadcast estimate, or Lemma
// 6.1's ring estimate for the ring patterns (the model assigns both
// mappings the same cost).
func PredictAllReduce1D(pattern Pattern, p, b, tr int) float64 {
	if pattern == Ring || pattern == RingDP {
		return model.Params{TR: tr}.RingAllReduce(p, b)
	}
	return PredictReduce1D(pattern, p, b, tr) + model.Params{TR: tr}.Broadcast1D(p, b)
}

// BestReduce1D picks the concrete pattern with the lowest predicted
// Reduce runtime, the choice the paper's code generator deploys.
func BestReduce1D(p, b, tr int) (Pattern, float64) {
	best, bestT := AutoGen, PredictReduce1D(AutoGen, p, b, tr)
	for _, pat := range []Pattern{Star, Chain, Tree, TwoPhase} {
		if t := PredictReduce1D(pat, p, b, tr); t < bestT {
			best, bestT = pat, t
		}
	}
	return best, bestT
}

// LowerBound1D is the paper's Reduce runtime lower bound T*(p,b).
func LowerBound1D(p, b, tr int) float64 {
	return lowerbound.For(p).Time(p, b, tr)
}

// Report is the outcome of running a collective on the fabric simulator.
type Report struct {
	// Cycles is the measured simulated runtime.
	Cycles int64
	// Predicted is the performance model's estimate for the same run.
	Predicted float64
	// Root holds the reduction result at the root PE (Reduce) or the
	// vector every PE holds (Broadcast/AllReduce).
	Root []float32
	// All maps every PE to its final accumulator. Columnar replays leave
	// it nil and publish Columnar instead.
	All map[mesh.Coord][]float32
	// Columnar is the map-free per-PE result of a columnar replay (flat
	// accumulator buffer indexed by row-major coordinate order); nil on
	// the default map-shaped path.
	Columnar *fabric.ColumnarResult
	// Stats carries the measured cost metrics (energy, contention, ...).
	Stats fabric.Stats
}

func vecLen(vectors [][]float32) (int, error) {
	if len(vectors) == 0 {
		return 0, fmt.Errorf("core: no input vectors")
	}
	b := len(vectors[0])
	if b == 0 {
		return 0, fmt.Errorf("core: empty vectors")
	}
	for i, v := range vectors {
		if len(v) != b {
			return 0, fmt.Errorf("core: vector %d has length %d, want %d", i, len(v), b)
		}
	}
	return b, nil
}

// BuildReduce1DInto compiles a 1D Reduce for p PEs into spec (a p×1
// region) without initial data; callers set Init per PE afterwards.
func BuildReduce1DInto(spec *fabric.Spec, pattern Pattern, p, b, tr int, op fabric.ReduceOp) error {
	tree, err := TreeFor(pattern, p, b, tr)
	if err != nil {
		return err
	}
	return comm.BuildReduce1D(spec, mesh.Row(0, 0, p), tree, b, op)
}

// BuildAllReduce1DInto compiles a 1D Reduce-then-Broadcast into spec, or
// the ring algorithm for the ring patterns.
func BuildAllReduce1DInto(spec *fabric.Spec, pattern Pattern, p, b, tr int, op fabric.ReduceOp) error {
	switch pattern {
	case Ring:
		return comm.BuildRingAllReduce(spec, mesh.Row(0, 0, p), b, comm.RingSimple, op)
	case RingDP:
		return comm.BuildRingAllReduce(spec, mesh.Row(0, 0, p), b, comm.RingDistancePreserving, op)
	}
	tree, err := TreeFor(pattern, p, b, tr)
	if err != nil {
		return err
	}
	return comm.BuildAllReduce1D(spec, mesh.Row(0, 0, p), tree, b, op)
}

// RunReduce1D reduces one vector per PE along a row of len(vectors) PEs to
// the leftmost PE on the fabric simulator.
func RunReduce1D(pattern Pattern, vectors [][]float32, op fabric.ReduceOp, opt fabric.Options) (*Report, error) {
	b, err := vecLen(vectors)
	if err != nil {
		return nil, err
	}
	p := len(vectors)
	tr := Params(opt).TR
	spec := fabric.NewSpec(p, 1)
	if err := BuildReduce1DInto(spec, pattern, p, b, tr, op); err != nil {
		return nil, err
	}
	for i, c := range mesh.Row(0, 0, p) {
		spec.PE(c).Init = vectors[i]
	}
	return ExecSpec(spec, opt, PredictReduce1D(pattern, p, b, tr))
}

// RunAllReduce1D runs Reduce-then-Broadcast AllReduce along a row.
func RunAllReduce1D(pattern Pattern, vectors [][]float32, op fabric.ReduceOp, opt fabric.Options) (*Report, error) {
	b, err := vecLen(vectors)
	if err != nil {
		return nil, err
	}
	p := len(vectors)
	tr := Params(opt).TR
	spec := fabric.NewSpec(p, 1)
	if err := BuildAllReduce1DInto(spec, pattern, p, b, tr, op); err != nil {
		return nil, err
	}
	for i, c := range mesh.Row(0, 0, p) {
		spec.PE(c).Init = vectors[i]
	}
	return ExecSpec(spec, opt, PredictAllReduce1D(pattern, p, b, tr))
}

// BuildBroadcast1DInto compiles a 1D flooding broadcast for p PEs into
// spec; the caller sets Init on the leftmost PE afterwards.
func BuildBroadcast1DInto(spec *fabric.Spec, p, b int) error {
	if b < 1 {
		return fmt.Errorf("core: empty vector")
	}
	if p < 1 {
		return fmt.Errorf("core: %d PEs", p)
	}
	path := mesh.Row(0, 0, p)
	if p > 1 {
		if err := comm.BuildBroadcast(spec, path, b, comm.ColorBcast); err != nil {
			return err
		}
	}
	for _, c := range path {
		spec.PE(c) // materialise every PE even when p == 1
	}
	return nil
}

// RunBroadcast1D floods data from the leftmost PE of a row of p PEs.
func RunBroadcast1D(data []float32, p int, opt fabric.Options) (*Report, error) {
	spec := fabric.NewSpec(p, 1)
	if err := BuildBroadcast1DInto(spec, p, len(data)); err != nil {
		return nil, err
	}
	spec.PE(mesh.Coord{}).Init = data
	return ExecSpec(spec, opt, Params(opt).Broadcast1D(p, len(data)))
}

// ExecSpec instantiates and runs a compiled spec on the fabric simulator
// and wraps the result in a Report carrying the given model prediction.
// It is the execute half of the compile/execute split: the plan subsystem
// replays cached specs through it.
func ExecSpec(spec *fabric.Spec, opt fabric.Options, predicted float64) (*Report, error) {
	res, err := runSpec(spec, opt)
	if err != nil {
		return nil, err
	}
	return report(res, predicted), nil
}

func runSpec(spec *fabric.Spec, opt fabric.Options) (*fabric.Result, error) {
	f, err := fabric.New(spec, opt)
	if err != nil {
		return nil, err
	}
	return f.Run()
}

// ReportOf wraps a raw fabric result in a Report carrying the given model
// prediction. The plan subsystem's pooled replay path runs the fabric
// itself (to reuse instances across runs) and reports through here.
func ReportOf(res *fabric.Result, predicted float64) *Report {
	return report(res, predicted)
}

// ReportOfColumnar wraps a columnar fabric result: Root comes straight
// from the flat buffer and All stays nil — callers read per-PE state
// through Report.Columnar.
func ReportOfColumnar(res *fabric.ColumnarResult, predicted float64) *Report {
	return &Report{
		Cycles:    res.Cycles,
		Predicted: predicted,
		Root:      res.Root,
		Columnar:  res,
		Stats:     res.Stats,
	}
}

func report(res *fabric.Result, predicted float64) *Report {
	return &Report{
		Cycles:    res.Cycles,
		Predicted: predicted,
		Root:      res.Acc[mesh.Coord{X: 0, Y: 0}],
		All:       res.Acc,
		Stats:     res.Stats,
	}
}
