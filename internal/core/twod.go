package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/fabric"
	"repro/internal/mesh"
	"repro/internal/model"
)

// Pattern2D names a 2D Reduce/AllReduce mapping (§7).
type Pattern2D string

// The 2D patterns: X-Y compositions of each 1D pattern (rows first, then
// column 0) plus the Snake chain over the whole grid. XYChain is the
// vendor baseline of Figures 10 and 13.
const (
	XYStar     Pattern2D = "xy-star"
	XYChain    Pattern2D = "xy-chain"
	XYTree     Pattern2D = "xy-tree"
	XYTwoPhase Pattern2D = "xy-twophase"
	XYAutoGen  Pattern2D = "xy-autogen"
	Snake      Pattern2D = "snake"
	Auto2D     Pattern2D = "auto"
)

// Patterns2D lists the concrete (runnable) 2D patterns.
var Patterns2D = []Pattern2D{XYStar, XYChain, XYTree, XYTwoPhase, XYAutoGen, Snake}

// Base1D returns the 1D pattern underlying an X-Y composition, or false
// for Snake and Auto2D.
func (p Pattern2D) Base1D() (Pattern, bool) { return p.base1D() }

// base1D returns the 1D pattern underlying an X-Y composition.
func (p Pattern2D) base1D() (Pattern, bool) {
	switch p {
	case XYStar:
		return Star, true
	case XYChain:
		return Chain, true
	case XYTree:
		return Tree, true
	case XYTwoPhase:
		return TwoPhase, true
	case XYAutoGen:
		return AutoGen, true
	}
	return "", false
}

// PredictReduce2D estimates a 2D Reduce on a width×height grid: X-Y
// patterns cost a row reduce plus a column reduce (§7.2); Snake costs a
// chain over all PEs (§7.3).
func PredictReduce2D(pattern Pattern2D, width, height, b, tr int) float64 {
	pr := model.Params{TR: tr}
	if pattern == Snake {
		return pr.SnakeReduce(height, width, b)
	}
	if pattern == Auto2D {
		_, t := BestReduce2D(width, height, b, tr)
		return t
	}
	base, ok := pattern.base1D()
	if !ok {
		return 0
	}
	return PredictReduce1D(base, width, b, tr) + PredictReduce1D(base, height, b, tr)
}

// PredictAllReduce2D adds the 2D flooding broadcast (§7.4).
func PredictAllReduce2D(pattern Pattern2D, width, height, b, tr int) float64 {
	return PredictReduce2D(pattern, width, height, b, tr) +
		model.Params{TR: tr}.Broadcast2D(height, width, b)
}

// BestReduce2D picks the concrete 2D pattern with the lowest predicted
// runtime.
func BestReduce2D(width, height, b, tr int) (Pattern2D, float64) {
	best, bestT := Pattern2D(""), 0.0
	for _, pat := range Patterns2D {
		t := PredictReduce2D(pat, width, height, b, tr)
		if best == "" || t < bestT {
			best, bestT = pat, t
		}
	}
	return best, bestT
}

// BuildReduce2DInto compiles a 2D Reduce into spec without initial data.
func BuildReduce2DInto(spec *fabric.Spec, pattern Pattern2D, width, height, b, tr int, op fabric.ReduceOp) error {
	return buildReduce2D(spec, pattern, width, height, b, tr, op)
}

// BuildAllReduce2DInto compiles a 2D Reduce plus 2D broadcast into spec.
func BuildAllReduce2DInto(spec *fabric.Spec, pattern Pattern2D, width, height, b, tr int, op fabric.ReduceOp) error {
	if err := buildReduce2D(spec, pattern, width, height, b, tr, op); err != nil {
		return err
	}
	return comm.BuildBroadcast2D(spec, width, height, b, comm.ColorBcast2)
}

// BuildBroadcast2DInto compiles a 2D flooding broadcast into spec,
// materialising every PE of the region; the caller sets Init on (0,0).
func BuildBroadcast2DInto(spec *fabric.Spec, width, height, b int) error {
	if b < 1 {
		return fmt.Errorf("core: empty vector")
	}
	if err := comm.BuildBroadcast2D(spec, width, height, b, comm.ColorBcast2); err != nil {
		return err
	}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			spec.PE(mesh.Coord{X: x, Y: y})
		}
	}
	return nil
}

// buildReduce2D compiles a 2D reduce into spec.
func buildReduce2D(spec *fabric.Spec, pattern Pattern2D, width, height, b, tr int, op fabric.ReduceOp) error {
	if pattern == Snake {
		return comm.BuildReduceSnake(spec, width, height, b, op)
	}
	base, ok := pattern.base1D()
	if !ok {
		return fmt.Errorf("core: unknown 2D pattern %q", pattern)
	}
	rowTree, err := TreeFor(base, width, b, tr)
	if err != nil {
		return err
	}
	colTree, err := TreeFor(base, height, b, tr)
	if err != nil {
		return err
	}
	return comm.BuildReduceXY(spec, width, height, rowTree, colTree, b, op)
}

func gridInit(spec *fabric.Spec, width, height int, vectors [][]float32) error {
	if len(vectors) != width*height {
		return fmt.Errorf("core: %d vectors for a %dx%d grid", len(vectors), width, height)
	}
	i := 0
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			spec.PE(mesh.Coord{X: x, Y: y}).Init = vectors[i]
			i++
		}
	}
	return nil
}

// RunReduce2D reduces one vector per PE (row-major) on a width×height
// grid to PE (0,0) on the fabric simulator.
func RunReduce2D(pattern Pattern2D, width, height int, vectors [][]float32, op fabric.ReduceOp, opt fabric.Options) (*Report, error) {
	b, err := vecLen(vectors)
	if err != nil {
		return nil, err
	}
	tr := Params(opt).TR
	if pattern == Auto2D {
		pattern, _ = BestReduce2D(width, height, b, tr)
	}
	spec := fabric.NewSpec(width, height)
	if err := buildReduce2D(spec, pattern, width, height, b, tr, op); err != nil {
		return nil, err
	}
	if err := gridInit(spec, width, height, vectors); err != nil {
		return nil, err
	}
	return ExecSpec(spec, opt, PredictReduce2D(pattern, width, height, b, tr))
}

// RunAllReduce2D runs a 2D Reduce followed by the 2D flooding broadcast.
func RunAllReduce2D(pattern Pattern2D, width, height int, vectors [][]float32, op fabric.ReduceOp, opt fabric.Options) (*Report, error) {
	b, err := vecLen(vectors)
	if err != nil {
		return nil, err
	}
	tr := Params(opt).TR
	if pattern == Auto2D {
		pattern, _ = BestReduce2D(width, height, b, tr)
	}
	spec := fabric.NewSpec(width, height)
	if err := buildReduce2D(spec, pattern, width, height, b, tr, op); err != nil {
		return nil, err
	}
	if err := comm.BuildBroadcast2D(spec, width, height, b, comm.ColorBcast2); err != nil {
		return nil, err
	}
	if err := gridInit(spec, width, height, vectors); err != nil {
		return nil, err
	}
	return ExecSpec(spec, opt, PredictAllReduce2D(pattern, width, height, b, tr))
}

// RunBroadcast2D floods data from (0,0) across a width×height grid.
func RunBroadcast2D(data []float32, width, height int, opt fabric.Options) (*Report, error) {
	spec := fabric.NewSpec(width, height)
	if err := BuildBroadcast2DInto(spec, width, height, len(data)); err != nil {
		return nil, err
	}
	spec.PE(mesh.Coord{}).Init = data
	return ExecSpec(spec, opt, Params(opt).Broadcast2D(height, width, len(data)))
}
