// Package obs is a stdlib-only span tracer with context propagation —
// the observability counterpart to the failpoint registry: one request
// becomes one trace, each hot seam (queue wait, resolve stage, compile,
// store I/O, fabric execution) a span inside it, and a W3C-style
// traceparent header carries the trace id across HTTP hops so a fleet
// request reads as a single tree from client → front → worker → peer.
//
// The discipline mirrors internal/faults: DISARMED IS ONE ATOMIC LOAD.
// While no Tracer exists (the default for every library consumer and
// benchmark), obs.Start is a single atomic load and two nil returns;
// every Span method is nil-receiver safe, so instrumented code calls
// them unconditionally. Only processes that construct a Tracer (wsed
// with tracing on, tests) pay for tracing, and only on requests that
// carry a live trace in their context.
//
// Collection is head sampling plus tail rules: the root span decides at
// birth whether the trace is head-sampled (probabilistic, or adopted
// from the incoming traceparent flags); at root End the trace commits
// to a bounded in-memory ring — and an optional JSONL sink — iff it was
// head-sampled, contains an errored span, or ran slower than the
// tracer's keep-if-slower-than threshold. Unfinished spans are never
// committed; a span that outlives its root (an abandoned task still
// draining) is dropped with the trace.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Header is the propagation header name, W3C trace-context style:
//
//	traceparent: 00-<32 hex trace id>-<16 hex span id>-<2 hex flags>
//
// Flag bit 0x01 marks the trace head-sampled; a downstream hop adopts
// the upstream decision instead of re-rolling, so one coin flip at the
// edge governs the whole fleet path.
const Header = "traceparent"

// active counts live Tracers process-wide. It is the disarmed fast
// path: obs.Start in a process that never built a Tracer is one atomic
// load.
var active atomic.Int32

// Active reports whether any Tracer exists (test hook).
func Active() bool { return active.Load() > 0 }

// maxSpansPerTrace bounds one trace's span list; beyond it spans are
// counted as dropped rather than recorded, so a pathological request
// (a huge batch, a retry storm) cannot balloon the ring.
const maxSpansPerTrace = 512

// Config configures a Tracer.
type Config struct {
	// Sample is the head-sampling probability in [0,1]. >=1 keeps every
	// trace, <=0 head-keeps none (tail rules below still apply).
	Sample float64
	// SlowThreshold is the keep-if-slower-than tail rule: a trace whose
	// root span ran at least this long commits even if not head-sampled.
	// 0 disables the rule.
	SlowThreshold time.Duration
	// RingSize bounds the in-memory ring of committed traces served at
	// /debug/traces. 0 means 256.
	RingSize int
	// Sink, if non-nil, receives one JSON line per committed trace.
	// Writes are serialized; a write error disables the sink.
	Sink io.Writer
}

// Tracer owns sampling policy and the committed-trace ring. Construct
// one per process that wants tracing (wsed, tests); Close it when done
// so the package-wide fast path disarms again.
type Tracer struct {
	sample float64
	slow   time.Duration

	mu      sync.Mutex
	ring    []*Trace // newest at ring[next-1], wrapping
	next    int
	wrapped bool

	sinkMu  sync.Mutex
	sink    io.Writer
	sinkErr error

	started   atomic.Int64 // root spans opened
	committed atomic.Int64 // traces kept by head or tail rules
	closed    atomic.Bool
}

// NewTracer arms tracing process-wide and returns the tracer.
func NewTracer(cfg Config) *Tracer {
	size := cfg.RingSize
	if size <= 0 {
		size = 256
	}
	t := &Tracer{
		sample: cfg.Sample,
		slow:   cfg.SlowThreshold,
		ring:   make([]*Trace, size),
		sink:   cfg.Sink,
	}
	active.Add(1)
	return t
}

// Close disarms this tracer's share of the package fast path. The ring
// stays readable; new roots become no-ops.
func (t *Tracer) Close() {
	if t != nil && t.closed.CompareAndSwap(false, true) {
		active.Add(-1)
	}
}

// Stats reports lifetime counts: root spans opened and traces kept.
func (t *Tracer) Stats() (started, committed int64) {
	if t == nil {
		return 0, 0
	}
	return t.started.Load(), t.committed.Load()
}

// trace is the live, still-recording form; Trace (exported) is the
// committed snapshot.
type trace struct {
	tracer  *Tracer
	id      string
	start   time.Time
	sampled bool

	mu      sync.Mutex
	spans   []SpanRecord // finished spans, in End order
	dropped int
	errored bool
}

// Span records one timed phase. The zero of usefulness is nil: every
// method is nil-receiver safe, so instrumented code never branches on
// whether tracing is live.
type Span struct {
	tr     *trace
	id     string
	parent string
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	err   string
	ended bool
	dur   time.Duration
	root  bool
}

// ctxKey carries the current span through context.
type ctxKey struct{}

func spanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Start opens a child span under the current span in ctx, returning a
// derived context carrying the child. With no tracer armed, or no live
// trace in ctx, it returns (ctx, nil) — one atomic load on the fast
// path, and the nil Span absorbs every later method call.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if active.Load() == 0 {
		return ctx, nil
	}
	parent := spanFrom(ctx)
	if parent == nil || parent.tr == nil {
		return ctx, nil
	}
	s := &Span{
		tr:     parent.tr,
		id:     randHex(8),
		parent: parent.id,
		name:   name,
		start:  time.Now(),
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// Root opens a trace's root span. traceparent, when parseable, supplies
// the trace id, remote parent span id and the sampled flag — the hop
// joins the caller's trace; otherwise a fresh trace id is rolled and
// head sampling decided locally. A nil tracer returns (ctx, nil).
func (t *Tracer) Root(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	if t == nil || t.closed.Load() {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	now := time.Now()
	tr := &trace{tracer: t, start: now}
	var parent string
	if tid, pid, sampled, ok := parseTraceparent(traceparent); ok {
		tr.id, parent, tr.sampled = tid, pid, sampled
	} else {
		tr.id = randHex(16)
		tr.sampled = t.sample >= 1 || (t.sample > 0 && rand.Float64() < t.sample)
	}
	s := &Span{
		tr:     tr,
		id:     randHex(8),
		parent: parent,
		name:   name,
		start:  now,
		root:   true,
	}
	t.started.Add(1)
	return context.WithValue(ctx, ctxKey{}, s), s
}

// SetAttr attaches a key/value to the span. Values should be JSON-basic
// (string, number, bool). Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.attrs == nil {
			s.attrs = make(map[string]any, 4)
		}
		s.attrs[key] = value
	}
	s.mu.Unlock()
}

// SetError marks the span errored. An errored span anywhere in a trace
// triggers the always-keep-on-error tail rule. Nil-safe; nil err is a
// no-op.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.err = err.Error()
	}
	s.mu.Unlock()
}

// TraceID returns the trace id, "" on a nil or traceless span.
func (s *Span) TraceID() string {
	if s == nil || s.tr == nil {
		return ""
	}
	return s.tr.id
}

// Duration returns the span's recorded duration (0 before End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// End closes the span, appending it to its trace; ending the root span
// commits or discards the whole trace. Idempotent and nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	rec := SpanRecord{
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		Offset:   s.start.Sub(s.tr.start),
		Duration: s.dur,
		Attrs:    s.attrs,
		Error:    s.err,
	}
	s.mu.Unlock()

	tr := s.tr
	tr.mu.Lock()
	if rec.Error != "" {
		tr.errored = true
	}
	if len(tr.spans) < maxSpansPerTrace {
		tr.spans = append(tr.spans, rec)
	} else {
		tr.dropped++
	}
	if !s.root {
		tr.mu.Unlock()
		return
	}
	errored := tr.errored
	spans := tr.spans
	dropped := tr.dropped
	tr.mu.Unlock()

	t := tr.tracer
	keep := tr.sampled || errored ||
		(t.slow > 0 && rec.Duration >= t.slow)
	if !keep || t.closed.Load() {
		return
	}
	snap := &Trace{
		TraceID:  tr.id,
		Root:     rec.Name,
		Start:    tr.start,
		Duration: rec.Duration,
		Sampled:  tr.sampled,
		Error:    rec.Error,
		Dropped:  dropped,
		Spans:    append([]SpanRecord(nil), spans...),
	}
	t.commit(snap)
}

// Phases sums finished descendant spans' durations by name — the
// breakdown a slow-request log line wants. Call on the root span after
// the handler finished (before or after End). The root's own entry is
// excluded.
func (s *Span) Phases() map[string]time.Duration {
	if s == nil || s.tr == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	out := make(map[string]time.Duration, len(s.tr.spans))
	for _, rec := range s.tr.spans {
		if rec.ID == s.id {
			continue
		}
		out[rec.Name] += rec.Duration
	}
	return out
}

func (t *Tracer) commit(snap *Trace) {
	t.committed.Add(1)
	t.mu.Lock()
	t.ring[t.next] = snap
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
	t.mu.Unlock()

	if t.sink != nil {
		t.sinkMu.Lock()
		if t.sinkErr == nil {
			buf, err := json.Marshal(snap)
			if err == nil {
				buf = append(buf, '\n')
				_, err = t.sink.Write(buf)
			}
			t.sinkErr = err
		}
		t.sinkMu.Unlock()
	}
}

// Traces returns committed traces newest-first, those at least minDur
// long; limit caps the result when > 0.
func (t *Tracer) Traces(minDur time.Duration, limit int) []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	n := t.next
	if t.wrapped {
		n = len(t.ring)
	}
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recent write.
		idx := t.next - 1 - i
		if idx < 0 {
			idx += len(t.ring)
		}
		tr := t.ring[idx]
		if tr == nil || tr.Duration < minDur {
			continue
		}
		out = append(out, tr)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	t.mu.Unlock()
	return out
}

// Trace is a committed trace: the snapshot the ring holds, the JSONL
// sink writes, and /debug/traces serves. Durations marshal as integer
// nanoseconds.
type Trace struct {
	TraceID  string        `json:"trace_id"`
	Root     string        `json:"root"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Sampled  bool          `json:"sampled"`
	Error    string        `json:"error,omitempty"`
	Dropped  int           `json:"dropped_spans,omitempty"`
	Spans    []SpanRecord  `json:"spans"`
}

// SpanRecord is one finished span inside a committed trace. Offset is
// from the trace's start, so records order and nest without clocks.
type SpanRecord struct {
	ID       string         `json:"id"`
	Parent   string         `json:"parent,omitempty"`
	Name     string         `json:"name"`
	Offset   time.Duration  `json:"offset_ns"`
	Duration time.Duration  `json:"duration_ns"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// InjectHeader writes the current span's traceparent into h, so the
// next HTTP hop joins this trace. No live span: no header, and the
// downstream hop roots its own trace.
func InjectHeader(ctx context.Context, h http.Header) {
	s := spanFrom(ctx)
	if s == nil || s.tr == nil {
		return
	}
	flags := 0
	if s.tr.sampled {
		flags = 1
	}
	h.Set(Header, fmt.Sprintf("00-%s-%s-%02x", s.tr.id, s.id, flags))
}

// parseTraceparent accepts the 00 version of the W3C format; anything
// else reads as "no incoming trace".
func parseTraceparent(v string) (traceID, parentID string, sampled, ok bool) {
	// 2 + 1 + 32 + 1 + 16 + 1 + 2
	if len(v) != 55 || v[0:2] != "00" || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return "", "", false, false
	}
	traceID, parentID = v[3:35], v[36:52]
	if !isHex(traceID) || !isHex(parentID) || !isHex(v[53:55]) || allZero(traceID) {
		return "", "", false, false
	}
	return traceID, parentID, hexVal(v[54])&1 == 1, true
}

func hexVal(c byte) int {
	if c >= 'a' {
		return int(c-'a') + 10
	}
	return int(c - '0')
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

const hexDigits = "0123456789abcdef"

// randHex returns 2n lowercase hex digits from the shared PRNG —
// trace/span ids need uniqueness, not cryptographic strength.
func randHex(n int) string {
	b := make([]byte, 2*n)
	for i := 0; i < len(b); i += 2 {
		v := rand.Uint32()
		b[i] = hexDigits[v&0xf]
		b[i+1] = hexDigits[(v>>4)&0xf]
	}
	return string(b)
}
