package obs

import (
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsNoop(t *testing.T) {
	if Active() {
		t.Fatal("tracer armed before any NewTracer")
	}
	ctx, s := Start(t.Context(), "anything")
	if s != nil {
		t.Fatal("Start returned a live span with no tracer armed")
	}
	// Every method must absorb the nil receiver.
	s.SetAttr("k", 1)
	s.SetError(errors.New("x"))
	s.End()
	if s.TraceID() != "" || s.Duration() != 0 || s.Phases() != nil {
		t.Error("nil span leaked state")
	}
	h := http.Header{}
	InjectHeader(ctx, h)
	if h.Get(Header) != "" {
		t.Error("InjectHeader wrote a header with no live span")
	}
	var nilTracer *Tracer
	if _, s := nilTracer.Root(t.Context(), "r", ""); s != nil {
		t.Error("nil tracer rooted a span")
	}
}

func TestSpanTreeAndCommit(t *testing.T) {
	tr := NewTracer(Config{Sample: 1})
	defer tr.Close()

	ctx, root := tr.Root(t.Context(), "http run", "")
	root.SetAttr("tenant", "fg")
	cctx, child := Start(ctx, "sched.queue")
	child.End()
	_, grand := Start(cctx, "fabric.exec")
	grand.SetAttr("cycles", 42)
	grand.End()
	root.End()

	traces := tr.Traces(0, 0)
	if len(traces) != 1 {
		t.Fatalf("committed %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.Root != "http run" || !got.Sampled || got.TraceID == "" {
		t.Fatalf("trace = %+v", got)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(got.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range got.Spans {
		byName[s.Name] = s
	}
	rootRec := byName["http run"]
	if rootRec.Parent != "" || rootRec.Attrs["tenant"] != "fg" {
		t.Errorf("root record = %+v", rootRec)
	}
	if byName["sched.queue"].Parent != rootRec.ID {
		t.Error("queue span not parented to root")
	}
	if byName["fabric.exec"].Parent != byName["sched.queue"].ID {
		t.Error("exec span not parented to queue span")
	}
	if c, ok := byName["fabric.exec"].Attrs["cycles"].(int); !ok || c != 42 {
		t.Errorf("cycles attr = %v", byName["fabric.exec"].Attrs["cycles"])
	}
}

func TestHeadSamplingZeroDropsCleanTraces(t *testing.T) {
	tr := NewTracer(Config{Sample: 0})
	defer tr.Close()
	_, root := tr.Root(t.Context(), "r", "")
	root.End()
	if n := len(tr.Traces(0, 0)); n != 0 {
		t.Fatalf("unsampled clean trace committed (%d)", n)
	}
	started, committed := tr.Stats()
	if started != 1 || committed != 0 {
		t.Errorf("stats = %d started %d committed", started, committed)
	}
}

func TestTailRuleError(t *testing.T) {
	tr := NewTracer(Config{Sample: 0})
	defer tr.Close()
	ctx, root := tr.Root(t.Context(), "r", "")
	_, child := Start(ctx, "fabric.exec")
	child.SetError(errors.New("interconnect on fire"))
	child.End()
	root.End()
	traces := tr.Traces(0, 0)
	if len(traces) != 1 {
		t.Fatal("errored trace not kept despite sample=0")
	}
	if traces[0].Sampled {
		t.Error("tail-kept trace claims head sampling")
	}
}

func TestTailRuleSlow(t *testing.T) {
	tr := NewTracer(Config{Sample: 0, SlowThreshold: time.Nanosecond})
	defer tr.Close()
	_, root := tr.Root(t.Context(), "r", "")
	root.End() // any real duration >= 1ns
	if len(tr.Traces(0, 0)) != 1 {
		t.Fatal("slow trace not kept")
	}
}

func TestPropagation(t *testing.T) {
	tr := NewTracer(Config{Sample: 1})
	defer tr.Close()
	ctx, root := tr.Root(t.Context(), "front run", "")
	h := http.Header{}
	InjectHeader(ctx, h)
	tp := h.Get(Header)
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent = %q", tp)
	}

	// The next hop adopts trace id, parent span id and the sampled flag.
	tr2 := NewTracer(Config{Sample: 0})
	defer tr2.Close()
	_, root2 := tr2.Root(t.Context(), "http run", tp)
	if root2.TraceID() != root.TraceID() {
		t.Fatalf("hop did not adopt trace id: %s vs %s", root2.TraceID(), root.TraceID())
	}
	root2.End()
	root.End()
	w := tr2.Traces(0, 0)
	if len(w) != 1 {
		t.Fatal("downstream hop ignored upstream sampled flag")
	}
	if w[0].Spans[0].Parent == "" {
		t.Error("downstream root lost its remote parent id")
	}

	// Unsampled upstream: flag 00 propagates, downstream stays quiet.
	h2 := http.Header{}
	ctx3, root3 := tr2.Root(t.Context(), "front run", "")
	InjectHeader(ctx3, h2)
	if !strings.HasSuffix(h2.Get(Header), "-00") {
		t.Fatalf("unsampled traceparent = %q", h2.Get(Header))
	}
	_, root4 := tr2.Root(t.Context(), "http run", h2.Get(Header))
	root4.End()
	root3.End()
	if len(tr2.Traces(0, 0)) != 1 {
		t.Error("unsampled propagated trace was committed")
	}
}

func TestParseTraceparent(t *testing.T) {
	for _, bad := range []string{
		"",
		"00-abc-def-01",
		"01-0123456789abcdef0123456789abcdef-0123456789abcdef-01", // wrong version
		"00-00000000000000000000000000000000-0123456789abcdef-01", // zero trace id
		"00-0123456789ABCDEF0123456789abcdef-0123456789abcdef-01", // uppercase
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef-0",  // short flags
	} {
		if _, _, _, ok := parseTraceparent(bad); ok {
			t.Errorf("parsed %q", bad)
		}
	}
	tid, pid, sampled, ok := parseTraceparent("00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01")
	if !ok || tid != "0123456789abcdef0123456789abcdef" || pid != "00f067aa0ba902b7" || !sampled {
		t.Fatalf("parse = %q %q %v %v", tid, pid, sampled, ok)
	}
	if _, _, sampled, ok := parseTraceparent("00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-00"); !ok || sampled {
		t.Error("flags 00 parsed as sampled")
	}
}

func TestRingBoundAndFilter(t *testing.T) {
	tr := NewTracer(Config{Sample: 1, RingSize: 4})
	defer tr.Close()
	for i := 0; i < 10; i++ {
		_, root := tr.Root(t.Context(), "r", "")
		root.End()
	}
	got := tr.Traces(0, 0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	if len(tr.Traces(0, 2)) != 2 {
		t.Error("limit ignored")
	}
	if len(tr.Traces(time.Hour, 0)) != 0 {
		t.Error("minDur filter ignored")
	}
}

func TestJSONLSink(t *testing.T) {
	var buf syncBuffer
	tr := NewTracer(Config{Sample: 1, Sink: &buf})
	defer tr.Close()
	ctx, root := tr.Root(t.Context(), "r", "")
	_, c := Start(ctx, "child")
	c.End()
	root.End()
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("sink wrote %q, want one JSON line", line)
	}
	for _, want := range []string{`"trace_id"`, `"root":"r"`, `"name":"child"`} {
		if !strings.Contains(line, want) {
			t.Errorf("sink line missing %s: %s", want, line)
		}
	}
}

func TestSpanCapDropsNotGrows(t *testing.T) {
	tr := NewTracer(Config{Sample: 1})
	defer tr.Close()
	ctx, root := tr.Root(t.Context(), "r", "")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, s := Start(ctx, "s")
		s.End()
	}
	root.End()
	got := tr.Traces(0, 1)[0]
	if len(got.Spans) > maxSpansPerTrace {
		t.Fatalf("trace grew to %d spans", len(got.Spans))
	}
	if got.Dropped == 0 {
		t.Error("dropped counter not set")
	}
}

func TestPhases(t *testing.T) {
	tr := NewTracer(Config{Sample: 1})
	defer tr.Close()
	ctx, root := tr.Root(t.Context(), "r", "")
	for i := 0; i < 2; i++ {
		_, s := Start(ctx, "sched.queue")
		s.End()
	}
	root.End()
	ph := root.Phases()
	if len(ph) != 1 || ph["sched.queue"] <= 0 {
		t.Fatalf("phases = %v", ph)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(Config{Sample: 1})
	defer tr.Close()
	ctx, root := tr.Root(t.Context(), "r", "")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, s := Start(ctx, "worker")
			s.SetAttr("i", 1)
			_, g := Start(c, "inner")
			g.End()
			s.End()
		}()
	}
	wg.Wait()
	root.End()
	got := tr.Traces(0, 1)
	if len(got) != 1 || len(got[0].Spans) != 65 {
		t.Fatalf("concurrent trace spans = %d, want 65", len(got[0].Spans))
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(nil)
	for _, v := range []float64{0.00005, 0.003, 0.003, 0.2, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum < 50.2 || s.Sum > 50.3 {
		t.Errorf("sum = %v", s.Sum)
	}
	if s.Counts[len(s.Bounds)] != 1 {
		t.Errorf("+Inf bucket = %d, want the 50s observation", s.Counts[len(s.Bounds)])
	}
	// 0.003 lands in le=0.005 (index 8): strictly above 0.0025.
	if s.Counts[8] != 2 {
		t.Errorf("le=0.005 bucket = %d, want 2", s.Counts[8])
	}
	// Boundary is inclusive: exactly 0.00005 lands in le=0.00005.
	if s.Counts[2] != 1 {
		t.Errorf("le=0.00005 bucket = %d, want 1", s.Counts[2])
	}
	if q := s.Quantile(0.5); q <= 0 || q > 0.005 {
		t.Errorf("p50 = %v", q)
	}
}

func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec(nil)
	v.Observe(`route="run",code="200"`, 0.001)
	v.Observe(`route="run",code="200"`, 0.002)
	v.Observe(`route="run",code="500"`, 0.1)
	snap := v.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("labels = %d", len(snap))
	}
	if snap[`route="run",code="200"`].Count != 2 {
		t.Error("wrong per-label count")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum < 7.99 || s.Sum > 8.01 {
		t.Fatalf("sum drifted: %v", s.Sum)
	}
}

// syncBuffer is a mutex-guarded strings.Builder for the sink test.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
