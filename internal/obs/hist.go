package obs

// Prometheus-style latency histograms, lock-free on the observe path:
// a fixed log-spaced bucket ladder and atomic counters, so a histogram
// observe costs one binary search and two atomic adds — cheap enough
// for the serve middleware and the scheduler dispatch loop.

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default latency ladder in seconds: log-spaced
// 10µs → 10s (1-2.5-5 per decade). Replayed plans answer in ~100µs,
// cold compiles and saturated queues run to seconds — six decades, 19
// buckets, so every regime lands 2–3 buckets from its neighbours and a
// quantile estimate is within ~2.5× everywhere.
var DefBuckets = []float64{
	0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is one label-set's distribution: counts[i] observations at
// value <= bounds[i], counts[len(bounds)] the +Inf overflow.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over bounds (ascending; nil means
// DefBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value (seconds).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy for rendering or stats.
// Counts are per-bucket (not cumulative); Counts[len(Bounds)] is +Inf.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the owning bucket — the usual Prometheus histogram_quantile
// estimate. Returns 0 on an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(s.Bounds) { // +Inf bucket: clamp to the last bound
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// HistogramVec is a histogram per label set. The label string is the
// rendered Prometheus label body (`route="run",code="200"`) so the
// metrics exporter can emit it verbatim.
type HistogramVec struct {
	bounds []float64
	mu     sync.RWMutex
	m      map[string]*Histogram
}

// NewHistogramVec builds a vec over bounds (nil means DefBuckets).
func NewHistogramVec(bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{bounds: bounds, m: make(map[string]*Histogram)}
}

// Observe records v (seconds) under the given label body, creating the
// child histogram on first sight.
func (v *HistogramVec) Observe(labels string, x float64) {
	v.mu.RLock()
	h := v.m[labels]
	v.mu.RUnlock()
	if h == nil {
		v.mu.Lock()
		if h = v.m[labels]; h == nil {
			h = NewHistogram(v.bounds)
			v.m[labels] = h
		}
		v.mu.Unlock()
	}
	h.Observe(x)
}

// Snapshot copies every label set's current state, keyed by label body.
func (v *HistogramVec) Snapshot() map[string]HistogramSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]HistogramSnapshot, len(v.m))
	for k, h := range v.m {
		out[k] = h.Snapshot()
	}
	return out
}
