package resolve

// The resolver-chain contract under -race: sequential fallthrough and
// mandatory/optional semantics, parallel first-success-cancels-losers,
// singleflight dedup, the per-stage stats invariant
// (hits+misses+errors = lookups), and bit-identical plans regardless of
// which stage resolved.

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/plan"
	"repro/internal/planstore"
)

func testKey(p int) plan.Key {
	return plan.KeyOf(plan.Request{Kind: plan.Reduce1D, Alg: core.Chain, P: p, B: 8, Op: fabric.OpSum})
}

// memStore is an in-memory PlanStore.
type memStore struct {
	mu       sync.Mutex
	m        map[plan.Key]*plan.Plan
	loads    int
	saves    int
	failLoad bool
	failSave bool
}

func newMemStore() *memStore { return &memStore{m: make(map[plan.Key]*plan.Plan)} }

func (s *memStore) Load(key plan.Key) (*plan.Plan, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loads++
	if s.failLoad {
		return nil, false, errors.New("memstore: load failure")
	}
	p, ok := s.m[key]
	return p, ok, nil
}

func (s *memStore) Save(p *plan.Plan) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.saves++
	if s.failSave {
		return errors.New("memstore: save failure")
	}
	s.m[p.Key] = p
	return nil
}

// fakeStage is a scriptable Resolver for combinator tests.
type fakeStage struct {
	meter
	delay   time.Duration
	plan    *plan.Plan
	err     error
	honours bool // when set, a ctx cancellation during delay wins
	calls   int64
	mu2     sync.Mutex
}

func fake(name string, delay time.Duration, p *plan.Plan, err error) *fakeStage {
	return &fakeStage{meter: newMeter(name), delay: delay, plan: p, err: err, honours: true}
}

func (s *fakeStage) Resolve(ctx context.Context, key plan.Key) (*plan.Plan, error) {
	s.mu2.Lock()
	s.calls++
	s.mu2.Unlock()
	start := time.Now()
	if s.delay > 0 {
		t := time.NewTimer(s.delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			if s.honours {
				err := ctx.Err()
				s.observe(start, err)
				return nil, err
			}
			<-t.C
		}
	}
	s.observe(start, s.err)
	return s.plan, s.err
}

func (s *fakeStage) callCount() int64 {
	s.mu2.Lock()
	defer s.mu2.Unlock()
	return s.calls
}

func mustCompile(t testing.TB, key plan.Key) *plan.Plan {
	t.Helper()
	p, err := plan.Compile(key.Request())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

// checkInvariant asserts hits+misses+errors == lookups on every stage of
// a chain's stats.
func checkInvariant(t *testing.T, r Resolver) {
	t.Helper()
	for _, st := range r.Stats() {
		if st.Hits+st.Misses+st.Errors != st.Lookups {
			t.Errorf("stage %s: hits %d + misses %d + errors %d != lookups %d",
				st.Stage, st.Hits, st.Misses, st.Errors, st.Lookups)
		}
	}
}

func TestSequentialFallthrough(t *testing.T) {
	key := testKey(4)
	p := mustCompile(t, key)
	miss := fake("a", 0, nil, ErrNotFound)
	hit := fake("b", 0, p, nil)
	never := fake("c", 0, nil, errors.New("must not run"))
	chain := Sequential(miss, hit, never)

	got, err := chain.Resolve(context.Background(), key)
	if err != nil || got != p {
		t.Fatalf("Resolve = %v, %v; want the plan from stage b", got, err)
	}
	if never.callCount() != 0 {
		t.Error("stage after the hit was consulted")
	}
	st := chain.Stats()
	if st[0].Stage != "sequential" || st[0].Hits != 1 {
		t.Errorf("sequential stats = %+v, want 1 hit", st[0])
	}
	checkInvariant(t, chain)
}

func TestSequentialMandatoryFailure(t *testing.T) {
	key := testKey(4)
	boom := errors.New("store exploded")
	chain := Sequential(fake("broken", 0, nil, boom), fake("after", 0, mustCompile(t, key), nil))
	_, err := chain.Resolve(context.Background(), key)
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "broken" || !errors.Is(err, boom) {
		t.Fatalf("mandatory failure = %v, want *StageError{broken} wrapping the cause", err)
	}
	checkInvariant(t, chain)
}

func TestOptionalDegrades(t *testing.T) {
	key := testKey(4)
	p := mustCompile(t, key)
	broken := fake("broken", 0, nil, errors.New("peer down"))
	chain := Sequential(Optional(broken), fake("compile", 0, p, nil))
	got, err := chain.Resolve(context.Background(), key)
	if err != nil || got != p {
		t.Fatalf("optional failure did not degrade: %v, %v", got, err)
	}
	// The optional wrapper hides the failure from composition but the
	// stage's own stats must still record it — degradation stays
	// observable.
	if st := broken.Stats()[0]; st.Errors != 1 {
		t.Errorf("broken stage stats = %+v, want the failure counted as an error", st)
	}
	checkInvariant(t, chain)
}

func TestSequentialAllMiss(t *testing.T) {
	chain := Sequential(fake("a", 0, nil, ErrNotFound), fake("b", 0, nil, ErrNotFound))
	if _, err := chain.Resolve(context.Background(), testKey(4)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("all-miss chain = %v, want ErrNotFound", err)
	}
	checkInvariant(t, chain)
}

// TestParallelFirstSuccessCancelsLosers races a fast hit against a slow
// stage and asserts the slow stage observed cancellation — the winner
// must not wait for (or leak) the loser.
func TestParallelFirstSuccessCancelsLosers(t *testing.T) {
	key := testKey(4)
	p := mustCompile(t, key)
	fast := fake("fast", 5*time.Millisecond, p, nil)
	slow := fake("slow", 10*time.Second, mustCompile(t, key), nil)
	par := Parallel(fast, slow)

	start := time.Now()
	got, err := par.Resolve(context.Background(), key)
	if err != nil || got != p {
		t.Fatalf("Resolve = %v, %v; want the fast stage's plan", got, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("parallel waited %v — the loser was not cancelled", elapsed)
	}
	// The slow loser resolves its cancellation asynchronously (the race
	// returns on first success); wait for its lookup to land before
	// checking its accounting.
	deadline := time.Now().Add(5 * time.Second)
	for slow.Stats()[0].Lookups == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := slow.Stats()[0]; st.Errors != 1 {
		t.Errorf("slow stage stats = %+v, want its cancellation counted as an error", st)
	}
	checkInvariant(t, par)
}

func TestParallelAllMiss(t *testing.T) {
	par := Parallel(fake("a", 0, nil, ErrNotFound), fake("b", 0, nil, ErrNotFound))
	if _, err := par.Resolve(context.Background(), testKey(4)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("all-miss parallel = %v, want ErrNotFound", err)
	}
	checkInvariant(t, par)
}

func TestParallelMandatoryFailureNamesStage(t *testing.T) {
	boom := errors.New("disk on fire")
	par := Parallel(fake("healthy-miss", 0, nil, ErrNotFound), fake("burning", 0, nil, boom))
	_, err := par.Resolve(context.Background(), testKey(4))
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "burning" || !errors.Is(err, boom) {
		t.Fatalf("parallel mandatory failure = %v, want *StageError{burning}", err)
	}
	checkInvariant(t, par)
}

// TestSingleflightDedup fires N concurrent lookups for one key through a
// slow inner stage and asserts the inner stage ran once.
func TestSingleflightDedup(t *testing.T) {
	key := testKey(4)
	p := mustCompile(t, key)
	slow := fake("inner", 20*time.Millisecond, p, nil)
	sf := Singleflight(slow)

	const n = 16
	var wg sync.WaitGroup
	results := make([]*plan.Plan, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = sf.Resolve(context.Background(), key)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil || results[i] != p {
			t.Fatalf("caller %d: %v, %v", i, results[i], errs[i])
		}
	}
	if calls := slow.callCount(); calls != 1 {
		t.Errorf("inner stage ran %d times for %d concurrent lookups, want 1", calls, n)
	}
	st := sf.Stats()
	if st[0].Lookups != n || st[1].Lookups != 1 {
		t.Errorf("stats = outer %d lookups, inner %d; want %d and 1", st[0].Lookups, st[1].Lookups, n)
	}
	checkInvariant(t, sf)
}

// TestStatsInvariantUnderConcurrency hammers a mixed-outcome chain from
// many goroutines and checks the accounting still balances per stage.
func TestStatsInvariantUnderConcurrency(t *testing.T) {
	key := testKey(4)
	ms := newMemStore()
	ms.m[key] = mustCompile(t, key)
	missKey := testKey(8)
	chain := Sequential(Optional(Store(ms)), WriteBack(Compiler(), ms))

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				k := key
				if (i+j)%2 == 0 {
					k = missKey
				}
				if _, err := chain.Resolve(context.Background(), k); err != nil {
					t.Errorf("resolve: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	checkInvariant(t, chain)
	if st := chain.Stats()[0]; st.Lookups != 160 || st.Hits != 160 {
		t.Errorf("chain stats = %+v, want 160 lookups all hits", st)
	}
}

// TestBitIdenticalAcrossStages resolves one key through every stage kind
// — compiler, store, memory — and asserts the encoded plan bytes are
// identical: it must not matter where a plan came from.
func TestBitIdenticalAcrossStages(t *testing.T) {
	key := testKey(6)

	compiled, err := Compiler().Resolve(context.Background(), key)
	if err != nil {
		t.Fatalf("compiler stage: %v", err)
	}
	ms := newMemStore()
	ms.m[key] = mustCompile(t, key)
	stored, err := Store(ms).Resolve(context.Background(), key)
	if err != nil {
		t.Fatalf("store stage: %v", err)
	}
	cache := plan.NewCache(4)
	if _, err := cache.Get(key.Request()); err != nil {
		t.Fatalf("cache fill: %v", err)
	}
	cached, err := Memory(cache).Resolve(context.Background(), key)
	if err != nil {
		t.Fatalf("memory stage: %v", err)
	}

	enc := func(p *plan.Plan) []byte {
		blob, _, err := planstore.Encode(p)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		return blob
	}
	want := enc(compiled)
	if !bytes.Equal(enc(stored), want) {
		t.Error("store-resolved plan encodes differently from compiled")
	}
	if !bytes.Equal(enc(cached), want) {
		t.Error("memory-resolved plan encodes differently from compiled")
	}
}

// TestWriteBack checks the convergence mechanic: a compile behind
// WriteBack lands in the store, and a second chain over the same store
// resolves without compiling. Save failures are absorbed and counted.
func TestWriteBack(t *testing.T) {
	key := testKey(4)
	ms := newMemStore()
	first := Sequential(Optional(Store(ms)), WriteBack(Compiler(), ms))
	if _, err := first.Resolve(context.Background(), key); err != nil {
		t.Fatalf("first resolve: %v", err)
	}
	if ms.saves != 1 {
		t.Fatalf("saves = %d, want 1 write-back", ms.saves)
	}
	second := Sequential(Optional(Store(ms)), WriteBack(Compiler(), ms))
	if _, err := second.Resolve(context.Background(), key); err != nil {
		t.Fatalf("second resolve: %v", err)
	}
	for _, st := range second.Stats() {
		if st.Stage == "compile" && st.Lookups != 0 {
			t.Errorf("second chain compiled despite the write-back: %+v", st)
		}
		if st.Stage == "store" && st.Hits != 1 {
			t.Errorf("second chain store stats = %+v, want 1 hit", st)
		}
	}

	ms.mu.Lock()
	ms.failSave = true
	ms.mu.Unlock()
	wb := WriteBack(Compiler(), ms)
	if _, err := wb.Resolve(context.Background(), testKey(8)); err != nil {
		t.Fatalf("save failure leaked into the lookup: %v", err)
	}
	if st := wb.Stats()[0]; st.SaveErrors != 1 {
		t.Errorf("stats = %+v, want the failed write-back counted", st)
	}
}

// TestMemoryStage checks the memory stage consults residency only: a
// miss does not populate the cache or touch its serving stats.
func TestMemoryStage(t *testing.T) {
	cache := plan.NewCache(4)
	mem := Memory(cache)
	key := testKey(4)
	if _, err := mem.Resolve(context.Background(), key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cold cache = %v, want ErrNotFound", err)
	}
	if st := cache.Stats(); st.Hits != 0 || st.Misses != 0 || st.Size != 0 {
		t.Errorf("memory stage disturbed the cache: %+v", st)
	}
	if _, err := cache.Get(key.Request()); err != nil {
		t.Fatal(err)
	}
	p, err := mem.Resolve(context.Background(), key)
	if err != nil || p == nil {
		t.Fatalf("resident lookup = %v, %v", p, err)
	}
	checkInvariant(t, mem)
}

// TestCacheResolverIntegration wires a chain into a plan.Cache via
// SetResolver and checks the miss path goes through the chain (store
// hit: no compile) while the legacy counters stay flat.
func TestCacheResolverIntegration(t *testing.T) {
	key := testKey(4)
	ms := newMemStore()
	ms.m[key] = mustCompile(t, key)
	chain := Sequential(Optional(Store(ms)), WriteBack(Compiler(), ms))
	cache := plan.NewCache(4)
	cache.SetResolver(chain)

	if _, err := cache.Get(key.Request()); err != nil {
		t.Fatalf("get through resolver: %v", err)
	}
	for _, st := range chain.Stats() {
		switch st.Stage {
		case "store":
			if st.Hits != 1 {
				t.Errorf("store stats = %+v, want the fill's hit", st)
			}
		case "compile":
			if st.Lookups != 0 {
				t.Errorf("compile ran despite the store hit: %+v", st)
			}
		}
	}
	if st := cache.Stats(); st.StoreHits != 0 || st.StoreErrors != 0 {
		t.Errorf("legacy store counters moved under a resolver: %+v", st)
	}
	// Second lookup: resident, chain not consulted again.
	if _, err := cache.Get(key.Request()); err != nil {
		t.Fatal(err)
	}
	if st := chain.Stats()[0]; st.Lookups != 1 {
		t.Errorf("chain consulted %d times, want 1 (second lookup was resident)", st.Lookups)
	}
}
