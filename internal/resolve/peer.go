package resolve

import (
	"context"
	"fmt"
	"time"

	"repro/client"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/planstore"
)

// peerStage resolves plans from a remote daemon's blob endpoint: GET
// /v1/plans/{key} through the retrying client (backoff, breaker,
// deadline forwarding), then the planstore codec decodes and
// hash-verifies the blob. Compile-once-serve-everywhere: a plan any
// fleet member holds is a few hundred microseconds of wire+decode away,
// versus recompiling it.
type peerStage struct {
	meter
	url string
	c   *client.Client
}

// Peer returns a stage resolving from the daemon at baseURL. cfg.BaseURL
// is overwritten with baseURL; zero-valued knobs get in-fleet defaults
// snappier than the client package's serving-grade ones (2 attempts,
// 50ms base backoff, 2s per attempt, breaker at 3) — a fleet peer is on
// the same network segment and the compiler is always available behind
// it, so failing fast into the next stage beats patient retrying.
func Peer(baseURL string, cfg client.Config) Resolver {
	cfg.BaseURL = baseURL
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 2
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 2 * time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	return &peerStage{
		meter: newMeter("peer " + baseURL),
		url:   baseURL,
		c:     client.New(cfg),
	}
}

func (s *peerStage) Resolve(ctx context.Context, key plan.Key) (*plan.Plan, error) {
	start := time.Now()
	_, sp := obs.Start(ctx, "resolve.peer")
	sp.SetAttr("peer", s.url)
	p, err := s.fetch(ctx, key)
	s.observe(start, err)
	outcome(sp, err)
	return p, err
}

func (s *peerStage) fetch(ctx context.Context, key plan.Key) (*plan.Plan, error) {
	if err := faults.Inject("resolve.peer"); err != nil {
		return nil, fmt.Errorf("peer %s: %w", s.url, err)
	}
	blob, ok, err := s.c.PlanBlob(ctx, key.String())
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", s.url, err)
	}
	if !ok {
		return nil, ErrNotFound
	}
	p, _, err := planstore.Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("peer %s: bad blob: %w", s.url, err)
	}
	// The codec verified the blob's integrity; this verifies its
	// identity — a peer answering with a well-formed blob for the wrong
	// key must not poison the cache.
	if p.Key != key {
		return nil, fmt.Errorf("peer %s: key mismatch: asked %s, got %s", s.url, key, p.Key)
	}
	return p, nil
}

// Metrics exposes the underlying client's retry counters (attempts,
// retries, breaker opens) for the daemon's /metrics surface.
func (s *peerStage) Metrics() client.Metrics { return s.c.Metrics() }
