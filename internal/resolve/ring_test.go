package resolve

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = testKey(2 * (i + 2)).String()
	}
	return keys
}

func TestRingDeterminism(t *testing.T) {
	members := []string{"http://w0:8080", "http://w1:8080", "http://w2:8080"}
	a := NewRing(members, 0)
	b := NewRing([]string{members[2], members[0], members[1]}, 0) // order must not matter
	for _, k := range ringKeys(50) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q depends on member declaration order", k)
		}
		pa, pb := a.Pick(k), b.Pick(k)
		if fmt.Sprint(pa) != fmt.Sprint(pb) {
			t.Fatalf("preference order of %q depends on declaration order: %v vs %v", k, pa, pb)
		}
	}
}

func TestRingPickCoversAllMembersOnce(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	r := NewRing(members, 0)
	for _, k := range ringKeys(20) {
		pick := r.Pick(k)
		if len(pick) != len(members) {
			t.Fatalf("Pick(%q) = %v, want all %d members", k, pick, len(members))
		}
		seen := map[string]bool{}
		for _, m := range pick {
			if seen[m] {
				t.Fatalf("Pick(%q) repeats member %q: %v", k, m, pick)
			}
			seen[m] = true
		}
	}
}

func TestRingDistribution(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	r := NewRing(members, 0)
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	// With 64 virtual nodes per member a 4-way split should stay within
	// a loose factor of the 1000-per-member ideal; the test guards
	// against the classic 1-vnode failure mode where one member owns
	// nearly everything.
	for _, m := range members {
		if c := counts[m]; c < n/10 || c > n/2 {
			t.Errorf("member %s owns %d of %d keys — distribution badly skewed: %v", m, c, n, counts)
		}
	}
}

// TestRingMembershipStability checks the consistent-hashing point: losing
// one of four members must move only that member's keys, never remap a
// key between two surviving members.
func TestRingMembershipStability(t *testing.T) {
	full := NewRing([]string{"a", "b", "c", "d"}, 0)
	reduced := NewRing([]string{"a", "b", "c"}, 0)
	moved := 0
	const n = 2000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		before, after := full.Owner(k), reduced.Owner(k)
		if before == "d" {
			moved++
			continue // d's keys must move somewhere
		}
		if before != after {
			t.Fatalf("key %q remapped %s→%s though its owner survived", k, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("member d owned no keys — distribution test should have caught this")
	}
	// Failover agreement: the reduced ring's owner is exactly the full
	// ring's first surviving preference — a front that walks Pick() on
	// worker death lands where a rebuilt ring would route.
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		for _, m := range full.Pick(k) {
			if m == "d" {
				continue
			}
			if got := reduced.Owner(k); got != m {
				t.Fatalf("key %q: failover order gives %s, rebuilt ring gives %s", k, m, got)
			}
			break
		}
	}
}

func TestRingDegenerate(t *testing.T) {
	if NewRing(nil, 0).Pick("x") != nil {
		t.Error("empty ring should pick nothing")
	}
	one := NewRing([]string{"solo", "", "solo"}, 0) // blanks and dupes dropped
	if got := one.Members(); len(got) != 1 || got[0] != "solo" {
		t.Errorf("Members() = %v, want the one deduped member", got)
	}
	if o := one.Owner("anything"); o != "solo" {
		t.Errorf("Owner = %q, want solo", o)
	}
}
