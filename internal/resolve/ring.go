package resolve

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultRingReplicas is the virtual-node count per member when NewRing
// is given none. 64 points per member keeps the worst/best load skew
// within a few percent for small fleets without making Pick's binary
// search meaningfully slower.
const DefaultRingReplicas = 64

// Ring is a consistent-hash ring over fleet members. The front daemon
// hashes each request's canonical plan key onto the ring and forwards
// to the owning worker, so every worker's LRU stays hot on its own key
// slice instead of all workers caching all keys. Adding or removing a
// member remaps only the keys adjacent to its points — the property
// that makes scale-out and worker death cheap.
//
// A Ring is immutable after NewRing; membership changes build a new
// ring. That makes it safe for concurrent Pick with no locking.
type Ring struct {
	members []string
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring over members with the given virtual-node count
// per member (<= 0 selects DefaultRingReplicas). Duplicate members are
// collapsed; order does not matter.
func NewRing(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		idx := len(r.members)
		r.members = append(r.members, m)
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(m + "#" + strconv.Itoa(v)), member: idx})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// ringHash is FNV-64a pushed through a 64-bit avalanche finalizer.
// Raw FNV is stdlib-only and fast but mixes poorly on the short,
// near-identical strings hashed here ("w0#17", "w0#18", ...) — without
// the finalizer a member's virtual nodes cluster and the ring skews
// badly; with it every input bit diffuses across the whole hash.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Members returns the distinct members, in insertion order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Pick returns every member in preference order for key: the owner
// (first ring point at or after the key's hash) first, then each
// further member in ring-successor order. Callers walk the slice as a
// failover list — forward to [0], shed to [1] when it is down — which
// keeps failover deterministic per key, so a dead worker's keys all
// land on the same survivors and stay cache-hot there.
func (r *Ring) Pick(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.members))
	seen := make(map[int]bool, len(r.members))
	for i := 0; len(out) < len(r.members); i++ {
		pt := r.points[(start+i)%len(r.points)]
		if seen[pt.member] {
			continue
		}
		seen[pt.member] = true
		out = append(out, r.members[pt.member])
	}
	return out
}

// Owner returns just the owning member for key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if picks := r.Pick(key); len(picks) > 0 {
		return picks[0]
	}
	return ""
}
