// Package resolve generalises plan-cache filling into a composable
// resolver chain, modelled on delegated-routing multi-router designs:
// a Resolver materialises the plan for a key, concrete stages consult
// memory, disk, a remote peer, or the compiler, and Sequential/Parallel
// combinators compose stages into a chain with per-stage accounting and
// mandatory-vs-optional failure semantics.
//
// The contract every Resolver obeys:
//
//   - success: (*Plan, nil) — the plan for exactly this key;
//   - miss: (nil, ErrNotFound) — the stage is healthy but does not hold
//     the plan, composition moves on to the next stage;
//   - failure: (nil, err) for any other err — the stage broke
//     (unreachable peer, corrupt blob, failed compile). Combinators
//     treat a failing stage as mandatory and fail the whole lookup with
//     a *StageError; wrap a stage in Optional to demote its failures to
//     misses, so "peer down" degrades to the next stage instead of
//     surfacing a 5xx.
//
// Every stage tracks Stats with the invariant
// Hits + Misses + Errors == Lookups; combinators aggregate their
// children, so a chain's Stats() slice is the full per-stage hit/miss/
// latency/error breakdown the /metrics endpoint exports.
package resolve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
)

// ErrNotFound is the canonical miss: the stage is healthy but does not
// hold (and cannot produce) the plan. Sequential composition interprets
// it as "try the next stage"; any other error is a stage failure.
var ErrNotFound = errors.New("resolve: plan not found")

// StageError is a mandatory stage's failure, carrying which stage broke.
// Optional wrapping prevents these: an Optional stage's failures are
// demoted to misses before composition sees them.
type StageError struct {
	Stage string
	Err   error
}

func (e *StageError) Error() string { return fmt.Sprintf("resolve: stage %s: %v", e.Stage, e.Err) }
func (e *StageError) Unwrap() error { return e.Err }

// Stats is one stage's accounting. For leaf stages
// Hits+Misses+Errors == Lookups; combinator entries count their own
// composition-level lookups with the same invariant, followed by their
// children's entries.
type Stats struct {
	Stage   string        // stage name, unique per position in the chain
	Lookups int64         // total Resolve calls
	Hits    int64         // resolved here (or, for combinators, by a child)
	Misses  int64         // healthy not-found
	Errors  int64         // stage failures (including ctx cancellation)
	Latency time.Duration // cumulative wall time across all lookups
	// SaveErrors counts failed write-backs (WriteBack stages only).
	// Write-back failures never fail a lookup, so without this counter a
	// dying store behind a healthy compiler would be invisible.
	SaveErrors int64
	// LastError is the most recent failure message ("" while none).
	LastError string
}

// Resolver materialises the plan for a key. It extends the minimal
// plan.Resolver with a name and per-stage accounting; every Resolver in
// this package also satisfies plan.Resolver, so a composed chain plugs
// straight into plan.Cache.SetResolver.
type Resolver interface {
	// Name identifies the stage in stats and errors ("memory", "store",
	// "peer <url>", "sequential", ...).
	Name() string
	Resolve(ctx context.Context, key plan.Key) (*plan.Plan, error)
	// Stats returns this stage's accounting followed, for combinators,
	// by every descendant's, pre-order.
	Stats() []Stats
}

// meter is the shared accounting core embedded by every stage.
type meter struct {
	name string
	mu   sync.Mutex
	st   Stats
}

func newMeter(name string) meter { return meter{name: name, st: Stats{Stage: name}} }

func (m *meter) Name() string { return m.name }

func (m *meter) Stats() []Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return []Stats{m.st}
}

// observe records one lookup's outcome. A nil err is a hit,
// ErrNotFound a miss, anything else an error — mirroring the Resolver
// contract so the hits+misses+errors=lookups invariant holds by
// construction.
func (m *meter) observe(start time.Time, err error) {
	d := time.Since(start)
	m.mu.Lock()
	m.st.Lookups++
	m.st.Latency += d
	switch {
	case err == nil:
		m.st.Hits++
	case errors.Is(err, ErrNotFound):
		m.st.Misses++
	default:
		m.st.Errors++
		m.st.LastError = err.Error()
	}
	m.mu.Unlock()
}

func (m *meter) noteSaveError(err error) {
	m.mu.Lock()
	m.st.SaveErrors++
	m.st.LastError = err.Error()
	m.mu.Unlock()
}

// span opens a "resolve.<stage>" trace span for one lookup; outcome
// closes it, recording hit/miss/error the same way observe classifies
// them. Both are no-ops without a live trace in ctx.
func (m *meter) span(ctx context.Context) *obs.Span {
	_, s := obs.Start(ctx, "resolve."+m.name)
	return s
}

func outcome(s *obs.Span, err error) {
	switch {
	case err == nil:
		s.SetAttr("outcome", "hit")
	case errors.Is(err, ErrNotFound):
		s.SetAttr("outcome", "miss")
	default:
		s.SetAttr("outcome", "error")
		s.SetError(err)
	}
	s.End()
}

// memoryStage consults a plan.Cache's residency: a hit refreshes
// recency, a miss never triggers the cache's own fill.
type memoryStage struct {
	meter
	cache *plan.Cache
}

// Memory returns a stage resolving from a cache's resident plans.
// Chains attached to that same cache via SetResolver do NOT need this
// stage — the cache checks residency before invoking the chain — it
// exists for standalone chains and for fronting someone else's cache.
func Memory(c *plan.Cache) Resolver {
	return &memoryStage{meter: newMeter("memory"), cache: c}
}

func (s *memoryStage) Resolve(ctx context.Context, key plan.Key) (*plan.Plan, error) {
	start := time.Now()
	sp := s.span(ctx)
	p, ok := s.cache.Lookup(key)
	var err error
	if !ok {
		err = ErrNotFound
	}
	s.observe(start, err)
	outcome(sp, err)
	return p, err
}

// PlanStore is the store surface the disk stage consumes — satisfied by
// *planstore.Store and by in-memory test stores alike (it is
// plan.PlanStore minus Keys, which resolution never needs).
type PlanStore interface {
	Load(key plan.Key) (*plan.Plan, bool, error)
	Save(p *plan.Plan) error
}

type storeStage struct {
	meter
	ps PlanStore
}

// Store returns a stage resolving from a durable plan store. A store
// read error (corrupt blob, unreadable dir) is a stage failure, not a
// miss — wrap in Optional to keep today's degrade-to-compile behaviour.
func Store(ps PlanStore) Resolver {
	return &storeStage{meter: newMeter("store"), ps: ps}
}

func (s *storeStage) Resolve(ctx context.Context, key plan.Key) (*plan.Plan, error) {
	start := time.Now()
	sp := s.span(ctx)
	p, ok, err := s.ps.Load(key)
	if err == nil && !ok {
		err = ErrNotFound
	}
	s.observe(start, err)
	outcome(sp, err)
	if err != nil {
		return nil, err
	}
	return p, nil
}

type compilerStage struct {
	meter
}

// Compiler returns the last-resort stage: it reconstructs the compile
// request from the key (keys are canonical, so KeyOf(key.Request()) ==
// key) and compiles. It never misses — every outcome is a hit or a
// compile failure — so it terminates any sequential chain.
func Compiler() Resolver {
	return &compilerStage{meter: newMeter("compile")}
}

func (s *compilerStage) Resolve(ctx context.Context, key plan.Key) (*plan.Plan, error) {
	start := time.Now()
	sp := s.span(ctx)
	p, err := plan.Compile(key.Request())
	s.observe(start, err)
	outcome(sp, err)
	return p, err
}

type writeBackStage struct {
	inner Resolver
	ps    PlanStore
	m     *meter // aggregates save errors onto the inner stage's name
}

// WriteBack decorates a stage so its successes are saved to ps — the
// write-back that makes a fleet converge to zero recompiles: a plan a
// worker had to compile (or fetched from a peer) lands in the shared
// store for every other worker to resolve cheaply. Save failures are
// absorbed into the stage's SaveErrors counter, never failing the
// lookup.
func WriteBack(inner Resolver, ps PlanStore) Resolver {
	return &writeBackStage{inner: inner, ps: ps, m: &meter{name: inner.Name()}}
}

func (s *writeBackStage) Name() string { return s.inner.Name() }

func (s *writeBackStage) Resolve(ctx context.Context, key plan.Key) (*plan.Plan, error) {
	p, err := s.inner.Resolve(ctx, key)
	if err == nil {
		_, sp := obs.Start(ctx, "planstore.save")
		if serr := s.ps.Save(p); serr != nil {
			sp.SetError(serr)
			s.m.noteSaveError(serr)
		}
		sp.End()
	}
	return p, err
}

// Stats merges the write-back accounting into the inner stage's entry,
// so "compile" shows its own hits plus the saves that failed behind it.
func (s *writeBackStage) Stats() []Stats {
	out := s.inner.Stats()
	s.m.mu.Lock()
	if len(out) > 0 {
		out[0].SaveErrors += s.m.st.SaveErrors
		if out[0].LastError == "" {
			out[0].LastError = s.m.st.LastError
		}
	}
	s.m.mu.Unlock()
	return out
}

type optionalStage struct {
	inner Resolver
}

// Optional demotes a stage's failures to misses: an unreachable peer or
// corrupt store entry reads as "not found here" and composition moves
// on, instead of failing the lookup. The inner stage's own stats still
// record the failure as an error, so degradation stays observable.
func Optional(inner Resolver) Resolver { return &optionalStage{inner: inner} }

func (s *optionalStage) Name() string   { return s.inner.Name() }
func (s *optionalStage) Stats() []Stats { return s.inner.Stats() }

func (s *optionalStage) Resolve(ctx context.Context, key plan.Key) (*plan.Plan, error) {
	p, err := s.inner.Resolve(ctx, key)
	if err != nil && !errors.Is(err, ErrNotFound) {
		return nil, ErrNotFound
	}
	return p, err
}

type flight struct {
	done chan struct{}
	p    *plan.Plan
	err  error
}

type singleflightStage struct {
	meter
	inner Resolver
	mu    sync.Mutex
	calls map[plan.Key]*flight
}

// Singleflight coalesces concurrent lookups for the same key onto one
// inner resolution: ten workers missing on the same shape at once cost
// one peer fetch (or one compile), not ten. The leader's outcome counts
// once in the inner stage's stats; joiners count as hits here (they
// were satisfied without new work) unless the shared resolution failed.
// A chain attached to plan.Cache already gets this from the cache's own
// in-flight coalescing; Singleflight matters for standalone chains and
// for fan-in fronts.
func Singleflight(inner Resolver) Resolver {
	return &singleflightStage{
		meter: newMeter("singleflight(" + inner.Name() + ")"),
		inner: inner,
		calls: make(map[plan.Key]*flight),
	}
}

func (s *singleflightStage) Resolve(ctx context.Context, key plan.Key) (*plan.Plan, error) {
	start := time.Now()
	s.mu.Lock()
	if fl, ok := s.calls[key]; ok {
		s.mu.Unlock()
		<-fl.done
		s.observe(start, fl.err)
		return fl.p, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	s.calls[key] = fl
	s.mu.Unlock()

	fl.p, fl.err = s.inner.Resolve(ctx, key)

	s.mu.Lock()
	delete(s.calls, key)
	s.mu.Unlock()
	close(fl.done)
	s.observe(start, fl.err)
	return fl.p, fl.err
}

// Stats returns the coalescing layer's entry followed by the inner
// stage's: comparing the two Lookups counts is the dedup ratio.
func (s *singleflightStage) Stats() []Stats {
	out := s.meter.Stats()
	return append(out, s.inner.Stats()...)
}
