package resolve

import (
	"context"
	"errors"
	"time"

	"repro/internal/plan"
)

type sequentialStage struct {
	meter
	children []Resolver
}

// Sequential composes stages tried in order: the first hit wins, a miss
// (ErrNotFound) falls through to the next stage, and any other failure
// is mandatory — the lookup fails with a *StageError naming the broken
// stage. Wrap fallible stages in Optional to let the chain degrade past
// them. All children missing is the chain's miss.
func Sequential(children ...Resolver) Resolver {
	return &sequentialStage{meter: newMeter("sequential"), children: children}
}

func (s *sequentialStage) Resolve(ctx context.Context, key plan.Key) (*plan.Plan, error) {
	start := time.Now()
	for _, child := range s.children {
		if err := ctx.Err(); err != nil {
			s.observe(start, err)
			return nil, err
		}
		p, err := child.Resolve(ctx, key)
		switch {
		case err == nil:
			s.observe(start, nil)
			return p, nil
		case errors.Is(err, ErrNotFound):
			continue
		default:
			serr := &StageError{Stage: child.Name(), Err: err}
			s.observe(start, serr)
			return nil, serr
		}
	}
	s.observe(start, ErrNotFound)
	return nil, ErrNotFound
}

func (s *sequentialStage) Stats() []Stats {
	out := s.meter.Stats()
	for _, child := range s.children {
		out = append(out, child.Stats()...)
	}
	return out
}

type parallelStage struct {
	meter
	children []Resolver
}

// Parallel composes stages raced concurrently: the first hit wins and
// cancels the losers (their contexts fire; a slower peer abandons its
// fetch). A mandatory child's failure fails the whole race immediately;
// every child missing (or being optional-degraded to a miss) is the
// stage's miss. Use for racing several peers for the same plan —
// whoever holds it answers, nobody waits for the slowest.
func Parallel(children ...Resolver) Resolver {
	return &parallelStage{meter: newMeter("parallel"), children: children}
}

type raceResult struct {
	p   *plan.Plan
	err error
}

func (s *parallelStage) Resolve(ctx context.Context, key plan.Key) (*plan.Plan, error) {
	start := time.Now()
	if len(s.children) == 0 {
		s.observe(start, ErrNotFound)
		return nil, ErrNotFound
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Buffered to len(children): losers complete into the buffer and
	// exit — no goroutine blocks on a result nobody will read.
	results := make(chan raceResult, len(s.children))
	for _, child := range s.children {
		go func(r Resolver) {
			p, err := r.Resolve(rctx, key)
			if err != nil && !errors.Is(err, ErrNotFound) {
				var se *StageError
				if !errors.As(err, &se) {
					err = &StageError{Stage: r.Name(), Err: err}
				}
			}
			results <- raceResult{p, err}
		}(child)
	}
	var firstErr error
	for range s.children {
		res := <-results
		switch {
		case res.err == nil:
			s.observe(start, nil)
			return res.p, nil // defer cancels the losers
		case errors.Is(res.err, ErrNotFound):
			continue
		default:
			if firstErr == nil {
				// Mandatory failure: stop the race now. Remaining children
				// drain into the buffer after cancellation; their ctx
				// errors are collateral, only the instigator is reported.
				firstErr = res.err
				cancel()
			}
		}
	}
	if firstErr != nil {
		s.observe(start, firstErr)
		return nil, firstErr
	}
	s.observe(start, ErrNotFound)
	return nil, ErrNotFound
}

func (s *parallelStage) Stats() []Stats {
	out := s.meter.Stats()
	for _, child := range s.children {
		out = append(out, child.Stats()...)
	}
	return out
}
