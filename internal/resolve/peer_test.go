package resolve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/faults"
	"repro/internal/plan"
	"repro/internal/planstore"
)

// blobServer is a minimal stand-in for a warm fleet worker: it serves
// planstore-encoded blobs for whatever keys its map holds, over the same
// GET /v1/plans/{key} route wsed exposes.
func blobServer(t *testing.T, plans map[plan.Key]*plan.Plan) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/plans/{key}", func(w http.ResponseWriter, r *http.Request) {
		key, err := plan.ParseKey(r.PathValue("key"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p, ok := plans[key]
		if !ok {
			http.Error(w, `{"error":{"code":"not_found"}}`, http.StatusNotFound)
			return
		}
		blob, _, err := planstore.Encode(p)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(blob)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// fastPeer builds a Peer stage with test-grade impatience: single
// attempt, tiny timeout, breaker effectively off.
func fastPeer(url string) Resolver {
	return Peer(url, client.Config{
		MaxAttempts:      1,
		AttemptTimeout:   2 * time.Second,
		BreakerThreshold: 1000,
	})
}

func TestPeerHit(t *testing.T) {
	key := testKey(4)
	p := mustCompile(t, key)
	srv := blobServer(t, map[plan.Key]*plan.Plan{key: p})

	peer := fastPeer(srv.URL)
	got, err := peer.Resolve(context.Background(), key)
	if err != nil {
		t.Fatalf("peer resolve: %v", err)
	}
	if got.Key != key {
		t.Fatalf("peer returned plan for %s, want %s", got.Key, key)
	}
	// Bit-identity across the wire: the fetched plan must re-encode to
	// exactly what a local compile encodes to.
	local, _, _ := planstore.Encode(p)
	remote, _, err := planstore.Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(local) != string(remote) {
		t.Error("peer-fetched plan encodes differently from the local compile")
	}
	if st := peer.Stats()[0]; st.Hits != 1 || st.Lookups != 1 {
		t.Errorf("peer stats = %+v, want 1 lookup 1 hit", st)
	}
}

func TestPeerMissIs404IsErrNotFound(t *testing.T) {
	srv := blobServer(t, nil)
	peer := fastPeer(srv.URL)
	_, err := peer.Resolve(context.Background(), testKey(4))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("cold peer = %v, want ErrNotFound", err)
	}
	if st := peer.Stats()[0]; st.Misses != 1 || st.Errors != 0 {
		t.Errorf("peer stats = %+v, want a clean miss", st)
	}
}

func TestPeerDeadIsFailureNotMiss(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // dead on arrival
	peer := fastPeer(srv.URL)
	_, err := peer.Resolve(context.Background(), testKey(4))
	if err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("dead peer = %v, want a non-miss failure", err)
	}
	if st := peer.Stats()[0]; st.Errors != 1 {
		t.Errorf("peer stats = %+v, want the failure counted", st)
	}
}

// TestPeerRejectsWrongKey checks the identity gate: a peer answering
// with a valid blob for a different key must be a failure, not a hit —
// otherwise one confused worker poisons every cache that trusts it.
func TestPeerRejectsWrongKey(t *testing.T) {
	asked, held := testKey(4), testKey(8)
	wrong := mustCompile(t, held)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/plans/{key}", func(w http.ResponseWriter, r *http.Request) {
		blob, _, _ := planstore.Encode(wrong)
		w.Write(blob) // always answers with the wrong plan
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	peer := fastPeer(srv.URL)
	_, err := peer.Resolve(context.Background(), asked)
	if err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("wrong-key blob = %v, want a failure", err)
	}
	if !strings.Contains(err.Error(), "key mismatch") {
		t.Errorf("error %q does not name the mismatch", err)
	}
}

func TestPeerFailpoint(t *testing.T) {
	key := testKey(4)
	srv := blobServer(t, map[plan.Key]*plan.Plan{key: mustCompile(t, key)})
	peer := fastPeer(srv.URL)

	faults.Set("resolve.peer", faults.Point{Mode: faults.ModeError, Count: 1})
	defer faults.Reset()
	if _, err := peer.Resolve(context.Background(), key); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("armed failpoint = %v, want ErrInjected", err)
	}
	// Exhausted after count=1: the very same stage now serves the hit.
	if _, err := peer.Resolve(context.Background(), key); err != nil {
		t.Fatalf("after failpoint exhaustion: %v", err)
	}
}

// TestFleetChainColdWorker is the tentpole scenario in miniature: a cold
// worker's chain (store miss → peer hit → write-back → compile never
// runs) serves its first request via remote fetch and leaves the plan in
// its local store for next time.
func TestFleetChainColdWorker(t *testing.T) {
	key := testKey(6)
	warm := mustCompile(t, key)
	srv := blobServer(t, map[plan.Key]*plan.Plan{key: warm})

	local := newMemStore()
	chain := Sequential(
		Optional(Store(local)),
		Optional(WriteBack(fastPeer(srv.URL), local)),
		WriteBack(Compiler(), local),
	)
	p, err := chain.Resolve(context.Background(), key)
	if err != nil {
		t.Fatalf("cold-worker resolve: %v", err)
	}
	if p.Key != key {
		t.Fatalf("resolved wrong plan: %s", p.Key)
	}
	for _, st := range chain.Stats() {
		switch {
		case st.Stage == "compile" && st.Lookups != 0:
			t.Errorf("cold worker compiled despite a warm peer: %+v", st)
		case strings.HasPrefix(st.Stage, "peer") && st.Hits != 1:
			t.Errorf("peer stats = %+v, want the fetch", st)
		}
	}
	if _, ok := local.m[key]; !ok {
		t.Error("peer fetch was not written back to the local store")
	}
	// Second lookup: local store hit, peer not consulted again.
	if _, err := chain.Resolve(context.Background(), key); err != nil {
		t.Fatal(err)
	}
	for _, st := range chain.Stats() {
		if strings.HasPrefix(st.Stage, "peer") && st.Lookups != 1 {
			t.Errorf("peer consulted again after write-back: %+v", st)
		}
	}
	checkInvariant(t, chain)
}

// TestFleetChainPeerDownDegradesToCompile: the chaos posture — with the
// peer dead and the chain's peer stage Optional, lookups degrade to
// compile with no error surfaced.
func TestFleetChainPeerDownDegradesToCompile(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	local := newMemStore()
	chain := Sequential(
		Optional(Store(local)),
		Optional(fastPeer(dead.URL)),
		WriteBack(Compiler(), local),
	)
	key := testKey(4)
	p, err := chain.Resolve(context.Background(), key)
	if err != nil || p == nil {
		t.Fatalf("degraded resolve = %v, %v; want a compiled plan", p, err)
	}
	var peerErrors, compileHits int64
	for _, st := range chain.Stats() {
		if strings.HasPrefix(st.Stage, "peer") {
			peerErrors = st.Errors
		}
		if st.Stage == "compile" {
			compileHits = st.Hits
		}
	}
	if peerErrors != 1 || compileHits != 1 {
		t.Errorf("degradation not visible in stats: peer errors %d, compile hits %d", peerErrors, compileHits)
	}
	checkInvariant(t, chain)
}
