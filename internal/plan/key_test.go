package plan

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
)

// TestKeyEncodingPinned pins the exact textual key encoding the plan
// store's manifest and index are addressed by. If this test fails, plans
// stored by earlier releases will silently miss: either restore the
// encoding, or bump KeyEncodingVersion and accept orphaning old stores as
// a deliberate decision.
func TestKeyEncodingPinned(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{
			// The tracked benchmark shape under fully defaulted options:
			// TR, queue depth and cycle budget must appear resolved.
			"defaults-resolved",
			Request{Kind: Reduce1D, Alg: core.Auto, P: 512, B: 16, Op: fabric.OpSum},
			"k1;reduce1d;alg=auto;alg2d=;p=512;w=0;h=0;b=16;op=sum;tr=2;qcap=4;maxcyc=17179869184;skew=0;noop=0x0p+00;act=0;seed=0;shards=0",
		},
		{
			// Every option explicit, including a literal-zero ramp
			// (spelled TR=-1 in Options, canonically tr=0) and a thermal
			// rate that only hexadecimal float notation renders exactly.
			"all-options",
			Request{Kind: AllReduce2D, Alg2D: core.XYTree, Width: 8, Height: 4, B: 32, Op: fabric.OpMax,
				Opt: fabric.Options{TR: -1, QueueCap: 2, MaxCycles: 1 << 28, ClockSkewMax: 5,
					ThermalNoopRate: 0.25, TaskActivation: 3, Seed: 9, Shards: 4}},
			"k1;allreduce2d;alg=;alg2d=xy-tree;p=0;w=8;h=4;b=32;op=max;tr=0;qcap=2;maxcyc=268435456;skew=5;noop=0x1p-02;act=3;seed=9;shards=4",
		},
		{
			// Algorithm-free chunked kind: Alg and the 2D fields are
			// canonically absent even if a caller sets them.
			"gather-canonical",
			Request{Kind: Gather, Alg: core.Chain, Alg2D: core.Snake, P: 16, Width: 3, Height: 3, B: 64},
			"k1;gather;alg=;alg2d=;p=16;w=0;h=0;b=64;op=sum;tr=2;qcap=4;maxcyc=17179869184;skew=0;noop=0x0p+00;act=0;seed=0;shards=0",
		},
	}
	for _, tc := range cases {
		if got := KeyOf(tc.req).String(); got != tc.want {
			t.Errorf("%s:\n got  %s\n want %s", tc.name, got, tc.want)
		}
	}
}

// TestKeyCanonicalisation checks the default-resolution rules: requests
// that compile and execute identically must share one key, so stored
// plans keep hitting whatever equivalent spelling a caller uses.
func TestKeyCanonicalisation(t *testing.T) {
	base := Request{Kind: Reduce1D, Alg: core.Chain, P: 8, B: 16, Op: fabric.OpSum}
	equivalent := []struct {
		name string
		mut  func(Request) Request
	}{
		{"explicit-TR", func(r Request) Request { r.Opt.TR = fabric.DefaultTR; return r }},
		{"explicit-queue-cap", func(r Request) Request { r.Opt.QueueCap = fabric.DefaultQueueCap; return r }},
		{"explicit-max-cycles", func(r Request) Request { r.Opt.MaxCycles = fabric.DefaultMaxCycles; return r }},
		{"seed-without-noise", func(r Request) Request { r.Opt.Seed = 1234; return r }},
		{"shards-one-is-serial", func(r Request) Request { r.Opt.Shards = 1; return r }},
		{"irrelevant-2d-alg", func(r Request) Request { r.Alg2D = core.Snake; return r }},
		{"irrelevant-grid", func(r Request) Request { r.Width, r.Height = 9, 9; return r }},
	}
	want := KeyOf(base)
	for _, tc := range equivalent {
		if got := KeyOf(tc.mut(base)); got != want {
			t.Errorf("%s: key diverged:\n got  %s\n want %s", tc.name, got, want)
		}
	}
	// Op-free kinds ignore the reduction operator: a caller spelling
	// -op max on a gather must still hit the stored plan.
	for _, kind := range []Kind{Broadcast1D, Broadcast2D, Scatter, Gather, AllGather} {
		a := Request{Kind: kind, P: 8, Width: 4, Height: 2, B: 16}
		b := a
		b.Op = fabric.OpMax
		if KeyOf(a) != KeyOf(b) {
			t.Errorf("%s: operator changed the key of an op-free kind", kind)
		}
	}
	// And the inverse: options that change execution must change the key.
	distinct := []func(Request) Request{
		func(r Request) Request { r.Opt.TR = -1; return r },
		func(r Request) Request { r.Opt.Seed = 7; r.Opt.ClockSkewMax = 2; return r },
		func(r Request) Request { r.Opt.Shards = 2; return r },
		func(r Request) Request { r.Opt.ThermalNoopRate = 0.5; return r },
	}
	for i, mut := range distinct {
		if got := KeyOf(mut(base)); got == want {
			t.Errorf("distinct mutation %d collided with the base key", i)
		}
	}
}

// TestKeyRequestRoundTrip checks Key.Request is a right inverse of KeyOf:
// warming from a store's key list must re-derive exactly the stored keys.
func TestKeyRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Kind: Reduce1D, Alg: core.Auto, P: 512, B: 16, Op: fabric.OpSum},
		{Kind: Reduce1D, Alg: core.AutoGen, P: 32, B: 4, Op: fabric.OpMin,
			Opt: fabric.Options{TR: -1, Shards: 4, MaxCycles: 1 << 20}},
		{Kind: AllReduce2D, Alg2D: core.Auto2D, Width: 6, Height: 4, B: 8, Op: fabric.OpSum,
			Opt: fabric.Options{ClockSkewMax: 3, ThermalNoopRate: 0.125, Seed: 11}},
		{Kind: Broadcast1D, P: 64, B: 256},
		{Kind: AllGather, P: 16, B: 64},
	}
	for _, req := range reqs {
		k := KeyOf(req)
		if again := KeyOf(k.Request()); again != k {
			t.Errorf("KeyOf(k.Request()) drifted:\n got  %s\n want %s", again, k)
		}
	}
}

// TestParseKeyRoundTrip checks ParseKey is the inverse of Key.String —
// the property the fleet's blob endpoint rests on: a peer receiving the
// key string on the wire must reconstruct the identical Key (and so
// address the identical plan) without ever seeing the original request.
func TestParseKeyRoundTrip(t *testing.T) {
	reqs := []Request{
		{Kind: Reduce1D, Alg: core.Auto, P: 512, B: 16, Op: fabric.OpSum},
		{Kind: AllReduce2D, Alg2D: core.XYTree, Width: 8, Height: 4, B: 32, Op: fabric.OpMax,
			Opt: fabric.Options{TR: -1, QueueCap: 2, MaxCycles: 1 << 28, ClockSkewMax: 5,
				ThermalNoopRate: 0.25, TaskActivation: 3, Seed: 9, Shards: 4}},
		{Kind: Gather, P: 16, B: 64},
		{Kind: Reduce1D, Alg: core.AutoGen, P: 32, B: 4, Op: fabric.OpMin,
			Opt: fabric.Options{ThermalNoopRate: 0.1, Seed: 42}},
	}
	for _, req := range reqs {
		k := KeyOf(req)
		got, err := ParseKey(k.String())
		if err != nil {
			t.Errorf("ParseKey(%q): %v", k.String(), err)
			continue
		}
		if got != k {
			t.Errorf("ParseKey round trip drifted:\n got  %#v\n want %#v", got, k)
		}
	}
}

// TestParseKeyRejects checks the malformed-key taxonomy: wrong version,
// wrong field count, misnamed or unparseable fields all error instead of
// silently producing a wrong (and then cached, and then served) key.
func TestParseKeyRejects(t *testing.T) {
	good := KeyOf(Request{Kind: Reduce1D, Alg: core.Auto, P: 8, B: 4, Op: fabric.OpSum}).String()
	bad := []struct {
		name, key string
	}{
		{"empty", ""},
		{"garbage", "not a key"},
		{"wrong-version", "k9" + good[2:]},
		{"truncated", good[:len(good)-10]},
		{"reordered-field", replaceOnce(good, "qcap=", "paqc=")},
		{"bad-op", replaceOnce(good, "op=sum", "op=avg")},
		{"bad-int", replaceOnce(good, "p=8", "p=eight")},
		{"bad-float", replaceOnce(good, "noop=0x0p+00", "noop=zero")},
	}
	for _, tc := range bad {
		if _, err := ParseKey(tc.key); err == nil {
			t.Errorf("%s: ParseKey(%q) accepted a malformed key", tc.name, tc.key)
		}
	}
	if _, err := ParseKey(good); err != nil {
		t.Fatalf("control: ParseKey rejected a good key: %v", err)
	}
}

func replaceOnce(s, old, new string) string {
	return strings.Replace(s, old, new, 1)
}
