package plan

import (
	"bytes"
	"log"
	"strings"
	"testing"
)

// TestLastStoreErrorSurfaced: write-through failures must not stay a
// bare counter — the last error string lands in CacheStats and exactly
// one warning is logged per attached store.
func TestLastStoreErrorSurfaced(t *testing.T) {
	var buf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(prev)

	c := NewCache(4)
	ms := newMemStore()
	ms.failSave = true
	c.SetStore(ms)

	if _, err := c.Get(warmReq(4)); err != nil {
		t.Fatalf("store failure must not fail the lookup: %v", err)
	}
	if _, err := c.Get(warmReq(5)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.StoreErrors != 2 {
		t.Fatalf("StoreErrors = %d, want 2", st.StoreErrors)
	}
	if !strings.Contains(st.LastStoreError, "save failure") {
		t.Fatalf("LastStoreError = %q", st.LastStoreError)
	}
	if n := strings.Count(buf.String(), "store degraded"); n != 1 {
		t.Fatalf("logged %d times, want once per store:\n%s", n, buf.String())
	}

	// Re-attaching a store re-arms the warning.
	buf.Reset()
	c.SetStore(ms)
	if _, err := c.Get(warmReq(6)); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "store degraded"); n != 1 {
		t.Fatalf("re-attached store logged %d times, want 1", n)
	}
}

// TestLastStoreErrorEmptyWhenHealthy: a healthy store leaves the field
// blank.
func TestLastStoreErrorEmptyWhenHealthy(t *testing.T) {
	c := NewCache(4)
	c.SetStore(newMemStore())
	if _, err := c.Get(warmReq(4)); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.LastStoreError != "" || st.StoreErrors != 0 {
		t.Fatalf("healthy store produced %+v", st)
	}
}
