package plan

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sched"
)

// TestRunContextPreCancelled: a dead context never reaches the worker
// pool; the caller gets ctx.Err() and the request counts cancelled.
func TestRunContextPreCancelled(t *testing.T) {
	s := NewSession(4, 1)
	defer s.Close()
	req := Request{Kind: Reduce1D, Alg: core.Chain, P: 8, B: 4, Op: fabric.OpSum}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx, req, poolTestInputs(req)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext with dead context: %v, want context.Canceled", err)
	}
	st := s.SchedStats().Tenants[sched.DefaultTenantName]
	if st.Cancelled != 1 || st.Served != 0 {
		t.Fatalf("stats %+v: want cancelled=1 served=0", st)
	}
	// Admission precedes plan acquisition: the turned-away request must
	// not have compiled its shape or touched the cache.
	if cs := s.Stats(); cs.Misses != 0 || cs.Size != 0 {
		t.Fatalf("cache stats %+v: a rejected request compiled anyway", cs)
	}
}

// TestOverloadedTenantDoesNotCompile: requests rejected by admission
// control never reach the compiler or churn the shared plan cache.
func TestOverloadedTenantDoesNotCompile(t *testing.T) {
	s := NewSession(8, 1)
	defer s.Close()
	s.SetTenant("blocker", sched.TenantConfig{Priority: sched.Interactive})
	s.SetTenant("flood", sched.TenantConfig{MaxQueue: 1})

	slow := Request{Kind: Reduce2D, Alg2D: core.Auto2D, Width: 48, Height: 48, B: 64, Op: fabric.OpSum}
	if _, err := s.Plan(slow); err != nil {
		t.Fatal(err)
	}
	slowInputs := poolTestInputs(slow)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), "blocker", slow, slowInputs); err != nil {
				t.Errorf("blocker: %v", err)
			}
		}()
	}
	waitTenant(t, s, "blocker", func(ts sched.TenantStats) bool { return ts.Depth >= 1 })

	// Fill flood's single queue slot with an already-compiled shape...
	small := Request{Kind: Reduce1D, Alg: core.Chain, P: 8, B: 4, Op: fabric.OpSum}
	if _, err := s.Plan(small); err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Submit(context.Background(), "flood", small, poolTestInputs(small)); err != nil {
			t.Errorf("queued flood request: %v", err)
		}
	}()
	waitTenant(t, s, "flood", func(ts sched.TenantStats) bool { return ts.Depth == 1 })

	// ...then flood with distinct uncompiled shapes: every one must be
	// rejected before compilation.
	misses := s.Stats().Misses
	for b := 10; b < 20; b++ {
		novel := Request{Kind: Reduce1D, Alg: core.Chain, P: 8, B: b, Op: fabric.OpSum}
		if _, err := s.Submit(context.Background(), "flood", novel, poolTestInputs(novel)); !errors.Is(err, sched.ErrOverloaded) {
			t.Fatalf("flood over the bound: %v, want ErrOverloaded", err)
		}
	}
	if got := s.Stats().Misses; got != misses {
		t.Fatalf("cache misses went %d -> %d: rejected requests compiled", misses, got)
	}
	if fl := s.SchedStats().Tenants["flood"]; fl.Rejected != 10 {
		t.Fatalf("flood stats %+v: want rejected=10", fl)
	}
	wg.Wait()
}

// TestRunContextAbandonsQueuedRequest is the regression test for the
// PR 1–3 worker pool: Run had no cancellation path, so a caller
// abandoning a request queued behind a busy pool leaked a goroutine
// blocked on the slot channel forever. With the scheduler, RunContext
// unqueues the request and returns ctx.Err() while the pool is still
// busy — the request is never executed.
func TestRunContextAbandonsQueuedRequest(t *testing.T) {
	s := NewSession(8, 1)
	defer s.Close()

	// Slow replays under an Interactive-class tenant occupy the single
	// worker and its queue. Strict priority makes the test deterministic
	// on a starved single-core host: the Batch-class request below
	// cannot be dispatched while any blocker is still queued, however
	// the goroutines interleave.
	s.SetTenant("blocker", sched.TenantConfig{Priority: sched.Interactive})
	slow := Request{Kind: Reduce2D, Alg2D: core.Auto2D, Width: 48, Height: 48, B: 64, Op: fabric.OpSum}
	slowInputs := poolTestInputs(slow)
	if _, err := s.Plan(slow); err != nil { // compile before occupying the pool
		t.Fatal(err)
	}
	const blockers = 3
	var wg sync.WaitGroup
	for i := 0; i < blockers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), "blocker", slow, slowInputs); err != nil {
				t.Errorf("blocker run: %v", err)
			}
		}()
	}
	waitTenant(t, s, "blocker", func(ts sched.TenantStats) bool { return ts.Depth >= 1 })

	// Queue a small default-tenant request behind the blockers, then
	// cancel it once it is observably queued.
	small := Request{Kind: Reduce1D, Alg: core.Chain, P: 8, B: 4, Op: fabric.OpSum}
	ctx, cancel := context.WithCancel(context.Background())
	returned := make(chan struct{})
	go func() {
		defer cancel()
		for {
			if s.SchedStats().Tenants[sched.DefaultTenantName].Depth == 1 {
				return // queued: cancel it
			}
			select {
			case <-returned:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	_, err := s.RunContext(ctx, small, poolTestInputs(small))
	close(returned)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned queued request: %v, want context.Canceled", err)
	}

	wg.Wait()
	s.Close()
	st := s.SchedStats()
	def := st.Tenants[sched.DefaultTenantName]
	if def.Cancelled != 1 || def.Served != 0 || def.Submitted != 1 {
		t.Fatalf("default tenant %+v: want the abandoned request cancelled, never executed", def)
	}
	if bl := st.Tenants["blocker"]; bl.Served != blockers {
		t.Fatalf("blocker tenant %+v: want %d served", bl, blockers)
	}
}

func waitTenant(t *testing.T, s *Session, name string, cond func(sched.TenantStats) bool) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for !cond(s.SchedStats().Tenants[name]) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for tenant %s state (now %+v)", name, s.SchedStats().Tenants[name])
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEvictionUnderConcurrentMixedTenantLoad churns a capacity-2 plan
// cache with five distinct shapes submitted by five tenants of mixed
// weight and priority, so plans are constantly evicted while replays of
// them are still in flight. Every report must stay bit-identical to a
// fresh single-threaded run: an evicted plan's pooled fabrics must never
// be re-armed for a different plan's replay. Run under -race in CI.
func TestEvictionUnderConcurrentMixedTenantLoad(t *testing.T) {
	reqs := []Request{
		{Kind: Reduce1D, Alg: core.Chain, P: 12, B: 6, Op: fabric.OpSum},
		{Kind: AllReduce1D, Alg: core.Tree, P: 10, B: 5, Op: fabric.OpMax},
		{Kind: Broadcast1D, P: 9, B: 7},
		{Kind: Reduce2D, Alg2D: core.Auto2D, Width: 4, Height: 3, B: 5, Op: fabric.OpSum},
		{Kind: Gather, P: 6, B: 12},
	}
	want := make([]*core.Report, len(reqs))
	for i, req := range reqs {
		p, err := Compile(req)
		if err != nil {
			t.Fatal(err)
		}
		if want[i], err = p.ExecuteUnpooled(poolTestInputs(req)); err != nil {
			t.Fatal(err)
		}
	}

	s := NewSessionSched(2, sched.Config{Workers: 4}) // capacity 2 < 5 shapes: eviction on nearly every miss
	classes := []sched.Priority{sched.Interactive, sched.Batch, sched.Batch, sched.Background, sched.Batch}
	for i := range reqs {
		s.SetTenant(fmt.Sprintf("tenant%d", i), sched.TenantConfig{Weight: i + 1, Priority: classes[i]})
	}

	const iters = 25
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("tenant%d", i)
			inputs := poolTestInputs(reqs[i])
			for n := 0; n < iters; n++ {
				rep, err := s.Submit(context.Background(), name, reqs[i], inputs)
				if err != nil {
					t.Errorf("%s iter %d: %v", name, n, err)
					return
				}
				sameReport(t, want[i], rep, fmt.Sprintf("%s iter %d", name, n))
			}
		}(i)
	}
	wg.Wait()
	s.Close()

	if st := s.Stats(); st.Evictions == 0 {
		t.Fatalf("cache stats %+v: the load was supposed to evict", st)
	}
	var served int64
	for name, ts := range s.SchedStats().Tenants {
		if ts.Submitted != ts.Served+ts.Rejected+ts.Cancelled {
			t.Errorf("%s accounting unbalanced: %+v", name, ts)
		}
		served += ts.Served
	}
	if want := int64(len(reqs) * iters); served != want {
		t.Fatalf("served %d, want %d", served, want)
	}
}
