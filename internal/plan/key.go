package plan

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fabric"
)

// KeyEncodingVersion tags the textual key form. It only changes when the
// rendering below changes incompatibly; bumping it deliberately orphans
// every stored plan, which is the point — a silent drift in the encoding
// would orphan them accidentally.
const KeyEncodingVersion = 1

// String renders the key in its pinned, versioned textual form — the form
// the plan store's manifest indexes by. Every field of the key appears;
// the thermal rate uses hexadecimal float notation so the rendering is
// exact and locale-free. TestKeyEncodingPinned fails if this drifts, which
// would make stored plans silently miss after an upgrade.
func (k Key) String() string {
	return fmt.Sprintf("k%d;%s;alg=%s;alg2d=%s;p=%d;w=%d;h=%d;b=%d;op=%s;tr=%d;qcap=%d;maxcyc=%d;skew=%d;noop=%s;act=%d;seed=%d;shards=%d",
		KeyEncodingVersion, k.Kind, k.Alg, k.Alg2D, k.P, k.Width, k.Height, k.B, k.Op,
		k.Opt.TR, k.Opt.QueueCap, k.Opt.MaxCycles, k.Opt.ClockSkewMax,
		strconv.FormatFloat(k.Opt.ThermalNoopRate, 'x', -1, 64),
		k.Opt.TaskActivation, k.Opt.Seed, k.Opt.Shards)
}

// ParseKey is the inverse of Key.String: it parses the pinned textual
// form back into a Key. This is what lets a plan be addressed over the
// wire — a peer daemon receives the key string on its blob endpoint and
// looks the plan up without ever seeing the originating request. Only
// the current KeyEncodingVersion parses; a version-mismatched key is an
// error, exactly as a version-mismatched blob is.
func ParseKey(s string) (Key, error) {
	var k Key
	fields := strings.Split(s, ";")
	if len(fields) != 17 {
		return k, fmt.Errorf("plan: bad key %q: want 17 fields, got %d", s, len(fields))
	}
	if fields[0] != fmt.Sprintf("k%d", KeyEncodingVersion) {
		return k, fmt.Errorf("plan: key %q has version tag %q, this build speaks k%d", s, fields[0], KeyEncodingVersion)
	}
	k.Kind = Kind(fields[1])
	// The remaining fields are name=value pairs in pinned order; parse by
	// name so a reordering (which String can never produce) is caught.
	want := [...]string{"alg", "alg2d", "p", "w", "h", "b", "op", "tr", "qcap", "maxcyc", "skew", "noop", "act", "seed", "shards"}
	vals := make(map[string]string, len(want))
	for i, name := range want {
		got, val, ok := strings.Cut(fields[2+i], "=")
		if !ok || got != name {
			return k, fmt.Errorf("plan: bad key %q: field %d is %q, want %s=...", s, 2+i, fields[2+i], name)
		}
		vals[name] = val
	}
	k.Alg = core.Pattern(vals["alg"])
	k.Alg2D = core.Pattern2D(vals["alg2d"])
	var err error
	atoi := func(name string) int {
		if err != nil {
			return 0
		}
		var n int
		if n, err = strconv.Atoi(vals[name]); err != nil {
			err = fmt.Errorf("plan: bad key %q: %s=%q: %v", s, name, vals[name], err)
		}
		return n
	}
	k.P, k.Width, k.Height, k.B = atoi("p"), atoi("w"), atoi("h"), atoi("b")
	k.Opt.TR, k.Opt.QueueCap = atoi("tr"), atoi("qcap")
	k.Opt.TaskActivation, k.Opt.Shards = atoi("act"), atoi("shards")
	if err != nil {
		return k, err
	}
	switch vals["op"] {
	case "sum":
		k.Op = fabric.OpSum
	case "max":
		k.Op = fabric.OpMax
	case "min":
		k.Op = fabric.OpMin
	default:
		return k, fmt.Errorf("plan: bad key %q: op=%q (sum, max, min)", s, vals["op"])
	}
	if k.Opt.MaxCycles, err = strconv.ParseInt(vals["maxcyc"], 10, 64); err != nil {
		return k, fmt.Errorf("plan: bad key %q: maxcyc=%q", s, vals["maxcyc"])
	}
	if k.Opt.ClockSkewMax, err = strconv.ParseInt(vals["skew"], 10, 64); err != nil {
		return k, fmt.Errorf("plan: bad key %q: skew=%q", s, vals["skew"])
	}
	// ParseFloat accepts the hexadecimal notation String emits.
	if k.Opt.ThermalNoopRate, err = strconv.ParseFloat(vals["noop"], 64); err != nil {
		return k, fmt.Errorf("plan: bad key %q: noop=%q", s, vals["noop"])
	}
	if k.Opt.Seed, err = strconv.ParseUint(vals["seed"], 10, 64); err != nil {
		return k, fmt.Errorf("plan: bad key %q: seed=%q", s, vals["seed"])
	}
	return k, nil
}

// Request reconstructs a compile request from a canonical key, such that
// KeyOf(k.Request()) == k. This is how Session.Warm turns the keys listed
// by a store back into compilable (and therefore loadable) requests.
func (k Key) Request() Request {
	tr := k.Opt.TR
	if tr == 0 {
		// Canonical TR 0 means a literal zero-latency ramp, which the
		// Options field spells as a negative value (0 selects the WSE-2
		// default).
		tr = -1
	}
	return Request{
		Kind:   k.Kind,
		Alg:    k.Alg,
		Alg2D:  k.Alg2D,
		P:      k.P,
		Width:  k.Width,
		Height: k.Height,
		B:      k.B,
		Op:     k.Op,
		Opt: fabric.Options{
			TR:              tr,
			QueueCap:        k.Opt.QueueCap,
			MaxCycles:       k.Opt.MaxCycles,
			ClockSkewMax:    k.Opt.ClockSkewMax,
			ThermalNoopRate: k.Opt.ThermalNoopRate,
			TaskActivation:  k.Opt.TaskActivation,
			Seed:            k.Opt.Seed,
			Shards:          k.Opt.Shards,
		},
	}
}
