package plan

import (
	"fmt"
	"strconv"

	"repro/internal/fabric"
)

// KeyEncodingVersion tags the textual key form. It only changes when the
// rendering below changes incompatibly; bumping it deliberately orphans
// every stored plan, which is the point — a silent drift in the encoding
// would orphan them accidentally.
const KeyEncodingVersion = 1

// String renders the key in its pinned, versioned textual form — the form
// the plan store's manifest indexes by. Every field of the key appears;
// the thermal rate uses hexadecimal float notation so the rendering is
// exact and locale-free. TestKeyEncodingPinned fails if this drifts, which
// would make stored plans silently miss after an upgrade.
func (k Key) String() string {
	return fmt.Sprintf("k%d;%s;alg=%s;alg2d=%s;p=%d;w=%d;h=%d;b=%d;op=%s;tr=%d;qcap=%d;maxcyc=%d;skew=%d;noop=%s;act=%d;seed=%d;shards=%d",
		KeyEncodingVersion, k.Kind, k.Alg, k.Alg2D, k.P, k.Width, k.Height, k.B, k.Op,
		k.Opt.TR, k.Opt.QueueCap, k.Opt.MaxCycles, k.Opt.ClockSkewMax,
		strconv.FormatFloat(k.Opt.ThermalNoopRate, 'x', -1, 64),
		k.Opt.TaskActivation, k.Opt.Seed, k.Opt.Shards)
}

// Request reconstructs a compile request from a canonical key, such that
// KeyOf(k.Request()) == k. This is how Session.Warm turns the keys listed
// by a store back into compilable (and therefore loadable) requests.
func (k Key) Request() Request {
	tr := k.Opt.TR
	if tr == 0 {
		// Canonical TR 0 means a literal zero-latency ramp, which the
		// Options field spells as a negative value (0 selects the WSE-2
		// default).
		tr = -1
	}
	return Request{
		Kind:   k.Kind,
		Alg:    k.Alg,
		Alg2D:  k.Alg2D,
		P:      k.P,
		Width:  k.Width,
		Height: k.Height,
		B:      k.B,
		Op:     k.Op,
		Opt: fabric.Options{
			TR:              tr,
			QueueCap:        k.Opt.QueueCap,
			MaxCycles:       k.Opt.MaxCycles,
			ClockSkewMax:    k.Opt.ClockSkewMax,
			ThermalNoopRate: k.Opt.ThermalNoopRate,
			TaskActivation:  k.Opt.TaskActivation,
			Seed:            k.Opt.Seed,
			Shards:          k.Opt.Shards,
		},
	}
}
