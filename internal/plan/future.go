package plan

// Async futures: the non-blocking face of Session.Submit. An Async is
// resolved exactly once; every accessor is safe to call from any number
// of goroutines, any number of times, before or after resolution — Wait
// and Err block until resolved, Done exposes the resolution for select
// loops. An abandoned Async (submitted, never waited on) leaks nothing:
// the resolving goroutine writes the result, closes done and exits.

import "repro/internal/core"

// Async is a submitted replay's future.
type Async struct {
	done chan struct{}
	rep  *core.Report
	err  error
}

// Done returns a channel closed when the result is ready.
func (a *Async) Done() <-chan struct{} { return a.done }

// Wait blocks until the result is ready and returns it. Calling Wait
// repeatedly (or concurrently) returns the same values.
func (a *Async) Wait() (*core.Report, error) { <-a.done; return a.rep, a.err }

// Err blocks until the result is ready and returns its error, nil on
// success.
func (a *Async) Err() error { <-a.done; return a.err }

// Go runs fn on its own goroutine and returns the Async it resolves.
func Go(fn func() (*core.Report, error)) *Async {
	a := &Async{done: make(chan struct{})}
	go func() {
		defer close(a.done)
		a.rep, a.err = fn()
	}()
	return a
}

// Fail returns an already-resolved Async carrying err — for submission
// paths that reject synchronously (admission control, shape validation)
// but must still hand back a future.
func Fail(err error) *Async {
	a := &Async{done: make(chan struct{}), err: err}
	close(a.done)
	return a
}
