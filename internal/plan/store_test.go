package plan

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
)

// memStore is an in-memory PlanStore for exercising the session/cache
// persistence hooks without dragging the on-disk store (and an import
// cycle) into this package. Plans are shared by pointer, which is safe:
// plans are immutable under Execute.
type memStore struct {
	mu    sync.Mutex
	m     map[Key]*Plan
	loads int
	saves int

	failLoad bool
	failSave bool
}

func newMemStore() *memStore { return &memStore{m: make(map[Key]*Plan)} }

func (s *memStore) Load(key Key) (*Plan, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loads++
	if s.failLoad {
		return nil, false, errors.New("memstore: load failure")
	}
	p, ok := s.m[key]
	return p, ok, nil
}

func (s *memStore) Save(p *Plan) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.saves++
	if s.failSave {
		return errors.New("memstore: save failure")
	}
	s.m[p.Key] = p
	return nil
}

func (s *memStore) Keys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Key, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	return out
}

func warmReq(p int) Request {
	return Request{Kind: Reduce1D, Alg: core.Chain, P: p, B: 8, Op: fabric.OpSum}
}

func onesVectors(p, b int) [][]float32 {
	out := make([][]float32, p)
	for i := range out {
		v := make([]float32, b)
		for j := range v {
			v[j] = 1
		}
		out[i] = v
	}
	return out
}

// TestCacheStoreReadWriteThrough checks the cache's persistence hooks:
// a compile writes through, a second cache (a "new process") loads the
// stored plan instead of compiling, and store failures degrade to plain
// compilation with the error counted, never surfaced to the caller.
func TestCacheStoreReadWriteThrough(t *testing.T) {
	ms := newMemStore()
	c1 := NewCache(8)
	c1.SetStore(ms)
	if _, err := c1.Get(warmReq(8)); err != nil {
		t.Fatal(err)
	}
	if len(ms.m) != 1 {
		t.Fatalf("write-through stored %d plans, want 1", len(ms.m))
	}
	st := c1.Stats()
	if st.StoreHits != 0 || st.StoreErrors != 0 {
		t.Fatalf("first compile: %+v", st)
	}

	c2 := NewCache(8)
	c2.SetStore(ms)
	p, err := c2.Get(warmReq(8))
	if err != nil {
		t.Fatal(err)
	}
	if p.P != 8 || p.Spec == nil {
		t.Fatal("store-loaded plan is hollow")
	}
	st = c2.Stats()
	if st.StoreHits != 1 || st.Misses != 1 {
		t.Fatalf("store read-through not taken: %+v", st)
	}
	saves := ms.saves
	if _, err := c2.Get(warmReq(8)); err != nil { // resident now
		t.Fatal(err)
	}
	if ms.saves != saves {
		t.Fatal("a store-loaded plan was saved back")
	}

	// A failing store must not fail lookups.
	bad := newMemStore()
	bad.failLoad, bad.failSave = true, true
	c3 := NewCache(8)
	c3.SetStore(bad)
	if _, err := c3.Get(warmReq(16)); err != nil {
		t.Fatal(err)
	}
	st = c3.Stats()
	if st.StoreErrors != 2 { // one load failure + one save failure
		t.Fatalf("store failures not counted: %+v", st)
	}
}

// TestSessionWarmAndExport covers the deployment cycle at the plan level:
// Warm compiles a shape list into an empty store, a second session warms
// from it by decoding alone, and Export persists whatever is resident.
func TestSessionWarmAndExport(t *testing.T) {
	ms := newMemStore()
	stage := NewSession(8, 2)
	reqs := []Request{warmReq(4), warmReq(8), warmReq(16)}
	st, err := stage.Warm(ms, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Compiled != 3 || st.Loaded != 0 || len(ms.m) != 3 {
		t.Fatalf("staging warm: %+v, %d stored", st, len(ms.m))
	}
	// Warming again is a no-op: everything is resident.
	if st, err = stage.Warm(ms, reqs); err != nil || st.Resident != 3 || st.Compiled != 0 {
		t.Fatalf("re-warm: %+v, %v", st, err)
	}

	serve := NewSession(8, 2)
	if st, err = serve.Warm(ms, nil); err != nil {
		t.Fatal(err)
	}
	if st.Loaded != 3 || st.Compiled != 0 {
		t.Fatalf("serving warm should decode everything: %+v", st)
	}
	// First requests replay without a compile: zero misses.
	inputs := vectors(8, 8, 1)
	rep, err := serve.Run(warmReq(8), inputs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := stage.Run(warmReq(8), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != want.Cycles || !sameVec(rep.Root, want.Root) {
		t.Fatal("warmed session replays differently")
	}
	if cs := serve.Stats(); cs.Misses != 0 || cs.Hits != 1 {
		t.Fatalf("warmed session compiled on the serving path: %+v", cs)
	}

	// Export from a session that compiled organically.
	organic := NewSession(8, 2)
	if _, err := organic.Run(warmReq(32), vectors(32, 8, 0)); err != nil {
		t.Fatal(err)
	}
	ms2 := newMemStore()
	n, err := organic.Export(ms2)
	if err != nil || n != 1 || len(ms2.m) != 1 {
		t.Fatalf("export: n=%d err=%v stored=%d", n, err, len(ms2.m))
	}

	// A failed shape is reported but does not abort the rest.
	st, err = stage.Warm(ms, []Request{{Kind: Kind("bogus"), P: 4, B: 4}, warmReq(64)})
	if err == nil {
		t.Fatal("bogus shape not reported")
	}
	if st.Compiled != 1 {
		t.Fatalf("good shape not warmed past the bad one: %+v", st)
	}
}

// TestWarmRacesRun drives live Run traffic against concurrent Warm passes
// (store-fed and compile-fed) on one session — the -race proof that
// pre-population and serving can overlap, as they do when a process warms
// in the background while already accepting requests.
func TestWarmRacesRun(t *testing.T) {
	ms := newMemStore()
	seed := NewSession(16, 4)
	shapes := make([]Request, 6)
	for i := range shapes {
		shapes[i] = warmReq(4 << uint(i%3)) // 4, 8, 16 with duplicates
		shapes[i].B = 8 + 2*(i/3)           // two B variants per P
	}
	if _, err := seed.Warm(ms, shapes[:3]); err != nil { // store starts half full
		t.Fatal(err)
	}

	sess := NewSession(4, 4) // capacity 4 < 6 shapes: eviction in play
	sess.SetStore(ms)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				req := shapes[(w+i)%len(shapes)]
				rep, err := sess.Run(req, onesVectors(req.P, req.B))
				if err != nil {
					errs <- err
					return
				}
				if got, want := rep.Root[0], float32(req.P); got != want {
					errs <- fmt.Errorf("shape p=%d returned %v, want %v", req.P, got, want)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := sess.Warm(ms, shapes); err != nil {
					errs <- err
					return
				}
				if _, err := sess.Warm(ms, nil); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}
