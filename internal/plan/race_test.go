//go:build race

package plan

// raceEnabled reports that this binary was built with the race detector;
// the 262k-PE scale test skips itself there (races in the sharded engine
// are covered by the smaller concurrent tests at a fraction of the cost).
const raceEnabled = true
