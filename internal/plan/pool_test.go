package plan

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/mesh"
)

func poolTestInputs(req Request) [][]float32 {
	fill := func(v []float32, i int) {
		for j := range v {
			v[j] = float32(i%7) + float32(j%3)*0.5
		}
	}
	switch req.Kind {
	case Gather, AllGather:
		// Chunked kinds take per-PE chunks totalling B elements.
		_, sz := core.Chunks(req.P, req.B)
		out := make([][]float32, req.P)
		for i := range out {
			out[i] = make([]float32, sz[i])
			fill(out[i], i)
		}
		return out
	}
	n := req.P
	switch req.Kind {
	case Broadcast1D, Broadcast2D, Scatter:
		n = 1
	case Reduce2D, AllReduce2D:
		n = req.Width * req.Height
	}
	out := make([][]float32, n)
	for i := range out {
		out[i] = make([]float32, req.B)
		fill(out[i], i)
	}
	return out
}

func sameReport(t *testing.T, want, got *core.Report, label string) {
	t.Helper()
	if got.Cycles != want.Cycles {
		t.Errorf("%s: cycles %d, want %d", label, got.Cycles, want.Cycles)
	}
	if got.Stats != want.Stats {
		t.Errorf("%s: stats %+v, want %+v", label, got.Stats, want.Stats)
	}
	if len(got.All) != len(want.All) {
		t.Fatalf("%s: %d PEs, want %d", label, len(got.All), len(want.All))
	}
	for c, w := range want.All {
		g := got.All[c]
		if len(g) != len(w) {
			t.Fatalf("%s: PE %v acc length %d, want %d", label, c, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: PE %v acc[%d] = %v, want %v", label, c, i, g[i], w[i])
			}
		}
	}
}

// TestPooledReplayConcurrentBitIdentical hammers one cached plan from many
// goroutines — the Session worker-pool pattern — and asserts every pooled
// replay is bit-identical to a fresh fabric.New run. The options enable
// clock skew and thermal no-ops, so the test also proves Reset restores
// the per-PE RNG streams exactly. Run under -race in CI, it doubles as the
// proof that pool handoff and the sharded engine are data-race free.
func TestPooledReplayConcurrentBitIdentical(t *testing.T) {
	reqs := []Request{
		{Kind: Reduce1D, Alg: core.Tree, P: 24, B: 12, Op: fabric.OpSum,
			Opt: fabric.Options{ClockSkewMax: 512, ThermalNoopRate: 0.05, Seed: 31}},
		{Kind: AllReduce1D, Alg: core.Chain, P: 16, B: 8, Op: fabric.OpMax,
			Opt: fabric.Options{ThermalNoopRate: 0.02, Seed: 9}},
		{Kind: Reduce2D, Alg2D: core.XYTree, Width: 6, Height: 5, B: 6, Op: fabric.OpSum,
			Opt: fabric.Options{ClockSkewMax: 64, Seed: 3, Shards: 3}},
	}
	for _, req := range reqs {
		pl, err := Compile(req)
		if err != nil {
			t.Fatal(err)
		}
		inputs := poolTestInputs(req)
		want, err := pl.ExecuteUnpooled(inputs)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 64)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for rep := 0; rep < 6; rep++ {
					got, err := pl.Execute(inputs)
					if err != nil {
						errs <- err
						return
					}
					if got.Cycles != want.Cycles || got.Stats != want.Stats {
						errs <- fmt.Errorf("%s: pooled replay diverged: cycles %d vs %d, stats %+v vs %+v",
							req.Kind, got.Cycles, want.Cycles, got.Stats, want.Stats)
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		// One more pooled replay, deep-compared.
		got, err := pl.Execute(inputs)
		if err != nil {
			t.Fatal(err)
		}
		sameReport(t, want, got, string(req.Kind))
	}
}

// TestPooledReplayThroughSession: the public Session path (bounded worker
// pool + plan cache + fabric pool) replays concurrently with bit-identical
// results to the first run.
func TestPooledReplayThroughSession(t *testing.T) {
	sess := NewSession(16, 4)
	req := Request{Kind: Reduce1D, Alg: core.TwoPhase, P: 32, B: 16, Op: fabric.OpSum,
		Opt: fabric.Options{ClockSkewMax: 128, ThermalNoopRate: 0.03, Seed: 77}}
	inputs := poolTestInputs(req)
	want, err := sess.Run(req, inputs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				got, err := sess.Run(req, inputs)
				if err != nil {
					errs <- err
					return
				}
				if got.Cycles != want.Cycles || got.Stats != want.Stats {
					errs <- fmt.Errorf("session replay diverged: %d vs %d cycles", got.Cycles, want.Cycles)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.Misses != 1 {
		t.Errorf("plan compiled %d times, want 1", st.Misses)
	}
}

// TestShardedPlansBitIdenticalAllKinds is the acceptance property test: for
// every collective kind the suite compiles, the sharded engine must produce
// bit-identical cycle counts, stats and accumulator contents to the serial
// engine.
func TestShardedPlansBitIdenticalAllKinds(t *testing.T) {
	kinds := []Request{
		{Kind: Reduce1D, Alg: core.AutoGen, P: 21, B: 9, Op: fabric.OpSum},
		{Kind: AllReduce1D, Alg: core.Ring, P: 12, B: 24, Op: fabric.OpSum},
		{Kind: Broadcast1D, P: 19, B: 7},
		{Kind: Reduce2D, Alg2D: core.XYTwoPhase, Width: 7, Height: 6, B: 5, Op: fabric.OpSum},
		{Kind: AllReduce2D, Alg2D: core.Snake, Width: 4, Height: 5, B: 10, Op: fabric.OpSum},
		{Kind: Broadcast2D, Width: 5, Height: 7, B: 8},
		{Kind: Scatter, P: 9, B: 31},
		{Kind: Gather, P: 9, B: 31},
		{Kind: ReduceScatter, P: 8, B: 19, Op: fabric.OpSum},
		{Kind: AllGather, P: 7, B: 23},
		{Kind: AllReduceMidRoot, Alg: core.Tree, P: 17, B: 11, Op: fabric.OpMin},
	}
	for _, base := range kinds {
		serialReq := base
		serialReq.Opt.Seed = 5
		serialReq.Opt.ClockSkewMax = 100
		pl, err := Compile(serialReq)
		if err != nil {
			t.Fatalf("%s: %v", base.Kind, err)
		}
		inputs := poolTestInputs(serialReq)
		want, err := pl.ExecuteUnpooled(inputs)
		if err != nil {
			t.Fatalf("%s serial: %v", base.Kind, err)
		}
		for _, shards := range []int{2, 5} {
			req := serialReq
			req.Opt.Shards = shards
			spl, err := Compile(req)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", base.Kind, shards, err)
			}
			got, err := spl.ExecuteUnpooled(inputs)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", base.Kind, shards, err)
			}
			sameReport(t, want, got, fmt.Sprintf("%s shards=%d", base.Kind, shards))
		}
	}
}

// TestSharded2DGridCompletes: a measured 2D reduce on the paper's full
// 512×512 wafer — 262,144 simulated PEs — compiles, runs sharded across
// row bands, and produces the exact reduction. This is the scale the
// ROADMAP's serving items need; it must stay comfortably inside the
// default go test timeout.
func TestSharded2DGridCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("262k-PE simulation in -short mode")
	}
	if raceEnabled {
		t.Skip("262k-PE simulation under the race detector; smaller concurrent tests cover the races")
	}
	const side = 512
	req := Request{Kind: Reduce2D, Alg2D: core.XYTree, Width: side, Height: side, B: 4,
		Op: fabric.OpSum, Opt: fabric.Options{Shards: 8}}
	pl, err := Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([][]float32, side*side)
	one := []float32{1, 1, 1, 1}
	for i := range inputs {
		inputs[i] = one
	}
	rep, err := pl.Execute(inputs)
	if err != nil {
		t.Fatal(err)
	}
	root := rep.All[mesh.Coord{}]
	for i, v := range root {
		if v != side*side {
			t.Fatalf("root[%d] = %v, want %d", i, v, side*side)
		}
	}
	if rep.Cycles <= 0 {
		t.Fatal("no cycles measured")
	}
	t.Logf("512x512 reduce2d: %d cycles, %d hops", rep.Cycles, rep.Stats.Hops)
}
