// Package plan is the compiled-plan subsystem: the model-driven
// deployment the paper advocates (§5.5, §7) done once instead of per
// call. A Plan is a fully lowered collective — the fabric Spec (processor
// programs and per-color routing tables), the resolved algorithm and its
// reduction trees, the routing colors in use, and the performance-model
// prediction. Compiling a plan pays for tree search, program generation
// and validation; replaying one only binds fresh input vectors and runs
// the simulator. The Cache keys plans by their full content (kind,
// algorithm, shape, vector length, reduction op, fabric options) so a
// serving workload compiles each distinct collective exactly once.
package plan

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Kind names a collective a plan can capture.
type Kind string

// The collective kinds of the suite: the paper's Reduce/AllReduce/
// Broadcast in 1D and 2D, the chunked MPI-style extensions, and the
// middle-root AllReduce of §6.1.
const (
	Reduce1D         Kind = "reduce1d"
	AllReduce1D      Kind = "allreduce1d"
	Broadcast1D      Kind = "broadcast1d"
	Reduce2D         Kind = "reduce2d"
	AllReduce2D      Kind = "allreduce2d"
	Broadcast2D      Kind = "broadcast2d"
	Scatter          Kind = "scatter"
	Gather           Kind = "gather"
	ReduceScatter    Kind = "reducescatter"
	AllGather        Kind = "allgather"
	AllReduceMidRoot Kind = "allreduce-midroot"
)

// Request describes the collective to compile. Alg applies to the 1D
// tree/ring kinds, Alg2D to the 2D kinds; P is the row length of 1D
// kinds, Width×Height the grid of 2D kinds; B is the vector length in
// wavelets (for the chunked kinds, the total element count).
type Request struct {
	Kind   Kind
	Alg    core.Pattern
	Alg2D  core.Pattern2D
	P      int
	Width  int
	Height int
	B      int
	Op     fabric.ReduceOp
	Opt    fabric.Options
}

// OptKey is the comparable projection of fabric.Options used in cache
// keys: every field that influences compilation or execution, with the
// ramp latency normalised (0 and the explicit default compile
// identically) and the Tracer handle dropped.
type OptKey struct {
	TR              int
	QueueCap        int
	MaxCycles       int64
	ClockSkewMax    int64
	ThermalNoopRate float64
	TaskActivation  int
	Seed            uint64
	// Shards does not change results (the sharded engine is bit-identical
	// to the serial one) but is part of the key so a plan's pooled fabric
	// instances are all built for the requested execution mode.
	Shards int
}

// Key is the content key of a compiled plan.
type Key struct {
	Kind   Kind
	Alg    core.Pattern
	Alg2D  core.Pattern2D
	P      int
	Width  int
	Height int
	B      int
	Op     fabric.ReduceOp
	Opt    OptKey
}

// KeyOf derives the content key of a request. The key is fully canonical:
// defaulted options are resolved to their concrete values (via
// fabric.Options.Canonical) and fields the kind never consults — the 2D
// algorithm of a 1D reduce, the row length of a 2D grid, the algorithm of
// an algorithm-free broadcast — are zeroed, so two requests that compile
// to the same program share one key. Canonical keys are also what the
// plan store indexes by on disk, so this derivation must stay stable
// across releases; TestKeyEncodingPinned pins it.
func KeyOf(req Request) Key {
	opt := req.Opt.Canonical()
	k := Key{
		Kind:   req.Kind,
		Alg:    req.Alg,
		Alg2D:  req.Alg2D,
		P:      req.P,
		Width:  req.Width,
		Height: req.Height,
		B:      req.B,
		Op:     req.Op,
		Opt: OptKey{
			TR:              opt.TR,
			QueueCap:        opt.QueueCap,
			MaxCycles:       opt.MaxCycles,
			ClockSkewMax:    opt.ClockSkewMax,
			ThermalNoopRate: opt.ThermalNoopRate,
			TaskActivation:  opt.TaskActivation,
			Seed:            opt.Seed,
			Shards:          opt.Shards,
		},
	}
	switch req.Kind {
	case Reduce1D, AllReduce1D, AllReduceMidRoot:
		k.Alg2D, k.Width, k.Height = "", 0, 0
	case Reduce2D, AllReduce2D:
		k.Alg, k.P = "", 0
	case Broadcast2D:
		k.Alg, k.Alg2D, k.P, k.Op = "", "", 0, 0
	case ReduceScatter:
		k.Alg, k.Alg2D, k.Width, k.Height = "", "", 0, 0
	case Broadcast1D, Scatter, Gather, AllGather:
		k.Alg, k.Alg2D, k.Width, k.Height, k.Op = "", "", 0, 0, 0
	}
	return k
}

// Plan is a compiled collective: an immutable fabric program plus the
// metadata of the compilation. Plans are safe for concurrent replay —
// Execute never mutates the plan.
type Plan struct {
	// Key is the content key the plan was compiled under.
	Key Key
	// Kind, P, Width, Height, B, Op echo the request.
	Kind          Kind
	P             int
	Width, Height int
	B             int
	Op            fabric.ReduceOp
	// Alg / Alg2D are the concrete algorithms the plan lowered: Auto
	// requests arrive here resolved by the performance model.
	Alg   core.Pattern
	Alg2D core.Pattern2D
	// Opt are the fabric options replays execute under.
	Opt fabric.Options
	// Predicted is the performance model's cycle estimate.
	Predicted float64
	// Spec is the lowered fabric program, without initial data. It must
	// be treated as read-only; Execute binds inputs into per-run copies.
	Spec *fabric.Spec
	// Tree is the reduction tree of tree-based 1D kinds; RowTree and
	// ColTree are the X-Y trees of tree-based 2D kinds.
	Tree, RowTree, ColTree comm.Tree
	// Colors lists the routing colors the program occupies.
	Colors []mesh.Color

	// pool holds reset-able fabric instances for this plan. Replays of one
	// plan differ only in their Init vectors, so a pooled instance is
	// re-armed with Reset instead of paying fabric.New per run; results
	// are bit-identical either way (Reset restores the RNG chain exactly).
	pool sync.Pool
}

// tr is the normalised ramp latency used throughout compilation.
func (r Request) tr() int { return core.Params(r.Opt).TR }

// resolve replaces Auto algorithm selections with the concrete choice of
// the performance model, exactly as the one-shot Run* functions do.
func (r Request) resolve() Request {
	switch r.Kind {
	case Reduce1D, AllReduce1D:
		if r.Alg == core.Auto {
			r.Alg, _ = core.BestReduce1D(r.P, r.B, r.tr())
		}
	case AllReduceMidRoot:
		if r.Alg == core.Auto {
			r.Alg, _ = core.BestReduce1D(r.P/2+1, r.B, r.tr())
		}
	case Reduce2D, AllReduce2D:
		if r.Alg2D == core.Auto2D {
			r.Alg2D, _ = core.BestReduce2D(r.Width, r.Height, r.B, r.tr())
		}
	}
	return r
}

// Compile lowers a request to a Plan: it resolves Auto selections,
// derives the reduction trees, generates the fabric program, validates
// it, and records the model prediction. This is the cold path the cache
// amortises away.
func Compile(req Request) (*Plan, error) {
	if err := faults.Inject("plan.compile"); err != nil {
		return nil, err
	}
	key := KeyOf(req)
	req = req.resolve()
	tr := req.tr()
	// Plans carry canonical options (defaults resolved) so compiling the
	// same logical request in two processes yields byte-identical encoded
	// plans; the Tracer is a debug attachment, not part of the canonical
	// form, and rides along unchanged.
	opt := req.Opt.Canonical()
	opt.Tracer = req.Opt.Tracer
	p := &Plan{
		Key:    key,
		Kind:   req.Kind,
		P:      req.P,
		Width:  req.Width,
		Height: req.Height,
		B:      req.B,
		Op:     req.Op,
		Alg:    req.Alg,
		Alg2D:  req.Alg2D,
		Opt:    opt,
	}
	if req.B < 1 {
		return nil, fmt.Errorf("plan: vector length %d", req.B)
	}
	switch req.Kind {
	case Reduce1D, AllReduce1D, Broadcast1D, Scatter, Gather,
		ReduceScatter, AllGather, AllReduceMidRoot:
		if req.P < 1 {
			return nil, fmt.Errorf("plan: %d PEs", req.P)
		}
		p.Spec = fabric.NewSpec(req.P, 1)
	case Reduce2D, AllReduce2D, Broadcast2D:
		if req.Width < 1 || req.Height < 1 {
			return nil, fmt.Errorf("plan: %dx%d grid", req.Width, req.Height)
		}
		p.Spec = fabric.NewSpec(req.Width, req.Height)
	default:
		return nil, fmt.Errorf("plan: unknown kind %q", req.Kind)
	}

	var err error
	switch req.Kind {
	case Reduce1D:
		err = core.BuildReduce1DInto(p.Spec, req.Alg, req.P, req.B, tr, req.Op)
		p.Predicted = core.PredictReduce1D(req.Alg, req.P, req.B, tr)
	case AllReduce1D:
		err = core.BuildAllReduce1DInto(p.Spec, req.Alg, req.P, req.B, tr, req.Op)
		p.Predicted = core.PredictAllReduce1D(req.Alg, req.P, req.B, tr)
	case Broadcast1D:
		err = core.BuildBroadcast1DInto(p.Spec, req.P, req.B)
		p.Predicted = core.Params(req.Opt).Broadcast1D(req.P, req.B)
	case Reduce2D:
		err = core.BuildReduce2DInto(p.Spec, req.Alg2D, req.Width, req.Height, req.B, tr, req.Op)
		p.Predicted = core.PredictReduce2D(req.Alg2D, req.Width, req.Height, req.B, tr)
	case AllReduce2D:
		err = core.BuildAllReduce2DInto(p.Spec, req.Alg2D, req.Width, req.Height, req.B, tr, req.Op)
		p.Predicted = core.PredictAllReduce2D(req.Alg2D, req.Width, req.Height, req.B, tr)
	case Broadcast2D:
		err = core.BuildBroadcast2DInto(p.Spec, req.Width, req.Height, req.B)
		p.Predicted = core.Params(req.Opt).Broadcast2D(req.Height, req.Width, req.B)
	case Scatter:
		err = core.BuildScatterInto(p.Spec, req.P, req.B)
		p.Predicted = core.Params(req.Opt).Scatter(req.P, req.B)
	case Gather:
		err = core.BuildGatherInto(p.Spec, req.P, req.B)
		p.Predicted = core.Params(req.Opt).Gather(req.P, req.B)
	case ReduceScatter:
		err = core.BuildReduceScatterInto(p.Spec, req.P, req.B, req.Op)
		p.Predicted = core.Params(req.Opt).ReduceScatter(req.P, req.B)
	case AllGather:
		err = core.BuildAllGatherInto(p.Spec, req.P, req.B)
		p.Predicted = core.Params(req.Opt).AllGather(req.P, req.B)
	case AllReduceMidRoot:
		err = core.BuildAllReduceMidRootInto(p.Spec, req.Alg, req.P, req.B, tr, req.Op)
		p.Predicted = core.Params(req.Opt).MidRootAllReduce(string(req.Alg), req.P, req.B)
	}
	if err != nil {
		return nil, err
	}
	if err := p.Spec.Validate(); err != nil {
		return nil, err
	}
	if err := p.recordTrees(tr); err != nil {
		return nil, err
	}
	p.Colors = specColors(p.Spec)
	return p, nil
}

// recordTrees stores the reduction-tree metadata of tree-based kinds.
func (p *Plan) recordTrees(tr int) error {
	var err error
	switch p.Kind {
	case Reduce1D, AllReduce1D:
		if p.Alg != core.Ring && p.Alg != core.RingDP {
			p.Tree, err = core.TreeFor(p.Alg, p.P, p.B, tr)
		}
	case Reduce2D, AllReduce2D:
		if base, ok := p.Alg2D.Base1D(); ok {
			if p.RowTree, err = core.TreeFor(base, p.Width, p.B, tr); err != nil {
				return err
			}
			p.ColTree, err = core.TreeFor(base, p.Height, p.B, tr)
		}
	}
	return err
}

// specColors collects the distinct routing colors a program occupies.
func specColors(s *fabric.Spec) []mesh.Color {
	var seen [mesh.NumColors]bool
	for _, pe := range s.PEs {
		for c := range pe.Configs {
			seen[c] = true
		}
	}
	var out []mesh.Color
	for c, ok := range seen {
		if ok {
			out = append(out, mesh.Color(c))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// bind produces a per-run spec: fresh PESpec headers sharing the plan's
// immutable programs and routing tables, with Init set from inputs. The
// fabric engine copies Init and never writes through Ops or Configs, so
// concurrent replays of one plan are race-free.
func (p *Plan) bind(inputs [][]float32) (*fabric.Spec, error) {
	s := fabric.NewSpec(p.Spec.Width, p.Spec.Height)
	// One backing array for all per-run PESpec headers keeps a cache-hit
	// replay down to a handful of allocations.
	headers := make([]fabric.PESpec, 0, len(p.Spec.PEs))
	for c, pe := range p.Spec.PEs {
		cp := *pe
		cp.Init = nil
		headers = append(headers, cp)
		s.PEs[c] = &headers[len(headers)-1]
	}
	if err := p.setInits(s, inputs); err != nil {
		return nil, err
	}
	return s, nil
}

// setInits validates the input arity and binds the input vectors into the
// spec's PESpec headers. A pooled replay calls it on the pooled spec, so
// the fabric sees the same spec object every run and takes its fast Reset
// path.
func (p *Plan) setInits(s *fabric.Spec, inputs [][]float32) error {
	switch p.Kind {
	case Broadcast1D, Broadcast2D, Scatter:
		if len(inputs) != 1 || len(inputs[0]) != p.B {
			return fmt.Errorf("plan: %s wants one %d-element vector", p.Kind, p.B)
		}
		s.PE(mesh.Coord{}).Init = inputs[0]
	case Gather, AllGather:
		if len(inputs) != p.P {
			return fmt.Errorf("plan: %s wants %d chunks, got %d", p.Kind, p.P, len(inputs))
		}
		if b, err := core.CheckChunks(inputs); err != nil {
			return err
		} else if b != p.B {
			return fmt.Errorf("plan: chunks total %d elements, plan wants %d", b, p.B)
		}
		off, _ := core.Chunks(p.P, p.B)
		for j, c := range mesh.Row(0, 0, p.P) {
			if p.Kind == AllGather {
				s.PE(c).Init = core.AllGatherInit(inputs[j], off[j], p.B)
			} else {
				s.PE(c).Init = inputs[j]
			}
		}
	case Reduce1D, AllReduce1D, ReduceScatter, AllReduceMidRoot:
		if err := checkVectors(inputs, p.P, p.B); err != nil {
			return err
		}
		for i, c := range mesh.Row(0, 0, p.P) {
			s.PE(c).Init = inputs[i]
		}
	case Reduce2D, AllReduce2D:
		n := p.Width * p.Height
		if err := checkVectors(inputs, n, p.B); err != nil {
			return err
		}
		i := 0
		for y := 0; y < p.Height; y++ {
			for x := 0; x < p.Width; x++ {
				s.PE(mesh.Coord{X: x, Y: y}).Init = inputs[i]
				i++
			}
		}
	}
	return nil
}

// checkInputs validates one replay's input arity without binding it —
// the validation half of setInits, for callers (the batch path) that
// want every entry vetted before any simulation runs.
func (p *Plan) checkInputs(inputs [][]float32) error {
	switch p.Kind {
	case Broadcast1D, Broadcast2D, Scatter:
		if len(inputs) != 1 || len(inputs[0]) != p.B {
			return fmt.Errorf("plan: %s wants one %d-element vector", p.Kind, p.B)
		}
	case Gather, AllGather:
		if len(inputs) != p.P {
			return fmt.Errorf("plan: %s wants %d chunks, got %d", p.Kind, p.P, len(inputs))
		}
		if b, err := core.CheckChunks(inputs); err != nil {
			return err
		} else if b != p.B {
			return fmt.Errorf("plan: chunks total %d elements, plan wants %d", b, p.B)
		}
	case Reduce2D, AllReduce2D:
		return checkVectors(inputs, p.Width*p.Height, p.B)
	default:
		return checkVectors(inputs, p.P, p.B)
	}
	return nil
}

func checkVectors(inputs [][]float32, n, b int) error {
	if len(inputs) != n {
		return fmt.Errorf("plan: %d input vectors, want %d", len(inputs), n)
	}
	for i, v := range inputs {
		if len(v) != b {
			return fmt.Errorf("plan: vector %d has length %d, want %d", i, len(v), b)
		}
	}
	return nil
}

// ExecOptions tune one replay. The zero value is the default map-shaped
// result path.
type ExecOptions struct {
	// Columnar skips the per-PE result maps: Report.All stays nil and the
	// accumulators land flat in Report.Columnar. For small plans the map
	// construction is the dominant per-run fixed cost, so callers that
	// only read Report.Root (or stream PEs in order) replay measurably
	// faster with Columnar set.
	Columnar bool
}

// Execute replays the plan with fresh inputs on the fabric simulator.
// For broadcast and scatter kinds, inputs is the single root vector
// wrapped in a one-element slice; for chunked kinds, the per-PE chunks;
// otherwise one vector per PE. Execute is safe to call concurrently.
//
// Replays draw fabric instances from a per-plan pool: a cache-hit replay
// re-arms a pooled instance with fabric.Reset instead of allocating a new
// simulator, which is the difference between the compile-once promise and
// actually being fast end-to-end. Concurrent replays each get their own
// instance (or a fresh one when the pool is empty).
func (p *Plan) Execute(inputs [][]float32) (*core.Report, error) {
	return p.ExecuteOpts(inputs, ExecOptions{})
}

// ExecuteOpts is Execute with per-replay options.
func (p *Plan) ExecuteOpts(inputs [][]float32, eo ExecOptions) (*core.Report, error) {
	return p.ExecuteCtx(nil, inputs, eo)
}

// ExecuteCtx is ExecuteOpts under a watchdog: while the replay runs, the
// fabric polls ctx every few thousand cycles and aborts with a typed
// deadline/cancellation error (sched.CtxError) instead of simulating to
// MaxCycles for a caller that already left. A nil ctx — or one that can
// never fire, like context.Background() — runs without the hook.
func (p *Plan) ExecuteCtx(ctx context.Context, inputs [][]float32, eo ExecOptions) (*core.Report, error) {
	// The span brackets the whole replay; cycles/steps land as attributes
	// after the run, so tracing never reaches inside the cycle loop.
	_, span := obs.Start(ctx, "fabric.exec")
	if err := faults.Inject("fabric.exec"); err != nil {
		span.SetError(err)
		span.End()
		return nil, err
	}
	pf, err := p.checkout(inputs)
	if err != nil {
		span.SetError(err)
		span.End()
		return nil, err
	}
	if ctx != nil && ctx.Done() != nil {
		pf.f.SetInterrupt(func() error { return sched.CtxError(ctx) })
	}
	rep, err := p.runOn(pf, eo)
	// Clear the hook before the instance can be pooled: a pooled fabric
	// outlives this request and must not poll its dead context.
	pf.f.SetInterrupt(nil)
	if err != nil {
		// Keep failed instances out of the pool: the error path is cold
		// and a fresh New is the conservative restart.
		span.SetError(err)
		span.End()
		return nil, err
	}
	p.pool.Put(pf)
	span.SetAttr("cycles", rep.Cycles)
	span.SetAttr("steps", rep.Stats.Steps)
	span.End()
	return rep, nil
}

// ExecuteBatch replays the plan once per entry of batches, all on one
// fabric instance held across the whole batch. Replaying N inputs this
// way pays the pool checkout once and, with Columnar set, shares one
// offset table across the batch and skips every per-run result map — the
// amortisation that collapses the fixed bind+assembly cost of small
// plans. Reports are returned in batch order; results never alias each
// other. ctx (nil means none) is observed between entries: cancellation
// mid-batch stops before the next replay and returns ctx.Err(), so an
// abandoned batch does not pin a worker for its full length. Concurrent
// ExecuteBatch calls (or batch racing single Execute) are safe — each
// holds its own instance.
func (p *Plan) ExecuteBatch(ctx context.Context, batches [][][]float32, eo ExecOptions) ([]*core.Report, error) {
	if len(batches) == 0 {
		return nil, nil
	}
	_, span := obs.Start(ctx, "fabric.batch")
	span.SetAttr("entries", len(batches))
	defer span.End()
	if err := faults.Inject("fabric.exec"); err != nil {
		span.SetError(err)
		return nil, err
	}
	// Validate every batch entry before simulating any: a malformed entry
	// mid-batch must not discard completed work for a shape error the
	// caller could have been told about up front.
	for i, inputs := range batches {
		if err := p.checkInputs(inputs); err != nil {
			return nil, fmt.Errorf("plan: batch entry %d: %w", i, err)
		}
	}
	reports := make([]*core.Report, len(batches))
	var (
		pf     *pooledFabric
		off    []int // offset table shared across the batch's columnar results
		colRes []fabric.ColumnarResult
		arena  []float32 // per-batch Acc arena; one allocation serves every run
		accLen int       // per-run accumulator total, known after run 0
	)
	if eo.Columnar {
		colRes = make([]fabric.ColumnarResult, len(batches))
	}
	for i, inputs := range batches {
		if ctx != nil && ctx.Err() != nil {
			if pf != nil {
				pf.f.SetInterrupt(nil)
				p.pool.Put(pf) // the instance is healthy; only the caller left
			}
			return nil, sched.CtxError(ctx)
		}
		if pf == nil {
			var err error
			if pf, err = p.checkout(inputs); err != nil {
				return nil, fmt.Errorf("plan: batch run %d: %w", i, err)
			}
			if ctx != nil && ctx.Done() != nil {
				pf.f.SetInterrupt(func() error { return sched.CtxError(ctx) })
			}
		} else {
			if err := p.setInits(pf.s, inputs); err != nil {
				pf.f.SetInterrupt(nil)
				p.pool.Put(pf)
				return nil, fmt.Errorf("plan: batch run %d: %w", i, err)
			}
			if err := pf.f.Reset(pf.s); err != nil {
				return nil, fmt.Errorf("plan: batch run %d: %w", i, err)
			}
		}
		var rep *core.Report
		var err error
		if eo.Columnar {
			// Seeding each run's result with the previous offsets shares
			// one backing array: the offsets depend only on the program,
			// so every report in the batch sees identical values. The Acc
			// buffers cannot be shared (each report owns its values), but
			// their sizes are identical across the batch, so runs after the
			// first carve zero-length, full-capacity slices out of one
			// arena sized at run 0 — one allocation for all N runs instead
			// of one per run.
			res := &colRes[i]
			res.Off = off
			if accLen > 0 && len(arena) >= accLen {
				res.Acc = arena[:0:accLen]
				arena = arena[accLen:]
			}
			if err = pf.f.RunColumnar(res); err == nil {
				off = res.Off
				if i == 0 {
					accLen = len(res.Acc)
					if rem := len(batches) - 1; rem > 0 && accLen > 0 {
						arena = make([]float32, rem*accLen)
					}
				}
				rep = core.ReportOfColumnar(res, p.Predicted)
			}
		} else {
			var raw *fabric.Result
			if raw, err = pf.f.Run(); err == nil {
				rep = core.ReportOf(raw, p.Predicted)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("plan: batch run %d: %w", i, err)
		}
		reports[i] = rep
	}
	pf.f.SetInterrupt(nil)
	p.pool.Put(pf)
	return reports, nil
}

// checkout produces a run-ready fabric instance bound to inputs: a pooled
// instance re-armed in place when one is free, a freshly constructed one
// otherwise.
func (p *Plan) checkout(inputs [][]float32) (*pooledFabric, error) {
	pf, _ := p.pool.Get().(*pooledFabric)
	if pf == nil {
		s, err := p.bind(inputs)
		if err != nil {
			return nil, err
		}
		f, err := fabric.New(s, p.Opt)
		if err != nil {
			return nil, err
		}
		return &pooledFabric{f: f, s: s}, nil
	}
	// Rebind the inputs into the pooled spec in place: the fabric sees
	// the same spec object it was armed from and takes its fast Reset
	// path (no per-PE map lookups or structural re-validation).
	if err := p.setInits(pf.s, inputs); err != nil {
		p.pool.Put(pf)
		return nil, err
	}
	if err := pf.f.Reset(pf.s); err != nil {
		return nil, err
	}
	return pf, nil
}

// runOn executes one replay on a checked-out instance and assembles the
// report in the requested layout.
func (p *Plan) runOn(pf *pooledFabric, eo ExecOptions) (*core.Report, error) {
	if eo.Columnar {
		res := &fabric.ColumnarResult{}
		if err := pf.f.RunColumnar(res); err != nil {
			return nil, err
		}
		return core.ReportOfColumnar(res, p.Predicted), nil
	}
	res, err := pf.f.Run()
	if err != nil {
		return nil, err
	}
	return core.ReportOf(res, p.Predicted), nil
}

// pooledFabric pairs a reset-able fabric instance with the spec object it
// was armed from; replays mutate only the spec's Init bindings.
type pooledFabric struct {
	f *fabric.Fabric
	s *fabric.Spec
}

// zeroInputs synthesises zero-valued inputs of the plan's arity, for
// constructing a fabric before any real request arrives.
func (p *Plan) zeroInputs() [][]float32 {
	switch p.Kind {
	case Broadcast1D, Broadcast2D, Scatter:
		return [][]float32{make([]float32, p.B)}
	case Gather, AllGather:
		_, sz := core.Chunks(p.P, p.B)
		out := make([][]float32, p.P)
		for j := range out {
			out[j] = make([]float32, sz[j])
		}
		return out
	case Reduce2D, AllReduce2D:
		out := make([][]float32, p.Width*p.Height)
		for i := range out {
			out[i] = make([]float32, p.B)
		}
		return out
	default:
		out := make([][]float32, p.P)
		for i := range out {
			out[i] = make([]float32, p.B)
		}
		return out
	}
}

// Prewarm stocks the plan's instance pool with one ready fabric, so the
// first replay resets it instead of paying fabric construction — the
// finishing touch of a warm start: with the plan decoded from a store and
// the fabric pre-built, request one runs at steady-state replay latency.
// A replay that races the prewarm simply builds its own instance, exactly
// as a pool miss always does.
func (p *Plan) Prewarm() error {
	s, err := p.bind(p.zeroInputs())
	if err != nil {
		return err
	}
	f, err := fabric.New(s, p.Opt)
	if err != nil {
		return err
	}
	p.pool.Put(&pooledFabric{f: f, s: s})
	return nil
}

// ExecuteUnpooled replays the plan on a freshly allocated fabric,
// bypassing the instance pool. It exists for benchmarking the pooled path
// against the allocate-per-run baseline and for verifying the two produce
// bit-identical results; serving paths should use Execute.
func (p *Plan) ExecuteUnpooled(inputs [][]float32) (*core.Report, error) {
	s, err := p.bind(inputs)
	if err != nil {
		return nil, err
	}
	return core.ExecSpec(s, p.Opt, p.Predicted)
}

// Stamp deep-copies the plan's program into dst, which must span the same
// region. Unlike the replay path, the copy owns its Ops and Configs
// storage, so callers (e.g. the §8.3 measurement instrumenter) may rewrite
// programs freely without corrupting the cached plan.
func (p *Plan) Stamp(dst *fabric.Spec) error {
	if dst.Width != p.Spec.Width || dst.Height != p.Spec.Height {
		return fmt.Errorf("plan: stamp into %dx%d region, plan is %dx%d",
			dst.Width, dst.Height, p.Spec.Width, p.Spec.Height)
	}
	for c, pe := range p.Spec.PEs {
		d := dst.PE(c)
		d.Ops = append([]fabric.Op(nil), pe.Ops...)
		d.ClockSlots = pe.ClockSlots
		if pe.Configs != nil {
			d.Configs = make(map[mesh.Color][]fabric.RouterConfig, len(pe.Configs))
			for col, cfgs := range pe.Configs {
				d.Configs[col] = append([]fabric.RouterConfig(nil), cfgs...)
			}
		}
	}
	return nil
}
