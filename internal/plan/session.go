package plan

import (
	"runtime"

	"repro/internal/core"
)

// Session is the serving-shaped executor over the plan cache: requests
// are compiled once (cold path), then replayed from the cache (hot path),
// with concurrent fabric simulations bounded by a worker pool. A Session
// is safe for use from many goroutines; independent collectives run
// concurrently up to the pool size, and further callers queue.
type Session struct {
	cache *Cache
	slots chan struct{}
}

// NewSession returns a session with the given plan-cache capacity and
// worker-pool size (<= 0 selects DefaultCacheCapacity and GOMAXPROCS).
func NewSession(cacheCapacity, workers int) *Session {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Session{
		cache: NewCache(cacheCapacity),
		slots: make(chan struct{}, workers),
	}
}

// Plan returns the compiled plan for req, from cache when resident.
// Compilation does not occupy a worker slot: cold-path plan construction
// and hot-path simulation contend for different resources.
func (s *Session) Plan(req Request) (*Plan, error) {
	return s.cache.Get(req)
}

// Run compiles (or fetches) the plan for req and replays it with the
// given inputs under a worker slot.
func (s *Session) Run(req Request, inputs [][]float32) (*core.Report, error) {
	p, err := s.cache.Get(req)
	if err != nil {
		return nil, err
	}
	s.slots <- struct{}{}
	defer func() { <-s.slots }()
	return p.Execute(inputs)
}

// Stats snapshots the plan-cache accounting.
func (s *Session) Stats() CacheStats { return s.cache.Stats() }

// Workers returns the worker-pool size.
func (s *Session) Workers() int { return cap(s.slots) }
