package plan

import (
	"errors"
	"runtime"

	"repro/internal/core"
)

// Session is the serving-shaped executor over the plan cache: requests
// are compiled once (cold path), then replayed from the cache (hot path),
// with concurrent fabric simulations bounded by a worker pool. A Session
// is safe for use from many goroutines; independent collectives run
// concurrently up to the pool size, and further callers queue.
type Session struct {
	cache *Cache
	slots chan struct{}
}

// NewSession returns a session with the given plan-cache capacity and
// worker-pool size (<= 0 selects DefaultCacheCapacity and GOMAXPROCS).
func NewSession(cacheCapacity, workers int) *Session {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Session{
		cache: NewCache(cacheCapacity),
		slots: make(chan struct{}, workers),
	}
}

// Plan returns the compiled plan for req, from cache when resident.
// Compilation does not occupy a worker slot: cold-path plan construction
// and hot-path simulation contend for different resources.
func (s *Session) Plan(req Request) (*Plan, error) {
	return s.cache.Get(req)
}

// Run compiles (or fetches) the plan for req and replays it with the
// given inputs under a worker slot.
func (s *Session) Run(req Request, inputs [][]float32) (*core.Report, error) {
	p, err := s.cache.Get(req)
	if err != nil {
		return nil, err
	}
	s.slots <- struct{}{}
	defer func() { <-s.slots }()
	return p.Execute(inputs)
}

// Stats snapshots the plan-cache accounting.
func (s *Session) Stats() CacheStats { return s.cache.Stats() }

// Workers returns the worker-pool size.
func (s *Session) Workers() int { return cap(s.slots) }

// SetStore attaches a plan store to the session's cache: misses read
// through it and compiles write through to it. Call before taking
// traffic, or concurrently — attachment is atomic with respect to
// lookups.
func (s *Session) SetStore(ps PlanStore) { s.cache.SetStore(ps) }

// WarmStats reports what a Warm pass did: how many plans it decoded from
// the store, how many it had to compile (and, when a store was given,
// saved back), and how many were already resident and left untouched.
type WarmStats struct {
	Loaded   int
	Compiled int
	Resident int
}

// Warm pre-populates the session's plan cache before it takes traffic,
// so no request pays a compile on the serving path. Every requested shape
// is loaded from ps when stored there, compiled otherwise; plans Warm had
// to compile are saved back to ps, which is also how a shape list is
// compiled into a store ahead of deployment. A nil reqs warms every plan
// ps holds. Warm does not disturb the hit/miss accounting (its loads and
// compiles are reported in WarmStats, not CacheStats) and is safe to run
// while the session serves: it coalesces with in-flight request compiles
// for the same key rather than duplicating them, and a shape that fails
// to warm is recorded in the joined error and skipped, never blocking the
// rest of the list.
func (s *Session) Warm(ps PlanStore, reqs []Request) (WarmStats, error) {
	var st WarmStats
	var errs []error
	if reqs == nil && ps != nil {
		for _, k := range ps.Keys() {
			reqs = append(reqs, k.Request())
		}
	}
	for _, req := range reqs {
		key := KeyOf(req)
		var loaded bool
		_, fetched, err := s.cache.acquire(key, false, func() (*Plan, error) {
			var p *Plan
			if ps != nil {
				switch lp, ok, lerr := ps.Load(key); {
				case lerr != nil:
					errs = append(errs, lerr)
				case ok:
					p, loaded = lp, true
				}
			}
			if p == nil {
				cp, cerr := Compile(req)
				if cerr != nil {
					return nil, cerr
				}
				p = cp
				if ps != nil {
					if serr := ps.Save(p); serr != nil {
						errs = append(errs, serr)
					}
				}
			}
			// Pre-build one fabric instance per warmed plan: the first
			// real request then resets a pooled simulator instead of
			// constructing one, landing at steady-state replay latency.
			if perr := p.Prewarm(); perr != nil {
				return nil, perr
			}
			return p, nil
		})
		switch {
		case err != nil:
			errs = append(errs, err)
		case !fetched:
			st.Resident++
		case loaded:
			st.Loaded++
		default:
			st.Compiled++
		}
	}
	return st, errors.Join(errs...)
}

// Export saves every resident plan to ps, returning how many were
// written. Together with Warm this is the deployment cycle: a staging
// process compiles its workload and Exports, the serving fleet Warms.
func (s *Session) Export(ps PlanStore) (int, error) {
	n := 0
	var errs []error
	for _, p := range s.cache.Plans() {
		if err := ps.Save(p); err != nil {
			errs = append(errs, err)
			continue
		}
		n++
	}
	return n, errors.Join(errs...)
}
