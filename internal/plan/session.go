package plan

import (
	"context"
	"errors"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Session is the serving-shaped executor over the plan cache: requests
// are compiled once (cold path), then replayed from the cache (hot path),
// with concurrent fabric simulations bounded by a worker pool. A Session
// is safe for use from many goroutines.
//
// The worker pool is fronted by a multi-tenant QoS scheduler
// (internal/sched): every replay is submitted under a tenant name and
// dispatched by weighted-fair scheduling within strict priority classes,
// with per-tenant admission control — a heavy tenant saturating the pool
// is rejected (sched.ErrOverloaded) rather than allowed to queue without
// bound, and never starves a latency-sensitive Interactive tenant.
// Run/RunContext are the single-tenant face of the same path: they
// submit under the default tenant.
type Session struct {
	cache *Cache
	sch   *sched.Scheduler
}

// NewSession returns a session with the given plan-cache capacity and
// worker-pool size (<= 0 selects DefaultCacheCapacity and GOMAXPROCS),
// with every request served under the default tenant config.
func NewSession(cacheCapacity, workers int) *Session {
	return NewSessionSched(cacheCapacity, sched.Config{Workers: workers})
}

// NewSessionSched returns a session whose worker pool runs under the
// given scheduler config (worker count, default tenant QoS).
func NewSessionSched(cacheCapacity int, cfg sched.Config) *Session {
	return &Session{
		cache: NewCache(cacheCapacity),
		sch:   sched.New(cfg),
	}
}

// Plan returns the compiled plan for req, from cache when resident.
// Compilation does not occupy a worker slot: cold-path plan construction
// and hot-path simulation contend for different resources.
func (s *Session) Plan(req Request) (*Plan, error) {
	return s.cache.Get(req)
}

// Run compiles (or fetches) the plan for req and replays it with the
// given inputs under a worker slot, as the default tenant.
func (s *Session) Run(req Request, inputs [][]float32) (*core.Report, error) {
	return s.Submit(context.Background(), "", req, inputs)
}

// RunContext is Run with a cancellation path: a caller abandoning a
// request that is still queued for a worker unqueues it and returns
// ctx.Err() immediately — no goroutine is left waiting on the pool.
func (s *Session) RunContext(ctx context.Context, req Request, inputs [][]float32) (*core.Report, error) {
	return s.Submit(ctx, "", req, inputs)
}

// Submit compiles (or fetches) the plan for req and replays it with the
// given inputs under the named tenant's QoS ("" selects the default
// tenant). Plan acquisition happens in the caller's goroutine — compiles
// never occupy a worker slot — then the replay is queued under the
// tenant and dispatched by the scheduler. Submit returns the replay's
// report, or sched.ErrOverloaded when the tenant's queue is full,
// sched.ErrClosed after Close, or ctx.Err() when the context fires while
// the request is queued or running.
//
// Admission is checked before plan acquisition: a request that would
// only be turned away (overloaded tenant, closed session, dead context)
// is rejected without compiling anything or touching the shared plan
// cache, so a flooding tenant cannot burn compile cycles or evict other
// tenants' hot plans with requests that never run.
func (s *Session) Submit(ctx context.Context, tenant string, req Request, inputs [][]float32) (*core.Report, error) {
	return s.SubmitOpts(ctx, tenant, req, inputs, ExecOptions{})
}

// SubmitOpts is Submit with per-replay execution options (columnar
// result assembly).
func (s *Session) SubmitOpts(ctx context.Context, tenant string, req Request, inputs [][]float32, eo ExecOptions) (*core.Report, error) {
	if err := s.sch.Admit(ctx, tenant); err != nil {
		return nil, err
	}
	return s.submitAdmitted(ctx, tenant, req, inputs, eo)
}

// submitAdmitted is the tail of SubmitOpts after the admission
// pre-check: plan acquisition in the caller's goroutine, then the
// scheduled replay (whose Submit re-runs the authoritative queue-time
// admission check).
func (s *Session) submitAdmitted(ctx context.Context, tenant string, req Request, inputs [][]float32, eo ExecOptions) (*core.Report, error) {
	rctx, rspan := obs.Start(ctx, "plan.resolve")
	p, err := s.cache.GetCtx(rctx, req)
	rspan.SetError(err)
	rspan.End()
	if err != nil {
		return nil, err
	}
	var rep *core.Report
	// The worker hands the submitter's ctx to the replay, where it becomes
	// the fabric watchdog: a deadline firing mid-simulation aborts the run
	// (typed sched.ErrDeadline) instead of spinning to MaxCycles.
	if err := s.sch.Submit(ctx, tenant, func(c context.Context) error {
		r, e := p.ExecuteCtx(c, inputs, eo)
		rep = r
		return e
	}); err != nil {
		return nil, err
	}
	return rep, nil
}

// SubmitAsync is Submit that returns immediately with a future instead
// of blocking. Admission is checked synchronously — an overloaded tenant
// or closed session comes back as an already-resolved Async, so async
// callers shed load exactly as fast as blocking ones — then plan
// acquisition and the scheduled replay proceed on their own goroutine.
// Cancelling ctx while the request is queued or running resolves the
// future with ctx.Err() under the scheduler's usual accounting.
func (s *Session) SubmitAsync(ctx context.Context, tenant string, req Request, inputs [][]float32, eo ExecOptions) *Async {
	if err := s.sch.Admit(ctx, tenant); err != nil {
		return Fail(err)
	}
	return Go(func() (*core.Report, error) {
		return s.submitAdmitted(ctx, tenant, req, inputs, eo)
	})
}

// SubmitBatch compiles (or fetches) the plan for req once and replays it
// across every entry of batches as a single scheduled request: one queue
// slot, one dispatch, one fabric instance held across the batch (see
// Plan.ExecuteBatch). The whole batch is one unit of scheduling — QoS
// weight accounting sees one request. Cancelling ctx mid-batch returns
// immediately; the worker finishes the replay in flight, observes the
// cancellation at the next entry boundary and abandons the rest of the
// batch, so a cancelled batch does not pin a worker for its full length.
func (s *Session) SubmitBatch(ctx context.Context, tenant string, req Request, batches [][][]float32, eo ExecOptions) ([]*core.Report, error) {
	if err := s.sch.Admit(ctx, tenant); err != nil {
		return nil, err
	}
	rctx, rspan := obs.Start(ctx, "plan.resolve")
	p, err := s.cache.GetCtx(rctx, req)
	rspan.SetError(err)
	rspan.End()
	if err != nil {
		return nil, err
	}
	var reps []*core.Report
	if err := s.sch.Submit(ctx, tenant, func(c context.Context) error {
		r, e := p.ExecuteBatch(c, batches, eo)
		reps = r
		return e
	}); err != nil {
		return nil, err
	}
	return reps, nil
}

// SetTenant registers (or live-reconfigures) a tenant's weight, priority
// class and queue bound.
func (s *Session) SetTenant(name string, cfg sched.TenantConfig) { s.sch.SetTenant(name, cfg) }

// RemoveTenant deletes a tenant from the scheduler, releasing its queue,
// latency sketches and accounting; still-queued requests fail with
// sched.ErrTenantRemoved. It reports whether the tenant existed.
func (s *Session) RemoveTenant(name string) bool { return s.sch.RemoveTenant(name) }

// Stats snapshots the plan-cache accounting.
func (s *Session) Stats() CacheStats { return s.cache.Stats() }

// SchedStats snapshots the scheduler's per-tenant accounting (served/
// rejected/cancelled counts, queue-wait and execution latency quantiles)
// and the worker pool's backpressure metrics.
func (s *Session) SchedStats() sched.Stats { return s.sch.Stats() }

// Workers returns the worker-pool size.
func (s *Session) Workers() int { return s.sch.Workers() }

// Close stops admission, drains queued replays, waits for running ones
// and releases the worker pool. Submissions after Close return
// sched.ErrClosed.
func (s *Session) Close() error { return s.sch.Close() }

// SetStore attaches a plan store to the session's cache: misses read
// through it and compiles write through to it. Call before taking
// traffic, or concurrently — attachment is atomic with respect to
// lookups.
func (s *Session) SetStore(ps PlanStore) { s.cache.SetStore(ps) }

// SetResolver attaches a resolver chain as the cache's miss path,
// replacing the built-in store→compile fill. See Cache.SetResolver.
func (s *Session) SetResolver(r Resolver) { s.cache.SetResolver(r) }

// Resident returns the cached plan for key when resident, refreshing its
// recency without touching the hit/miss accounting. This is what the
// blob endpoint serves from: a peer asking for a plan by key should see
// residency, never trigger a compile.
func (s *Session) Resident(key Key) (*Plan, bool) { return s.cache.Lookup(key) }

// Plans snapshots the resident plans, most recently used first.
func (s *Session) Plans() []*Plan { return s.cache.Plans() }

// Prefetch materialises the plan for req into the cache ahead of
// traffic, through the attached resolver chain (or the legacy
// store→compile path), and pre-builds one pooled fabric instance so the
// first real request lands at steady-state replay latency. Like Warm it
// stays out of the hit/miss accounting and coalesces with in-flight
// fills. The returned bool reports whether a fill actually ran (false:
// the plan was already resident or being fetched by someone else).
func (s *Session) Prefetch(ctx context.Context, req Request) (bool, error) {
	key := KeyOf(req)
	fill := s.cache.fill(ctx, key, req)
	_, fetched, err := s.cache.acquire(key, false, func() (*Plan, error) {
		p, err := fill()
		if err != nil {
			return nil, err
		}
		if perr := p.Prewarm(); perr != nil {
			return nil, perr
		}
		return p, nil
	})
	return fetched, err
}

// WarmStats reports what a Warm pass did: how many plans it decoded from
// the store, how many it had to compile (and, when a store was given,
// saved back), and how many were already resident and left untouched.
type WarmStats struct {
	Loaded   int
	Compiled int
	Resident int
}

// Warm pre-populates the session's plan cache before it takes traffic,
// so no request pays a compile on the serving path. Every requested shape
// is loaded from ps when stored there, compiled otherwise; plans Warm had
// to compile are saved back to ps, which is also how a shape list is
// compiled into a store ahead of deployment. A nil reqs warms every plan
// ps holds. Warm does not disturb the hit/miss accounting (its loads and
// compiles are reported in WarmStats, not CacheStats) and is safe to run
// while the session serves: it coalesces with in-flight request compiles
// for the same key rather than duplicating them, and a shape that fails
// to warm is recorded in the joined error and skipped, never blocking the
// rest of the list.
func (s *Session) Warm(ps PlanStore, reqs []Request) (WarmStats, error) {
	var st WarmStats
	var errs []error
	if reqs == nil && ps != nil {
		for _, k := range ps.Keys() {
			reqs = append(reqs, k.Request())
		}
	}
	for _, req := range reqs {
		key := KeyOf(req)
		var loaded bool
		_, fetched, err := s.cache.acquire(key, false, func() (*Plan, error) {
			var p *Plan
			if ps != nil {
				switch lp, ok, lerr := ps.Load(key); {
				case lerr != nil:
					errs = append(errs, lerr)
				case ok:
					p, loaded = lp, true
				}
			}
			if p == nil {
				cp, cerr := Compile(req)
				if cerr != nil {
					return nil, cerr
				}
				p = cp
				if ps != nil {
					if serr := ps.Save(p); serr != nil {
						errs = append(errs, serr)
					}
				}
			}
			// Pre-build one fabric instance per warmed plan: the first
			// real request then resets a pooled simulator instead of
			// constructing one, landing at steady-state replay latency.
			if perr := p.Prewarm(); perr != nil {
				return nil, perr
			}
			return p, nil
		})
		switch {
		case err != nil:
			errs = append(errs, err)
		case !fetched:
			st.Resident++
		case loaded:
			st.Loaded++
		default:
			st.Compiled++
		}
	}
	return st, errors.Join(errs...)
}

// Export saves every resident plan to ps, returning how many were
// written. Together with Warm this is the deployment cycle: a staging
// process compiles its workload and Exports, the serving fleet Warms.
func (s *Session) Export(ps PlanStore) (int, error) {
	n := 0
	var errs []error
	for _, p := range s.cache.Plans() {
		if err := ps.Save(p); err != nil {
			errs = append(errs, err)
			continue
		}
		n++
	}
	return n, errors.Join(errs...)
}
