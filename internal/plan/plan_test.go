package plan

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/measure"
)

func vectors(p, b int, seed float32) [][]float32 {
	out := make([][]float32, p)
	for i := range out {
		v := make([]float32, b)
		for j := range v {
			v[j] = seed + float32(i*b+j%7)
		}
		out[i] = v
	}
	return out
}

func sameVec(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReplayMatchesOneShot checks that compiling once and replaying
// produces bit-identical reports to the one-shot core API, for every
// collective kind.
func TestReplayMatchesOneShot(t *testing.T) {
	opt := fabric.Options{}
	p, b := 16, 24
	vecs := vectors(p, b, 0.5)
	chunks := make([][]float32, p)
	{
		off, sz := core.Chunks(p, b)
		full := vectors(1, b, 2.25)[0]
		for j := range chunks {
			chunks[j] = full[off[j] : off[j]+sz[j]]
		}
	}
	grid := vectors(6*4, b, 1.125)

	cases := []struct {
		name    string
		req     Request
		inputs  [][]float32
		oneShot func() (*core.Report, error)
	}{
		{"reduce1d-autogen", Request{Kind: Reduce1D, Alg: core.AutoGen, P: p, B: b, Op: fabric.OpSum}, vecs,
			func() (*core.Report, error) { return core.RunReduce1D(core.AutoGen, vecs, fabric.OpSum, opt) }},
		{"reduce1d-auto", Request{Kind: Reduce1D, Alg: core.Auto, P: p, B: b, Op: fabric.OpMax}, vecs,
			func() (*core.Report, error) { return core.RunReduce1D(core.Auto, vecs, fabric.OpMax, opt) }},
		{"allreduce1d-twophase", Request{Kind: AllReduce1D, Alg: core.TwoPhase, P: p, B: b, Op: fabric.OpSum}, vecs,
			func() (*core.Report, error) { return core.RunAllReduce1D(core.TwoPhase, vecs, fabric.OpSum, opt) }},
		{"allreduce1d-ring", Request{Kind: AllReduce1D, Alg: core.Ring, P: p, B: b, Op: fabric.OpSum}, vecs,
			func() (*core.Report, error) { return core.RunAllReduce1D(core.Ring, vecs, fabric.OpSum, opt) }},
		{"broadcast1d", Request{Kind: Broadcast1D, P: p, B: b}, [][]float32{vecs[3]},
			func() (*core.Report, error) { return core.RunBroadcast1D(vecs[3], p, opt) }},
		{"reduce2d-snake", Request{Kind: Reduce2D, Alg2D: core.Snake, Width: 6, Height: 4, B: b, Op: fabric.OpSum}, grid,
			func() (*core.Report, error) { return core.RunReduce2D(core.Snake, 6, 4, grid, fabric.OpSum, opt) }},
		{"allreduce2d-auto", Request{Kind: AllReduce2D, Alg2D: core.Auto2D, Width: 6, Height: 4, B: b, Op: fabric.OpSum}, grid,
			func() (*core.Report, error) { return core.RunAllReduce2D(core.Auto2D, 6, 4, grid, fabric.OpSum, opt) }},
		{"broadcast2d", Request{Kind: Broadcast2D, Width: 6, Height: 4, B: b}, [][]float32{vecs[1]},
			func() (*core.Report, error) { return core.RunBroadcast2D(vecs[1], 6, 4, opt) }},
		{"scatter", Request{Kind: Scatter, P: p, B: b}, [][]float32{vecs[0]},
			func() (*core.Report, error) { return core.RunScatter(vecs[0], p, opt) }},
		{"gather", Request{Kind: Gather, P: p, B: b}, chunks,
			func() (*core.Report, error) { return core.RunGather(chunks, opt) }},
		{"reducescatter", Request{Kind: ReduceScatter, P: p, B: b, Op: fabric.OpSum}, vecs,
			func() (*core.Report, error) { return core.RunReduceScatter(vecs, fabric.OpSum, opt) }},
		{"allgather", Request{Kind: AllGather, P: p, B: b}, chunks,
			func() (*core.Report, error) { return core.RunAllGather(chunks, opt) }},
		{"midroot-auto", Request{Kind: AllReduceMidRoot, Alg: core.Auto, P: p + 1, B: b, Op: fabric.OpSum}, vectors(p+1, b, 0.5),
			func() (*core.Report, error) {
				return core.RunAllReduceMidRoot(core.Auto, vectors(p+1, b, 0.5), fabric.OpSum, opt)
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pl, err := Compile(tc.req)
			if err != nil {
				t.Fatal(err)
			}
			want, err := tc.oneShot()
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 2; rep++ { // replay twice: plan must stay pristine
				got, err := pl.Execute(tc.inputs)
				if err != nil {
					t.Fatalf("replay %d: %v", rep, err)
				}
				if !sameVec(got.Root, want.Root) {
					t.Fatalf("replay %d: Root = %v, one-shot %v", rep, got.Root, want.Root)
				}
				if got.Cycles != want.Cycles {
					t.Fatalf("replay %d: Cycles = %d, one-shot %d", rep, got.Cycles, want.Cycles)
				}
				if got.Predicted != want.Predicted {
					t.Fatalf("replay %d: Predicted = %g, one-shot %g", rep, got.Predicted, want.Predicted)
				}
			}
		})
	}
}

// TestPlanMetadata checks the IR carries the lowering metadata.
func TestPlanMetadata(t *testing.T) {
	pl, err := Compile(Request{Kind: AllReduce1D, Alg: core.Auto, P: 64, B: 256, Op: fabric.OpSum})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Alg == core.Auto || pl.Alg == "" {
		t.Fatalf("Auto not resolved: %q", pl.Alg)
	}
	if pl.Tree.Len() != 64 {
		t.Fatalf("tree has %d vertices, want 64", pl.Tree.Len())
	}
	if len(pl.Colors) == 0 {
		t.Fatal("no routing colors recorded")
	}
	if pl.Predicted <= 0 {
		t.Fatalf("Predicted = %g", pl.Predicted)
	}
	if pl.Spec == nil || len(pl.Spec.PEs) != 64 {
		t.Fatal("spec missing or wrong size")
	}

	pl2, err := Compile(Request{Kind: Reduce2D, Alg2D: core.XYTree, Width: 8, Height: 4, B: 16, Op: fabric.OpSum})
	if err != nil {
		t.Fatal(err)
	}
	if pl2.RowTree.Len() != 8 || pl2.ColTree.Len() != 4 {
		t.Fatalf("row/col trees %d/%d, want 8/4", pl2.RowTree.Len(), pl2.ColTree.Len())
	}
}

// TestCacheHitMissEviction drives the LRU accounting.
func TestCacheHitMissEviction(t *testing.T) {
	c := NewCache(2)
	req := func(p int) Request {
		return Request{Kind: Reduce1D, Alg: core.Chain, P: p, B: 8, Op: fabric.OpSum}
	}
	for _, p := range []int{4, 8} {
		if _, err := c.Get(req(p)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Misses != 2 || st.Hits != 0 || st.Size != 2 {
		t.Fatalf("after fill: %+v", st)
	}
	if _, err := c.Get(req(4)); err != nil { // hit; makes p=4 most recent
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("after hit: %+v", st)
	}
	if _, err := c.Get(req(16)); err != nil { // evicts p=8 (LRU)
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("after eviction: %+v", st)
	}
	if _, ok := c.Peek(req(8)); ok {
		t.Fatal("p=8 should have been evicted")
	}
	if _, ok := c.Peek(req(4)); !ok {
		t.Fatal("p=4 should be resident")
	}
	// Same shape under different fabric options is a different plan.
	r := req(4)
	r.Opt = fabric.Options{TaskActivation: 10}
	if _, err := c.Get(r); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 4 {
		t.Fatalf("option change should miss: %+v", st)
	}
	// TR 0 and the explicit default normalise to the same key.
	r = req(4)
	r.Opt = fabric.Options{TR: fabric.DefaultTR}
	if KeyOf(r) != KeyOf(req(4)) {
		t.Fatalf("TR=0 and TR=%d should share a key", fabric.DefaultTR)
	}
}

// TestCacheSingleflight checks racing lookups of one key compile once.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(8)
	req := Request{Kind: Reduce1D, Alg: core.AutoGen, P: 128, B: 64, Op: fabric.OpSum}
	const n = 16
	var wg sync.WaitGroup
	plans := make([]*Plan, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.Get(req)
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d misses for one key, want 1 (%+v)", st.Misses, st)
	}
	if st.Hits != n-1 {
		t.Fatalf("%d hits, want %d (%+v)", st.Hits, n-1, st)
	}
}

// TestSessionConcurrentMixedWorkload replays many shapes from many
// goroutines through a capacity-limited cache; run under -race this is
// the plan subsystem's concurrency proof. Results are verified against
// the closed form of an all-ones sum reduce.
func TestSessionConcurrentMixedWorkload(t *testing.T) {
	s := NewSession(4, 4) // smaller cache than working set: force evictions
	ones := func(p, b int) [][]float32 {
		out := make([][]float32, p)
		for i := range out {
			v := make([]float32, b)
			for j := range v {
				v[j] = 1
			}
			out[i] = v
		}
		return out
	}
	shapes := []struct {
		req Request
		p   int
	}{
		{Request{Kind: Reduce1D, Alg: core.Chain, P: 8, B: 16, Op: fabric.OpSum}, 8},
		{Request{Kind: Reduce1D, Alg: core.Tree, P: 16, B: 8, Op: fabric.OpSum}, 16},
		{Request{Kind: AllReduce1D, Alg: core.TwoPhase, P: 12, B: 12, Op: fabric.OpSum}, 12},
		{Request{Kind: Reduce1D, Alg: core.AutoGen, P: 32, B: 4, Op: fabric.OpSum}, 32},
		{Request{Kind: AllReduce1D, Alg: core.Star, P: 6, B: 32, Op: fabric.OpSum}, 6},
		{Request{Kind: Reduce2D, Alg2D: core.Snake, Width: 4, Height: 3, B: 8, Op: fabric.OpSum}, 12},
	}
	const rounds = 6
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sh := shapes[(g+r)%len(shapes)]
				var in [][]float32
				if sh.req.Kind == Reduce2D {
					in = ones(sh.req.Width*sh.req.Height, sh.req.B)
				} else {
					in = ones(sh.req.P, sh.req.B)
				}
				rep, err := s.Run(sh.req, in)
				if err != nil {
					t.Errorf("g%d r%d: %v", g, r, err)
					return
				}
				for j, v := range rep.Root {
					if v != float32(sh.p) {
						t.Errorf("g%d r%d: Root[%d] = %v, want %d", g, r, j, v, sh.p)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Hits+st.Misses != 8*rounds {
		t.Fatalf("accounting: hits %d + misses %d != %d lookups", st.Hits, st.Misses, 8*rounds)
	}
	if st.Size > 4 {
		t.Fatalf("cache over capacity: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("working set of %d shapes in a 4-plan cache should evict: %+v", len(shapes), st)
	}
}

// TestStampIsolation instruments a stamped copy of a plan with the §8.3
// measurement prologue (which rewrites Ops and Configs in place) and
// verifies the cached plan still replays bit-identically afterwards.
func TestStampIsolation(t *testing.T) {
	req := Request{Kind: Reduce1D, Alg: core.TwoPhase, P: 16, B: 8, Op: fabric.OpSum}
	pl, err := Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	in := vectors(16, 8, 3)
	before, err := pl.Execute(in)
	if err != nil {
		t.Fatal(err)
	}

	dst := fabric.NewSpec(16, 1)
	if err := pl.Stamp(dst); err != nil {
		t.Fatal(err)
	}
	if err := measure.Instrument(dst, 16, 1, 2); err != nil {
		t.Fatal(err)
	}
	for _, pe := range dst.PEs {
		if pe.Init == nil {
			pe.Init = make([]float32, 8)
		}
	}
	f, err := fabric.New(dst, fabric.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}

	after, err := pl.Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	if !sameVec(before.Root, after.Root) || before.Cycles != after.Cycles {
		t.Fatalf("instrumenting a stamped copy corrupted the plan: %v/%d vs %v/%d",
			before.Root, before.Cycles, after.Root, after.Cycles)
	}
}

// TestExecuteInputValidation checks shape errors are caught at bind time.
func TestExecuteInputValidation(t *testing.T) {
	pl, err := Compile(Request{Kind: Reduce1D, Alg: core.Chain, P: 4, B: 8, Op: fabric.OpSum})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Execute(vectors(3, 8, 0)); err == nil {
		t.Fatal("wrong vector count accepted")
	}
	if _, err := pl.Execute(vectors(4, 7, 0)); err == nil {
		t.Fatal("wrong vector length accepted")
	}
	if _, err := Compile(Request{Kind: Kind("bogus"), P: 4, B: 8}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Compile(Request{Kind: Scatter, P: 1, B: 8}); err == nil {
		t.Fatal("1-PE scatter accepted")
	}
}

// TestPlanKeyDistinguishesShapes spot-checks key construction.
func TestPlanKeyDistinguishesShapes(t *testing.T) {
	base := Request{Kind: Reduce1D, Alg: core.Chain, P: 8, B: 16, Op: fabric.OpSum}
	mutants := []Request{
		{Kind: AllReduce1D, Alg: core.Chain, P: 8, B: 16, Op: fabric.OpSum},
		{Kind: Reduce1D, Alg: core.Tree, P: 8, B: 16, Op: fabric.OpSum},
		{Kind: Reduce1D, Alg: core.Chain, P: 9, B: 16, Op: fabric.OpSum},
		{Kind: Reduce1D, Alg: core.Chain, P: 8, B: 17, Op: fabric.OpSum},
		{Kind: Reduce1D, Alg: core.Chain, P: 8, B: 16, Op: fabric.OpMax},
	}
	seen := map[Key]string{KeyOf(base): "base"}
	for i, m := range mutants {
		k := KeyOf(m)
		if prev, dup := seen[k]; dup {
			t.Fatalf("mutant %d collides with %s", i, prev)
		}
		seen[k] = fmt.Sprintf("mutant %d", i)
	}
}
