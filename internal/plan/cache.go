package plan

import (
	"container/list"
	"sync"
)

// DefaultCacheCapacity bounds a Cache when the caller passes no capacity.
const DefaultCacheCapacity = 128

// CacheStats reports a cache's accounting: Hits counts lookups served
// from a resident or in-flight plan, Misses the lookups that triggered a
// compile, Evictions the plans dropped at capacity, and Size the resident
// plan count.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Size      int
}

// Cache is a content-keyed LRU of compiled plans. Lookups for the same
// key that race an in-flight compile coalesce onto it (and count as hits)
// instead of compiling twice.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[Key]*list.Element
	lru       list.List // front = most recently used; values are *Plan
	compiling map[Key]*inflight
	hits      int64
	misses    int64
	evictions int64
}

type inflight struct {
	done chan struct{}
	plan *Plan
	err  error
}

// NewCache returns a cache holding at most capacity plans
// (DefaultCacheCapacity when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		capacity:  capacity,
		entries:   make(map[Key]*list.Element),
		compiling: make(map[Key]*inflight),
	}
}

// Get returns the plan for req, compiling and inserting it on a miss.
func (c *Cache) Get(req Request) (*Plan, error) {
	key := KeyOf(req)
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		p := el.Value.(*Plan)
		c.mu.Unlock()
		return p, nil
	}
	if fl, ok := c.compiling[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-fl.done
		return fl.plan, fl.err
	}
	c.misses++
	fl := &inflight{done: make(chan struct{})}
	c.compiling[key] = fl
	c.mu.Unlock()

	fl.plan, fl.err = Compile(req)

	c.mu.Lock()
	delete(c.compiling, key)
	if fl.err == nil {
		c.insert(key, fl.plan)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.plan, fl.err
}

// Peek reports whether a plan for req is resident, without compiling or
// touching the stats and recency order.
func (c *Cache) Peek(req Request) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[KeyOf(req)]
	if !ok {
		return nil, false
	}
	return el.Value.(*Plan), true
}

// insert adds a plan under key, evicting from the cold end at capacity.
// The caller holds c.mu.
func (c *Cache) insert(key Key, p *Plan) {
	if el, ok := c.entries[key]; ok { // racing insert of the same key
		c.lru.MoveToFront(el)
		el.Value = p
		return
	}
	c.entries[key] = c.lru.PushFront(p)
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*Plan).Key)
		c.evictions++
	}
}

// Stats returns a snapshot of the cache accounting.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.lru.Len(),
	}
}

// Capacity returns the maximum resident plan count.
func (c *Cache) Capacity() int { return c.capacity }
