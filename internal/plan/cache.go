package plan

import (
	"container/list"
	"context"
	"log"
	"sync"

	"repro/internal/obs"
)

// DefaultCacheCapacity bounds a Cache when the caller passes no capacity.
const DefaultCacheCapacity = 128

// CacheStats reports a cache's accounting: Hits counts lookups served
// from a resident or in-flight plan, Misses the lookups that left the
// cache (store load or compile), Evictions the plans dropped at capacity,
// and Size the resident plan count. When a store is attached, StoreHits
// counts the misses that were satisfied by decoding a stored plan instead
// of compiling, and StoreErrors the store operations (load or write-
// through save) that failed — store failures never fail a lookup, they
// just fall back to the compiler.
type CacheStats struct {
	Hits        int64
	Misses      int64
	Evictions   int64
	StoreHits   int64
	StoreErrors int64
	// LastStoreError is the message of the most recent failed store
	// operation ("" while none has failed). Store failures are absorbed —
	// lookups fall back to the compiler — so without this field a dying
	// store is visible only as a bare counter.
	LastStoreError string
	Size           int
}

// PlanStore is plan persistence as the cache and session consume it: a
// durable keyed collection of encoded plans. The concrete implementation
// is internal/planstore.Store (a content-addressed directory of blobs);
// the interface lives here so the plan subsystem stays free of the
// persistence dependency and tests can substitute in-memory stores.
type PlanStore interface {
	// Load returns the stored plan for key, with ok=false (and no error)
	// when the store has no entry. An error means an entry existed but
	// could not be used (unreadable, corrupt, version-incompatible).
	Load(key Key) (*Plan, bool, error)
	// Save persists a compiled plan, overwriting any entry with the same
	// key.
	Save(p *Plan) error
	// Keys lists the keys of every stored plan.
	Keys() []Key
}

// Resolver materialises the plan for a key: the pluggable miss path of a
// cache (and therefore a Session). The concrete implementation is a
// composable stage chain in internal/resolve — local store, remote peer,
// compile-as-last-resort — but the plan subsystem only sees this one
// method, so it stays free of the network and persistence dependencies.
type Resolver interface {
	Resolve(ctx context.Context, key Key) (*Plan, error)
}

// Cache is a content-keyed LRU of compiled plans. Lookups for the same
// key that race an in-flight compile coalesce onto it (and count as hits)
// instead of compiling twice. With a store attached (SetStore), misses
// try the store before the compiler and freshly compiled plans are
// written through, so a serving process transparently accumulates and
// reuses a durable plan warehouse.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[Key]*list.Element
	lru       list.List // front = most recently used; values are *Plan
	compiling map[Key]*inflight
	store     PlanStore
	resolver  Resolver
	stats     CacheStats
	// storeErrLogged dedupes the store-failure log line: one warning per
	// attached store, not one per degraded request. SetStore resets it, so
	// swapping in a replacement store re-arms the warning.
	storeErrLogged bool
}

type inflight struct {
	done chan struct{}
	plan *Plan
	err  error
}

// NewCache returns a cache holding at most capacity plans
// (DefaultCacheCapacity when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		capacity:  capacity,
		entries:   make(map[Key]*list.Element),
		compiling: make(map[Key]*inflight),
	}
}

// SetStore attaches (or, with nil, detaches) a plan store. Subsequent
// misses read through it and subsequent compiles write through to it.
func (c *Cache) SetStore(ps PlanStore) {
	c.mu.Lock()
	c.store = ps
	c.storeErrLogged = false
	c.mu.Unlock()
}

// SetResolver attaches (or, with nil, detaches) a resolver chain as the
// cache's miss path, replacing the built-in store-load → compile →
// write-through fill. The chain owns its own store/peer/compile policy
// and stats; with a resolver attached, the cache's StoreHits/StoreErrors
// counters stay flat (the equivalent accounting lives per stage in the
// chain). Call before taking traffic, or concurrently — attachment is
// atomic with respect to lookups.
func (c *Cache) SetResolver(r Resolver) {
	c.mu.Lock()
	c.resolver = r
	c.mu.Unlock()
}

// Get returns the plan for req, loading it from the attached store or
// compiling it on a miss.
func (c *Cache) Get(req Request) (*Plan, error) {
	return c.GetCtx(context.Background(), req)
}

// GetCtx is Get with the caller's context threaded into the miss path,
// where a resolver chain's remote stages honour its deadline. Lookups
// that coalesce onto an in-flight miss share the first caller's fill
// (and its context), exactly as they share its compile.
func (c *Cache) GetCtx(ctx context.Context, req Request) (*Plan, error) {
	key := KeyOf(req)
	p, _, err := c.acquire(key, true, c.fill(ctx, key, req))
	return p, err
}

// fill builds the miss path for key: the attached resolver chain when
// one is set, else the legacy store-load → compile → write-through.
func (c *Cache) fill(ctx context.Context, key Key, req Request) func() (*Plan, error) {
	if r := c.resolverHandle(); r != nil {
		return func() (*Plan, error) { return r.Resolve(ctx, key) }
	}
	return func() (*Plan, error) {
		ps := c.storeHandle()
		if ps != nil {
			_, lspan := obs.Start(ctx, "planstore.load")
			p, ok, err := ps.Load(key)
			lspan.SetAttr("hit", ok)
			lspan.SetError(err)
			lspan.End()
			switch {
			case err != nil:
				c.noteStoreError(err)
			case ok:
				c.noteStoreHit()
				return p, nil
			}
		}
		_, cspan := obs.Start(ctx, "plan.compile")
		p, err := Compile(req)
		cspan.SetError(err)
		cspan.End()
		if err == nil && ps != nil {
			_, sspan := obs.Start(ctx, "planstore.save")
			if serr := ps.Save(p); serr != nil {
				sspan.SetError(serr)
				c.noteStoreError(serr)
			}
			sspan.End()
		}
		return p, err
	}
}

// acquire returns the plan for key: residents are served directly,
// lookups racing an in-flight materialisation coalesce onto it, and
// otherwise fetch runs (outside the lock, under the in-flight slot) and
// its result is inserted. count selects whether the lookup participates
// in the hit/miss accounting — serving lookups do, warm-up passes do not.
// The returned bool reports whether fetch ran.
func (c *Cache) acquire(key Key, count bool, fetch func() (*Plan, error)) (*Plan, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		if count {
			c.stats.Hits++
		}
		p := el.Value.(*Plan)
		c.mu.Unlock()
		return p, false, nil
	}
	if fl, ok := c.compiling[key]; ok {
		if count {
			c.stats.Hits++
		}
		c.mu.Unlock()
		<-fl.done
		return fl.plan, false, fl.err
	}
	if count {
		c.stats.Misses++
	}
	fl := &inflight{done: make(chan struct{})}
	c.compiling[key] = fl
	c.mu.Unlock()

	fl.plan, fl.err = fetch()

	c.mu.Lock()
	delete(c.compiling, key)
	if fl.err == nil {
		c.insert(key, fl.plan)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.plan, true, fl.err
}

func (c *Cache) storeHandle() PlanStore {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store
}

func (c *Cache) resolverHandle() Resolver {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resolver
}

// Lookup returns the resident plan for key, refreshing its recency,
// without counting a hit or miss and without triggering any fill. This
// is the memory stage of a resolver chain: the chain consults residency
// here and owns its own per-stage accounting, so a chain-driven lookup
// must not double-count against the cache's serving stats.
func (c *Cache) Lookup(key Key) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*Plan), true
}

// Peek reports whether a plan for req is resident, without compiling or
// touching the stats and recency order.
func (c *Cache) Peek(req Request) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[KeyOf(req)]
	if !ok {
		return nil, false
	}
	return el.Value.(*Plan), true
}

// Plans snapshots the resident plans, most recently used first.
func (c *Cache) Plans() []*Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Plan, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Plan))
	}
	return out
}

func (c *Cache) noteStoreHit() {
	c.mu.Lock()
	c.stats.StoreHits++
	c.mu.Unlock()
}

func (c *Cache) noteStoreError(err error) {
	c.mu.Lock()
	c.stats.StoreErrors++
	c.stats.LastStoreError = err.Error()
	logIt := !c.storeErrLogged
	c.storeErrLogged = true
	c.mu.Unlock()
	if logIt {
		log.Printf("plan: store degraded (falling back to compile; logged once per store): %v", err)
	}
}

// insert adds a plan under key, evicting from the cold end at capacity.
// The caller holds c.mu.
func (c *Cache) insert(key Key, p *Plan) {
	if el, ok := c.entries[key]; ok { // racing insert of the same key
		c.lru.MoveToFront(el)
		el.Value = p
		return
	}
	c.entries[key] = c.lru.PushFront(p)
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*Plan).Key)
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of the cache accounting.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Size = c.lru.Len()
	return st
}

// Capacity returns the maximum resident plan count.
func (c *Cache) Capacity() int { return c.capacity }
