//go:build !race

package plan

// raceEnabled reports whether this binary was built with the race detector.
const raceEnabled = false
