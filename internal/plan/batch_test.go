package plan

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
)

// TestExecuteBatchMatchesSingleAndCancels: a plan-level batch is
// entry-for-entry identical to single Executes, and a cancelled context
// stops the batch at an entry boundary with ctx.Err().
func TestExecuteBatchMatchesSingleAndCancels(t *testing.T) {
	p, err := Compile(Request{Kind: Reduce1D, Alg: core.Chain, P: 6, B: 4, Op: fabric.OpSum})
	if err != nil {
		t.Fatal(err)
	}
	batches := make([][][]float32, 3)
	for i := range batches {
		in := make([][]float32, 6)
		for j := range in {
			in[j] = []float32{float32(i + 1), 2, 3, float32(j)}

		}
		batches[i] = in
	}
	reps, err := p.ExecuteBatch(context.Background(), batches, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		single, err := p.Execute(batches[i])
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cycles != single.Cycles || rep.Root[0] != single.Root[0] || rep.Root[3] != single.Root[3] {
			t.Fatalf("entry %d: batch (%d cycles, root %v) vs single (%d cycles, root %v)",
				i, rep.Cycles, rep.Root, single.Cycles, single.Root)
		}
	}

	// nil ctx means no cancellation; a dead ctx stops before any replay.
	if _, err := p.ExecuteBatch(nil, batches, ExecOptions{}); err != nil {
		t.Fatalf("nil ctx batch: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if reps, err := p.ExecuteBatch(ctx, batches, ExecOptions{}); !errors.Is(err, context.Canceled) || reps != nil {
		t.Fatalf("cancelled batch: reps=%v err=%v, want nil + context.Canceled", reps, err)
	}
}
