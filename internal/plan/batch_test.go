package plan

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
)

// TestExecuteBatchMatchesSingleAndCancels: a plan-level batch is
// entry-for-entry identical to single Executes, and a cancelled context
// stops the batch at an entry boundary with ctx.Err().
func TestExecuteBatchMatchesSingleAndCancels(t *testing.T) {
	p, err := Compile(Request{Kind: Reduce1D, Alg: core.Chain, P: 6, B: 4, Op: fabric.OpSum})
	if err != nil {
		t.Fatal(err)
	}
	batches := make([][][]float32, 3)
	for i := range batches {
		in := make([][]float32, 6)
		for j := range in {
			in[j] = []float32{float32(i + 1), 2, 3, float32(j)}

		}
		batches[i] = in
	}
	reps, err := p.ExecuteBatch(context.Background(), batches, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		single, err := p.Execute(batches[i])
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cycles != single.Cycles || rep.Root[0] != single.Root[0] || rep.Root[3] != single.Root[3] {
			t.Fatalf("entry %d: batch (%d cycles, root %v) vs single (%d cycles, root %v)",
				i, rep.Cycles, rep.Root, single.Cycles, single.Root)
		}
	}

	// nil ctx means no cancellation; a dead ctx stops before any replay.
	if _, err := p.ExecuteBatch(nil, batches, ExecOptions{}); err != nil {
		t.Fatalf("nil ctx batch: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if reps, err := p.ExecuteBatch(ctx, batches, ExecOptions{}); !errors.Is(err, context.Canceled) || reps != nil {
		t.Fatalf("cancelled batch: reps=%v err=%v, want nil + context.Canceled", reps, err)
	}
}

// TestExecuteBatchColumnarArena: the columnar batch path must match
// single columnar replays entry for entry, keep every report's buffers
// independent (the shared arena is carved into disjoint segments), and —
// the point of the arena — not allocate one Acc buffer per run.
func TestExecuteBatchColumnarArena(t *testing.T) {
	p, err := Compile(Request{Kind: Reduce1D, Alg: core.Chain, P: 6, B: 4, Op: fabric.OpSum})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	batches := make([][][]float32, n)
	for i := range batches {
		in := make([][]float32, 6)
		for j := range in {
			in[j] = []float32{float32(i + 1), 2, 3, float32(j)}
		}
		batches[i] = in
	}
	reps, err := p.ExecuteBatch(context.Background(), batches, ExecOptions{Columnar: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		single, err := p.ExecuteOpts(batches[i], ExecOptions{Columnar: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cycles != single.Cycles || rep.Root[0] != single.Root[0] || rep.Root[3] != single.Root[3] {
			t.Fatalf("entry %d: batch (%d cycles, root %v) vs single (%d cycles, root %v)",
				i, rep.Cycles, rep.Root, single.Cycles, single.Root)
		}
	}
	// Disjoint segments: scribbling over one report's accumulators must
	// not disturb any other report.
	want1 := reps[1].Root[0]
	for i := range reps[0].Columnar.Acc {
		reps[0].Columnar.Acc[i] = -999
	}
	if reps[1].Root[0] != want1 {
		t.Fatal("batch reports share accumulator storage")
	}

	if raceEnabled {
		return // the race detector inflates allocation counts
	}
	// The arena bound: growing the batch must not add an Acc allocation
	// per run. Per extra entry the batch path may allocate the Report and
	// its boxed fields, but the accumulator storage comes from the one
	// arena — so the growth from n to 2n entries stays well under what
	// per-run Acc buffers (one per entry) would add on top.
	allocs := func(batches [][][]float32) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := p.ExecuteBatch(context.Background(), batches, ExecOptions{Columnar: true}); err != nil {
				t.Fatal(err)
			}
		})
	}
	double := append(append([][][]float32{}, batches...), batches...)
	small, big := allocs(batches), allocs(double)
	perRun := (big - small) / float64(n)
	if perRun > 2.5 {
		t.Fatalf("columnar batch allocates %.1f allocs per extra run (n=%v -> 2n=%v); arena should hold it at the Report overhead (~2)", perRun, small, big)
	}
}
