package faults

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledIsNil(t *testing.T) {
	Reset()
	if err := Inject("anything"); err != nil {
		t.Fatalf("unarmed Inject returned %v", err)
	}
}

func TestErrorMode(t *testing.T) {
	defer Reset()
	Set("x", Point{})
	err := Inject("x")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if !strings.Contains(err.Error(), "x") {
		t.Fatalf("error %q does not name the site", err)
	}
	if err := Inject("y"); err != nil {
		t.Fatalf("unarmed sibling site failed: %v", err)
	}
	if Fired("x") != 1 {
		t.Fatalf("fired count = %d, want 1", Fired("x"))
	}
}

func TestPanicMode(t *testing.T) {
	defer Reset()
	Set("boom", Point{Mode: ModePanic})
	defer func() {
		if recover() == nil {
			t.Fatal("ModePanic did not panic")
		}
	}()
	Inject("boom")
}

func TestLatencyMode(t *testing.T) {
	defer Reset()
	Set("slow", Point{Mode: ModeLatency, Delay: 20 * time.Millisecond})
	t0 := time.Now()
	if err := Inject("slow"); err != nil {
		t.Fatalf("latency mode returned %v", err)
	}
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Fatalf("latency mode slept %v, want >= 20ms", d)
	}
}

func TestCountDisarms(t *testing.T) {
	defer Reset()
	Set("twice", Point{Count: 2})
	if Inject("twice") == nil || Inject("twice") == nil {
		t.Fatal("first two Injects should fail")
	}
	if err := Inject("twice"); err != nil {
		t.Fatalf("exhausted point still fails: %v", err)
	}
	if got := Active(); len(got) != 0 {
		t.Fatalf("exhausted point still armed: %v", got)
	}
	// The fast path must be restored: armed gate back to zero.
	if armed.Load() != 0 {
		t.Fatalf("armed gate = %d after exhaustion, want 0", armed.Load())
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	defer Reset()
	count := func() int {
		Reset()
		SetSeed(42)
		Set("maybe", Point{P: 0.3})
		n := 0
		for i := 0; i < 1000; i++ {
			if Inject("maybe") != nil {
				n++
			}
		}
		return n
	}
	a, b := count(), count()
	if a != b {
		t.Fatalf("same seed, different trigger counts: %d vs %d", a, b)
	}
	if a < 200 || a > 400 {
		t.Fatalf("p=0.3 triggered %d/1000", a)
	}
}

func TestEnableSpec(t *testing.T) {
	defer Reset()
	err := Enable("planstore.load=error:p=0.5;fabric.exec=panic:count=3; serve.run=latency:delay=5ms")
	if err != nil {
		t.Fatal(err)
	}
	got := Active()
	want := []string{
		"fabric.exec=panic:count=3",
		"planstore.load=error:p=0.5",
		"serve.run=latency:delay=5ms",
	}
	if len(got) != len(want) {
		t.Fatalf("Active() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Active()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestEnableRejectsMalformed(t *testing.T) {
	defer Reset()
	for _, spec := range []string{
		"nosign",
		"x=explode",
		"x=error:p=2",
		"x=error:count=0",
		"x=latency:delay=-1s",
		"x=error:p",
		"x=error:frob=1",
	} {
		if err := Enable(spec); err == nil {
			t.Errorf("Enable(%q) accepted", spec)
		}
	}
	if got := Active(); len(got) != 0 {
		t.Fatalf("failed Enable armed sites: %v", got)
	}
}

func TestClear(t *testing.T) {
	defer Reset()
	Set("x", Point{})
	if !Clear("x") {
		t.Fatal("Clear(x) = false")
	}
	if Clear("x") {
		t.Fatal("double Clear(x) = true")
	}
	if err := Inject("x"); err != nil {
		t.Fatalf("cleared site still fails: %v", err)
	}
}

// TestConcurrentInject runs under -race: concurrent Injects against a
// counted point must neither race nor over-trigger.
func TestConcurrentInject(t *testing.T) {
	defer Reset()
	Set("c", Point{Count: 100})
	var wg sync.WaitGroup
	var hits sync.Map
	fails := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Inject("c") != nil {
					fails[g]++
				}
			}
			hits.Store(g, fails[g])
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range fails {
		total += n
	}
	if total != 100 {
		t.Fatalf("count=100 point triggered %d times", total)
	}
}
