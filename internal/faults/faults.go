// Package faults is a failpoint registry for fault-tolerance testing:
// named injection sites compiled into the serving stack's hot seams
// (plan-store reads and writes, plan compilation, fabric execution,
// scheduler dispatch, every serve handler) that cost one atomic load when
// nothing is armed and can be armed — per site — to fail with an error,
// panic, or injected latency, with a trigger probability and a bounded
// trigger count.
//
// The registry exists to make degradation provable: a chaos test arms
// "fabric.exec=panic:count=1" and asserts the daemon survives, a soak
// arms "planstore.load=error:p=0.05" and asserts accounting still
// balances. Production code never pays for that provability — Inject
// compiles to a single atomic load and a predicted-not-taken branch while
// the registry is empty, which BenchmarkPlanColdVsReplay guards.
//
// Activation is programmatic (Enable, or Set for tests that want exact
// control) or environmental: the WSE_FAILPOINTS variable is parsed at
// init, so a daemon under chaos is just
//
//	WSE_FAILPOINTS="planstore.load=error:p=0.05;fabric.exec=panic:count=1" wsed ...
//
// Spec grammar: semicolon-separated site=mode[:param]* entries, where
// mode is error, panic or latency and params are p=<0..1> (trigger
// probability, default 1), count=<n> (disarm after n triggers, default
// unbounded) and delay=<duration> (latency mode's sleep, default 10ms).
//
// The standard sites wired through the stack:
//
//	planstore.load   Store.Load fails before touching disk
//	planstore.save   Store.Save fails before touching disk
//	plan.compile     plan.Compile fails before lowering
//	fabric.exec      Plan replay fails (or panics) inside the worker
//	sched.dispatch   the scheduler worker fails the request at dispatch
//	serve.<endpoint> the HTTP handler fails before its verb (run,
//	                 predict, bound, submit, jobs, plans, warm)
//	resolve.peer     a resolver chain's remote peer fetch fails (or, in
//	                 delay mode, stalls) before touching the network
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is wrapped by every error an armed failpoint returns; test
// with errors.Is. Serving layers treat injected errors like any other
// internal failure (HTTP 500), which is the point — the fault path under
// test is the real one.
var ErrInjected = errors.New("faults: injected failure")

// Mode is what an armed failpoint does when it triggers.
type Mode int

const (
	// ModeError makes Inject return an error wrapping ErrInjected.
	ModeError Mode = iota
	// ModePanic makes Inject panic — the probe for panic-isolation
	// layers (scheduler workers, serve handlers recover it).
	ModePanic
	// ModeLatency makes Inject sleep for Delay and return nil — the
	// probe for deadline enforcement.
	ModeLatency
)

func (m Mode) String() string {
	switch m {
	case ModePanic:
		return "panic"
	case ModeLatency:
		return "latency"
	default:
		return "error"
	}
}

// Point arms one site. The zero value triggers ModeError on every
// Inject, forever. Plain value semantics: the registry copies it on Set.
type Point struct {
	Mode Mode
	// P is the trigger probability per Inject (<= 0 or >= 1 means
	// always).
	P float64
	// Count, when positive, bounds how many times the point triggers;
	// after Count triggers the point disarms itself.
	Count int64
	// Delay is ModeLatency's sleep (<= 0 selects 10ms).
	Delay time.Duration
}

// armedSite is a Point plus its mutable trigger state, all guarded by
// the registry mutex.
type armedSite struct {
	Point
	remaining int64
	fired     int64
}

// registry state. `armed` is the fast-path gate: Inject bails on
// armed == 0 before taking any lock, so a stack with no failpoints pays
// one atomic load per seam and allocates nothing.
var (
	armed atomic.Int32
	mu    sync.Mutex
	sites map[string]*armedSite
	rng   = rand.New(rand.NewSource(1))
)

// Inject is the seam call: it returns nil instantly when no failpoint is
// armed anywhere, and otherwise consults the registry for site — failing,
// panicking or sleeping per the armed Point. Layers call it at the top of
// their fallible operations:
//
//	if err := faults.Inject("planstore.load"); err != nil {
//		return nil, false, err
//	}
func Inject(site string) error {
	if armed.Load() == 0 {
		return nil
	}
	return trigger(site)
}

// trigger is the slow path: at least one site is armed somewhere.
func trigger(site string) error {
	mu.Lock()
	p := sites[site]
	if p == nil {
		mu.Unlock()
		return nil
	}
	if p.P > 0 && p.P < 1 && rng.Float64() >= p.P {
		mu.Unlock()
		return nil
	}
	if p.Count > 0 {
		p.remaining--
		if p.remaining < 0 {
			// Exhausted: disarm so later Injects take the fast path again.
			delete(sites, site)
			armed.Add(-1)
			mu.Unlock()
			return nil
		}
	}
	p.fired++
	mode, delay := p.Mode, p.Delay
	mu.Unlock()

	switch mode {
	case ModePanic:
		panic(fmt.Sprintf("faults: injected panic at %s", site))
	case ModeLatency:
		if delay <= 0 {
			delay = 10 * time.Millisecond
		}
		time.Sleep(delay)
		return nil
	default:
		return fmt.Errorf("%w at %s", ErrInjected, site)
	}
}

// Set arms (or re-arms) a single site. Tests use it for exact control:
//
//	faults.Set("fabric.exec", faults.Point{Mode: faults.ModePanic, Count: 1})
//	defer faults.Reset()
func Set(site string, p Point) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = make(map[string]*armedSite)
	}
	np := &armedSite{Point: p, remaining: p.Count}
	if _, ok := sites[site]; !ok {
		armed.Add(1)
	}
	sites[site] = np
}

// Clear disarms one site; it reports whether the site was armed.
func Clear(site string) bool {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := sites[site]; !ok {
		return false
	}
	delete(sites, site)
	armed.Add(-1)
	return true
}

// Reset disarms every site and re-seeds the probability RNG — the test
// epilogue that restores the zero-overhead fast path.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(sites)))
	sites = nil
	rng = rand.New(rand.NewSource(1))
}

// SetSeed re-seeds the probability RNG so probabilistic chaos schedules
// replay deterministically.
func SetSeed(seed int64) {
	mu.Lock()
	defer mu.Unlock()
	rng = rand.New(rand.NewSource(seed))
}

// Fired returns how many times the site has triggered since it was
// armed (0 for unarmed sites).
func Fired(site string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p := sites[site]; p != nil {
		return p.fired
	}
	return 0
}

// Active lists the armed sites as "site=mode[:params]" specs, sorted —
// what a daemon logs at startup so a chaos run is self-describing.
func Active() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(sites))
	for site, p := range sites {
		spec := site + "=" + p.Mode.String()
		if p.P > 0 && p.P < 1 {
			spec += fmt.Sprintf(":p=%g", p.P)
		}
		if p.Count > 0 {
			spec += fmt.Sprintf(":count=%d", p.Count)
		}
		if p.Mode == ModeLatency && p.Delay > 0 {
			spec += fmt.Sprintf(":delay=%s", p.Delay)
		}
		out = append(out, spec)
	}
	sort.Strings(out)
	return out
}

// Enable parses a failpoint spec (the WSE_FAILPOINTS grammar above) and
// arms every entry. Entries are applied left to right; a malformed entry
// fails the whole call without arming anything.
func Enable(spec string) error {
	type parsed struct {
		site string
		p    Point
	}
	var entries []parsed
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		site, rest, ok := strings.Cut(item, "=")
		site = strings.TrimSpace(site)
		if !ok || site == "" {
			return fmt.Errorf("faults: bad entry %q (want site=mode[:param]*)", item)
		}
		parts := strings.Split(rest, ":")
		var p Point
		switch strings.TrimSpace(parts[0]) {
		case "error":
			p.Mode = ModeError
		case "panic":
			p.Mode = ModePanic
		case "latency":
			p.Mode = ModeLatency
		default:
			return fmt.Errorf("faults: bad mode %q in %q (error, panic, latency)", parts[0], item)
		}
		for _, param := range parts[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(param), "=")
			if !ok {
				return fmt.Errorf("faults: bad param %q in %q", param, item)
			}
			switch k {
			case "p":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 || f > 1 {
					return fmt.Errorf("faults: bad probability %q in %q", v, item)
				}
				p.P = f
			case "count":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil || n < 1 {
					return fmt.Errorf("faults: bad count %q in %q", v, item)
				}
				p.Count = n
			case "delay":
				d, err := time.ParseDuration(v)
				if err != nil || d <= 0 {
					return fmt.Errorf("faults: bad delay %q in %q", v, item)
				}
				p.Delay = d
			default:
				return fmt.Errorf("faults: unknown param %q in %q (p, count, delay)", k, item)
			}
		}
		entries = append(entries, parsed{site: site, p: p})
	}
	for _, e := range entries {
		Set(e.site, e.p)
	}
	return nil
}

// EnvVar is the environment variable init arms failpoints from.
const EnvVar = "WSE_FAILPOINTS"

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := Enable(spec); err != nil {
			// A daemon launched with a bad chaos spec should hear about it
			// loudly rather than run an unfaulted schedule silently.
			panic(err)
		}
	}
}
