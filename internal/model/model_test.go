package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEq1Synthesis(t *testing.T) {
	pr := Default()
	// Contention-dominated.
	if got := pr.Time(Cost{C: 100, E: 10, N: 10, L: 5, D: 2}); got != 100+5*2 {
		t.Errorf("got %v", got)
	}
	// Energy+distance-dominated.
	if got := pr.Time(Cost{C: 1, E: 100, N: 10, L: 5, D: 1}); got != 15+5 {
		t.Errorf("got %v", got)
	}
}

func TestLemmaValuesAtPaperPoints(t *testing.T) {
	pr := Default()
	// Chain at 512 PEs, scalar: 1 + 6*511 = 3067.
	if got := pr.ChainReduce(512, 1); got != 3067 {
		t.Errorf("chain(512,1)=%v", got)
	}
	// Star refined at 512 PEs, scalar: 511 + 5 = 516.
	if got := pr.StarReduce(512, 1); got != 516 {
		t.Errorf("star(512,1)=%v", got)
	}
	// Broadcast Lemma 4.1: B + P + 2T_R.
	if got := pr.Broadcast1D(512, 256); got != 256+512+4 {
		t.Errorf("bcast(512,256)=%v", got)
	}
	// 2D broadcast Lemma 7.1.
	if got := pr.Broadcast2D(512, 512, 256); got != 256+512+512-2+4+1 {
		t.Errorf("bcast2d=%v", got)
	}
}

func TestTreeReduceMatchesLemma53(t *testing.T) {
	pr := Default()
	// At P=512, B=8192 wavelets (32 KB): contention term dominates:
	// 8192*9 + 5*9 = 73773. Combined with the lower bound this yields the
	// 6.6 ratio in Figure 1c's top-right corner.
	got := pr.TreeReduce(512, 8192)
	if math.Abs(got-73773) > 1 {
		t.Errorf("tree(512,8192)=%v, want 73773", got)
	}
}

func TestMonotonicityInB(t *testing.T) {
	pr := Default()
	f := func(pRaw uint16, b1Raw, b2Raw uint16) bool {
		p := int(pRaw%510) + 2
		b1 := int(b1Raw%8192) + 1
		b2 := b1 + int(b2Raw%8192) + 1
		for _, name := range ReduceNames {
			if pr.Reduce1D(name, p, b1) > pr.Reduce1D(name, p, b2) {
				return false
			}
		}
		return pr.RingAllReduce(p, b1) <= pr.RingAllReduce(p, b2) &&
			pr.Broadcast1D(p, b1) <= pr.Broadcast1D(p, b2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPhaseSqrtIsNearOptimalGroupSize(t *testing.T) {
	// Lemma 5.4 motivates S = √P as the depth/energy balance point in
	// two-phase's target regime of intermediate vectors (P ≈ B, §5.4).
	// Degenerate group sizes (S close to P collapse to a single chain,
	// optimal only for huge B) are excluded: for those shapes the paper
	// switches algorithm instead of re-tuning S.
	pr := Default()
	for _, p := range []int{64, 256, 512} {
		b := p // the P ≈ B regime
		def := pr.TwoPhaseReduce(p, b)
		best := math.Inf(1)
		for s := 2; s*s <= 4*p; s++ {
			if v := pr.TwoPhaseReduceS(p, b, s); v < best {
				best = v
			}
		}
		if def > 1.2*best {
			t.Errorf("p=%d b=%d: sqrt choice %v vs best in-regime %v", p, b, def, best)
		}
	}
}

func TestRingCrossover(t *testing.T) {
	pr := Default()
	// §8.6 / Figure 12c: at 4 PEs and 1 KB the ring is slightly ahead of
	// chain+bcast; at ≥8 PEs reduce-then-broadcast wins clearly.
	if pr.RingAllReduce(4, 256) >= pr.AllReduce1D("chain", 4, 256) {
		t.Error("ring should edge out chain+bcast at 4 PEs / 1 KB")
	}
	if pr.RingAllReduce(64, 256) <= pr.AllReduce1D("chain", 64, 256) {
		t.Error("chain+bcast should beat ring at 64 PEs / 1 KB")
	}
	// Butterfly drowns the fabric in energy for non-trivial vectors: its
	// P·B/2 energy term puts it far above every implemented pattern, the
	// behaviour Figure 11c plots (at B=1 the full-vector exchanges are
	// single wavelets and the comparison is moot).
	for _, b := range []int{64, 256, 4096} {
		if pr.ButterflyAllReduce(512, b) < 2*pr.AllReduce1D("tree", 512, b) {
			t.Errorf("butterfly unexpectedly competitive at b=%d", b)
		}
	}
}

func TestXYComposition(t *testing.T) {
	pr := Default()
	if pr.ReduceXY("chain", 16, 32, 64) != pr.ChainReduce(32, 64)+pr.ChainReduce(16, 64) {
		t.Error("X-Y composition mismatch")
	}
	if pr.SnakeReduce(16, 32, 64) != pr.ChainReduce(512, 64) {
		t.Error("snake should equal chain over all PEs")
	}
	// The naive double-AllReduce is never better than reduce+2D-bcast for
	// square grids with non-trivial vectors.
	if pr.AllReduceXYTwice("chain", 64, 64, 256) < pr.AllReduceXY("chain", 64, 64, 256) {
		t.Error("double AllReduce should not beat reduce+2D broadcast")
	}
	if pr.LowerBound2D(512, 512, 256) <= 0 {
		t.Error("2D lower bound must be positive")
	}
}

func TestEdgeCases(t *testing.T) {
	pr := Default()
	for _, name := range ReduceNames {
		if pr.Reduce1D(name, 1, 128) != 0 {
			t.Errorf("%s on one PE should be free", name)
		}
	}
	if pr.Broadcast1D(1, 128) != 0 || pr.Broadcast2D(1, 1, 4) != 0 {
		t.Error("broadcast to self should be free")
	}
	if !math.IsInf(pr.Reduce1D("nonsense", 4, 4), 1) {
		t.Error("unknown pattern should be +inf")
	}
}
