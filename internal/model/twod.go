package model

import "math"

// Broadcast2D is Lemma 7.1: flooding from (0,0) over an M×N grid costs
// T = B + M + N - 2 + 2·T_R + 1 thanks to row/column multicast.
func (pr Params) Broadcast2D(m, n, b int) float64 {
	if m*n <= 1 {
		return 0
	}
	return float64(b) + float64(m) + float64(n) - 2 + float64(2*pr.TR) + 1
}

// ReduceXY is the X-Y Reduce of §7.2: a 1D reduce along every row (length
// n) followed by a 1D reduce along column 0 (length m), each phase using
// the given 1D pattern: T = T_ReduceX + T_ReduceY.
func (pr Params) ReduceXY(pattern string, m, n, b int) float64 {
	return pr.Reduce1D(pattern, n, b) + pr.Reduce1D(pattern, m, b)
}

// SnakeReduce is §7.3: the chain pattern mapped boustrophedon over the
// whole grid, with the same cost as a 1D chain on M·N PEs.
func (pr Params) SnakeReduce(m, n, b int) float64 {
	return pr.ChainReduce(m*n, b)
}

// AllReduceXY is the efficient 2D AllReduce of §7.4: a 2D Reduce followed
// by the 2D flooding broadcast.
func (pr Params) AllReduceXY(pattern string, m, n, b int) float64 {
	return pr.ReduceXY(pattern, m, n, b) + pr.Broadcast2D(m, n, b)
}

// AllReduceSnake is Snake Reduce followed by the 2D broadcast.
func (pr Params) AllReduceSnake(m, n, b int) float64 {
	return pr.SnakeReduce(m, n, b) + pr.Broadcast2D(m, n, b)
}

// AllReduceXYTwice models the naive 2D AllReduce (§7.4, first variant):
// AllReduce along every row then along every column. It broadcasts twice
// and is bandwidth-inefficient; included for the design-space comparison.
func (pr Params) AllReduceXYTwice(pattern string, m, n, b int) float64 {
	return pr.AllReduce1D(pattern, n, b) + pr.AllReduce1D(pattern, m, b)
}

// LowerBound2D is Lemma 7.2, the simple 2D Reduce lower bound:
// T ≥ max(B, B/8 + M + N - 1) + 2·T_R + 1. (Contention at the root is at
// least B; energy is at least P·B over at most 8P directed links; the
// distance from the far corner is M+N-2 plus one ramp.)
func (pr Params) LowerBound2D(m, n, b int) float64 {
	bw := math.Max(float64(b), float64(b)/8+float64(m)+float64(n)-1)
	return bw + float64(2*pr.TR) + 1
}
