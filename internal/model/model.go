// Package model implements the paper's performance model for the
// wafer-scale engine (§3): the spatial cost metrics energy E, distance L,
// depth D, contention C and link count N, the cycle estimate
//
//	T = max(C, E/N + L) + (2·T_R + 1)·D          (Eq. 1)
//
// and the closed-form instantiations for every Broadcast, Reduce and
// AllReduce algorithm analysed in §4–§7 (Lemmas 4.1, 5.1–5.4, 6.1, 7.1).
// All vector lengths B are measured in wavelets (32-bit elements), as in
// Table 1.
package model

import "math"

// Params hold the hardware parameters of the model. The only free
// parameter is the ramp latency T_R, which the paper determines to be 2 on
// the WSE-2 (any other choice "would lead to significantly worse
// predictions", §8.7).
type Params struct {
	TR int
}

// Default returns the WSE-2 parameterisation.
func Default() Params { return Params{TR: 2} }

// ramp returns the per-depth-unit cost 2·T_R+1: a wavelet pays T_R down
// and up the ramp plus one cycle to store the received element.
func (pr Params) ramp() float64 { return float64(2*pr.TR + 1) }

// Cost is a set of spatial metrics for a communication pattern.
type Cost struct {
	E float64 // energy: total wavelet hops
	L float64 // distance: longest hop count of any wavelet
	D float64 // depth: longest chain of dependent PE operations
	C float64 // contention: wavelets sent/received by the busiest PE
	N float64 // links used
}

// Time synthesises the metrics into the cycle estimate of Eq. 1.
func (pr Params) Time(c Cost) float64 {
	bw := c.C
	if c.N > 0 {
		if v := c.E/c.N + c.L; v > bw {
			bw = v
		}
	}
	return bw + pr.ramp()*c.D
}

// log2 returns log2(p) for the round-count of tree-structured algorithms;
// the paper states formulas for powers of two, and fractional values
// interpolate smoothly in between.
func log2(p int) float64 { return math.Log2(float64(p)) }

// Message is the cost of sending a B-wavelet vector across P consecutive
// PEs (§4.1): T = B + P + 2·T_R. This is optimal for a single message.
func (pr Params) Message(p, b int) float64 {
	return float64(b) + float64(p) + float64(2*pr.TR)
}

// Broadcast1D is the flooding broadcast of §4.2. Multicast makes it cost
// exactly a message (Lemma 4.1).
func (pr Params) Broadcast1D(p, b int) float64 {
	if p <= 1 {
		return 0
	}
	return pr.Message(p, b)
}

// StarReduce is the refined Star Reduce estimate of §5.1: the direct
// pattern pipelines perfectly, so T = B(P-1) + 2·T_R + 1.
func (pr Params) StarReduce(p, b int) float64 {
	if p <= 1 {
		return 0
	}
	return float64(b)*float64(p-1) + float64(2*pr.TR) + 1
}

// StarReduceUpper is Lemma 5.1's un-refined Star Reduce bound,
// T ≤ max(B(P-1), P·B/2 + P-1) + 2·T_R + 1, which keeps the energy term.
// Figure 1a's optimality ratios are computed against this form (at B=1 it
// gives the paper's 1.5× for 512 PEs, where the refined pipeline estimate
// would dip below the depth-free lower bound).
func (pr Params) StarReduceUpper(p, b int) float64 {
	if p <= 1 {
		return 0
	}
	cont := float64(b) * float64(p-1)
	energy := float64(p)*float64(b)/2 + float64(p-1)
	return math.Max(cont, energy) + float64(2*pr.TR) + 1
}

// ChainReduce is Lemma 5.2: T = B + (2·T_R+2)(P-1). This is the vendor's
// pattern (used by the SDK collectives library and the matrix-multiply
// kernel) and is optimal for B >> T_R·P.
func (pr Params) ChainReduce(p, b int) float64 {
	if p <= 1 {
		return 0
	}
	return float64(b) + float64(2*pr.TR+2)*float64(p-1)
}

// TreeReduce is Lemma 5.3 for the binomial tree:
// T = max(B·log2 P, B·P·log2(P)/(2(P-1)) + P-1) + (2·T_R+1)·log2 P.
func (pr Params) TreeReduce(p, b int) float64 {
	if p <= 1 {
		return 0
	}
	lg := log2(p)
	cont := float64(b) * lg
	energy := float64(b)*float64(p)*lg/(2*float64(p-1)) + float64(p-1)
	return math.Max(cont, energy) + pr.ramp()*lg
}

// TwoPhaseReduce is Lemma 5.4 with the paper's group size S = ceil(√P).
func (pr Params) TwoPhaseReduce(p, b int) float64 {
	return pr.TwoPhaseReduceS(p, b, 0)
}

// TwoPhaseReduceS is the Two-Phase Reduce with an explicit group size s
// (s <= 0 selects ceil(√P)); exposing s supports the group-size ablation.
// Phase 1 runs ⌈P/S⌉ chain reductions of S PEs each; phase 2 chains the
// ⌈P/S⌉ group leaders. Contention is 2B (leaders receive two streams),
// energy (S-1)·B·⌈P/S⌉ + S·B·(⌈P/S⌉-1) over P-1 links, depth
// (S-1) + ⌈P/S⌉ - 1.
func (pr Params) TwoPhaseReduceS(p, b, s int) float64 {
	if p <= 1 {
		return 0
	}
	if s <= 0 {
		s = int(math.Ceil(math.Sqrt(float64(p))))
	}
	if s < 1 {
		s = 1
	}
	groups := (p + s - 1) / s
	depth := float64(s-1) + float64(groups-1)
	energy := float64(s-1)*float64(b)*float64(groups) + float64(s)*float64(b)*float64(groups-1)
	cont := 2 * float64(b)
	if groups == 1 || s == 1 {
		cont = float64(b)
	}
	bw := math.Max(cont, energy/float64(p-1)+float64(p-1))
	return bw + pr.ramp()*depth
}

// RingAllReduce is Lemma 6.1: reduce-scatter plus allgather over a ring
// mapped onto the row (both the simple and the distance-preserving mapping
// of Figure 7 yield the same model cost):
// T = 2(P-1)·B/P + 4P - 6 + 2(P-1)(2·T_R+1).
// The paper evaluates ring analytically and shows it is never the best
// choice on this fabric (§8.6), so — like the paper — we model it but do
// not implement it.
func (pr Params) RingAllReduce(p, b int) float64 {
	if p <= 1 {
		return 0
	}
	return 2*float64(p-1)*float64(b)/float64(p) + 4*float64(p) - 6 + 2*float64(p-1)*pr.ramp()
}

// ButterflyAllReduce models the recursive-doubling butterfly (§2.1) on the
// mesh: log2 P rounds in which every PE exchanges its full vector with a
// partner at doubling distance. Per round r the exchange energy is
// P·B·2^(r-1) over the 2(P-1) bidirectional row links, so the energy term
// alone is P·B/2 — the pattern ignores multicast and drowns the fabric,
// which is why Figure 11c shows it predicted far above every alternative.
func (pr Params) ButterflyAllReduce(p, b int) float64 {
	if p <= 1 {
		return 0
	}
	lg := log2(p)
	cont := float64(b) * lg
	energy := float64(p)*float64(b)/2 + float64(p-1)
	return math.Max(cont, energy) + pr.ramp()*lg
}

// ReduceNames lists the fixed 1D Reduce patterns in the order the paper
// presents them.
var ReduceNames = []string{"star", "chain", "tree", "twophase"}

// Reduce1D dispatches the closed-form Reduce estimate by pattern name.
func (pr Params) Reduce1D(pattern string, p, b int) float64 {
	switch pattern {
	case "star":
		return pr.StarReduce(p, b)
	case "chain":
		return pr.ChainReduce(p, b)
	case "tree":
		return pr.TreeReduce(p, b)
	case "twophase":
		return pr.TwoPhaseReduce(p, b)
	}
	return math.Inf(1)
}

// AllReduce1D is the Reduce-then-Broadcast AllReduce of §6.1 for a fixed
// reduce pattern: T = T_reduce + T_bcast.
func (pr Params) AllReduce1D(pattern string, p, b int) float64 {
	return pr.Reduce1D(pattern, p, b) + pr.Broadcast1D(p, b)
}
