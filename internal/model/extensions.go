package model

// Model estimates for the extension collectives this reproduction adds on
// top of the paper's set: Scatter, Gather, ReduceScatter, AllGather and
// the middle-root AllReduce (the root-placement optimisation §6.1
// attributes to the stencil implementations of Jacquelin et al. [25]).
// All follow Eq. 1 with the metrics read off the compiled patterns.

// Scatter estimates delivering per-PE chunks from the row root: the root
// serialises B(P-1)/P wavelets (contention) and the farthest chunk
// travels P-1 hops.
func (pr Params) Scatter(p, b int) float64 {
	if p <= 1 {
		return 0
	}
	cont := float64(b) * float64(p-1) / float64(p)
	return cont + float64(p-1) + float64(2*pr.TR) + 1
}

// Gather is Scatter's mirror: root contention B(P-1)/P, distance P-1.
func (pr Params) Gather(p, b int) float64 {
	return pr.Scatter(p, b)
}

// ReduceScatter estimates the first ring phase: P-1 rounds, each moving
// a B/P chunk one logical hop with (2T_R+1)-cycle ramp handling per
// dependent round.
func (pr Params) ReduceScatter(p, b int) float64 {
	if p <= 1 {
		return 0
	}
	return float64(p-1)*float64(b)/float64(p) + 2*float64(p) - 3 + float64(p-1)*pr.ramp()
}

// AllGather estimates the second ring phase, which has the same shape.
func (pr Params) AllGather(p, b int) float64 {
	return pr.ReduceScatter(p, b)
}

// MidRootAllReduce estimates the middle-root AllReduce: both halves of
// size ~P/2 reduce into the middle concurrently (the root serialises the
// second half's stream: +B), then one bidirectional flood of distance
// ~P/2 distributes the result.
func (pr Params) MidRootAllReduce(pattern string, p, b int) float64 {
	if p <= 1 {
		return 0
	}
	h := p/2 + 1
	return pr.Reduce1D(pattern, h, b) + float64(b) + pr.Broadcast1D(h, b)
}
