// Package autogen implements the paper's automatically generated Reduce
// (§5.5). A dynamic program finds, for each PE count P and vector length
// B, the pre-order reduction tree minimising the model's runtime estimate
//
//	T_AutoGen(P,B) = min_{D,C} max(C·B, B·e(P,D,C)/(P−1) + P−1) + D·(2T_R+1)
//
// over the energy recursion
//
//	e(P,D,C) = min_{0<i<P} e(i,D,C−1) + e(P−i,D−1,C) + i
//
// (scalar energies; vector energy scales by B, contention by B). The
// recursion mirrors the paper's: the root's last message carries the sum
// of the P−i rightmost PEs, reduced with depth ≤ D−1 by a subtree whose
// root sits i hops from the global root; everything the root already
// holds was reduced with contention ≤ C−1 because one more message is
// still to arrive.
//
// Reconstructing the arg-min yields the tree itself, which the comm
// package compiles to router configurations and PE programs — the Go
// equivalent of the paper's Python code generator.
package autogen

import (
	"math"
	"sync"

	"repro/internal/comm"
)

const inf = int64(1) << 60

// Caps bound the DP state space. Depth beyond DepthCap and contention
// beyond ContentionCap are never profitable within the paper's evaluated
// range (each extra unit of depth costs 2T_R+1 cycles and each unit of
// contention costs B cycles); the exact chain (D = P−1, C = 1), which
// needs the full depth range, is considered as an explicit extra
// candidate. TestFig1Claims verifies the resulting generator stays within
// the paper's 1.4× bound of the runtime lower bound everywhere in
// Figure 1's grid.
type Caps struct {
	DepthCap      int
	ContentionCap int
}

// DefaultCaps cover the paper's evaluation grid (P ≤ 512, B ≤ 4096
// wavelets) with margin.
func DefaultCaps() Caps { return Caps{DepthCap: 160, ContentionCap: 24} }

// Table memoises the scalar energy DP for all P up to maxP.
type Table struct {
	maxP int
	caps Caps
	// e[d][c][p], d ≤ DepthCap, c ≤ ContentionCap, p ≤ maxP.
	e [][][]int64
}

var (
	mu     sync.Mutex
	cached *Table
)

// For returns a table covering at least maxP PEs with default caps,
// reusing a previously built one when possible.
func For(maxP int) *Table {
	mu.Lock()
	defer mu.Unlock()
	if cached != nil && cached.maxP >= maxP {
		return cached
	}
	cached = Build(maxP, DefaultCaps())
	return cached
}

// Build constructs the DP table from scratch.
func Build(maxP int, caps Caps) *Table {
	if maxP < 1 {
		maxP = 1
	}
	maxD := caps.DepthCap
	if maxD > maxP-1 {
		maxD = maxP - 1
	}
	if maxD < 1 {
		maxD = 1
	}
	maxC := caps.ContentionCap
	if maxC > maxP-1 {
		maxC = maxP - 1
	}
	if maxC < 1 {
		maxC = 1
	}
	caps.DepthCap, caps.ContentionCap = maxD, maxC
	e := make([][][]int64, maxD+1)
	for d := range e {
		e[d] = make([][]int64, maxC+1)
		for c := range e[d] {
			e[d][c] = make([]int64, maxP+1)
			for p := range e[d][c] {
				switch {
				case p <= 1:
					e[d][c][p] = 0
				default:
					e[d][c][p] = inf
				}
			}
		}
	}
	for d := 1; d <= maxD; d++ {
		for c := 1; c <= maxC; c++ {
			cur := e[d][c]
			left := e[d][c-1]
			down := e[d-1][c]
			for p := 2; p <= maxP; p++ {
				best := inf
				for i := 1; i < p; i++ {
					l := left[i]
					if l >= inf {
						continue
					}
					r := down[p-i]
					if r >= inf {
						continue
					}
					if v := l + r + int64(i); v < best {
						best = v
					}
				}
				cur[p] = best
			}
		}
	}
	return &Table{maxP: maxP, caps: caps, e: e}
}

// Energy returns e(p, d, c) with d and c clamped into the table.
func (t *Table) Energy(p, d, c int) int64 {
	if p <= 1 {
		return 0
	}
	if d < 1 || c < 1 {
		return inf
	}
	if d > t.caps.DepthCap {
		d = t.caps.DepthCap
	}
	if c > t.caps.ContentionCap {
		c = t.caps.ContentionCap
	}
	return t.e[d][c][p]
}

// Plan is the outcome of the optimisation for one (P, B) point.
type Plan struct {
	P, B    int
	Cycles  float64 // predicted runtime T_AutoGen(P,B)
	Depth   int     // depth budget of the chosen tree (P-1 for pure chain)
	Cont    int     // contention budget (messages into the busiest PE)
	IsChain bool    // the explicit chain candidate won
}

// Optimize evaluates T_AutoGen(p, b) for ramp latency tr and returns the
// winning plan.
func (t *Table) Optimize(p, b, tr int) Plan {
	ramp := float64(2*tr + 1)
	if p <= 1 {
		return Plan{P: p, B: b, Cycles: 0, IsChain: true}
	}
	// Explicit chain candidate: C=1, D=P−1, scalar energy P−1. Within the
	// model this is exactly Lemma 5.2's B + (2T_R+2)(P−1).
	best := Plan{
		P: p, B: b,
		Cycles:  math.Max(float64(b), float64(b)+float64(p-1)) + float64(p-1)*ramp,
		Depth:   p - 1,
		Cont:    1,
		IsChain: true,
	}
	maxD := t.caps.DepthCap
	if maxD > p-1 {
		maxD = p - 1
	}
	maxC := t.caps.ContentionCap
	if maxC > p-1 {
		maxC = p - 1
	}
	for d := 1; d <= maxD; d++ {
		for c := 1; c <= maxC; c++ {
			en := t.e[d][c][p]
			if en >= inf {
				continue
			}
			bw := math.Max(float64(c)*float64(b), float64(b)*float64(en)/float64(p-1)+float64(p-1))
			v := bw + float64(d)*ramp
			if v < best.Cycles {
				best = Plan{P: p, B: b, Cycles: v, Depth: d, Cont: c}
			}
		}
	}
	return best
}

// Time returns just the predicted runtime T_AutoGen(p, b).
func (t *Table) Time(p, b, tr int) float64 { return t.Optimize(p, b, tr).Cycles }

// Tree reconstructs the optimal pre-order reduction tree for (p, b): the
// code-generation half of the paper's Auto-Gen pipeline. The returned
// tree feeds comm.BuildTreeReduce directly.
func (t *Table) Tree(p, b, tr int) comm.Tree {
	plan := t.Optimize(p, b, tr)
	if plan.IsChain || p <= 1 {
		if p <= 1 {
			return comm.Single()
		}
		return comm.Chain(p)
	}
	parent := make([]int, p)
	parent[0] = -1
	t.reconstruct(parent, 0, p, plan.Depth, plan.Cont)
	return comm.Tree{Parent: parent}
}

// reconstruct fills parent[] for the block of n PEs rooted at path offset
// base, realising e(n, d, c) by re-deriving the arg-min split: the left i
// PEs form the root's earlier receives (depth d, contention c−1) and the
// right n−i PEs form a subtree rooted at base+i whose root becomes the
// last child of base.
func (t *Table) reconstruct(parent []int, base, n, d, c int) {
	if n <= 1 {
		return
	}
	target := t.Energy(n, d, c)
	for i := 1; i < n; i++ {
		l := t.Energy(i, d, c-1)
		if l >= inf {
			continue
		}
		r := t.Energy(n-i, d-1, c)
		if r >= inf {
			continue
		}
		if l+r+int64(i) == target {
			parent[base+i] = base
			t.reconstruct(parent, base, i, d, c-1)
			t.reconstruct(parent, base+i, n-i, d-1, c)
			return
		}
	}
	// Unreachable when target is finite; fall back to a chain so the
	// result is always a valid tree.
	for v := base + 1; v < base+n; v++ {
		parent[v] = v - 1
	}
}
