package autogen

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/lowerbound"
	"repro/internal/model"
)

// fig1Grid is the parameter grid of Figure 1: rows 4..512 PEs (powers of
// two), columns 2^2..2^15 bytes, i.e. 1..8192 wavelets.
func fig1Grid() (ps, bs []int) {
	for p := 4; p <= 512; p *= 2 {
		ps = append(ps, p)
	}
	for b := 1; b <= 8192; b *= 2 {
		bs = append(bs, b)
	}
	return
}

// TestFig1Claims checks the optimality-ratio claims of §5.7 / Figure 1:
// Auto-Gen is at most 1.4× the lower bound everywhere; Two-Phase at most
// 2.4×; the fixed patterns reach roughly 5.9× somewhere; and no algorithm
// beats the lower bound.
func TestFig1Claims(t *testing.T) {
	ps, bs := fig1Grid()
	tb := For(512)
	lbt := lowerbound.For(512)
	pr := model.Default()
	worstAuto, worstTwoPhase, worstFixed := 0.0, 0.0, 0.0
	for _, p := range ps {
		for _, b := range bs {
			lb := lbt.Time(p, b, pr.TR)
			auto := tb.Time(p, b, pr.TR)
			if r := auto / lb; r > worstAuto {
				worstAuto = r
			}
			if auto < lb-1e-9 {
				t.Errorf("autogen(%d,%d)=%v beats bound %v", p, b, auto, lb)
			}
			if r := pr.TwoPhaseReduce(p, b) / lb; r > worstTwoPhase {
				worstTwoPhase = r
			}
			// Figure 1 evaluates star with the Lemma 5.1 form (energy
			// term included); see model.StarReduceUpper.
			fixed := func(name string) float64 {
				if name == "star" {
					return pr.StarReduceUpper(p, b)
				}
				return pr.Reduce1D(name, p, b)
			}
			bestFixed := fixed("star")
			for _, name := range model.ReduceNames[1:] {
				if v := fixed(name); v < bestFixed {
					bestFixed = v
				}
			}
			if auto > bestFixed+1e-6 {
				t.Errorf("autogen(%d,%d)=%v worse than best fixed %v", p, b, auto, bestFixed)
			}
			for _, name := range model.ReduceNames {
				if r := fixed(name) / lb; r > worstFixed {
					worstFixed = r
				}
			}
		}
	}
	if worstAuto > 1.45 {
		t.Errorf("worst autogen/LB ratio %.3f, paper claims ≤1.4", worstAuto)
	}
	if worstTwoPhase > 2.45 {
		t.Errorf("worst two-phase/LB ratio %.3f, paper claims ≤2.4", worstTwoPhase)
	}
	if worstFixed < 5.0 {
		t.Errorf("worst fixed-pattern ratio %.3f, paper reports up to ~5.9", worstFixed)
	}
	t.Logf("worst ratios: autogen %.3f (paper 1.4), twophase %.3f (paper 2.4), fixed %.3f (paper 5.9)",
		worstAuto, worstTwoPhase, worstFixed)
}

func TestTreesAreValidPreorder(t *testing.T) {
	tb := For(128)
	for _, p := range []int{1, 2, 3, 5, 16, 31, 64, 128} {
		for _, b := range []int{1, 8, 64, 1024} {
			tr := tb.Tree(p, b, model.Default().TR)
			if tr.Len() != p {
				t.Fatalf("tree(%d,%d) has %d vertices", p, b, tr.Len())
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("tree(%d,%d): %v", p, b, err)
			}
		}
	}
}

func TestTreeRespectsPlanBudgets(t *testing.T) {
	tb := For(256)
	for _, p := range []int{4, 16, 100, 256} {
		for _, b := range []int{1, 32, 512} {
			plan := tb.Optimize(p, b, model.Default().TR)
			tr := tb.Tree(p, b, model.Default().TR)
			if d := tr.Depth(); d > plan.Depth {
				t.Errorf("tree(%d,%d) depth %d exceeds plan depth %d", p, b, d, plan.Depth)
			}
			maxCh := 0
			for _, ch := range tr.Children() {
				if len(ch) > maxCh {
					maxCh = len(ch)
				}
			}
			if !plan.IsChain && maxCh > plan.Cont {
				t.Errorf("tree(%d,%d) max children %d exceeds contention budget %d", p, b, maxCh, plan.Cont)
			}
		}
	}
}

func TestPlanExtremes(t *testing.T) {
	tb := For(512)
	tr := model.Default().TR
	// Scalar reduce on many PEs: the generator should pick a low-depth,
	// high-contention (star-like) tree.
	scalar := tb.Optimize(512, 1, tr)
	if scalar.Depth > 8 {
		t.Errorf("scalar plan depth %d, want star-like", scalar.Depth)
	}
	// Huge vectors: the chain must win (contention 1).
	huge := tb.Optimize(512, 1<<20, tr)
	if !huge.IsChain {
		t.Errorf("huge-B plan is not chain: %+v", huge)
	}
}

func TestEnergyMatchesKnownPatterns(t *testing.T) {
	tb := For(64)
	// Chain energy: one hop per link.
	if got := tb.Energy(32, 31, 1); got != 31 {
		t.Errorf("chain energy e(32,31,1)=%d, want 31", got)
	}
	// Star energy: message i travels i hops.
	want := int64(0)
	for i := 1; i < 16; i++ {
		want += int64(i)
	}
	if got := tb.Energy(16, 1, 15); got != want {
		t.Errorf("star energy e(16,1,15)=%d, want %d", got, want)
	}
}

func TestTreeRunsOnSimulatorViaComm(t *testing.T) {
	// The generated tree must satisfy the structural constraints the
	// compiler enforces; a full end-to-end run lives in the wse package.
	tb := For(64)
	for _, p := range []int{7, 33, 64} {
		tr := tb.Tree(p, 256, 2)
		var c comm.Tree = tr
		if err := c.Validate(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}
