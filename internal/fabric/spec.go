package fabric

import (
	"fmt"

	"repro/internal/mesh"
)

// RouterConfig is one entry of a router's per-color configuration list.
// A router in this configuration accepts wavelets of the color from exactly
// one direction and duplicates them (hardware multicast, at no cost) to
// every direction in Forward. Accepting from a single direction per color
// is how the paper's implementation avoids the undefined behaviour of two
// same-color wavelets meeting at a router (§8.2); the type makes the
// discipline structural.
//
// Times is the number of control wavelets this configuration absorbs before
// the router advances to the next configuration in the list; 0 means the
// configuration is final and absorbs controls forever. Hardware stores up
// to four distinct configurations per color and cycles through them; the
// Times counter models the equivalent "receive k vectors in this
// configuration" idiom without enumerating k identical entries.
type RouterConfig struct {
	Accept  mesh.Direction
	Forward mesh.DirSet
	Times   int
}

// ReduceOp selects the associative operation applied by receive-reduce
// program ops. The paper considers sums; any associative operation works
// (§2.1), so Max and Min are provided as well.
type ReduceOp uint8

const (
	// OpSum accumulates by addition.
	OpSum ReduceOp = iota
	// OpMax accumulates by maximum.
	OpMax
	// OpMin accumulates by minimum.
	OpMin
)

// Apply combines an accumulator element with an incoming value.
func (o ReduceOp) Apply(acc, v float32) float32 {
	switch o {
	case OpMax:
		if v > acc {
			return v
		}
		return acc
	case OpMin:
		if v < acc {
			return v
		}
		return acc
	default:
		return acc + v
	}
}

// String names the reduction operator.
func (o ReduceOp) String() string {
	switch o {
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	default:
		return "sum"
	}
}

// OpKind enumerates the processor program operations.
type OpKind uint8

const (
	// OpSend streams N accumulator elements out on Color followed by one
	// control wavelet (one element per cycle, ramp latency applies).
	OpSend OpKind = iota
	// OpRecvReduce consumes N data wavelets on Color, combining element j
	// into the accumulator at j, then consumes the trailing control
	// wavelet. One element per cycle.
	OpRecvReduce
	// OpRecvReduceSend is the pipelined fused op that makes Chain Reduce
	// cost B + (2T_R+2)(P-1): element j is received on Color, combined
	// with the accumulator, and forwarded on OutColor one cycle later
	// while element j+1 is already in flight. The trailing control is
	// consumed inbound and re-emitted outbound.
	OpRecvReduceSend
	// OpRecvStore consumes N data wavelets on Color, overwriting the
	// accumulator (broadcast receive), then the trailing control.
	OpRecvStore
	// OpRecvTrigger consumes a single data wavelet on Color (used as the
	// start trigger of the §8.3 measurement methodology).
	OpRecvTrigger
	// OpBusyWrite burns N cycles writing to scratch memory; the α·(M+N−i−j)
	// staggering writes of the clock calibration are expressed with it.
	OpBusyWrite
	// OpSampleClock records the PE's local clock into result slot Slot.
	// Sampling a register is free: the op consumes no cycle.
	OpSampleClock
	// OpSendTrigger emits a single data wavelet on Color (the root side of
	// OpRecvTrigger). It costs one cycle.
	OpSendTrigger
	// OpSendRecvReduce is the full-duplex round primitive of ring-style
	// algorithms: it streams acc[Off:Off+N] out on OutColor while
	// simultaneously receiving N2 wavelets on Color, combining them into
	// acc[Off2:Off2+N2] (the ramp is bidirectional: one wavelet out and
	// one in per cycle). The op completes when both directions have
	// passed their trailing controls.
	OpSendRecvReduce
	// OpSendRecvStore is OpSendRecvReduce with the incoming elements
	// overwriting the accumulator (the allgather half of a ring).
	OpSendRecvStore
)

// Op is one processor program step. Processors execute their op list in
// order; receive ops block on the per-color inbox, send ops block on ramp
// backpressure.
//
// Send-like kinds read acc[Off : Off+N]; receive-like kinds write
// acc[Off : Off+N]. The full-duplex kinds send acc[Off : Off+N] and
// receive into acc[Off2 : Off2+N2].
type Op struct {
	Kind     OpKind
	Color    mesh.Color
	OutColor mesh.Color
	N        int
	Off      int
	N2       int
	Off2     int
	Slot     int
	Reduce   ReduceOp
}

// PESpec describes one processing element of a program: its initial local
// vector, its processor program, and its router's per-color configuration
// lists.
type PESpec struct {
	// Init is the PE's initial accumulator (its contribution to the
	// collective). It may be nil for pure pass-through PEs.
	Init []float32
	// Ops is the processor program.
	Ops []Op
	// Configs holds the router configuration list for each color the PE's
	// router participates in. Colors without an entry drop into a
	// "no route" state: wavelets of such colors arriving at the router
	// stall forever, which the deadlock detector reports.
	Configs map[mesh.Color][]RouterConfig
	// ClockSlots is the number of local-clock sample slots the program
	// uses (indexed by Op.Slot).
	ClockSlots int
}

// AddConfig appends a configuration to the PE's list for a color.
func (p *PESpec) AddConfig(c mesh.Color, cfg RouterConfig) {
	if p.Configs == nil {
		p.Configs = make(map[mesh.Color][]RouterConfig)
	}
	p.Configs[c] = append(p.Configs[c], cfg)
}

// Spec is a complete fabric program: a rectangular region of PEs, each
// with a program and routing tables. PEs absent from the map are idle
// pass-nothing PEs; routing a wavelet towards one is a compile bug that
// Build reports.
type Spec struct {
	Width, Height int
	PEs           map[mesh.Coord]*PESpec
}

// NewSpec allocates an empty program for a Width×Height PE region.
func NewSpec(width, height int) *Spec {
	return &Spec{Width: width, Height: height, PEs: make(map[mesh.Coord]*PESpec)}
}

// PE returns the spec for the PE at c, allocating it on first use.
func (s *Spec) PE(c mesh.Coord) *PESpec {
	if c.X < 0 || c.X >= s.Width || c.Y < 0 || c.Y >= s.Height {
		panic(fmt.Sprintf("fabric: PE %v outside %dx%d region", c, s.Width, s.Height))
	}
	pe := s.PEs[c]
	if pe == nil {
		pe = &PESpec{}
		s.PEs[c] = pe
	}
	return pe
}

// Validate checks structural properties of the program: configurations
// never forward off-grid, every non-final configuration has a positive
// Times, and op element counts are sane.
func (s *Spec) Validate() error {
	for c, pe := range s.PEs {
		for color, cfgs := range pe.Configs {
			if int(color) >= mesh.NumColors {
				return fmt.Errorf("fabric: PE %v uses color %d ≥ %d", c, color, mesh.NumColors)
			}
			if len(cfgs) == 0 {
				return fmt.Errorf("fabric: PE %v has empty config list for color %d", c, color)
			}
			for i, cfg := range cfgs {
				for d := mesh.Direction(0); d < mesh.NumDirections; d++ {
					if !cfg.Forward.Has(d) || d == mesh.Ramp {
						continue
					}
					n := c.Add(d)
					if n.X < 0 || n.X >= s.Width || n.Y < 0 || n.Y >= s.Height {
						return fmt.Errorf("fabric: PE %v color %d config %d forwards %v off-grid", c, color, i, d)
					}
					if s.PEs[n] == nil {
						return fmt.Errorf("fabric: PE %v color %d config %d forwards %v to unprogrammed PE %v", c, color, i, d, n)
					}
				}
				if cfg.Times < 0 {
					return fmt.Errorf("fabric: PE %v color %d config %d has negative Times", c, color, i)
				}
				if i < len(cfgs)-1 && cfg.Times == 0 {
					return fmt.Errorf("fabric: PE %v color %d config %d is non-final but absorbs forever", c, color, i)
				}
			}
		}
		for i, op := range pe.Ops {
			if op.Off < 0 || op.Off2 < 0 {
				return fmt.Errorf("fabric: PE %v op %d (%v) has negative offset", c, i, op.Kind)
			}
			switch op.Kind {
			case OpSend, OpRecvReduce, OpRecvReduceSend, OpRecvStore:
				if op.N <= 0 {
					return fmt.Errorf("fabric: PE %v op %d (%v) has N=%d", c, i, op.Kind, op.N)
				}
			case OpSendRecvReduce, OpSendRecvStore:
				if op.N <= 0 || op.N2 <= 0 {
					return fmt.Errorf("fabric: PE %v op %d (%v) has N=%d N2=%d", c, i, op.Kind, op.N, op.N2)
				}
				if op.Color == op.OutColor {
					return fmt.Errorf("fabric: PE %v op %d (%v) sends and receives on color %d", c, i, op.Kind, op.Color)
				}
			case OpBusyWrite:
				if op.N < 0 {
					return fmt.Errorf("fabric: PE %v op %d busy-write has N=%d", c, i, op.N)
				}
			case OpSampleClock:
				if op.Slot < 0 || op.Slot >= pe.ClockSlots {
					return fmt.Errorf("fabric: PE %v op %d samples slot %d outside [0,%d)", c, i, op.Slot, pe.ClockSlots)
				}
			}
		}
	}
	return nil
}

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpSend:
		return "send"
	case OpRecvReduce:
		return "recv-reduce"
	case OpRecvReduceSend:
		return "recv-reduce-send"
	case OpRecvStore:
		return "recv-store"
	case OpRecvTrigger:
		return "recv-trigger"
	case OpBusyWrite:
		return "busy-write"
	case OpSampleClock:
		return "sample-clock"
	case OpSendTrigger:
		return "send-trigger"
	case OpSendRecvReduce:
		return "send-recv-reduce"
	case OpSendRecvStore:
		return "send-recv-store"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}
