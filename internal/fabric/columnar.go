package fabric

// Columnar result assembly. A map-shaped Result is convenient but its
// construction — two maps plus one entry per programmed PE — is the
// dominant fixed cost of replaying a small cached plan. ColumnarResult is
// the same information laid flat: one concatenated accumulator buffer
// indexed by prefix offsets over a row-major coordinate list. Assembly is
// two appends per PE, the buffers are reusable across runs, and callers
// that only consume the root vector (or stream all accumulators in PE
// order) never pay for maps they would not read.

import (
	"fmt"
	"sort"

	"repro/internal/mesh"
)

// ColumnarResult reports a completed run without per-PE maps: PE i (in
// row-major coordinate order, Coords[i]) holds Acc[Off[i]:Off[i+1]].
// Clock samples are not collected — callers that need them (skew
// diagnostics) use Run. The zero value is ready for RunColumnar, which
// reuses Off and Acc storage on repeated calls; a caller keeping several
// results (a batch) therefore passes a fresh value per run, sharing only
// what is documented as shareable below.
type ColumnarResult struct {
	// Cycles is the total cycle count until every processor finished and
	// the network drained.
	Cycles int64
	// Coords lists the programmed PEs in row-major order. It aliases the
	// fabric's immutable layout — identical across every run of one
	// instance — and must be treated as read-only.
	Coords []mesh.Coord
	// Off holds len(Coords)+1 prefix offsets into Acc. Offsets depend only
	// on the program, not the data, so a batch may seed each run's result
	// with the previous run's Off slice to share one backing array.
	Off []int
	// Acc is the concatenation of every PE's final accumulator.
	Acc []float32
	// Root aliases PE (0,0)'s accumulator within Acc (nil when that PE is
	// not programmed) — the reduction result, or the vector every PE holds
	// after a broadcast.
	Root []float32
	// Stats holds the measured cost metrics. Clock-sample-derived fields
	// aside, it matches Run's Stats exactly.
	Stats Stats
}

// At returns the final accumulator of the PE at c, or nil when c is not
// programmed. Lookup is a binary search over the row-major Coords.
func (r *ColumnarResult) At(c mesh.Coord) []float32 {
	i := sort.Search(len(r.Coords), func(i int) bool {
		ci := r.Coords[i]
		if ci.Y != c.Y {
			return ci.Y > c.Y
		}
		return ci.X >= c.X
	})
	if i >= len(r.Coords) || r.Coords[i] != c {
		return nil
	}
	return r.Acc[r.Off[i]:r.Off[i+1]:r.Off[i+1]]
}

// resultColumnar assembles the run outcome into res, reusing its Off and
// Acc storage. It performs the same terminal checks as result.
func (f *Fabric) resultColumnar(res *ColumnarResult) error {
	res.Cycles = f.cycle
	res.Stats = Stats{}
	for si := range f.shards {
		sh := &f.shards[si]
		res.Stats.Hops += sh.stats.Hops
		res.Stats.RampMoves += sh.stats.RampMoves
		res.Stats.Noops += sh.stats.Noops
		res.Stats.Steps += sh.stats.Steps
		if sh.stats.MaxQueueLen > res.Stats.MaxQueueLen {
			res.Stats.MaxQueueLen = sh.stats.MaxQueueLen
		}
	}
	total := 0
	for i := range f.procs {
		total += len(f.procs[i].acc)
	}
	res.Coords = f.coords
	if cap(res.Off) < len(f.coords)+1 {
		res.Off = make([]int, 0, len(f.coords)+1)
	}
	res.Off = res.Off[:0]
	if cap(res.Acc) < total {
		res.Acc = make([]float32, 0, total)
	}
	res.Acc = res.Acc[:0]
	res.Root = nil
	for i, c := range f.coords {
		p := &f.procs[i]
		if p.inboxTotal > 0 {
			return fmt.Errorf("fabric: PE %v finished with %d unconsumed inbox wavelets", c, p.inboxTotal)
		}
		res.Off = append(res.Off, len(res.Acc))
		res.Acc = append(res.Acc, p.acc...)
		if p.received > res.Stats.MaxReceived {
			res.Stats.MaxReceived = p.received
		}
	}
	res.Off = append(res.Off, len(res.Acc))
	if f.width > 0 && f.height > 0 {
		if ri := f.grid[0]; ri >= 0 { // PE (0,0), the root of every kind here
			res.Root = res.Acc[res.Off[ri]:res.Off[ri+1]:res.Off[ri+1]]
		}
	}
	return nil
}
