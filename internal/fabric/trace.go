package fabric

import (
	"fmt"
	"strings"

	"repro/internal/mesh"
)

// TraceKind classifies a traced fabric event.
type TraceKind uint8

const (
	// EvInject: a processor pushed a wavelet down its ramp.
	EvInject TraceKind = iota
	// EvRoute: a router moved a wavelet towards its forward set.
	EvRoute
	// EvDeliver: a router forwarded a wavelet up the ramp to its
	// processor's inbox.
	EvDeliver
	// EvConsume: a processor consumed a wavelet from its inbox.
	EvConsume
	// EvAdvance: a control wavelet advanced a router configuration.
	EvAdvance
	// EvOpDone: a processor finished a program op.
	EvOpDone
)

// String names the event kind.
func (k TraceKind) String() string {
	switch k {
	case EvInject:
		return "inject"
	case EvRoute:
		return "route"
	case EvDeliver:
		return "deliver"
	case EvConsume:
		return "consume"
	case EvAdvance:
		return "advance"
	case EvOpDone:
		return "op-done"
	}
	return fmt.Sprintf("ev(%d)", uint8(k))
}

// TraceEvent is one recorded fabric event.
type TraceEvent struct {
	Cycle   int64
	PE      mesh.Coord
	Kind    TraceKind
	Color   mesh.Color
	Forward mesh.DirSet
	Ctl     bool
	Op      OpKind
}

// Tracer records fabric events up to a capacity; attach one via
// Options.Tracer to debug routing configurations and stalls. Recording is
// bounded: once Cap events are stored, later ones are counted but
// dropped.
type Tracer struct {
	// Cap bounds the stored events (default 1 << 16).
	Cap     int
	Events  []TraceEvent
	Dropped int64
}

func (t *Tracer) record(e TraceEvent) {
	cap := t.Cap
	if cap <= 0 {
		cap = 1 << 16
	}
	if len(t.Events) >= cap {
		t.Dropped++
		return
	}
	t.Events = append(t.Events, e)
}

// Render formats the trace as a cycle-ordered listing; filter may be nil
// to include everything.
func (t *Tracer) Render(filter func(TraceEvent) bool) string {
	var b strings.Builder
	for _, e := range t.Events {
		if filter != nil && !filter(e) {
			continue
		}
		fmt.Fprintf(&b, "%8d  %-8v %-8s color=%d", e.Cycle, e.PE, e.Kind, e.Color)
		if e.Kind == EvRoute {
			fmt.Fprintf(&b, " -> %v", e.Forward)
		}
		if e.Kind == EvOpDone {
			fmt.Fprintf(&b, " %v", e.Op)
		}
		if e.Ctl {
			b.WriteString(" ctl")
		}
		b.WriteString("\n")
	}
	if t.Dropped > 0 {
		fmt.Fprintf(&b, "(… %d events dropped beyond capacity)\n", t.Dropped)
	}
	return b.String()
}

// Summary aggregates the trace into per-PE counters, a quick view of
// where traffic concentrated (the contention picture).
func (t *Tracer) Summary() map[mesh.Coord]map[TraceKind]int {
	out := make(map[mesh.Coord]map[TraceKind]int)
	for _, e := range t.Events {
		m := out[e.PE]
		if m == nil {
			m = make(map[TraceKind]int)
			out[e.PE] = m
		}
		m[e.Kind]++
	}
	return out
}
