package fabric

import (
	"strings"
	"testing"

	"repro/internal/mesh"
)

// twoPE builds a minimal sender→receiver program: PE (1,0) streams b
// wavelets west on color 0; PE (0,0) receives and stores them.
func twoPE(b int) *Spec {
	s := NewSpec(2, 1)
	recv := s.PE(mesh.Coord{X: 0, Y: 0})
	recv.Ops = []Op{{Kind: OpRecvStore, Color: 0, N: b}}
	recv.AddConfig(0, RouterConfig{Accept: mesh.East, Forward: mesh.Dirs(mesh.Ramp)})
	send := s.PE(mesh.Coord{X: 1, Y: 0})
	send.Init = make([]float32, b)
	for i := range send.Init {
		send.Init[i] = float32(i)
	}
	send.Ops = []Op{{Kind: OpSend, Color: 0, N: b}}
	send.AddConfig(0, RouterConfig{Accept: mesh.Ramp, Forward: mesh.Dirs(mesh.West)})
	return s
}

func TestMessageTiming(t *testing.T) {
	// §4.1: sending B wavelets one hop costs ~B + distance + 2T_R.
	for _, b := range []int{1, 16, 256} {
		f, err := New(twoPE(b), Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		model := int64(b + 1 + 2*DefaultTR)
		if res.Cycles < model || res.Cycles > model+8 {
			t.Errorf("b=%d: %d cycles, model %d", b, res.Cycles, model)
		}
		got := res.Acc[mesh.Coord{}]
		for i := range got {
			if got[i] != float32(i) {
				t.Fatalf("b=%d element %d: %v", b, i, got[i])
			}
		}
	}
}

func TestRampLatencyScaling(t *testing.T) {
	// One-hop message latency must grow by 2 cycles per unit of T_R
	// (down and up the ramp). Queues must cover the bandwidth-delay
	// product (T_R cycles of in-flight ramp wavelets) to sustain line
	// rate, hence the deeper-than-default queue for large T_R; see
	// TestQueueMustCoverRampLatency.
	prev := int64(0)
	for _, tr := range []int{1, 2, 3, 4} {
		f, err := New(twoPE(64), Options{TR: tr, QueueCap: 16})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		if tr > 1 && res.Cycles != prev+2 {
			t.Errorf("TR=%d: %d cycles, want %d", tr, res.Cycles, prev+2)
		}
		prev = res.Cycles
	}
}

func TestQueueMustCoverRampLatency(t *testing.T) {
	// A real flow-control effect the simulator reproduces: when the ramp
	// latency exceeds what the bounded inbox can cover (bandwidth-delay
	// product > queue capacity), the stream can no longer sustain one
	// wavelet per cycle. The WSE-2 point (T_R=2, queues 4) streams at
	// line rate.
	shallow, err := New(twoPE(64), Options{TR: 5, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	resShallow, err := shallow.Run()
	if err != nil {
		t.Fatal(err)
	}
	deep, err := New(twoPE(64), Options{TR: 5, QueueCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	resDeep, err := deep.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resShallow.Cycles <= resDeep.Cycles {
		t.Errorf("shallow queues %d cycles, deep %d: expected throughput loss", resShallow.Cycles, resDeep.Cycles)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A receiver waiting on a color nobody sends must be reported as a
	// deadlock, not spin forever.
	s := NewSpec(2, 1)
	recv := s.PE(mesh.Coord{X: 0, Y: 0})
	recv.Ops = []Op{{Kind: OpRecvStore, Color: 3, N: 4}}
	recv.AddConfig(3, RouterConfig{Accept: mesh.East, Forward: mesh.Dirs(mesh.Ramp)})
	s.PE(mesh.Coord{X: 1, Y: 0}).AddConfig(3, RouterConfig{Accept: mesh.Ramp, Forward: mesh.Dirs(mesh.West)})
	f, err := New(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestProtocolViolationDetected(t *testing.T) {
	// Receiver expects fewer elements than the sender ships: the excess
	// data wavelet must fail the run with a protocol error.
	s := twoPE(8)
	s.PEs[mesh.Coord{}].Ops = []Op{{Kind: OpRecvStore, Color: 0, N: 4}}
	f, err := New(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err == nil {
		t.Fatal("want protocol error for excess data")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	// Forwarding off-grid.
	s := NewSpec(1, 1)
	pe := s.PE(mesh.Coord{})
	pe.AddConfig(0, RouterConfig{Accept: mesh.Ramp, Forward: mesh.Dirs(mesh.West)})
	if _, err := New(s, Options{}); err == nil {
		t.Error("want error for off-grid forward")
	}
	// Forwarding to an unprogrammed PE.
	s2 := NewSpec(2, 1)
	s2.PE(mesh.Coord{}).AddConfig(0, RouterConfig{Accept: mesh.Ramp, Forward: mesh.Dirs(mesh.East)})
	if _, err := New(s2, Options{}); err == nil {
		t.Error("want error for unprogrammed destination")
	}
	// Non-final config that absorbs forever.
	s3 := NewSpec(2, 1)
	pe3 := s3.PE(mesh.Coord{})
	pe3.AddConfig(0, RouterConfig{Accept: mesh.East, Forward: mesh.Dirs(mesh.Ramp), Times: 0})
	pe3.AddConfig(0, RouterConfig{Accept: mesh.East, Forward: mesh.Dirs(mesh.Ramp), Times: 1})
	s3.PE(mesh.Coord{X: 1, Y: 0})
	if _, err := New(s3, Options{}); err == nil {
		t.Error("want error for unreachable config")
	}
	// Bad busy-write count.
	s4 := NewSpec(1, 1)
	s4.PE(mesh.Coord{}).Ops = []Op{{Kind: OpBusyWrite, N: -1}}
	if _, err := New(s4, Options{}); err == nil {
		t.Error("want error for negative busy-write")
	}
}

func TestControlWaveletAdvancesConfig(t *testing.T) {
	// Receiver takes two vectors from opposite sides, switching on the
	// control wavelet: the Figure 3 scenario.
	b := 4
	s := NewSpec(3, 1)
	mid := s.PE(mesh.Coord{X: 1, Y: 0})
	mid.Ops = []Op{
		{Kind: OpRecvReduce, Color: 0, N: b},
		{Kind: OpRecvReduce, Color: 0, N: b},
	}
	mid.AddConfig(0, RouterConfig{Accept: mesh.East, Forward: mesh.Dirs(mesh.Ramp), Times: 1})
	mid.AddConfig(0, RouterConfig{Accept: mesh.West, Forward: mesh.Dirs(mesh.Ramp), Times: 1})
	mid.Init = make([]float32, b)

	east := s.PE(mesh.Coord{X: 2, Y: 0})
	east.Init = []float32{1, 2, 3, 4}
	east.Ops = []Op{{Kind: OpSend, Color: 0, N: b}}
	east.AddConfig(0, RouterConfig{Accept: mesh.Ramp, Forward: mesh.Dirs(mesh.West)})

	west := s.PE(mesh.Coord{X: 0, Y: 0})
	west.Init = []float32{10, 20, 30, 40}
	west.Ops = []Op{{Kind: OpSend, Color: 0, N: b}}
	west.AddConfig(0, RouterConfig{Accept: mesh.Ramp, Forward: mesh.Dirs(mesh.East)})

	f, err := New(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := res.Acc[mesh.Coord{X: 1, Y: 0}]
	want := []float32{11, 22, 33, 44}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBackpressureBoundsQueues(t *testing.T) {
	// However long the stream, bounded queues must never exceed the
	// configured capacity.
	f, err := New(twoPE(512), Options{QueueCap: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxQueueLen > 3 {
		t.Errorf("max queue length %d exceeds capacity 3", res.Stats.MaxQueueLen)
	}
}

func TestEnergyAccounting(t *testing.T) {
	// The Hops statistic is the paper's energy metric: B wavelets + 1
	// control over one link.
	f, err := New(twoPE(32), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Hops != 33 {
		t.Errorf("energy %d hops, want 33", res.Stats.Hops)
	}
	if res.Stats.MaxReceived != 32 {
		t.Errorf("contention %d, want 32", res.Stats.MaxReceived)
	}
}

func TestThermalNoopsSlowRun(t *testing.T) {
	base, err := New(twoPE(256), Options{})
	if err != nil {
		t.Fatal(err)
	}
	resBase, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	hot, err := New(twoPE(256), Options{ThermalNoopRate: 0.2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	resHot, err := hot.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resHot.Stats.Noops == 0 {
		t.Error("no thermal no-ops inserted")
	}
	if resHot.Cycles <= resBase.Cycles {
		t.Errorf("thermal run %d cycles not slower than %d", resHot.Cycles, resBase.Cycles)
	}
}

func TestClockSkewSampling(t *testing.T) {
	s := twoPE(4)
	for _, pe := range s.PEs {
		pe.ClockSlots = 1
		pe.Ops = append([]Op{{Kind: OpSampleClock, Slot: 0}}, pe.Ops...)
	}
	f, err := New(s, Options{ClockSkewMax: 1 << 20, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	a := res.Clocks[mesh.Coord{}][0]
	b := res.Clocks[mesh.Coord{X: 1, Y: 0}][0]
	if a == b {
		t.Error("expected skewed clocks to differ")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		f, err := New(twoPE(128), Options{ThermalNoopRate: 0.05, Seed: 42, ClockSkewMax: 100})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.Cycles != r2.Cycles || r1.Stats != r2.Stats {
		t.Errorf("non-deterministic runs: %+v vs %+v", r1.Stats, r2.Stats)
	}
}
