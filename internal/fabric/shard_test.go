package fabric

import (
	"fmt"
	"testing"

	"repro/internal/mesh"
)

// chainLike builds a p-PE pipelined chain reduce on one row: PE p-1 sends,
// middle PEs recv-reduce-send, PE 0 recv-reduces — the backpressure-heavy
// skeleton of the paper's vendor pattern.
func chainLike(p, b int) *Spec {
	s := NewSpec(p, 1)
	// The link between v and v-1 carries color v%2, so adjacent hops use
	// distinct colors and each router accepts each color from one side.
	for v := 0; v < p; v++ {
		pe := s.PE(mesh.Coord{X: v, Y: 0})
		pe.Init = make([]float32, b)
		for i := range pe.Init {
			pe.Init[i] = 1
		}
		out := mesh.Color(v % 2)
		in := mesh.Color((v + 1) % 2)
		switch {
		case v == p-1:
			pe.Ops = []Op{{Kind: OpSend, Color: out, N: b}}
			pe.AddConfig(out, RouterConfig{Accept: mesh.Ramp, Forward: mesh.Dirs(mesh.West)})
		case v > 0:
			pe.Ops = []Op{{Kind: OpRecvReduceSend, Color: in, OutColor: out, N: b}}
			pe.AddConfig(in, RouterConfig{Accept: mesh.East, Forward: mesh.Dirs(mesh.Ramp)})
			pe.AddConfig(out, RouterConfig{Accept: mesh.Ramp, Forward: mesh.Dirs(mesh.West)})
		default:
			pe.Ops = []Op{{Kind: OpRecvReduce, Color: in, N: b}}
			pe.AddConfig(in, RouterConfig{Accept: mesh.East, Forward: mesh.Dirs(mesh.Ramp)})
		}
	}
	return s
}

// gridBounce builds a w×h grid where every PE of row 0 streams a vector
// south down its column and the bottom row reduces — a 2D wavefront that
// crosses every row-band boundary of the sharded engine.
func gridBounce(w, h, b int) *Spec {
	s := NewSpec(w, h)
	for x := 0; x < w; x++ {
		top := s.PE(mesh.Coord{X: x, Y: 0})
		top.Init = make([]float32, b)
		for i := range top.Init {
			top.Init[i] = float32(x + 1)
		}
		top.Ops = []Op{{Kind: OpSend, Color: 0, N: b}}
		top.AddConfig(0, RouterConfig{Accept: mesh.Ramp, Forward: mesh.Dirs(mesh.South)})
		for y := 1; y < h-1; y++ {
			mid := s.PE(mesh.Coord{X: x, Y: y})
			mid.AddConfig(0, RouterConfig{Accept: mesh.North, Forward: mesh.Dirs(mesh.South)})
			mid.Ops = nil
		}
		bot := s.PE(mesh.Coord{X: x, Y: h - 1})
		bot.Init = make([]float32, b)
		bot.Ops = []Op{{Kind: OpRecvReduce, Color: 0, N: b}}
		bot.AddConfig(0, RouterConfig{Accept: mesh.North, Forward: mesh.Dirs(mesh.Ramp)})
	}
	return s
}

// TestShardedBitIdentical: every shard count must yield exactly the serial
// engine's cycles, stats, accumulators and clock samples, including under
// clock skew, thermal no-ops and task-activation charges.
func TestShardedBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		spec func() *Spec
		opt  Options
	}{
		{"two-pe-stream", func() *Spec { return twoPE(64) }, Options{}},
		{"star-contended", func() *Spec { return starLike(13, 12) }, Options{}},
		{"star-thermal-skew", func() *Spec { return starLike(11, 8) }, Options{ThermalNoopRate: 0.08, Seed: 5, ClockSkewMax: 128}},
		{"chain-pipelined", func() *Spec { return chainLike(24, 20) }, Options{}},
		{"chain-activation", func() *Spec { return chainLike(9, 6) }, Options{TaskActivation: 7}},
		{"grid-wavefront", func() *Spec { return gridBounce(6, 8, 10) }, Options{QueueCap: 2}},
	}
	for _, tc := range cases {
		opt := tc.opt
		opt.Shards = 1
		serial, err := New(tc.spec(), opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, err := serial.Run()
		if err != nil {
			t.Fatalf("%s serial: %v", tc.name, err)
		}
		for _, shards := range []int{2, 3, 7, 64} {
			opt.Shards = shards
			f, err := New(tc.spec(), opt)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", tc.name, shards, err)
			}
			got, err := f.Run()
			if err != nil {
				t.Fatalf("%s shards=%d: %v", tc.name, shards, err)
			}
			sameResult(t, want, got, fmt.Sprintf("%s shards=%d", tc.name, shards))
		}
	}
}

// TestShardedReset: pooling and sharding compose — a sharded fabric reset
// and re-run reproduces itself.
func TestShardedReset(t *testing.T) {
	spec := gridBounce(5, 9, 8)
	opt := Options{Shards: 4, ThermalNoopRate: 0.03, Seed: 11}
	f, err := New(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		if err := f.Reset(spec); err != nil {
			t.Fatal(err)
		}
		got, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, want, got, "sharded reset replay")
	}
}

// TestShardedWorkerPathBitIdentical forces the parallel dispatch path
// (which small fabrics normally skip via the coordinator fallback) so the
// worker goroutines, barrier handoff and cross-shard wake buffers are
// exercised — and raced, under -race — on every test spec.
func TestShardedWorkerPathBitIdentical(t *testing.T) {
	old := shardDispatchThreshold
	shardDispatchThreshold = 0
	defer func() { shardDispatchThreshold = old }()
	cases := []struct {
		name string
		spec func() *Spec
		opt  Options
	}{
		{"star-thermal-skew", func() *Spec { return starLike(11, 8) }, Options{ThermalNoopRate: 0.08, Seed: 5, ClockSkewMax: 128}},
		{"chain-pipelined", func() *Spec { return chainLike(24, 20) }, Options{}},
		{"grid-wavefront", func() *Spec { return gridBounce(6, 8, 10) }, Options{QueueCap: 2}},
	}
	for _, tc := range cases {
		opt := tc.opt
		opt.Shards = 1
		serial, err := New(tc.spec(), opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, err := serial.Run()
		if err != nil {
			t.Fatalf("%s serial: %v", tc.name, err)
		}
		for _, shards := range []int{2, 4} {
			opt.Shards = shards
			f, err := New(tc.spec(), opt)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", tc.name, shards, err)
			}
			got, err := f.Run()
			if err != nil {
				t.Fatalf("%s shards=%d: %v", tc.name, shards, err)
			}
			sameResult(t, want, got, fmt.Sprintf("%s worker-path shards=%d", tc.name, shards))
		}
	}
}

// TestShardedErrorPropagates: protocol violations inside a worker shard
// must surface as ordinary run errors.
func TestShardedErrorPropagates(t *testing.T) {
	spec := twoPE(8)
	spec.PEs[mesh.Coord{}].Ops = []Op{{Kind: OpRecvStore, Color: 0, N: 4}}
	f, err := New(spec, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err == nil {
		t.Fatal("want protocol error from sharded run")
	}
}

// TestAutoShards pins the Shards=0 auto-tune rule: one band per available
// CPU, bands never smaller than autoShardMinBand PEs, serial when either
// bound collapses it to one.
func TestAutoShards(t *testing.T) {
	old := autoShardProcs
	defer func() { autoShardProcs = old }()
	cases := []struct {
		procs, pes, want int
	}{
		{1, 100000, 1},                  // one CPU: serial, regardless of size
		{8, autoShardMinBand - 1, 1},    // sub-floor fabric: serial
		{8, 512, 1},                     // the p=512 bench chain stays serial
		{8, 2 * autoShardMinBand, 2},    // band floor caps the CPU count
		{8, 100 * autoShardMinBand, 8},  // large fabric: one band per CPU
		{4, 3*autoShardMinBand + 50, 3}, // integer band floor
	}
	for _, tc := range cases {
		autoShardProcs = func() int { return tc.procs }
		if got := autoShards(tc.pes); got != tc.want {
			t.Errorf("autoShards(%d PEs, %d procs) = %d, want %d", tc.pes, tc.procs, got, tc.want)
		}
	}
}

// TestAutoShardsBitIdentical models a many-core host on whatever box runs
// the tests: a fabric built with Shards=0 must auto-shard (len(shards)>1)
// and still reproduce the explicit serial engine bit for bit.
func TestAutoShardsBitIdentical(t *testing.T) {
	oldProcs := autoShardProcs
	oldBand := autoShardMinBand
	autoShardProcs = func() int { return 4 }
	autoShardMinBand = 8 // keep the test spec small
	defer func() { autoShardProcs = oldProcs; autoShardMinBand = oldBand }()

	spec := gridBounce(6, 8, 10)
	serial, err := New(gridBounce(6, 8, 10), Options{Shards: 1, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	auto, err := New(spec, Options{QueueCap: 2}) // Shards unset
	if err != nil {
		t.Fatal(err)
	}
	if len(auto.shards) != 4 {
		t.Fatalf("auto-tuned fabric has %d shards, want 4", len(auto.shards))
	}
	got, err := auto.Run()
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got, "auto-sharded vs serial")
}
