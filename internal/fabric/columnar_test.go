package fabric

import (
	"testing"

	"repro/internal/mesh"
)

// TestColumnarMatchesMapResult: RunColumnar must report exactly what Run
// reports — same cycles, same stats, same per-PE accumulators — with the
// flat layout consistent (offsets monotone, At agreeing with the map),
// including across Reset replays reusing one result's buffers.
func TestColumnarMatchesMapResult(t *testing.T) {
	for _, opt := range []Options{
		{},
		{ThermalNoopRate: 0.05, Seed: 9, ClockSkewMax: 64},
	} {
		spec := twoPE(32)
		f, err := New(spec, opt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}

		g, err := New(spec, opt)
		if err != nil {
			t.Fatal(err)
		}
		var res ColumnarResult
		for rep := 0; rep < 3; rep++ {
			if err := g.RunColumnar(&res); err != nil {
				t.Fatalf("replay %d: %v", rep, err)
			}
			if res.Cycles != want.Cycles {
				t.Fatalf("replay %d: cycles %d, want %d", rep, res.Cycles, want.Cycles)
			}
			if res.Stats != want.Stats {
				t.Fatalf("replay %d: stats %+v, want %+v", rep, res.Stats, want.Stats)
			}
			if len(res.Coords) != len(want.Acc) || len(res.Off) != len(res.Coords)+1 {
				t.Fatalf("replay %d: %d coords, %d offsets; want %d PEs", rep, len(res.Coords), len(res.Off), len(want.Acc))
			}
			for i, c := range res.Coords {
				w := want.Acc[c]
				g := res.Acc[res.Off[i]:res.Off[i+1]]
				if len(g) != len(w) {
					t.Fatalf("PE %v: acc length %d, want %d", c, len(g), len(w))
				}
				for j := range w {
					if g[j] != w[j] {
						t.Fatalf("PE %v: acc[%d] = %v, want %v", c, j, g[j], w[j])
					}
				}
				at := res.At(c)
				if len(at) != len(w) || (len(w) > 0 && &at[0] != &g[0]) {
					t.Fatalf("PE %v: At disagrees with offset slice", c)
				}
			}
			root := want.Acc[mesh.Coord{}]
			if len(res.Root) != len(root) || (len(root) > 0 && res.Root[0] != root[0]) {
				t.Fatalf("root %v, want %v", res.Root, root)
			}
			if res.At(mesh.Coord{X: 99, Y: 99}) != nil {
				t.Fatal("At of an unprogrammed PE must be nil")
			}
			if err := g.Reset(spec); err != nil {
				t.Fatalf("reset %d: %v", rep, err)
			}
		}
	}
}
